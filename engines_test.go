// Differential identity suite for the compiled execution engine at
// kernel scale: every serial NAS kernel and every MPI world must finish
// with byte-identical machines whether it runs on the compiled
// direct-threaded tier or the per-step interpreter.
package fpmix_test

import (
	"bytes"
	"testing"

	"fpmix/internal/kernels"
	"fpmix/internal/mpi"
	"fpmix/internal/vm"
)

// sameMachine compares every externally observable piece of machine
// state two engines could diverge on.
func sameMachine(t *testing.T, label string, a, b *vm.Machine) {
	t.Helper()
	if a.Steps != b.Steps || a.Cycles != b.Cycles {
		t.Errorf("%s: Steps/Cycles mismatch: %d/%d vs %d/%d", label, a.Steps, a.Cycles, b.Steps, b.Cycles)
	}
	if a.PC() != b.PC() || a.Halted() != b.Halted() {
		t.Errorf("%s: PC/halted mismatch: %#x/%v vs %#x/%v", label, a.PC(), a.Halted(), b.PC(), b.Halted())
	}
	if a.GPR != b.GPR {
		t.Errorf("%s: GPR mismatch", label)
	}
	if a.XMM != b.XMM {
		t.Errorf("%s: XMM mismatch", label)
	}
	if !bytes.Equal(a.Mem, b.Mem) {
		t.Errorf("%s: memory image mismatch", label)
	}
	if len(a.Out) != len(b.Out) {
		t.Fatalf("%s: output length mismatch: %d vs %d", label, len(a.Out), len(b.Out))
	}
	for i := range a.Out {
		if a.Out[i] != b.Out[i] {
			t.Fatalf("%s: output %d mismatch: %+v vs %+v", label, i, a.Out[i], b.Out[i])
		}
	}
	ac, bc := a.Counts(), b.Counts()
	if len(ac) != len(bc) {
		t.Fatalf("%s: counts length mismatch", label)
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatalf("%s: counts[%d] mismatch: %d vs %d", label, i, ac[i], bc[i])
		}
	}
}

func TestCompiledEngineIdenticalOnSerialKernels(t *testing.T) {
	names := kernels.Names()
	if testing.Short() {
		names = []string{"ep", "cg", "mg"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			bench, err := kernels.Get(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			lp, err := vm.Link(bench.Module)
			if err != nil {
				t.Fatal(err)
			}
			compiled := lp.NewMachine()
			compiled.MaxSteps = bench.MaxSteps
			errC := compiled.Run()

			interp := lp.NewMachine()
			interp.NoCompile = true
			interp.MaxSteps = bench.MaxSteps
			errI := interp.Run()

			if (errC == nil) != (errI == nil) {
				t.Fatalf("run error mismatch: %v vs %v", errC, errI)
			}
			sameMachine(t, name, compiled, interp)
			if !bench.Verify(compiled.Out) {
				t.Fatalf("%s: compiled run failed its own verification", name)
			}
		})
	}
}

func TestCompiledEngineIdenticalOnMPIWorlds(t *testing.T) {
	names := kernels.MPIKernelNames()
	if testing.Short() {
		names = []string{"ep", "mg"}
	}
	const ranks = 4
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			mod, err := kernels.MPISource(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := mpi.RunWorld(mod, ranks, 0)
			if err != nil {
				t.Fatal(err)
			}
			interp, err := mpi.RunWorldArmed(mod, ranks, 0, func(rank int, m *vm.Machine) {
				m.NoCompile = true
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ranks; r++ {
				sameMachine(t, name, compiled[r], interp[r])
			}
		})
	}
}
