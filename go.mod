module fpmix

go 1.22
