// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Custom metrics carry the experiment results:
//
//	overheadX    instrumented / original modeled cycles (Figures 8, 9)
//	staticPct    fraction of candidate instructions replaced (Figure 10)
//	dynamicPct   fraction of executed candidates replaced (Figure 10)
//	testedCfgs   configurations evaluated by the search
//	speedupX     double / single modeled cycles (§3.2)
//
// Run with: go test -bench=. -benchmem
package fpmix_test

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/mpi"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
	"fpmix/internal/vm"
)

// ---- Figure 8: MPI scaling overhead -----------------------------------

func benchFig8(b *testing.B, name string, ranks int) {
	mod, err := kernels.MPISource(name, kernels.ClassA)
	if err != nil {
		b.Fatal(err)
	}
	inst := instrumentAll(b, mod, config.Double)
	var overhead float64
	for i := 0; i < b.N; i++ {
		base, err := mpi.RunWorld(mod, ranks, 0)
		if err != nil {
			b.Fatal(err)
		}
		wrapped, err := mpi.RunWorld(inst, ranks, 0)
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(mpi.TotalCycles(wrapped)) / float64(mpi.TotalCycles(base))
	}
	b.ReportMetric(overhead, "overheadX")
}

func BenchmarkFig8_EP(b *testing.B) {
	for _, ranks := range experiments.Fig8Ranks {
		b.Run(rankName(ranks), func(b *testing.B) { benchFig8(b, "ep", ranks) })
	}
}

func BenchmarkFig8_CG(b *testing.B) {
	for _, ranks := range experiments.Fig8Ranks {
		b.Run(rankName(ranks), func(b *testing.B) { benchFig8(b, "cg", ranks) })
	}
}

func BenchmarkFig8_FT(b *testing.B) {
	for _, ranks := range experiments.Fig8Ranks {
		b.Run(rankName(ranks), func(b *testing.B) { benchFig8(b, "ft", ranks) })
	}
}

func BenchmarkFig8_MG(b *testing.B) {
	for _, ranks := range experiments.Fig8Ranks {
		b.Run(rankName(ranks), func(b *testing.B) { benchFig8(b, "mg", ranks) })
	}
}

func rankName(r int) string {
	return map[int]string{1: "1rank", 2: "2ranks", 4: "4ranks", 8: "8ranks"}[r]
}

// ---- Figure 9: per-class overhead table --------------------------------

func BenchmarkFig9(b *testing.B) {
	for _, name := range kernels.MPIKernelNames() {
		for _, class := range []kernels.Class{kernels.ClassA, kernels.ClassC} {
			name, class := name, class
			b.Run(name+"."+string(class), func(b *testing.B) {
				mod, err := kernels.MPISource(name, class)
				if err != nil {
					b.Fatal(err)
				}
				inst := instrumentAll(b, mod, config.Double)
				var overhead float64
				for i := 0; i < b.N; i++ {
					base, err := mpi.RunWorld(mod, 8, 0)
					if err != nil {
						b.Fatal(err)
					}
					wrapped, err := mpi.RunWorld(inst, 8, 0)
					if err != nil {
						b.Fatal(err)
					}
					overhead = float64(mpi.TotalCycles(wrapped)) / float64(mpi.TotalCycles(base))
				}
				b.ReportMetric(overhead, "overheadX")
			})
		}
	}
}

// ---- Figure 10: the automatic search ------------------------------------

func BenchmarkFig10(b *testing.B) {
	for _, name := range experiments.Fig10Benches {
		name := name
		b.Run(name+".W", func(b *testing.B) {
			bench, err := kernels.Get(name, kernels.ClassW)
			if err != nil {
				b.Fatal(err)
			}
			var res *search.Result
			for i := 0; i < b.N; i++ {
				res, err = search.Run(searchTarget(bench), search.Options{
					Workers: 8, BinarySplit: true, Prioritize: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Stats.StaticPct, "staticPct")
			b.ReportMetric(res.Stats.DynamicPct, "dynamicPct")
			b.ReportMetric(float64(res.Tested), "testedCfgs")
		})
	}
}

// ---- Figure 11: SuperLU threshold sweep ---------------------------------

func BenchmarkFig11(b *testing.B) {
	var rows []experiments.Fig11Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig11(kernels.ClassW, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the loosest and tightest thresholds' replacement rates.
	b.ReportMetric(rows[0].StaticPct, "looseStaticPct")
	b.ReportMetric(rows[len(rows)-1].StaticPct, "tightStaticPct")
}

// ---- §3.2: the AMG microkernel ------------------------------------------

func BenchmarkAMG(b *testing.B) {
	var res *experiments.AMGResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AMG(kernels.ClassW, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !res.AllSinglePass {
		b.Fatal("AMG did not verify in single precision")
	}
	b.ReportMetric(res.ManualSpeedup, "speedupX")
	b.ReportMetric(res.AnalysisOverhead, "overheadX")
}

// ---- Evaluation engine ---------------------------------------------------

// BenchmarkSearchEvaluate measures end-to-end search throughput across
// the evaluation backends: the cached engine on the compiled
// direct-threaded VM tier (the default), the fork-point engine evaluating
// siblings from shared-prefix snapshots, the cached engine pinned to the
// per-step interpreter (nocompile), and the from-scratch fallback. All
// sub-benchmarks run the identical search; ns/op ratios are the
// respective speedups.
func BenchmarkSearchEvaluate(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		mode      search.EngineMode
		noCompile bool
	}{
		{"engine", search.EngineOn, false},
		{"fork", search.EngineFork, false},
		{"nocompile", search.EngineOn, true},
		{"fallback", search.EngineOff, false},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var res *search.Result
			for i := 0; i < b.N; i++ {
				res, err = search.Run(searchTarget(bench), search.Options{
					Workers: 8, BinarySplit: true, Prioritize: true,
					Engine: mode.mode, NoCompile: mode.noCompile,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Tested), "testedCfgs")
			b.ReportMetric(float64(res.MemoHits), "memoHits")
			if mode.mode == search.EngineFork {
				b.ReportMetric(float64(res.Forked), "forkedCfgs")
				b.ReportMetric(float64(res.PrefixInstrsSaved), "prefixInstrs")
			}
		})
	}
}

// BenchmarkInstrumentCached isolates the per-configuration assembly cost:
// splicing precompiled snippets versus regenerating and laying out every
// snippet from scratch.
func BenchmarkInstrumentCached(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	eff := make(map[uint64]config.Precision)
	for _, a := range bench.Module.Candidates() {
		eff[a] = config.Single
	}
	b.Run("cached", func(b *testing.B) {
		cs, err := replace.Precompile(bench.Module, replace.InstrumentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cs.Instrument(eff); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := replace.InstrumentMap(bench.Module, eff, replace.InstrumentOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationSearchSplit compares configurations tested with and
// without the binary-splitting optimization (§2.2, optimization 1).
func BenchmarkAblationSearchSplit(b *testing.B) {
	bench, err := kernels.Get("sp", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	for _, split := range []bool{true, false} {
		split := split
		name := "split"
		if !split {
			name = "nosplit"
		}
		b.Run(name, func(b *testing.B) {
			var res *search.Result
			for i := 0; i < b.N; i++ {
				res, err = search.Run(searchTarget(bench), search.Options{
					Workers: 8, BinarySplit: split, Prioritize: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Tested), "testedCfgs")
		})
	}
}

// BenchmarkAblationPrioritize compares search wall-time behavior with and
// without profile prioritization (§2.2, optimization 2). The outcome is
// identical; the metric of interest is ns/op.
func BenchmarkAblationPrioritize(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	for _, prio := range []bool{true, false} {
		prio := prio
		name := "prioritized"
		if !prio {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(searchTarget(bench), search.Options{
					Workers: 1, BinarySplit: true, Prioritize: prio,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUncheckedDowncast quantifies the flag-test fast path in
// single-precision snippets (§2.3: "the downcast operation is performed
// only when the input has not already been replaced").
func BenchmarkAblationUncheckedDowncast(b *testing.B) {
	bench, err := kernels.Get("amg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	for _, unchecked := range []bool{false, true} {
		unchecked := unchecked
		name := "checked"
		if unchecked {
			name = "unchecked"
		}
		b.Run(name, func(b *testing.B) {
			c, err := config.FromModule(bench.Module)
			if err != nil {
				b.Fatal(err)
			}
			c.SetAll(config.Single)
			inst, err := replace.Instrument(bench.Module, c, replace.InstrumentOptions{
				Snippet: replace.Options{UncheckedDowncast: unchecked},
			})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := vm.New(inst)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
				cycles = m.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationSkipDoubleSnippets measures the §2.5 future
// optimization (static dataflow analysis eliding double wrappers) as an
// upper bound: all-double instrumentation with and without wrappers.
func BenchmarkAblationSkipDoubleSnippets(b *testing.B) {
	bench, err := kernels.Get("cg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	for _, skip := range []bool{false, true} {
		skip := skip
		name := "wrapped"
		if skip {
			name = "elided"
		}
		b.Run(name, func(b *testing.B) {
			c, err := config.FromModule(bench.Module)
			if err != nil {
				b.Fatal(err)
			}
			c.SetAll(config.Double)
			inst, err := replace.Instrument(bench.Module, c, replace.InstrumentOptions{
				SkipDoubleSnippets: skip,
			})
			if err != nil {
				b.Fatal(err)
			}
			var overhead float64
			for i := 0; i < b.N; i++ {
				orig, err := run(bench.Module)
				if err != nil {
					b.Fatal(err)
				}
				wrapped, err := run(inst)
				if err != nil {
					b.Fatal(err)
				}
				overhead = float64(wrapped.Cycles) / float64(orig.Cycles)
			}
			b.ReportMetric(overhead, "overheadX")
		})
	}
}

// BenchmarkAblationSensitivity compares the sensitivity-guided search
// (shadow profile ordering the queue and predicting hopeless aggregates)
// against the counts-prioritized baseline on the same kernel. Both
// sub-runs compose the identical final configuration; the metrics of
// interest are testedCfgs (guided must not exceed the baseline) and
// predicted (aggregate failures resolved without a run).
func BenchmarkAblationSensitivity(b *testing.B) {
	bench, err := kernels.Get("ep", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := shadow.Collect("ep.W", bench.Module, bench.MaxSteps)
	if err != nil {
		b.Fatal(err)
	}
	for _, guided := range []bool{true, false} {
		guided := guided
		name := "guided"
		if !guided {
			name = "nosens"
		}
		b.Run(name, func(b *testing.B) {
			opts := search.Options{Workers: 1, BinarySplit: true, Prioritize: true}
			if guided {
				opts.Shadow = sh
				opts.SensThreshold = bench.SensTol
			}
			var res *search.Result
			for i := 0; i < b.N; i++ {
				res, err = search.Run(searchTarget(bench), opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Tested), "testedCfgs")
			b.ReportMetric(float64(res.Predicted), "predicted")
		})
	}
}

// ---- Microbenchmarks of the framework itself ---------------------------

// BenchmarkVMThroughput measures raw interpreter speed.
func BenchmarkVMThroughput(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		m, err := vm.New(bench.Module)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

// BenchmarkVMThroughputCompiled measures the compiled direct-threaded
// tier on the same kernel (ns/op against BenchmarkVMThroughput is the
// raw engine speedup, with link cost amortized as the search amortizes
// it).
func BenchmarkVMThroughputCompiled(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	lp, err := vm.Link(bench.Module)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps uint64
	m := &vm.Machine{}
	for i := 0; i < b.N; i++ {
		m.ResetTo(lp)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

// BenchmarkInstrument measures the binary rewriter itself.
func BenchmarkInstrument(b *testing.B) {
	bench, err := kernels.Get("bt", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	c, err := config.FromModule(bench.Module)
	if err != nil {
		b.Fatal(err)
	}
	c.SetAll(config.Single)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replace.Instrument(bench.Module, c, replace.InstrumentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImageRoundTrip measures serialize + re-parse of a program
// image (the Dyninst-rewriter analog path).
func BenchmarkImageRoundTrip(b *testing.B) {
	bench, err := kernels.Get("bt", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := prog.Save(bench.Module)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Load(img); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers -------------------------------------------------------------

func instrumentAll(b *testing.B, m *prog.Module, p config.Precision) *prog.Module {
	b.Helper()
	c, err := config.FromModule(m)
	if err != nil {
		b.Fatal(err)
	}
	c.SetAll(p)
	inst, err := replace.Instrument(m, c, replace.InstrumentOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func searchTarget(bench *kernels.Bench) search.Target {
	return search.Target{
		Module:   bench.Module,
		Verify:   bench.Verify,
		MaxSteps: bench.MaxSteps,
		Base:     bench.Base,
	}
}

func run(m *prog.Module) (*vm.Machine, error) {
	mach, err := vm.New(m)
	if err != nil {
		return nil, err
	}
	mach.MaxSteps = 4_000_000_000
	if err := mach.Run(); err != nil {
		return nil, err
	}
	return mach, nil
}

// BenchmarkAblationLivenessElision measures the §2.5 snippet streamlining
// (scratch save/restore elision under the fpmix ABI) in three tiers:
// fully checked saves everywhere, the default analysis-gated build
// (per-site elisions proven safe by the dataflow analyses), and the
// unchecked whole-program ablation.
func BenchmarkAblationLivenessElision(b *testing.B) {
	bench, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		b.Fatal(err)
	}
	tiers := []struct {
		name string
		opts replace.InstrumentOptions
	}{
		{"fullsave", replace.InstrumentOptions{NoAnalysis: true}},
		{"gated", replace.InstrumentOptions{}},
		{"elided", replace.InstrumentOptions{
			NoAnalysis: true,
			Snippet:    replace.Options{LivenessElision: true},
		}},
	}
	for _, tier := range tiers {
		tier := tier
		b.Run(tier.name, func(b *testing.B) {
			c, err := config.FromModule(bench.Module)
			if err != nil {
				b.Fatal(err)
			}
			c.SetAll(config.Double)
			inst, err := replace.Instrument(bench.Module, c, tier.opts)
			if err != nil {
				b.Fatal(err)
			}
			var overhead float64
			for i := 0; i < b.N; i++ {
				orig, err := run(bench.Module)
				if err != nil {
					b.Fatal(err)
				}
				wrapped, err := run(inst)
				if err != nil {
					b.Fatal(err)
				}
				overhead = float64(wrapped.Cycles) / float64(orig.Cycles)
			}
			b.ReportMetric(overhead, "overheadX")
		})
	}
}
