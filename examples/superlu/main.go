// SuperLU threshold sweep (paper §3.3, Figure 11): drive the automatic
// search with the solver's own reported error metric compared against
// successively tighter bounds, and watch the replaceable fraction shrink.
package main

import (
	"fmt"
	"log"
	"os"

	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/report"
	"fpmix/internal/vm"
)

func main() {
	b, err := kernels.Get("superlu", kernels.ClassW)
	if err != nil {
		log.Fatal(err)
	}
	d, err := vm.New(b.Module)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}
	s, err := vm.New(b.ModuleF32)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double-precision solver reported error: %.3g\n", d.Out[0].F64())
	fmt.Printf("single-precision solver reported error: %.3g\n", float64(s.Out[0].F32()))
	fmt.Printf("manual single-precision speedup:        %.2fX\n\n",
		float64(d.Cycles)/float64(s.Cycles))

	rows, err := experiments.Fig11(kernels.ClassW, 8)
	if err != nil {
		log.Fatal(err)
	}
	report.Fig11(os.Stdout, rows)
	fmt.Println("\nTighter thresholds leave fewer instructions replaceable, and the")
	fmt.Println("final composed error stays well below the bound used during the")
	fmt.Println("search — the tool maps where the solver is sensitive to roundoff.")
}
