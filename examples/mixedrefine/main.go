// Mixed-precision iterative refinement (the paper's Figure 12, from the
// related-work discussion it builds on): the O(n^3) LU factorization and
// O(n^2) triangular solves run in single precision, while only the
// residual computation and solution update (the starred lines 5 and 8 of
// the algorithm) stay double. The refinement loop recovers full double
// accuracy — demonstrated here by expressing the algorithm as a precision
// configuration over an ordinary double-precision binary.
package main

import (
	"fmt"
	"log"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/mm"
	"fpmix/internal/replace"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

const n = 32
const refineSteps = 6

func build() (*hl.Prog, map[string]bool) {
	A := mm.Memplus(n, 99).Dense()
	p := hl.New("mixedrefine", hl.ModeF64)
	a := p.ArrayInit("a", A)
	a0 := p.ArrayInit("a0", A)
	b := p.Array("b", n)
	xt := p.Array("xt", n)
	x := p.Array("x", n)
	z := p.Array("z", n)
	r := p.Array("r", n)
	y := p.Array("y", n)
	t := p.Scalar("t")
	pmax := p.Scalar("pmax")
	errv := p.Scalar("errv")
	i := p.Int("i")
	j := p.Int("j")
	k := p.Int("k")
	prow := p.Int("prow")
	it := p.Int("it")

	at := func(arr hl.FArr, ie, je hl.IExpr) hl.Expr {
		return hl.At(arr, hl.IAdd(hl.IMul(ie, hl.IConst(n)), je))
	}
	stor := func(fb *hl.FuncBuilder, arr hl.FArr, ie, je hl.IExpr, e hl.Expr) {
		fb.Store(arr, hl.IAdd(hl.IMul(ie, hl.IConst(n)), je), e)
	}

	init := p.Func("init")
	init.For(i, hl.IConst(0), hl.IConst(n), func() {
		init.SetI(j, hl.ISub(hl.ILoad(i), hl.IMul(hl.IDiv(hl.ILoad(i), hl.IConst(5)), hl.IConst(5))))
		init.Store(xt, hl.ILoad(i), hl.Add(hl.Const(1), hl.Mul(hl.Const(0.25), hl.FromInt(hl.ILoad(j)))))
		init.Store(x, hl.ILoad(i), hl.Const(0))
	})
	init.For(i, hl.IConst(0), hl.IConst(n), func() {
		init.Set(t, hl.Const(0))
		init.For(j, hl.IConst(0), hl.IConst(n), func() {
			init.Set(t, hl.Add(hl.Load(t), hl.Mul(at(a0, hl.ILoad(i), hl.ILoad(j)), hl.At(xt, hl.ILoad(j)))))
		})
		init.Store(b, hl.ILoad(i), hl.Load(t))
		init.Store(r, hl.ILoad(i), hl.Load(t))
	})
	init.Ret()

	// factor: LU with partial pivoting — O(n^3), single precision in the
	// mixed configuration.
	fac := p.Func("factor")
	fac.For(k, hl.IConst(0), hl.IConst(n), func() {
		fac.Set(pmax, hl.Abs(at(a, hl.ILoad(k), hl.ILoad(k))))
		fac.SetI(prow, hl.ILoad(k))
		fac.For(i, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(n), func() {
			fac.If(hl.Gt(hl.Abs(at(a, hl.ILoad(i), hl.ILoad(k))), hl.Load(pmax)), func() {
				fac.Set(pmax, hl.Abs(at(a, hl.ILoad(i), hl.ILoad(k))))
				fac.SetI(prow, hl.ILoad(i))
			}, nil)
		})
		fac.If(hl.INe(hl.ILoad(prow), hl.ILoad(k)), func() {
			fac.For(j, hl.IConst(0), hl.IConst(n), func() {
				fac.Set(t, at(a, hl.ILoad(k), hl.ILoad(j)))
				stor(fac, a, hl.ILoad(k), hl.ILoad(j), at(a, hl.ILoad(prow), hl.ILoad(j)))
				stor(fac, a, hl.ILoad(prow), hl.ILoad(j), hl.Load(t))
				// Permute A0 and b identically so refinement residuals use
				// the permuted system throughout.
				fac.Set(t, at(a0, hl.ILoad(k), hl.ILoad(j)))
				stor(fac, a0, hl.ILoad(k), hl.ILoad(j), at(a0, hl.ILoad(prow), hl.ILoad(j)))
				stor(fac, a0, hl.ILoad(prow), hl.ILoad(j), hl.Load(t))
			})
			fac.Set(t, hl.At(b, hl.ILoad(k)))
			fac.Store(b, hl.ILoad(k), hl.At(b, hl.ILoad(prow)))
			fac.Store(b, hl.ILoad(prow), hl.Load(t))
			fac.Set(t, hl.At(r, hl.ILoad(k)))
			fac.Store(r, hl.ILoad(k), hl.At(r, hl.ILoad(prow)))
			fac.Store(r, hl.ILoad(prow), hl.Load(t))
		}, nil)
		fac.For(i, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(n), func() {
			fac.Set(t, hl.Div(at(a, hl.ILoad(i), hl.ILoad(k)), at(a, hl.ILoad(k), hl.ILoad(k))))
			stor(fac, a, hl.ILoad(i), hl.ILoad(k), hl.Load(t))
			fac.For(j, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(n), func() {
				stor(fac, a, hl.ILoad(i), hl.ILoad(j),
					hl.Sub(at(a, hl.ILoad(i), hl.ILoad(j)), hl.Mul(hl.Load(t), at(a, hl.ILoad(k), hl.ILoad(j)))))
			})
		})
	})
	fac.Ret()

	// solve: z = U^-1 L^-1 r — O(n^2), single precision.
	sol := p.Func("solve")
	sol.For(i, hl.IConst(0), hl.IConst(n), func() {
		sol.Set(t, hl.At(r, hl.ILoad(i)))
		sol.For(j, hl.IConst(0), hl.ILoad(i), func() {
			sol.Set(t, hl.Sub(hl.Load(t), hl.Mul(at(a, hl.ILoad(i), hl.ILoad(j)), hl.At(y, hl.ILoad(j)))))
		})
		sol.Store(y, hl.ILoad(i), hl.Load(t))
	})
	sol.SetI(i, hl.IConst(n-1))
	sol.While(hl.IGe(hl.ILoad(i), hl.IConst(0)), func() {
		sol.Set(t, hl.At(y, hl.ILoad(i)))
		sol.For(j, hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.IConst(n), func() {
			sol.Set(t, hl.Sub(hl.Load(t), hl.Mul(at(a, hl.ILoad(i), hl.ILoad(j)), hl.At(z, hl.ILoad(j)))))
		})
		sol.Store(z, hl.ILoad(i), hl.Div(hl.Load(t), at(a, hl.ILoad(i), hl.ILoad(i))))
		sol.SetI(i, hl.ISub(hl.ILoad(i), hl.IConst(1)))
	})
	sol.Ret()

	// update: x += z and r = b - A0 x — the starred double-precision
	// lines 5 and 8 of Figure 12.
	upd := p.Func("update")
	upd.For(i, hl.IConst(0), hl.IConst(n), func() {
		upd.Store(x, hl.ILoad(i), hl.Add(hl.At(x, hl.ILoad(i)), hl.At(z, hl.ILoad(i))))
	})
	upd.For(i, hl.IConst(0), hl.IConst(n), func() {
		upd.Set(t, hl.Const(0))
		upd.For(j, hl.IConst(0), hl.IConst(n), func() {
			upd.Set(t, hl.Add(hl.Load(t), hl.Mul(at(a0, hl.ILoad(i), hl.ILoad(j)), hl.At(x, hl.ILoad(j)))))
		})
		upd.Store(r, hl.ILoad(i), hl.Sub(hl.At(b, hl.ILoad(i)), hl.Load(t)))
	})
	upd.Ret()

	// errcheck: forward error against the known solution, emitted per
	// refinement step.
	ec := p.Func("errcheck")
	ec.Set(errv, hl.Const(0))
	ec.For(i, hl.IConst(0), hl.IConst(n), func() {
		ec.Set(errv, hl.Max(hl.Load(errv), hl.Abs(hl.Sub(hl.At(x, hl.ILoad(i)), hl.At(xt, hl.ILoad(i))))))
	})
	ec.Out(hl.Load(errv))
	ec.Ret()

	main := p.Func("main")
	main.Call("init")
	main.Call("factor")
	main.For(it, hl.IConst(0), hl.IConst(refineSteps), func() {
		main.Call("solve")
		main.Call("update")
		main.Call("errcheck")
	})
	main.Halt()

	return p, map[string]bool{"factor": true, "solve": true}
}

func main() {
	p, singleFuncs := build()
	mod, err := p.Build("main")
	if err != nil {
		log.Fatal(err)
	}

	run := func(c *config.Config, label string) []float64 {
		target := mod
		if c != nil {
			target, err = replace.Instrument(mod, c, replace.InstrumentOptions{})
			if err != nil {
				log.Fatal(err)
			}
		}
		m, err := vm.New(target)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Run(); err != nil {
			log.Fatal(err)
		}
		vals := verify.Decode(m.Out)
		fmt.Printf("%-24s cycles=%-10d", label, m.Cycles)
		for i, v := range vals {
			fmt.Printf("  it%d=%.1e", i+1, v)
		}
		fmt.Println()
		return vals
	}

	fmt.Printf("Mixed-precision iterative refinement, n=%d (Figure 12)\n", n)
	fmt.Println("forward error after each refinement step:")
	dbl := run(nil, "all double")

	c, err := config.FromModule(mod)
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range c.Root.Children {
		if singleFuncs[fn.Name] {
			fn.Flag = config.Single
		}
	}
	mix := run(c, "mixed (Fig 12 config)")

	fmt.Printf("\nfirst solve:  mixed error %.1e vs double %.1e (single factorization)\n",
		mix[0], dbl[0])
	fmt.Printf("after refine: mixed error %.1e vs double %.1e (O(n^2) double work only)\n",
		mix[len(mix)-1], dbl[len(dbl)-1])
	if mix[len(mix)-1] < 1e-10 {
		fmt.Println("refinement recovered double accuracy from a single-precision factorization")
	}
}
