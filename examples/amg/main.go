// AMG end-to-end conversion (paper §3.2): the search verifies the whole
// multigrid microkernel tolerates single precision, and the manual
// ModeF32 rebuild realizes the speedup the analysis promised.
package main

import (
	"fmt"
	"log"

	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/report"
	"os"
)

func main() {
	res, err := experiments.AMG(kernels.ClassA, 8)
	if err != nil {
		log.Fatal(err)
	}
	report.AMG(os.Stdout, res)
	if res.AllSinglePass && res.SearchFinalPass {
		fmt.Println("\nThe analysis identified the entire kernel as single-safe;")
		fmt.Println("recompiling at single precision realizes the speedup without")
		fmt.Println("any further experimentation — the paper's end-to-end workflow.")
	}
}
