// NAS search sweep (paper Figure 10): run the automatic breadth-first
// search over the seven NAS-style kernels at one or two classes and print
// the candidates / tested / static% / dynamic% / final-verification table.
package main

import (
	"flag"
	"log"
	"os"
	"runtime"
	"strings"

	"fpmix/internal/experiments"
	"fpmix/internal/kernels"
	"fpmix/internal/report"
)

func main() {
	classes := flag.String("classes", "W", "comma-separated input classes")
	benches := flag.String("benches", strings.Join(experiments.Fig10Benches, ","),
		"comma-separated benchmarks")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel evaluations")
	flag.Parse()

	var cls []kernels.Class
	for _, c := range strings.Split(*classes, ",") {
		cls = append(cls, kernels.Class(strings.TrimSpace(c)))
	}
	rows, err := experiments.Fig10(strings.Split(*benches, ","), cls, *workers)
	if err != nil {
		log.Fatal(err)
	}
	report.Fig10(os.Stdout, rows)
}
