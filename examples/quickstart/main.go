// Quickstart: build a small double-precision program, run the automatic
// mixed-precision search against a verification routine, and print the
// resulting configuration — the complete analysis loop of the paper in
// ~80 lines.
package main

import (
	"fmt"
	"log"
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/replace"
	"fpmix/internal/search"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

func main() {
	// A toy program with one precision-tolerant region (polynomial
	// evaluation) and one precision-critical region (accumulating tiny
	// increments that vanish in float32).
	p := hl.New("quickstart", hl.ModeF64)
	poly := p.Scalar("poly")
	tiny := p.ScalarInit("tiny", 1.0)
	x := p.ScalarInit("x", 1.4142135623730951)
	i := p.Int("i")

	main := p.Func("main")
	main.Call("evaluate")
	main.Call("accumulate")
	main.Out(hl.Load(poly))
	main.Out(hl.Load(tiny))
	main.Halt()

	ev := p.Func("evaluate")
	// poly = ((x*3 - 2)*x + 0.5)*x via Horner.
	ev.Set(poly, hl.Mul(hl.Const(3), hl.Load(x)))
	ev.Set(poly, hl.Sub(hl.Load(poly), hl.Const(2)))
	ev.Set(poly, hl.Add(hl.Mul(hl.Load(poly), hl.Load(x)), hl.Const(0.5)))
	ev.Set(poly, hl.Mul(hl.Load(poly), hl.Load(x)))
	ev.Ret()

	acc := p.Func("accumulate")
	acc.For(i, hl.IConst(0), hl.IConst(500), func() {
		acc.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
	})
	acc.Ret()

	mod, err := p.Build("main")
	if err != nil {
		log.Fatal(err)
	}

	// Trusted reference outputs from the double-precision binary.
	ref, err := vm.New(mod)
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		log.Fatal(err)
	}
	refVals := verify.Decode(ref.Out)
	fmt.Printf("reference: poly=%.15g tiny=%.15g (%d cycles)\n",
		refVals[0], refVals[1], ref.Cycles)

	// Verification: the polynomial result may drift to single accuracy,
	// but the accumulated sum must stay double-exact — a per-output
	// tolerance, as application verification routines typically are.
	verifyFn := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != 2 {
			return false
		}
		return math.Abs(got[0]-refVals[0]) < 1e-5 &&
			math.Abs(got[1]-refVals[1]) < 1e-12
	}
	res, err := search.Run(search.Target{
		Module: mod,
		Verify: verifyFn,
	}, search.Options{Workers: 4, BinarySplit: true, Prioritize: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsearch: %d candidates, %d configurations tested\n",
		res.Candidates, res.Tested)
	fmt.Printf("replaceable: %.0f%% static, %.0f%% dynamic, final pass: %v\n",
		res.Stats.StaticPct, res.Stats.DynamicPct, res.FinalPass)
	for _, piece := range res.Passing {
		fmt.Printf("  passes in single precision: %s\n", piece.Label)
	}

	// Run the final mixed-precision binary.
	inst, err := replace.Instrument(mod, res.Final, replace.InstrumentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := vm.New(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(); err != nil {
		log.Fatal(err)
	}
	got := verify.Decode(m.Out)
	fmt.Printf("\nmixed-precision run: poly=%.15g tiny=%.15g\n", got[0], got[1])
	fmt.Printf("poly drift: %.2g (single-precision region)\n", math.Abs(got[0]-refVals[0]))
	fmt.Printf("tiny drift: %.2g (kept double)\n", math.Abs(got[1]-refVals[1]))

	fmt.Printf("\nfinal configuration:\n%s", res.Final.String())
}
