package dataflow

import "fpmix/internal/isa"

// bitset is a fixed-width bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }

// or merges src into b, reporting whether b changed.
func (b bitset) or(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

func laneLoc(xmm uint8, lane int) int { return locLane + 2*int(xmm) + lane }

// regEffect describes an instruction's register reads and full
// overwrites, for the liveness pass. Memory locations are not tracked by
// liveness (memory is conservatively always live); memory operands
// contribute base/index register uses.
type regEffect struct {
	uses []int
	defs []int
}

// regEffects computes the use/def sets of in over the register location
// space. Unknown instructions conservatively use everything and define
// nothing.
func regEffects(in isa.Instr) regEffect {
	var e regEffect
	use := func(l ...int) { e.uses = append(e.uses, l...) }
	def := func(l ...int) { e.defs = append(e.defs, l...) }
	memUse := func(m isa.MemRef) {
		use(locGPR + int(m.Base))
		if m.HasIndex {
			use(locGPR + int(m.Index))
		}
	}
	gpr := func(op isa.Operand) int { return locGPR + int(op.Reg) }
	lane0 := func(op isa.Operand) int { return laneLoc(op.Reg, 0) }
	lane1 := func(op isa.Operand) int { return laneLoc(op.Reg, 1) }

	// Source operand helper: FP source that is either an XMM register
	// (use given lanes) or memory (use address registers).
	srcFP := func(op isa.Operand, both bool) {
		switch op.Kind {
		case isa.KindXMM:
			use(lane0(op))
			if both {
				use(lane1(op))
			}
		case isa.KindMem:
			memUse(op.Mem)
		}
	}

	switch in.Op {
	case isa.NOP, isa.HALT, isa.RET, isa.CALL, isa.JMP:
		// no register effects (CALL/RET stack traffic is return
		// addresses only)
	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JAE, isa.JA, isa.JBE:
		// condition flags are not tracked

	case isa.SYSCALL:
		switch in.A.Imm {
		case isa.SysOutF64, isa.SysOutF32:
			use(laneLoc(0, 0))
		case isa.SysOutI64:
			use(locGPR + int(isa.RAX))
		case isa.SysMPIRank, isa.SysMPISize:
			def(locGPR + int(isa.RAX))
		case isa.SysMPIBarrier:
		case isa.SysMPISendF64, isa.SysMPIRecvF64, isa.SysMPIBcastF64:
			use(locGPR+int(isa.RDI), locGPR+int(isa.RSI), locGPR+int(isa.RDX))
		case isa.SysMPIAllreduce:
			use(locGPR+int(isa.RDI), locGPR+int(isa.RSI))
		default:
			// Unknown host call: conservatively reads everything.
			for l := 0; l < nRegLocs; l++ {
				use(l)
			}
		}

	case isa.MOVRI:
		def(gpr(in.A))
	case isa.MOVRR:
		def(gpr(in.A))
		use(gpr(in.B))
	case isa.LOAD:
		def(gpr(in.A))
		memUse(in.B.Mem)
	case isa.STORE:
		use(gpr(in.B))
		memUse(in.A.Mem)
	case isa.LEA:
		def(gpr(in.A))
		memUse(in.B.Mem)

	case isa.ADDR, isa.SUBR, isa.IMULR, isa.ANDR, isa.ORR, isa.XORR, isa.IDIVR:
		use(gpr(in.A), gpr(in.B))
		def(gpr(in.A))
	case isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI:
		use(gpr(in.A))
		def(gpr(in.A))
	case isa.CMPR, isa.TESTR:
		use(gpr(in.A), gpr(in.B))
	case isa.CMPI, isa.TESTI:
		use(gpr(in.A))

	case isa.PUSH:
		use(gpr(in.A))
	case isa.POP:
		def(gpr(in.A))
	case isa.PUSHX:
		use(lane0(in.A), lane1(in.A))
	case isa.POPX:
		def(lane0(in.A), lane1(in.A))

	case isa.MOVSD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			use(lane0(in.B))
			def(lane0(in.A))
		case in.A.Kind == isa.KindXMM: // load zeroes the upper lane
			memUse(in.B.Mem)
			def(lane0(in.A), lane1(in.A))
		default: // store
			use(lane0(in.B))
			memUse(in.A.Mem)
		}
	case isa.MOVSS:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			use(lane0(in.B), lane0(in.A)) // merges into dst's low 32 bits
		case in.A.Kind == isa.KindXMM: // load zeroes bits 32..127
			memUse(in.B.Mem)
			def(lane0(in.A), lane1(in.A))
		default:
			use(lane0(in.B))
			memUse(in.A.Mem)
		}
	case isa.MOVAPD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			use(lane0(in.B), lane1(in.B))
			def(lane0(in.A), lane1(in.A))
		case in.A.Kind == isa.KindXMM:
			memUse(in.B.Mem)
			def(lane0(in.A), lane1(in.A))
		default:
			use(lane0(in.B), lane1(in.B))
			memUse(in.A.Mem)
		}
	case isa.MOVQ:
		if in.A.Kind == isa.KindXMM {
			def(lane0(in.A))
			use(gpr(in.B))
		} else {
			def(gpr(in.A))
			use(lane0(in.B))
		}
	case isa.MOVHQ:
		if in.A.Kind == isa.KindXMM {
			def(lane1(in.A))
			use(gpr(in.B))
		} else {
			def(gpr(in.A))
			use(lane1(in.B))
		}

	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.MINSD, isa.MAXSD:
		use(lane0(in.A))
		srcFP(in.B, false)
		def(lane0(in.A))
	case isa.SQRTSD, isa.SINSD, isa.COSSD, isa.EXPSD, isa.LOGSD:
		srcFP(in.B, false)
		def(lane0(in.A))
	case isa.UCOMISD, isa.UCOMISS:
		use(lane0(in.A))
		srcFP(in.B, false)
	case isa.ANDPD, isa.ORPD, isa.XORPD:
		use(lane0(in.A), lane1(in.A))
		srcFP(in.B, true)
		def(lane0(in.A), lane1(in.A))

	case isa.CVTSD2SS, isa.CVTSI2SS:
		// Write the low 32 bits of dst lane 0, preserving the rest.
		use(lane0(in.A))
		if in.Op == isa.CVTSD2SS {
			srcFP(in.B, false)
		} else {
			use(gpr(in.B))
		}
	case isa.CVTSS2SD:
		srcFP(in.B, false)
		def(lane0(in.A))
	case isa.CVTSI2SD:
		use(gpr(in.B))
		def(lane0(in.A))
	case isa.CVTTSD2SI, isa.CVTTSS2SI:
		srcFP(in.B, false)
		def(gpr(in.A))

	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS:
		use(lane0(in.A))
		srcFP(in.B, false)
		// merges into the low 32 bits only: no full def
	case isa.SQRTSS, isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		use(lane0(in.A))
		srcFP(in.B, false)

	case isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD:
		use(lane0(in.A), lane1(in.A))
		srcFP(in.B, true)
		def(lane0(in.A), lane1(in.A))
	case isa.SQRTPD:
		srcFP(in.B, true)
		def(lane0(in.A), lane1(in.A))
	case isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS:
		use(lane0(in.A), lane1(in.A))
		srcFP(in.B, true)
		def(lane0(in.A), lane1(in.A))
	case isa.SQRTPS:
		srcFP(in.B, true)
		def(lane0(in.A), lane1(in.A))

	default:
		// Unknown opcode: conservatively reads everything, defines
		// nothing.
		for l := 0; l < nRegLocs; l++ {
			use(l)
		}
	}
	return e
}

// liveness computes, for every instruction, the set of register
// locations live immediately after it (backward may-analysis over the
// supergraph).
func (a *analysis) liveness() []bitset {
	n := len(a.instrs)
	effects := make([]regEffect, n)
	for i, in := range a.instrs {
		effects[i] = regEffects(in)
	}
	liveIn := make([]bitset, n)
	liveOut := make([]bitset, n)
	for i := 0; i < n; i++ {
		liveIn[i] = newBitset(nRegLocs)
		liveOut[i] = newBitset(nRegLocs)
	}
	// Worklist seeded in reverse order (roughly topological for the
	// backward direction).
	inList := make([]bool, n)
	work := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		work = append(work, i)
		inList[i] = true
	}
	tmp := newBitset(nRegLocs)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inList[i] = false

		out := liveOut[i]
		for _, s := range a.succs[i] {
			out.or(liveIn[s])
		}
		tmp.copyFrom(out)
		for _, d := range effects[i].defs {
			tmp.clear(d)
		}
		for _, u := range effects[i].uses {
			tmp.set(u)
		}
		if liveIn[i].or(tmp) {
			for _, p := range a.preds[i] {
				if !inList[p] {
					inList[p] = true
					work = append(work, int(p))
				}
			}
		}
	}
	return liveOut
}

// scratchLocs are the locations the replacement snippets use as scratch:
// r14, r15 and both lanes of xmm14 and xmm15.
var scratchLocs = []int{
	locGPR + int(isa.R14), locGPR + int(isa.R15),
	laneLoc(14, 0), laneLoc(14, 1), laneLoc(15, 0), laneLoc(15, 1),
}

// scratchDead reports whether instruction i neither references the
// snippet scratch registers nor leaves any of them live.
func (a *analysis) scratchDead(i int, liveOut []bitset) bool {
	in := a.instrs[i]
	for _, op := range []isa.Operand{in.A, in.B} {
		switch op.Kind {
		case isa.KindGPR:
			if op.Reg == isa.R14 || op.Reg == isa.R15 {
				return false
			}
		case isa.KindXMM:
			if op.Reg == 14 || op.Reg == 15 {
				return false
			}
		case isa.KindMem:
			if op.Mem.Base == isa.R14 || op.Mem.Base == isa.R15 {
				return false
			}
			if op.Mem.HasIndex && (op.Mem.Index == isa.R14 || op.Mem.Index == isa.R15) {
				return false
			}
		}
	}
	for _, l := range scratchLocs {
		if liveOut[i].get(l) {
			return false
		}
	}
	return true
}
