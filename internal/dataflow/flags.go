package dataflow

import "fpmix/internal/isa"

// flagReach computes, for every instruction, which locations may hold a
// value carrying the 0x7FF4DEAD replacement sentinel immediately before
// it executes (forward may-analysis).
//
// The analysis runs under an "any configuration" abstraction: every
// candidate instruction may be configured single, in which case its
// replacement snippet downcasts its XMM register sources in place
// (stamping the sentinel into them) and stamps its XMM destination.
// Memory sources are promoted to a scratch register by the snippet and
// are never stamped in place. A location is clean only if it is clean
// under every configuration, which is exactly the condition for eliding
// flag-check prologues and skipping double wrappers.
//
// MPI receive and broadcast syscalls deposit raw incoming payloads
// (possibly flagged by the sender's snippets) at addresses held in
// registers, so they conservatively poison all of memory; allreduce
// writes back plain reduced doubles and is flag-transparent.
func (a *analysis) flagReach() []bitset {
	return a.flagReachFor(nil, false)
}

// flagReachFor is flagReach with the sentinel sources restricted to the
// given single-configured candidate addresses; nil means every candidate
// may be single (the any-configuration abstraction above). Under a
// restricted source set, candidates outside it are double sites: their
// wrappers (or, when their inputs are proven clean, the bare originals)
// never stamp a source and always produce plain double results. precise
// additionally resolves array accesses through the module's region
// table (memLocsPrec) instead of the everything blob.
func (a *analysis) flagReachFor(singles map[uint64]bool, precise bool) []bitset {
	n := len(a.instrs)
	flagIn := make([]bitset, n)
	for i := range flagIn {
		flagIn[i] = newBitset(a.nLocs)
	}
	inList := make([]bool, n)
	var work []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			work = append(work, i)
		}
	}
	// Seed only the instructions that can generate a flag from bottom
	// (in reverse so the LIFO pops in forward order): every other
	// transfer maps bottom to bottom, so it first needs to run only once
	// a predecessor pushes state into it. With a small singles set this
	// keeps the fixpoint proportional to the flagged subgraph rather
	// than the whole module.
	for i := n - 1; i >= 0; i-- {
		in := a.instrs[i]
		switch {
		case isa.IsCandidate(in.Op):
			if singles == nil || singles[in.Addr] {
				push(i)
			}
		case in.Op == isa.MOVRI:
			if uint32(uint64(in.B.Imm)>>32) == isa.ReplacedFlag {
				push(i)
			}
		case in.Op == isa.SYSCALL:
			if in.A.Imm == isa.SysMPIRecvF64 || in.A.Imm == isa.SysMPIBcastF64 {
				push(i)
			}
		}
	}
	out := newBitset(a.nLocs)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inList[i] = false

		out.copyFrom(flagIn[i])
		a.flagStepFor(i, out, singles, precise)
		for _, s := range a.succs[i] {
			if flagIn[s].or(out) {
				push(int(s))
			}
		}
	}
	return flagIn
}

// flagStep applies instruction i's transfer function to state in place.
func (a *analysis) flagStep(i int, st bitset) {
	a.flagStepFor(i, st, nil, false)
}

// flagStepFor is flagStep under a restricted single-candidate set (nil =
// any configuration) and an optional precise memory model. It takes only
// per-call state, so concurrent analyses over the same supergraph are
// safe.
func (a *analysis) flagStepFor(i int, st bitset, singles map[uint64]bool, precise bool) {
	in := a.instrs[i]

	if isa.IsCandidate(in.Op) {
		if singles == nil || singles[in.Addr] {
			a.flagCandidate(in, st)
		} else {
			a.flagDouble(in, st)
		}
		return
	}

	lane0 := func(op isa.Operand) int { return laneLoc(op.Reg, 0) }
	lane1 := func(op isa.Operand) int { return laneLoc(op.Reg, 1) }
	gpr := func(op isa.Operand) int { return locGPR + int(op.Reg) }
	resolve := a.memLocs
	if precise {
		resolve = a.memLocsPrec
	}
	// join of a memory operand's possible locations
	memGet := func(m isa.MemRef, wide bool) bool {
		locs, _ := resolve(m, wide)
		for _, l := range locs {
			if st.get(l) {
				return true
			}
		}
		return false
	}
	// write v to a memory operand: strong update when the address
	// resolves to one slot, weak otherwise
	memSet := func(m isa.MemRef, wide, v bool) {
		locs, direct := resolve(m, wide)
		for _, l := range locs {
			if v {
				st.set(l)
			} else if direct {
				st.clear(l)
			}
		}
	}
	assign := func(l int, v bool) {
		if v {
			st.set(l)
		} else {
			st.clear(l)
		}
	}

	switch in.Op {
	case isa.MOVRI:
		// Immediates are clean — except one that itself carries the
		// sentinel in its high word. Our own single-precision snippets
		// construct replaced values exactly this way (movri + orr), so
		// tracking it keeps re-instrumentation of an already-instrumented
		// binary sound.
		if uint32(uint64(in.B.Imm)>>32) == isa.ReplacedFlag {
			st.set(gpr(in.A))
		} else {
			st.clear(gpr(in.A))
		}
	case isa.MOVRR:
		assign(gpr(in.A), st.get(gpr(in.B)))
	case isa.LOAD:
		assign(gpr(in.A), memGet(in.B.Mem, false))
	case isa.STORE:
		memSet(in.A.Mem, false, st.get(gpr(in.B)))
	case isa.LEA:
		st.clear(gpr(in.A)) // addresses are clean

	case isa.ADDR, isa.SUBR, isa.IMULR, isa.ANDR, isa.ORR, isa.XORR, isa.IDIVR:
		// Integer arithmetic could in principle reconstruct the bit
		// pattern; stay conservative and join the inputs.
		assign(gpr(in.A), st.get(gpr(in.A)) || st.get(gpr(in.B)))
	case isa.ADDI, isa.SUBI, isa.IMULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI:
		// keep current state

	case isa.PUSH:
		if st.get(gpr(in.A)) {
			st.set(a.stackLoc())
		}
	case isa.POP:
		assign(gpr(in.A), st.get(a.stackLoc()))
	case isa.PUSHX:
		if st.get(lane0(in.A)) || st.get(lane1(in.A)) {
			st.set(a.stackLoc())
		}
	case isa.POPX:
		assign(lane0(in.A), st.get(a.stackLoc()))
		assign(lane1(in.A), st.get(a.stackLoc()))

	case isa.MOVSD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			assign(lane0(in.A), st.get(lane0(in.B)))
		case in.A.Kind == isa.KindXMM: // load zeroes the upper lane
			assign(lane0(in.A), memGet(in.B.Mem, false))
			st.clear(lane1(in.A))
		default:
			memSet(in.A.Mem, false, st.get(lane0(in.B)))
		}
	case isa.MOVSS:
		// 32-bit moves never transport the sentinel (it lives in the
		// high half of a 64-bit location).
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			// dst's high bits (and flag state) are preserved
		case in.A.Kind == isa.KindXMM:
			st.clear(lane0(in.A)) // bits 32..127 zeroed
			st.clear(lane1(in.A))
		default:
			// A 4-byte store touches only the payload half of an
			// aligned slot; flag state of the slot is unchanged.
		}
	case isa.MOVAPD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			assign(lane0(in.A), st.get(lane0(in.B)))
			assign(lane1(in.A), st.get(lane1(in.B)))
		case in.A.Kind == isa.KindXMM:
			v := memGet(in.B.Mem, true)
			assign(lane0(in.A), v)
			assign(lane1(in.A), v)
		default:
			memSet(in.A.Mem, true, st.get(lane0(in.B)) || st.get(lane1(in.B)))
		}
	case isa.MOVQ:
		if in.A.Kind == isa.KindXMM {
			assign(lane0(in.A), st.get(gpr(in.B)))
		} else {
			assign(gpr(in.A), st.get(lane0(in.B)))
		}
	case isa.MOVHQ:
		if in.A.Kind == isa.KindXMM {
			assign(lane1(in.A), st.get(gpr(in.B)))
		} else {
			assign(gpr(in.A), st.get(lane1(in.B)))
		}

	case isa.ANDPD, isa.ORPD, isa.XORPD:
		if in.Op == isa.XORPD && in.B.Kind == isa.KindXMM && in.A.Reg == in.B.Reg {
			// zeroing idiom
			st.clear(lane0(in.A))
			st.clear(lane1(in.A))
			break
		}
		var b0, b1 bool
		if in.B.Kind == isa.KindXMM {
			b0, b1 = st.get(lane0(in.B)), st.get(lane1(in.B))
		} else {
			v := memGet(in.B.Mem, true)
			b0, b1 = v, v
		}
		assign(lane0(in.A), st.get(lane0(in.A)) || b0)
		assign(lane1(in.A), st.get(lane1(in.A)) || b1)

	case isa.CVTSD2SS, isa.CVTSI2SS:
		// writes the low 32 bits of dst lane 0 only: flag state of the
		// destination is preserved
	case isa.CVTSS2SD:
		// produces an ordinary double (crafted-NaN payloads excluded by
		// the scheme's standing assumption)
		st.clear(lane0(in.A))
	case isa.CVTTSS2SI:
		st.clear(gpr(in.A))

	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS,
		isa.SQRTSS, isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		// single-precision results land in the low 32 bits; the flag
		// half of the destination is preserved
	case isa.UCOMISS:
		// flags only

	case isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS, isa.SQRTPS:
		// packed-single results are float32 data in all four words
		st.clear(lane0(in.A))
		st.clear(lane1(in.A))

	case isa.SYSCALL:
		switch in.A.Imm {
		case isa.SysMPIRank, isa.SysMPISize:
			st.clear(locGPR + int(isa.RAX))
		case isa.SysMPIRecvF64, isa.SysMPIBcastF64:
			// Raw incoming payloads may be flagged; the destination
			// buffer address is in a register, so poison all of memory.
			for s := nRegLocs; s < a.nLocs; s++ {
				st.set(s)
			}
		case isa.SysMPIAllreduce:
			// writes back plain reduced doubles: flag-transparent
		}
	}
}

// flagCandidate applies the any-configuration transfer of a candidate:
// XMM register sources may be downcast-stamped in place, and the XMM
// destination may be stamped; a GPR destination (CVTTSD2SI) receives a
// plain integer. Memory sources are promoted by the snippet, never
// stamped in place.
func (a *analysis) flagCandidate(in isa.Instr, st bitset) {
	packed := isa.IsPacked(in.Op)
	mark := func(op isa.Operand) {
		if op.Kind != isa.KindXMM {
			return
		}
		st.set(laneLoc(op.Reg, 0))
		if packed {
			st.set(laneLoc(op.Reg, 1))
		}
	}
	if isa.ConsumesFP(in.Op) {
		mark(in.B)
		if isa.DstIsSource(in.Op) {
			mark(in.A)
		}
	}
	if isa.WritesDst(in.Op) {
		switch in.A.Kind {
		case isa.KindXMM:
			mark(in.A)
		case isa.KindGPR:
			st.clear(locGPR + int(in.A.Reg))
		}
	}
}

// flagDouble applies the transfer of a candidate held at double
// precision: neither the wrapper snippet nor the bare original stamps a
// source in place, and the result — an ordinary double (wrappers upcast
// any flagged input first) or a plain integer — is clean. Memory
// destinations are left untouched, conservatively preserving any prior
// maybe-flagged state.
func (a *analysis) flagDouble(in isa.Instr, st bitset) {
	if !isa.WritesDst(in.Op) {
		return
	}
	switch in.A.Kind {
	case isa.KindXMM:
		st.clear(laneLoc(in.A.Reg, 0))
		if isa.IsPacked(in.Op) {
			st.clear(laneLoc(in.A.Reg, 1))
		}
	case isa.KindGPR:
		st.clear(locGPR + int(in.A.Reg))
	}
}

// cleanInputs reports whether no floating-point input of candidate i can
// be flagged under any configuration.
func (a *analysis) cleanInputs(i int, flagIn []bitset) bool {
	return a.cleanInputsPrec(i, flagIn, false)
}

// cleanInputsPrec is cleanInputs with the memory model matching the
// flagReachFor call that produced flagIn.
func (a *analysis) cleanInputsPrec(i int, flagIn []bitset, precise bool) bool {
	oc := a.cleanOperandsPrec(i, flagIn, precise)
	return oc.Src && oc.Dst
}

// cleanOperandsPrec splits cleanInputsPrec per operand: Src is the B
// (source) operand, Dst the destination-read-as-source operand of
// dst-is-source ops. An operand the instruction does not read as
// floating-point input is trivially clean.
func (a *analysis) cleanOperandsPrec(i int, flagIn []bitset, precise bool) OperandClean {
	in := a.instrs[i]
	oc := OperandClean{Src: true, Dst: true}
	if !isa.ConsumesFP(in.Op) {
		// Producers (CVTSI2SD) read an integer register: trivially clean.
		return oc
	}
	resolve := a.memLocs
	if precise {
		resolve = a.memLocsPrec
	}
	st := flagIn[i]
	packed := isa.IsPacked(in.Op)
	check := func(op isa.Operand) bool {
		switch op.Kind {
		case isa.KindXMM:
			if st.get(laneLoc(op.Reg, 0)) {
				return false
			}
			if packed && st.get(laneLoc(op.Reg, 1)) {
				return false
			}
		case isa.KindMem:
			locs, _ := resolve(op.Mem, packed)
			for _, l := range locs {
				if st.get(l) {
					return false
				}
			}
		}
		return true
	}
	oc.Src = check(in.B)
	if isa.DstIsSource(in.Op) {
		oc.Dst = check(in.A)
	}
	return oc
}
