package dataflow_test

import (
	"math"
	"testing"

	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
)

// buildMod assembles a module from the given functions with a small data
// segment and main as entry.
func buildMod(t *testing.T, funcs []*prog.Func) *prog.Module {
	t.Helper()
	m, err := prog.Build("t", funcs, make([]byte, 512), prog.DataBase+65536, "main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScratchDead checks that explicit scratch-register references and
// live scratch values defeat elision, and that ordinary code proves it.
func TestScratchDead(t *testing.T) {
	one := int64(math.Float64bits(1.0))
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(one)),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.ADDSD, isa.Xmm(1), isa.Xmm(1)), // idx 3: r15 dead here
		isa.I(isa.MOVRI, isa.Gpr(isa.R14), isa.Imm(7)),
		isa.I(isa.MULSD, isa.Xmm(1), isa.Xmm(1)), // idx 5: r14 live across
		isa.I(isa.MOVQ, isa.Xmm(2), isa.Gpr(isa.R14)),
		// idx 7: writes xmm15 (a reference defeats elision at this site,
		// but a pure def does not make xmm15 live upstream)
		isa.I(isa.SQRTSD, isa.Xmm(15), isa.Xmm(1)),
		isa.I(isa.HALT),
	}}
	m := buildMod(t, []*prog.Func{f})
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	ins := f.Instrs
	if !r.Site(ins[3].Addr).ScratchDead {
		t.Errorf("addsd at %#x: scratch should be dead", ins[3].Addr)
	}
	if r.Site(ins[5].Addr).ScratchDead {
		t.Errorf("mulsd at %#x: r14 is live across, scratch must not be dead", ins[5].Addr)
	}
	if r.Site(ins[7].Addr).ScratchDead {
		t.Errorf("candidate at %#x writes xmm15, scratch must not be dead", ins[7].Addr)
	}
}

// TestCleanInputs checks the flag-reachability lattice: the first
// candidate consuming fresh memory values is provably clean, while any
// candidate consuming another candidate's register result is not (that
// result may be downcast-stamped under some configuration).
func TestCleanInputs(t *testing.T) {
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.MOVSD, isa.Xmm(0), isa.Mem(isa.RBX, 0)),
		isa.I(isa.MOVSD, isa.Xmm(1), isa.Mem(isa.RBX, 8)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // idx 3: inputs clean
		isa.I(isa.MULSD, isa.Xmm(0), isa.Xmm(1)), // idx 4: xmm0/xmm1 may be stamped
		isa.I(isa.HALT),
	}}
	m := buildMod(t, []*prog.Func{f})
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	ins := f.Instrs
	if !r.Site(ins[3].Addr).CleanInputs {
		t.Errorf("first addsd at %#x: memory-fed inputs must be clean", ins[3].Addr)
	}
	if r.Site(ins[4].Addr).CleanInputs {
		t.Errorf("mulsd at %#x consumes candidate outputs, must not be clean", ins[4].Addr)
	}
}

// TestMPIPoisonsMemory: after an MPI receive, memory-fed candidates are
// no longer provably clean (the payload may carry a sender's sentinel).
func TestMPIPoisonsMemory(t *testing.T) {
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.MOVRI, isa.Gpr(isa.RDI), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.MOVRI, isa.Gpr(isa.RSI), isa.Imm(1)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RDX), isa.Imm(0)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysMPIRecvF64)),
		isa.I(isa.MOVSD, isa.Xmm(0), isa.Mem(isa.RBX, 0)),
		isa.I(isa.MOVSD, isa.Xmm(1), isa.Mem(isa.RBX, 8)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // idx 7: poisoned memory
		isa.I(isa.HALT),
	}}
	m := buildMod(t, []*prog.Func{f})
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Site(f.Instrs[7].Addr).CleanInputs {
		t.Error("candidate after MPI recv must not have provably clean inputs")
	}
}

// TestDeadFunction: candidates in a never-called function are marked
// Dead by supergraph reachability.
func TestDeadFunction(t *testing.T) {
	main := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(0)),
		isa.I(isa.HALT),
	}}
	orphan := &prog.Func{Name: "orphan", Instrs: []isa.Instr{
		isa.I(isa.MULSD, isa.Xmm(1), isa.Xmm(1)),
		isa.I(isa.RET),
	}}
	m := buildMod(t, []*prog.Func{main, orphan})
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Site(main.Instrs[1].Addr).Dead {
		t.Error("reachable candidate marked dead")
	}
	if !r.Site(orphan.Instrs[0].Addr).Dead {
		t.Error("candidate in uncalled function not marked dead")
	}
}

// TestRoundTripDetection builds the shape of randlc's state update —
// t = x*a; i = trunc(t); x = x - widen(i)*c — and checks the cyclic
// round-trip is found, while an output-only truncation (histogram
// index) stays acyclic.
func TestRoundTripDetection(t *testing.T) {
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(int64(prog.DataBase))),
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(10)),
		// loop:
		isa.I(isa.MOVSD, isa.Xmm(0), isa.Mem(isa.RBX, 0)),  // x
		isa.I(isa.MULSD, isa.Xmm(0), isa.Mem(isa.RBX, 8)),  // t = x*a
		isa.I(isa.CVTTSD2SI, isa.Gpr(isa.RAX), isa.Xmm(0)), // idx 4: i = trunc(t)
		isa.I(isa.CVTSI2SD, isa.Xmm(1), isa.Gpr(isa.RAX)),  // idx 5: widen(i)
		isa.I(isa.MULSD, isa.Xmm(1), isa.Mem(isa.RBX, 16)),
		isa.I(isa.MOVSD, isa.Xmm(2), isa.Mem(isa.RBX, 0)),
		isa.I(isa.SUBSD, isa.Xmm(2), isa.Xmm(1)),
		isa.I(isa.MOVSD, isa.Mem(isa.RBX, 0), isa.Xmm(2)), // x = x - widen(i)*c
		// acyclic trunc: index = trunc(x), used only as an address index
		isa.I(isa.CVTTSD2SI, isa.Gpr(isa.RDX), isa.Xmm(2)), // idx 10
		isa.I(isa.STORE, isa.MemIdx(isa.RBX, isa.RDX, 8, 256), isa.Gpr(isa.RCX)),
		isa.I(isa.SUBI, isa.Gpr(isa.RCX), isa.Imm(1)),
		isa.I(isa.CMPI, isa.Gpr(isa.RCX), isa.Imm(0)),
		isa.I(isa.JG, isa.Imm(0)), // patched to loop
		isa.I(isa.HALT),
	}}
	m := buildMod(t, []*prog.Func{f})
	f.Instrs[14].A.Imm = int64(f.Instrs[2].Addr)
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	trunc, widen := f.Instrs[4].Addr, f.Instrs[5].Addr
	var found *dataflow.RoundTrip
	for i := range r.Pairs {
		if r.Pairs[i].Trunc == trunc && r.Pairs[i].Widen == widen {
			found = &r.Pairs[i]
		}
		if r.Pairs[i].Trunc == f.Instrs[10].Addr {
			t.Errorf("index-only truncation at %#x paired as a round-trip", f.Instrs[10].Addr)
		}
	}
	if found == nil {
		t.Fatalf("round-trip %#x -> %#x not detected (pairs: %v)", trunc, widen, r.Pairs)
	}
	if !found.Cyclic {
		t.Error("state-feedback round-trip not marked cyclic")
	}
	if !r.Site(trunc).Unsafe {
		t.Error("cyclic truncation not classified unsafe")
	}
	if r.Site(f.Instrs[10].Addr).Unsafe {
		t.Error("index-only truncation wrongly classified unsafe")
	}
}

// TestEPClassification pins the analysis results on the real EP kernel:
// the three generator-state round-trips are cyclic, the a1 split (whose
// input is the constant a) is acyclic, and the classified set is exactly
// the LCG state chain the paper's user marks by hand.
func TestEPClassification(t *testing.T) {
	b, err := kernels.Get("ep", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	m := b.Module
	r, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 4 {
		t.Fatalf("EP round-trip pairs = %d, want 4: %v", len(r.Pairs), r.Pairs)
	}
	cyclic := 0
	for _, p := range r.Pairs {
		if p.Cyclic {
			cyclic++
		}
	}
	if cyclic != 3 {
		t.Errorf("EP cyclic pairs = %d, want 3 (a1 split is acyclic)", cyclic)
	}
	unsafe := r.UnsafeAddrs()
	if len(unsafe) != 10 {
		t.Errorf("EP classified sinks = %d, want 10: %#x", len(unsafe), unsafe)
	}
	// All classified sites must live in randlc (the LCG), none in the
	// accumulation code.
	randlc := m.FuncByName("randlc")
	if randlc == nil {
		t.Fatal("randlc not found")
	}
	for _, a := range unsafe {
		if a < randlc.Addr || a >= randlc.End {
			t.Errorf("classified site %#x outside randlc [%#x,%#x)", a, randlc.Addr, randlc.End)
		}
	}
}

// TestKernelsAnalyzable runs the analysis over every kernel and checks
// the structural results: every candidate gets a site, scratch is
// provably dead everywhere (the hl compiler never touches r14/r15/xmm14+
// across candidates), and no non-EP kernel classifies sinks.
func TestKernelsAnalyzable(t *testing.T) {
	for _, name := range kernels.Names() {
		b, err := kernels.Get(name, kernels.ClassW)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := b.Module
		r, err := dataflow.Analyze(m)
		if err != nil {
			t.Fatalf("%s: analyze: %v", name, err)
		}
		cands := m.Candidates()
		if len(r.Sites) != len(cands) {
			t.Errorf("%s: %d sites for %d candidates", name, len(r.Sites), len(cands))
		}
		for _, a := range cands {
			if !r.Site(a).ScratchDead {
				t.Errorf("%s: scratch not proven dead at %#x", name, a)
			}
		}
		if name != "ep" && len(r.UnsafeAddrs()) != 0 {
			t.Errorf("%s: unexpected classified sinks %#x", name, r.UnsafeAddrs())
		}
		if !r.HasStableBase {
			t.Errorf("%s: stable data base not detected", name)
		}
	}
}
