// Package dataflow implements the static analyses that the paper's §2.5
// leaves as future work: "streamline the machine code that is inserted"
// and "static data flow analysis" to skip unnecessary replacement
// wrappers. It turns the unsound global ablation knobs of
// internal/replace (LivenessElision, SkipDoubleSnippets) into per-site
// decisions proven over the program, in the style of Dyninst's binary
// register-liveness analysis.
//
// Three interprocedural analyses run over an instruction-level
// supergraph (intra-procedural control flow plus CALL edges into callee
// entries and RET edges back to every call-site continuation):
//
//   - Backward liveness of general-purpose registers and 64-bit XMM
//     lanes. A snippet may skip saving and restoring its scratch
//     registers (r14, r15, xmm14, xmm15) at sites where all four are
//     dead.
//
//   - Forward replaced-flag reachability: a may-analysis over a
//     clean/maybe-flagged lattice per location, under an "any
//     configuration" abstraction in which every candidate instruction
//     may be configured single and therefore stamp the 0x7FF4DEAD
//     sentinel into its register sources and destination. Operands
//     proven clean under every configuration need no flag-check
//     prologue, and double wrappers around such sites can be skipped
//     entirely.
//
//   - A conversion-site taint (reaching-definitions over CVTTSD2SI /
//     CVTSI2SD sites) that detects integer round-trips — float values
//     truncated to an integer and widened back — and classifies the
//     single-unsafe exact-integer sinks built on them, such as the EP
//     kernel's randlc 46-bit LCG (paper §2.1, the case the paper
//     resolves by having the user mark randlc "ignore").
//
// Memory is modeled as per-displacement 64-bit slots under a stable base
// register (a register assigned one immediate before any branch and
// never redefined — the high-level compiler's rbx data base), plus a
// summary cell for indexed or unresolvable accesses and an abstract
// cell for the PUSH/POP stack. The model assumes the usual stack
// discipline: CALL/RET traffic carries return addresses only, and the
// stack region does not alias the static data slots.
//
// Like the replacement scheme itself, the flag analysis assumes programs
// do not materialize the sentinel NaN pattern out of thin air (by
// crafted NaN payloads); the differential tests check the end-to-end
// property on every kernel.
package dataflow

import (
	"fmt"
	"sort"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Location space: 16 GPRs, 32 XMM lanes, then per-displacement memory
// slots, one summary cell for unresolved accesses, and one stack cell.
const (
	locGPR   = 0  // + register number
	locLane  = 16 // + 2*xmm + lane
	nRegLocs = 16 + 32
)

// Site is the per-candidate analysis summary consumed by
// internal/replace when it makes per-site elision decisions.
type Site struct {
	Addr uint64

	// ScratchDead reports that the snippet scratch registers (r14, r15,
	// xmm14, xmm15) are all dead immediately after the instruction and
	// unreferenced by it, so a snippet needs no save/restore.
	ScratchDead bool

	// CleanInputs reports that no floating-point input of the
	// instruction can carry the replacement sentinel under any
	// configuration: flag-check prologues can be elided and double
	// wrappers skipped.
	CleanInputs bool

	// Unsafe marks an exact-integer sink (cyclic round-trip truncation,
	// its immediate feeder, or a low-order cancellation subtraction):
	// lowering it to single is statically expected to break integer
	// exactness, so the search prunes it from the candidate queue.
	Unsafe bool

	// Dead marks an instruction unreachable from the module entry in
	// the static call graph (e.g. a helper level never called).
	Dead bool
}

// RoundTrip is a detected truncate-then-widen integer round-trip.
type RoundTrip struct {
	Trunc  uint64 // CVTTSD2SI address
	Widen  uint64 // CVTSI2SD address consuming the truncated integer
	Cyclic bool   // the widened value can flow back into the truncation's input
}

// Result holds the analysis of one module.
type Result struct {
	Module *prog.Module
	Sites  map[uint64]Site
	Pairs  []RoundTrip

	// StableBase is the detected data-base register (valid if
	// HasStableBase); Slots is the number of tracked memory slots.
	StableBase    uint8
	HasStableBase bool
	Slots         int
}

// Site returns the summary for the candidate at addr; the zero Site
// (no elisions proven) if the address was not analyzed.
func (r *Result) Site(addr uint64) Site {
	if r == nil {
		return Site{}
	}
	return r.Sites[addr]
}

// UnsafeAddrs returns the addresses of all candidates classified as
// exact-integer sinks, in address order.
func (r *Result) UnsafeAddrs() []uint64 {
	var out []uint64
	for a, s := range r.Sites {
		if s.Unsafe {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// analysis carries the shared infrastructure of all passes.
type analysis struct {
	mod    *prog.Module
	instrs []isa.Instr
	idx    map[uint64]int // address -> instruction index
	fnOf   []int          // instruction index -> function index

	succs [][]int32
	preds [][]int32

	reachable []bool

	stableBase int           // -1 if none
	slotOf     map[int32]int // 8-aligned displacement -> slot index
	regionOf   map[int32]int // indexed-access base displacement -> region index
	extents    []extent      // sorted, disjoint array extents (module region table)
	nLocs      int           // nRegLocs + slots + regions + summary + stack + extents
}

// extent is one array's byte range off the stable base, from the
// module's region table.
type extent struct{ off, end int32 }

func (a *analysis) regionLoc(r int) int { return nRegLocs + len(a.slotOf) + r }
func (a *analysis) summaryLoc() int     { return nRegLocs + len(a.slotOf) + len(a.regionOf) }
func (a *analysis) stackLoc() int       { return a.summaryLoc() + 1 }
func (a *analysis) extentLoc(e int) int { return a.stackLoc() + 1 + e }

// Analyze runs every analysis over m and returns the per-candidate
// summaries.
func Analyze(m *prog.Module) (*Result, error) {
	a, err := build(m)
	if err != nil {
		return nil, err
	}
	live := a.liveness()
	flags := a.flagReach()
	pairs, taint := a.convTaint()
	unsafe := a.classify(pairs, taint)

	res := &Result{
		Module:        m,
		Sites:         make(map[uint64]Site),
		Pairs:         pairs,
		HasStableBase: a.stableBase >= 0,
		Slots:         len(a.slotOf),
	}
	if a.stableBase >= 0 {
		res.StableBase = uint8(a.stableBase)
	}
	for i, in := range a.instrs {
		if !isa.IsCandidate(in.Op) {
			continue
		}
		res.Sites[in.Addr] = Site{
			Addr:        in.Addr,
			ScratchDead: a.scratchDead(i, live),
			CleanInputs: a.cleanInputs(i, flags),
			Unsafe:      unsafe[i],
			Dead:        !a.reachable[i],
		}
	}
	return res, nil
}

// build constructs the instruction-level supergraph and the memory slot
// model.
func build(m *prog.Module) (*analysis, error) {
	a := &analysis{mod: m, idx: make(map[uint64]int), stableBase: -1}
	for fi, f := range m.Funcs {
		for _, in := range f.Instrs {
			a.idx[in.Addr] = len(a.instrs)
			a.instrs = append(a.instrs, in)
			a.fnOf = append(a.fnOf, fi)
		}
	}
	n := len(a.instrs)
	if n == 0 {
		return nil, fmt.Errorf("dataflow: empty module")
	}
	a.succs = make([][]int32, n)
	a.preds = make([][]int32, n)

	// Call-site continuations per callee function, for RET edges.
	conts := make(map[int][]int32) // function index -> continuation instrs
	for i, in := range a.instrs {
		if in.Op != isa.CALL {
			continue
		}
		ti, ok := a.idx[uint64(in.A.Imm)]
		if !ok {
			return nil, fmt.Errorf("dataflow: call to unmapped address %#x at %#x", in.A.Imm, in.Addr)
		}
		if c, ok := a.cont(i); ok {
			conts[a.fnOf[ti]] = append(conts[a.fnOf[ti]], c)
		}
	}

	addEdge := func(from, to int32) {
		a.succs[from] = append(a.succs[from], to)
		a.preds[to] = append(a.preds[to], from)
	}
	for i, in := range a.instrs {
		switch {
		case in.Op == isa.HALT:
			// no successors
		case in.Op == isa.JMP:
			t, ok := a.idx[uint64(in.A.Imm)]
			if !ok {
				return nil, fmt.Errorf("dataflow: branch to unmapped address %#x at %#x", in.A.Imm, in.Addr)
			}
			addEdge(int32(i), int32(t))
		case in.Op.IsCondBranch():
			t, ok := a.idx[uint64(in.A.Imm)]
			if !ok {
				return nil, fmt.Errorf("dataflow: branch to unmapped address %#x at %#x", in.A.Imm, in.Addr)
			}
			addEdge(int32(i), int32(t))
			if c, ok := a.cont(i); ok {
				addEdge(int32(i), c)
			}
		case in.Op == isa.CALL:
			t := a.idx[uint64(in.A.Imm)] // validated above
			addEdge(int32(i), int32(t))
		case in.Op == isa.RET:
			for _, c := range conts[a.fnOf[i]] {
				addEdge(int32(i), c)
			}
		default:
			if c, ok := a.cont(i); ok {
				addEdge(int32(i), c)
			}
		}
	}

	a.findStableBase()
	a.findSlots()
	a.buildExtents()
	a.nLocs = nRegLocs + len(a.slotOf) + len(a.regionOf) + 2 + len(a.extents)

	// Reachability from the module entry.
	a.reachable = make([]bool, n)
	if e, ok := a.idx[m.Entry]; ok {
		stack := []int{e}
		a.reachable[e] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range a.succs[i] {
				if !a.reachable[s] {
					a.reachable[s] = true
					stack = append(stack, int(s))
				}
			}
		}
	}
	return a, nil
}

// cont returns the fall-through continuation of instruction i: the next
// instruction by address within the same function.
func (a *analysis) cont(i int) (int32, bool) {
	if i+1 < len(a.instrs) && a.fnOf[i+1] == a.fnOf[i] {
		return int32(i + 1), true
	}
	return 0, false
}

// findStableBase detects a register assigned a single immediate in the
// straight-line prologue of the entry function and never written again
// anywhere in the module — the high-level compiler's data-base register.
func (a *analysis) findStableBase() {
	e, ok := a.idx[a.mod.Entry]
	if !ok {
		return
	}
	// Collect MOVRI defs in the linear prefix of the entry (stop at the
	// first control transfer).
	cand := map[int]bool{}
	for i := e; i < len(a.instrs) && a.fnOf[i] == a.fnOf[e]; i++ {
		in := a.instrs[i]
		if in.Op.IsBranch() || in.Op == isa.RET || in.Op == isa.HALT {
			break
		}
		if in.Op == isa.MOVRI && in.A.Kind == isa.KindGPR {
			cand[int(in.A.Reg)] = true
		}
	}
	if len(cand) == 0 {
		return
	}
	// Drop any candidate written anywhere else (including a second time
	// in the prologue itself, scanned per-instruction below).
	seen := map[int]int{} // reg -> def count
	for _, in := range a.instrs {
		for _, d := range gprDefs(in) {
			if cand[d] {
				seen[d]++
			}
		}
	}
	for r := range cand {
		if seen[r] != 1 {
			delete(cand, r)
		}
	}
	// Deterministically pick the lowest-numbered survivor.
	best := -1
	for r := range cand {
		if best < 0 || r < best {
			best = r
		}
	}
	a.stableBase = best
}

// findSlots discovers the 8-byte-aligned displacements accessed directly
// off the stable base, and the array regions accessed through an index
// register with a static base displacement. For the soundness-critical
// flag analysis everything unresolved flows through the summary cell;
// the value-flow (taint) passes additionally use the per-region cells.
func (a *analysis) findSlots() {
	a.slotOf = map[int32]int{}
	a.regionOf = map[int32]int{}
	if a.stableBase < 0 {
		return
	}
	add := func(d int32) {
		if _, ok := a.slotOf[d]; !ok {
			a.slotOf[d] = len(a.slotOf)
		}
	}
	for _, in := range a.instrs {
		for _, op := range []isa.Operand{in.A, in.B} {
			if op.Kind != isa.KindMem {
				continue
			}
			m := op.Mem
			if int(m.Base) != a.stableBase {
				continue
			}
			if m.HasIndex {
				if _, ok := a.regionOf[m.Disp]; !ok {
					a.regionOf[m.Disp] = len(a.regionOf)
				}
				continue
			}
			if m.Disp%8 != 0 {
				continue
			}
			add(m.Disp)
			if in.Op == isa.MOVAPD { // 16-byte access covers two slots
				add(m.Disp + 8)
			}
		}
	}
}

// buildExtents validates and adopts the module's region table: extents
// must be sane and pairwise disjoint or the whole table is dropped (the
// analyses then stay on the fully conservative memory model).
func (a *analysis) buildExtents() {
	if len(a.mod.Regions) == 0 || a.stableBase < 0 {
		return
	}
	exts := make([]extent, 0, len(a.mod.Regions))
	for _, r := range a.mod.Regions {
		if r.Off < 0 || r.Size <= 0 || r.Off+r.Size < r.Off {
			return
		}
		exts = append(exts, extent{off: r.Off, end: r.Off + r.Size})
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	for i := 1; i < len(exts); i++ {
		if exts[i].off < exts[i-1].end {
			return
		}
	}
	a.extents = exts
}

// extentAt returns the index of the extent containing displacement d, or
// -1 when d lies outside every recorded array.
func (a *analysis) extentAt(d int32) int {
	i := sort.Search(len(a.extents), func(i int) bool { return a.extents[i].end > d })
	if i < len(a.extents) && a.extents[i].off <= d {
		return i
	}
	return -1
}

// memLocs resolves a memory operand to location indices for the
// soundness-critical flag analysis. For a direct stable-base access it
// returns the slot(s); otherwise every slot, region and array extent
// plus the summary and stack cells (an unresolved access may touch
// anything). wide selects 16-byte accesses (MOVAPD).
func (a *analysis) memLocs(m isa.MemRef, wide bool) (locs []int, direct bool) {
	if s, ok, wideOK := a.directSlot(m, wide); ok {
		locs = append(locs, s...)
		if !wide || wideOK {
			return locs, true
		}
		// fall through conservatively if the second half is untracked
	}
	for _, s := range a.slotOf {
		locs = append(locs, nRegLocs+s)
	}
	for _, r := range a.regionOf {
		locs = append(locs, a.regionLoc(r))
	}
	locs = append(locs, a.summaryLoc(), a.stackLoc())
	for e := range a.extents {
		locs = append(locs, a.extentLoc(e))
	}
	return locs, false
}

// memLocsPrec is memLocs refined by the module's array extents: an
// access through a known array's base displacement resolves to that
// array's private cell instead of the everything blob. Soundness rests
// on the region table's contract (hl.Array): indexed accesses through an
// array's displacement stay inside its allocation. Array cells are
// always weak — one element's store cannot clean the whole array.
func (a *analysis) memLocsPrec(m isa.MemRef, wide bool) (locs []int, direct bool) {
	if len(a.extents) == 0 || a.stableBase < 0 || int(m.Base) != a.stableBase {
		return a.memLocs(m, wide)
	}
	w := int32(8)
	if wide {
		w = 16
	}
	e := a.extentAt(m.Disp)
	if m.HasIndex {
		if e >= 0 {
			return []int{a.extentLoc(e)}, false
		}
		return a.memLocs(m, wide)
	}
	if e != a.extentAt(m.Disp+w-1) {
		return a.memLocs(m, wide) // straddles an array boundary
	}
	if e >= 0 {
		return []int{a.extentLoc(e)}, false
	}
	return a.memLocs(m, wide)
}

// directSlot resolves a direct stable-base access to its slot location(s).
func (a *analysis) directSlot(m isa.MemRef, wide bool) (locs []int, ok, wideOK bool) {
	if a.stableBase < 0 || m.HasIndex || int(m.Base) != a.stableBase || m.Disp%8 != 0 {
		return nil, false, false
	}
	s, found := a.slotOf[m.Disp]
	if !found {
		return nil, false, false
	}
	locs = append(locs, nRegLocs+s)
	wideOK = true
	if wide {
		s2, found2 := a.slotOf[m.Disp+8]
		if found2 {
			locs = append(locs, nRegLocs+s2)
		} else {
			wideOK = false
		}
	}
	return locs, true, wideOK
}

// valueLocs resolves a memory operand for the heuristic value-flow
// passes (conversion taint, producers, sink reach). Indexed stable-base
// accesses resolve to their array's region cell — assuming in-bounds
// indexing, which is a classification heuristic only, never a soundness
// input.
func (a *analysis) valueLocs(m isa.MemRef, wide bool) (locs []int, direct bool) {
	if s, ok, wideOK := a.directSlot(m, wide); ok && (!wide || wideOK) {
		return s, true
	}
	if a.stableBase >= 0 && m.HasIndex && int(m.Base) == a.stableBase {
		if r, ok := a.regionOf[m.Disp]; ok {
			return []int{a.regionLoc(r)}, false
		}
	}
	for _, s := range a.slotOf {
		locs = append(locs, nRegLocs+s)
	}
	for _, r := range a.regionOf {
		locs = append(locs, a.regionLoc(r))
	}
	locs = append(locs, a.summaryLoc(), a.stackLoc())
	return locs, false
}

// gprDefs returns the general-purpose registers fully overwritten by in.
func gprDefs(in isa.Instr) []int {
	switch in.Op {
	case isa.MOVRI, isa.MOVRR, isa.LOAD, isa.LEA, isa.POP:
		if in.A.Kind == isa.KindGPR {
			return []int{int(in.A.Reg)}
		}
	case isa.ADDR, isa.ADDI, isa.SUBR, isa.SUBI, isa.IMULR, isa.IMULI,
		isa.ANDR, isa.ANDI, isa.ORR, isa.ORI, isa.XORR, isa.XORI,
		isa.SHLI, isa.SHRI, isa.IDIVR:
		return []int{int(in.A.Reg)}
	case isa.MOVQ, isa.MOVHQ:
		if in.A.Kind == isa.KindGPR {
			return []int{int(in.A.Reg)}
		}
	case isa.CVTTSD2SI, isa.CVTTSS2SI:
		return []int{int(in.A.Reg)}
	case isa.SYSCALL:
		switch in.A.Imm {
		case isa.SysMPIRank, isa.SysMPISize:
			return []int{int(isa.RAX)}
		}
	}
	return nil
}

// FlagAnalysis is a reusable handle over one module's supergraph for
// re-running the replaced-flag reachability pass under restricted source
// sets. Analyze's CleanInputs answers the any-configuration question
// ("could this site ever see a flagged value?"); a search evaluating one
// piece at a time wants the much sharper per-configuration question
// ("could it see one when only these sites are single?"), whose clean
// set licenses assembling the bare original instruction — no wrapper at
// all — at every other double site. The handle is safe for concurrent
// use: each query allocates its own fixpoint state.
type FlagAnalysis struct {
	a *analysis
}

// NewFlagAnalysis builds the supergraph and memory model once, for many
// CleanUnder queries.
func NewFlagAnalysis(m *prog.Module) (*FlagAnalysis, error) {
	a, err := build(m)
	if err != nil {
		return nil, err
	}
	return &FlagAnalysis{a: a}, nil
}

// CleanUnder returns the candidate addresses whose floating-point inputs
// are proven clean when exactly the given candidates are configured
// single. A clean double site's wrapper is a checked no-op for this
// configuration, so the bare original instruction is bit-identical to
// it. CleanUnder(nil) restricts the sources to the empty set (no site
// single), not the any-configuration abstraction — use Analyze for that.
//
// The query runs with the extent-precise memory model (memLocsPrec):
// distinct arrays from the module's region table occupy distinct cells,
// so a single site storing into one array poisons that array alone.
func (fa *FlagAnalysis) CleanUnder(singles map[uint64]bool) map[uint64]bool {
	clean := make(map[uint64]bool)
	for addr, oc := range fa.CleanOperandsUnder(singles) {
		if oc.Src && oc.Dst {
			clean[addr] = true
		}
	}
	return clean
}

// OperandClean is the per-operand refinement of a clean verdict: Src is
// the source (B) operand, Dst the destination operand read as a source
// by dst-is-source operations. An operand the instruction does not read
// as floating-point input is trivially clean, so Src && Dst is exactly
// CleanUnder's whole-site verdict.
type OperandClean struct {
	Src bool
	Dst bool
}

// CleanOperandsUnder is CleanUnder at operand granularity: for every
// candidate site it reports which of its floating-point inputs are
// proven unflagged when exactly the given candidates are configured
// single. A wrapper's check on a proven-clean operand is a guaranteed
// no-op, so a narrowed wrapper that omits it (replace.DoubleSnippet
// with CleanSrcInput/CleanDstInput) is bit-identical to the full one
// under this configuration.
func (fa *FlagAnalysis) CleanOperandsUnder(singles map[uint64]bool) map[uint64]OperandClean {
	if singles == nil {
		singles = map[uint64]bool{}
	}
	flags := fa.a.flagReachFor(singles, true)
	out := make(map[uint64]OperandClean)
	for i, in := range fa.a.instrs {
		if !isa.IsCandidate(in.Op) {
			continue
		}
		out[in.Addr] = fa.a.cleanOperandsPrec(i, flags, true)
	}
	return out
}
