package dataflow

import "fpmix/internal/isa"

// This file detects integer round-trips — a float truncated to an
// integer (CVTTSD2SI) whose value is widened back to float (CVTSI2SD) —
// and classifies the exact-integer sinks built on them. The motivating
// case is the NAS EP kernel's randlc: a 46-bit linear congruential
// generator decomposed into 23-bit halves with truncations and
// low-order cancellation subtractions (a2 = a - t23*a1), which is
// exactly the code the paper's user marks "ignore" (§2.1). A float32
// payload holds 24 mantissa bits, so any such sink whose state cycles
// through the truncation cannot survive lowering.

// convTaint runs a forward reaching-definitions analysis over
// "conversion sites" (every CVTTSD2SI and CVTSI2SD): each location's
// abstract value is the set of conversion sites the value flowing
// through it derives from. Truncation taint propagating into a widen
// yields a round-trip pair; widen taint cycling back into the paired
// truncation's input marks the pair cyclic (generator state feedback).
//
// It returns the detected pairs and the per-instruction input taint
// states (used by the sink classification).
func (a *analysis) convTaint() ([]RoundTrip, []state) {
	var sites []int // instruction indices of conversion sites
	siteID := make(map[int]int)
	for i, in := range a.instrs {
		if in.Op == isa.CVTTSD2SI || in.Op == isa.CVTSI2SD {
			siteID[i] = len(sites)
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 {
		return nil, nil
	}
	w := (len(sites) + 63) / 64 // words per location

	n := len(a.instrs)
	taintIn := make([]state, n)
	for i := range taintIn {
		taintIn[i] = newState(a.nLocs, w)
	}
	inList := make([]bool, n)
	var work []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			work = append(work, i)
		}
	}
	// Seed every transfer once (reverse order so pops run forward).
	for i := n - 1; i >= 0; i-- {
		push(i)
	}
	out := newState(a.nLocs, w)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inList[i] = false

		out.copyFrom(taintIn[i])
		a.taintStep(i, siteID, out)
		for _, s := range a.succs[i] {
			if taintIn[s].or(out) {
				push(int(s))
			}
		}
	}

	// Detect pairs: at each widen, the source register's taint names the
	// truncations it derives from; at each truncation, the input lane's
	// taint names the widens feeding back into it.
	var pairs []RoundTrip
	for wi, in := range a.instrs {
		if in.Op != isa.CVTSI2SD {
			continue
		}
		src := taintIn[wi].loc(locGPR + int(in.B.Reg))
		for _, ti := range sites {
			if a.instrs[ti].Op != isa.CVTTSD2SI || !src.get(siteID[ti]) {
				continue
			}
			cyclic := false
			if a.instrs[ti].B.Kind == isa.KindXMM {
				cyclic = taintIn[ti].loc(laneLoc(a.instrs[ti].B.Reg, 0)).get(siteID[wi])
			} else if a.instrs[ti].B.Kind == isa.KindMem {
				locs, _ := a.valueLocs(a.instrs[ti].B.Mem, false)
				for _, l := range locs {
					if taintIn[ti].loc(l).get(siteID[wi]) {
						cyclic = true
						break
					}
				}
			}
			pairs = append(pairs, RoundTrip{
				Trunc:  a.instrs[ti].Addr,
				Widen:  a.instrs[wi].Addr,
				Cyclic: cyclic,
			})
		}
	}
	return pairs, taintIn
}

// state is a per-location vector of conversion-site bitsets, flattened.
type state struct {
	w    int
	bits []uint64
}

func newState(nLocs, w int) state { return state{w: w, bits: make([]uint64, nLocs*w)} }

func (s state) loc(l int) bitset { return bitset(s.bits[l*s.w : (l+1)*s.w]) }

func (s state) copyFrom(src state) { copy(s.bits, src.bits) }

func (s state) or(src state) bool {
	changed := false
	for i, v := range src.bits {
		if s.bits[i]|v != s.bits[i] {
			s.bits[i] |= v
			changed = true
		}
	}
	return changed
}

// taintStep applies the value-flow transfer of instruction i: copies
// propagate sets, arithmetic unions its inputs into the destination, and
// conversion sites additionally root themselves.
func (a *analysis) taintStep(i int, siteID map[int]int, st state) {
	in := a.instrs[i]
	e := regEffects(in)

	// Gather the union of the value sources. regEffects' use sets
	// include address registers of memory operands; for value flow we
	// want the memory contents instead, so collect those separately.
	tmp := newBitset(st.w * 64)
	addLoc := func(l int) { bitset(tmp).or(st.loc(l)) }
	valueSources(a, in, e, addLoc)

	// Destination locations: full defs from regEffects, plus memory
	// stores resolved through the slot model.
	switch in.Op {
	case isa.STORE:
		locs, direct := a.valueLocs(in.A.Mem, false)
		bitset(tmp).or(st.loc(locGPR + int(in.B.Reg)))
		for _, l := range locs {
			if direct {
				st.loc(l).copyFrom(tmp)
			} else {
				st.loc(l).or(tmp)
			}
		}
		return
	case isa.MOVSD, isa.MOVSS, isa.MOVAPD:
		if in.A.Kind == isa.KindMem {
			wide := in.Op == isa.MOVAPD
			locs, direct := a.valueLocs(in.A.Mem, wide)
			bitset(tmp).or(st.loc(laneLoc(in.B.Reg, 0)))
			if wide {
				bitset(tmp).or(st.loc(laneLoc(in.B.Reg, 1)))
			}
			for _, l := range locs {
				if direct {
					st.loc(l).copyFrom(tmp)
				} else {
					st.loc(l).or(tmp)
				}
			}
			return
		}
	case isa.PUSH:
		st.loc(a.stackLoc()).or(st.loc(locGPR + int(in.A.Reg)))
		return
	case isa.PUSHX:
		st.loc(a.stackLoc()).or(st.loc(laneLoc(in.A.Reg, 0)))
		st.loc(a.stackLoc()).or(st.loc(laneLoc(in.A.Reg, 1)))
		return
	}

	if id, ok := siteID[i]; ok {
		// A conversion site re-roots its destination to itself alone:
		// pair detection then names the immediate truncation feeding a
		// widen (through value moves), not every transitive ancestor.
		for j := range tmp {
			tmp[j] = 0
		}
		tmp.set(id)
	}

	// Two-operand ALU and dst-is-source FP forms read the destination
	// too; regEffects already lists those uses, which valueSources
	// folded into tmp. Apply tmp to every written location.
	dsts := taintDsts(a, in, e)
	for _, l := range dsts {
		st.loc(l).copyFrom(tmp)
	}
}

// valueSources feeds every value-carrying source location of in to add:
// register uses from the liveness effect table, memory contents for
// loads, and the stack cell for pops.
func valueSources(a *analysis, in isa.Instr, e regEffect, add func(int)) {
	// Register uses, minus address registers of memory operands (those
	// carry pointers, not the value being moved).
	addrRegs := map[int]bool{}
	for _, op := range []isa.Operand{in.A, in.B} {
		if op.Kind == isa.KindMem {
			addrRegs[locGPR+int(op.Mem.Base)] = true
			if op.Mem.HasIndex {
				addrRegs[locGPR+int(op.Mem.Index)] = true
			}
		}
	}
	for _, u := range e.uses {
		if !addrRegs[u] {
			add(u)
		}
	}
	// Memory contents feeding register loads.
	for _, op := range []isa.Operand{in.A, in.B} {
		if op.Kind != isa.KindMem {
			continue
		}
		reads := in.Op == isa.LOAD || in.Op == isa.LEA ||
			((in.Op == isa.MOVSD || in.Op == isa.MOVSS || in.Op == isa.MOVAPD) && in.A.Kind == isa.KindXMM) ||
			isFPSource(in)
		if in.Op == isa.LEA {
			continue // address computation, no value read
		}
		if reads {
			locs, _ := a.valueLocs(op.Mem, in.Op == isa.MOVAPD || isa.IsPacked(in.Op))
			for _, l := range locs {
				add(l)
			}
		}
	}
	if in.Op == isa.POP || in.Op == isa.POPX {
		add(a.stackLoc())
	}
}

// isFPSource reports whether in's B memory operand is read as a
// floating-point value (arithmetic or conversion with a memory source).
func isFPSource(in isa.Instr) bool {
	if in.B.Kind != isa.KindMem {
		return false
	}
	switch in.Op {
	case isa.LOAD, isa.LEA, isa.STORE, isa.MOVSD, isa.MOVSS, isa.MOVAPD:
		return false
	}
	return true
}

// taintDsts lists the locations in writes for value-flow purposes:
// full register defs plus partial FP writes (SS forms merge, but the
// value is still derived from the inputs).
func taintDsts(a *analysis, in isa.Instr, e regEffect) []int {
	dsts := append([]int(nil), e.defs...)
	switch in.Op {
	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS,
		isa.SQRTSS, isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS,
		isa.CVTSD2SS, isa.CVTSI2SS, isa.MOVSS:
		if in.A.Kind == isa.KindXMM {
			dsts = append(dsts, laneLoc(in.A.Reg, 0))
		}
	}
	return dsts
}

// classify marks the exact-integer sinks: cyclic round-trip
// truncations, their immediate feeding products, and the low-order
// cancellation subtractions carrying widened round-trip values.
func (a *analysis) classify(pairs []RoundTrip, taintIn []state) []bool {
	n := len(a.instrs)
	unsafe := make([]bool, n)
	if len(pairs) == 0 {
		return unsafe
	}
	cyclicTrunc := map[uint64]bool{}
	widenSite := map[uint64]bool{}
	for _, p := range pairs {
		widenSite[p.Widen] = true
		if p.Cyclic {
			cyclicTrunc[p.Trunc] = true
		}
	}
	if len(cyclicTrunc) == 0 {
		return unsafe
	}

	// Backward 1-bit sink-reach: does the value produced here flow into
	// some cyclic truncation's input?
	reach := a.sinkReach(cyclicTrunc)

	// Widen taint per instruction: which widen sites feed this
	// instruction's FP sources.
	widenIDs := map[int]bool{}
	for i, in := range a.instrs {
		if in.Op == isa.CVTSI2SD && widenSite[in.Addr] {
			widenIDs[i] = true
		}
	}
	siteIdx := map[int]int{}
	k := 0
	for i, in := range a.instrs {
		if in.Op == isa.CVTTSD2SI || in.Op == isa.CVTSI2SD {
			siteIdx[i] = k
			k++
		}
	}
	hasWidenTaint := func(i int) bool {
		in := a.instrs[i]
		check := func(op isa.Operand) bool {
			var locs []int
			switch op.Kind {
			case isa.KindXMM:
				locs = []int{laneLoc(op.Reg, 0)}
				if isa.IsPacked(in.Op) {
					locs = append(locs, laneLoc(op.Reg, 1))
				}
			case isa.KindMem:
				locs, _ = a.valueLocs(op.Mem, isa.IsPacked(in.Op))
			default:
				return false
			}
			for _, l := range locs {
				for wi := range widenIDs {
					if taintIn[i].loc(l).get(siteIdx[wi]) {
						return true
					}
				}
			}
			return false
		}
		if check(in.B) {
			return true
		}
		if isa.DstIsSource(in.Op) {
			return check(in.A)
		}
		return false
	}

	// Immediate producers of each cyclic truncation's input: the last
	// arithmetic candidates whose result reaches the truncation through
	// moves and memory only.
	producers := a.immediateProducers(cyclicTrunc)

	for i, in := range a.instrs {
		if !isa.IsCandidate(in.Op) {
			continue
		}
		switch {
		case in.Op == isa.CVTTSD2SI && cyclicTrunc[in.Addr]:
			unsafe[i] = true
		case producers[i]:
			unsafe[i] = true
		case (in.Op == isa.SUBSD || in.Op == isa.SUBPD) && reach[i] && hasWidenTaint(i):
			// Low-order cancellation inside the generator state loop.
			unsafe[i] = true
		}
	}
	return unsafe
}

// sinkReach computes, per instruction, whether the value it produces may
// flow (through copies, memory and arithmetic) into the input of a
// cyclic truncation. Backward may-analysis over value flow.
func (a *analysis) sinkReach(cyclicTrunc map[uint64]bool) []bool {
	n := len(a.instrs)
	// Per-instruction "out" state over locations: value in location l
	// after instruction i flows into a sink input.
	outSt := make([]bitset, n)
	inSt := make([]bitset, n)
	for i := range outSt {
		outSt[i] = newBitset(a.nLocs)
		inSt[i] = newBitset(a.nLocs)
	}
	inList := make([]bool, n)
	var work []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			work = append(work, i)
		}
	}
	for i := n - 1; i >= 0; i-- {
		push(i)
	}
	tmp := newBitset(a.nLocs)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inList[i] = false

		out := outSt[i]
		for _, s := range a.succs[i] {
			out.or(inSt[s])
		}
		tmp.copyFrom(out)
		a.sinkStep(i, cyclicTrunc, tmp)
		if inSt[i].or(tmp) {
			for _, p := range a.preds[i] {
				push(int(p))
			}
		}
	}
	// The value an instruction produces is marked if any of its
	// destination locations is marked in its out state.
	res := make([]bool, n)
	for i, in := range a.instrs {
		e := regEffects(in)
		for _, d := range taintDsts(a, in, e) {
			if outSt[i].get(d) {
				res[i] = true
				break
			}
		}
	}
	return res
}

// sinkStep applies the reverse value-flow transfer: marked destinations
// propagate to the instruction's value sources, and cyclic truncations
// seed their input locations.
func (a *analysis) sinkStep(i int, cyclicTrunc map[uint64]bool, st bitset) {
	in := a.instrs[i]
	e := regEffects(in)

	marked := false
	dsts := taintDsts(a, in, e)
	for _, d := range dsts {
		if st.get(d) {
			marked = true
		}
	}
	// Memory destinations.
	var memDstLocs []int
	memDirect := false
	if in.A.Kind == isa.KindMem {
		switch in.Op {
		case isa.STORE, isa.MOVSD, isa.MOVSS, isa.MOVAPD:
			memDstLocs, memDirect = a.valueLocs(in.A.Mem, in.Op == isa.MOVAPD)
			for _, l := range memDstLocs {
				if st.get(l) {
					marked = true
				}
			}
		}
	}
	if in.Op == isa.PUSH || in.Op == isa.PUSHX {
		if st.get(a.stackLoc()) {
			marked = true
		}
	}

	// Kill strongly-overwritten destinations.
	for _, d := range e.defs {
		st.clear(d)
	}
	if memDirect {
		for _, l := range memDstLocs {
			st.clear(l)
		}
	}

	if marked {
		add := func(l int) { st.set(l) }
		valueSources(a, in, e, add)
	}

	// Seed: a cyclic truncation's FP input is a sink.
	if in.Op == isa.CVTTSD2SI && cyclicTrunc[in.Addr] {
		switch in.B.Kind {
		case isa.KindXMM:
			st.set(laneLoc(in.B.Reg, 0))
		case isa.KindMem:
			locs, _ := a.valueLocs(in.B.Mem, false)
			for _, l := range locs {
				st.set(l)
			}
		}
	}
}

// immediateProducers finds the arithmetic candidates whose results reach
// a cyclic truncation's input through value moves and memory only (no
// intervening arithmetic): the products feeding the truncation.
func (a *analysis) immediateProducers(cyclicTrunc map[uint64]bool) []bool {
	n := len(a.instrs)
	// Forward producer taint: each arithmetic candidate roots itself;
	// moves and memory propagate; other arithmetic clears (re-roots
	// empty, making the relation "immediate").
	arith := make(map[int]int) // instruction index -> producer id
	var ids []int
	for i, in := range a.instrs {
		if isa.IsCandidate(in.Op) && isa.WritesDst(in.Op) && in.A.Kind == isa.KindXMM &&
			in.Op != isa.CVTSI2SD {
			arith[i] = len(ids)
			ids = append(ids, i)
		}
	}
	res := make([]bool, n)
	if len(ids) == 0 {
		return res
	}
	w := (len(ids) + 63) / 64
	stIn := make([]state, n)
	for i := range stIn {
		stIn[i] = newState(a.nLocs, w)
	}
	inList := make([]bool, n)
	var work []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			work = append(work, i)
		}
	}
	// Seed every transfer once (reverse order so pops run forward).
	for i := n - 1; i >= 0; i-- {
		push(i)
	}
	out := newState(a.nLocs, w)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inList[i] = false

		out.copyFrom(stIn[i])
		a.producerStep(i, arith, out)
		for _, s := range a.succs[i] {
			if stIn[s].or(out) {
				push(int(s))
			}
		}
	}
	for i, in := range a.instrs {
		if in.Op != isa.CVTTSD2SI || !cyclicTrunc[in.Addr] {
			continue
		}
		var locs []int
		switch in.B.Kind {
		case isa.KindXMM:
			locs = []int{laneLoc(in.B.Reg, 0)}
		case isa.KindMem:
			locs, _ = a.valueLocs(in.B.Mem, false)
		}
		for _, l := range locs {
			set := stIn[i].loc(l)
			for id, pi := range ids {
				if set.get(id) {
					res[pi] = true
				}
			}
		}
	}
	return res
}

// producerStep: moves and memory propagate producer sets; arithmetic
// candidates re-root to themselves; all other arithmetic clears.
func (a *analysis) producerStep(i int, arith map[int]int, st state) {
	in := a.instrs[i]
	e := regEffects(in)

	switch in.Op {
	case isa.MOVSD, isa.MOVSS, isa.MOVAPD, isa.MOVQ, isa.MOVHQ,
		isa.STORE, isa.LOAD, isa.PUSH, isa.POP, isa.PUSHX, isa.POPX, isa.MOVRR:
		// value moves: propagate like taintStep
		tmp := newBitset(st.w * 64)
		valueSources(a, in, e, func(l int) { bitset(tmp).or(st.loc(l)) })
		if in.A.Kind == isa.KindMem {
			locs, direct := a.valueLocs(in.A.Mem, in.Op == isa.MOVAPD)
			for _, l := range locs {
				if direct {
					st.loc(l).copyFrom(tmp)
				} else {
					st.loc(l).or(tmp)
				}
			}
			return
		}
		if in.Op == isa.PUSH || in.Op == isa.PUSHX {
			st.loc(a.stackLoc()).or(tmp)
			return
		}
		for _, d := range taintDsts(a, in, e) {
			st.loc(d).copyFrom(tmp)
		}
	default:
		// Arithmetic and everything else: destinations carry only the
		// instruction's own root (if it is an arithmetic candidate).
		tmp := newBitset(st.w * 64)
		if id, ok := arith[i]; ok {
			bitset(tmp).set(id)
		}
		for _, d := range taintDsts(a, in, e) {
			st.loc(d).copyFrom(tmp)
		}
	}
}
