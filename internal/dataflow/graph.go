package dataflow

import (
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Graph is a read-only exported handle over the instruction-level
// supergraph and the stable-base memory model, for downstream analyses
// that need the same control-flow and aliasing foundation (the
// error-bound analysis in internal/errbound). It exposes the supergraph
// built by build(): intra-procedural edges plus CALL edges into callee
// entries and RET edges back to every call-site continuation.
type Graph struct {
	a *analysis
}

// BuildGraph constructs the supergraph and memory model for m.
func BuildGraph(m *prog.Module) (*Graph, error) {
	a, err := build(m)
	if err != nil {
		return nil, err
	}
	return &Graph{a: a}, nil
}

// Module returns the analyzed module.
func (g *Graph) Module() *prog.Module { return g.a.mod }

// Len is the number of instructions in the supergraph.
func (g *Graph) Len() int { return len(g.a.instrs) }

// Instr returns instruction i.
func (g *Graph) Instr(i int) isa.Instr { return g.a.instrs[i] }

// Index maps an instruction address to its supergraph index.
func (g *Graph) Index(addr uint64) (int, bool) {
	i, ok := g.a.idx[addr]
	return i, ok
}

// Entry returns the index of the module entry instruction.
func (g *Graph) Entry() (int, bool) {
	i, ok := g.a.idx[g.a.mod.Entry]
	return i, ok
}

// Succs returns the supergraph successors of instruction i.
func (g *Graph) Succs(i int) []int32 { return g.a.succs[i] }

// Preds returns the supergraph predecessors of instruction i.
func (g *Graph) Preds(i int) []int32 { return g.a.preds[i] }

// FuncOf returns the index (into Module().Funcs) of the function
// containing instruction i.
func (g *Graph) FuncOf(i int) int { return g.a.fnOf[i] }

// Reachable reports whether instruction i is reachable from the module
// entry in the static call graph.
func (g *Graph) Reachable(i int) bool { return g.a.reachable[i] }

// StableBase returns the detected data-base register, if any.
func (g *Graph) StableBase() (uint8, bool) {
	if g.a.stableBase < 0 {
		return 0, false
	}
	return uint8(g.a.stableBase), true
}

// CellKind classifies an abstract memory cell of the model.
type CellKind uint8

// Memory cell kinds.
const (
	// CellSlot is one 8-byte scalar slot at a fixed displacement off the
	// stable base; direct accesses to it resolve exactly (strong
	// updates are sound).
	CellSlot CellKind = iota
	// CellRegion is the indexed-access region rooted at a base
	// displacement outside any recorded array extent (always weak).
	CellRegion
	// CellExtent is one array's byte range from the module region
	// table (always weak: one element's store joins into the cell).
	CellExtent
	// CellSummary is the everything-else blob unresolved accesses hit.
	CellSummary
	// CellStack abstracts the PUSH/POP stack.
	CellStack
)

// MemCell describes one abstract cell. Off/Size give the data-segment
// byte range for CellSlot (Size 8) and CellExtent cells, letting callers
// seed initial abstract values from the module's data image; they are
// zero for the other kinds.
type MemCell struct {
	Kind CellKind
	Off  int32
	Size int32
}

// Cells enumerates the model's abstract memory cells. Indices into the
// returned slice are the cell ids MemCells yields.
func (g *Graph) Cells() []MemCell {
	a := g.a
	out := make([]MemCell, a.nLocs-nRegLocs)
	for d, s := range a.slotOf {
		out[s] = MemCell{Kind: CellSlot, Off: d, Size: 8}
	}
	for _, r := range a.regionOf {
		out[a.regionLoc(r)-nRegLocs] = MemCell{Kind: CellRegion}
	}
	out[a.summaryLoc()-nRegLocs] = MemCell{Kind: CellSummary}
	out[a.stackLoc()-nRegLocs] = MemCell{Kind: CellStack}
	for e, ext := range a.extents {
		out[a.extentLoc(e)-nRegLocs] = MemCell{Kind: CellExtent, Off: ext.off, Size: ext.end - ext.off}
	}
	return out
}

// MemCells resolves a memory operand to the cell ids it may touch, with
// the extent-precise model (distinct arrays in distinct cells). strong
// reports the access resolved exactly — a store may strongly update the
// returned cell(s) — which only holds for direct stable-base slot
// accesses. wide selects 16-byte accesses (MOVAPD); a wide strong access
// returns both covered slots in order.
func (g *Graph) MemCells(m isa.MemRef, wide bool) (cells []int, strong bool) {
	locs, direct := g.a.memLocsPrec(m, wide)
	cells = make([]int, len(locs))
	for i, l := range locs {
		cells[i] = l - nRegLocs
	}
	want := 1
	if wide {
		want = 2
	}
	return cells, direct && len(cells) == want
}

// SlotCell returns the cell id of the slot at displacement disp, if the
// model tracks one there.
func (g *Graph) SlotCell(disp int32) (int, bool) {
	s, ok := g.a.slotOf[disp]
	return s, ok
}
