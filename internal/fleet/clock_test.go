package fleet

import (
	"sync"
	"testing"
	"time"

	"fpmix/internal/search"
)

// fakeClock is a manually advanced time source for deterministic
// lease-expiry tests: the pool's Options.Clock reads it, and tests
// drive the monitor's sweep directly instead of waiting on tickers.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// quietOpts keeps the real-time monitor ticker effectively off so the
// fake clock alone decides expiry (sweep is called explicitly).
func quietOpts(fc *fakeClock) Options {
	return Options{Heartbeat: time.Hour, Expiry: time.Minute, Clock: fc.Now}
}

// TestClockLeaseExpiry: a remote worker that stops heartbeating is
// declared dead exactly when the pool's clock passes Expiry — not
// before — and its lease requeues.
func TestClockLeaseExpiry(t *testing.T) {
	fc := newFakeClock()
	p := New(quietOpts(fc))
	defer p.Close()
	id, _, _ := p.AddRemote("silent", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	claimSoon(t, p, id)

	// Just inside the expiry budget: still alive.
	fc.Advance(59 * time.Second)
	p.sweep()
	if p.Alive() != 1 {
		t.Fatal("worker expired before the budget was spent")
	}
	// A second worker joins, then the first's budget runs out: only the
	// silent one dies, and its shard requeues to the survivor.
	surv, _, _ := p.AddRemote("survivor", 1)
	fc.Advance(2 * time.Second)
	p.sweep()
	if p.Alive() != 1 {
		t.Fatalf("Alive() = %d after expiry, want the survivor only", p.Alive())
	}
	if _, err := p.Heartbeat(id); err != ErrUnknownWorker {
		t.Fatalf("expired worker heartbeat err=%v, want ErrUnknownWorker", err)
	}
	lease := claimSoon(t, p, surv)
	if lease.Unit.Key != "k1" {
		t.Fatalf("requeued unit %q, want k1", lease.Unit.Key)
	}
	p.Report(surv, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, "")
	if r := <-res; r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v", r)
	}
}

// TestClockSkewTolerance: lease liveness depends only on when beats
// ARRIVE on the daemon's clock. A worker whose own clock is wildly
// skewed (it cannot even report a timestamp over this protocol — by
// design) stays alive as long as its beats keep landing, and a worker
// whose beats stop is retired no matter what its clock claimed.
func TestClockSkewTolerance(t *testing.T) {
	fc := newFakeClock()
	p := New(quietOpts(fc))
	defer p.Close()
	id, _, _ := p.AddRemote("skewed", 1)
	// Beats arrive every 45s (daemon clock) — inside the 60s budget —
	// for a long stretch: the worker must survive every sweep.
	for i := 0; i < 10; i++ {
		fc.Advance(45 * time.Second)
		p.sweep()
		if _, err := p.Heartbeat(id); err != nil {
			t.Fatalf("beat %d rejected: %v", i, err)
		}
	}
	if p.Alive() != 1 {
		t.Fatal("regularly beating worker was retired")
	}
	// Silence: one full budget later it is gone.
	fc.Advance(61 * time.Second)
	p.sweep()
	if p.Alive() != 0 {
		t.Fatal("silent worker survived the expiry budget")
	}
	if _, err := p.Heartbeat(id); err != ErrUnknownWorker {
		t.Fatalf("beat after retirement: err=%v, want ErrUnknownWorker", err)
	}
}

// TestClockHeartbeatVsReassignRace hammers Heartbeat, Claim, Report
// and sweep concurrently while the clock jumps around the expiry
// boundary — run under -race, this pins the locking of the remote
// registry paths. Every unit must settle exactly once regardless of
// how beats and expiry sweeps interleave.
func TestClockHeartbeatVsReassignRace(t *testing.T) {
	fc := newFakeClock()
	opts := quietOpts(fc)
	// Fallback keeps units settling even in windows where every racer
	// identity has been expired away — the point is the interleaving,
	// not starvation.
	opts.Fallback = true
	p := New(opts)
	defer p.Close()
	p.AddRemote("anchor", 1) // assignable at enqueue time so units queue
	j := p.Register("j0001", &fakeEval{})

	const units = 40
	results := make([]chan shardResult, units)
	for i := 0; i < units; i++ {
		results[i] = evalAsync(j, "unit"+string(rune('a'+i%26))+string(rune('0'+i/26)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churning workers: claim, sometimes beat, report; re-register when
	// expired away.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id, _, _ := p.AddRemote("racer", 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				leases, _, err := p.Claim(id, 5*time.Millisecond, 2)
				if err != nil {
					id, _, _ = p.AddRemote("racer", 2) // expired: fresh identity
					continue
				}
				if i%3 == 0 {
					p.Heartbeat(id)
				}
				for _, lease := range leases {
					p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, "")
				}
			}
		}(g)
	}
	// The clock lurches across the expiry boundary while sweeps run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fc.Advance(40 * time.Second)
			p.sweep()
			time.Sleep(time.Millisecond)
		}
	}()

	// Every unit settles exactly once (requeues bounded by MaxReassign
	// could fail a unit; with instant reports that is vanishingly rare,
	// but accept either outcome — the invariant is one settle, no hang).
	deadline := time.After(30 * time.Second)
	for i, res := range results {
		select {
		case <-res:
		case <-deadline:
			t.Fatalf("unit %d never settled", i)
		}
	}
	close(stop)
	wg.Wait()
}
