package fleet

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fpmix/internal/search"
)

// fakeEval settles units instantly: pass iff the key has even length.
type fakeEval struct {
	mu    sync.Mutex
	calls int
}

func (f *fakeEval) Evaluate(u search.EvalUnit) (search.Verdict, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return search.Verdict{Pass: len(u.Key)%2 == 0, Attempts: 1}, nil
}

// gateEval blocks every evaluation until the gate closes.
type gateEval struct {
	gate    chan struct{}
	started chan string // receives the unit key as evaluation begins
}

func (g *gateEval) Evaluate(u search.EvalUnit) (search.Verdict, error) {
	if g.started != nil {
		g.started <- u.Key
	}
	<-g.gate
	return search.Verdict{Pass: true, Attempts: 1}, nil
}

func waitBusy(t *testing.T, p *Pool) WorkerInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, w := range p.Workers() {
			if w.State == WorkerBusy {
				return w
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no worker went busy")
	return WorkerInfo{}
}

func TestPoolShardsAllUnits(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	p.Start(4)
	ev := &fakeEval{}
	j := p.Register("j0001", ev)

	const units = 50
	var wg sync.WaitGroup
	errs := make(chan error, units)
	for i := 0; i < units; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := strings.Repeat("k", i%5+1)
			v, err := j.EvaluateUnit(search.EvalUnit{Key: key, Label: fmt.Sprintf("u%d", i)})
			if err != nil {
				errs <- err
				return
			}
			if want := len(key)%2 == 0; v.Pass != want {
				errs <- fmt.Errorf("unit %d: pass=%v want %v", i, v.Pass, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if ev.calls != units {
		t.Errorf("%d evaluations for %d units", ev.calls, units)
	}
	done := 0
	for _, w := range p.Workers() {
		done += w.Done
	}
	if done != units {
		t.Errorf("workers account %d accepted deliveries, want %d", done, units)
	}
}

// TestPoolKillReassigns kills the lease holder mid-evaluation: the
// shard must requeue to a live worker, exactly one verdict must be
// delivered, and the dead worker's late result must be discarded.
func TestPoolKillReassigns(t *testing.T) {
	p := New(Options{Heartbeat: 10 * time.Millisecond})
	defer p.Close()
	p.Start(2)
	g := &gateEval{gate: make(chan struct{}), started: make(chan string, 4)}
	j := p.Register("j0001", g)

	res := make(chan error, 1)
	go func() {
		v, err := j.EvaluateUnit(search.EvalUnit{Key: "k1", Label: "piece"})
		if err == nil && !v.Pass {
			err = fmt.Errorf("verdict flipped")
		}
		res <- err
	}()
	<-g.started // first worker is inside Evaluate
	victim := waitBusy(t, p)
	if err := p.Kill(victim.ID); err != nil {
		t.Fatal(err)
	}
	<-g.started   // the surviving worker re-claims the shard
	close(g.gate) // release both evaluations
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	// The dead worker's late delivery must be discarded, not double-sent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var dead WorkerInfo
		for _, w := range p.Workers() {
			if w.ID == victim.ID {
				dead = w
			}
		}
		if dead.State == WorkerDead && dead.Discarded == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s: state=%s discarded=%d, want dead/1", victim.ID, dead.State, dead.Discarded)
		}
		time.Sleep(time.Millisecond)
	}
	if p.Alive() != 1 {
		t.Errorf("Alive() = %d after one kill of two workers", p.Alive())
	}
}

// TestPoolReassignCap: a shard that outlives MaxReassign lease holders
// fails instead of looping forever.
func TestPoolReassignCap(t *testing.T) {
	p := New(Options{Heartbeat: 10 * time.Millisecond, MaxReassign: 2})
	defer p.Close()
	p.Start(4)
	g := &gateEval{gate: make(chan struct{}), started: make(chan string, 8)}
	defer close(g.gate)
	j := p.Register("j0001", g)

	res := make(chan error, 1)
	go func() {
		_, err := j.EvaluateUnit(search.EvalUnit{Key: "k1", Label: "cursed"})
		res <- err
	}()
	for i := 0; i < 3; i++ {
		<-g.started
		victim := waitBusy(t, p)
		if err := p.Kill(victim.ID); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-res:
		if err == nil || !strings.Contains(err.Error(), "reassigned") {
			t.Fatalf("want reassignment-cap error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard did not fail after exhausting its reassignment budget")
	}
}

// TestPoolHeartbeatExpiry: a worker that goes silent without an
// explicit Kill — the monitor must detect the stale heartbeat and
// reassign its shard.
func TestPoolHeartbeatExpiry(t *testing.T) {
	p := New(Options{Heartbeat: 10 * time.Millisecond, Expiry: 30 * time.Millisecond})
	defer p.Close()
	p.Start(2)
	g := &gateEval{gate: make(chan struct{}), started: make(chan string, 4)}
	j := p.Register("j0001", g)

	res := make(chan error, 1)
	go func() {
		v, err := j.EvaluateUnit(search.EvalUnit{Key: "k1", Label: "piece"})
		if err == nil && !v.Pass {
			err = fmt.Errorf("verdict flipped")
		}
		res <- err
	}()
	<-g.started
	victim := waitBusy(t, p)
	p.stopBeats(victim.ID) // silent death: no Kill call
	<-g.started            // monitor reassigned to the survivor
	close(g.gate)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	for _, w := range p.Workers() {
		if w.ID == victim.ID && w.State != WorkerDead {
			t.Errorf("silent worker %s not declared dead (state %s)", w.ID, w.State)
		}
	}
}

func TestPoolNoWorkers(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	j := p.Register("j0001", &fakeEval{})
	if _, err := j.EvaluateUnit(search.EvalUnit{Key: "k"}); err == nil || !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("want no-live-workers error, got %v", err)
	}
}

func TestPoolCloseFailsQueued(t *testing.T) {
	p := New(Options{})
	p.Start(1)
	g := &gateEval{gate: make(chan struct{}), started: make(chan string, 2)}
	j := p.Register("j0001", g)

	first := make(chan error, 1)
	go func() {
		_, err := j.EvaluateUnit(search.EvalUnit{Key: "k1", Label: "running"})
		first <- err
	}()
	<-g.started // the only worker is busy; the next unit must queue
	second := make(chan error, 1)
	go func() {
		_, err := j.EvaluateUnit(search.EvalUnit{Key: "k2", Label: "queued"})
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second unit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.Close()
	if err := <-second; err == nil || !strings.Contains(err.Error(), "pool closed") {
		t.Fatalf("queued shard: want pool-closed error, got %v", err)
	}
	close(g.gate) // let the in-flight evaluation finish and deliver
	if err := <-first; err != nil {
		t.Fatalf("in-flight shard should still deliver: %v", err)
	}
}
