package fleet

import (
	"testing"
	"time"

	"fpmix/internal/search"
)

// evalAsync runs EvaluateUnit in a goroutine and returns the result
// channel.
func evalAsync(j *JobHandle, key string) chan shardResult {
	out := make(chan shardResult, 1)
	go func() {
		v, err := j.EvaluateUnit(search.EvalUnit{Key: key, Label: key})
		out <- shardResult{v: v, err: err}
	}()
	return out
}

// claimSoon polls Claim (for a single unit) until a lease arrives (the
// shard queue is fed by a concurrent EvaluateUnit).
func claimSoon(t *testing.T, p *Pool, id string) *RemoteLease {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		leases, _, err := p.Claim(id, 50*time.Millisecond, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) > 0 {
			return &leases[0]
		}
	}
	t.Fatal("no lease arrived")
	return nil
}

// TestRemoteClaimReport drives the basic remote cycle: register, claim,
// report, verdict delivered to the waiting unit.
func TestRemoteClaimReport(t *testing.T) {
	p := New(Options{Heartbeat: 10 * time.Millisecond, Expiry: 30 * time.Second})
	defer p.Close()
	id, hb, exp := p.AddRemote("rack1", 1)
	if hb <= 0 || exp <= 0 {
		t.Fatalf("AddRemote returned heartbeat %v expiry %v", hb, exp)
	}
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	lease := claimSoon(t, p, id)
	if lease.Job != "j0001" || lease.Unit.Key != "k1" {
		t.Fatalf("lease %+v, want j0001/k1", lease)
	}
	acc, err := p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, "")
	if err != nil || !acc {
		t.Fatalf("Report: accepted=%v err=%v", acc, err)
	}
	r := <-res
	if r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v", r)
	}
	for _, w := range p.Workers() {
		if w.ID == id && (w.Done != 1 || !w.Remote || w.Name != "rack1") {
			t.Errorf("worker snapshot %+v, want done=1 remote name=rack1", w)
		}
	}
}

// TestRemoteReportIdempotent: a duplicated report RPC (the retry after
// a dropped response) must be discarded — the verdict lands exactly
// once.
func TestRemoteReportIdempotent(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	id, _, _ := p.AddRemote("dup", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	lease := claimSoon(t, p, id)
	if acc, err := p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, ""); err != nil || !acc {
		t.Fatalf("first report: accepted=%v err=%v", acc, err)
	}
	if acc, err := p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: false}, ""); err != nil || acc {
		t.Fatalf("duplicate report: accepted=%v err=%v, want discarded", acc, err)
	}
	if r := <-res; !r.v.Pass {
		t.Fatal("duplicate delivery overwrote the verdict")
	}
	for _, w := range p.Workers() {
		if w.ID == id && w.Discarded != 1 {
			t.Errorf("discarded=%d, want 1", w.Discarded)
		}
	}
}

// TestRemoteClaimRedelivery: when the claim response is lost, the
// worker's next claim re-delivers the same lease with the same epoch —
// the idempotency token is unchanged — never a fresh-epoch duplicate of
// a unit the worker already holds.
func TestRemoteClaimRedelivery(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	id, _, _ := p.AddRemote("lossy", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	res2 := evalAsync(j, "k2long") // a second unit is queued behind
	first := claimSoon(t, p, id)
	again, state, err := p.Claim(id, 0, 1)
	if err != nil || len(again) == 0 {
		t.Fatalf("re-claim: leases=%v state=%s err=%v", again, state, err)
	}
	// Held leases come back first; the re-claim may also top up with the
	// queued second unit, but the held one keeps its epoch and is never
	// duplicated.
	if again[0].Unit.Key != first.Unit.Key || again[0].Epoch != first.Epoch {
		t.Fatalf("re-claim delivered %s@%d, want %s@%d", again[0].Unit.Key, again[0].Epoch, first.Unit.Key, first.Epoch)
	}
	for _, l := range again[1:] {
		if l.Unit.Key == first.Unit.Key {
			t.Fatalf("re-claim duplicated held unit %s under epoch %d", l.Unit.Key, l.Epoch)
		}
	}
	if acc, _ := p.Report(id, first.Job, first.Unit.Key, first.Epoch, search.Verdict{Pass: true}, ""); !acc {
		t.Fatal("report after redelivery not accepted")
	}
	second := claimSoon(t, p, id)
	if second.Unit.Key == first.Unit.Key {
		t.Fatal("second claim re-delivered a settled unit")
	}
	p.Report(id, second.Job, second.Unit.Key, second.Epoch, search.Verdict{Pass: true}, "")
	<-res
	<-res2
}

// TestRemoteStaleEpochDiscarded: a lease broken by expiry and
// reassigned to another worker must reject the first worker's late
// report — its epoch is stale, so the unit cannot double-count.
func TestRemoteStaleEpochDiscarded(t *testing.T) {
	fc := newFakeClock()
	p := New(Options{Heartbeat: time.Hour, Expiry: time.Minute, Clock: fc.Now})
	defer p.Close()
	dead, _, _ := p.AddRemote("doomed", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	stale := claimSoon(t, p, dead)

	// The doomed worker partitions: no beats, lease expires on the
	// pool's clock, shard requeues.
	fc.Advance(2 * time.Minute)
	surv, _, _ := p.AddRemote("survivor", 1)
	p.sweep()
	fresh := claimSoon(t, p, surv)
	if fresh.Unit.Key != stale.Unit.Key || fresh.Epoch == stale.Epoch {
		t.Fatalf("reassigned lease %s@%d vs original %s@%d: want same unit, new epoch",
			fresh.Unit.Key, fresh.Epoch, stale.Unit.Key, stale.Epoch)
	}
	// The partition heals; the doomed worker's late report must die.
	if acc, err := p.Report(dead, stale.Job, stale.Unit.Key, stale.Epoch, search.Verdict{Pass: false}, ""); acc || err == nil {
		t.Fatalf("late report from expired worker: accepted=%v err=%v, want rejected with ErrUnknownWorker", acc, err)
	}
	if acc, _ := p.Report(surv, fresh.Job, fresh.Unit.Key, fresh.Epoch, search.Verdict{Pass: true}, ""); !acc {
		t.Fatal("current holder's report rejected")
	}
	if r := <-res; r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v", r)
	}
}

// TestRemoteQuarantine: QuarantineAfter consecutive worker-reported
// failures bench the worker — visible in the registry, still
// heartbeating, never assigned again — and its units reassign.
func TestRemoteQuarantine(t *testing.T) {
	p := New(Options{QuarantineAfter: 2})
	defer p.Close()
	bad, _, _ := p.AddRemote("bad", 1)
	good, _, _ := p.AddRemote("good", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")

	for i := 0; i < 2; i++ {
		lease := claimSoon(t, p, bad)
		acc, err := p.Report(bad, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{}, "oom")
		if err != nil || !acc {
			t.Fatalf("failure report %d: accepted=%v err=%v", i, acc, err)
		}
	}
	if leases, state, err := p.Claim(bad, 0, 1); err != nil || len(leases) != 0 || state != WorkerQuarantined {
		t.Fatalf("claim after quarantine: leases=%v state=%s err=%v, want none/quarantined", leases, state, err)
	}
	if st, err := p.Heartbeat(bad); err != nil || st != WorkerQuarantined {
		t.Fatalf("quarantined worker heartbeat: state=%s err=%v, want it kept alive", st, err)
	}
	lease := claimSoon(t, p, good)
	if acc, _ := p.Report(good, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, ""); !acc {
		t.Fatal("healthy worker's report rejected")
	}
	if r := <-res; r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v after quarantine reassignment", r)
	}
	for _, w := range p.Workers() {
		if w.ID == bad && (w.State != WorkerQuarantined || w.Fails != 2) {
			t.Errorf("bad worker snapshot %+v, want quarantined fails=2", w)
		}
	}
	if p.Alive() != 1 {
		t.Errorf("Alive() = %d with one healthy and one quarantined worker", p.Alive())
	}
}

// TestRemoteFailureCountResets: a success between failures resets the
// quarantine strike count.
func TestRemoteFailureCountResets(t *testing.T) {
	p := New(Options{QuarantineAfter: 2})
	defer p.Close()
	id, _, _ := p.AddRemote("flaky", 1)
	j := p.Register("j0001", &fakeEval{})
	keys := []string{"k1", "k2", "k3"}
	var results []chan shardResult
	for _, k := range keys {
		results = append(results, evalAsync(j, k))
	}
	// fail, succeed, fail: never two consecutive — no quarantine.
	for i := 0; i < 3; i++ {
		lease := claimSoon(t, p, id)
		if i == 1 {
			p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, "")
		} else {
			p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{}, "flake")
		}
	}
	// Settle whatever remains.
	for done := false; !done; {
		leases, state, err := p.Claim(id, 50*time.Millisecond, 1)
		if err != nil {
			t.Fatal(err)
		}
		if state == WorkerQuarantined {
			t.Fatal("worker quarantined despite non-consecutive failures")
		}
		if len(leases) == 0 {
			done = true
			continue
		}
		for _, lease := range leases {
			p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, "")
		}
	}
	for _, res := range results {
		if r := <-res; r.err != nil {
			t.Fatal(r.err)
		}
	}
}

// TestRemoteInterruptedReportRequeues: a worker draining gracefully
// reports its unit interrupted; the pool must requeue it for another
// worker — never deliver the interrupt to a live search — and must not
// count it as a quarantine strike.
func TestRemoteInterruptedReportRequeues(t *testing.T) {
	p := New(Options{QuarantineAfter: 1})
	defer p.Close()
	leaving, _, _ := p.AddRemote("leaving", 1)
	staying, _, _ := p.AddRemote("staying", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	lease := claimSoon(t, p, leaving)
	acc, err := p.Report(leaving, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Interrupted: true}, "")
	if err != nil || !acc {
		t.Fatalf("interrupt report: accepted=%v err=%v", acc, err)
	}
	select {
	case r := <-res:
		t.Fatalf("interrupted verdict reached the search: %+v", r)
	default:
	}
	for _, w := range p.Workers() {
		if w.ID == leaving && w.State == WorkerQuarantined {
			t.Fatal("graceful interrupt counted as a quarantine strike")
		}
	}
	re := claimSoon(t, p, staying)
	if re.Unit.Key != "k1" {
		t.Fatalf("requeued unit %q, want k1", re.Unit.Key)
	}
	p.Report(staying, re.Job, re.Unit.Key, re.Epoch, search.Verdict{Pass: true}, "")
	if r := <-res; r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v", r)
	}
}

// TestRemoteFallbackInProcess: with Options.Fallback, a pool whose
// last assignable worker dies degrades to in-process evaluation
// instead of failing units — queued, in-flight and future ones alike.
func TestRemoteFallbackInProcess(t *testing.T) {
	p := New(Options{Fallback: true, Heartbeat: time.Hour, Expiry: time.Minute})
	defer p.Close()
	ev := &fakeEval{}
	j := p.Register("j0001", ev)

	// No workers at all: the unit runs in-process immediately.
	if v, err := j.EvaluateUnit(search.EvalUnit{Key: "k1"}); err != nil || !v.Pass {
		t.Fatalf("fallback verdict %+v err=%v, want pass", v, err)
	}
	if p.Fallbacks() != 1 {
		t.Fatalf("Fallbacks() = %d, want 1", p.Fallbacks())
	}

	// A remote worker joins, claims a unit, then dies: the unit must
	// fall back, not strand.
	id, _, _ := p.AddRemote("mortal", 1)
	res := evalAsync(j, "k2")
	claimSoon(t, p, id)
	if err := p.Kill(id); err != nil {
		t.Fatal(err)
	}
	if r := <-res; r.err != nil || !r.v.Pass {
		t.Fatalf("fallback after worker death: %+v", r)
	}
	if p.Fallbacks() != 2 {
		t.Errorf("Fallbacks() = %d, want 2", p.Fallbacks())
	}
}

// TestRemoteUnknownWorker: every RPC against an unregistered or dead
// identity reports ErrUnknownWorker (the wire's 410).
func TestRemoteUnknownWorker(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	if _, err := p.Heartbeat("r99"); err != ErrUnknownWorker {
		t.Errorf("Heartbeat(r99) err = %v", err)
	}
	if _, _, err := p.Claim("r99", 0, 1); err != ErrUnknownWorker {
		t.Errorf("Claim(r99) err = %v", err)
	}
	if _, err := p.Report("r99", "j", "k", 1, search.Verdict{}, ""); err != ErrUnknownWorker {
		t.Errorf("Report(r99) err = %v", err)
	}
	id, _, _ := p.AddRemote("gone", 1)
	p.Kill(id)
	if _, err := p.Heartbeat(id); err != ErrUnknownWorker {
		t.Errorf("Heartbeat(dead) err = %v", err)
	}
}

// TestRemoteDrain: DrainRemote stops new remote leases while letting
// the in-flight one deliver; ReleaseRemoteLeases then breaks whatever
// remains (after the owning searches are gone).
func TestRemoteDrain(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	id, _, _ := p.AddRemote("draining", 1)
	j := p.Register("j0001", &fakeEval{})
	res1 := evalAsync(j, "k1")
	lease := claimSoon(t, p, id)
	p.DrainRemote()
	// In-flight lease still delivers.
	if acc, _ := p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, ""); !acc {
		t.Fatal("in-flight report rejected during drain")
	}
	if r := <-res1; r.err != nil || !r.v.Pass {
		t.Fatalf("drained in-flight unit %+v", r)
	}
	if n := p.AwaitRemoteIdle(time.Second); n != 0 {
		t.Fatalf("AwaitRemoteIdle = %d after delivery", n)
	}
	// No new lease while draining.
	if leases, _, _ := p.Claim(id, 0, 1); len(leases) != 0 {
		t.Fatal("drain granted a new remote lease")
	}
}

// TestRemoteReleaseBreaksLease: ReleaseRemoteLeases settles a remote
// shard interrupted (the shutdown path, after job cancellation) and
// the worker's late report is discarded.
func TestRemoteReleaseBreaksLease(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	id, _, _ := p.AddRemote("stuck", 1)
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	lease := claimSoon(t, p, id)
	p.ReleaseRemoteLeases()
	if r := <-res; r.err != nil || !r.v.Interrupted {
		t.Fatalf("released unit %+v, want interrupted", r)
	}
	if acc, err := p.Report(id, lease.Job, lease.Unit.Key, lease.Epoch, search.Verdict{Pass: true}, ""); acc || err != nil {
		t.Fatalf("late report after release: accepted=%v err=%v, want discarded", acc, err)
	}
}

// TestRemoteInterruptQueued: InterruptQueued settles queued shards and
// every later-enqueued unit as interrupted.
func TestRemoteInterruptQueued(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	p.AddRemote("idle", 1) // assignable, so units queue instead of erroring
	j := p.Register("j0001", &fakeEval{})
	res := evalAsync(j, "k1")
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.InterruptQueued()
	if r := <-res; r.err != nil || !r.v.Interrupted {
		t.Fatalf("queued unit %+v, want interrupted", r)
	}
	if v, err := j.EvaluateUnit(search.EvalUnit{Key: "k2"}); err != nil || !v.Interrupted {
		t.Fatalf("post-interrupt unit %+v err=%v, want interrupted", v, err)
	}
}
