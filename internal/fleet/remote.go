package fleet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fpmix/internal/search"
)

// ErrUnknownWorker reports a worker ID the registry does not know or
// has already retired — the wire maps it to 410 Gone, and a worker
// receiving it re-registers under a fresh identity (the standard
// recovery after a daemon restart or an operator kill).
var ErrUnknownWorker = errors.New("fleet: unknown or retired worker")

// RemoteLease is one unit leased to a remote worker. The (owner,
// epoch) pair is the idempotency token: the pool accepts exactly one
// report carrying it, so a unit re-delivered after a partition or a
// duplicated report RPC can never double-count.
type RemoteLease struct {
	Job   string
	Unit  search.EvalUnit
	Epoch int
}

// RemoteReport is one unit's outcome inside a report batch.
type RemoteReport struct {
	Job     string
	Key     string
	Epoch   int
	Verdict search.Verdict
	Err     string
}

// AddRemote registers an out-of-process worker under the given
// self-reported name and declared evaluation parallelism, returning
// its assigned ID plus the heartbeat interval and expiry the worker
// must respect. Parallelism sizes the worker's lease capacity — how
// many units Claim may leave in its hands at once. No goroutines are
// attached: the worker drives itself through Claim/Report and keeps
// its registration alive through Heartbeat; silence past Expiry on the
// pool's clock retires it exactly like an in-process death.
func (p *Pool) AddRemote(name string, parallel int) (id string, heartbeat, expiry time.Duration) {
	if parallel <= 0 {
		parallel = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rseq++
	w := &worker{
		id:       fmt.Sprintf("r%d", p.rseq),
		name:     name,
		remote:   true,
		state:    WorkerIdle,
		parallel: parallel,
		leases:   make(map[string]*shard),
		lastBeat: p.now(),
	}
	p.workers[w.id] = w
	return w.id, p.opts.Heartbeat, p.opts.Expiry
}

// Heartbeat refreshes a remote worker's lease clock (stamped with the
// pool's own clock — the worker's clock never enters expiry decisions)
// and returns its current state, so a quarantined worker learns to
// stop claiming.
func (p *Pool) Heartbeat(id string) (WorkerState, error) {
	return p.HeartbeatLoad(id, -1)
}

// HeartbeatLoad is Heartbeat carrying the worker's self-reported count
// of evaluations running right now (negative leaves the last report
// unchanged); the registry surfaces it so fleet saturation is
// observable without profiling.
func (p *Pool) HeartbeatLoad(id string, inflight int) (WorkerState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok || w.dead {
		return WorkerDead, ErrUnknownWorker
	}
	w.lastBeat = p.now()
	if inflight >= 0 {
		w.evaluating = inflight
	}
	return w.state, nil
}

// leaseCapLocked is how many units a remote worker may hold at once:
// one batch evaluating plus one batch prefetched, sized to its
// declared parallelism, never below 4 so single-threaded workers still
// amortize RPCs. Callers hold p.mu.
func leaseCapLocked(w *worker) int {
	c := 4 * w.parallel
	if c < 4 {
		c = 4
	}
	return c
}

// Claim leases up to max queued units to the remote worker,
// long-polling up to wait. The response always re-delivers every lease
// the worker already holds (same epochs — the idempotency tokens are
// unchanged, so whichever delivery the worker acts on, only one report
// per unit is accepted) before topping up from the queue, bounded by
// the worker's lease capacity. An empty slice with state WorkerIdle
// means no work was available; state WorkerQuarantined tells the
// worker to drain.
func (p *Pool) Claim(id string, wait time.Duration, max int) ([]RemoteLease, WorkerState, error) {
	if max <= 0 {
		max = 1
	}
	deadline := time.Now().Add(wait)
	for {
		p.mu.Lock()
		w, ok := p.workers[id]
		if !ok || w.dead {
			p.mu.Unlock()
			return nil, WorkerDead, ErrUnknownWorker
		}
		if p.closed {
			p.mu.Unlock()
			return nil, WorkerDead, fmt.Errorf("fleet: pool closed")
		}
		w.lastBeat = p.now() // a claim is as good as a heartbeat
		if w.state == WorkerQuarantined {
			p.mu.Unlock()
			return nil, WorkerQuarantined, nil
		}
		leases := p.heldLeasesLocked(w)
		if !p.draining && !p.interrupting {
			limit := leaseCapLocked(w)
			for granted := 0; granted < max && len(w.leases) < limit; granted++ {
				sh := p.takeLocked(w)
				if sh == nil {
					break
				}
				p.assignLocked(w, sh)
				leases = append(leases, RemoteLease{Job: sh.job.id, Unit: sh.unit, Epoch: sh.epoch})
				if sh.unit.Final {
					// The final union lowers every surviving single at once —
					// by far the heaviest unit of its search. Close the batch
					// behind it so lighter units stay available to the rest of
					// the fleet.
					break
				}
			}
		}
		if len(leases) > 0 {
			state := w.state
			p.mu.Unlock()
			return leases, state, nil
		}
		waitCh := p.waitCh
		p.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, WorkerIdle, nil
		}
		if poll := p.opts.ClaimPoll; poll > 0 {
			// Legacy periodic re-check (the original protocol's behavior,
			// kept for the remote-throughput baseline): new work is
			// discovered up to one poll interval late.
			if remain < poll {
				poll = remain
			}
			time.Sleep(poll)
			continue
		}
		t := time.NewTimer(remain)
		select {
		case <-waitCh:
		case <-t.C:
		}
		t.Stop()
	}
}

// heldLeasesLocked snapshots a worker's held leases in stable (job,
// key) order; callers hold p.mu.
func (p *Pool) heldLeasesLocked(w *worker) []RemoteLease {
	if len(w.leases) == 0 {
		return nil
	}
	keys := make([]string, 0, len(w.leases))
	for k := range w.leases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	leases := make([]RemoteLease, 0, len(keys))
	for _, k := range keys {
		sh := w.leases[k]
		leases = append(leases, RemoteLease{Job: sh.job.id, Unit: sh.unit, Epoch: sh.epoch})
	}
	return leases
}

// Report delivers one remote verdict (or worker-side evaluation
// error); it is ReportBatch for a single unit.
func (p *Pool) Report(id, jobID, key string, epoch int, v search.Verdict, evalErr string) (accepted bool, err error) {
	acc, err := p.ReportBatch(id, []RemoteReport{{Job: jobID, Key: key, Epoch: epoch, Verdict: v, Err: evalErr}})
	if err != nil {
		return false, err
	}
	return acc[0], nil
}

// ReportBatch delivers a batch of remote outcomes. Each entry is
// judged independently against the full idempotency token — the worker
// holds the unit's lease, same job, same unit key, same epoch, not yet
// delivered; anything else (a duplicated report RPC, a late report
// after the lease broke and the shard was reassigned) answers
// accepted=false for that entry alone and is counted as discarded, so
// re-delivered units never double-count and a duplicate in one slot
// cannot poison its batchmates.
//
// A worker-side evaluation error does not fail the job: the shard
// requeues for another worker (bounded by MaxReassign) and the failure
// counts toward the worker's quarantine threshold; QuarantineAfter
// consecutive failures drain the worker — which also breaks its
// remaining leases, so later entries of the same batch settle as
// discarded duplicates and their units re-evaluate elsewhere.
func (p *Pool) ReportBatch(id string, reports []RemoteReport) ([]bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return nil, ErrUnknownWorker
	}
	if w.dead {
		w.discarded += len(reports)
		return nil, ErrUnknownWorker
	}
	w.lastBeat = p.now()
	accepted := make([]bool, len(reports))
	for i, r := range reports {
		sh := w.leases[leaseKey(r.Job, r.Key)]
		if sh == nil || sh.delivered || sh.owner != w.id || sh.epoch != r.Epoch {
			w.discarded++
			continue
		}
		if r.Err != "" || r.Verdict.Interrupted {
			// The worker could not produce a verdict: its environment broke
			// (Err — counts toward quarantine) or it is shutting down
			// gracefully and its local context interrupted the run (no
			// strike — a drain is not a fault). Either way the verdict must
			// not reach the search: an Interrupted verdict delivered to a
			// live coordinator would silently drop the piece from the final.
			// Break the lease and requeue the shard for someone else.
			p.breakLeaseLocked(w, sh)
			if r.Err != "" {
				w.fails++
				if w.fails >= p.opts.QuarantineAfter {
					p.quarantineLocked(w)
				}
			}
			p.requeueLocked(sh)
			accepted[i] = true
			continue
		}
		p.deliverLocked(w, sh, r.Verdict, nil)
		accepted[i] = true
	}
	return accepted, nil
}

// quarantineLocked drains a worker: no further shard is ever assigned
// to it, its remaining leases break and requeue, and its fork-site
// ownerships clear so siblings route to live workers. It stays
// registered (and heartbeating) so the registry shows why it was
// benched. Callers hold p.mu.
func (p *Pool) quarantineLocked(w *worker) {
	if w.dead || w.state == WorkerQuarantined {
		return
	}
	w.state = WorkerQuarantined
	p.disownSitesLocked(w)
	for k, sh := range w.leases {
		delete(w.leases, k)
		if sh.owner == w.id {
			p.requeueLocked(sh)
		}
	}
	p.sweepUnassignableLocked()
	p.wakeLocked()
}
