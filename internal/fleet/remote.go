package fleet

import (
	"errors"
	"fmt"
	"time"

	"fpmix/internal/search"
)

// ErrUnknownWorker reports a worker ID the registry does not know or
// has already retired — the wire maps it to 410 Gone, and a worker
// receiving it re-registers under a fresh identity (the standard
// recovery after a daemon restart or an operator kill).
var ErrUnknownWorker = errors.New("fleet: unknown or retired worker")

// RemoteLease is one unit leased to a remote worker. The (owner,
// epoch) pair is the idempotency token: the pool accepts exactly one
// report carrying it, so a unit re-delivered after a partition or a
// duplicated report RPC can never double-count.
type RemoteLease struct {
	Job   string
	Unit  search.EvalUnit
	Epoch int
}

// AddRemote registers an out-of-process worker under the given
// self-reported name and returns its assigned ID plus the heartbeat
// interval and expiry the worker must respect. No goroutines are
// attached: the worker drives itself through Claim/Report and keeps
// its registration alive through Heartbeat; silence past Expiry on the
// pool's clock retires it exactly like an in-process death.
func (p *Pool) AddRemote(name string) (id string, heartbeat, expiry time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rseq++
	w := &worker{
		id:       fmt.Sprintf("r%d", p.rseq),
		name:     name,
		remote:   true,
		state:    WorkerIdle,
		lastBeat: p.now(),
	}
	p.workers[w.id] = w
	return w.id, p.opts.Heartbeat, p.opts.Expiry
}

// Heartbeat refreshes a remote worker's lease clock (stamped with the
// pool's own clock — the worker's clock never enters expiry decisions)
// and returns its current state, so a quarantined worker learns to
// stop claiming.
func (p *Pool) Heartbeat(id string) (WorkerState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok || w.dead {
		return WorkerDead, ErrUnknownWorker
	}
	w.lastBeat = p.now()
	return w.state, nil
}

// Claim leases the next queued unit to the remote worker, long-polling
// up to wait. A nil lease with state WorkerIdle means no work was
// available; state WorkerQuarantined tells the worker to drain. Claim
// is idempotent: while the worker already holds a lease (its previous
// claim response was lost on the wire), the same lease is re-delivered
// with the same epoch instead of assigning a second unit.
func (p *Pool) Claim(id string, wait time.Duration) (*RemoteLease, WorkerState, error) {
	deadline := time.Now().Add(wait)
	for {
		p.mu.Lock()
		w, ok := p.workers[id]
		if !ok || w.dead {
			p.mu.Unlock()
			return nil, WorkerDead, ErrUnknownWorker
		}
		if p.closed {
			p.mu.Unlock()
			return nil, WorkerDead, fmt.Errorf("fleet: pool closed")
		}
		w.lastBeat = p.now() // a claim is as good as a heartbeat
		if w.state == WorkerQuarantined {
			p.mu.Unlock()
			return nil, WorkerQuarantined, nil
		}
		if sh := w.current; sh != nil {
			// Re-deliver the lease the worker never heard about. Same
			// epoch: the idempotency token is unchanged, so whichever
			// delivery the worker acts on, only one report is accepted.
			lease := &RemoteLease{Job: sh.job.id, Unit: sh.unit, Epoch: sh.epoch}
			p.mu.Unlock()
			return lease, w.state, nil
		}
		if len(p.queue) > 0 && !p.draining && !p.interrupting {
			sh := p.queue[0]
			p.queue = p.queue[1:]
			sh.owner = w.id
			sh.epoch++
			w.current = sh
			w.state = WorkerBusy
			lease := &RemoteLease{Job: sh.job.id, Unit: sh.unit, Epoch: sh.epoch}
			p.mu.Unlock()
			return lease, WorkerBusy, nil
		}
		p.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, WorkerIdle, nil
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// Report delivers a remote worker's verdict (or worker-side evaluation
// error) for the unit it holds. Acceptance requires the full
// idempotency token to match — worker owns the shard, same job, same
// unit key, same epoch, not yet delivered; anything else (a duplicated
// report RPC, a late report after the lease broke and the shard was
// reassigned) returns accepted=false and is counted as discarded, so
// re-delivered units never double-count.
//
// A worker-side evaluation error does not fail the job: the shard
// requeues for another worker (bounded by MaxReassign) and the failure
// counts toward the worker's quarantine threshold; QuarantineAfter
// consecutive failures drain the worker.
func (p *Pool) Report(id, jobID, key string, epoch int, v search.Verdict, evalErr string) (accepted bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return false, ErrUnknownWorker
	}
	if w.dead {
		w.discarded++
		return false, ErrUnknownWorker
	}
	w.lastBeat = p.now()
	sh := w.current
	if sh == nil || sh.delivered || sh.owner != w.id || sh.epoch != epoch ||
		sh.job.id != jobID || sh.unit.Key != key {
		w.discarded++
		return false, nil
	}
	if evalErr != "" || v.Interrupted {
		// The worker could not produce a verdict: its environment broke
		// (evalErr — counts toward quarantine) or it is shutting down
		// gracefully and its local context interrupted the run (no
		// strike — a drain is not a fault). Either way the verdict must
		// not reach the search: an Interrupted verdict delivered to a
		// live coordinator would silently drop the piece from the final.
		// Break the lease and requeue the shard for someone else.
		w.current = nil
		if w.state == WorkerBusy {
			w.state = WorkerIdle
		}
		if evalErr != "" {
			w.fails++
			if w.fails >= p.opts.QuarantineAfter {
				p.quarantineLocked(w)
			}
		}
		p.requeueLocked(sh)
		return true, nil
	}
	p.deliverLocked(w, sh, v, nil)
	return true, nil
}

// quarantineLocked drains a worker: no further shard is ever assigned
// to it, but it stays registered (and heartbeating) so the registry
// shows why it was benched. Callers hold p.mu.
func (p *Pool) quarantineLocked(w *worker) {
	if w.dead || w.state == WorkerQuarantined {
		return
	}
	w.state = WorkerQuarantined
	if sh := w.current; sh != nil && sh.owner == w.id {
		w.current = nil
		p.requeueLocked(sh)
	}
	p.sweepUnassignableLocked()
	p.cond.Broadcast()
}
