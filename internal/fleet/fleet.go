// Package fleet is the sharded-evaluation scheduler of the fpmixd
// service: a registry of workers and a piece-granular shard queue with
// lease/heartbeat semantics. The search coordinator stays in one
// process (internal/search keeps its deterministic queue trajectory)
// and routes every evaluation unit here through the search.UnitEvaluator
// seam; the pool leases each unit to a worker, requeues it when the
// worker dies — detected by a stopped heartbeat, or reported by Kill —
// and accepts a result only from the unit's current lease holder, so a
// late verdict from a dead worker can never race a reassigned one.
// Because unit verdicts are deterministic functions of their address
// sets, the composed final configuration is byte-identical to a serial
// run no matter how units are sharded, reassigned or replayed.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"fpmix/internal/search"
)

// Evaluator executes one evaluation unit to a verdict. The local
// implementation is *search.UnitRunner; tests substitute fakes.
type Evaluator interface {
	Evaluate(u search.EvalUnit) (search.Verdict, error)
}

// Options shape a pool's failure detection.
type Options struct {
	// Heartbeat is the interval at which live workers refresh their
	// lease (default 250ms); Expiry is the silence after which the
	// monitor declares a worker dead and reassigns its shard (default
	// 4×Heartbeat).
	Heartbeat time.Duration
	Expiry    time.Duration
	// MaxReassign bounds how many times one shard may be reassigned
	// before the pool gives up and fails it (default 3) — a shard that
	// kills every worker it touches must not take the fleet down with
	// it.
	MaxReassign int
}

// WorkerState is a worker's position in its lifecycle.
type WorkerState string

const (
	WorkerIdle WorkerState = "idle"
	WorkerBusy WorkerState = "busy"
	WorkerDead WorkerState = "dead"
)

// WorkerInfo is a registry snapshot of one worker.
type WorkerInfo struct {
	ID        string      `json:"id"`
	State     WorkerState `json:"state"`
	Done      int         `json:"done"`      // units completed and accepted
	Discarded int         `json:"discarded"` // results rejected (lease lost)
	Job       string      `json:"job,omitempty"`
	Unit      string      `json:"unit,omitempty"`
	LastBeat  time.Time   `json:"last_beat"`
}

// Pool is the worker registry plus shard scheduler.
type Pool struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*worker
	queue   []*shard // FIFO of unleased shards
	wseq    int
	closed  bool
}

type worker struct {
	id        string
	state     WorkerState
	dead      bool
	done      int
	discarded int
	current   *shard
	lastBeat  time.Time
	stopBeat  chan struct{}
}

// shard is one leased evaluation unit.
type shard struct {
	job  *JobHandle
	unit search.EvalUnit

	owner     string // worker holding the lease ("" = queued)
	epoch     int    // bumped at every assignment
	reassigns int
	delivered bool
	done      chan shardResult // buffered 1
}

type shardResult struct {
	v   search.Verdict
	err error
}

// New builds an empty pool; add workers with Start or AddWorker.
func New(opts Options) *Pool {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Expiry <= 0 {
		// Generous by design: beat goroutines share the scheduler with
		// CPU-saturating evaluation runs, so a tight expiry would declare
		// healthy-but-starved workers dead under full load.
		opts.Expiry = 8 * opts.Heartbeat
	}
	if opts.MaxReassign <= 0 {
		opts.MaxReassign = 3
	}
	p := &Pool{opts: opts, workers: make(map[string]*worker)}
	p.cond = sync.NewCond(&p.mu)
	go p.monitor()
	return p
}

// Start adds n in-process workers.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.AddWorker()
	}
}

// AddWorker registers one in-process worker and returns its ID.
func (p *Pool) AddWorker() string {
	p.mu.Lock()
	p.wseq++
	w := &worker{
		id:       fmt.Sprintf("w%d", p.wseq),
		state:    WorkerIdle,
		lastBeat: time.Now(),
		stopBeat: make(chan struct{}),
	}
	p.workers[w.id] = w
	p.mu.Unlock()
	go p.beat(w)
	go p.run(w)
	return w.id
}

// Kill reports a worker dead: its heartbeat stops, its lease (if any)
// is broken and the shard requeued for another worker, and any verdict
// the doomed evaluation still produces is discarded on delivery.
func (p *Pool) Kill(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("fleet: no worker %s", id)
	}
	p.markDeadLocked(w)
	return nil
}

// Workers snapshots the registry, in ID-creation order is not
// guaranteed — callers sort.
func (p *Pool) Workers() []WorkerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, w := range p.workers {
		wi := WorkerInfo{
			ID: w.id, State: w.state, Done: w.done,
			Discarded: w.discarded, LastBeat: w.lastBeat,
		}
		if w.current != nil {
			wi.Job = w.current.job.id
			wi.Unit = w.current.unit.Label
		}
		out = append(out, wi)
	}
	return out
}

// Alive counts workers that can still take shards.
func (p *Pool) Alive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.aliveLocked()
}

// QueueLen is the number of shards awaiting a lease.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close shuts the pool: queued shards fail, workers exit after their
// current evaluation.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, sh := range p.queue {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: pool closed")}
	}
	p.queue = nil
	p.cond.Broadcast()
}

// JobHandle is a registered job's face to the pool: it implements
// search.UnitEvaluator, so a search hands units straight to the fleet
// via Options.Units.
type JobHandle struct {
	pool *Pool
	id   string
	ev   Evaluator
}

// Register binds a job ID to the evaluator its units run on (one
// shared UnitRunner per job — engines are concurrency-safe).
func (p *Pool) Register(jobID string, ev Evaluator) *JobHandle {
	return &JobHandle{pool: p, id: jobID, ev: ev}
}

// EvaluateUnit enqueues the unit as a shard and blocks until a worker
// delivers its verdict (or the pool exhausts the reassignment budget).
func (j *JobHandle) EvaluateUnit(u search.EvalUnit) (search.Verdict, error) {
	sh := &shard{job: j, unit: u, done: make(chan shardResult, 1)}
	p := j.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: pool closed")
	}
	if p.aliveLocked() == 0 {
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: no live workers")
	}
	p.queue = append(p.queue, sh)
	p.cond.Broadcast()
	p.mu.Unlock()
	r := <-sh.done
	return r.v, r.err
}

// run is a worker's claim-evaluate-deliver loop.
func (p *Pool) run(w *worker) {
	for {
		sh, epoch, ok := p.claim(w)
		if !ok {
			return
		}
		v, err := sh.job.ev.Evaluate(sh.unit)
		p.deliver(w, sh, epoch, v, err)
		p.mu.Lock()
		dead := w.dead
		p.mu.Unlock()
		if dead {
			return
		}
	}
}

// claim blocks until a shard is available, leasing it to w.
func (p *Pool) claim(w *worker) (*shard, int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed || w.dead {
			return nil, 0, false
		}
		if len(p.queue) > 0 {
			sh := p.queue[0]
			p.queue = p.queue[1:]
			sh.owner = w.id
			sh.epoch++
			w.current = sh
			w.state = WorkerBusy
			return sh, sh.epoch, true
		}
		p.cond.Wait()
	}
}

// deliver hands a verdict back — accepted only from the shard's current
// lease holder in the epoch it claimed; anything else (the worker died
// and the shard was reassigned) is discarded.
func (p *Pool) deliver(w *worker, sh *shard, epoch int, v search.Verdict, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.delivered || sh.owner != w.id || sh.epoch != epoch || w.dead {
		w.discarded++
		return
	}
	sh.delivered = true
	sh.owner = ""
	w.current = nil
	w.done++
	if w.state == WorkerBusy {
		w.state = WorkerIdle
	}
	sh.done <- shardResult{v: v, err: err}
}

// beat refreshes the worker's heartbeat until it dies.
func (p *Pool) beat(w *worker) {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stopBeat:
			return
		case <-t.C:
			p.mu.Lock()
			if w.dead || p.closed {
				p.mu.Unlock()
				return
			}
			w.lastBeat = time.Now()
			p.mu.Unlock()
		}
	}
}

// monitor scans for workers whose heartbeat went silent (an in-process
// worker only stops beating when killed; external workers would stop by
// crashing) and reassigns their shards.
func (p *Pool) monitor() {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for range t.C {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		now := time.Now()
		for _, w := range p.workers {
			if !w.dead && now.Sub(w.lastBeat) > p.opts.Expiry {
				p.markDeadLocked(w)
			}
		}
		p.mu.Unlock()
	}
}

// markDeadLocked retires a worker and breaks its lease; callers hold
// p.mu.
func (p *Pool) markDeadLocked(w *worker) {
	if w.dead {
		return
	}
	w.dead = true
	w.state = WorkerDead
	select {
	case <-w.stopBeat:
	default:
		close(w.stopBeat)
	}
	if sh := w.current; sh != nil && sh.owner == w.id {
		w.current = nil
		p.requeueLocked(sh)
	}
	if p.aliveLocked() == 0 {
		// The last worker died: queued shards would otherwise wait forever
		// for a lease that can never be granted.
		for _, sh := range p.queue {
			if !sh.delivered {
				sh.delivered = true
				sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
			}
		}
		p.queue = nil
	}
	p.cond.Broadcast()
}

// requeueLocked puts a broken-lease shard back at the head of the
// queue, or fails it when its reassignment budget is spent or no worker
// is left to take it.
func (p *Pool) requeueLocked(sh *shard) {
	sh.owner = ""
	sh.reassigns++
	if sh.delivered {
		return
	}
	if sh.reassigns > p.opts.MaxReassign {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: unit %q reassigned %d times, giving up", sh.unit.Label, sh.reassigns)}
		return
	}
	if p.aliveLocked() == 0 {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
		return
	}
	p.queue = append([]*shard{sh}, p.queue...)
	p.cond.Broadcast()
}

func (p *Pool) aliveLocked() int {
	n := 0
	for _, w := range p.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

// stopBeats silences a worker's heartbeat without marking it dead — the
// monitor must then detect the silence. Test hook for the expiry path.
func (p *Pool) stopBeats(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.workers[id]; ok {
		select {
		case <-w.stopBeat:
		default:
			close(w.stopBeat)
		}
	}
}
