// Package fleet is the sharded-evaluation scheduler of the fpmixd
// service: a registry of workers and a piece-granular shard queue with
// lease/heartbeat semantics. The search coordinator stays in one
// process (internal/search keeps its deterministic queue trajectory)
// and routes every evaluation unit here through the search.UnitEvaluator
// seam; the pool leases each unit to a worker, requeues it when the
// worker dies — detected by a stopped heartbeat, or reported by Kill —
// and accepts a result only from the unit's current lease holder, so a
// late verdict from a dead worker can never race a reassigned one.
// Because unit verdicts are deterministic functions of their address
// sets, the composed final configuration is byte-identical to a serial
// run no matter how units are sharded, reassigned or replayed.
//
// Workers come in two flavors. In-process workers (Start/AddWorker) are
// goroutines evaluating on the job's registered evaluator. Remote
// workers (AddRemote, driven over the wire by internal/remote and
// cmd/fpmixworker) claim, evaluate and report through explicit RPCs in
// their own address space — a crashed worker process can never take the
// pool down; its stopped heartbeat breaks the lease exactly like an
// in-process death. A remote worker may hold several leases at once
// (batched delivery sized to its declared parallelism); every lease
// carries its own owner+epoch idempotency token, so batching changes
// how many units ride one RPC, never the failure semantics. All
// lease-expiry decisions use the pool's own clock only: remote
// timestamps never enter them, so arbitrarily skewed worker clocks
// cannot expire or extend a lease.
//
// Scheduling prefers fork affinity: units sharing a fork point (their
// first single site) resume from the same donor snapshot under
// fork-point evaluation, so the pool routes them to the worker that
// already holds that snapshot when one exists, falling back to strict
// FIFO whenever affinity would starve the queue head.
package fleet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"time"

	"fpmix/internal/search"
)

// Evaluator executes one evaluation unit to a verdict. The local
// implementation is *search.UnitRunner; tests substitute fakes.
type Evaluator interface {
	Evaluate(u search.EvalUnit) (search.Verdict, error)
}

// Options shape a pool's failure detection.
type Options struct {
	// Heartbeat is the interval at which live workers refresh their
	// lease (default 500ms); Expiry is the silence after which the
	// monitor declares a worker dead and reassigns its shard (default
	// 8×Heartbeat).
	Heartbeat time.Duration
	Expiry    time.Duration
	// MaxReassign bounds how many times one shard may be reassigned
	// before the pool gives up and fails it (default 3) — a shard that
	// kills every worker it touches must not take the fleet down with
	// it.
	MaxReassign int
	// QuarantineAfter is the number of consecutive worker-reported
	// evaluation failures after which a remote worker is quarantined:
	// it keeps heartbeating but is never assigned another shard until
	// an operator kills or restarts it (default 3). A successful report
	// resets the count.
	QuarantineAfter int
	// Fallback enables graceful degradation: when no assignable worker
	// remains (all dead or quarantined), units evaluate in-process on
	// the job's own registered evaluator instead of failing — jobs slow
	// down but never stall. Off by default so pure-fleet tests observe
	// the no-live-workers error paths.
	Fallback bool
	// ClaimPoll selects how remote claim long-polls discover new work.
	// Zero (the default) is event-driven: a blocked Claim wakes the
	// instant a unit is enqueued or a lease breaks. A positive value
	// restores the periodic re-check loop of the original protocol
	// (every enqueue is discovered up to ClaimPoll late) — kept so the
	// remote-throughput experiment can measure the old behavior as its
	// baseline.
	ClaimPoll time.Duration
	// Clock overrides the time source for heartbeat/lease bookkeeping
	// (tests drive expiry deterministically with a fake clock). Nil
	// means time.Now. Lease expiry compares only timestamps taken from
	// this clock — worker-side clocks are never consulted, so clock
	// skew between daemon and workers cannot break or extend a lease.
	Clock func() time.Time
}

// Affinity scheduling bounds. A worker looks at most affinityWindow
// deep into the queue for a unit whose fork site it owns, and the
// queue head can be bypassed by such picks at most starveSkips times
// before it must be taken regardless — affinity is a preference, never
// a starvation source.
const (
	affinityWindow = 16
	starveSkips    = 8
	// affinityGrace is how long a queued unit whose fork site belongs to
	// another worker is reserved for that owner. While the grace runs,
	// non-owners with nothing else to take decline instead of stealing —
	// the owner's parked claim collects the unit within microseconds, so
	// the donor snapshot amortizes instead of re-running on a stranger.
	// Once the grace expires (owner saturated, slow, or gone quiet) any
	// worker takes the unit: affinity is a preference, never a fence.
	affinityGrace = 50 * time.Millisecond
	// affinityCap bounds the site-ownership table; past it the table
	// resets (ownership is a routing hint — losing it costs at most one
	// redundant donor run per worker, never correctness).
	affinityCap = 8192
)

// WorkerState is a worker's position in its lifecycle.
type WorkerState string

const (
	WorkerIdle WorkerState = "idle"
	WorkerBusy WorkerState = "busy"
	WorkerDead WorkerState = "dead"
	// WorkerQuarantined: too many consecutive failures; the worker is
	// drained — it keeps heartbeating and stays visible in the
	// registry, but no shard is ever assigned to it again.
	WorkerQuarantined WorkerState = "quarantined"
)

// WorkerInfo is a registry snapshot of one worker.
type WorkerInfo struct {
	ID        string      `json:"id"`
	Name      string      `json:"name,omitempty"` // remote self-reported name
	Remote    bool        `json:"remote,omitempty"`
	State     WorkerState `json:"state"`
	Parallel  int         `json:"parallel,omitempty"` // declared concurrent evaluations
	Done      int         `json:"done"`               // units completed and accepted
	Discarded int         `json:"discarded"`          // results rejected (lease lost or duplicated)
	Fails     int         `json:"fails,omitempty"`    // consecutive reported failures
	// InFlight counts leases currently held (assigned, not yet
	// reported); Evaluating is the worker's own last-heartbeated count
	// of evaluations running right now (remote only).
	InFlight   int `json:"in_flight"`
	Evaluating int `json:"evaluating,omitempty"`
	// UnitsPerSec is accepted units over the span from the worker's
	// first lease to its latest delivery; MeanUnitMS is the mean
	// worker-measured evaluation wall per accepted unit.
	UnitsPerSec float64   `json:"units_per_sec,omitempty"`
	MeanUnitMS  float64   `json:"mean_unit_ms,omitempty"`
	Job         string    `json:"job,omitempty"`
	Unit        string    `json:"unit,omitempty"`
	LastBeat    time.Time `json:"last_beat"`
}

// Pool is the worker registry plus shard scheduler.
type Pool struct {
	opts Options

	mu           sync.Mutex
	cond         *sync.Cond
	waitCh       chan struct{} // closed+replaced on every scheduling event
	workers      map[string]*worker
	queue        []*shard          // FIFO of unleased shards
	aff          map[string]string // fork-site key → owning worker ID
	wseq, rseq   int
	fallbacks    int
	draining     bool // no new remote leases (graceful shutdown)
	interrupting bool // every queued or future unit settles interrupted
	closed       bool
}

type worker struct {
	id       string
	name     string
	remote   bool
	state    WorkerState
	dead     bool
	parallel int // declared concurrent evaluations (1 for in-process)

	done       int
	discarded  int
	fails      int
	evaluating int // last heartbeat-reported in-flight evaluations

	leases map[string]*shard // leaseKey → shard currently held

	firstLease time.Time
	lastDone   time.Time
	wallSum    time.Duration

	lastBeat time.Time
	stopBeat chan struct{} // in-process only
}

// shard is one leased evaluation unit.
type shard struct {
	job  *JobHandle
	unit search.EvalUnit
	site string // fork-affinity key (job + fork site)

	owner     string // worker holding the lease ("" = queued)
	epoch     int    // bumped at every assignment
	reassigns int
	skips     int       // times bypassed at the queue head by affinity picks
	queued    time.Time // last (re-)enqueue, bounds the affinity-decline grace
	delivered bool
	done      chan shardResult // buffered 1
}

type shardResult struct {
	v   search.Verdict
	err error
}

// New builds an empty pool; add workers with Start or AddWorker.
func New(opts Options) *Pool {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Expiry <= 0 {
		// Generous by design: beat goroutines share the scheduler with
		// CPU-saturating evaluation runs, so a tight expiry would declare
		// healthy-but-starved workers dead under full load.
		opts.Expiry = 8 * opts.Heartbeat
	}
	if opts.MaxReassign <= 0 {
		opts.MaxReassign = 3
	}
	if opts.QuarantineAfter <= 0 {
		opts.QuarantineAfter = 3
	}
	p := &Pool{
		opts:    opts,
		workers: make(map[string]*worker),
		waitCh:  make(chan struct{}),
		aff:     make(map[string]string),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.monitor()
	return p
}

// now is the pool's only time source for heartbeat/lease bookkeeping.
func (p *Pool) now() time.Time {
	if p.opts.Clock != nil {
		return p.opts.Clock()
	}
	return time.Now()
}

// wakeLocked signals every scheduling waiter — in-process claim loops
// on the cond, remote long-polls on the wait channel. Callers hold
// p.mu.
func (p *Pool) wakeLocked() {
	p.cond.Broadcast()
	close(p.waitCh)
	p.waitCh = make(chan struct{})
}

// leaseKey identifies one held lease within a worker.
func leaseKey(jobID, unitKey string) string {
	return jobID + "\x00" + unitKey
}

// siteKey derives a shard's fork-affinity key: the job plus the unit's
// first single site. Units created by the search carry the site as a
// hint; for any that don't, it is re-derived from the unit key, whose
// byte image is the little-endian form of the sorted address set.
func siteKey(jobID string, u search.EvalUnit) string {
	site := u.ForkSite
	if site == 0 && len(u.Key) >= 8 && !u.Final {
		site = binary.LittleEndian.Uint64([]byte(u.Key[:8]))
	}
	return jobID + "\x00" + strconv.FormatUint(site, 16)
}

// Start adds n in-process workers.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.AddWorker()
	}
}

// AddWorker registers one in-process worker and returns its ID.
func (p *Pool) AddWorker() string {
	p.mu.Lock()
	p.wseq++
	w := &worker{
		id:       fmt.Sprintf("w%d", p.wseq),
		state:    WorkerIdle,
		parallel: 1,
		leases:   make(map[string]*shard),
		lastBeat: p.now(),
		stopBeat: make(chan struct{}),
	}
	p.workers[w.id] = w
	p.mu.Unlock()
	go p.beat(w)
	go p.run(w)
	return w.id
}

// Kill reports a worker dead: its heartbeat stops, its leases are
// broken and the shards requeued for other workers, and any verdict
// the doomed evaluations still produce is discarded on delivery.
func (p *Pool) Kill(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("fleet: no worker %s", id)
	}
	p.markDeadLocked(w)
	return nil
}

// Workers snapshots the registry; order is not guaranteed — callers
// sort.
func (p *Pool) Workers() []WorkerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, w := range p.workers {
		wi := WorkerInfo{
			ID: w.id, Name: w.name, Remote: w.remote, State: w.state,
			Parallel: w.parallel, Done: w.done, Discarded: w.discarded,
			Fails: w.fails, InFlight: len(w.leases), Evaluating: w.evaluating,
			LastBeat: w.lastBeat,
		}
		if w.done > 0 {
			wi.MeanUnitMS = float64(w.wallSum) / float64(w.done) / float64(time.Millisecond)
			if span := w.lastDone.Sub(w.firstLease); span > 0 {
				wi.UnitsPerSec = float64(w.done) / span.Seconds()
			}
		}
		// With several leases held, show the lexicographically first so
		// the snapshot is stable between calls.
		min := ""
		for k, sh := range w.leases {
			if min == "" || k < min {
				min = k
				wi.Job = sh.job.id
				wi.Unit = sh.unit.Label
			}
		}
		out = append(out, wi)
	}
	return out
}

// Alive counts workers that can still take shards (not dead, not
// quarantined).
func (p *Pool) Alive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.assignableLocked()
}

// Fallbacks counts units that degraded to in-process evaluation
// because no assignable worker remained.
func (p *Pool) Fallbacks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fallbacks
}

// QueueLen is the number of shards awaiting a lease.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close shuts the pool: queued shards fail, workers exit after their
// current evaluation.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, sh := range p.queue {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: pool closed")}
	}
	p.queue = nil
	p.wakeLocked()
}

// DrainRemote stops granting new leases to remote workers (graceful
// shutdown: in-flight remote units finish and deliver; nothing new
// ships over the wire). In-process workers keep claiming.
func (p *Pool) DrainRemote() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.draining = true
}

// AwaitRemoteIdle blocks until no shard is leased to a remote worker,
// or the timeout passes; it returns how many remote leases remain.
func (p *Pool) AwaitRemoteIdle(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := p.remoteLeased()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *Pool) remoteLeased() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.remote {
			n += len(w.leases)
		}
	}
	return n
}

// ReleaseRemoteLeases settles every shard still leased to a remote
// worker as interrupted (the piece stays unsettled and is never
// journaled; the requeued job re-evaluates it). Only safe once the
// owning searches are cancelled — an interrupted verdict delivered to
// a live search would silently drop the piece. The abandoned worker's
// eventual report no longer matches any held lease and is discarded.
func (p *Pool) ReleaseRemoteLeases() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if !w.remote || len(w.leases) == 0 {
			continue
		}
		for k, sh := range w.leases {
			delete(w.leases, k)
			if sh.delivered {
				continue
			}
			sh.delivered = true
			sh.owner = ""
			sh.done <- shardResult{v: search.Verdict{Interrupted: true}}
		}
		if w.state == WorkerBusy {
			w.state = WorkerIdle
		}
	}
	p.wakeLocked()
}

// InterruptQueued settles every queued shard — and every unit enqueued
// from now on — as interrupted. Same safety contract as
// ReleaseRemoteLeases: call only after cancelling the owning searches.
func (p *Pool) InterruptQueued() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interrupting = true
	for _, sh := range p.queue {
		if !sh.delivered {
			sh.delivered = true
			sh.done <- shardResult{v: search.Verdict{Interrupted: true}}
		}
	}
	p.queue = nil
	p.wakeLocked()
}

// JobHandle is a registered job's face to the pool: it implements
// search.UnitEvaluator, so a search hands units straight to the fleet
// via Options.Units.
type JobHandle struct {
	pool *Pool
	id   string
	ev   Evaluator
}

// Register binds a job ID to the evaluator its units run on (one
// shared UnitRunner per job — engines are concurrency-safe). The
// evaluator doubles as the in-process fallback when Options.Fallback
// is set and no assignable worker remains.
func (p *Pool) Register(jobID string, ev Evaluator) *JobHandle {
	return &JobHandle{pool: p, id: jobID, ev: ev}
}

// EvaluateUnit enqueues the unit as a shard and blocks until a worker
// delivers its verdict (or the pool exhausts the reassignment budget).
// With Options.Fallback, a unit that finds no assignable worker runs
// in-process instead of erroring.
func (j *JobHandle) EvaluateUnit(u search.EvalUnit) (search.Verdict, error) {
	sh := &shard{job: j, unit: u, site: siteKey(j.id, u), done: make(chan shardResult, 1)}
	p := j.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: pool closed")
	}
	if p.interrupting {
		p.mu.Unlock()
		return search.Verdict{Interrupted: true}, nil
	}
	if p.assignableLocked() == 0 {
		if p.opts.Fallback {
			p.fallbacks++
			p.mu.Unlock()
			return j.ev.Evaluate(u)
		}
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: no live workers")
	}
	sh.queued = p.now()
	p.queue = append(p.queue, sh)
	p.wakeLocked()
	p.mu.Unlock()
	r := <-sh.done
	return r.v, r.err
}

// run is a worker's claim-evaluate-deliver loop.
func (p *Pool) run(w *worker) {
	for {
		sh, epoch, ok := p.claim(w)
		if !ok {
			return
		}
		v, err := sh.job.ev.Evaluate(sh.unit)
		p.deliver(w, sh, epoch, v, err)
		p.mu.Lock()
		dead := w.dead
		p.mu.Unlock()
		if dead {
			return
		}
	}
}

// claim blocks until a shard is available, leasing it to w.
func (p *Pool) claim(w *worker) (*shard, int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed || w.dead {
			return nil, 0, false
		}
		if w.state != WorkerQuarantined {
			if sh := p.takeLocked(w); sh != nil {
				p.assignLocked(w, sh)
				return sh, sh.epoch, true
			}
		}
		p.cond.Wait()
	}
}

// takeLocked removes and returns the next shard for w, preferring fork
// affinity inside a bounded window: first a shard whose site w already
// owns, then a shard whose site has no live owner (w becomes its
// owner), and otherwise the queue head — which can be bypassed at most
// starveSkips times before it is taken unconditionally. Returns nil
// when the queue is empty. Callers hold p.mu.
func (p *Pool) takeLocked(w *worker) *shard {
	if len(p.queue) == 0 {
		return nil
	}
	head := p.queue[0]
	pick := 0
	if head.skips < starveSkips {
		limit := len(p.queue)
		if limit > affinityWindow {
			limit = affinityWindow
		}
		fresh := -1
		mine := -1
		for i := 0; i < limit; i++ {
			owner, owned := p.aff[p.queue[i].site]
			if owned && owner == w.id {
				mine = i
				break
			}
			if fresh < 0 && (!owned || !p.ownerAssignableLocked(owner)) {
				fresh = i
			}
		}
		switch {
		case mine >= 0:
			pick = mine
		case fresh > 0:
			// Bypass the head for a fresh site only when the head belongs
			// to another live worker that will come back for it; an
			// unowned head is taken directly (fresh == 0 lands here too).
			if owner, owned := p.aff[head.site]; owned && owner != w.id && p.ownerAssignableLocked(owner) {
				pick = fresh
			}
		case fresh < 0:
			// Everything in the window belongs to other workers. Taking
			// the head now would strand its donor snapshot — the thief
			// re-runs the donor the owner already paid for — so while the
			// unit is inside its grace and the owner is positioned to
			// collect it (a parked claim, or an idle in-process loop on
			// the same broadcast), decline and let the owner have it. The
			// grace is a hard bound: past it the unit goes to whoever
			// asks, because a stalled owner must never stall the queue.
			if owner, owned := p.aff[head.site]; owned && owner != w.id &&
				p.ownerWillClaimLocked(owner) && p.now().Sub(head.queued) < affinityGrace {
				return nil
			}
		}
	}
	sh := p.queue[pick]
	if pick > 0 {
		head.skips++
		p.queue = append(p.queue[:pick], p.queue[pick+1:]...)
	} else {
		p.queue = p.queue[1:]
	}
	return sh
}

// ownerWillClaimLocked reports whether the affinity owner is in a
// position to collect more queued work promptly: a remote worker with
// spare lease capacity keeps a claim parked at the daemon, and an
// in-process worker between units claims on the next broadcast. A
// saturated owner cannot — waiting on it would idle the queue, so a
// decline is only worth it when this returns true. Callers hold p.mu.
func (p *Pool) ownerWillClaimLocked(id string) bool {
	w, ok := p.workers[id]
	if !ok || !p.ownerAssignableLocked(id) {
		return false
	}
	if w.remote {
		return len(w.leases) < leaseCapLocked(w)
	}
	return len(w.leases) == 0
}

// ownerAssignableLocked reports whether the worker behind an affinity
// entry can still be assigned shards; callers hold p.mu.
func (p *Pool) ownerAssignableLocked(id string) bool {
	w, ok := p.workers[id]
	if !ok || w.dead || w.state == WorkerQuarantined {
		return false
	}
	if w.remote && p.draining {
		return false
	}
	return true
}

// assignLocked leases a shard (already removed from the queue) to w
// and records fork-site ownership; callers hold p.mu.
func (p *Pool) assignLocked(w *worker, sh *shard) {
	sh.owner = w.id
	sh.epoch++
	sh.skips = 0
	w.leases[leaseKey(sh.job.id, sh.unit.Key)] = sh
	w.state = WorkerBusy
	if w.firstLease.IsZero() {
		w.firstLease = p.now()
	}
	if len(p.aff) >= affinityCap {
		p.aff = make(map[string]string)
	}
	if cur, ok := p.aff[sh.site]; !ok || !p.ownerAssignableLocked(cur) {
		p.aff[sh.site] = w.id
	}
}

// deliver hands a verdict back — accepted only from the shard's current
// lease holder in the epoch it claimed; anything else (the worker died
// and the shard was reassigned) is discarded.
func (p *Pool) deliver(w *worker, sh *shard, epoch int, v search.Verdict, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.delivered || sh.owner != w.id || sh.epoch != epoch || w.dead {
		w.discarded++
		return
	}
	p.deliverLocked(w, sh, v, err)
}

// deliverLocked completes an accepted delivery; callers hold p.mu and
// have verified the lease.
func (p *Pool) deliverLocked(w *worker, sh *shard, v search.Verdict, err error) {
	sh.delivered = true
	sh.owner = ""
	delete(w.leases, leaseKey(sh.job.id, sh.unit.Key))
	w.done++
	w.fails = 0
	w.wallSum += v.Wall
	w.lastDone = p.now()
	if w.state == WorkerBusy && len(w.leases) == 0 {
		w.state = WorkerIdle
	}
	sh.done <- shardResult{v: v, err: err}
	p.wakeLocked()
}

// breakLeaseLocked detaches a shard from its holder without settling
// it; callers hold p.mu and requeue or fail the shard themselves.
func (p *Pool) breakLeaseLocked(w *worker, sh *shard) {
	delete(w.leases, leaseKey(sh.job.id, sh.unit.Key))
	if w.state == WorkerBusy && len(w.leases) == 0 {
		w.state = WorkerIdle
	}
}

// beat refreshes the worker's heartbeat until it dies.
func (p *Pool) beat(w *worker) {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stopBeat:
			return
		case <-t.C:
			p.mu.Lock()
			if w.dead || p.closed {
				p.mu.Unlock()
				return
			}
			w.lastBeat = p.now()
			p.mu.Unlock()
		}
	}
}

// monitor scans for workers whose heartbeat went silent (an in-process
// worker only stops beating when killed; remote workers stop by
// crashing or partitioning) and reassigns their shards.
func (p *Pool) monitor() {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for range t.C {
		if !p.sweep() {
			return
		}
	}
}

// sweep runs one monitor pass: every worker silent past Expiry on the
// pool's clock is declared dead. Returns false once the pool is
// closed. Exposed to in-package tests so a fake clock can drive expiry
// deterministically.
func (p *Pool) sweep() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	now := p.now()
	for _, w := range p.workers {
		if !w.dead && now.Sub(w.lastBeat) > p.opts.Expiry {
			p.markDeadLocked(w)
		}
	}
	return true
}

// markDeadLocked retires a worker, breaks all its leases and clears
// its fork-site ownerships; callers hold p.mu.
func (p *Pool) markDeadLocked(w *worker) {
	if w.dead {
		return
	}
	w.dead = true
	w.state = WorkerDead
	if w.stopBeat != nil {
		select {
		case <-w.stopBeat:
		default:
			close(w.stopBeat)
		}
	}
	p.disownSitesLocked(w)
	for k, sh := range w.leases {
		delete(w.leases, k)
		if sh.owner == w.id {
			p.requeueLocked(sh)
		}
	}
	p.sweepUnassignableLocked()
	p.wakeLocked()
}

// disownSitesLocked removes every fork-site ownership held by w, so
// its sites route fresh; callers hold p.mu.
func (p *Pool) disownSitesLocked(w *worker) {
	for site, owner := range p.aff {
		if owner == w.id {
			delete(p.aff, site)
		}
	}
}

// sweepUnassignableLocked fails (or falls back) every queued shard once
// no worker can take a lease — they would otherwise wait forever.
// Callers hold p.mu.
func (p *Pool) sweepUnassignableLocked() {
	if p.assignableLocked() > 0 || len(p.queue) == 0 {
		return
	}
	queue := p.queue
	p.queue = nil
	for _, sh := range queue {
		if sh.delivered {
			continue
		}
		if p.opts.Fallback {
			p.fallbacks++
			go p.fallback(sh)
			continue
		}
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
	}
}

// fallback evaluates a shard in-process on the job's own evaluator;
// runs outside p.mu.
func (p *Pool) fallback(sh *shard) {
	v, err := sh.job.ev.Evaluate(sh.unit)
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.delivered {
		return
	}
	sh.delivered = true
	sh.done <- shardResult{v: v, err: err}
	p.wakeLocked()
}

// requeueLocked puts a broken-lease shard back at the head of the
// queue, or fails it when its reassignment budget is spent or no worker
// is left to take it (falling back in-process when enabled).
func (p *Pool) requeueLocked(sh *shard) {
	sh.owner = ""
	sh.reassigns++
	if sh.delivered {
		return
	}
	if sh.reassigns > p.opts.MaxReassign {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: unit %q reassigned %d times, giving up", sh.unit.Label, sh.reassigns)}
		return
	}
	if p.assignableLocked() == 0 {
		if p.opts.Fallback {
			p.fallbacks++
			go p.fallback(sh)
			return
		}
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
		return
	}
	sh.queued = p.now()
	p.queue = append([]*shard{sh}, p.queue...)
	p.wakeLocked()
}

// assignableLocked counts workers a shard could be leased to; callers
// hold p.mu.
func (p *Pool) assignableLocked() int {
	n := 0
	for _, w := range p.workers {
		if w.dead || w.state == WorkerQuarantined {
			continue
		}
		if w.remote && p.draining {
			continue
		}
		n++
	}
	return n
}

// stopBeats silences a worker's heartbeat without marking it dead — the
// monitor must then detect the silence. Test hook for the expiry path.
func (p *Pool) stopBeats(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.workers[id]; ok && w.stopBeat != nil {
		select {
		case <-w.stopBeat:
		default:
			close(w.stopBeat)
		}
	}
}
