// Package fleet is the sharded-evaluation scheduler of the fpmixd
// service: a registry of workers and a piece-granular shard queue with
// lease/heartbeat semantics. The search coordinator stays in one
// process (internal/search keeps its deterministic queue trajectory)
// and routes every evaluation unit here through the search.UnitEvaluator
// seam; the pool leases each unit to a worker, requeues it when the
// worker dies — detected by a stopped heartbeat, or reported by Kill —
// and accepts a result only from the unit's current lease holder, so a
// late verdict from a dead worker can never race a reassigned one.
// Because unit verdicts are deterministic functions of their address
// sets, the composed final configuration is byte-identical to a serial
// run no matter how units are sharded, reassigned or replayed.
//
// Workers come in two flavors. In-process workers (Start/AddWorker) are
// goroutines evaluating on the job's registered evaluator. Remote
// workers (AddRemote, driven over the wire by internal/remote and
// cmd/fpmixworker) claim, evaluate and report through explicit RPCs in
// their own address space — a crashed worker process can never take the
// pool down; its stopped heartbeat breaks the lease exactly like an
// in-process death. All lease-expiry decisions use the pool's own clock
// only: remote timestamps never enter them, so arbitrarily skewed
// worker clocks cannot expire or extend a lease.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"fpmix/internal/search"
)

// Evaluator executes one evaluation unit to a verdict. The local
// implementation is *search.UnitRunner; tests substitute fakes.
type Evaluator interface {
	Evaluate(u search.EvalUnit) (search.Verdict, error)
}

// Options shape a pool's failure detection.
type Options struct {
	// Heartbeat is the interval at which live workers refresh their
	// lease (default 500ms); Expiry is the silence after which the
	// monitor declares a worker dead and reassigns its shard (default
	// 8×Heartbeat).
	Heartbeat time.Duration
	Expiry    time.Duration
	// MaxReassign bounds how many times one shard may be reassigned
	// before the pool gives up and fails it (default 3) — a shard that
	// kills every worker it touches must not take the fleet down with
	// it.
	MaxReassign int
	// QuarantineAfter is the number of consecutive worker-reported
	// evaluation failures after which a remote worker is quarantined:
	// it keeps heartbeating but is never assigned another shard until
	// an operator kills or restarts it (default 3). A successful report
	// resets the count.
	QuarantineAfter int
	// Fallback enables graceful degradation: when no assignable worker
	// remains (all dead or quarantined), units evaluate in-process on
	// the job's own registered evaluator instead of failing — jobs slow
	// down but never stall. Off by default so pure-fleet tests observe
	// the no-live-workers error paths.
	Fallback bool
	// Clock overrides the time source for heartbeat/lease bookkeeping
	// (tests drive expiry deterministically with a fake clock). Nil
	// means time.Now. Lease expiry compares only timestamps taken from
	// this clock — worker-side clocks are never consulted, so clock
	// skew between daemon and workers cannot break or extend a lease.
	Clock func() time.Time
}

// WorkerState is a worker's position in its lifecycle.
type WorkerState string

const (
	WorkerIdle WorkerState = "idle"
	WorkerBusy WorkerState = "busy"
	WorkerDead WorkerState = "dead"
	// WorkerQuarantined: too many consecutive failures; the worker is
	// drained — it keeps heartbeating and stays visible in the
	// registry, but no shard is ever assigned to it again.
	WorkerQuarantined WorkerState = "quarantined"
)

// WorkerInfo is a registry snapshot of one worker.
type WorkerInfo struct {
	ID        string      `json:"id"`
	Name      string      `json:"name,omitempty"` // remote self-reported name
	Remote    bool        `json:"remote,omitempty"`
	State     WorkerState `json:"state"`
	Done      int         `json:"done"`            // units completed and accepted
	Discarded int         `json:"discarded"`       // results rejected (lease lost or duplicated)
	Fails     int         `json:"fails,omitempty"` // consecutive reported failures
	Job       string      `json:"job,omitempty"`
	Unit      string      `json:"unit,omitempty"`
	LastBeat  time.Time   `json:"last_beat"`
}

// Pool is the worker registry plus shard scheduler.
type Pool struct {
	opts Options

	mu           sync.Mutex
	cond         *sync.Cond
	workers      map[string]*worker
	queue        []*shard // FIFO of unleased shards
	wseq, rseq   int
	fallbacks    int
	draining     bool // no new remote leases (graceful shutdown)
	interrupting bool // every queued or future unit settles interrupted
	closed       bool
}

type worker struct {
	id        string
	name      string
	remote    bool
	state     WorkerState
	dead      bool
	done      int
	discarded int
	fails     int
	current   *shard
	lastBeat  time.Time
	stopBeat  chan struct{} // in-process only
}

// shard is one leased evaluation unit.
type shard struct {
	job  *JobHandle
	unit search.EvalUnit

	owner     string // worker holding the lease ("" = queued)
	epoch     int    // bumped at every assignment
	reassigns int
	delivered bool
	done      chan shardResult // buffered 1
}

type shardResult struct {
	v   search.Verdict
	err error
}

// New builds an empty pool; add workers with Start or AddWorker.
func New(opts Options) *Pool {
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Expiry <= 0 {
		// Generous by design: beat goroutines share the scheduler with
		// CPU-saturating evaluation runs, so a tight expiry would declare
		// healthy-but-starved workers dead under full load.
		opts.Expiry = 8 * opts.Heartbeat
	}
	if opts.MaxReassign <= 0 {
		opts.MaxReassign = 3
	}
	if opts.QuarantineAfter <= 0 {
		opts.QuarantineAfter = 3
	}
	p := &Pool{opts: opts, workers: make(map[string]*worker)}
	p.cond = sync.NewCond(&p.mu)
	go p.monitor()
	return p
}

// now is the pool's only time source for heartbeat/lease bookkeeping.
func (p *Pool) now() time.Time {
	if p.opts.Clock != nil {
		return p.opts.Clock()
	}
	return time.Now()
}

// Start adds n in-process workers.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.AddWorker()
	}
}

// AddWorker registers one in-process worker and returns its ID.
func (p *Pool) AddWorker() string {
	p.mu.Lock()
	p.wseq++
	w := &worker{
		id:       fmt.Sprintf("w%d", p.wseq),
		state:    WorkerIdle,
		lastBeat: p.now(),
		stopBeat: make(chan struct{}),
	}
	p.workers[w.id] = w
	p.mu.Unlock()
	go p.beat(w)
	go p.run(w)
	return w.id
}

// Kill reports a worker dead: its heartbeat stops, its lease (if any)
// is broken and the shard requeued for another worker, and any verdict
// the doomed evaluation still produces is discarded on delivery.
func (p *Pool) Kill(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("fleet: no worker %s", id)
	}
	p.markDeadLocked(w)
	return nil
}

// Workers snapshots the registry, in ID-creation order is not
// guaranteed — callers sort.
func (p *Pool) Workers() []WorkerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, w := range p.workers {
		wi := WorkerInfo{
			ID: w.id, Name: w.name, Remote: w.remote, State: w.state,
			Done: w.done, Discarded: w.discarded, Fails: w.fails,
			LastBeat: w.lastBeat,
		}
		if w.current != nil {
			wi.Job = w.current.job.id
			wi.Unit = w.current.unit.Label
		}
		out = append(out, wi)
	}
	return out
}

// Alive counts workers that can still take shards (not dead, not
// quarantined).
func (p *Pool) Alive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.assignableLocked()
}

// Fallbacks counts units that degraded to in-process evaluation
// because no assignable worker remained.
func (p *Pool) Fallbacks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fallbacks
}

// QueueLen is the number of shards awaiting a lease.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close shuts the pool: queued shards fail, workers exit after their
// current evaluation.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, sh := range p.queue {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: pool closed")}
	}
	p.queue = nil
	p.cond.Broadcast()
}

// DrainRemote stops granting new leases to remote workers (graceful
// shutdown: in-flight remote units finish and deliver; nothing new
// ships over the wire). In-process workers keep claiming.
func (p *Pool) DrainRemote() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.draining = true
}

// AwaitRemoteIdle blocks until no shard is leased to a remote worker,
// or the timeout passes; it returns how many remote leases remain.
func (p *Pool) AwaitRemoteIdle(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		n := p.remoteLeased()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (p *Pool) remoteLeased() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.remote && w.current != nil {
			n++
		}
	}
	return n
}

// ReleaseRemoteLeases settles every shard still leased to a remote
// worker as interrupted (the piece stays unsettled and is never
// journaled; the requeued job re-evaluates it). Only safe once the
// owning searches are cancelled — an interrupted verdict delivered to
// a live search would silently drop the piece. The abandoned worker's
// eventual report no longer matches the shard and is discarded.
func (p *Pool) ReleaseRemoteLeases() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		sh := w.current
		if !w.remote || sh == nil || sh.delivered {
			continue
		}
		sh.delivered = true
		sh.owner = ""
		w.current = nil
		if w.state == WorkerBusy {
			w.state = WorkerIdle
		}
		sh.done <- shardResult{v: search.Verdict{Interrupted: true}}
	}
	p.cond.Broadcast()
}

// InterruptQueued settles every queued shard — and every unit enqueued
// from now on — as interrupted. Same safety contract as
// ReleaseRemoteLeases: call only after cancelling the owning searches.
func (p *Pool) InterruptQueued() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interrupting = true
	for _, sh := range p.queue {
		if !sh.delivered {
			sh.delivered = true
			sh.done <- shardResult{v: search.Verdict{Interrupted: true}}
		}
	}
	p.queue = nil
	p.cond.Broadcast()
}

// JobHandle is a registered job's face to the pool: it implements
// search.UnitEvaluator, so a search hands units straight to the fleet
// via Options.Units.
type JobHandle struct {
	pool *Pool
	id   string
	ev   Evaluator
}

// Register binds a job ID to the evaluator its units run on (one
// shared UnitRunner per job — engines are concurrency-safe). The
// evaluator doubles as the in-process fallback when Options.Fallback
// is set and no assignable worker remains.
func (p *Pool) Register(jobID string, ev Evaluator) *JobHandle {
	return &JobHandle{pool: p, id: jobID, ev: ev}
}

// EvaluateUnit enqueues the unit as a shard and blocks until a worker
// delivers its verdict (or the pool exhausts the reassignment budget).
// With Options.Fallback, a unit that finds no assignable worker runs
// in-process instead of erroring.
func (j *JobHandle) EvaluateUnit(u search.EvalUnit) (search.Verdict, error) {
	sh := &shard{job: j, unit: u, done: make(chan shardResult, 1)}
	p := j.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: pool closed")
	}
	if p.interrupting {
		p.mu.Unlock()
		return search.Verdict{Interrupted: true}, nil
	}
	if p.assignableLocked() == 0 {
		if p.opts.Fallback {
			p.fallbacks++
			p.mu.Unlock()
			return j.ev.Evaluate(u)
		}
		p.mu.Unlock()
		return search.Verdict{}, fmt.Errorf("fleet: no live workers")
	}
	p.queue = append(p.queue, sh)
	p.cond.Broadcast()
	p.mu.Unlock()
	r := <-sh.done
	return r.v, r.err
}

// run is a worker's claim-evaluate-deliver loop.
func (p *Pool) run(w *worker) {
	for {
		sh, epoch, ok := p.claim(w)
		if !ok {
			return
		}
		v, err := sh.job.ev.Evaluate(sh.unit)
		p.deliver(w, sh, epoch, v, err)
		p.mu.Lock()
		dead := w.dead
		p.mu.Unlock()
		if dead {
			return
		}
	}
}

// claim blocks until a shard is available, leasing it to w.
func (p *Pool) claim(w *worker) (*shard, int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed || w.dead {
			return nil, 0, false
		}
		if len(p.queue) > 0 && w.state != WorkerQuarantined {
			sh := p.queue[0]
			p.queue = p.queue[1:]
			sh.owner = w.id
			sh.epoch++
			w.current = sh
			w.state = WorkerBusy
			return sh, sh.epoch, true
		}
		p.cond.Wait()
	}
}

// deliver hands a verdict back — accepted only from the shard's current
// lease holder in the epoch it claimed; anything else (the worker died
// and the shard was reassigned) is discarded.
func (p *Pool) deliver(w *worker, sh *shard, epoch int, v search.Verdict, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.delivered || sh.owner != w.id || sh.epoch != epoch || w.dead {
		w.discarded++
		return
	}
	p.deliverLocked(w, sh, v, err)
}

// deliverLocked completes an accepted delivery; callers hold p.mu and
// have verified the lease.
func (p *Pool) deliverLocked(w *worker, sh *shard, v search.Verdict, err error) {
	sh.delivered = true
	sh.owner = ""
	w.current = nil
	w.done++
	w.fails = 0
	if w.state == WorkerBusy {
		w.state = WorkerIdle
	}
	sh.done <- shardResult{v: v, err: err}
	p.cond.Broadcast()
}

// beat refreshes the worker's heartbeat until it dies.
func (p *Pool) beat(w *worker) {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stopBeat:
			return
		case <-t.C:
			p.mu.Lock()
			if w.dead || p.closed {
				p.mu.Unlock()
				return
			}
			w.lastBeat = p.now()
			p.mu.Unlock()
		}
	}
}

// monitor scans for workers whose heartbeat went silent (an in-process
// worker only stops beating when killed; remote workers stop by
// crashing or partitioning) and reassigns their shards.
func (p *Pool) monitor() {
	t := time.NewTicker(p.opts.Heartbeat)
	defer t.Stop()
	for range t.C {
		if !p.sweep() {
			return
		}
	}
}

// sweep runs one monitor pass: every worker silent past Expiry on the
// pool's clock is declared dead. Returns false once the pool is
// closed. Exposed to in-package tests so a fake clock can drive expiry
// deterministically.
func (p *Pool) sweep() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	now := p.now()
	for _, w := range p.workers {
		if !w.dead && now.Sub(w.lastBeat) > p.opts.Expiry {
			p.markDeadLocked(w)
		}
	}
	return true
}

// markDeadLocked retires a worker and breaks its lease; callers hold
// p.mu.
func (p *Pool) markDeadLocked(w *worker) {
	if w.dead {
		return
	}
	w.dead = true
	w.state = WorkerDead
	if w.stopBeat != nil {
		select {
		case <-w.stopBeat:
		default:
			close(w.stopBeat)
		}
	}
	if sh := w.current; sh != nil && sh.owner == w.id {
		w.current = nil
		p.requeueLocked(sh)
	}
	p.sweepUnassignableLocked()
	p.cond.Broadcast()
}

// sweepUnassignableLocked fails (or falls back) every queued shard once
// no worker can take a lease — they would otherwise wait forever.
// Callers hold p.mu.
func (p *Pool) sweepUnassignableLocked() {
	if p.assignableLocked() > 0 || len(p.queue) == 0 {
		return
	}
	queue := p.queue
	p.queue = nil
	for _, sh := range queue {
		if sh.delivered {
			continue
		}
		if p.opts.Fallback {
			p.fallbacks++
			go p.fallback(sh)
			continue
		}
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
	}
}

// fallback evaluates a shard in-process on the job's own evaluator;
// runs outside p.mu.
func (p *Pool) fallback(sh *shard) {
	v, err := sh.job.ev.Evaluate(sh.unit)
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.delivered {
		return
	}
	sh.delivered = true
	sh.done <- shardResult{v: v, err: err}
	p.cond.Broadcast()
}

// requeueLocked puts a broken-lease shard back at the head of the
// queue, or fails it when its reassignment budget is spent or no worker
// is left to take it (falling back in-process when enabled).
func (p *Pool) requeueLocked(sh *shard) {
	sh.owner = ""
	sh.reassigns++
	if sh.delivered {
		return
	}
	if sh.reassigns > p.opts.MaxReassign {
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: unit %q reassigned %d times, giving up", sh.unit.Label, sh.reassigns)}
		return
	}
	if p.assignableLocked() == 0 {
		if p.opts.Fallback {
			p.fallbacks++
			go p.fallback(sh)
			return
		}
		sh.delivered = true
		sh.done <- shardResult{err: fmt.Errorf("fleet: no live workers left for unit %q", sh.unit.Label)}
		return
	}
	p.queue = append([]*shard{sh}, p.queue...)
	p.cond.Broadcast()
}

// assignableLocked counts workers a shard could be leased to; callers
// hold p.mu.
func (p *Pool) assignableLocked() int {
	n := 0
	for _, w := range p.workers {
		if w.dead || w.state == WorkerQuarantined {
			continue
		}
		if w.remote && p.draining {
			continue
		}
		n++
	}
	return n
}

// stopBeats silences a worker's heartbeat without marking it dead — the
// monitor must then detect the silence. Test hook for the expiry path.
func (p *Pool) stopBeats(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.workers[id]; ok && w.stopBeat != nil {
		select {
		case <-w.stopBeat:
		default:
			close(w.stopBeat)
		}
	}
}
