package fleet

import (
	"fmt"
	"testing"
	"time"

	"fpmix/internal/search"
)

// evalSiteAsync enqueues a unit carrying an explicit fork-site hint and
// returns its result channel.
func evalSiteAsync(j *JobHandle, key string, site uint64) chan shardResult {
	out := make(chan shardResult, 1)
	go func() {
		v, err := j.EvaluateUnit(search.EvalUnit{Key: key, Label: key, ForkSite: site})
		out <- shardResult{v: v, err: err}
	}()
	return out
}

// waitQueue blocks until at least n shards are queued.
func waitQueue(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueLen() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d shards", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAffinityRoutesSiblings: units sharing a fork site route to the
// worker that owns the site's donor snapshot — a second worker claiming
// concurrently bypasses the owned queue head for a fresh site, and the
// owner picks up its sibling even from behind the head.
func TestAffinityRoutesSiblings(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	a, _, _ := p.AddRemote("a", 1)
	b, _, _ := p.AddRemote("b", 1)
	j := p.Register("j0001", &fakeEval{})

	// a evaluates the first site-1 unit and becomes site 1's owner.
	r1 := evalSiteAsync(j, "s1a", 1)
	la := claimSoon(t, p, a)
	if la.Unit.Key != "s1a" {
		t.Fatalf("a claimed %q, want s1a", la.Unit.Key)
	}
	if acc, err := p.Report(a, la.Job, la.Unit.Key, la.Epoch, search.Verdict{Pass: true}, ""); err != nil || !acc {
		t.Fatalf("report: accepted=%v err=%v", acc, err)
	}
	if r := <-r1; r.err != nil {
		t.Fatal(r.err)
	}

	// Head: a sibling of a's site; behind it: a unit of a fresh site.
	r2 := evalSiteAsync(j, "s1b", 1)
	waitQueue(t, p, 1)
	r3 := evalSiteAsync(j, "s2a", 2)
	waitQueue(t, p, 2)

	// b must not take a's sibling off the head — it routes to the fresh
	// site and becomes its owner.
	lb := claimSoon(t, p, b)
	if lb.Unit.Key != "s2a" {
		t.Fatalf("b claimed %q, want the fresh-site unit s2a", lb.Unit.Key)
	}
	// a reaches past the (bypassed) head position for its own site.
	la2 := claimSoon(t, p, a)
	if la2.Unit.Key != "s1b" {
		t.Fatalf("a claimed %q, want its sibling s1b", la2.Unit.Key)
	}
	p.Report(a, la2.Job, la2.Unit.Key, la2.Epoch, search.Verdict{Pass: true}, "")
	p.Report(b, lb.Job, lb.Unit.Key, lb.Epoch, search.Verdict{Pass: true}, "")
	if r := <-r2; r.err != nil {
		t.Fatal(r.err)
	}
	if r := <-r3; r.err != nil {
		t.Fatal(r.err)
	}
}

// TestAffinityStarvationFallback: the queue head can be bypassed by
// affinity picks at most starveSkips times; after that the next claim
// takes it unconditionally, even though its site belongs to another
// live worker.
func TestAffinityStarvationFallback(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	a, _, _ := p.AddRemote("a", 1)
	b, _, _ := p.AddRemote("b", 1)
	j := p.Register("j0001", &fakeEval{})

	// a owns site 1.
	r0 := evalSiteAsync(j, "seed", 1)
	la := claimSoon(t, p, a)
	p.Report(a, la.Job, la.Unit.Key, la.Epoch, search.Verdict{Pass: true}, "")
	if r := <-r0; r.err != nil {
		t.Fatal(r.err)
	}

	// Head: another site-1 unit (a never claims again). Behind it:
	// starveSkips+1 units of distinct fresh sites tempting b away.
	var results []chan shardResult
	results = append(results, evalSiteAsync(j, "head", 1))
	waitQueue(t, p, 1)
	for i := 0; i < starveSkips+1; i++ {
		results = append(results, evalSiteAsync(j, fmt.Sprintf("fresh%d", i), uint64(i+2)))
		waitQueue(t, p, i+2)
	}

	// b's first starveSkips claims bypass the owned head for fresh
	// sites; the claim after that must take the head regardless.
	for i := 0; i < starveSkips; i++ {
		lb := claimSoon(t, p, b)
		if lb.Unit.Key == "head" {
			t.Fatalf("head taken after only %d bypasses, want %d", i, starveSkips)
		}
		p.Report(b, lb.Job, lb.Unit.Key, lb.Epoch, search.Verdict{Pass: true}, "")
	}
	lb := claimSoon(t, p, b)
	if lb.Unit.Key != "head" {
		t.Fatalf("claim after %d bypasses got %q, want the starving head", starveSkips, lb.Unit.Key)
	}
	p.Report(b, lb.Job, lb.Unit.Key, lb.Epoch, search.Verdict{Pass: true}, "")
	// Settle the remaining fresh unit and drain every channel.
	last := claimSoon(t, p, b)
	p.Report(b, last.Job, last.Unit.Key, last.Epoch, search.Verdict{Pass: true}, "")
	for _, res := range results {
		if r := <-res; r.err != nil {
			t.Fatal(r.err)
		}
	}
}

// TestAffinityGraceDecline: when every unit in the window belongs to
// another live worker positioned to collect it, a claim declines the
// head for the length of the affinity grace — the owner takes its
// sibling without anyone re-running the donor snapshot it already paid
// for — but only for the grace: once the pool clock passes it, the
// unit goes to whoever asks.
func TestAffinityGraceDecline(t *testing.T) {
	fc := newFakeClock()
	p := New(quietOpts(fc))
	defer p.Close()
	a, _, _ := p.AddRemote("a", 1)
	b, _, _ := p.AddRemote("b", 1)
	j := p.Register("j0001", &fakeEval{})

	// a owns site 1.
	r0 := evalSiteAsync(j, "seed", 1)
	la := claimSoon(t, p, a)
	p.Report(a, la.Job, la.Unit.Key, la.Epoch, search.Verdict{Pass: true}, "")
	if r := <-r0; r.err != nil {
		t.Fatal(r.err)
	}

	// The only queued unit is a's sibling, inside its grace; a holds no
	// leases, so it is positioned to collect it — b comes away empty.
	r1 := evalSiteAsync(j, "sib", 1)
	waitQueue(t, p, 1)
	if leases, _, err := p.Claim(b, 0, 1); err != nil || len(leases) != 0 {
		t.Fatalf("claim inside the grace: leases=%v err=%v, want none", leases, err)
	}
	// Past the grace the decline must not stall the queue: b takes it.
	fc.Advance(affinityGrace)
	lb := claimSoon(t, p, b)
	if lb.Unit.Key != "sib" {
		t.Fatalf("b claimed %q after the grace, want sib", lb.Unit.Key)
	}
	p.Report(b, lb.Job, lb.Unit.Key, lb.Epoch, search.Verdict{Pass: true}, "")
	if r := <-r1; r.err != nil {
		t.Fatal(r.err)
	}
}

// TestAffinityQuarantineReroutes: quarantining a worker clears its
// fork-site ownerships — its requeued unit routes to a healthy worker,
// which takes over the site.
func TestAffinityQuarantineReroutes(t *testing.T) {
	p := New(Options{QuarantineAfter: 1})
	defer p.Close()
	bad, _, _ := p.AddRemote("bad", 1)
	good, _, _ := p.AddRemote("good", 1)
	j := p.Register("j0001", &fakeEval{})

	r1 := evalSiteAsync(j, "u1", 5)
	lb := claimSoon(t, p, bad) // bad owns site 5 now
	if acc, err := p.Report(bad, lb.Job, lb.Unit.Key, lb.Epoch, search.Verdict{}, "oom"); err != nil || !acc {
		t.Fatalf("failure report: accepted=%v err=%v", acc, err)
	}
	for _, w := range p.Workers() {
		if w.ID == bad && w.State != WorkerQuarantined {
			t.Fatalf("bad worker state %s, want quarantined", w.State)
		}
	}
	// The requeued unit must reach the healthy worker even though its
	// site belonged to the quarantined one — and ownership moves.
	lg := claimSoon(t, p, good)
	if lg.Unit.Key != "u1" {
		t.Fatalf("good claimed %q, want the rerouted u1", lg.Unit.Key)
	}
	p.mu.Lock()
	owner := p.aff[siteKey("j0001", lg.Unit)]
	p.mu.Unlock()
	if owner != good {
		t.Fatalf("site owner %q after reroute, want %q", owner, good)
	}
	p.Report(good, lg.Job, lg.Unit.Key, lg.Epoch, search.Verdict{Pass: true}, "")
	if r := <-r1; r.err != nil || !r.v.Pass {
		t.Fatalf("unit result %+v", r)
	}
}
