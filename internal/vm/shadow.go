package vm

import (
	"encoding/binary"
	"math"

	"fpmix/internal/isa"
)

// Shadow-value analysis: when enabled, the machine carries a
// single-precision shadow alongside every 64-bit floating-point value —
// one float32 per XMM lane plus a map of shadowed memory slots — and
// pushes it through the same operations the program executes. The gap
// between a shadow and its double-precision reference at each
// instruction is the accumulated error a whole-program single-precision
// run would have at that point, which is exactly the per-instruction
// sensitivity signal CRAFT's shadow-value mode derives. The pass is
// observational: it never changes architectural state, and a machine
// with the shadow disabled executes bit-identically with no per-step
// cost beyond one nil check.

// ShadowRecord is the per-instruction result of a shadow run.
type ShadowRecord struct {
	Addr uint64
	Op   isa.Op

	// Execs is how many times the instruction executed.
	Execs uint64

	// Samples is how many executions contributed an error measurement.
	Samples uint64

	// MaxRelErr and MeanRelErr summarize the relative error between the
	// single-precision shadow result and the double-precision reference,
	// with |reference| floored at 1 (the verifiers' scale) and capped at
	// 1.0 — a comparison or truncation divergence records as 1.0.
	MaxRelErr  float64
	MeanRelErr float64

	// MaxCancelBits is the worst catastrophic cancellation observed on an
	// add/subtract: bits of leading-digit loss between the larger operand
	// and the result.
	MaxCancelBits uint8

	// Divergences counts executions where the shadow took a different
	// discrete outcome than the reference: a comparison setting different
	// flags or a float->int truncation producing a different integer.
	Divergences uint64

	// LocalMaxErr and LocalDivergences are the same measurements taken
	// with the instruction's true double operands rounded to single just
	// for this one step, instead of the carried shadows: the error the
	// instruction introduces intrinsically, independent of upstream
	// drift. The carried-shadow numbers above estimate a whole-program
	// single run; the local numbers estimate lowering this instruction
	// alone, which is what the search's prediction gate needs (a global
	// divergence may be harmless downstream pollution; a local divergence
	// means the operation itself does not fit in 24 bits of mantissa).
	LocalMaxErr      float64
	LocalDivergences uint64
}

// shadowState is the machine's shadow lane file plus the per-instruction
// error accumulators, indexed like counts (by instruction index).
type shadowState struct {
	xmm [isa.NumXMM][2]float32
	mem map[uint64]float32

	maxRel  []float64
	sumRel  []float64
	samples []uint64
	cancel  []uint8
	diverge []uint64

	localMax     []float64
	localDiverge []uint64
}

// EnableShadow turns on shadow-value collection for subsequent execution.
// Enabling mid-run is allowed; shadows for values computed before the
// call are seeded from their double values on first use.
func (m *Machine) EnableShadow() {
	m.shadow = &shadowState{mem: make(map[uint64]float32)}
	m.shadow.size(len(m.instrs))
}

// ShadowEnabled reports whether shadow collection is on.
func (m *Machine) ShadowEnabled() bool { return m.shadow != nil }

func (s *shadowState) size(n int) {
	s.maxRel = make([]float64, n)
	s.sumRel = make([]float64, n)
	s.samples = make([]uint64, n)
	s.cancel = make([]uint8, n)
	s.diverge = make([]uint64, n)
	s.localMax = make([]float64, n)
	s.localDiverge = make([]uint64, n)
}

func (s *shadowState) reset(n int) {
	s.xmm = [isa.NumXMM][2]float32{}
	clear(s.mem)
	if len(s.maxRel) != n {
		s.size(n)
		return
	}
	clear(s.maxRel)
	clear(s.sumRel)
	clear(s.samples)
	clear(s.cancel)
	clear(s.diverge)
	clear(s.localMax)
	clear(s.localDiverge)
}

// ShadowRecords returns the per-instruction shadow measurements of the
// run so far, in program instruction order, omitting instructions the
// shadow never sampled.
func (m *Machine) ShadowRecords() []ShadowRecord {
	s := m.shadow
	if s == nil {
		return nil
	}
	var recs []ShadowRecord
	for i := range m.instrs {
		if s.samples[i] == 0 && s.diverge[i] == 0 {
			continue
		}
		mean := 0.0
		if s.samples[i] > 0 {
			mean = s.sumRel[i] / float64(s.samples[i])
		}
		recs = append(recs, ShadowRecord{
			Addr:             m.instrs[i].Addr,
			Op:               m.instrs[i].Op,
			Execs:            m.counts[i],
			Samples:          s.samples[i],
			MaxRelErr:        s.maxRel[i],
			MeanRelErr:       mean,
			MaxCancelBits:    s.cancel[i],
			Divergences:      s.diverge[i],
			LocalMaxErr:      s.localMax[i],
			LocalDivergences: s.localDiverge[i],
		})
	}
	return recs
}

// ShadowInvalidate drops shadow memory entries overlapping [addr,
// addr+n): the region was written by something the shadow does not model
// (an MPI receive, a host poke), so shadows there reseed from the stored
// doubles on next use. No-op when the shadow is off.
func (m *Machine) ShadowInvalidate(addr, n uint64) {
	if m.shadow == nil {
		return
	}
	for a := addr &^ 7; a < addr+n; a += 4 {
		delete(m.shadow.mem, a)
	}
}

// slot returns the shadow of the 8-byte memory slot at addr, seeding it
// from the stored double bits when untracked.
func (s *shadowState) slot(addr uint64, bits uint64) float32 {
	if v, ok := s.mem[addr]; ok {
		return v
	}
	return float32(math.Float64frombits(bits))
}

// record accumulates one reference-vs-shadow error sample at the current
// instruction.
func (m *Machine) record(r float64, sr float32) {
	s, i := m.shadow, m.pcIdx
	sf := float64(sr)
	var rel float64
	switch {
	case math.IsNaN(r):
		if !math.IsNaN(sf) {
			rel = 1
		}
	case math.IsNaN(sf), math.IsInf(sf, 0) != math.IsInf(r, 0):
		rel = 1
	case math.IsInf(r, 0):
		// Same infinity: no error (handled above when signs differ via NaN
		// of the subtraction below). Distinguish sign explicitly.
		if math.Signbit(r) != math.Signbit(sf) {
			rel = 1
		}
	default:
		rel = math.Abs(sf-r) / math.Max(math.Abs(r), 1)
		if rel > 1 {
			rel = 1
		}
	}
	if rel > s.maxRel[i] {
		s.maxRel[i] = rel
	}
	s.sumRel[i] += rel
	s.samples[i]++
}

// recordDivergence notes a discrete-outcome mismatch (flags, truncation).
func (m *Machine) recordDivergence() {
	s, i := m.shadow, m.pcIdx
	s.diverge[i]++
	s.maxRel[i] = 1
	s.sumRel[i] += 1
	s.samples[i]++
}

// recordLocal accumulates one local error sample: the reference result
// against the result of performing just this operation in single on the
// true (double) operands.
func (m *Machine) recordLocal(r float64, lr float32) {
	s, i := m.shadow, m.pcIdx
	lf := float64(lr)
	var rel float64
	switch {
	case math.IsNaN(r):
		if !math.IsNaN(lf) {
			rel = 1
		}
	case math.IsNaN(lf), math.IsInf(lf, 0) != math.IsInf(r, 0):
		rel = 1
	case math.IsInf(r, 0):
		if math.Signbit(r) != math.Signbit(lf) {
			rel = 1
		}
	default:
		rel = math.Abs(lf-r) / math.Max(math.Abs(r), 1)
		if rel > 1 {
			rel = 1
		}
	}
	if rel > s.localMax[i] {
		s.localMax[i] = rel
	}
}

// recordLocalDivergence notes a discrete-outcome mismatch that occurs
// even with true operands rounded to single just for this step.
func (m *Machine) recordLocalDivergence() {
	s, i := m.shadow, m.pcIdx
	s.localDiverge[i]++
	s.localMax[i] = 1
}

// recordCancel accumulates catastrophic-cancellation bits for a+b=r (or
// a-b=r): the exponent drop from the larger operand to the result.
func (m *Machine) recordCancel(a, b, r float64) {
	if a == 0 || b == 0 || math.IsNaN(r) || math.IsInf(r, 0) ||
		math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return
	}
	emax := math.Ilogb(math.Abs(a))
	if eb := math.Ilogb(math.Abs(b)); eb > emax {
		emax = eb
	}
	bits := 53
	if r != 0 {
		bits = emax - math.Ilogb(math.Abs(r))
	}
	if bits <= 0 {
		return
	}
	if bits > 53 {
		bits = 53
	}
	if s, i := m.shadow, m.pcIdx; uint8(bits) > s.cancel[i] {
		s.cancel[i] = uint8(bits)
	}
}

// shadowSrcF64 mirrors srcF64 without faulting: the reference double
// operand and its shadow.
func (m *Machine) shadowSrcF64(in *isa.Instr) (float64, float32, bool) {
	switch in.B.Kind {
	case isa.KindXMM:
		return math.Float64frombits(m.XMM[in.B.Reg][0]), m.shadow.xmm[in.B.Reg][0], true
	case isa.KindMem:
		addr := m.ea(in.B.Mem)
		if addr+8 > uint64(len(m.Mem)) || addr+8 < addr {
			return 0, 0, false
		}
		bits := binary.LittleEndian.Uint64(m.Mem[addr:])
		return math.Float64frombits(bits), m.shadow.slot(addr, bits), true
	}
	return 0, 0, false
}

// shadowSrc128 mirrors src128 without faulting.
func (m *Machine) shadowSrc128(in *isa.Instr) (ref [2]float64, sh [2]float32, ok bool) {
	switch in.B.Kind {
	case isa.KindXMM:
		x := m.XMM[in.B.Reg]
		return [2]float64{math.Float64frombits(x[0]), math.Float64frombits(x[1])},
			m.shadow.xmm[in.B.Reg], true
	case isa.KindMem:
		addr := m.ea(in.B.Mem)
		if addr+16 > uint64(len(m.Mem)) || addr+16 < addr {
			return ref, sh, false
		}
		lo := binary.LittleEndian.Uint64(m.Mem[addr:])
		hi := binary.LittleEndian.Uint64(m.Mem[addr+8:])
		ref = [2]float64{math.Float64frombits(lo), math.Float64frombits(hi)}
		sh = [2]float32{m.shadow.slot(addr, lo), m.shadow.slot(addr+8, hi)}
		return ref, sh, true
	}
	return ref, sh, false
}

// shadowStep observes in before it executes, updating shadow lanes and
// error accumulators. It runs on pre-instruction architectural state,
// never mutates it, and swallows conditions the real execution will
// fault on.
func (m *Machine) shadowStep(in *isa.Instr) {
	s := m.shadow
	switch in.Op {
	// Non-FP instructions that write memory make shadowed slots stale.
	case isa.STORE:
		s.kill(m.ea(in.A.Mem))
	case isa.PUSH, isa.CALL:
		s.kill(m.GPR[isa.RSP] - 8)

	case isa.PUSHX:
		sp := m.GPR[isa.RSP] - 16
		s.kill(sp)
		s.kill(sp + 8)
		s.mem[sp] = s.xmm[in.A.Reg][0]
		s.mem[sp+8] = s.xmm[in.A.Reg][1]
	case isa.POPX:
		sp := m.GPR[isa.RSP]
		if sp+16 <= uint64(len(m.Mem)) {
			lo := binary.LittleEndian.Uint64(m.Mem[sp:])
			hi := binary.LittleEndian.Uint64(m.Mem[sp+8:])
			s.xmm[in.A.Reg][0] = s.slot(sp, lo)
			s.xmm[in.A.Reg][1] = s.slot(sp+8, hi)
		}

	case isa.MOVSD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			s.xmm[in.A.Reg][0] = s.xmm[in.B.Reg][0]
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			if _, sh, ok := m.shadowSrcF64(in); ok {
				s.xmm[in.A.Reg][0], s.xmm[in.A.Reg][1] = sh, 0
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			addr := m.ea(in.A.Mem)
			if addr+8 <= uint64(len(m.Mem)) {
				s.kill(addr)
				s.mem[addr] = s.xmm[in.B.Reg][0]
			}
		}
	case isa.MOVSS:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			s.xmm[in.A.Reg][0] = math.Float32frombits(uint32(m.XMM[in.B.Reg][0]))
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			addr := m.ea(in.B.Mem)
			if addr+4 <= uint64(len(m.Mem)) {
				v := math.Float32frombits(binary.LittleEndian.Uint32(m.Mem[addr:]))
				s.xmm[in.A.Reg][0], s.xmm[in.A.Reg][1] = v, 0
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			addr := m.ea(in.A.Mem)
			s.kill(addr)
			s.mem[addr] = math.Float32frombits(uint32(m.XMM[in.B.Reg][0]))
		}
	case isa.MOVAPD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			s.xmm[in.A.Reg] = s.xmm[in.B.Reg]
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			if _, sh, ok := m.shadowSrc128(in); ok {
				s.xmm[in.A.Reg] = sh
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			addr := m.ea(in.A.Mem)
			if addr+16 <= uint64(len(m.Mem)) {
				s.kill(addr)
				s.kill(addr + 8)
				s.mem[addr] = s.xmm[in.B.Reg][0]
				s.mem[addr+8] = s.xmm[in.B.Reg][1]
			}
		}
	case isa.MOVQ:
		// GPR destination leaves the shadow alone; XMM destination reseeds
		// lane 0 from the incoming bits (the GPR path is untracked).
		if in.A.Kind == isa.KindXMM {
			s.xmm[in.A.Reg][0] = float32(math.Float64frombits(m.GPR[in.B.Reg]))
		}
	case isa.MOVHQ:
		if in.A.Kind == isa.KindXMM {
			s.xmm[in.A.Reg][1] = float32(math.Float64frombits(m.GPR[in.B.Reg]))
		}

	case isa.ANDPD, isa.ORPD, isa.XORPD:
		m.shadowBitop(in)

	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.MINSD, isa.MAXSD:
		b, sb, ok := m.shadowSrcF64(in)
		if !ok || in.A.Kind != isa.KindXMM {
			return
		}
		a := math.Float64frombits(m.XMM[in.A.Reg][0])
		sa := s.xmm[in.A.Reg][0]
		r := arith64(in.Op, a, b)
		sr := arith32(ssFromSd(in.Op), sa, sb)
		if in.Op == isa.ADDSD || in.Op == isa.SUBSD {
			m.recordCancel(a, b, r)
		}
		m.record(r, sr)
		m.recordLocal(r, arith32(ssFromSd(in.Op), float32(a), float32(b)))
		s.xmm[in.A.Reg][0] = sr
	case isa.SQRTSD:
		b, sb, ok := m.shadowSrcF64(in)
		if !ok {
			return
		}
		r, sr := math.Sqrt(b), sqrt32(sb)
		m.record(r, sr)
		m.recordLocal(r, sqrt32(float32(b)))
		s.xmm[in.A.Reg][0] = sr
	case isa.SINSD, isa.COSSD, isa.EXPSD, isa.LOGSD:
		b, sb, ok := m.shadowSrcF64(in)
		if !ok {
			return
		}
		r, sr := transc64(in.Op, b), transc32(ssFromSd(in.Op), sb)
		m.record(r, sr)
		m.recordLocal(r, transc32(ssFromSd(in.Op), float32(b)))
		s.xmm[in.A.Reg][0] = sr
	case isa.UCOMISD:
		b, sb, ok := m.shadowSrcF64(in)
		if !ok || in.A.Kind != isa.KindXMM {
			return
		}
		a := math.Float64frombits(m.XMM[in.A.Reg][0])
		if ucomiOutcome(a, b) != ucomiOutcome(float64(s.xmm[in.A.Reg][0]), float64(sb)) {
			m.recordDivergence()
		} else {
			s.samples[m.pcIdx]++
		}
		if ucomiOutcome(a, b) != ucomiOutcome(float64(float32(a)), float64(float32(b))) {
			m.recordLocalDivergence()
		}

	case isa.CVTSD2SS:
		b, sb, ok := m.shadowSrcF64(in)
		if !ok {
			return
		}
		// The reference itself rounds to single here; the gap to the shadow
		// is the drift the downcast would expose.
		m.record(float64(float32(b)), sb)
		s.xmm[in.A.Reg][0] = sb
	case isa.CVTSS2SD:
		// Widening from the single domain: shadow equals the value exactly.
		switch in.B.Kind {
		case isa.KindXMM:
			s.xmm[in.A.Reg][0] = math.Float32frombits(uint32(m.XMM[in.B.Reg][0]))
		case isa.KindMem:
			addr := m.ea(in.B.Mem)
			if addr+4 <= uint64(len(m.Mem)) {
				s.xmm[in.A.Reg][0] = math.Float32frombits(binary.LittleEndian.Uint32(m.Mem[addr:]))
			}
		}
	case isa.CVTSI2SD:
		r := float64(int64(m.GPR[in.B.Reg]))
		sr := float32(r)
		m.record(r, sr)
		// The integer-to-single rounding is intrinsic to the instruction.
		m.recordLocal(r, sr)
		s.xmm[in.A.Reg][0] = sr
	case isa.CVTTSD2SI:
		b := math.Float64frombits(m.XMM[in.B.Reg][0])
		sb := float64(s.xmm[in.B.Reg][0])
		if truncDiverges(b, sb) {
			m.recordDivergence()
		} else {
			s.samples[m.pcIdx]++
		}
		if truncDiverges(b, float64(float32(b))) {
			m.recordLocalDivergence()
		}
	case isa.CVTSI2SS:
		s.xmm[in.A.Reg][0] = float32(int64(m.GPR[in.B.Reg]))

	// Single-precision domain: the shadow is the computation itself, so
	// mirror the result with zero recorded error.
	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS:
		if b, ok := m.shadowF32Operand(in); ok && in.A.Kind == isa.KindXMM {
			a := math.Float32frombits(uint32(m.XMM[in.A.Reg][0]))
			s.xmm[in.A.Reg][0] = arith32(in.Op, a, b)
		}
	case isa.SQRTSS:
		if b, ok := m.shadowF32Operand(in); ok {
			s.xmm[in.A.Reg][0] = sqrt32(b)
		}
	case isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		if b, ok := m.shadowF32Operand(in); ok {
			s.xmm[in.A.Reg][0] = transc32(in.Op, b)
		}

	case isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD:
		ref, sh, ok := m.shadowSrc128(in)
		if !ok || in.A.Kind != isa.KindXMM {
			return
		}
		base := packedBase(in.Op)
		x := m.XMM[in.A.Reg]
		for lane := 0; lane < 2; lane++ {
			a := math.Float64frombits(x[lane])
			r := arith64(base, a, ref[lane])
			sr := arith32(ssFromSd(base), s.xmm[in.A.Reg][lane], sh[lane])
			if base == isa.ADDSD || base == isa.SUBSD {
				m.recordCancel(a, ref[lane], r)
			}
			m.record(r, sr)
			m.recordLocal(r, arith32(ssFromSd(base), float32(a), float32(ref[lane])))
			s.xmm[in.A.Reg][lane] = sr
		}
	case isa.SQRTPD:
		ref, sh, ok := m.shadowSrc128(in)
		if !ok {
			return
		}
		for lane := 0; lane < 2; lane++ {
			m.record(math.Sqrt(ref[lane]), sqrt32(sh[lane]))
			m.recordLocal(math.Sqrt(ref[lane]), sqrt32(float32(ref[lane])))
			s.xmm[in.A.Reg][lane] = sqrt32(sh[lane])
		}

	case isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS, isa.SQRTPS:
		// Packed-single lanes hold two float32s per 64-bit lane, which the
		// one-shadow-per-lane file cannot represent; these only occur in
		// already-converted code, so drop tracking for the destination.
		if in.A.Kind == isa.KindXMM {
			s.xmm[in.A.Reg] = [2]float32{}
		}
	}
}

// shadowBitop pushes sign-mask operations through the shadow when they
// are recognizably abs/negate/identity, and reseeds otherwise.
func (m *Machine) shadowBitop(in *isa.Instr) {
	s := m.shadow
	if in.A.Kind != isa.KindXMM {
		return
	}
	ref, _, ok := m.shadowSrc128(in)
	if !ok {
		return
	}
	for lane := 0; lane < 2; lane++ {
		mask := math.Float64bits(ref[lane])
		sh := &s.xmm[in.A.Reg][lane]
		switch in.Op {
		case isa.ANDPD:
			switch mask {
			case ^uint64(0):
			case 0x7FFFFFFFFFFFFFFF:
				*sh = float32(math.Abs(float64(*sh)))
			default:
				*sh = m.reseedLane(in.A.Reg, lane, mask, in.Op)
			}
		case isa.ORPD:
			if mask != 0 {
				*sh = m.reseedLane(in.A.Reg, lane, mask, in.Op)
			}
		default: // XORPD
			switch mask {
			case 0:
			case 0x8000000000000000:
				*sh = -*sh
			default:
				*sh = m.reseedLane(in.A.Reg, lane, mask, in.Op)
			}
		}
	}
}

// reseedLane computes the bit operation's actual result for one lane and
// reseeds the shadow from it.
func (m *Machine) reseedLane(reg uint8, lane int, mask uint64, op isa.Op) float32 {
	v := m.XMM[reg][lane]
	switch op {
	case isa.ANDPD:
		v &= mask
	case isa.ORPD:
		v |= mask
	default:
		v ^= mask
	}
	return float32(math.Float64frombits(v))
}

// shadowF32Operand fetches the 32-bit source operand without faulting.
func (m *Machine) shadowF32Operand(in *isa.Instr) (float32, bool) {
	switch in.B.Kind {
	case isa.KindXMM:
		return math.Float32frombits(uint32(m.XMM[in.B.Reg][0])), true
	case isa.KindMem:
		addr := m.ea(in.B.Mem)
		if addr+4 > uint64(len(m.Mem)) {
			return 0, false
		}
		return math.Float32frombits(binary.LittleEndian.Uint32(m.Mem[addr:])), true
	}
	return 0, false
}

// kill drops the shadow slot at addr (and a straddling 4-byte neighbor).
func (s *shadowState) kill(addr uint64) {
	delete(s.mem, addr)
	delete(s.mem, addr+4)
	delete(s.mem, addr-4)
}

// ucomiOutcome encodes the discrete flag outcome of an unordered compare.
func ucomiOutcome(a, b float64) uint8 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 3
	}
	switch {
	case a == b:
		return 0
	case a < b:
		return 1
	default:
		return 2
	}
}

// truncDiverges reports whether float->int truncation of the shadow
// disagrees with the reference.
func truncDiverges(b, sb float64) bool {
	return int64(b) != int64(sb)
}
