package vm

import "fpmix/internal/isa"

// The cycle cost model. Absolute values are synthetic; what matters for
// the reproduction is the *relative* structure the paper's optimization
// exploits:
//
//   - double-precision arithmetic costs roughly twice single precision
//     (FP latency, SIMD width);
//   - 8-byte memory traffic costs roughly twice 4-byte traffic
//     (bandwidth pressure);
//   - the integer instructions that replacement snippets are mostly made
//     of are cheap, which is why snippet overhead lands in the single-digit
//     to low-double-digit X range instead of the 100-1000X of
//     shadow-arithmetic analyses.
const (
	costInt     = 1
	costLoad    = 3
	costStore   = 3
	costBranch  = 1
	costCallRet = 2
	costSyscall = 20

	// Snippet save/restore costs. Compiled fpmix programs never use the
	// stack-save instructions directly (function linkage is CALL/RET), so
	// PUSH/POP/PUSHX/POPX execute almost exclusively inside replacement
	// snippets. Their cost is calibrated high to amortize the real-world
	// penalties of entering instrumented code that a per-instruction cycle
	// model cannot express — trampoline jumps, icache pollution, pipeline
	// flushes — which dominate the measured overheads in the paper.
	costPushPop  = 20
	costPushPopX = 26

	// FP memory-operand costs model streaming-array bandwidth, the
	// resource halved by single precision. They are deliberately higher
	// than the integer LOAD/STORE cost: integer accesses in compiled
	// fpmix programs are loop counters and index tables that live in
	// cache, while FP accesses stream over large arrays.
	costMemF64 = 14 // extra cycles for an 8-byte FP memory operand
	costMemF32 = 7  // extra cycles for a 4-byte FP memory operand
	costMem128 = 22 // extra cycles for a 16-byte FP memory operand
)

var fpCost = map[isa.Op]uint64{
	isa.MOVSD: 1, isa.MOVSS: 1, isa.MOVAPD: 1, isa.MOVQ: 2, isa.MOVHQ: 2,
	isa.ANDPD: 2, isa.ORPD: 2, isa.XORPD: 2,

	isa.ADDSD: 8, isa.SUBSD: 8, isa.MINSD: 8, isa.MAXSD: 8, isa.UCOMISD: 8,
	isa.MULSD: 10, isa.DIVSD: 36, isa.SQRTSD: 44,
	isa.SINSD: 80, isa.COSSD: 80, isa.EXPSD: 80, isa.LOGSD: 80,

	isa.ADDSS: 4, isa.SUBSS: 4, isa.MINSS: 4, isa.MAXSS: 4, isa.UCOMISS: 4,
	isa.MULSS: 5, isa.DIVSS: 18, isa.SQRTSS: 22,
	isa.SINSS: 40, isa.COSSS: 40, isa.EXPSS: 40, isa.LOGSS: 40,

	isa.CVTSD2SS: 4, isa.CVTSS2SD: 4, isa.CVTSI2SD: 4, isa.CVTTSD2SI: 4,
	isa.CVTSI2SS: 4, isa.CVTTSS2SI: 4,

	isa.ADDPD: 12, isa.SUBPD: 12, isa.MULPD: 15, isa.DIVPD: 50, isa.SQRTPD: 60,
	isa.ADDPS: 6, isa.SUBPS: 6, isa.MULPS: 8, isa.DIVPS: 26, isa.SQRTPS: 30,
}

// cost returns the modeled cycle cost of executing in.
func cost(in *isa.Instr) uint64 {
	if c, ok := fpCost[in.Op]; ok {
		if in.A.Kind == isa.KindMem || in.B.Kind == isa.KindMem {
			c += fpMemCost(in.Op)
		}
		return c
	}
	switch in.Op {
	case isa.LOAD, isa.LEA:
		return costLoad
	case isa.STORE:
		return costStore
	case isa.PUSH, isa.POP:
		return costPushPop
	case isa.PUSHX, isa.POPX:
		return costPushPopX
	case isa.CALL, isa.RET:
		return costCallRet
	case isa.SYSCALL:
		return costSyscall
	case isa.JMP, isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JAE, isa.JA, isa.JBE:
		return costBranch
	default:
		return costInt
	}
}

// fpMemCost returns the additional cost of a memory operand on an FP
// instruction, scaled by access width.
func fpMemCost(op isa.Op) uint64 {
	switch op {
	case isa.MOVSS, isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.SQRTSS,
		isa.MINSS, isa.MAXSS, isa.UCOMISS, isa.CVTSS2SD, isa.CVTTSS2SI,
		isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		return costMemF32
	case isa.MOVAPD, isa.ANDPD, isa.ORPD, isa.XORPD,
		isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD, isa.SQRTPD,
		isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS, isa.SQRTPS:
		return costMem128
	default:
		return costMemF64
	}
}
