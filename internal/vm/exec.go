package vm

import (
	"encoding/binary"
	"fmt"
	"math"

	"fpmix/internal/isa"
)

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	if int(m.pcIdx) >= len(m.instrs) || m.pcIdx < 0 {
		return &Fault{Kind: FaultBadPC, PC: 0, Detail: "fell off code segment"}
	}
	in := &m.instrs[m.pcIdx]
	m.counts[m.pcIdx]++
	m.Steps++
	if m.inject != nil {
		if err := m.injectCheck(in); err != nil {
			return err
		}
	}
	if m.shadow != nil {
		m.shadowStep(in)
	}
	m.Cycles += m.costs[m.pcIdx]

	next := m.pcIdx + 1

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.halted = true
	case isa.SYSCALL:
		if err := m.syscall(in); err != nil {
			return err
		}

	case isa.MOVRI:
		m.GPR[in.A.Reg] = uint64(in.B.Imm)
	case isa.MOVRR:
		m.GPR[in.A.Reg] = m.GPR[in.B.Reg]
	case isa.LOAD:
		v, err := m.load(in, in.B.Mem, 8)
		if err != nil {
			return err
		}
		m.GPR[in.A.Reg] = v
	case isa.STORE:
		if err := m.store(in, in.A.Mem, m.GPR[in.B.Reg], 8); err != nil {
			return err
		}
	case isa.LEA:
		m.GPR[in.A.Reg] = m.ea(in.B.Mem)

	case isa.ADDR:
		m.GPR[in.A.Reg] += m.GPR[in.B.Reg]
	case isa.ADDI:
		m.GPR[in.A.Reg] += uint64(in.B.Imm)
	case isa.SUBR:
		m.GPR[in.A.Reg] -= m.GPR[in.B.Reg]
	case isa.SUBI:
		m.GPR[in.A.Reg] -= uint64(in.B.Imm)
	case isa.IMULR:
		m.GPR[in.A.Reg] = uint64(int64(m.GPR[in.A.Reg]) * int64(m.GPR[in.B.Reg]))
	case isa.IMULI:
		m.GPR[in.A.Reg] = uint64(int64(m.GPR[in.A.Reg]) * in.B.Imm)
	case isa.ANDR:
		m.GPR[in.A.Reg] &= m.GPR[in.B.Reg]
	case isa.ANDI:
		m.GPR[in.A.Reg] &= uint64(in.B.Imm)
	case isa.ORR:
		m.GPR[in.A.Reg] |= m.GPR[in.B.Reg]
	case isa.ORI:
		m.GPR[in.A.Reg] |= uint64(in.B.Imm)
	case isa.XORR:
		m.GPR[in.A.Reg] ^= m.GPR[in.B.Reg]
	case isa.XORI:
		m.GPR[in.A.Reg] ^= uint64(in.B.Imm)
	case isa.IDIVR:
		d := int64(m.GPR[in.B.Reg])
		if d == 0 {
			return m.fault(FaultMemOOB, in, "integer division by zero")
		}
		m.GPR[in.A.Reg] = uint64(int64(m.GPR[in.A.Reg]) / d)
	case isa.SHLI:
		m.GPR[in.A.Reg] <<= uint64(in.B.Imm) & 63
	case isa.SHRI:
		m.GPR[in.A.Reg] >>= uint64(in.B.Imm) & 63

	case isa.CMPR:
		m.setCmp(m.GPR[in.A.Reg], m.GPR[in.B.Reg])
	case isa.CMPI:
		m.setCmp(m.GPR[in.A.Reg], uint64(in.B.Imm))
	case isa.TESTR:
		m.setTest(m.GPR[in.A.Reg] & m.GPR[in.B.Reg])
	case isa.TESTI:
		m.setTest(m.GPR[in.A.Reg] & uint64(in.B.Imm))

	case isa.JMP, isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JAE, isa.JA, isa.JBE:
		if m.branchTaken(in.Op) {
			idx, err := m.staticTarget(in)
			if err != nil {
				return err
			}
			next = idx
		}

	case isa.CALL:
		ret := m.retAddr(next, in)
		if err := m.push64(in, ret); err != nil {
			return err
		}
		idx, err := m.staticTarget(in)
		if err != nil {
			return err
		}
		next = idx
	case isa.RET:
		ret, err := m.pop64(in)
		if err != nil {
			return err
		}
		idx, err := m.target(in, int64(ret))
		if err != nil {
			return err
		}
		next = idx

	case isa.PUSH:
		if err := m.push64(in, m.GPR[in.A.Reg]); err != nil {
			return err
		}
	case isa.POP:
		v, err := m.pop64(in)
		if err != nil {
			return err
		}
		m.GPR[in.A.Reg] = v
	case isa.PUSHX:
		m.GPR[isa.RSP] -= 16
		if err := m.store(in, spMem(m), m.XMM[in.A.Reg][0], 8); err != nil {
			return err
		}
		if err := m.store(in, spMemOff(m, 8), m.XMM[in.A.Reg][1], 8); err != nil {
			return err
		}
	case isa.POPX:
		lo, err := m.load(in, spMem(m), 8)
		if err != nil {
			return err
		}
		hi, err := m.load(in, spMemOff(m, 8), 8)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0], m.XMM[in.A.Reg][1] = lo, hi
		m.GPR[isa.RSP] += 16

	default:
		if err := m.stepFP(in); err != nil {
			return err
		}
	}

	if !m.halted {
		m.pcIdx = next
		if int(m.pcIdx) >= len(m.instrs) {
			return &Fault{Kind: FaultBadPC, PC: in.Addr, Op: in.Op, Detail: "fell off code segment"}
		}
	}
	return nil
}

// staticTarget resolves the branch/call target of the current instruction,
// using the program's pre-resolved index table when linked.
func (m *Machine) staticTarget(in *isa.Instr) (int32, error) {
	if m.targets != nil {
		if t := m.targets[m.pcIdx]; t >= 0 {
			return t, nil
		}
	}
	return m.target(in, in.A.Imm)
}

// target resolves a branch target address to an instruction index.
func (m *Machine) target(in *isa.Instr, addr int64) (int32, error) {
	if m.addrIdx != nil {
		idx, ok := m.addrIdx[uint64(addr)]
		if !ok {
			return 0, m.fault(FaultBadPC, in, fmt.Sprintf("target %#x", uint64(addr)))
		}
		return idx, nil
	}
	idx, ok := m.lp.idxOf(uint64(addr))
	if !ok {
		return 0, m.fault(FaultBadPC, in, fmt.Sprintf("target %#x", uint64(addr)))
	}
	return idx, nil
}

// branchTaken evaluates the branch condition for op against current flags.
func (m *Machine) branchTaken(op isa.Op) bool {
	switch op {
	case isa.JMP:
		return true
	case isa.JE:
		return m.eq
	case isa.JNE:
		return !m.eq
	case isa.JL:
		return m.ltS
	case isa.JLE:
		return m.ltS || m.eq
	case isa.JG:
		return !m.ltS && !m.eq
	case isa.JGE:
		return !m.ltS
	case isa.JB:
		return m.ltU
	case isa.JAE:
		return !m.ltU
	case isa.JA:
		return !m.ltU && !m.eq
	case isa.JBE:
		return m.ltU || m.eq
	default:
		return false
	}
}

// retAddr computes the return address for a CALL (the address after it).
func (m *Machine) retAddr(next int32, in *isa.Instr) uint64 {
	if int(next) < len(m.instrs) {
		return m.instrs[next].Addr
	}
	return in.Addr + uint64(isa.EncodedSize(*in))
}

func (m *Machine) setCmp(a, b uint64) {
	m.eq = a == b
	m.ltS = int64(a) < int64(b)
	m.ltU = a < b
}

func (m *Machine) setTest(v uint64) {
	m.eq = v == 0
	m.ltS = int64(v) < 0
	m.ltU = false
}

// setUcomi sets flags the way UCOMISD/UCOMISS do: unordered comparisons set
// both ZF and CF (so JE and JB are taken), as on x86.
func (m *Machine) setUcomi(a, b float64) {
	if math.IsNaN(a) || math.IsNaN(b) {
		m.eq, m.ltU, m.ltS = true, true, true
		return
	}
	m.eq = a == b
	m.ltU = a < b
	m.ltS = a < b
}

// ea computes the effective address of a memory operand.
func (m *Machine) ea(ref isa.MemRef) uint64 {
	addr := m.GPR[ref.Base] + uint64(int64(ref.Disp))
	if ref.HasIndex {
		addr += m.GPR[ref.Index] * uint64(ref.Scale)
	}
	return addr
}

func (m *Machine) load(in *isa.Instr, ref isa.MemRef, width int) (uint64, error) {
	addr := m.ea(ref)
	if addr+uint64(width) > uint64(len(m.Mem)) || addr+uint64(width) < addr {
		return 0, m.fault(FaultMemOOB, in, fmt.Sprintf("load %d bytes at %#x", width, addr))
	}
	switch width {
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.Mem[addr:])), nil
	default:
		return binary.LittleEndian.Uint64(m.Mem[addr:]), nil
	}
}

func (m *Machine) store(in *isa.Instr, ref isa.MemRef, v uint64, width int) error {
	addr := m.ea(ref)
	if addr+uint64(width) > uint64(len(m.Mem)) || addr+uint64(width) < addr {
		return m.fault(FaultMemOOB, in, fmt.Sprintf("store %d bytes at %#x", width, addr))
	}
	switch width {
	case 4:
		binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.Mem[addr:], v)
	}
	if m.track != nil {
		m.track.markRange(addr, uint64(width))
	}
	return nil
}

func spMem(m *Machine) isa.MemRef { return isa.MemRef{Base: isa.RSP, Scale: 1} }

func spMemOff(m *Machine, off int32) isa.MemRef {
	return isa.MemRef{Base: isa.RSP, Disp: off, Scale: 1}
}

func (m *Machine) push64(in *isa.Instr, v uint64) error {
	m.GPR[isa.RSP] -= 8
	return m.store(in, spMem(m), v, 8)
}

func (m *Machine) pop64(in *isa.Instr) (uint64, error) {
	v, err := m.load(in, spMem(m), 8)
	if err != nil {
		return 0, err
	}
	m.GPR[isa.RSP] += 8
	return v, nil
}

func (m *Machine) syscall(in *isa.Instr) error {
	switch num := in.A.Imm; num {
	case isa.SysOutF64:
		m.Out = append(m.Out, OutVal{Kind: OutF64, Bits: m.XMM[0][0]})
	case isa.SysOutF32:
		m.Out = append(m.Out, OutVal{Kind: OutF32, Bits: m.XMM[0][0] & 0xFFFFFFFF})
	case isa.SysOutI64:
		m.Out = append(m.Out, OutVal{Kind: OutI64, Bits: m.GPR[isa.RAX]})
	default:
		if m.Host == nil {
			return m.fault(FaultBadSyscall, in, fmt.Sprintf("syscall %d with no host", num))
		}
		if err := m.Host.Syscall(m, num); err != nil {
			return m.fault(FaultHost, in, err.Error())
		}
		if m.track != nil {
			// The host may have written anywhere (MPI receives).
			m.track.markAll()
		}
	}
	return nil
}
