package vm

import "fmt"

// Breakpoint stops. A machine can carry a set of stop addresses; Run then
// returns a *Stopped — not a *Fault — immediately before executing an
// instruction at one of them, with all machine state (registers, memory,
// accounting, program counter) exactly as it was at that boundary, so the
// run can be snapshotted and resumed. The fork-point planner uses this to
// drive the donor pass: one run of the all-double configuration with a
// stop at every candidate replacement site yields a snapshot of the
// shared prefix at each site's first dynamic execution.
//
// Stops are checked before the instruction executes, so resuming Run with
// the address still in the set stops again without progress; remove the
// address (ClearStop) before resuming past it. A stop set whose addresses
// all begin basic blocks is served from the compiled tier's dispatch loop
// (incrementally assembled programs make every replacement slot base a
// block leader for this); a stop inside a block routes the run to the
// per-step tier, preserving exact semantics either way.

// Stopped is the non-fault error Run returns when execution reaches a
// stop address.
type Stopped struct {
	PC    uint64 // address of the instruction about to execute
	Steps uint64 // instructions executed so far
}

func (s *Stopped) Error() string {
	return fmt.Sprintf("vm: stopped at %#x after %d steps", s.PC, s.Steps)
}

// StopAt adds addr to the machine's stop set.
func (m *Machine) StopAt(addr uint64) {
	if m.stops == nil {
		m.stops = make(map[uint64]bool)
	}
	m.stops[addr] = true
}

// ClearStop removes addr from the stop set.
func (m *Machine) ClearStop(addr uint64) {
	delete(m.stops, addr)
	if len(m.stops) == 0 {
		m.stops = nil
	}
}

// ClearStops removes every stop address.
func (m *Machine) ClearStops() { m.stops = nil }

// stopCheck reports the pending stop at the current program counter, if
// any.
func (m *Machine) stopCheck() error {
	if int(m.pcIdx) < len(m.instrs) && m.pcIdx >= 0 {
		if addr := m.instrs[m.pcIdx].Addr; m.stops[addr] {
			return &Stopped{PC: addr, Steps: m.Steps}
		}
	}
	return nil
}
