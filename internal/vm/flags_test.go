package vm

import (
	"math"
	"testing"

	"fpmix/internal/isa"
)

// Direct unit coverage for the flag machinery both dispatch tiers share:
// branchTaken across every jump opcode and setUcomi's x86 unordered
// semantics. Previously these were only exercised indirectly through
// kernel runs.

func TestBranchTakenTruthTable(t *testing.T) {
	jumps := []isa.Op{
		isa.JMP, isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG,
		isa.JGE, isa.JB, isa.JAE, isa.JA, isa.JBE,
	}
	// want computes the architectural condition from (ZF, SF!=OF, CF).
	want := func(op isa.Op, eq, ltS, ltU bool) bool {
		switch op {
		case isa.JMP:
			return true
		case isa.JE:
			return eq
		case isa.JNE:
			return !eq
		case isa.JL:
			return ltS
		case isa.JLE:
			return ltS || eq
		case isa.JG:
			return !ltS && !eq
		case isa.JGE:
			return !ltS
		case isa.JB:
			return ltU
		case isa.JAE:
			return !ltU
		case isa.JA:
			return !ltU && !eq
		case isa.JBE:
			return ltU || eq
		}
		return false
	}
	m := &Machine{}
	for flags := 0; flags < 8; flags++ {
		m.eq = flags&1 != 0
		m.ltS = flags&2 != 0
		m.ltU = flags&4 != 0
		for _, op := range jumps {
			if got, w := m.branchTaken(op), want(op, m.eq, m.ltS, m.ltU); got != w {
				t.Errorf("%v with eq=%v ltS=%v ltU=%v: taken=%v, want %v",
					op, m.eq, m.ltS, m.ltU, got, w)
			}
		}
		// Non-branch opcodes are never taken, whatever the flags.
		if m.branchTaken(isa.ADDSD) || m.branchTaken(isa.NOP) {
			t.Errorf("non-branch opcode reported taken with flags %03b", flags)
		}
	}
}

func TestSetUcomiFlagSemantics(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name         string
		a, b         float64
		eq, ltU, ltS bool
		jeTaken      bool // unordered must take JE ...
		jbTaken      bool // ... and JB, as on x86
		jaTaken      bool // and never JA
	}{
		{"less", 1, 2, false, true, true, false, true, false},
		{"equal", 3, 3, true, false, false, true, false, false},
		{"greater", 5, 4, false, false, false, false, false, true},
		{"nan-left", nan, 1, true, true, true, true, true, false},
		{"nan-right", 1, nan, true, true, true, true, true, false},
		{"nan-both", nan, nan, true, true, true, true, true, false},
		{"zero-signs", math.Copysign(0, -1), 0, true, false, false, true, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Machine{}
			m.setUcomi(tc.a, tc.b)
			if m.eq != tc.eq || m.ltU != tc.ltU || m.ltS != tc.ltS {
				t.Errorf("ucomi(%v, %v): flags eq=%v ltU=%v ltS=%v, want %v/%v/%v",
					tc.a, tc.b, m.eq, m.ltU, m.ltS, tc.eq, tc.ltU, tc.ltS)
			}
			if got := m.branchTaken(isa.JE); got != tc.jeTaken {
				t.Errorf("JE after ucomi(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.jeTaken)
			}
			if got := m.branchTaken(isa.JB); got != tc.jbTaken {
				t.Errorf("JB after ucomi(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.jbTaken)
			}
			if got := m.branchTaken(isa.JA); got != tc.jaTaken {
				t.Errorf("JA after ucomi(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.jaTaken)
			}
		})
	}
}
