package vm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextCompiledTier: a cancel flag does not force the machine
// off the compiled tier — the block-dispatch loop polls it between
// blocks — and a mid-run cancel still lands as FaultCancelled.
func TestRunContextCompiledTier(t *testing.T) {
	m0, _ := loopProgram(t, 1<<40)
	lp, err := Link(m0.prog)
	if err != nil {
		t.Fatal(err)
	}
	m := lp.NewMachine()
	m.MaxSteps = 1 << 50
	var flag atomic.Bool
	m.cancelled = &flag
	if !m.compiledTier() {
		t.Fatal("cancel flag forced the machine off the compiled tier")
	}
	m.cancelled = nil

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err = m.RunContext(ctx)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCancelled {
		t.Fatalf("err = %v, want FaultCancelled", err)
	}
	if m.Steps == 0 {
		t.Error("cancelled before executing anything")
	}

	// A live-but-never-cancelled context must complete with exactly the
	// plain-Run machine's state: same step count, same halt.
	ms, _ := loopProgram(t, 1000)
	lps, err := Link(ms.prog)
	if err != nil {
		t.Fatal(err)
	}
	mc := lps.NewMachine()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := mc.RunContext(ctx2); err != nil {
		t.Fatal(err)
	}
	mr := lps.NewMachine()
	if err := mr.Run(); err != nil {
		t.Fatal(err)
	}
	if mc.Steps != mr.Steps || mc.Halted() != mr.Halted() {
		t.Errorf("RunContext machine (steps=%d halted=%v) diverged from Run (steps=%d halted=%v)",
			mc.Steps, mc.Halted(), mr.Steps, mr.Halted())
	}
}
