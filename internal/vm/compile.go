package vm

import (
	"encoding/binary"
	"fmt"
	"math"

	"fpmix/internal/isa"
)

// The compiled direct-threaded execution engine.
//
// Link translates the instruction stream once into an array of basic
// blocks whose straight-line bodies are pre-decoded closures (operands
// resolved to register numbers, immediates and memory references at
// compile time) and whose terminators hold direct pointers to their
// successor blocks. Run dispatches block to block through those pointers
// — no per-step opcode switch, no per-step budget check, no program
// counter maintenance in the steady state (pcIdx is materialized only at
// faults, HALT and tier transitions), and step/cycle/count accounting
// batched per block instead of per instruction. Per-instruction counts
// are reconstructed exactly from per-block execution counters when the
// run ends, because every instruction of a basic block executes the same
// number of times.
//
// The engine is a pure speedup: a compiled run produces a machine
// byte-identical to the per-step interpreter — same Steps, Cycles,
// Counts, memory image, outputs and fault kind+PC (the randomized
// differential suite and the kernel identity tests enforce this). Any
// per-step observation hook (shadow values, armed injected traps,
// RunContext cancellation, TrapUnreplaced) routes the run to the
// instrumented per-step tier instead, so hooks keep exact per-step
// semantics without costing the fast path anything. Breakpoint stops are
// the exception: when every stop address begins a basic block they are
// served from the dispatch loop itself, so the fork-point donor pass —
// one run with a stop at every replacement slot — executes at compiled
// speed.

// microOp is one pre-decoded straight-line instruction. It never
// transfers control; control flow lives in the block terminator.
type microOp func(m *Machine) error

// termKind classifies how a basic block transfers control.
type termKind uint8

const (
	termFall    termKind = iota // fall through into the next block
	termFallOff                 // run off the end of the code segment (faults)
	termJump                    // unconditional jump
	termCond                    // conditional branch
	termCall                    // call: push return address, jump
	termRet                     // return: pop target address
	termHalt                    // HALT
)

// block is one compiled basic block: a fused superinstruction executing
// the whole straight-line body before settling accounting once.
type block struct {
	start int32     // instruction index of the first instruction
	n     int32     // total instructions in the block (body + terminator)
	id    int32     // index in compiled.blocks (the blkExec slot)
	cost  uint64    // summed cycle cost of all n instructions
	body  []microOp // pre-decoded straight-line instructions, in order
	term  termKind
	in    *isa.Instr // terminator instruction; nil only for termFall
	// condOp is the branch opcode a termCond block evaluates.
	condOp isa.Op
	// takenBlk is the successor when the terminator's branch/call is
	// taken; nil when the target address is not an instruction (following
	// it then faults, exactly as the per-step interpreter does).
	takenBlk *block
	// fallBlk is the fall-through successor (termFall always; termCond
	// when not taken); nil when falling through runs off the code
	// segment.
	fallBlk   *block
	takenAddr uint64 // unresolved target address, for the fault message
	ret       uint64 // termCall: the return address pushed
}

// compiled is the direct-threaded form of a linked program. Like the
// Program that owns it, it is immutable after Link and shared by every
// machine executing the program.
type compiled struct {
	blocks []block
	// blockOf maps an instruction index to the index of the block
	// containing it (meaningful for dispatch only at leaders).
	blockOf []int32
	// leader marks instruction indices that begin a basic block.
	leader []bool
}

// endsBlock reports whether op terminates a basic block in the compiled
// stream: control transfers plus CALL (RET must resume at the call's
// continuation, so the continuation needs to be a block boundary).
func endsBlock(op isa.Op) bool {
	return op.IsBranch() || op == isa.RET || op == isa.HALT
}

// compileProgram builds the direct-threaded block stream for lp. It
// requires lp.targets and lp.costs to be populated.
func compileProgram(lp *Program) *compiled {
	return compileProgramWith(lp, func(i int) microOp { return compileOp(&lp.instrs[i]) }, nil)
}

// compileProgramWith is compileProgram with the per-instruction closure
// supplied by the caller: the incremental linker passes pre-compiled
// micro-ops (closures over its immutable fragment cache, valid for any
// assembly because instruction content and address are stable), so
// re-assembling a configuration skips closure creation entirely.
//
// extraLeaders lists additional instruction indices to begin basic blocks
// at. The incremental linker passes every replacement-slot base so that a
// breakpoint stop at a slot — the donor pass arms one at each — lands on
// a block boundary and the run stays on the compiled tier (see
// runCompiled). A few extra block splits cost the steady state nothing
// but one more dispatch.
func compileProgramWith(lp *Program, opAt func(int) microOp, extraLeaders []int32) *compiled {
	instrs := lp.instrs
	n := len(instrs)
	c := &compiled{leader: make([]bool, n), blockOf: make([]int32, n)}
	if n == 0 {
		return c
	}
	c.leader[lp.entry] = true
	for _, i := range extraLeaders {
		if i >= 0 && int(i) < n {
			c.leader[i] = true
		}
	}
	for i := range instrs {
		if !endsBlock(instrs[i].Op) {
			continue
		}
		if i+1 < n {
			c.leader[i+1] = true
		}
		if t := lp.targets[i]; t >= 0 {
			c.leader[t] = true
		}
	}
	// takenIdx[id] remembers each block's taken-target instruction index
	// until every block exists and pointers can be resolved.
	var takenIdx []int32
	for start := 0; start < n; start++ {
		if !c.leader[start] {
			// Instructions not reachable by fall-through from any leader
			// (a gap before the entry point) execute on the per-step
			// tier if ever reached dynamically.
			continue
		}
		end := start
		for {
			if endsBlock(instrs[end].Op) {
				end++
				break
			}
			end++
			if end >= n || c.leader[end] {
				break
			}
		}
		b := block{start: int32(start), n: int32(end - start), id: int32(len(c.blocks))}
		taken := int32(-1)
		for i := start; i < end; i++ {
			b.cost += lp.costs[i]
			c.blockOf[i] = b.id
		}
		last := &instrs[end-1]
		bodyEnd := end - 1
		switch {
		case last.Op == isa.HALT:
			b.term, b.in = termHalt, last
		case last.Op == isa.RET:
			b.term, b.in = termRet, last
		case last.Op == isa.CALL:
			b.term, b.in = termCall, last
			taken = lp.targets[end-1]
			b.takenAddr = uint64(last.A.Imm)
			if end < n {
				b.ret = instrs[end].Addr
			} else {
				b.ret = last.Addr + uint64(isa.EncodedSize(*last))
			}
		case last.Op == isa.JMP:
			b.term, b.in = termJump, last
			taken = lp.targets[end-1]
			b.takenAddr = uint64(last.A.Imm)
		case last.Op.IsCondBranch():
			b.term, b.in, b.condOp = termCond, last, last.Op
			taken = lp.targets[end-1]
			b.takenAddr = uint64(last.A.Imm)
		default:
			// Straight-line block ending at the next leader or at the end
			// of the stream; the last instruction belongs to the body.
			bodyEnd = end
			if end >= n {
				b.term, b.in = termFallOff, last
			} else {
				b.term = termFall
			}
		}
		b.body = make([]microOp, 0, bodyEnd-start)
		for i := start; i < bodyEnd; i++ {
			b.body = append(b.body, opAt(i))
		}
		c.blocks = append(c.blocks, b)
		takenIdx = append(takenIdx, taken)
	}
	// Second pass: resolve successor pointers now that the block array is
	// stable. Branch/call targets and fall-through continuations are
	// always leaders by construction, so blockOf addresses them exactly.
	for i := range c.blocks {
		b := &c.blocks[i]
		if t := takenIdx[i]; t >= 0 {
			b.takenBlk = &c.blocks[c.blockOf[t]]
		}
		if b.term == termFall || b.term == termCond {
			if next := int(b.start + b.n); next < n {
				b.fallBlk = &c.blocks[c.blockOf[next]]
			}
		}
	}
	return c
}

// compiledTier reports whether the next Run may take the compiled fast
// path: a compiled program is bound and no per-step hook — shadow
// collection, an armed injected trap, or unreplaced-input trapping —
// needs per-instruction observation. Breakpoint stops do not force the
// per-step tier by themselves: runCompiled serves stops whose addresses
// all begin basic blocks from the block-dispatch loop, and falls back
// per-step only for a mid-block stop. RunContext cancellation does not
// force it either — the dispatch loop polls the flag between blocks,
// and a cancelled run's partial state never feeds a verdict, so the
// coarser stop granularity is unobservable.
func (m *Machine) compiledTier() bool {
	return !m.NoCompile && m.lp != nil && m.lp.compiled != nil &&
		m.shadow == nil && m.inject == nil &&
		!m.TrapUnreplaced
}

// runCompiled executes block to block until HALT, a fault, or budget
// exhaustion, producing exactly the machine the per-step tier would.
func (m *Machine) runCompiled(max uint64) error {
	c := m.lp.compiled
	// An armed stop set is served at block dispatch when every stop
	// address that is an instruction begins a block (the incremental
	// linker makes each slot base a leader for exactly this). The check
	// runs before the block executes, so the Stopped machine state is
	// bit-identical to the per-step tier's, which checks before each
	// instruction. A stop inside a block needs per-instruction
	// observation: fall back.
	var stopBlk []bool
	if m.stops != nil {
		stopBlk = make([]bool, len(c.blocks))
		for addr := range m.stops {
			idx, ok := m.lp.idxOf(addr)
			if !ok {
				continue // not an instruction: neither tier ever stops there
			}
			if !c.leader[idx] {
				return m.runInstrumented(max)
			}
			stopBlk[c.blockOf[idx]] = true
		}
	}
	if len(m.blkExec) != len(c.blocks) {
		m.blkExec = make([]uint64, len(c.blocks))
	}
	defer m.flushBlockCounts(c)
outer:
	for !m.halted {
		if int(m.pcIdx) >= len(m.instrs) || m.pcIdx < 0 {
			// Budget before bad-PC, matching the per-step loop's order.
			if m.Steps >= max {
				return &Fault{Kind: FaultMaxSteps, PC: m.PC(), Detail: fmt.Sprintf("%d steps", m.Steps)}
			}
			return &Fault{Kind: FaultBadPC, PC: 0, Detail: "fell off code segment"}
		}
		// Mid-block entry (partial Step()s before Run, or a RET into the
		// middle of a block): single-step to the next block boundary.
		for !c.leader[m.pcIdx] {
			if m.Steps >= max {
				return &Fault{Kind: FaultMaxSteps, PC: m.PC(), Detail: fmt.Sprintf("%d steps", m.Steps)}
			}
			if err := m.Step(); err != nil {
				return err
			}
			if m.halted {
				return nil
			}
		}
		cur := &c.blocks[c.blockOf[m.pcIdx]]
		// Steady state: block to block through resolved successor
		// pointers; pcIdx is materialized only on exits.
		for {
			if m.cancelled != nil && m.cancelled.Load() {
				// Between blocks the machine state is bit-identical to the
				// per-step tier's before the same instruction, so stopping
				// here matches runInstrumented's check exactly — only the
				// polling stride is coarser (one block, not one step).
				m.pcIdx = cur.start
				return &Fault{Kind: FaultCancelled, PC: m.PC(), Detail: fmt.Sprintf("after %d steps", m.Steps)}
			}
			if stopBlk != nil && stopBlk[cur.id] {
				// Checked before the budget, matching the per-step loop's
				// order; stops live only at block starts here, so the
				// dispatch check observes exactly the addresses stopCheck
				// would.
				m.pcIdx = cur.start
				return &Stopped{PC: m.instrs[cur.start].Addr, Steps: m.Steps}
			}
			if m.Steps+uint64(cur.n) > max {
				// The budget expires inside this block (or already has):
				// finish on the per-step tier, which faults at the exact
				// instruction the interpreter would.
				m.pcIdx = cur.start
				return m.runInstrumented(max)
			}
			body := cur.body
			for j := 0; j < len(body); j++ {
				if err := body[j](m); err != nil {
					m.settlePartial(cur, int32(j))
					return err
				}
			}
			// The whole block executed: settle accounting in one batch.
			// The terminator below is part of the block — if it faults,
			// it has executed (and is counted), matching the per-step
			// tier.
			m.Steps += uint64(cur.n)
			m.Cycles += cur.cost
			m.blkExec[cur.id]++
			switch cur.term {
			case termFall:
				cur = cur.fallBlk
			case termHalt:
				m.halted = true
				m.pcIdx = cur.start + cur.n - 1
				return nil
			case termCond:
				if m.branchTaken(cur.condOp) {
					if cur.takenBlk == nil {
						m.pcIdx = cur.start + cur.n - 1
						return m.fault(FaultBadPC, cur.in, fmt.Sprintf("target %#x", cur.takenAddr))
					}
					cur = cur.takenBlk
				} else {
					if cur.fallBlk == nil {
						m.pcIdx = cur.start + cur.n
						return &Fault{Kind: FaultBadPC, PC: cur.in.Addr, Op: cur.in.Op, Detail: "fell off code segment"}
					}
					cur = cur.fallBlk
				}
			case termJump:
				if cur.takenBlk == nil {
					m.pcIdx = cur.start + cur.n - 1
					return m.fault(FaultBadPC, cur.in, fmt.Sprintf("target %#x", cur.takenAddr))
				}
				cur = cur.takenBlk
			case termCall:
				if err := m.push64(cur.in, cur.ret); err != nil {
					m.pcIdx = cur.start + cur.n - 1
					return err
				}
				if cur.takenBlk == nil {
					m.pcIdx = cur.start + cur.n - 1
					return m.fault(FaultBadPC, cur.in, fmt.Sprintf("target %#x", cur.takenAddr))
				}
				cur = cur.takenBlk
			case termRet:
				v, err := m.pop64(cur.in)
				if err != nil {
					m.pcIdx = cur.start + cur.n - 1
					return err
				}
				idx, ok := m.lp.idxOf(v)
				if !ok {
					m.pcIdx = cur.start + cur.n - 1
					return m.fault(FaultBadPC, cur.in, fmt.Sprintf("target %#x", v))
				}
				if !c.leader[idx] {
					// A return into the middle of a block: resume on the
					// stepping path until the next boundary.
					m.pcIdx = idx
					continue outer
				}
				cur = &c.blocks[c.blockOf[idx]]
			case termFallOff:
				m.pcIdx = cur.start + cur.n
				return &Fault{Kind: FaultBadPC, PC: cur.in.Addr, Op: cur.in.Op, Detail: "fell off code segment"}
			}
		}
	}
	return nil
}

// settlePartial accounts a block whose body faulted at body index j: the
// faulting instruction executed (and is counted and charged), everything
// after it did not.
func (m *Machine) settlePartial(b *block, j int32) {
	for i := b.start; i <= b.start+j; i++ {
		m.counts[i]++
		m.Cycles += m.costs[i]
	}
	m.Steps += uint64(j + 1)
	m.pcIdx = b.start + j
}

// flushBlockCounts expands the per-block execution counters into the
// per-instruction counts the rest of the system consumes (profiles,
// search prioritization). Runs once per Run exit, so count accounting is
// O(static blocks), not O(executed steps).
func (m *Machine) flushBlockCounts(c *compiled) {
	for bi, execs := range m.blkExec {
		if execs == 0 {
			continue
		}
		b := &c.blocks[bi]
		for i := b.start; i < b.start+b.n; i++ {
			m.counts[i] += execs
		}
		m.blkExec[bi] = 0
	}
}

// Inline-friendly memory fast paths. Each computes the effective address
// and performs the bounds-checked access with no call overhead; on a
// bounds failure the caller re-runs the interpreter's load/store, which
// deterministically reproduces the exact fault. Kept tiny so the
// compiler inlines them into the closures.

func loadU64(m *Machine, ref isa.MemRef) (uint64, bool) {
	addr := m.GPR[ref.Base] + uint64(int64(ref.Disp))
	if ref.HasIndex {
		addr += m.GPR[ref.Index] * uint64(ref.Scale)
	}
	if addr+8 > uint64(len(m.Mem)) || addr+8 < addr {
		return 0, false
	}
	return binary.LittleEndian.Uint64(m.Mem[addr:]), true
}

func loadU32(m *Machine, ref isa.MemRef) (uint64, bool) {
	addr := m.GPR[ref.Base] + uint64(int64(ref.Disp))
	if ref.HasIndex {
		addr += m.GPR[ref.Index] * uint64(ref.Scale)
	}
	if addr+4 > uint64(len(m.Mem)) || addr+4 < addr {
		return 0, false
	}
	return uint64(binary.LittleEndian.Uint32(m.Mem[addr:])), true
}

// The store helpers return the effective address they computed so
// callers on tracked machines can mark the write without computing it a
// second time (the address is meaningless when ok is false).

func storeU64(m *Machine, ref isa.MemRef, v uint64) (uint64, bool) {
	addr := m.GPR[ref.Base] + uint64(int64(ref.Disp))
	if ref.HasIndex {
		addr += m.GPR[ref.Index] * uint64(ref.Scale)
	}
	if addr+8 > uint64(len(m.Mem)) || addr+8 < addr {
		return 0, false
	}
	binary.LittleEndian.PutUint64(m.Mem[addr:], v)
	return addr, true
}

func storeU32(m *Machine, ref isa.MemRef, v uint64) (uint64, bool) {
	addr := m.GPR[ref.Base] + uint64(int64(ref.Disp))
	if ref.HasIndex {
		addr += m.GPR[ref.Index] * uint64(ref.Scale)
	}
	if addr+4 > uint64(len(m.Mem)) || addr+4 < addr {
		return 0, false
	}
	binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
	return addr, true
}

// compileOp pre-decodes one straight-line instruction into a closure.
// Operand fields are resolved here, once, instead of on every execution;
// the captured *isa.Instr is only consulted on fault paths. Uncommon
// opcodes fall back to the shared stepFP executor — still closure
// dispatch, just without operand pre-decoding.
func compileOp(in *isa.Instr) microOp {
	switch in.Op {
	case isa.NOP:
		return func(*Machine) error { return nil }
	case isa.SYSCALL:
		return func(m *Machine) error { return m.syscall(in) }

	case isa.MOVRI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] = imm; return nil }
	case isa.MOVRR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] = m.GPR[src]; return nil }
	case isa.LOAD:
		dst, ref := in.A.Reg, in.B.Mem
		return func(m *Machine) error {
			v, ok := loadU64(m, ref)
			if !ok {
				_, err := m.load(in, ref, 8)
				return err
			}
			m.GPR[dst] = v
			return nil
		}
	case isa.STORE:
		ref, src := in.A.Mem, in.B.Reg
		return func(m *Machine) error {
			addr, ok := storeU64(m, ref, m.GPR[src])
			if !ok {
				return m.store(in, ref, m.GPR[src], 8)
			}
			if m.track != nil {
				m.track.markRange(addr, 8)
			}
			return nil
		}
	case isa.LEA:
		dst, ref := in.A.Reg, in.B.Mem
		return func(m *Machine) error { m.GPR[dst] = m.ea(ref); return nil }

	case isa.ADDR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] += m.GPR[src]; return nil }
	case isa.ADDI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] += imm; return nil }
	case isa.SUBR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] -= m.GPR[src]; return nil }
	case isa.SUBI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] -= imm; return nil }
	case isa.IMULR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			m.GPR[dst] = uint64(int64(m.GPR[dst]) * int64(m.GPR[src]))
			return nil
		}
	case isa.IMULI:
		dst, imm := in.A.Reg, in.B.Imm
		return func(m *Machine) error {
			m.GPR[dst] = uint64(int64(m.GPR[dst]) * imm)
			return nil
		}
	case isa.ANDR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] &= m.GPR[src]; return nil }
	case isa.ANDI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] &= imm; return nil }
	case isa.ORR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] |= m.GPR[src]; return nil }
	case isa.ORI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] |= imm; return nil }
	case isa.XORR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.GPR[dst] ^= m.GPR[src]; return nil }
	case isa.XORI:
		dst, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.GPR[dst] ^= imm; return nil }
	case isa.IDIVR:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			d := int64(m.GPR[src])
			if d == 0 {
				return m.fault(FaultMemOOB, in, "integer division by zero")
			}
			m.GPR[dst] = uint64(int64(m.GPR[dst]) / d)
			return nil
		}
	case isa.SHLI:
		dst, sh := in.A.Reg, uint64(in.B.Imm)&63
		return func(m *Machine) error { m.GPR[dst] <<= sh; return nil }
	case isa.SHRI:
		dst, sh := in.A.Reg, uint64(in.B.Imm)&63
		return func(m *Machine) error { m.GPR[dst] >>= sh; return nil }

	case isa.CMPR:
		a, bb := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.setCmp(m.GPR[a], m.GPR[bb]); return nil }
	case isa.CMPI:
		a, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.setCmp(m.GPR[a], imm); return nil }
	case isa.TESTR:
		a, bb := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.setTest(m.GPR[a] & m.GPR[bb]); return nil }
	case isa.TESTI:
		a, imm := in.A.Reg, uint64(in.B.Imm)
		return func(m *Machine) error { m.setTest(m.GPR[a] & imm); return nil }

	case isa.PUSH:
		src := in.A.Reg
		return func(m *Machine) error { return m.push64(in, m.GPR[src]) }
	case isa.POP:
		dst := in.A.Reg
		return func(m *Machine) error {
			v, err := m.pop64(in)
			if err != nil {
				return err
			}
			m.GPR[dst] = v
			return nil
		}
	case isa.PUSHX:
		src := in.A.Reg
		return func(m *Machine) error {
			sp := m.GPR[isa.RSP] - 16
			m.GPR[isa.RSP] = sp
			if sp+16 > uint64(len(m.Mem)) || sp+16 < sp {
				// Out of bounds somewhere: replay on the interpreter's
				// stores for the exact fault (the first may succeed and
				// mutate memory before the second faults, as in Step).
				if err := m.store(in, spMem(m), m.XMM[src][0], 8); err != nil {
					return err
				}
				return m.store(in, spMemOff(m, 8), m.XMM[src][1], 8)
			}
			binary.LittleEndian.PutUint64(m.Mem[sp:], m.XMM[src][0])
			binary.LittleEndian.PutUint64(m.Mem[sp+8:], m.XMM[src][1])
			if m.track != nil {
				m.track.markRange(sp, 16)
			}
			return nil
		}
	case isa.POPX:
		dst := in.A.Reg
		return func(m *Machine) error {
			sp := m.GPR[isa.RSP]
			if sp+16 > uint64(len(m.Mem)) || sp+16 < sp {
				lo, err := m.load(in, spMem(m), 8)
				if err != nil {
					return err
				}
				hi, err := m.load(in, spMemOff(m, 8), 8)
				if err != nil {
					return err
				}
				m.XMM[dst][0], m.XMM[dst][1] = lo, hi
				m.GPR[isa.RSP] += 16
				return nil
			}
			m.XMM[dst][0] = binary.LittleEndian.Uint64(m.Mem[sp:])
			m.XMM[dst][1] = binary.LittleEndian.Uint64(m.Mem[sp+8:])
			m.GPR[isa.RSP] = sp + 16
			return nil
		}

	case isa.MOVSD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			dst, src := in.A.Reg, in.B.Reg
			return func(m *Machine) error { m.XMM[dst][0] = m.XMM[src][0]; return nil }
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			dst, ref := in.A.Reg, in.B.Mem
			return func(m *Machine) error {
				v, ok := loadU64(m, ref)
				if !ok {
					_, err := m.load(in, ref, 8)
					return err
				}
				m.XMM[dst][0], m.XMM[dst][1] = v, 0
				return nil
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			ref, src := in.A.Mem, in.B.Reg
			return func(m *Machine) error {
				addr, ok := storeU64(m, ref, m.XMM[src][0])
				if !ok {
					return m.store(in, ref, m.XMM[src][0], 8)
				}
				if m.track != nil {
					m.track.markRange(addr, 8)
				}
				return nil
			}
		}
	case isa.MOVSS:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			dst, src := in.A.Reg, in.B.Reg
			return func(m *Machine) error { m.setLow32(dst, uint32(m.XMM[src][0])); return nil }
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			dst, ref := in.A.Reg, in.B.Mem
			return func(m *Machine) error {
				v, ok := loadU32(m, ref)
				if !ok {
					_, err := m.load(in, ref, 4)
					return err
				}
				m.XMM[dst][0], m.XMM[dst][1] = v, 0
				return nil
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			ref, src := in.A.Mem, in.B.Reg
			return func(m *Machine) error {
				addr, ok := storeU32(m, ref, m.XMM[src][0])
				if !ok {
					return m.store(in, ref, m.XMM[src][0], 4)
				}
				if m.track != nil {
					m.track.markRange(addr, 4)
				}
				return nil
			}
		}
	case isa.MOVAPD:
		switch {
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
			dst, src := in.A.Reg, in.B.Reg
			return func(m *Machine) error { m.XMM[dst] = m.XMM[src]; return nil }
		case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
			dst, ref := in.A.Reg, in.B.Mem
			refHi := ref
			refHi.Disp += 8
			return func(m *Machine) error {
				lo, ok := loadU64(m, ref)
				if !ok {
					_, err := m.load(in, ref, 8)
					return err
				}
				hi, ok := loadU64(m, refHi)
				if !ok {
					_, err := m.load(in, refHi, 8)
					return err
				}
				m.XMM[dst][0], m.XMM[dst][1] = lo, hi
				return nil
			}
		case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
			ref, src := in.A.Mem, in.B.Reg
			refHi := ref
			refHi.Disp += 8
			return func(m *Machine) error {
				// Marked half by half: the high store may fault after
				// the low one has already written.
				addr, ok := storeU64(m, ref, m.XMM[src][0])
				if !ok {
					return m.store(in, ref, m.XMM[src][0], 8)
				}
				if m.track != nil {
					m.track.markRange(addr, 8)
				}
				addr, ok = storeU64(m, refHi, m.XMM[src][1])
				if !ok {
					return m.store(in, refHi, m.XMM[src][1], 8)
				}
				if m.track != nil {
					m.track.markRange(addr, 8)
				}
				return nil
			}
		}
	case isa.MOVQ:
		if in.A.Kind == isa.KindGPR {
			dst, src := in.A.Reg, in.B.Reg
			return func(m *Machine) error { m.GPR[dst] = m.XMM[src][0]; return nil }
		}
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.XMM[dst][0] = m.GPR[src]; return nil }
	case isa.MOVHQ:
		if in.A.Kind == isa.KindGPR {
			dst, src := in.A.Reg, in.B.Reg
			return func(m *Machine) error { m.GPR[dst] = m.XMM[src][1]; return nil }
		}
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error { m.XMM[dst][1] = m.GPR[src]; return nil }

	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.MINSD, isa.MAXSD:
		op, dst := in.Op, in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				a := math.Float64frombits(m.XMM[dst][0])
				b := math.Float64frombits(m.XMM[src][0])
				m.XMM[dst][0] = math.Float64bits(arith64(op, a, b))
				return nil
			}
		}
		if in.B.Kind == isa.KindMem {
			ref := in.B.Mem
			return func(m *Machine) error {
				v, ok := loadU64(m, ref)
				if !ok {
					_, err := m.load(in, ref, 8)
					return err
				}
				a := math.Float64frombits(m.XMM[dst][0])
				m.XMM[dst][0] = math.Float64bits(arith64(op, a, math.Float64frombits(v)))
				return nil
			}
		}
	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS:
		op, dst := in.Op, in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				a := math.Float32frombits(uint32(m.XMM[dst][0]))
				b := math.Float32frombits(uint32(m.XMM[src][0]))
				m.setLow32(dst, math.Float32bits(arith32(op, a, b)))
				return nil
			}
		}
		if in.B.Kind == isa.KindMem {
			ref := in.B.Mem
			return func(m *Machine) error {
				v, ok := loadU32(m, ref)
				if !ok {
					_, err := m.load(in, ref, 4)
					return err
				}
				a := math.Float32frombits(uint32(m.XMM[dst][0]))
				m.setLow32(dst, math.Float32bits(arith32(op, a, math.Float32frombits(uint32(v)))))
				return nil
			}
		}
	case isa.SQRTSD:
		dst := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				m.XMM[dst][0] = math.Float64bits(math.Sqrt(math.Float64frombits(m.XMM[src][0])))
				return nil
			}
		}
	case isa.SQRTSS:
		dst := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				m.setLow32(dst, math.Float32bits(sqrt32(math.Float32frombits(uint32(m.XMM[src][0])))))
				return nil
			}
		}
	case isa.UCOMISD:
		a := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				m.setUcomi(math.Float64frombits(m.XMM[a][0]), math.Float64frombits(m.XMM[src][0]))
				return nil
			}
		}
		if in.B.Kind == isa.KindMem {
			ref := in.B.Mem
			return func(m *Machine) error {
				v, ok := loadU64(m, ref)
				if !ok {
					_, err := m.load(in, ref, 8)
					return err
				}
				m.setUcomi(math.Float64frombits(m.XMM[a][0]), math.Float64frombits(v))
				return nil
			}
		}
	case isa.UCOMISS:
		a := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				av := math.Float32frombits(uint32(m.XMM[a][0]))
				bv := math.Float32frombits(uint32(m.XMM[src][0]))
				m.setUcomi(float64(av), float64(bv))
				return nil
			}
		}
	case isa.CVTSD2SS:
		dst := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				m.setLow32(dst, math.Float32bits(float32(math.Float64frombits(m.XMM[src][0]))))
				return nil
			}
		}
	case isa.CVTSS2SD:
		dst := in.A.Reg
		if in.B.Kind == isa.KindXMM {
			src := in.B.Reg
			return func(m *Machine) error {
				m.XMM[dst][0] = math.Float64bits(float64(math.Float32frombits(uint32(m.XMM[src][0]))))
				return nil
			}
		}
	case isa.CVTSI2SD:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			m.XMM[dst][0] = math.Float64bits(float64(int64(m.GPR[src])))
			return nil
		}
	case isa.CVTTSD2SI:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			m.GPR[dst] = uint64(int64(math.Float64frombits(m.XMM[src][0])))
			return nil
		}
	case isa.CVTSI2SS:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			m.setLow32(dst, math.Float32bits(float32(int64(m.GPR[src]))))
			return nil
		}
	case isa.CVTTSS2SI:
		dst, src := in.A.Reg, in.B.Reg
		return func(m *Machine) error {
			m.GPR[dst] = uint64(int64(math.Float32frombits(uint32(m.XMM[src][0]))))
			return nil
		}
	}
	// Everything else (packed ops, bitwise XMM, transcendentals, memory
	// forms not specialized above, and any invalid operand combination)
	// executes through the shared FP interpreter, which faults exactly as
	// the per-step tier does.
	return func(m *Machine) error { return m.stepFP(in) }
}
