package vm

import (
	"errors"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// linked assembles instrs into a module and links it.
func linked(t *testing.T, instrs []isa.Instr) *Program {
	t.Helper()
	f := &prog.Func{Name: "main", Instrs: instrs}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

// linkedLoop builds a linked count-to-n loop with a real backward branch
// (same shape as inject_test's loopProgram, but linked).
func linkedLoop(t *testing.T, n int64) *Program {
	t.Helper()
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(0)), // 0
		isa.I(isa.ADDI, isa.Gpr(isa.RAX), isa.Imm(1)),  // 1: loop head
		isa.I(isa.CMPI, isa.Gpr(isa.RAX), isa.Imm(n)),  // 2
		isa.I(isa.JL, isa.Imm(0)),                      // 3: patched below
		isa.I(isa.HALT),                                // 4
	}}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	f.Instrs[3].A.Imm = int64(f.Instrs[1].Addr)
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestCompiledTierSelection(t *testing.T) {
	lp := linked(t, []isa.Instr{isa.I(isa.NOP), isa.I(isa.HALT)})
	m := lp.NewMachine()
	if !m.compiledTier() {
		t.Fatal("clean linked machine should select the compiled tier")
	}
	m.NoCompile = true
	if m.compiledTier() {
		t.Fatal("NoCompile must route to the instrumented tier")
	}
	m.NoCompile = false

	m.InjectTrapAfter(3)
	if m.compiledTier() {
		t.Fatal("an armed injected trap must route to the instrumented tier")
	}
	m.ClearInjected()

	m.TrapUnreplaced = true
	if m.compiledTier() {
		t.Fatal("TrapUnreplaced must route to the instrumented tier")
	}
	m.TrapUnreplaced = false

	m.EnableShadow()
	if m.compiledTier() {
		t.Fatal("shadow collection must route to the instrumented tier")
	}

	um := mach(t, []isa.Instr{isa.I(isa.NOP), isa.I(isa.HALT)})
	if um.compiledTier() {
		t.Fatal("vm.New machines have no compiled stream")
	}
}

// TestCompiledProgramShape sanity-checks the block partition of a linked
// loop: the backward branch target starts a block, the compiled stream
// covers every instruction exactly once, and per-block costs sum to the
// per-instruction table.
func TestCompiledProgramShape(t *testing.T) {
	lp := linkedLoop(t, 5)
	c := lp.compiled
	if c == nil || len(c.blocks) == 0 {
		t.Fatal("no compiled stream")
	}
	covered := make([]int, len(lp.instrs))
	var cost uint64
	for i := range c.blocks {
		b := &c.blocks[i]
		if !c.leader[b.start] {
			t.Errorf("block %d starts at non-leader %d", i, b.start)
		}
		for j := b.start; j < b.start+b.n; j++ {
			covered[j]++
		}
		cost += b.cost
	}
	var want uint64
	for _, ci := range lp.costs {
		want += ci
	}
	if cost != want {
		t.Errorf("summed block cost %d != instruction cost table %d", cost, want)
	}
	for i, n := range covered {
		if n != 1 {
			t.Errorf("instruction %d covered by %d blocks", i, n)
		}
	}
	// The loop head is a branch target and must lead a block.
	if !c.leader[1] {
		t.Error("backward branch target is not a block leader")
	}
}

// TestInjectedTrapExactOnLinkedRun proves the acceptance requirement
// that chaos arming keeps exact semantics under the new Run: an armed
// trap automatically routes to the instrumented tier and fires at the
// exact step count and PC the step-at-a-time interpreter produces.
func TestInjectedTrapExactOnLinkedRun(t *testing.T) {
	lp := linkedLoop(t, 50)
	for _, after := range []uint64{1, 2, 7, 42, 97} {
		m := lp.NewMachine()
		m.InjectTrapAfter(after)
		err := m.Run()
		var f *Fault
		if !errors.As(err, &f) || f.Kind != FaultInjected {
			t.Fatalf("after=%d: got %v, want injected fault", after, err)
		}

		// Reference: the same trap on a manual Step loop.
		ref := lp.NewMachine()
		ref.InjectTrapAfter(after)
		var rerr error
		for !ref.Halted() {
			if rerr = ref.Step(); rerr != nil {
				break
			}
		}
		var rf *Fault
		if !errors.As(rerr, &rf) {
			t.Fatalf("after=%d: reference did not fault", after)
		}
		if *f != *rf {
			t.Errorf("after=%d: fault mismatch: %+v vs %+v", after, f, rf)
		}
		if m.Steps != ref.Steps || m.PC() != ref.PC() {
			t.Errorf("after=%d: steps/pc mismatch: %d/%#x vs %d/%#x",
				after, m.Steps, m.PC(), ref.Steps, ref.PC())
		}
	}
}

// TestInjectedTrapAtSiteOnLinkedRun covers the by-address arming used by
// the MPI chaos harness: the n-th execution of a chosen site faults at
// exactly that site.
func TestInjectedTrapAtSiteOnLinkedRun(t *testing.T) {
	lp := linkedLoop(t, 50)
	addr := lp.instrs[2].Addr // the CMPI inside the loop
	m := lp.NewMachine()
	m.InjectTrapAt(addr, 13)
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultInjected {
		t.Fatalf("got %v, want injected fault", err)
	}
	if f.PC != addr || m.PC() != addr {
		t.Fatalf("trap at %#x, want %#x", f.PC, addr)
	}
	// 13th execution of the site: counts must show exactly 13.
	if got := m.Counts()[2]; got != 13 {
		t.Fatalf("site executed %d times at trap, want 13", got)
	}
}

// TestCompiledMaxStepsMidBlock expires budgets at every point of a run
// and checks the compiled tier faults at the same step and PC as the
// interpreter, including budgets landing inside fused blocks.
func TestCompiledMaxStepsMidBlock(t *testing.T) {
	lp := linkedLoop(t, 20)
	for max := uint64(1); max <= 85; max += 3 {
		a := lp.NewMachine()
		a.MaxSteps = max
		errA := a.Run()

		b := lp.NewMachine()
		b.NoCompile = true
		b.MaxSteps = max
		errB := b.Run()

		if (errA == nil) != (errB == nil) {
			t.Fatalf("max=%d: error mismatch: %v vs %v", max, errA, errB)
		}
		if errA != nil {
			fa, fb := errA.(*Fault), errB.(*Fault)
			if *fa != *fb {
				t.Errorf("max=%d: fault mismatch: %+v vs %+v", max, fa, fb)
			}
		}
		if a.Steps != b.Steps || a.PC() != b.PC() || a.Cycles != b.Cycles {
			t.Errorf("max=%d: state mismatch: steps %d/%d pc %#x/%#x cycles %d/%d",
				max, a.Steps, b.Steps, a.PC(), b.PC(), a.Cycles, b.Cycles)
		}
	}
}

// TestCompiledFallOffSegment checks the fall-off-the-code-segment fault
// is identical between tiers (PC of the last instruction, pcIdx past the
// end).
func TestCompiledFallOffSegment(t *testing.T) {
	lp := linked(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(7)),
		isa.I(isa.ADDI, isa.Gpr(isa.RAX), isa.Imm(1)),
	})
	a := lp.NewMachine()
	errA := a.Run()
	b := lp.NewMachine()
	b.NoCompile = true
	errB := b.Run()
	fa, okA := errA.(*Fault)
	fb, okB := errB.(*Fault)
	if !okA || !okB || fa.Kind != FaultBadPC {
		t.Fatalf("want bad-PC faults, got %v / %v", errA, errB)
	}
	if *fa != *fb {
		t.Fatalf("fault mismatch: %+v vs %+v", fa, fb)
	}
	if a.pcIdx != b.pcIdx || a.Steps != b.Steps {
		t.Fatalf("state mismatch: pcIdx %d/%d steps %d/%d", a.pcIdx, b.pcIdx, a.Steps, b.Steps)
	}
}
