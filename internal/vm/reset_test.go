package vm_test

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// runFresh executes the module on a brand-new unlinked machine.
func runFresh(t *testing.T, bench *kernels.Bench) *vm.Machine {
	t.Helper()
	m, err := vm.New(bench.Module)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = bench.MaxSteps
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

// assertSameRun compares the observable outcome of two completed runs.
func assertSameRun(t *testing.T, label string, want, got *vm.Machine) {
	t.Helper()
	if want.Steps != got.Steps {
		t.Errorf("%s: steps %d vs %d", label, want.Steps, got.Steps)
	}
	if want.Cycles != got.Cycles {
		t.Errorf("%s: cycles %d vs %d", label, want.Cycles, got.Cycles)
	}
	if len(want.Out) != len(got.Out) {
		t.Fatalf("%s: out lengths %d vs %d", label, len(want.Out), len(got.Out))
	}
	for i := range want.Out {
		if want.Out[i] != got.Out[i] {
			t.Errorf("%s: out[%d] = %v vs %v", label, i, want.Out[i], got.Out[i])
		}
	}
	wp, gp := want.Profile(), got.Profile()
	if len(wp) != len(gp) {
		t.Fatalf("%s: profile sizes %d vs %d", label, len(wp), len(gp))
	}
	for a, n := range wp {
		if gp[a] != n {
			t.Errorf("%s: profile[%#x] = %d vs %d", label, a, gp[a], n)
		}
	}
}

// TestResetIndistinguishableFromNew runs two kernels on one recycled
// machine — including a dirty crossover from a bigger program to a
// smaller one — and requires outcomes identical to fresh vm.New machines.
func TestResetIndistinguishableFromNew(t *testing.T) {
	mg, err := kernels.Get("mg", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := kernels.Get("ft", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}

	recycled := &vm.Machine{}
	for _, bench := range []*kernels.Bench{mg, ft, mg} {
		want := runFresh(t, bench)
		if err := recycled.Reset(bench.Module); err != nil {
			t.Fatal(err)
		}
		recycled.MaxSteps = bench.MaxSteps
		if err := recycled.Run(); err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, bench.Name, want, recycled)
	}
}

// TestResetInstrumentedRuns exercises Reset across instrumented modules
// (the search engine's usage pattern): alternating configurations of the
// same kernel on one pooled machine.
func TestResetInstrumentedRuns(t *testing.T) {
	bench, err := kernels.Get("ft", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	cands := bench.Module.Candidates()
	half := make(map[uint64]config.Precision)
	for i, a := range cands {
		if i%2 == 0 {
			half[a] = config.Single
		}
	}
	full := make(map[uint64]config.Precision)
	for _, a := range cands {
		full[a] = config.Single
	}
	recycled := &vm.Machine{}
	for _, eff := range []map[uint64]config.Precision{half, full, half} {
		inst, err := replace.InstrumentMap(bench.Module, eff, replace.InstrumentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := vm.New(inst)
		if err != nil {
			t.Fatal(err)
		}
		fresh.MaxSteps = bench.MaxSteps
		if err := fresh.Run(); err != nil {
			t.Fatal(err)
		}
		if err := recycled.Reset(inst); err != nil {
			t.Fatal(err)
		}
		recycled.MaxSteps = bench.MaxSteps
		if err := recycled.Run(); err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, "instrumented", fresh, recycled)
	}
}

// TestLinkedMachineMatchesNew asserts a Program-backed machine executes
// identically to an unlinked one, and that rewinding the same program
// (the Reset fast path) stays identical.
func TestLinkedMachineMatchesNew(t *testing.T) {
	bench, err := kernels.Get("cg", kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	want := runFresh(t, bench)
	lp, err := vm.Link(bench.Module)
	if err != nil {
		t.Fatal(err)
	}
	m := lp.NewMachine()
	for round := 0; round < 2; round++ {
		m.MaxSteps = bench.MaxSteps
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, "linked", want, m)
		if err := m.Reset(bench.Module); err != nil {
			t.Fatal(err)
		}
	}
}
