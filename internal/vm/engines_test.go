package vm

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fpmix/internal/hl"
)

// The compiled direct-threaded engine must be a pure speedup: for any
// program and any budget, the machine it produces is byte-identical to
// the per-step interpreter's — registers, flags, memory, outputs, Steps,
// Cycles, per-instruction counts, final PC and fault. These tests drive
// random structured programs (loops, branches, calls, array traffic,
// faulting integer division, tiny step budgets) through all three ways
// of executing a module and compare everything.

// engineResult snapshots a finished machine plus its run error.
type engineResult struct {
	m   *Machine
	err error
}

// runStepEngine executes m one Step at a time, replicating Run's budget
// semantics exactly (the "third engine" of the differential suite).
func runStepEngine(m *Machine) error {
	max := m.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	for !m.halted {
		if m.Steps >= max {
			return &Fault{Kind: FaultMaxSteps, PC: m.PC(), Detail: fmt.Sprintf("%d steps", m.Steps)}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// diffMachines reports every observable difference between two finished
// machines and their run errors.
func diffMachines(t *testing.T, label string, a, b engineResult) {
	t.Helper()
	am, bm := a.m, b.m
	if (a.err == nil) != (b.err == nil) {
		t.Errorf("%s: error mismatch: %v vs %v", label, a.err, b.err)
		return
	}
	if a.err != nil {
		fa, okA := a.err.(*Fault)
		fb, okB := b.err.(*Fault)
		if !okA || !okB {
			t.Errorf("%s: non-fault errors: %v vs %v", label, a.err, b.err)
		} else if *fa != *fb {
			t.Errorf("%s: fault mismatch: %+v vs %+v", label, fa, fb)
		}
	}
	if am.GPR != bm.GPR {
		t.Errorf("%s: GPR mismatch:\n  %v\n  %v", label, am.GPR, bm.GPR)
	}
	if am.XMM != bm.XMM {
		t.Errorf("%s: XMM mismatch", label)
	}
	if !bytes.Equal(am.Mem, bm.Mem) {
		t.Errorf("%s: memory image mismatch", label)
	}
	if am.Steps != bm.Steps || am.Cycles != bm.Cycles {
		t.Errorf("%s: Steps/Cycles mismatch: %d/%d vs %d/%d",
			label, am.Steps, am.Cycles, bm.Steps, bm.Cycles)
	}
	if am.pcIdx != bm.pcIdx || am.halted != bm.halted {
		t.Errorf("%s: pc/halted mismatch: %d/%v vs %d/%v",
			label, am.pcIdx, am.halted, bm.pcIdx, bm.halted)
	}
	if am.eq != bm.eq || am.ltS != bm.ltS || am.ltU != bm.ltU {
		t.Errorf("%s: flags mismatch", label)
	}
	if len(am.Out) != len(bm.Out) {
		t.Errorf("%s: output length mismatch: %d vs %d", label, len(am.Out), len(bm.Out))
	} else {
		for i := range am.Out {
			if am.Out[i] != bm.Out[i] {
				t.Errorf("%s: output %d mismatch: %+v vs %+v", label, i, am.Out[i], bm.Out[i])
			}
		}
	}
	ac, bc := am.Counts(), bm.Counts()
	if len(ac) != len(bc) {
		t.Errorf("%s: counts length mismatch", label)
		return
	}
	for i := range ac {
		if ac[i] != bc[i] {
			t.Errorf("%s: counts[%d] mismatch: %d vs %d", label, i, ac[i], bc[i])
		}
	}
}

// genFExpr builds a random float expression over the trial's variables.
func genFExpr(r *rand.Rand, vars []hl.FVar, ivars []hl.IVar, arr hl.FArr, depth int) hl.Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return hl.Const(math.Trunc(r.NormFloat64()*512) / 16)
		case 1:
			return hl.Load(vars[r.Intn(len(vars))])
		case 2:
			return hl.At(arr, hl.IConst(int64(r.Intn(8))))
		default:
			return hl.FromInt(hl.ILoad(ivars[r.Intn(len(ivars))]))
		}
	}
	a := genFExpr(r, vars, ivars, arr, depth-1)
	b := genFExpr(r, vars, ivars, arr, depth-1)
	switch r.Intn(8) {
	case 0:
		return hl.Add(a, b)
	case 1:
		return hl.Sub(a, b)
	case 2:
		return hl.Mul(a, b)
	case 3:
		return hl.Div(a, b)
	case 4:
		return hl.Min(a, b)
	case 5:
		return hl.Max(a, b)
	case 6:
		return hl.Sqrt(hl.Abs(a))
	default:
		return hl.Sin(a)
	}
}

// genIExprVM builds a random integer expression; IDiv is included so some
// trials fault with integer division by zero on all engines.
func genIExprVM(r *rand.Rand, ivars []hl.IVar, depth int) hl.IExpr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return hl.IConst(int64(r.Intn(64) - 8))
		}
		return hl.ILoad(ivars[r.Intn(len(ivars))])
	}
	a := genIExprVM(r, ivars, depth-1)
	b := genIExprVM(r, ivars, depth-1)
	switch r.Intn(6) {
	case 0:
		return hl.IAdd(a, b)
	case 1:
		return hl.ISub(a, b)
	case 2:
		return hl.IMul(a, b)
	case 3:
		return hl.IAnd(a, b)
	case 4:
		return hl.IDiv(a, b)
	default:
		return hl.IXor(a, b)
	}
}

// genStmts emits depth-bounded random statements into f.
func genStmts(r *rand.Rand, f *hl.FuncBuilder, vars []hl.FVar, ivars []hl.IVar,
	loopVars []hl.IVar, arr hl.FArr, hasSub bool, depth, n int) {
	for s := 0; s < n; s++ {
		switch r.Intn(8) {
		case 0:
			f.Set(vars[r.Intn(len(vars))], genFExpr(r, vars, ivars, arr, 2))
		case 1:
			f.Store(arr, hl.IConst(int64(r.Intn(8))), genFExpr(r, vars, ivars, arr, 2))
		case 2:
			f.SetI(ivars[r.Intn(len(ivars))], genIExprVM(r, ivars, 2))
		case 3:
			f.Out(genFExpr(r, vars, ivars, arr, 2))
		case 4:
			if depth > 0 {
				var els func()
				if r.Intn(2) == 0 {
					els = func() { genStmts(r, f, vars, ivars, loopVars, arr, hasSub, depth-1, 1+r.Intn(2)) }
				}
				c := randCond(r, vars, ivars, arr)
				f.If(c, func() {
					genStmts(r, f, vars, ivars, loopVars, arr, hasSub, depth-1, 1+r.Intn(2))
				}, els)
			}
		case 5:
			if depth > 0 && len(loopVars) > 0 {
				lv := loopVars[0]
				f.For(lv, hl.IConst(0), hl.IConst(int64(1+r.Intn(4))), func() {
					genStmts(r, f, vars, ivars, loopVars[1:], arr, hasSub, depth-1, 1+r.Intn(2))
				})
			}
		case 6:
			if depth > 0 && len(loopVars) > 0 {
				lv := loopVars[0]
				bound := int64(1 + r.Intn(4))
				f.SetI(lv, hl.IConst(0))
				f.While(hl.ILt(hl.ILoad(lv), hl.IConst(bound)), func() {
					genStmts(r, f, vars, ivars, loopVars[1:], arr, hasSub, depth-1, 1)
					f.SetI(lv, hl.IAdd(hl.ILoad(lv), hl.IConst(1)))
				})
			}
		default:
			if hasSub {
				f.Call("sub")
			} else {
				f.Out(genFExpr(r, vars, ivars, arr, 1))
			}
		}
	}
}

func randCond(r *rand.Rand, vars []hl.FVar, ivars []hl.IVar, arr hl.FArr) hl.Cond {
	if r.Intn(2) == 0 {
		a := genFExpr(r, vars, ivars, arr, 1)
		b := genFExpr(r, vars, ivars, arr, 1)
		switch r.Intn(4) {
		case 0:
			return hl.Lt(a, b)
		case 1:
			return hl.Le(a, b)
		case 2:
			return hl.Gt(a, b)
		default:
			return hl.Ge(a, b)
		}
	}
	a := genIExprVM(r, ivars, 1)
	b := genIExprVM(r, ivars, 1)
	switch r.Intn(4) {
	case 0:
		return hl.ILt(a, b)
	case 1:
		return hl.IEq(a, b)
	case 2:
		return hl.INe(a, b)
	default:
		return hl.IGe(a, b)
	}
}

// TestEnginesIdenticalOnRandomPrograms is the randomized differential
// suite from the issue: random hl programs under the compiled,
// instrumented (NoCompile) and manual-Step engines must produce
// byte-identical machines — including the trials whose tiny MaxSteps
// budget expires mid-block and the trials that fault on integer division.
func TestEnginesIdenticalOnRandomPrograms(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 40
	}
	r := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < trials; trial++ {
		p := hl.New("diff", hl.ModeF64)
		nv := 1 + r.Intn(3)
		vars := make([]hl.FVar, nv)
		for i := range vars {
			vars[i] = p.ScalarInit("v", math.Trunc(r.NormFloat64()*1024)/32)
		}
		ni := 1 + r.Intn(2)
		ivars := make([]hl.IVar, ni)
		for i := range ivars {
			ivars[i] = p.IntInit("k", int64(r.Intn(20)-4))
		}
		loopVars := []hl.IVar{p.Int("l0"), p.Int("l1")}
		av := make([]float64, 8)
		for i := range av {
			av[i] = math.Trunc(r.NormFloat64()*256) / 8
		}
		arr := p.ArrayInit("a", av)

		hasSub := r.Intn(2) == 0
		if hasSub {
			sub := p.Func("sub")
			genStmts(r, sub, vars, ivars, nil, arr, false, 0, 1+r.Intn(3))
			sub.Ret()
		}
		f := p.Func("main")
		genStmts(r, f, vars, ivars, loopVars, arr, hasSub, 2, 3+r.Intn(5))
		f.Halt()
		mod, err := p.Build("main")
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}

		var maxSteps uint64
		if trial%3 == 2 {
			// Tiny budgets land the expiry at arbitrary points inside
			// blocks, exercising the compiled tier's budget hand-off.
			maxSteps = uint64(1 + r.Intn(40))
		}

		lp, err := Link(mod)
		if err != nil {
			t.Fatalf("trial %d: link: %v", trial, err)
		}
		compiledM := lp.NewMachine()
		compiledM.MaxSteps = maxSteps
		compiled := engineResult{compiledM, compiledM.Run()}

		instrM := lp.NewMachine()
		instrM.NoCompile = true
		instrM.MaxSteps = maxSteps
		instrumented := engineResult{instrM, instrM.Run()}

		stepM, err := New(mod)
		if err != nil {
			t.Fatalf("trial %d: new: %v", trial, err)
		}
		stepM.MaxSteps = maxSteps
		stepped := engineResult{stepM, runStepEngine(stepM)}

		diffMachines(t, fmt.Sprintf("trial %d (max=%d): compiled vs instrumented", trial, maxSteps), compiled, instrumented)
		diffMachines(t, fmt.Sprintf("trial %d (max=%d): compiled vs step", trial, maxSteps), compiled, stepped)
		if t.Failed() {
			t.Fatalf("trial %d: stopping at first divergence", trial)
		}
	}
}

// TestEnginesIdenticalMidBlockEntry enters the compiled engine from the
// middle of a basic block (partial manual Steps before Run), which must
// still converge to the identical final machine.
func TestEnginesIdenticalMidBlockEntry(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := hl.New("mid", hl.ModeF64)
		v := p.ScalarInit("v", 1.5)
		i := p.Int("i")
		f := p.Func("main")
		f.For(i, hl.IConst(0), hl.IConst(5), func() {
			f.Set(v, hl.Add(hl.Load(v), hl.Const(0.25)))
			f.Set(v, hl.Mul(hl.Load(v), hl.Const(1.0625)))
		})
		f.Out(hl.Load(v))
		f.Halt()
		mod, err := p.Build("main")
		if err != nil {
			t.Fatal(err)
		}
		lp, err := Link(mod)
		if err != nil {
			t.Fatal(err)
		}
		pre := r.Intn(12)

		a := lp.NewMachine()
		for s := 0; s < pre; s++ {
			if err := a.Step(); err != nil {
				t.Fatal(err)
			}
		}
		ra := engineResult{a, a.Run()}

		b := lp.NewMachine()
		b.NoCompile = true
		for s := 0; s < pre; s++ {
			if err := b.Step(); err != nil {
				t.Fatal(err)
			}
		}
		rb := engineResult{b, b.Run()}

		diffMachines(t, fmt.Sprintf("trial %d (pre=%d)", trial, pre), ra, rb)
	}
}
