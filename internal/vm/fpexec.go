package vm

import (
	"math"

	"fpmix/internal/isa"
)

// stepFP executes floating-point and XMM data-movement instructions.
func (m *Machine) stepFP(in *isa.Instr) error {
	if m.TrapUnreplaced && isa.ConsumesFP(in.Op) {
		if err := m.checkUnreplaced(in); err != nil {
			return err
		}
	}

	switch in.Op {
	case isa.MOVSD:
		return m.mov64(in)
	case isa.MOVSS:
		return m.mov32(in)
	case isa.MOVAPD:
		return m.mov128(in)
	case isa.MOVQ:
		// Lane-0 transfer between XMM and GPR; the XMM-destination form
		// preserves lane 1 (PINSRQ-style), which replacement snippets rely
		// on to avoid clobbering live packed data.
		if in.A.Kind == isa.KindGPR {
			m.GPR[in.A.Reg] = m.XMM[in.B.Reg][0]
		} else {
			m.XMM[in.A.Reg][0] = m.GPR[in.B.Reg]
		}
		return nil
	case isa.MOVHQ:
		if in.A.Kind == isa.KindGPR {
			m.GPR[in.A.Reg] = m.XMM[in.B.Reg][1]
		} else {
			m.XMM[in.A.Reg][1] = m.GPR[in.B.Reg]
		}
		return nil

	case isa.ANDPD, isa.ORPD, isa.XORPD:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		x := &m.XMM[in.A.Reg]
		switch in.Op {
		case isa.ANDPD:
			x[0] &= lo
			x[1] &= hi
		case isa.ORPD:
			x[0] |= lo
			x[1] |= hi
		default:
			x[0] ^= lo
			x[1] ^= hi
		}
		return nil

	case isa.ADDSD, isa.SUBSD, isa.MULSD, isa.DIVSD, isa.MINSD, isa.MAXSD:
		b, err := m.srcF64(in)
		if err != nil {
			return err
		}
		a := math.Float64frombits(m.XMM[in.A.Reg][0])
		m.XMM[in.A.Reg][0] = math.Float64bits(arith64(in.Op, a, b))
		return nil
	case isa.SQRTSD:
		b, err := m.srcF64(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0] = math.Float64bits(math.Sqrt(b))
		return nil
	case isa.SINSD, isa.COSSD, isa.EXPSD, isa.LOGSD:
		b, err := m.srcF64(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0] = math.Float64bits(transc64(in.Op, b))
		return nil
	case isa.UCOMISD:
		b, err := m.srcF64(in)
		if err != nil {
			return err
		}
		m.setUcomi(math.Float64frombits(m.XMM[in.A.Reg][0]), b)
		return nil

	case isa.CVTSD2SS:
		b, err := m.srcF64(in)
		if err != nil {
			return err
		}
		m.setLow32(in.A.Reg, math.Float32bits(float32(b)))
		return nil
	case isa.CVTSS2SD:
		b, err := m.srcF32(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0] = math.Float64bits(float64(b))
		return nil
	case isa.CVTSI2SD:
		m.XMM[in.A.Reg][0] = math.Float64bits(float64(int64(m.GPR[in.B.Reg])))
		return nil
	case isa.CVTTSD2SI:
		b := math.Float64frombits(m.XMM[in.B.Reg][0])
		m.GPR[in.A.Reg] = uint64(int64(b))
		return nil
	case isa.CVTSI2SS:
		m.setLow32(in.A.Reg, math.Float32bits(float32(int64(m.GPR[in.B.Reg]))))
		return nil
	case isa.CVTTSS2SI:
		b := math.Float32frombits(uint32(m.XMM[in.B.Reg][0]))
		m.GPR[in.A.Reg] = uint64(int64(b))
		return nil

	case isa.ADDSS, isa.SUBSS, isa.MULSS, isa.DIVSS, isa.MINSS, isa.MAXSS:
		b, err := m.srcF32(in)
		if err != nil {
			return err
		}
		a := math.Float32frombits(uint32(m.XMM[in.A.Reg][0]))
		m.setLow32(in.A.Reg, math.Float32bits(arith32(in.Op, a, b)))
		return nil
	case isa.SQRTSS:
		b, err := m.srcF32(in)
		if err != nil {
			return err
		}
		m.setLow32(in.A.Reg, math.Float32bits(sqrt32(b)))
		return nil
	case isa.SINSS, isa.COSSS, isa.EXPSS, isa.LOGSS:
		b, err := m.srcF32(in)
		if err != nil {
			return err
		}
		m.setLow32(in.A.Reg, math.Float32bits(transc32(in.Op, b)))
		return nil
	case isa.UCOMISS:
		b, err := m.srcF32(in)
		if err != nil {
			return err
		}
		a := math.Float32frombits(uint32(m.XMM[in.A.Reg][0]))
		m.setUcomi(float64(a), float64(b))
		return nil

	case isa.ADDPD, isa.SUBPD, isa.MULPD, isa.DIVPD:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		x := &m.XMM[in.A.Reg]
		base := packedBase(in.Op)
		x[0] = math.Float64bits(arith64(base, math.Float64frombits(x[0]), math.Float64frombits(lo)))
		x[1] = math.Float64bits(arith64(base, math.Float64frombits(x[1]), math.Float64frombits(hi)))
		return nil
	case isa.SQRTPD:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0] = math.Float64bits(math.Sqrt(math.Float64frombits(lo)))
		m.XMM[in.A.Reg][1] = math.Float64bits(math.Sqrt(math.Float64frombits(hi)))
		return nil

	case isa.ADDPS, isa.SUBPS, isa.MULPS, isa.DIVPS:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		x := &m.XMM[in.A.Reg]
		base := packedBase(in.Op)
		x[0] = ps2(base, x[0], lo)
		x[1] = ps2(base, x[1], hi)
		return nil
	case isa.SQRTPS:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0] = psSqrt(lo)
		m.XMM[in.A.Reg][1] = psSqrt(hi)
		return nil
	}
	return m.fault(FaultBadPC, in, "unimplemented opcode")
}

// setLow32 writes the low 32 bits of lane 0, preserving all other bits —
// the x86 scalar-single merge semantics the replacement flag scheme
// depends on.
func (m *Machine) setLow32(reg uint8, v uint32) {
	m.XMM[reg][0] = m.XMM[reg][0]&^0xFFFFFFFF | uint64(v)
}

// srcF64 fetches the 64-bit source operand (XMM lane 0 or 8-byte memory).
func (m *Machine) srcF64(in *isa.Instr) (float64, error) {
	switch in.B.Kind {
	case isa.KindXMM:
		return math.Float64frombits(m.XMM[in.B.Reg][0]), nil
	case isa.KindMem:
		v, err := m.load(in, in.B.Mem, 8)
		if err != nil {
			return 0, err
		}
		return math.Float64frombits(v), nil
	}
	return 0, m.fault(FaultBadPC, in, "bad FP source operand")
}

// srcF32 fetches the 32-bit source operand (low bits of XMM lane 0 or
// 4-byte memory).
func (m *Machine) srcF32(in *isa.Instr) (float32, error) {
	switch in.B.Kind {
	case isa.KindXMM:
		return math.Float32frombits(uint32(m.XMM[in.B.Reg][0])), nil
	case isa.KindMem:
		v, err := m.load(in, in.B.Mem, 4)
		if err != nil {
			return 0, err
		}
		return math.Float32frombits(uint32(v)), nil
	}
	return 0, m.fault(FaultBadPC, in, "bad FP source operand")
}

// src128 fetches a full 128-bit source (XMM or 16-byte memory).
func (m *Machine) src128(in *isa.Instr) (lo, hi uint64, err error) {
	switch in.B.Kind {
	case isa.KindXMM:
		return m.XMM[in.B.Reg][0], m.XMM[in.B.Reg][1], nil
	case isa.KindMem:
		lo, err = m.load(in, in.B.Mem, 8)
		if err != nil {
			return 0, 0, err
		}
		off := in.B.Mem
		off.Disp += 8
		hi, err = m.load(in, off, 8)
		return lo, hi, err
	}
	return 0, 0, m.fault(FaultBadPC, in, "bad FP source operand")
}

func (m *Machine) mov64(in *isa.Instr) error {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
		m.XMM[in.A.Reg][0] = m.XMM[in.B.Reg][0]
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		v, err := m.load(in, in.B.Mem, 8)
		if err != nil {
			return err
		}
		// Load form zeroes the upper lane, as on x86.
		m.XMM[in.A.Reg][0], m.XMM[in.A.Reg][1] = v, 0
	case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
		return m.store(in, in.A.Mem, m.XMM[in.B.Reg][0], 8)
	default:
		return m.fault(FaultBadPC, in, "bad movsd operands")
	}
	return nil
}

func (m *Machine) mov32(in *isa.Instr) error {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
		m.setLow32(in.A.Reg, uint32(m.XMM[in.B.Reg][0]))
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		v, err := m.load(in, in.B.Mem, 4)
		if err != nil {
			return err
		}
		// Load form zeroes bits 32..127, as on x86.
		m.XMM[in.A.Reg][0], m.XMM[in.A.Reg][1] = v, 0
	case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
		return m.store(in, in.A.Mem, m.XMM[in.B.Reg][0], 4)
	default:
		return m.fault(FaultBadPC, in, "bad movss operands")
	}
	return nil
}

func (m *Machine) mov128(in *isa.Instr) error {
	switch {
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindXMM:
		m.XMM[in.A.Reg] = m.XMM[in.B.Reg]
	case in.A.Kind == isa.KindXMM && in.B.Kind == isa.KindMem:
		lo, hi, err := m.src128(in)
		if err != nil {
			return err
		}
		m.XMM[in.A.Reg][0], m.XMM[in.A.Reg][1] = lo, hi
	case in.A.Kind == isa.KindMem && in.B.Kind == isa.KindXMM:
		if err := m.store(in, in.A.Mem, m.XMM[in.B.Reg][0], 8); err != nil {
			return err
		}
		off := in.A.Mem
		off.Disp += 8
		return m.store(in, off, m.XMM[in.B.Reg][1], 8)
	default:
		return m.fault(FaultBadPC, in, "bad movapd operands")
	}
	return nil
}

// checkUnreplaced faults if any floating-point input of the candidate
// instruction carries the replacement flag.
func (m *Machine) checkUnreplaced(in *isa.Instr) error {
	check := func(bits uint64, what string) error {
		if uint32(bits>>32) == isa.ReplacedFlag {
			return m.fault(FaultUnreplacedInput, in, what)
		}
		return nil
	}
	packed := isa.IsPacked(in.Op)
	if isa.DstIsSource(in.Op) && in.A.Kind == isa.KindXMM {
		if err := check(m.XMM[in.A.Reg][0], "dst lane0"); err != nil {
			return err
		}
		if packed {
			if err := check(m.XMM[in.A.Reg][1], "dst lane1"); err != nil {
				return err
			}
		}
	}
	switch in.B.Kind {
	case isa.KindXMM:
		if err := check(m.XMM[in.B.Reg][0], "src lane0"); err != nil {
			return err
		}
		if packed {
			if err := check(m.XMM[in.B.Reg][1], "src lane1"); err != nil {
				return err
			}
		}
	case isa.KindMem:
		if v, err := m.load(in, in.B.Mem, 8); err == nil {
			if err := check(v, "src mem"); err != nil {
				return err
			}
		}
	}
	return nil
}

func arith64(op isa.Op, a, b float64) float64 {
	switch op {
	case isa.ADDSD:
		return a + b
	case isa.SUBSD:
		return a - b
	case isa.MULSD:
		return a * b
	case isa.DIVSD:
		return a / b
	case isa.MINSD:
		// x86 semantics: return b on NaN or equality.
		if a < b {
			return a
		}
		return b
	default: // MAXSD
		if a > b {
			return a
		}
		return b
	}
}

func arith32(op isa.Op, a, b float32) float32 {
	switch op {
	case isa.ADDSS:
		return a + b
	case isa.SUBSS:
		return a - b
	case isa.MULSS:
		return a * b
	case isa.DIVSS:
		return a / b
	case isa.MINSS:
		if a < b {
			return a
		}
		return b
	default: // MAXSS
		if a > b {
			return a
		}
		return b
	}
}

func sqrt32(b float32) float32 {
	return float32(math.Sqrt(float64(b)))
}

func transc64(op isa.Op, b float64) float64 {
	switch op {
	case isa.SINSD:
		return math.Sin(b)
	case isa.COSSD:
		return math.Cos(b)
	case isa.EXPSD:
		return math.Exp(b)
	default: // LOGSD
		return math.Log(b)
	}
}

func transc32(op isa.Op, b float32) float32 {
	switch op {
	case isa.SINSS:
		return float32(math.Sin(float64(b)))
	case isa.COSSS:
		return float32(math.Cos(float64(b)))
	case isa.EXPSS:
		return float32(math.Exp(float64(b)))
	default: // LOGSS
		return float32(math.Log(float64(b)))
	}
}

// packedBase maps a packed opcode to the scalar opcode implementing its
// per-lane operation.
func packedBase(op isa.Op) isa.Op {
	switch op {
	case isa.ADDPD:
		return isa.ADDSD
	case isa.SUBPD:
		return isa.SUBSD
	case isa.MULPD:
		return isa.MULSD
	case isa.DIVPD:
		return isa.DIVSD
	case isa.ADDPS:
		return isa.ADDSS
	case isa.SUBPS:
		return isa.SUBSS
	case isa.MULPS:
		return isa.MULSS
	case isa.DIVPS:
		return isa.DIVSS
	}
	return op
}

// ps2 applies a 32-bit lane operation to both halves of one 64-bit lane.
func ps2(base isa.Op, a, b uint64) uint64 {
	lo := arith32(ssFromSd(base), math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b)))
	hi := arith32(ssFromSd(base), math.Float32frombits(uint32(a>>32)), math.Float32frombits(uint32(b>>32)))
	return uint64(math.Float32bits(lo)) | uint64(math.Float32bits(hi))<<32
}

func psSqrt(b uint64) uint64 {
	lo := sqrt32(math.Float32frombits(uint32(b)))
	hi := sqrt32(math.Float32frombits(uint32(b >> 32)))
	return uint64(math.Float32bits(lo)) | uint64(math.Float32bits(hi))<<32
}

// ssFromSd maps a scalar-double opcode to its scalar-single twin for lane
// helpers (identity for already-single opcodes).
func ssFromSd(op isa.Op) isa.Op {
	if s, ok := isa.SingleEquivalent(op); ok {
		return s
	}
	return op
}
