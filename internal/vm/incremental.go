package vm

import (
	"fmt"
	"sort"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Incremental linking over a stable slotted layout.
//
// Link spends almost all of its time creating the pre-decoded closures of
// the compiled tier — work that depends only on instruction content and
// address, both of which the stable layout holds constant across every
// configuration of a search. An IncrementalLinker therefore compiles each
// shared code segment and each (site, variant) fragment exactly once, and
// Assemble splices a full Program for a given variant choice out of the
// cached pieces: instruction, cost and micro-op arrays are concatenated,
// branch targets are re-based from pre-resolved (unit, offset) pairs, and
// the block stream is rebuilt from the cached closures. Only the sites
// whose variant differs from a previous assembly contribute new content —
// everything else is a copy of immutable cache — so assembling a sibling
// configuration is two orders of magnitude cheaper than a full Link.
//
// The skeleton module handed to NewIncrementalLinker comes from a slotted
// rewrite (cfg.RewriteSlotted): it deliberately fails prog.Validate when a
// slot has a tail gap, so the linker performs its own structural checks and
// never validates. Execution never reaches a gap because the machine
// advances by instruction index, not address.

// IncrementalSite is one replacement site of the stable layout, with every
// variant's relocated instruction sequence. Variants[0] must match what
// the skeleton module holds at the slot; a nil variant is unavailable and
// selecting it is an Assemble error.
type IncrementalSite struct {
	Addr     uint64 // slot base address
	Variants [][]isa.Instr
}

// ilBranch is a pre-resolved branch: instruction `local` of its fragment
// targets instruction `tlocal` of unit `unit` (-1 when the target is not a
// static instruction of the layout — execution then faults through the
// slow path, exactly as a fully linked program does).
type ilBranch struct {
	local  int32
	unit   int32
	tlocal int32
}

// ilFrag is one compiled cache fragment: an immutable instruction sequence
// with its per-instruction costs, pre-decoded micro-ops and pre-resolved
// branches.
type ilFrag struct {
	instrs   []isa.Instr
	costs    []uint64
	ops      []microOp
	branches []ilBranch
}

func (f *ilFrag) compile() {
	f.costs = make([]uint64, len(f.instrs))
	f.ops = make([]microOp, len(f.instrs))
	for i := range f.instrs {
		f.costs[i] = cost(&f.instrs[i])
		f.ops[i] = compileOp(&f.instrs[i])
	}
}

// ilUnit is one interleaving unit of the layout: a shared segment or a
// replacement site (with one fragment per variant).
type ilUnit struct {
	site     int      // site index, or -1 for a shared segment
	frag     ilFrag   // segments only
	variants []ilFrag // sites only; nil instrs = unavailable variant
}

// IncrementalLinker assembles Programs of a stable slotted layout from
// cached compiled fragments. It is immutable after construction and safe
// for concurrent Assemble calls.
type IncrementalLinker struct {
	mod        *prog.Module
	units      []ilUnit
	sites      int
	entryUnit  int32
	entryLocal int32
}

type ilLoc struct {
	unit  int32
	local int32
}

// NewIncrementalLinker builds the fragment cache for a skeleton module and
// its site table (both from a slotted rewrite; sites must be in address
// order and the skeleton must hold each site's variant 0).
func NewIncrementalLinker(skeleton *prog.Module, sites []IncrementalSite) (*IncrementalLinker, error) {
	if skeleton.MemSize == 0 {
		return nil, fmt.Errorf("vm: incremental link: zero MemSize")
	}
	if prog.DataBase+uint64(len(skeleton.Data)) > skeleton.MemSize {
		return nil, fmt.Errorf("vm: incremental link: data segment exceeds MemSize")
	}
	flat := skeleton.Instructions()
	for i := 1; i < len(flat); i++ {
		if flat[i].Addr <= flat[i-1].Addr {
			return nil, fmt.Errorf("vm: incremental link: instruction addresses not strictly increasing at %#x", flat[i].Addr)
		}
	}
	il := &IncrementalLinker{mod: skeleton, sites: len(sites)}

	// Carve the flattened stream into segment and site units.
	pos := 0
	for si, s := range sites {
		if len(s.Variants) == 0 || len(s.Variants[0]) == 0 {
			return nil, fmt.Errorf("vm: incremental link: site %#x has no variant 0", s.Addr)
		}
		start := pos + sort.Search(len(flat)-pos, func(i int) bool { return flat[pos+i].Addr >= s.Addr })
		if start >= len(flat) || flat[start].Addr != s.Addr {
			return nil, fmt.Errorf("vm: incremental link: site %#x not in skeleton", s.Addr)
		}
		n0 := len(s.Variants[0])
		if start+n0 > len(flat) {
			return nil, fmt.Errorf("vm: incremental link: site %#x variant 0 runs past the skeleton", s.Addr)
		}
		if start > pos {
			il.units = append(il.units, ilUnit{site: -1, frag: ilFrag{
				instrs: append([]isa.Instr(nil), flat[pos:start]...),
			}})
		}
		u := ilUnit{site: si, variants: make([]ilFrag, len(s.Variants))}
		for v, seq := range s.Variants {
			if seq == nil {
				continue
			}
			u.variants[v] = ilFrag{instrs: append([]isa.Instr(nil), seq...)}
		}
		il.units = append(il.units, u)
		pos = start + n0
	}
	if pos < len(flat) {
		il.units = append(il.units, ilUnit{site: -1, frag: ilFrag{
			instrs: append([]isa.Instr(nil), flat[pos:]...),
		}})
	}

	// Compile every fragment and index the variant-independent addresses:
	// all segment instructions plus each site's slot head. Mid-slot
	// addresses are variant-local and resolve only within their own
	// fragment.
	locs := make(map[uint64]ilLoc, len(flat))
	for ui := range il.units {
		u := &il.units[ui]
		if u.site < 0 {
			u.frag.compile()
			for i := range u.frag.instrs {
				locs[u.frag.instrs[i].Addr] = ilLoc{unit: int32(ui), local: int32(i)}
			}
			continue
		}
		for v := range u.variants {
			if u.variants[v].instrs == nil {
				continue
			}
			u.variants[v].compile()
		}
		locs[sites[u.site].Addr] = ilLoc{unit: int32(ui), local: 0}
	}
	resolve := func(ui int, f *ilFrag) {
		for i := range f.instrs {
			in := &f.instrs[i]
			if !in.Op.IsBranch() {
				continue
			}
			b := ilBranch{local: int32(i), unit: -1}
			t := uint64(in.A.Imm)
			if loc, ok := locs[t]; ok {
				b.unit, b.tlocal = loc.unit, loc.local
			} else {
				// A snippet-internal label target: scan the fragment.
				for j := range f.instrs {
					if f.instrs[j].Addr == t {
						b.unit, b.tlocal = int32(ui), int32(j)
						break
					}
				}
			}
			f.branches = append(f.branches, b)
		}
	}
	for ui := range il.units {
		u := &il.units[ui]
		if u.site < 0 {
			resolve(ui, &u.frag)
			continue
		}
		for v := range u.variants {
			if u.variants[v].instrs != nil {
				resolve(ui, &u.variants[v])
			}
		}
	}

	eloc, ok := locs[skeleton.Entry]
	if !ok {
		return nil, fmt.Errorf("vm: incremental link: entry %#x is not an instruction", skeleton.Entry)
	}
	il.entryUnit, il.entryLocal = eloc.unit, eloc.local
	return il, nil
}

// Sites returns the number of replacement sites of the layout.
func (il *IncrementalLinker) Sites() int { return il.sites }

// Module returns the skeleton module; every assembled Program reports it
// as its module (same entry, data segment and memory size by
// construction).
func (il *IncrementalLinker) Module() *prog.Module { return il.mod }

// Assemble splices the Program selecting variant choices[k] for site k.
// The result behaves exactly like vm.Link of the equivalently instrumented
// module — same verdicts, outputs and accounting — with the stable slotted
// address map shared by every assembly.
func (il *IncrementalLinker) Assemble(choices []int) (*Program, error) {
	if len(choices) != il.sites {
		return nil, fmt.Errorf("vm: assemble: %d choices for %d sites", len(choices), il.sites)
	}
	// Pass 1: pick fragments, lay out unit start indices. Slot bases
	// become extra block leaders of the compiled stream so a breakpoint
	// stop at any site (the fork-point donor pass arms one at every
	// candidate slot) is served from the compiled tier's dispatch loop.
	frags := make([]*ilFrag, len(il.units))
	starts := make([]int32, len(il.units)+1)
	slotLeaders := make([]int32, 0, il.sites)
	n := int32(0)
	for ui := range il.units {
		u := &il.units[ui]
		f := &u.frag
		if u.site >= 0 {
			v := choices[u.site]
			if v < 0 || v >= len(u.variants) || u.variants[v].instrs == nil {
				return nil, fmt.Errorf("vm: assemble: site %d has no variant %d", u.site, v)
			}
			f = &u.variants[v]
			slotLeaders = append(slotLeaders, n)
		}
		frags[ui] = f
		starts[ui] = n
		n += int32(len(f.instrs))
	}
	starts[len(il.units)] = n

	// Pass 2: concatenate the cached arrays and re-base branch targets.
	instrs := make([]isa.Instr, n)
	costs := make([]uint64, n)
	ops := make([]microOp, n)
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = -1
	}
	for ui, f := range frags {
		base := starts[ui]
		copy(instrs[base:], f.instrs)
		copy(costs[base:], f.costs)
		copy(ops[base:], f.ops)
		for _, b := range f.branches {
			if b.unit >= 0 {
				targets[base+b.local] = starts[b.unit] + b.tlocal
			}
		}
	}

	lp := &Program{
		mod:     il.mod,
		instrs:  instrs,
		entry:   starts[il.entryUnit] + il.entryLocal,
		targets: targets,
		costs:   costs,
	}
	lp.compiled = compileProgramWith(lp, func(i int) microOp { return ops[i] }, slotLeaders)
	return lp, nil
}
