package vm

import (
	"math"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Supplementary coverage for FP instruction semantics not exercised by
// the compiler-generated tests: bitwise XMM ops, 128-bit memory moves,
// scalar-single forms, and x86 min/max NaN behavior.

func TestBitwiseXmmOps(t *testing.T) {
	mask := int64(0x7FFFFFFFFFFFFFFF)
	neg := math.Float64bits(-3.5)
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(neg))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVHQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R14), isa.Imm(mask)),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R14)),
		isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R14)),
		isa.I(isa.ANDPD, isa.Xmm(0), isa.Xmm(1)), // fabs both lanes
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if got := math.Float64frombits(m.XMM[0][0]); got != 3.5 {
		t.Errorf("andpd lane0 = %v", got)
	}
	if got := math.Float64frombits(m.XMM[0][1]); got != 3.5 {
		t.Errorf("andpd lane1 = %v", got)
	}

	// XORPD with self zeroes; ORPD merges bits.
	instrs2 := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(math.Float64bits(7.25)))),
		isa.I(isa.MOVQ, isa.Xmm(2), isa.Gpr(isa.R15)),
		isa.I(isa.XORPD, isa.Xmm(2), isa.Xmm(2)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(0x55)),
		isa.I(isa.MOVQ, isa.Xmm(3), isa.Gpr(isa.R15)),
		isa.I(isa.ORPD, isa.Xmm(2), isa.Xmm(3)),
		isa.I(isa.HALT),
	}
	m2 := run(t, instrs2)
	if m2.XMM[2][0] != 0x55 || m2.XMM[2][1] != 0 {
		t.Errorf("xorpd/orpd = %#x, %#x", m2.XMM[2][0], m2.XMM[2][1])
	}
}

func TestMovapdMemoryForms(t *testing.T) {
	base := int64(prog.DataBase)
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(math.Float64bits(1.5)))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(math.Float64bits(2.5)))),
		isa.I(isa.MOVHQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVAPD, isa.Mem(isa.RBX, 16), isa.Xmm(0)), // store 128
		isa.I(isa.MOVAPD, isa.Xmm(5), isa.Mem(isa.RBX, 16)), // load 128
		isa.I(isa.MOVAPD, isa.Xmm(6), isa.Xmm(5)),           // reg-reg
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if math.Float64frombits(m.XMM[6][0]) != 1.5 || math.Float64frombits(m.XMM[6][1]) != 2.5 {
		t.Errorf("movapd round trip = %v, %v",
			math.Float64frombits(m.XMM[6][0]), math.Float64frombits(m.XMM[6][1]))
	}
}

func TestMovssForms(t *testing.T) {
	base := int64(prog.DataBase)
	bits := int64(math.Float32bits(9.75))
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(bits)),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVSS, isa.Mem(isa.RBX, 4), isa.Xmm(0)), // 4-byte store
		// Dirty target register, then 4-byte load: zeroes bits 32..127.
		isa.I(isa.MOVRI, isa.Gpr(isa.R14), isa.Imm(-1)),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R14)),
		isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R14)),
		isa.I(isa.MOVSS, isa.Xmm(1), isa.Mem(isa.RBX, 4)),
		// reg-reg merges only the low 32 bits.
		isa.I(isa.MOVQ, isa.Xmm(2), isa.Gpr(isa.R14)),
		isa.I(isa.MOVSS, isa.Xmm(2), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if m.XMM[1][0] != uint64(uint32(bits)) || m.XMM[1][1] != 0 {
		t.Errorf("movss load = %#x, %#x", m.XMM[1][0], m.XMM[1][1])
	}
	wantMerge := uint64(0xFFFFFFFF00000000) | uint64(uint32(bits))
	if m.XMM[2][0] != wantMerge {
		t.Errorf("movss reg-reg = %#x, want %#x", m.XMM[2][0], wantMerge)
	}
}

func TestScalarSingleConversions(t *testing.T) {
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(-9)),
		isa.I(isa.CVTSI2SS, isa.Xmm(0), isa.Gpr(isa.RAX)),
		isa.I(isa.CVTTSS2SI, isa.Gpr(isa.RBX), isa.Xmm(0)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if got := math.Float32frombits(uint32(m.XMM[0][0])); got != -9 {
		t.Errorf("cvtsi2ss = %v", got)
	}
	if int64(m.GPR[isa.RBX]) != -9 {
		t.Errorf("cvttss2si = %d", int64(m.GPR[isa.RBX]))
	}
}

func TestMinMaxX86NaNSemantics(t *testing.T) {
	// x86 MINSD/MAXSD return the SECOND operand when either input is NaN.
	nan := int64(math.Float64bits(math.NaN()))
	two := int64(math.Float64bits(2.0))
	mk := func(op isa.Op, aBits, bBits int64) *Machine {
		return run(t, []isa.Instr{
			isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(aBits)),
			isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
			isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(bBits)),
			isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
			isa.I(op, isa.Xmm(0), isa.Xmm(1)),
			isa.I(isa.HALT),
		})
	}
	if got := math.Float64frombits(mk(isa.MINSD, nan, two).XMM[0][0]); got != 2.0 {
		t.Errorf("minsd(NaN, 2) = %v, want 2 (src operand)", got)
	}
	if got := math.Float64frombits(mk(isa.MAXSD, nan, two).XMM[0][0]); got != 2.0 {
		t.Errorf("maxsd(NaN, 2) = %v, want 2 (src operand)", got)
	}
	if got := mk(isa.MINSD, two, nan).XMM[0][0]; !math.IsNaN(math.Float64frombits(got)) {
		t.Errorf("minsd(2, NaN) = %v, want NaN (src operand)", math.Float64frombits(got))
	}
}

func TestSqrtPackedForms(t *testing.T) {
	mk := func(lo, hi float64) []isa.Instr {
		return []isa.Instr{
			isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(math.Float64bits(lo)))),
			isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
			isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(math.Float64bits(hi)))),
			isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R15)),
			isa.I(isa.SQRTPD, isa.Xmm(0), isa.Xmm(1)),
			isa.I(isa.HALT),
		}
	}
	m := run(t, mk(16.0, 25.0))
	if math.Float64frombits(m.XMM[0][0]) != 4 || math.Float64frombits(m.XMM[0][1]) != 5 {
		t.Errorf("sqrtpd = %v, %v",
			math.Float64frombits(m.XMM[0][0]), math.Float64frombits(m.XMM[0][1]))
	}
}

func TestSubDivPackedSingle(t *testing.T) {
	pack := func(a, b float32) int64 {
		return int64(uint64(math.Float32bits(b))<<32 | uint64(math.Float32bits(a)))
	}
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(pack(8, 18))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(pack(32, 50))),
		isa.I(isa.MOVHQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(pack(2, 3))),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(pack(4, 5))),
		isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.DIVPS, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	lanes := []float32{
		math.Float32frombits(uint32(m.XMM[0][0])),
		math.Float32frombits(uint32(m.XMM[0][0] >> 32)),
		math.Float32frombits(uint32(m.XMM[0][1])),
		math.Float32frombits(uint32(m.XMM[0][1] >> 32)),
	}
	want := []float32{4, 6, 8, 10}
	for i := range want {
		if lanes[i] != want[i] {
			t.Errorf("divps lane %d = %v, want %v", i, lanes[i], want[i])
		}
	}
}

func TestIntegerDivision(t *testing.T) {
	m := run(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(-37)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(5)),
		isa.I(isa.IDIVR, isa.Gpr(isa.RAX), isa.Gpr(isa.RBX)),
		isa.I(isa.HALT),
	})
	if int64(m.GPR[isa.RAX]) != -7 {
		t.Errorf("idiv = %d, want -7 (truncating)", int64(m.GPR[isa.RAX]))
	}
	mach := mach(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(1)),
		isa.I(isa.XORR, isa.Gpr(isa.RBX), isa.Gpr(isa.RBX)),
		isa.I(isa.IDIVR, isa.Gpr(isa.RAX), isa.Gpr(isa.RBX)),
		isa.I(isa.HALT),
	})
	if err := mach.Run(); err == nil {
		t.Error("division by zero did not fault")
	}
}
