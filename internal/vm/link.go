package vm

import (
	"sort"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Program is a linked executable: a module's flattened instruction stream
// with per-instruction metadata resolved once at link time instead of per
// executed step. Linking pre-resolves every static branch and call target
// to an instruction index (replacing a hash lookup per taken branch —
// instrumented code branches on every snippet flag test) and precomputes
// the modeled cycle cost of each instruction (a pure function of the
// instruction, looked up in a map per step by the unlinked interpreter).
//
// A Program is immutable after Link and may back any number of Machines
// concurrently; all mutable state lives in the Machine. Because the
// compiled stream is immutable per program, Reset/ResetTo/rewind
// invalidate nothing — a reset machine re-enters the same compiled
// blocks.
type Program struct {
	mod    *prog.Module
	instrs []isa.Instr
	entry  int32
	// targets[i] is the resolved instruction index of instrs[i]'s branch
	// or call target, or -1 when the instruction has none (or it does not
	// resolve to an instruction — execution then faults through the slow
	// path, exactly as unlinked machines do).
	targets []int32
	// costs[i] is the modeled cycle cost of instrs[i].
	costs []uint64
	// compiled is the direct-threaded block stream Run's fast dispatch
	// tier executes (see compile.go).
	compiled *compiled
}

// Link validates m and builds its linked program.
func Link(m *prog.Module) (*Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	lp := &Program{mod: m, instrs: m.Instructions()}
	lp.targets = make([]int32, len(lp.instrs))
	lp.costs = make([]uint64, len(lp.instrs))
	for i := range lp.instrs {
		in := &lp.instrs[i]
		lp.costs[i] = cost(in)
		lp.targets[i] = -1
		if in.Op.IsBranch() {
			if idx, ok := lp.idxOf(uint64(in.A.Imm)); ok {
				lp.targets[i] = idx
			}
		}
	}
	idx, ok := lp.idxOf(m.Entry)
	if !ok {
		return nil, &Fault{Kind: FaultBadPC, PC: m.Entry, Detail: "entry not an instruction"}
	}
	lp.entry = idx
	lp.compiled = compileProgram(lp)
	return lp, nil
}

// Module returns the module the program was linked from.
func (lp *Program) Module() *prog.Module { return lp.mod }

// idxOf resolves an address to an instruction index by binary search (the
// flattened stream is address-sorted).
func (lp *Program) idxOf(addr uint64) (int32, bool) {
	i := sort.Search(len(lp.instrs), func(i int) bool { return lp.instrs[i].Addr >= addr })
	if i < len(lp.instrs) && lp.instrs[i].Addr == addr {
		return int32(i), true
	}
	return 0, false
}

// NewMachine creates a machine executing the linked program, with zeroed
// registers, the data segment copied into memory, the stack pointer at the
// top of memory and the program counter at the entry point. It runs
// identically to a vm.New machine on the same module, only faster.
func (lp *Program) NewMachine() *Machine {
	m := &Machine{}
	m.ResetTo(lp)
	return m
}

// ResetTo rebinds the machine to lp and rewinds all execution state —
// registers, flags, counters, outputs and the memory image — reusing the
// machine's existing buffers instead of reallocating. Previously returned
// Out slices and Counts are invalidated. Caller-set policy fields
// (MaxSteps, Host, TrapUnreplaced, NoCompile) are preserved; armed
// injected traps are disarmed (re-arm after the reset if wanted).
func (m *Machine) ResetTo(lp *Program) {
	m.lp = lp
	m.prog = lp.mod
	m.instrs = lp.instrs
	m.addrIdx = nil
	m.targets = lp.targets
	m.costs = lp.costs
	m.rewind()
}

// Reset is ResetTo for an unlinked module: it links p (or reuses the
// current program when the machine is already executing p) and rewinds.
func (m *Machine) Reset(p *prog.Module) error {
	if m.lp != nil && m.lp.mod == p {
		m.rewind()
		return nil
	}
	lp, err := Link(p)
	if err != nil {
		return err
	}
	m.ResetTo(lp)
	return nil
}

// rewind restores the pristine start-of-run state for the bound program.
// Armed injected traps are per-run state, not policy, and are disarmed.
func (m *Machine) rewind() {
	m.GPR = [isa.NumGPR]uint64{}
	m.XMM = [isa.NumXMM][2]uint64{}
	m.eq, m.ltS, m.ltU = false, false, false
	m.inject = nil
	m.Out = m.Out[:0]
	m.Cycles = 0
	m.Steps = 0
	m.halted = false
	if cap(m.counts) >= len(m.instrs) {
		m.counts = m.counts[:len(m.instrs)]
		clear(m.counts)
	} else {
		m.counts = make([]uint64, len(m.instrs))
	}
	size := m.prog.MemSize
	if uint64(cap(m.Mem)) >= size {
		m.Mem = m.Mem[:size]
		clear(m.Mem)
	} else {
		m.Mem = make([]byte, size)
	}
	copy(m.Mem[prog.DataBase:], m.prog.Data)
	m.GPR[isa.RSP] = size &^ 15
	m.pcIdx = m.lp.entry
	if m.shadow != nil {
		m.shadow.reset(len(m.instrs))
	}
	m.rewindTrack()
}
