// Package vm executes fpmix program images.
//
// The machine models the parts of a real CPU that matter to the
// mixed-precision analysis: a 16-entry general-purpose register file,
// sixteen 128-bit XMM registers with two 64-bit lanes, byte-addressed
// memory, x86-style flags, and exact IEEE float32/float64 arithmetic for
// single- and double-precision opcodes. Every executed instruction is
// counted (the dynamic profile the search's prioritization uses) and
// charged to a cycle cost model in which double-precision arithmetic and
// 8-byte memory traffic cost roughly twice their single-precision
// counterparts — the asymmetry mixed precision exploits.
package vm

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// FaultKind classifies execution faults.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone            FaultKind = iota
	FaultMemOOB                    // memory access out of bounds
	FaultBadPC                     // jump or fall-through to a non-instruction address
	FaultMaxSteps                  // step budget exhausted
	FaultBadSyscall                // unknown or unsupported syscall
	FaultUnreplacedInput           // double-precision op consumed a flagged value (debug mode)
	FaultHost                      // host (MPI) error
	FaultCancelled                 // run cancelled through RunContext
	FaultInjected                  // artificial trap armed by fault injection
)

func (k FaultKind) String() string {
	switch k {
	case FaultMemOOB:
		return "memory out of bounds"
	case FaultBadPC:
		return "bad program counter"
	case FaultMaxSteps:
		return "step budget exhausted"
	case FaultBadSyscall:
		return "bad syscall"
	case FaultUnreplacedInput:
		return "unreplaced flagged input"
	case FaultHost:
		return "host error"
	case FaultCancelled:
		return "run cancelled"
	case FaultInjected:
		return "injected trap"
	default:
		return "no fault"
	}
}

// Fault is the typed error returned when execution traps.
type Fault struct {
	Kind   FaultKind
	PC     uint64
	Op     isa.Op
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %s at %#x (%s): %s", f.Kind, f.PC, f.Op, f.Detail)
}

// OutKind tags an output value's type.
type OutKind uint8

// Output value kinds.
const (
	OutF64 OutKind = iota + 1
	OutF32
	OutI64
)

// OutVal is one value the program emitted through an output syscall.
type OutVal struct {
	Kind OutKind
	Bits uint64
}

// F64 interprets the value as a float64 (for OutF64 values these are the
// raw bits, which may carry a replacement flag).
func (v OutVal) F64() float64 { return math.Float64frombits(v.Bits) }

// F32 interprets the low 32 bits as a float32.
func (v OutVal) F32() float32 { return math.Float32frombits(uint32(v.Bits)) }

// Host provides system services to a running machine. The output syscalls
// are handled by the machine itself; everything else is delegated here.
type Host interface {
	// Syscall handles syscall number num. It may read and modify machine
	// state (registers, memory).
	Syscall(m *Machine, num int64) error
}

// Machine is a single executing instance of a program image.
type Machine struct {
	GPR [isa.NumGPR]uint64
	XMM [isa.NumXMM][2]uint64
	Mem []byte

	// Flags, in x86 terms: eq ~ ZF, ltS ~ SF!=OF, ltU ~ CF.
	eq  bool
	ltS bool
	ltU bool

	// Out accumulates values emitted via output syscalls.
	Out []OutVal

	// Cycles is the modeled execution cost so far.
	Cycles uint64

	// Steps is the number of instructions executed so far.
	Steps uint64

	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps uint64

	// Host handles MPI and other non-output syscalls; nil means such
	// syscalls fault.
	Host Host

	// TrapUnreplaced enables the debug mode in which a double-precision
	// candidate instruction consuming an operand whose high word carries
	// the replacement flag faults instead of silently propagating NaN.
	// Snippet-generated code always upcasts before the double op, so
	// instrumented programs never trap; only values the analysis missed do
	// (paper §2.3: "anything that our analysis misses causes a crash").
	TrapUnreplaced bool

	// NoCompile forces Run onto the per-step interpreter tier even when
	// the bound program carries a compiled stream. The compiled
	// direct-threaded engine is the default for linked programs; this is
	// the differential-testing escape hatch (search Options.NoCompile,
	// fpsearch -nocompile). Like MaxSteps and Host it is caller policy,
	// preserved across Reset/ResetTo.
	NoCompile bool

	prog    *prog.Module
	instrs  []isa.Instr
	addrIdx map[uint64]int32
	counts  []uint64
	pcIdx   int32
	halted  bool

	// shadow is the single-precision shadow-value state; nil (the
	// default) disables the pass entirely — see shadow.go.
	shadow *shadowState

	// cancelled, when non-nil, is polled on the run loop: once it reads
	// true the run stops with FaultCancelled. Set by RunContext; nil (the
	// default) costs one pointer comparison per step.
	cancelled *atomic.Bool

	// inject, when non-nil, is an armed artificial trap (fault
	// injection); nil (the default) costs one pointer comparison per
	// step. Per-run state: rewind/ResetTo disarm it.
	inject *injectState

	// Linked-program state (nil/absent on vm.New machines): the Program
	// the machine executes plus its pre-resolved branch-target table (see
	// Link).
	lp      *Program
	targets []int32

	// costs is the precomputed per-instruction cycle cost table, indexed
	// like counts. Always populated — by New for unlinked machines and by
	// ResetTo from the linked program — so neither execution tier ever
	// recomputes an instruction's cost.
	costs []uint64

	// blkExec is the compiled tier's per-block execution counter scratch,
	// expanded into counts when a compiled run ends (see compile.go).
	blkExec []uint64

	// track, when non-nil, is the dirty-page state backing incremental
	// Snapshot/RestoreFrom (see snapshot.go); nil (the default) costs one
	// pointer comparison per executed store.
	track *memTrack

	// stops, when non-nil, is the set of breakpoint addresses Run stops
	// before executing (see stop.go). Like the per-step hooks it routes
	// execution to the instrumented tier.
	stops map[uint64]bool
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 500_000_000

// New creates a machine for the module with zeroed registers, the data
// segment copied into memory, the stack pointer at the top of memory and
// the program counter at the entry point.
func New(p *prog.Module) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: p}
	m.instrs = p.Instructions()
	m.addrIdx = make(map[uint64]int32, len(m.instrs))
	for i := range m.instrs {
		m.addrIdx[m.instrs[i].Addr] = int32(i)
	}
	m.counts = make([]uint64, len(m.instrs))
	m.costs = make([]uint64, len(m.instrs))
	for i := range m.instrs {
		m.costs[i] = cost(&m.instrs[i])
	}
	m.Mem = make([]byte, p.MemSize)
	copy(m.Mem[prog.DataBase:], p.Data)
	m.GPR[isa.RSP] = p.MemSize &^ 15
	idx, ok := m.addrIdx[p.Entry]
	if !ok {
		return nil, &Fault{Kind: FaultBadPC, PC: p.Entry, Detail: "entry not an instruction"}
	}
	m.pcIdx = idx
	return m, nil
}

// PC returns the address of the next instruction to execute.
func (m *Machine) PC() uint64 {
	if int(m.pcIdx) < len(m.instrs) {
		return m.instrs[m.pcIdx].Addr
	}
	return 0
}

// Halted reports whether the program has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Counts returns the per-instruction execution counts, indexed in program
// instruction order (as returned by prog.Module.Instructions).
func (m *Machine) Counts() []uint64 { return m.counts }

// Profile returns execution counts keyed by instruction address.
func (m *Machine) Profile() map[uint64]uint64 {
	p := make(map[uint64]uint64, len(m.instrs))
	for i := range m.instrs {
		if m.counts[i] > 0 {
			p[m.instrs[i].Addr] = m.counts[i]
		}
	}
	return p
}

// Run executes until HALT, a fault, or the step budget is exhausted.
//
// Execution picks one of two dispatch tiers automatically. Machines
// bound to a linked program with no per-step hook active run on the
// compiled direct-threaded engine (pre-decoded closures, per-block
// accounting — see compile.go). Shadow collection, armed injected traps,
// TrapUnreplaced, or NoCompile route the run to the instrumented
// per-step interpreter instead, which observes every instruction.
// RunContext cancellation stays on the compiled tier (the flag is
// polled between blocks). Both tiers produce byte-identical machines.
func (m *Machine) Run() error {
	max := m.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if m.compiledTier() {
		return m.runCompiled(max)
	}
	return m.runInstrumented(max)
}

// runInstrumented is the per-step dispatch tier: one Step per
// instruction, with the budget, cancellation, injection and shadow hooks
// checked on every iteration.
func (m *Machine) runInstrumented(max uint64) error {
	for !m.halted {
		if m.stops != nil {
			if err := m.stopCheck(); err != nil {
				return err
			}
		}
		if m.Steps >= max {
			return &Fault{Kind: FaultMaxSteps, PC: m.PC(), Detail: fmt.Sprintf("%d steps", m.Steps)}
		}
		if m.cancelled != nil && m.cancelled.Load() {
			return &Fault{Kind: FaultCancelled, PC: m.PC(), Detail: fmt.Sprintf("after %d steps", m.Steps)}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunContext executes like Run but additionally stops with FaultCancelled
// when ctx is cancelled. Cancellation is delivered through an atomic flag
// polled on the dispatch loop — every step on the instrumented tier,
// every block boundary on the compiled tier — so an expired deadline
// ends the run within one basic block at worst; a context that can never
// be cancelled falls back to Run with no polling cost.
func (m *Machine) RunContext(ctx context.Context) error {
	done := ctx.Done()
	if done == nil {
		return m.Run()
	}
	if err := ctx.Err(); err != nil {
		return &Fault{Kind: FaultCancelled, PC: m.PC(), Detail: err.Error()}
	}
	var flag atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-done:
			flag.Store(true)
		case <-stop:
		}
	}()
	m.cancelled = &flag
	err := m.Run()
	m.cancelled = nil
	close(stop)
	wg.Wait()
	return err
}

// injectState is an armed artificial trap: execution faults with
// FaultInjected either at a step-count threshold or on the n-th execution
// of a chosen instruction address.
type injectState struct {
	step    uint64 // fault at the first instruction whose step count reaches this (0 = by address)
	addr    uint64
	hits    uint64 // by-address: remaining executions of addr before the fault
	useAddr bool
}

// InjectTrapAfter arms an artificial trap: execution faults with
// FaultInjected at the first instruction at or beyond the given step
// count (1 faults the very first instruction). Fault-injection harnesses
// use it to simulate FP traps at deterministic points of a run.
func (m *Machine) InjectTrapAfter(steps uint64) {
	if steps == 0 {
		steps = 1
	}
	m.inject = &injectState{step: steps}
}

// InjectTrapAt arms an artificial trap at an instruction site: the n-th
// execution of addr (counting from 1) faults with FaultInjected.
func (m *Machine) InjectTrapAt(addr uint64, n uint64) {
	if n == 0 {
		n = 1
	}
	m.inject = &injectState{addr: addr, hits: n, useAddr: true}
}

// ClearInjected disarms any armed artificial trap.
func (m *Machine) ClearInjected() { m.inject = nil }

// injectCheck reports whether the armed trap fires on this instruction,
// building the fault and disarming when it does.
func (m *Machine) injectCheck(in *isa.Instr) error {
	st := m.inject
	if st.useAddr {
		if in.Addr != st.addr {
			return nil
		}
		st.hits--
		if st.hits > 0 {
			return nil
		}
	} else if m.Steps < st.step {
		return nil
	}
	m.inject = nil
	return m.fault(FaultInjected, in, fmt.Sprintf("armed trap fired at step %d", m.Steps))
}

// fault constructs a fault at the current instruction.
func (m *Machine) fault(kind FaultKind, in *isa.Instr, detail string) error {
	return &Fault{Kind: kind, PC: in.Addr, Op: in.Op, Detail: detail}
}
