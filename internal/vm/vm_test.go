package vm

import (
	"errors"
	"math"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// run assembles instrs into a one-function module and executes it.
func run(t *testing.T, instrs []isa.Instr) *Machine {
	t.Helper()
	m := mach(t, instrs)
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func mach(t *testing.T, instrs []isa.Instr) *Machine {
	t.Helper()
	f := &prog.Func{Name: "main", Instrs: instrs}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func f64bits(v float64) int64 { return int64(math.Float64bits(v)) }

// loadF64 loads an immediate float64 into an xmm register via a gpr.
func loadF64(x uint8, v float64) []isa.Instr {
	return []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(f64bits(v))),
		isa.I(isa.MOVQ, isa.Xmm(x), isa.Gpr(isa.R15)),
	}
}

func TestIntegerALU(t *testing.T) {
	m := run(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(10)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(3)),
		isa.I(isa.ADDR, isa.Gpr(isa.RAX), isa.Gpr(isa.RBX)), // 13
		isa.I(isa.IMULI, isa.Gpr(isa.RAX), isa.Imm(4)),      // 52
		isa.I(isa.SUBI, isa.Gpr(isa.RAX), isa.Imm(2)),       // 50
		isa.I(isa.SHLI, isa.Gpr(isa.RAX), isa.Imm(1)),       // 100
		isa.I(isa.SHRI, isa.Gpr(isa.RAX), isa.Imm(2)),       // 25
		isa.I(isa.XORI, isa.Gpr(isa.RAX), isa.Imm(1)),       // 24
		isa.I(isa.ORI, isa.Gpr(isa.RAX), isa.Imm(7)),        // 31
		isa.I(isa.ANDI, isa.Gpr(isa.RAX), isa.Imm(28)),      // 28
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)),
		isa.I(isa.HALT),
	})
	if got := m.Out[0].Bits; got != 28 {
		t.Errorf("rax = %d, want 28", got)
	}
}

func TestMemoryAndLEA(t *testing.T) {
	base := int64(prog.DataBase)
	m := run(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(2)), // index
		isa.I(isa.MOVRI, isa.Gpr(isa.RDX), isa.Imm(0xBEEF)),
		isa.I(isa.STORE, isa.MemIdx(isa.RBX, isa.RCX, 8, 16), isa.Gpr(isa.RDX)),
		isa.I(isa.LOAD, isa.Gpr(isa.RAX), isa.Mem(isa.RBX, 32)),
		isa.I(isa.LEA, isa.Gpr(isa.RSI), isa.MemIdx(isa.RBX, isa.RCX, 8, 16)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)),
		isa.I(isa.HALT),
	})
	if m.Out[0].Bits != 0xBEEF {
		t.Errorf("load = %#x, want 0xBEEF", m.Out[0].Bits)
	}
	if m.GPR[isa.RSI] != uint64(base)+32 {
		t.Errorf("lea = %#x", m.GPR[isa.RSI])
	}
}

func TestBranchesSignedUnsigned(t *testing.T) {
	// Compare -1 (signed) with 1: JL taken; JB (unsigned) not taken since
	// 0xFFFF... > 1.
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(-1)),
		isa.I(isa.CMPI, isa.Gpr(isa.RAX), isa.Imm(1)),
		isa.I(isa.JL, isa.Imm(0)), // patched to L1
		isa.I(isa.HALT),
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(7)), // L1
		isa.I(isa.CMPI, isa.Gpr(isa.RAX), isa.Imm(1)),
		isa.I(isa.JB, isa.Imm(0)), // patched to L2: must NOT be taken
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(9)),
		isa.I(isa.HALT),
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(1)), // L2
		isa.I(isa.HALT),
	}}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	f.Instrs[2].A.Imm = int64(f.Instrs[4].Addr)
	f.Instrs[6].A.Imm = int64(f.Instrs[9].Addr)
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.GPR[isa.RBX] != 7 || m.GPR[isa.RCX] != 9 {
		t.Errorf("rbx=%d rcx=%d, want 7, 9", m.GPR[isa.RBX], m.GPR[isa.RCX])
	}
}

func TestCallRetAndStack(t *testing.T) {
	main := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(5)),
		isa.I(isa.PUSH, isa.Gpr(isa.RAX)),
		isa.I(isa.CALL, isa.Imm(0)), // patched
		isa.I(isa.POP, isa.Gpr(isa.RBX)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)),
		isa.I(isa.HALT),
	}}
	fn := &prog.Func{Name: "double", Instrs: []isa.Instr{
		isa.I(isa.ADDR, isa.Gpr(isa.RAX), isa.Gpr(isa.RAX)),
		isa.I(isa.RET),
	}}
	mod, err := prog.Build("t", []*prog.Func{main, fn}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	main.Instrs[2].A.Imm = int64(fn.Addr)
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Out[0].Bits != 10 {
		t.Errorf("rax after call = %d, want 10", m.Out[0].Bits)
	}
	if m.GPR[isa.RBX] != 5 {
		t.Errorf("popped %d, want 5", m.GPR[isa.RBX])
	}
	if m.GPR[isa.RSP] != mod.MemSize&^15 {
		t.Errorf("rsp not restored: %#x", m.GPR[isa.RSP])
	}
}

func TestScalarDoubleArith(t *testing.T) {
	instrs := append(loadF64(0, 1.5), loadF64(1, 2.25)...)
	instrs = append(instrs,
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // 3.75
		isa.I(isa.MULSD, isa.Xmm(0), isa.Xmm(1)), // 8.4375
		isa.I(isa.SUBSD, isa.Xmm(0), isa.Xmm(1)), // 6.1875
		isa.I(isa.DIVSD, isa.Xmm(0), isa.Xmm(1)), // 2.75
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.SQRTSD, isa.Xmm(0), isa.Xmm(0)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	)
	m := run(t, instrs)
	if got := m.Out[0].F64(); got != 2.75 {
		t.Errorf("arith chain = %v, want 2.75", got)
	}
	if got := m.Out[1].F64(); got != math.Sqrt(2.75) {
		t.Errorf("sqrt = %v", got)
	}
}

func TestScalarSingleMergeSemantics(t *testing.T) {
	// ADDSS must only write the low 32 bits of lane 0, preserving the rest
	// — the replacement flag scheme depends on this.
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(uint64(0x7FF4DEAD)<<32|uint64(math.Float32bits(1.5))))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R14), isa.Imm(int64(uint64(0xABCD0123)<<32|uint64(math.Float32bits(2.5))))),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R14)),
		isa.I(isa.ADDSS, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	lane0 := m.XMM[0][0]
	if got := math.Float32frombits(uint32(lane0)); got != 4.0 {
		t.Errorf("addss = %v, want 4.0", got)
	}
	if hi := uint32(lane0 >> 32); hi != 0x7FF4DEAD {
		t.Errorf("high word = %#x, want flag preserved", hi)
	}
}

func TestMovsdLoadZeroesUpperLane(t *testing.T) {
	base := int64(prog.DataBase)
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(123)),
		isa.I(isa.MOVHQ, isa.Xmm(2), isa.Gpr(isa.R15)), // dirty lane 1
		isa.I(isa.MOVSD, isa.Xmm(2), isa.Mem(isa.RBX, 0)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if m.XMM[2][1] != 0 {
		t.Errorf("movsd load left lane1 = %#x", m.XMM[2][1])
	}
}

func TestMovqMergePreservesLane1(t *testing.T) {
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(0x1111)),
		isa.I(isa.MOVHQ, isa.Xmm(3), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R14), isa.Imm(0x2222)),
		isa.I(isa.MOVQ, isa.Xmm(3), isa.Gpr(isa.R14)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if m.XMM[3][1] != 0x1111 {
		t.Errorf("movq xmm<-gpr clobbered lane1: %#x", m.XMM[3][1])
	}
	if m.XMM[3][0] != 0x2222 {
		t.Errorf("lane0 = %#x", m.XMM[3][0])
	}
}

func TestUcomisdFlags(t *testing.T) {
	cases := []struct {
		a, b           float64
		eq, b_, ae, a_ bool
	}{
		{1, 2, false, true, false, false},
		{2, 1, false, false, true, true},
		{1, 1, true, false, true, false},
		{math.NaN(), 1, true, true, false, false}, // unordered: ZF=CF=1
	}
	for _, c := range cases {
		instrs := append(loadF64(0, c.a), loadF64(1, c.b)...)
		instrs = append(instrs, isa.I(isa.UCOMISD, isa.Xmm(0), isa.Xmm(1)), isa.I(isa.HALT))
		m := run(t, instrs)
		if m.eq != c.eq || m.ltU != c.b_ {
			t.Errorf("ucomisd(%v,%v): eq=%v ltU=%v", c.a, c.b, m.eq, m.ltU)
		}
		if got := m.branchTaken(isa.JAE); got != c.ae {
			t.Errorf("ucomisd(%v,%v): jae=%v want %v", c.a, c.b, got, c.ae)
		}
		if got := m.branchTaken(isa.JA); got != c.a_ {
			t.Errorf("ucomisd(%v,%v): ja=%v want %v", c.a, c.b, got, c.a_)
		}
	}
}

func TestConversions(t *testing.T) {
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(7)),
		isa.I(isa.CVTSI2SD, isa.Xmm(0), isa.Gpr(isa.RAX)), // 7.0
		isa.I(isa.CVTSD2SS, isa.Xmm(1), isa.Xmm(0)),       // 7.0f in low32
		isa.I(isa.CVTSS2SD, isa.Xmm(2), isa.Xmm(1)),       // 7.0
		isa.I(isa.CVTTSD2SI, isa.Gpr(isa.RBX), isa.Xmm(2)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if got := math.Float64frombits(m.XMM[2][0]); got != 7.0 {
		t.Errorf("round trip = %v", got)
	}
	if m.GPR[isa.RBX] != 7 {
		t.Errorf("cvttsd2si = %d", m.GPR[isa.RBX])
	}
}

func TestCvtsd2ssPreservesHighBits(t *testing.T) {
	dirty := uint64(0xDEADBEEF) << 32
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(int64(dirty))),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
	}
	instrs = append(instrs, loadF64(0, 3.5)...)
	instrs = append(instrs,
		isa.I(isa.CVTSD2SS, isa.Xmm(1), isa.Xmm(0)),
		isa.I(isa.HALT),
	)
	m := run(t, instrs)
	if hi := uint32(m.XMM[1][0] >> 32); hi != 0xDEADBEEF {
		t.Errorf("cvtsd2ss clobbered high bits: %#x", hi)
	}
	if got := math.Float32frombits(uint32(m.XMM[1][0])); got != 3.5 {
		t.Errorf("low = %v", got)
	}
}

func TestPackedDouble(t *testing.T) {
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(f64bits(1.0))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(f64bits(2.0))),
		isa.I(isa.MOVHQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(f64bits(10.0))),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(f64bits(20.0))),
		isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.ADDPD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	if lo := math.Float64frombits(m.XMM[0][0]); lo != 11.0 {
		t.Errorf("lane0 = %v", lo)
	}
	if hi := math.Float64frombits(m.XMM[0][1]); hi != 22.0 {
		t.Errorf("lane1 = %v", hi)
	}
}

func TestPackedSingleLanes(t *testing.T) {
	mk := func(lo, hi float32) int64 {
		return int64(uint64(math.Float32bits(hi))<<32 | uint64(math.Float32bits(lo)))
	}
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(mk(1, 2))),
		isa.I(isa.MOVQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(mk(3, 4))),
		isa.I(isa.MOVHQ, isa.Xmm(0), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(mk(10, 20))),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(mk(30, 40))),
		isa.I(isa.MOVHQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.MULPS, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := run(t, instrs)
	want := []float32{10, 40, 90, 160}
	got := []float32{
		math.Float32frombits(uint32(m.XMM[0][0])),
		math.Float32frombits(uint32(m.XMM[0][0] >> 32)),
		math.Float32frombits(uint32(m.XMM[0][1])),
		math.Float32frombits(uint32(m.XMM[0][1] >> 32)),
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lane %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPushPopXmm(t *testing.T) {
	instrs := append(loadF64(5, 42.5),
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(99)),
		isa.I(isa.MOVHQ, isa.Xmm(5), isa.Gpr(isa.R15)),
		isa.I(isa.PUSHX, isa.Xmm(5)),
		isa.I(isa.XORR, isa.Gpr(isa.R15), isa.Gpr(isa.R15)),
		isa.I(isa.MOVQ, isa.Xmm(5), isa.Gpr(isa.R15)),
		isa.I(isa.MOVHQ, isa.Xmm(5), isa.Gpr(isa.R15)),
		isa.I(isa.POPX, isa.Xmm(5)),
		isa.I(isa.HALT),
	)
	m := run(t, instrs)
	if got := math.Float64frombits(m.XMM[5][0]); got != 42.5 {
		t.Errorf("lane0 = %v", got)
	}
	if m.XMM[5][1] != 99 {
		t.Errorf("lane1 = %d", m.XMM[5][1])
	}
}

func TestTranscendentals(t *testing.T) {
	instrs := append(loadF64(1, 0.5),
		isa.I(isa.SINSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.COSSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.EXPSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.LOGSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	)
	m := run(t, instrs)
	want := []float64{math.Sin(0.5), math.Cos(0.5), math.Exp(0.5), math.Log(0.5)}
	for i, w := range want {
		if got := m.Out[i].F64(); got != w {
			t.Errorf("transcendental %d = %v, want %v", i, got, w)
		}
	}
}

func TestFaultMemOOB(t *testing.T) {
	m := mach(t, []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(1<<40)),
		isa.I(isa.LOAD, isa.Gpr(isa.RAX), isa.Mem(isa.RBX, 0)),
		isa.I(isa.HALT),
	})
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultMemOOB {
		t.Fatalf("err = %v, want MemOOB fault", err)
	}
}

func TestFaultBadJumpTarget(t *testing.T) {
	m := mach(t, []isa.Instr{
		isa.I(isa.JMP, isa.Imm(0x999999)),
		isa.I(isa.HALT),
	})
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultBadPC {
		t.Fatalf("err = %v, want BadPC fault", err)
	}
}

func TestFaultMaxSteps(t *testing.T) {
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.JMP, isa.Imm(int64(prog.CodeBase))),
		isa.I(isa.HALT),
	}}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 100
	errRun := m.Run()
	var flt *Fault
	if !errors.As(errRun, &flt) || flt.Kind != FaultMaxSteps {
		t.Fatalf("err = %v, want MaxSteps fault", errRun)
	}
}

func TestFaultBadSyscall(t *testing.T) {
	m := mach(t, []isa.Instr{
		isa.I(isa.SYSCALL, isa.Imm(isa.SysMPIBarrier)),
		isa.I(isa.HALT),
	})
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultBadSyscall {
		t.Fatalf("err = %v, want BadSyscall fault (no host)", err)
	}
}

func TestTrapUnreplacedInput(t *testing.T) {
	flagged := int64(uint64(isa.ReplacedFlag)<<32 | uint64(math.Float32bits(1.5)))
	instrs := []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.R15), isa.Imm(flagged)),
		isa.I(isa.MOVQ, isa.Xmm(1), isa.Gpr(isa.R15)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	}
	m := mach(t, instrs)
	m.TrapUnreplaced = true
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultUnreplacedInput {
		t.Fatalf("err = %v, want UnreplacedInput fault", err)
	}
	// Without trap mode the NaN propagates silently.
	m2 := mach(t, instrs)
	if err := m2.Run(); err != nil {
		t.Fatalf("untrapped run failed: %v", err)
	}
	if !math.IsNaN(math.Float64frombits(m2.XMM[0][0])) {
		t.Error("flagged input should propagate as NaN")
	}
}

func TestCountsAndProfile(t *testing.T) {
	instrs := append(loadF64(0, 1.0), loadF64(1, 1.0)...)
	instrs = append(instrs,
		isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(10)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)), // loop head
		isa.I(isa.SUBI, isa.Gpr(isa.RCX), isa.Imm(1)),
		isa.I(isa.CMPI, isa.Gpr(isa.RCX), isa.Imm(0)),
		isa.I(isa.JG, isa.Imm(0)), // patched to loop head
		isa.I(isa.HALT),
	)
	f := &prog.Func{Name: "main", Instrs: instrs}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	head := f.Instrs[5].Addr
	f.Instrs[8].A.Imm = int64(head)
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(m.XMM[0][0]); got != 11.0 {
		t.Errorf("sum = %v, want 11", got)
	}
	p := m.Profile()
	if p[head] != 10 {
		t.Errorf("loop body count = %d, want 10", p[head])
	}
	if m.Cycles == 0 || m.Steps == 0 {
		t.Error("cycles/steps not accumulated")
	}
}

func TestSingleCheaperThanDouble(t *testing.T) {
	mkLoop := func(op isa.Op) *Machine {
		instrs := append(loadF64(0, 1.0), loadF64(1, 1.0)...)
		instrs = append(instrs,
			isa.I(isa.MOVRI, isa.Gpr(isa.RCX), isa.Imm(1000)),
			isa.I(op, isa.Xmm(0), isa.Xmm(1)),
			isa.I(isa.SUBI, isa.Gpr(isa.RCX), isa.Imm(1)),
			isa.I(isa.CMPI, isa.Gpr(isa.RCX), isa.Imm(0)),
			isa.I(isa.JG, isa.Imm(0)),
			isa.I(isa.HALT),
		)
		f := &prog.Func{Name: "main", Instrs: instrs}
		mod, _ := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
		f.Instrs[8].A.Imm = int64(f.Instrs[5].Addr)
		m, _ := New(mod)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	d := mkLoop(isa.MULSD).Cycles
	s := mkLoop(isa.MULSS).Cycles
	if s >= d {
		t.Errorf("single (%d cycles) not cheaper than double (%d)", s, d)
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Kind: FaultMemOOB, PC: 0x1000, Op: isa.LOAD, Detail: "x"}
	if f.Error() == "" {
		t.Error("empty error string")
	}
	for k := FaultNone; k <= FaultHost; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no string", k)
		}
	}
}
