package vm

import (
	"fmt"

	"fpmix/internal/isa"
)

// Machine-state snapshots with copy-on-write memory pages.
//
// A Snapshot captures the complete execution state of a machine between
// runs: registers, flags, accounting, emitted outputs and the memory
// image, the latter as a vector of shared immutable pages. Taking a
// snapshot copies only the pages written since the previous snapshot
// (when dirty-page tracking is enabled), and restoring one copies only
// the pages that differ from what the machine already holds — O(dirty
// pages), not O(Mem). The search's fork-point evaluation leans on this:
// one donor run of the shared all-double prefix is snapshotted at every
// candidate fork point, and each sibling configuration is evaluated from
// a restored snapshot instead of re-running the prefix.
//
// Snapshots are immutable and safe to restore concurrently from many
// machines. The program counter is captured by instruction address, and
// per-instruction counts are carried with the instruction stream they
// index, so a snapshot taken on one linked program can be restored onto
// a machine bound to a different program of the same module family —
// same memory layout, same addresses for the shared instructions — as
// long as every executed instruction exists at the same address in both
// streams (the stable-layout instrumentation guarantees this for every
// configuration of one search).

const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

// pageBuf is one immutable memory page shared between snapshots. Pointer
// identity doubles as content identity: a page is never written after it
// is published in a Snapshot.
type pageBuf [pageSize]byte

// memTrack is the dirty-page state of a machine with tracking enabled.
type memTrack struct {
	// dirty marks pages written since their provenance was last set.
	dirty []bool
	// src is the page provenance: the snapshot page the machine's
	// resident page content equals, nil when unknown (dirty or never
	// restored/snapshotted).
	src []*pageBuf
}

func numPages(size uint64) int { return int((size + pageSize - 1) >> pageShift) }

func newMemTrack(size uint64) *memTrack {
	n := numPages(size)
	return &memTrack{dirty: make([]bool, n), src: make([]*pageBuf, n)}
}

// markRange records a write of width bytes at addr. Hot-path helper: the
// callers guard with a nil check, so untracked machines pay one
// predictable branch per store.
func (t *memTrack) markRange(addr uint64, width uint64) {
	p := addr >> pageShift
	if int(p) < len(t.dirty) {
		t.dirty[p] = true
		t.src[p] = nil
	}
	if q := (addr + width - 1) >> pageShift; q != p && int(q) < len(t.dirty) {
		t.dirty[q] = true
		t.src[q] = nil
	}
}

// markAll invalidates every page (host syscalls may write anywhere).
func (t *memTrack) markAll() {
	for i := range t.dirty {
		t.dirty[i] = true
		t.src[i] = nil
	}
}

// reset forgets all provenance (the memory image was rebuilt wholesale).
func (t *memTrack) reset(size uint64) {
	n := numPages(size)
	if len(t.dirty) != n {
		t.dirty = make([]bool, n)
		t.src = make([]*pageBuf, n)
		return
	}
	for i := range t.dirty {
		t.dirty[i] = false
		t.src[i] = nil
	}
}

// TrackDirtyPages enables dirty-page tracking on the machine, making
// subsequent Snapshot calls incremental (O(pages written since the last
// snapshot)) and RestoreFrom calls differential (O(pages that differ)).
// Tracking costs one predictable branch per executed store. Host (MPI)
// syscalls may write memory outside the tracked store paths, so they
// conservatively invalidate every page.
func (m *Machine) TrackDirtyPages() {
	if m.track == nil {
		m.track = newMemTrack(uint64(len(m.Mem)))
	}
}

// MarkMemWritten records an external write of n bytes at addr for
// dirty-page tracking. Code that mutates m.Mem directly — hosts, test
// harnesses — must call it (or write through the instruction set) for
// snapshots taken afterwards to be exact; the machine's own store paths
// mark automatically.
func (m *Machine) MarkMemWritten(addr, n uint64) {
	if m.track != nil && n > 0 {
		m.track.markRange(addr, n)
	}
}

// shadowSnap captures the shadow-value state of a machine with the
// shadow pass enabled.
type shadowSnap struct {
	xmm [isa.NumXMM][2]float32
	mem map[uint64]float32

	maxRel  []float64
	sumRel  []float64
	samples []uint64
	cancel  []uint8
	diverge []uint64

	localMax     []float64
	localDiverge []uint64
}

func captureShadow(s *shadowState) *shadowSnap {
	sn := &shadowSnap{xmm: s.xmm, mem: make(map[uint64]float32, len(s.mem))}
	for k, v := range s.mem {
		sn.mem[k] = v
	}
	sn.maxRel = append([]float64(nil), s.maxRel...)
	sn.sumRel = append([]float64(nil), s.sumRel...)
	sn.samples = append([]uint64(nil), s.samples...)
	sn.cancel = append([]uint8(nil), s.cancel...)
	sn.diverge = append([]uint64(nil), s.diverge...)
	sn.localMax = append([]float64(nil), s.localMax...)
	sn.localDiverge = append([]uint64(nil), s.localDiverge...)
	return sn
}

func (sn *shadowSnap) restoreInto(s *shadowState) {
	s.xmm = sn.xmm
	clear(s.mem)
	for k, v := range sn.mem {
		s.mem[k] = v
	}
	s.maxRel = append(s.maxRel[:0], sn.maxRel...)
	s.sumRel = append(s.sumRel[:0], sn.sumRel...)
	s.samples = append(s.samples[:0], sn.samples...)
	s.cancel = append(s.cancel[:0], sn.cancel...)
	s.diverge = append(s.diverge[:0], sn.diverge...)
	s.localMax = append(s.localMax[:0], sn.localMax...)
	s.localDiverge = append(s.localDiverge[:0], sn.localDiverge...)
}

// Snapshot is an immutable capture of a machine's execution state.
type Snapshot struct {
	memSize uint64
	pages   []*pageBuf

	gpr          [isa.NumGPR]uint64
	xmm          [isa.NumXMM][2]uint64
	eq, ltS, ltU bool
	out          []OutVal
	cycles       uint64
	steps        uint64
	halted       bool

	// pcAddr is the address of the next instruction; instrs is the
	// (immutable, shared) stream the counts index, kept for restoring
	// onto machines bound to a different program of the same layout.
	pcAddr uint64
	instrs []isa.Instr
	counts []uint64

	shadow *shadowSnap
}

// Steps returns the executed-instruction count at the capture point.
func (s *Snapshot) Steps() uint64 { return s.steps }

// PC returns the address of the next instruction at the capture point.
func (s *Snapshot) PC() uint64 { return s.pcAddr }

// Snapshot captures the machine's complete execution state. It must be
// taken between runs (never from inside a hook) and with no armed
// injected trap. With dirty-page tracking enabled, pages unchanged since
// the previous Snapshot or RestoreFrom are shared, not copied.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.inject != nil {
		return nil, fmt.Errorf("vm: snapshot with an armed injected trap")
	}
	if int(m.pcIdx) >= len(m.instrs) || m.pcIdx < 0 {
		return nil, fmt.Errorf("vm: snapshot with program counter off the code segment")
	}
	s := &Snapshot{
		memSize: uint64(len(m.Mem)),
		gpr:     m.GPR,
		xmm:     m.XMM,
		eq:      m.eq, ltS: m.ltS, ltU: m.ltU,
		out:    append([]OutVal(nil), m.Out...),
		cycles: m.Cycles,
		steps:  m.Steps,
		halted: m.halted,
		pcAddr: m.instrs[m.pcIdx].Addr,
		instrs: m.instrs,
		counts: append([]uint64(nil), m.counts...),
	}
	n := numPages(s.memSize)
	s.pages = make([]*pageBuf, n)
	for i := 0; i < n; i++ {
		if m.track != nil && !m.track.dirty[i] && m.track.src[i] != nil {
			s.pages[i] = m.track.src[i]
			continue
		}
		buf := new(pageBuf)
		copy(buf[:], m.Mem[uint64(i)<<pageShift:])
		s.pages[i] = buf
		if m.track != nil {
			m.track.dirty[i] = false
			m.track.src[i] = buf
		}
	}
	if m.shadow != nil {
		s.shadow = captureShadow(m.shadow)
	}
	return s, nil
}

// RestoreFrom rewinds the machine to the snapshot's state. The machine
// must be bound to a program with the same memory size whose instruction
// stream contains, at the same address, every instruction the snapshot
// executed (identical streams restore directly; diverging streams — other
// configurations of a stable-layout search — translate the program
// counter and counts by address). Caller policy (MaxSteps, Host,
// NoCompile, TrapUnreplaced) is preserved; armed injected traps are
// disarmed. With dirty-page tracking enabled only pages differing from
// the machine's current content are copied.
func (m *Machine) RestoreFrom(s *Snapshot) error {
	if uint64(m.prog.MemSize) != s.memSize {
		return fmt.Errorf("vm: restore across memory sizes (%d != %d)", m.prog.MemSize, s.memSize)
	}
	// Resolve the program counter first so a mismatched program leaves
	// the machine untouched.
	pcIdx, err := m.snapIdx(s, s.pcAddr)
	if err != nil {
		return err
	}
	if (m.shadow != nil) != (s.shadow != nil) {
		return fmt.Errorf("vm: restore across shadow-mode boundary")
	}
	sameStream := len(m.instrs) == len(s.instrs) &&
		(len(m.instrs) == 0 || &m.instrs[0] == &s.instrs[0])
	if sameStream {
		copy(m.counts, s.counts)
	} else if err := m.translateCounts(s); err != nil {
		return err
	}

	if uint64(len(m.Mem)) != s.memSize {
		if uint64(cap(m.Mem)) >= s.memSize {
			m.Mem = m.Mem[:s.memSize]
		} else {
			m.Mem = make([]byte, s.memSize)
		}
		if m.track != nil {
			m.track.reset(s.memSize)
		}
	}
	for i, pg := range s.pages {
		if m.track != nil && !m.track.dirty[i] && m.track.src[i] == pg {
			continue
		}
		copy(m.Mem[uint64(i)<<pageShift:], pg[:])
		if m.track != nil {
			m.track.dirty[i] = false
			m.track.src[i] = pg
		}
	}

	m.GPR = s.gpr
	m.XMM = s.xmm
	m.eq, m.ltS, m.ltU = s.eq, s.ltS, s.ltU
	m.Out = append(m.Out[:0], s.out...)
	m.Cycles = s.cycles
	m.Steps = s.steps
	m.halted = s.halted
	m.pcIdx = pcIdx
	m.inject = nil
	for i := range m.blkExec {
		m.blkExec[i] = 0
	}
	if s.shadow != nil {
		s.shadow.restoreInto(m.shadow)
	}
	return nil
}

// RestoreTo rebinds the machine to lp and restores the snapshot in one
// step, without the O(Mem) rewind a ResetTo would pay: page provenance
// survives the rebind, so restoring onto a machine that last restored a
// sibling snapshot copies only the pages that actually differ. lp must
// share the snapshot's memory size and stable address layout (see
// RestoreFrom). This is the fork-point evaluator's per-candidate entry:
// assemble the sibling configuration, RestoreTo it from the fork-point
// snapshot, run.
func (m *Machine) RestoreTo(lp *Program, s *Snapshot) error {
	if lp.mod.MemSize != s.memSize {
		return fmt.Errorf("vm: restore across memory sizes (%d != %d)", lp.mod.MemSize, s.memSize)
	}
	m.lp = lp
	m.prog = lp.mod
	m.instrs = lp.instrs
	m.addrIdx = nil
	m.targets = lp.targets
	m.costs = lp.costs
	if cap(m.counts) >= len(lp.instrs) {
		m.counts = m.counts[:len(lp.instrs)]
	} else {
		m.counts = make([]uint64, len(lp.instrs))
	}
	return m.RestoreFrom(s)
}

// snapIdx resolves an address to an instruction index on the machine's
// bound program.
func (m *Machine) snapIdx(s *Snapshot, addr uint64) (int32, error) {
	if m.addrIdx != nil {
		if idx, ok := m.addrIdx[addr]; ok {
			return idx, nil
		}
	} else if m.lp != nil {
		if idx, ok := m.lp.idxOf(addr); ok {
			return idx, nil
		}
	}
	return 0, fmt.Errorf("vm: restore: snapshot pc %#x is not an instruction of the bound program", addr)
}

// translateCounts carries the snapshot's per-instruction counts onto the
// machine's (different but address-compatible) instruction stream. Both
// streams are address-sorted; instructions executed under the snapshot
// must exist at the same address in the target stream, while
// instructions exclusive to either stream (diverging replacement-site
// regions) must have executed zero times.
func (m *Machine) translateCounts(s *Snapshot) error {
	clear(m.counts)
	j := 0
	for i := range s.instrs {
		c := s.counts[i]
		if c == 0 {
			continue
		}
		a := s.instrs[i].Addr
		for j < len(m.instrs) && m.instrs[j].Addr < a {
			j++
		}
		if j >= len(m.instrs) || m.instrs[j].Addr != a {
			return fmt.Errorf("vm: restore: executed instruction at %#x missing from the bound program", a)
		}
		m.counts[j] = c
	}
	return nil
}

// rewindTrack is called by rewind after the memory image is rebuilt.
func (m *Machine) rewindTrack() {
	if m.track != nil {
		m.track.reset(uint64(len(m.Mem)))
	}
}
