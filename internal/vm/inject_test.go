package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// loopProgram builds a long counted loop (no FP): it executes well over
// `iters` instructions before halting. It returns the machine and the
// address of the loop-head ADDI, which executes once per iteration.
func loopProgram(t *testing.T, iters int64) (*Machine, uint64) {
	t.Helper()
	f := &prog.Func{Name: "main", Instrs: []isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(isa.RAX), isa.Imm(0)),
		isa.I(isa.ADDI, isa.Gpr(isa.RAX), isa.Imm(1)), // loop head
		isa.I(isa.CMPI, isa.Gpr(isa.RAX), isa.Imm(iters)),
		isa.I(isa.JL, isa.Imm(0)), // patched to the loop head
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)),
		isa.I(isa.HALT),
	}}
	mod, err := prog.Build("loop", []*prog.Func{f}, nil, prog.DataBase+4096, "main")
	if err != nil {
		t.Fatal(err)
	}
	head := f.Instrs[1].Addr
	f.Instrs[3].A.Imm = int64(head)
	m, err := New(mod)
	if err != nil {
		t.Fatal(err)
	}
	return m, head
}

func TestInjectTrapAfterSteps(t *testing.T) {
	m, _ := loopProgram(t, 1000)
	m.InjectTrapAfter(100)
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultInjected {
		t.Fatalf("err = %v, want FaultInjected", err)
	}
	if m.Steps != 100 {
		t.Errorf("trap fired at step %d, want exactly 100", m.Steps)
	}
	if f.PC == 0 {
		t.Error("injected fault carries no PC")
	}
}

func TestInjectTrapAtAddress(t *testing.T) {
	m, head := loopProgram(t, 1000)
	// The loop-head ADDI executes once per iteration; arm its 7th hit.
	m.InjectTrapAt(head, 7)
	err := m.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultInjected {
		t.Fatalf("err = %v, want FaultInjected", err)
	}
	if f.PC != head {
		t.Errorf("fault PC = %#x, want the armed site %#x", f.PC, head)
	}
	if got := m.Profile()[head]; got != 7 {
		t.Errorf("armed site executed %d times before the trap, want 7", got)
	}
}

func TestInjectTrapDisarmedByClearAndReset(t *testing.T) {
	m, _ := loopProgram(t, 50)
	m.InjectTrapAfter(10)
	m.ClearInjected()
	if err := m.Run(); err != nil {
		t.Fatalf("cleared trap still fired: %v", err)
	}
	// Reset must also disarm: a pooled machine re-armed for one
	// evaluation must not trap on the next.
	m2, _ := loopProgram(t, 50)
	m2.InjectTrapAfter(10)
	if err := m2.Reset(m2.prog); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(); err != nil {
		t.Fatalf("trap survived Reset: %v", err)
	}
}

func TestRunContextCancel(t *testing.T) {
	m, _ := loopProgram(t, 1<<40)
	m.MaxSteps = 1 << 50
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := m.RunContext(ctx)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCancelled {
		t.Fatalf("err = %v, want FaultCancelled", err)
	}
	if m.Steps == 0 {
		t.Error("cancelled before executing anything")
	}
}

func TestRunContextDeadline(t *testing.T) {
	m, _ := loopProgram(t, 1<<40)
	m.MaxSteps = 1 << 50
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.RunContext(ctx)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCancelled {
		t.Fatalf("err = %v, want FaultCancelled", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("deadline took %v to take effect", wall)
	}
}

func TestRunContextCompletesNormally(t *testing.T) {
	m, _ := loopProgram(t, 100)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.RunContext(ctx); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !m.Halted() {
		t.Error("program did not halt")
	}
	// A background (never-cancellable) context takes the plain Run path.
	m2, _ := loopProgram(t, 100)
	if err := m2.RunContext(context.Background()); err != nil {
		t.Fatalf("RunContext(Background): %v", err)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	m, _ := loopProgram(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.RunContext(ctx)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCancelled {
		t.Fatalf("err = %v, want FaultCancelled", err)
	}
	if m.Steps != 0 {
		t.Errorf("executed %d steps under a cancelled context", m.Steps)
	}
}
