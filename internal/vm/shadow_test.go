package vm

import (
	"math"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// findShadow returns the first shadow record for op, or nil.
func findShadow(recs []ShadowRecord, op isa.Op) *ShadowRecord {
	for i := range recs {
		if recs[i].Op == op {
			return &recs[i]
		}
	}
	return nil
}

func TestShadowObservesAccumulationDrift(t *testing.T) {
	// x = 1.0; x += 1e-9 three times. In the float32 shadow each add is
	// absorbed (1.0 + 1e-9 == 1.0), so the shadow drifts ~3e-9 behind the
	// reference — the per-instruction relative error the profile reports.
	instrs := loadF64(0, 1.0)
	instrs = append(instrs, loadF64(1, 1e-9)...)
	for i := 0; i < 3; i++ {
		instrs = append(instrs, isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)))
	}
	instrs = append(instrs,
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var adds []ShadowRecord
	for _, r := range m.ShadowRecords() {
		if r.Op == isa.ADDSD {
			adds = append(adds, r)
		}
	}
	if len(adds) != 3 {
		t.Fatalf("ADDSD records = %d, want 3", len(adds))
	}
	// Drift accumulates: the i-th add sees ~i*1e-9 of error.
	for i, r := range adds {
		want := float64(i+1) * 1e-9
		if r.MaxRelErr < want/2 || r.MaxRelErr > want*2 {
			t.Errorf("add %d MaxRelErr = %g, want ~%g", i, r.MaxRelErr, want)
		}
		if r.Divergences != 0 {
			t.Errorf("add %d Divergences = %d, want 0", i, r.Divergences)
		}
	}
}

func TestShadowExactArithmeticIsClean(t *testing.T) {
	// 1.5 + 0.25 is exact in both precisions: zero error, but sampled.
	instrs := loadF64(0, 1.5)
	instrs = append(instrs, loadF64(1, 0.25)...)
	instrs = append(instrs,
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.MULSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, op := range []isa.Op{isa.ADDSD, isa.MULSD} {
		rec := findShadow(m.ShadowRecords(), op)
		if rec == nil {
			t.Fatalf("no %s record", op)
		}
		if rec.MaxRelErr != 0 {
			t.Errorf("%s MaxRelErr = %g, want 0", op, rec.MaxRelErr)
		}
	}
}

func TestShadowCancellationBits(t *testing.T) {
	// (1 + 2^-20) - 1 cancels ~20 leading bits.
	instrs := loadF64(0, 1+math.Ldexp(1, -20))
	instrs = append(instrs, loadF64(1, 1.0)...)
	instrs = append(instrs,
		isa.I(isa.SUBSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rec := findShadow(m.ShadowRecords(), isa.SUBSD)
	if rec == nil {
		t.Fatal("no SUBSD record")
	}
	if rec.MaxCancelBits < 19 || rec.MaxCancelBits > 21 {
		t.Errorf("MaxCancelBits = %d, want ~20", rec.MaxCancelBits)
	}
}

func TestShadowComparisonDivergence(t *testing.T) {
	// x = 1 + 1e-9 (shadow absorbs to 1.0), then compare against 1.0: the
	// reference sees x > 1, the shadow sees equality — a divergence.
	instrs := loadF64(0, 1.0)
	instrs = append(instrs, loadF64(1, 1e-9)...)
	instrs = append(instrs, loadF64(2, 1.0)...)
	instrs = append(instrs,
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.UCOMISD, isa.Xmm(0), isa.Xmm(2)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rec := findShadow(m.ShadowRecords(), isa.UCOMISD)
	if rec == nil {
		t.Fatal("no UCOMISD record")
	}
	if rec.Divergences != 1 {
		t.Errorf("Divergences = %d, want 1", rec.Divergences)
	}
	if rec.MaxRelErr != 1 {
		t.Errorf("MaxRelErr = %g, want 1 (divergence)", rec.MaxRelErr)
	}
}

func TestShadowTruncationDivergence(t *testing.T) {
	// 2^24+1 is not representable in float32; truncation of the shadow
	// yields 2^24, diverging from the reference.
	instrs := loadF64(0, 1<<24+1)
	instrs = append(instrs,
		isa.I(isa.CVTTSD2SI, isa.Gpr(isa.RAX), isa.Xmm(0)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rec := findShadow(m.ShadowRecords(), isa.CVTTSD2SI)
	if rec == nil {
		t.Fatal("no CVTTSD2SI record")
	}
	if rec.Divergences != 1 {
		t.Errorf("Divergences = %d, want 1", rec.Divergences)
	}
	if m.Out[0].Bits != 1<<24+1 {
		t.Errorf("architectural result changed: %d", m.Out[0].Bits)
	}
}

func TestShadowFlowsThroughMemory(t *testing.T) {
	// Drift survives a store/load round trip through a memory slot: two
	// adds of 5e-8 are each absorbed by the float32 shadow (below half an
	// ulp at 1.0) but their double sum 1e-7 is above it, so a shadow
	// reseeded from the stored double would round to 1.00000012f while the
	// flowed shadow stays exactly 1.0f.
	base := int64(prog.DataBase)
	instrs := loadF64(0, 1.0)
	instrs = append(instrs, loadF64(1, 5e-8)...)
	instrs = append(instrs, loadF64(2, 1.0)...)
	instrs = append(instrs,
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.MOVSD, isa.Mem(isa.RBX, 0), isa.Xmm(0)),
		isa.I(isa.MOVSD, isa.Xmm(3), isa.Mem(isa.RBX, 0)),
		isa.I(isa.SUBSD, isa.Xmm(3), isa.Xmm(2)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rec := findShadow(m.ShadowRecords(), isa.SUBSD)
	if rec == nil {
		t.Fatal("no SUBSD record")
	}
	// Flowed shadow: 1.0f - 1.0f = 0 against reference 1e-7 => rel ~1e-7.
	// A reseeded shadow would land within ~2e-8 of the reference.
	if rec.MaxRelErr < 5e-8 {
		t.Errorf("MaxRelErr = %g, want ~1e-7 (shadow drift lost through memory)", rec.MaxRelErr)
	}
}

func TestShadowInvalidateReseeds(t *testing.T) {
	// After an untracked write is invalidated, the shadow reseeds from the
	// stored double: no phantom drift.
	base := int64(prog.DataBase)
	instrs := loadF64(0, 1.0)
	instrs = append(instrs, loadF64(1, 1e-9)...)
	instrs = append(instrs,
		isa.I(isa.MOVRI, isa.Gpr(isa.RBX), isa.Imm(base)),
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.MOVSD, isa.Mem(isa.RBX, 0), isa.Xmm(0)),
		isa.I(isa.HALT),
	)
	m := mach(t, instrs)
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	addr := uint64(base)
	if _, ok := m.shadow.mem[addr]; !ok {
		t.Fatal("slot not shadowed after MOVSD store")
	}
	m.ShadowInvalidate(addr, 8)
	if _, ok := m.shadow.mem[addr]; ok {
		t.Error("slot still shadowed after invalidate")
	}
}

func TestShadowArchitecturallyInvisible(t *testing.T) {
	// The same program with and without the shadow produces bit-identical
	// architectural state.
	instrs := loadF64(0, 1.0/3.0)
	instrs = append(instrs, loadF64(1, 1e-9)...)
	instrs = append(instrs,
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.MULSD, isa.Xmm(0), isa.Xmm(0)),
		isa.I(isa.SQRTSD, isa.Xmm(0), isa.Xmm(0)),
		isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)),
		isa.I(isa.HALT),
	)
	plain := mach(t, instrs)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	shadowed := mach(t, instrs)
	shadowed.EnableShadow()
	if err := shadowed.Run(); err != nil {
		t.Fatal(err)
	}
	if plain.Out[0].Bits != shadowed.Out[0].Bits {
		t.Errorf("output bits differ: %#x vs %#x", plain.Out[0].Bits, shadowed.Out[0].Bits)
	}
	if plain.XMM != shadowed.XMM || plain.GPR != shadowed.GPR {
		t.Error("register state differs with shadow enabled")
	}
	if plain.Cycles != shadowed.Cycles || plain.Steps != shadowed.Steps {
		t.Error("cost model differs with shadow enabled")
	}
}

func TestShadowResetOnRewind(t *testing.T) {
	instrs := loadF64(0, 1.0)
	instrs = append(instrs, loadF64(1, 1e-9)...)
	instrs = append(instrs,
		isa.I(isa.ADDSD, isa.Xmm(0), isa.Xmm(1)),
		isa.I(isa.HALT),
	)
	f := &prog.Func{Name: "main", Instrs: instrs}
	mod, err := prog.Build("t", []*prog.Func{f}, nil, prog.DataBase+1<<16, "main")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m := lp.NewMachine()
	m.EnableShadow()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	first := m.ShadowRecords()
	if len(first) == 0 {
		t.Fatal("no records on first run")
	}
	m.ResetTo(lp)
	if len(m.ShadowRecords()) != 0 {
		t.Error("records survive rewind")
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	second := m.ShadowRecords()
	if len(second) != len(first) || second[0].MaxRelErr != first[0].MaxRelErr {
		t.Errorf("rerun records differ: %+v vs %+v", second, first)
	}
}
