package vm

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fpmix/internal/hl"
)

// Snapshot/RestoreFrom must be perfectly transparent: capturing a machine
// mid-run, letting it run on (or scribbling over its state), restoring,
// and finishing the run must produce a machine byte-identical to one that
// ran start to finish untouched — on every dispatch tier, with and
// without dirty-page tracking, and with the shadow pass enabled.

// snapTier names one way of driving a machine for the property test.
type snapTier struct {
	name      string
	noCompile bool
	shadow    bool
	step      bool // drive via manual Step calls instead of Run
}

var snapTiers = []snapTier{
	{name: "compiled"},
	{name: "instrumented", noCompile: true},
	{name: "step", step: true},
	{name: "shadow", shadow: true},
}

// runTo drives m on the tier until the step budget target is reached, the
// program halts, or a fault ends the run. The final budget semantics
// mirror Run exactly.
func (tr snapTier) runTo(m *Machine, target uint64) error {
	if tr.step {
		for !m.halted && m.Steps < target {
			if err := m.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	saved := m.MaxSteps
	m.MaxSteps = target
	err := m.Run()
	m.MaxSteps = saved
	if f, ok := err.(*Fault); ok && f.Kind == FaultMaxSteps {
		return nil
	}
	return err
}

// finish drives m on the tier to completion with the default budget.
func (tr snapTier) finish(m *Machine) error {
	if tr.step {
		return runStepEngine(m)
	}
	return m.Run()
}

func (tr snapTier) newMachine(lp *Program) *Machine {
	m := lp.NewMachine()
	m.NoCompile = tr.noCompile
	if tr.shadow {
		m.EnableShadow()
	}
	return m
}

// buildSnapModule generates one random structured module (same generator
// as the engine differential suite).
func buildSnapModule(t *testing.T, r *rand.Rand, trial int) *hl.Prog {
	p := hl.New("snap", hl.ModeF64)
	nv := 1 + r.Intn(3)
	vars := make([]hl.FVar, nv)
	for i := range vars {
		vars[i] = p.ScalarInit("v", math.Trunc(r.NormFloat64()*1024)/32)
	}
	ivars := []hl.IVar{p.IntInit("k", int64(r.Intn(20)-4))}
	loopVars := []hl.IVar{p.Int("l0"), p.Int("l1")}
	av := make([]float64, 8)
	for i := range av {
		av[i] = math.Trunc(r.NormFloat64()*256) / 8
	}
	arr := p.ArrayInit("a", av)
	hasSub := r.Intn(2) == 0
	if hasSub {
		sub := p.Func("sub")
		genStmts(r, sub, vars, ivars, nil, arr, false, 0, 1+r.Intn(3))
		sub.Ret()
	}
	f := p.Func("main")
	genStmts(r, f, vars, ivars, loopVars, arr, hasSub, 2, 3+r.Intn(5))
	f.Halt()
	return p
}

// scribble trashes every piece of machine state a restore must repair.
func scribble(r *rand.Rand, m *Machine) {
	for i := range m.GPR {
		m.GPR[i] = r.Uint64()
	}
	for i := range m.XMM {
		m.XMM[i][0], m.XMM[i][1] = r.Uint64(), r.Uint64()
	}
	m.eq, m.ltS, m.ltU = r.Intn(2) == 0, r.Intn(2) == 0, r.Intn(2) == 0
	for i := 0; i < 64; i++ {
		a := r.Intn(len(m.Mem))
		m.Mem[a] ^= byte(1 + r.Intn(255))
		m.MarkMemWritten(uint64(a), 1)
	}
	m.Out = append(m.Out, OutVal{Kind: OutI64, Bits: 0xDEAD})
	m.Cycles += uint64(r.Intn(1000))
}

func TestSnapshotRestoreIdentity(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 12
	}
	r := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < trials; trial++ {
		mod, err := buildSnapModule(t, r, trial).Build("main")
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		lp, err := Link(mod)
		if err != nil {
			t.Fatalf("trial %d: link: %v", trial, err)
		}
		for _, tr := range snapTiers {
			tracked := trial%2 == 0
			label := fmt.Sprintf("trial %d %s tracked=%v", trial, tr.name, tracked)

			// Reference: one uninterrupted run on the same tier.
			ref := tr.newMachine(lp)
			refErr := tr.finish(ref)

			// Pick a capture point somewhere inside the reference run.
			var k uint64
			if ref.Steps > 0 {
				k = uint64(r.Int63n(int64(ref.Steps + 1)))
			}

			m := tr.newMachine(lp)
			if tracked {
				m.TrackDirtyPages()
			}
			if err := tr.runTo(m, k); err != nil {
				// The prefix itself faulted (possible: the capture point
				// is past a fault the budget semantics order differently);
				// skip, the other trials cover this tier.
				continue
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatalf("%s: snapshot: %v", label, err)
			}

			// Mutate: let the machine run on to completion, then trash
			// whatever state is left.
			_ = tr.finish(m)
			scribble(r, m)

			if err := m.RestoreFrom(snap); err != nil {
				t.Fatalf("%s: restore: %v", label, err)
			}
			if m.Steps != snap.Steps() {
				t.Fatalf("%s: restored Steps=%d, want %d", label, m.Steps, snap.Steps())
			}
			gotErr := tr.finish(m)

			diffMachines(t, label, engineResult{m, gotErr}, engineResult{ref, refErr})
			if tr.shadow {
				if !reflect.DeepEqual(m.ShadowRecords(), ref.ShadowRecords()) {
					t.Errorf("%s: shadow records diverge after restore", label)
				}
			}
			if t.Failed() {
				t.Fatalf("%s: stopping at first divergence", label)
			}
		}
	}
}

// TestSnapshotRestoreAcrossPrograms restores a snapshot taken on one
// linked program onto a machine bound to a different Program value with
// the same layout (the stable-layout contract the fork engine relies on),
// exercising the address-based program-counter and count translation.
func TestSnapshotRestoreAcrossPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		seed := r.Int63()
		build := func() *Program {
			mod, err := buildSnapModule(t, rand.New(rand.NewSource(seed)), trial).Build("main")
			if err != nil {
				t.Fatalf("trial %d: build: %v", trial, err)
			}
			lp, err := Link(mod)
			if err != nil {
				t.Fatalf("trial %d: link: %v", trial, err)
			}
			return lp
		}
		lpA, lpB := build(), build()
		if len(lpA.instrs) > 0 && &lpA.instrs[0] == &lpB.instrs[0] {
			t.Fatal("distinct programs share an instruction stream; test is vacuous")
		}

		ref := lpB.NewMachine()
		refErr := ref.Run()
		var k uint64
		if ref.Steps > 0 {
			k = uint64(r.Int63n(int64(ref.Steps + 1)))
		}

		donor := lpA.NewMachine()
		donor.TrackDirtyPages()
		donor.MaxSteps = k
		if err := donor.Run(); err != nil {
			if f, ok := err.(*Fault); !ok || f.Kind != FaultMaxSteps {
				continue
			}
		}
		donor.MaxSteps = 0
		snap, err := donor.Snapshot()
		if err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}

		m := lpB.NewMachine()
		m.TrackDirtyPages()
		if err := m.RestoreFrom(snap); err != nil {
			t.Fatalf("trial %d: cross-program restore: %v", trial, err)
		}
		gotErr := m.Run()
		diffMachines(t, fmt.Sprintf("trial %d cross-program", trial),
			engineResult{m, gotErr}, engineResult{ref, refErr})
		if t.Failed() {
			t.Fatalf("trial %d: stopping at first divergence", trial)
		}
	}
}

// TestSnapshotPageSharing pins the COW economics: consecutive snapshots
// share every page the program did not write in between.
func TestSnapshotPageSharing(t *testing.T) {
	p := hl.New("cow", hl.ModeF64)
	v := p.ScalarInit("v", 1.0)
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, hl.IConst(0), hl.IConst(1000), func() {
		f.Set(v, hl.Add(hl.Load(v), hl.Const(0.5)))
	})
	f.Out(hl.Load(v))
	f.Halt()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m := lp.NewMachine()
	m.TrackDirtyPages()

	m.MaxSteps = 50
	_ = m.Run()
	s1, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 100
	_ = m.Run()
	s2, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.pages) != len(s2.pages) {
		t.Fatalf("page counts differ: %d vs %d", len(s1.pages), len(s2.pages))
	}
	shared, total := 0, len(s1.pages)
	for i := range s1.pages {
		if s1.pages[i] == s2.pages[i] {
			shared++
		}
	}
	// The loop touches one scalar slot and the stack page; everything
	// else must be shared between the two snapshots.
	if total-shared > 2 {
		t.Errorf("snapshots share %d/%d pages; expected all but at most 2", shared, total)
	}
	if shared == total {
		t.Errorf("snapshots share every page; the loop's writes went untracked")
	}

	// An untracked machine restoring s1 then s2 must still be exact.
	ref := lp.NewMachine()
	refErr := ref.Run()
	if err := m.RestoreFrom(s1); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreFrom(s2); err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 0
	gotErr := m.Run()
	diffMachines(t, "cow restore chain", engineResult{m, gotErr}, engineResult{ref, refErr})
}

// TestSnapshotInjectRules pins the fault-injection interaction: a machine
// with an armed trap refuses to snapshot (a snapshot must never capture a
// pending fault), and restoring disarms any armed trap.
func TestSnapshotInjectRules(t *testing.T) {
	p := hl.New("inj", hl.ModeF64)
	v := p.ScalarInit("v", 2.0)
	f := p.Func("main")
	f.Out(hl.Load(v))
	f.Halt()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	m := lp.NewMachine()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m.InjectTrapAfter(1)
	if _, err := m.Snapshot(); err == nil {
		t.Error("snapshot with an armed injected trap should fail")
	}
	if err := m.RestoreFrom(snap); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Errorf("restore should disarm the trap; run faulted: %v", err)
	}
}

// TestSnapshotStops pins the breakpoint machinery the donor pass uses:
// Run stops before executing a stop address with exact state, resumes
// after ClearStop, and stops do not perturb the finished machine.
func TestSnapshotStops(t *testing.T) {
	p := hl.New("stops", hl.ModeF64)
	v := p.ScalarInit("v", 1.0)
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, hl.IConst(0), hl.IConst(10), func() {
		f.Set(v, hl.Add(hl.Load(v), hl.Const(1.0)))
	})
	f.Out(hl.Load(v))
	f.Halt()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Link(mod)
	if err != nil {
		t.Fatal(err)
	}
	ref := lp.NewMachine()
	refErr := ref.Run()
	if refErr != nil {
		t.Fatal(refErr)
	}

	// Stop at every instruction the reference executed, one at a time.
	m := lp.NewMachine()
	for i := range lp.instrs {
		if ref.Counts()[i] > 0 {
			m.StopAt(lp.instrs[i].Addr)
		}
	}
	stopsSeen := 0
	for {
		err := m.Run()
		if err == nil {
			break
		}
		st, ok := err.(*Stopped)
		if !ok {
			t.Fatalf("run: %v", err)
		}
		if st.PC != m.PC() {
			t.Fatalf("stopped at %#x but machine pc is %#x", st.PC, m.PC())
		}
		if st.Steps != m.Steps {
			t.Fatalf("stop reports %d steps, machine has %d", st.Steps, m.Steps)
		}
		stopsSeen++
		m.ClearStop(st.PC)
	}
	if stopsSeen == 0 {
		t.Fatal("no stops fired")
	}
	diffMachines(t, "stops", engineResult{m, nil}, engineResult{ref, refErr})
}
