package mpi

import (
	"strings"
	"testing"
	"time"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// sumProgram: every rank contributes rank+1 into a one-element allreduce;
// rank 0 outputs the total (P*(P+1)/2).
func sumProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("mpisum", hl.ModeF64)
	buf := p.Array("buf", 4)
	rank := p.Int("rank")
	f := p.Func("main")
	f.MPIRank(rank)
	f.Store(buf, hl.IConst(0), hl.FromInt(hl.IAdd(hl.ILoad(rank), hl.IConst(1))))
	f.MPIAllreduceSum(buf, hl.IConst(1))
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		f.Out(hl.At(buf, hl.IConst(0)))
	}, nil)
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		machines, err := RunWorld(sumProgram(t), size, 0)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		want := float64(size*(size+1)) / 2
		if got := machines[0].Out[0].F64(); got != want {
			t.Errorf("size %d: sum = %v, want %v", size, got, want)
		}
		for r := 1; r < size; r++ {
			if len(machines[r].Out) != 0 {
				t.Errorf("rank %d produced output", r)
			}
		}
	}
}

func TestSendRecvRing(t *testing.T) {
	// Each rank sends its id+1 to the next rank and receives from the
	// previous; output received value.
	p := hl.New("ring", hl.ModeF64)
	sbuf := p.Array("sbuf", 1)
	rbuf := p.Array("rbuf", 1)
	rank := p.Int("rank")
	size := p.Int("size")
	next := p.Int("next")
	prev := p.Int("prev")
	f := p.Func("main")
	f.MPIRank(rank)
	f.MPISize(size)
	f.Store(sbuf, hl.IConst(0), hl.FromInt(hl.IAdd(hl.ILoad(rank), hl.IConst(1))))
	// next = (rank+1) mod size; prev = (rank+size-1) mod size — computed
	// without a mod instruction via If.
	f.SetI(next, hl.IAdd(hl.ILoad(rank), hl.IConst(1)))
	f.If(hl.IGe(hl.ILoad(next), hl.ILoad(size)), func() {
		f.SetI(next, hl.IConst(0))
	}, nil)
	f.SetI(prev, hl.ISub(hl.ILoad(rank), hl.IConst(1)))
	f.If(hl.ILt(hl.ILoad(prev), hl.IConst(0)), func() {
		f.SetI(prev, hl.ISub(hl.ILoad(size), hl.IConst(1)))
	}, nil)
	f.MPISend(sbuf, hl.IConst(1), hl.ILoad(next))
	f.MPIRecv(rbuf, hl.IConst(1), hl.ILoad(prev))
	f.Out(hl.At(rbuf, hl.IConst(0)))
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	machines, err := RunWorld(m, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		want := float64((r+3)%4 + 1)
		if got := machines[r].Out[0].F64(); got != want {
			t.Errorf("rank %d received %v, want %v", r, got, want)
		}
	}
}

func TestBcast(t *testing.T) {
	p := hl.New("bcast", hl.ModeF64)
	buf := p.Array("buf", 2)
	rank := p.Int("rank")
	f := p.Func("main")
	f.MPIRank(rank)
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		f.Store(buf, hl.IConst(0), hl.Const(3.5))
		f.Store(buf, hl.IConst(1), hl.Const(-1.25))
	}, nil)
	f.MPIBcast(buf, hl.IConst(2), hl.IConst(0))
	f.Out(hl.At(buf, hl.IConst(0)))
	f.Out(hl.At(buf, hl.IConst(1)))
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	machines, err := RunWorld(m, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if machines[r].Out[0].F64() != 3.5 || machines[r].Out[1].F64() != -1.25 {
			t.Errorf("rank %d got %v, %v", r, machines[r].Out[0].F64(), machines[r].Out[1].F64())
		}
	}
}

func TestBarrierMany(t *testing.T) {
	p := hl.New("barriers", hl.ModeF64)
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, hl.IConst(0), hl.IConst(50), func() {
		f.MPIBarrier()
	})
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorld(m, 8, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDecodesReplacedValues(t *testing.T) {
	// The reduction must treat a flagged (replaced) element as its
	// single-precision payload, like an instrumented MPI library would.
	w := NewWorld(1)
	got, err := w.allreduce(0, []float64{replace.Value(replace.Encode(2.5))})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2.5 {
		t.Errorf("allreduce of replaced value = %v", got[0])
	}
}

func TestRankFaultAborts(t *testing.T) {
	// Rank 1 recvs from rank 0, which never sends and halts; world must
	// abort rather than hang once rank... actually rank 0 halts fine; the
	// recv blocks forever. Use MaxSteps on a spinning rank instead: rank 0
	// spins past its budget while rank 1 waits at a barrier.
	p := hl.New("faulty", hl.ModeF64)
	rank := p.Int("rank")
	x := p.Scalar("x")
	f := p.Func("main")
	f.MPIRank(rank)
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		f.While(hl.Ge(hl.Const(1), hl.Const(0)), func() { // infinite loop
			f.Set(x, hl.Add(hl.Load(x), hl.Const(1)))
		})
	}, nil)
	f.MPIBarrier()
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorld(m, 2, 50_000)
	if err == nil {
		t.Fatal("want error from faulting rank")
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("err = %v", err)
	}
}

// recvProgram receives one element from src and halts.
func recvProgram(t *testing.T, src int64) *prog.Module {
	t.Helper()
	p := hl.New("recv", hl.ModeF64)
	buf := p.Array("buf", 1)
	f := p.Func("main")
	f.MPIRecv(buf, hl.IConst(1), hl.IConst(src))
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecvOnClosedCommunicator(t *testing.T) {
	// A receive issued after Close must fail immediately with the close
	// error, not block on the empty mailbox.
	w := NewWorld(2)
	m, err := vm.New(recvProgram(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.Host = w.Rank(0)
	w.Close()
	err = m.Run()
	if err == nil {
		t.Fatal("recv on closed communicator succeeded")
	}
	if !strings.Contains(err.Error(), "closed") {
		t.Errorf("err = %v, want communicator-closed error", err)
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	// A receive already blocked when the communicator closes must wake
	// with the close error instead of deadlocking.
	w := NewWorld(2)
	m, err := vm.New(recvProgram(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	m.Host = w.Rank(0)
	done := make(chan error, 1)
	go func() { done <- m.Run() }()
	time.Sleep(10 * time.Millisecond) // give the recv time to block
	w.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Errorf("err = %v, want communicator-closed error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv deadlocked across Close")
	}
}

func TestRecvFromDepartedRank(t *testing.T) {
	// Rank 1 receives from rank 0, which halts without ever sending; the
	// receive must fail cleanly once rank 0 departs.
	p := hl.New("recvgone", hl.ModeF64)
	buf := p.Array("buf", 1)
	rank := p.Int("rank")
	f := p.Func("main")
	f.MPIRank(rank)
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(1)), func() {
		f.MPIRecv(buf, hl.IConst(1), hl.IConst(0))
	}, nil)
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorld(m, 2, 0)
	if err == nil {
		t.Fatal("recv from departed rank succeeded")
	}
	if !strings.Contains(err.Error(), "departed") && !strings.Contains(err.Error(), "rank") {
		t.Errorf("err = %v, want departed-rank error", err)
	}
}

func TestAllreduceMismatchedParticipation(t *testing.T) {
	// Only rank 1 joins the reduction; rank 0 halts without
	// participating. The collective must fail with a mismatch error, not
	// deadlock waiting for a rank that can never arrive.
	p := hl.New("mismatch", hl.ModeF64)
	buf := p.Array("buf", 1)
	rank := p.Int("rank")
	f := p.Func("main")
	f.MPIRank(rank)
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(1)), func() {
		f.MPIAllreduceSum(buf, hl.IConst(1))
	}, nil)
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunWorld(m, 2, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mismatched allreduce succeeded")
		}
		if !strings.Contains(err.Error(), "mismatch") {
			t.Errorf("err = %v, want collective-mismatch error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mismatched allreduce deadlocked")
	}
}

func TestCommCostScalesWithRanks(t *testing.T) {
	if commCost(1, 100) >= commCost(2, 100) {
		t.Error("single-rank comm should be cheap")
	}
	if commCost(2, 100) >= commCost(8, 100) {
		t.Error("comm cost should grow with rank count")
	}
	if commCost(4, 10) >= commCost(4, 10000) {
		t.Error("comm cost should grow with message size")
	}
}

func TestTotalCycles(t *testing.T) {
	machines, err := RunWorld(sumProgram(t), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, m := range machines {
		want += m.Cycles
	}
	if got := TotalCycles(machines); got != want || got == 0 {
		t.Errorf("TotalCycles = %d, want %d", got, want)
	}
}

func TestInvalidPeerErrors(t *testing.T) {
	p := hl.New("badpeer", hl.ModeF64)
	buf := p.Array("buf", 1)
	f := p.Func("main")
	f.MPISend(buf, hl.IConst(1), hl.IConst(99))
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorld(m, 2, 0); err == nil {
		t.Error("send to invalid rank accepted")
	}
}
