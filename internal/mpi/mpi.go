// Package mpi provides the message-passing substrate for the NAS-style
// MPI kernels: a goroutine-based communicator with the collective and
// point-to-point operations the benchmarks use, exposed to programs as VM
// syscalls (vm.Host).
//
// Communication carries raw 64-bit payloads, so in-place replaced values
// (flag + single payload) travel through sends and broadcasts untouched,
// exactly as memcpy-style MPI data movement would. Reductions behave like
// an instrumented MPI library: each element is upcast from its replaced
// form if flagged, summed in double precision, and the result stored as a
// plain double.
//
// Each operation charges a modeled communication cost to the calling
// machine. Communication is not instrumented (the analysis rewrites user
// code, not the MPI runtime), which is why measured instrumentation
// overhead falls as rank counts grow and communication claims a larger
// share of the runtime — the Figure 8 effect.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// World is a communicator of Size ranks.
type World struct {
	size int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     int

	// Failure state: once set (abort or close), every blocked operation
	// wakes with the failure and every later one returns it immediately.
	failure error
	done    chan struct{}

	// Departure tracking: a rank that finished executing can never join
	// another collective, so collectives blocked on it (and receives from
	// it, once its mailbox drains) fail cleanly instead of deadlocking.
	departed  []bool
	departCh  []chan struct{}
	ndeparted int

	// reduce scratch: per-rank contributions for the current collective.
	contrib [][]float64
	result  []float64

	// bcast scratch.
	bcastBuf []uint64

	// point-to-point mailboxes: p2p[src][dst].
	p2p [][]chan []uint64
}

// NewWorld creates a communicator for size ranks.
func NewWorld(size int) *World {
	if size < 1 {
		size = 1
	}
	w := &World{size: size, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	w.contrib = make([][]float64, size)
	w.departed = make([]bool, size)
	w.departCh = make([]chan struct{}, size)
	w.p2p = make([][]chan []uint64, size)
	for i := range w.p2p {
		w.departCh[i] = make(chan struct{})
		w.p2p[i] = make([]chan []uint64, size)
		for j := range w.p2p[i] {
			w.p2p[i][j] = make(chan []uint64, 64)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns the vm.Host for rank id.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range", id))
	}
	return &Rank{w: w, id: id}
}

// Rank is one process's endpoint; it implements vm.Host.
type Rank struct {
	w  *World
	id int
}

var (
	errAborted = fmt.Errorf("mpi: world aborted (another rank died)")
	errClosed  = fmt.Errorf("mpi: communicator closed")
)

// failLocked records the world's failure and wakes every blocked rank.
// Callers hold w.mu.
func (w *World) failLocked(err error) {
	if w.failure == nil {
		w.failure = err
		close(w.done)
		w.cond.Broadcast()
	}
}

// err returns the recorded failure, if any.
func (w *World) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failure
}

// Abort wakes every blocked rank; subsequent collective operations fail.
// It is called when any rank dies so the rest do not deadlock.
func (w *World) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failLocked(errAborted)
}

// Close marks the communicator closed: every blocked operation wakes
// with a clean error and every later one fails immediately, never
// deadlocking.
func (w *World) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failLocked(errClosed)
}

// Leave records that rank has finished executing. Collectives blocked on
// the departed rank — which can now never complete — fail with a
// mismatch error, and receives from it fail once its mailbox drains.
// RunWorld calls this as each rank's program ends.
func (w *World) Leave(rank int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rank < 0 || rank >= w.size || w.departed[rank] {
		return
	}
	w.departed[rank] = true
	w.ndeparted++
	close(w.departCh[rank])
	w.cond.Broadcast()
}

// mismatchLocked builds the mismatched-participation error. Callers hold
// w.mu and have checked ndeparted > 0.
func (w *World) mismatchLocked() error {
	for r, d := range w.departed {
		if d {
			return fmt.Errorf("mpi: collective mismatch: rank %d already left the communicator", r)
		}
	}
	return fmt.Errorf("mpi: collective mismatch")
}

// barrier blocks until every rank has arrived, or fails cleanly when the
// world aborts/closes or a rank that can never arrive has departed.
func (w *World) barrier() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failure != nil {
		return w.failure
	}
	if w.ndeparted > 0 {
		return w.mismatchLocked()
	}
	gen := w.gen
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
		return nil
	}
	for gen == w.gen && w.failure == nil && w.ndeparted == 0 {
		w.cond.Wait()
	}
	if gen != w.gen {
		return nil // completed before any failure
	}
	w.arrived-- // withdraw: this barrier can never complete
	if w.failure != nil {
		return w.failure
	}
	return w.mismatchLocked()
}

// allreduce sums vec element-wise across ranks, deterministically in rank
// order, and returns the shared result.
func (w *World) allreduce(rank int, vec []float64) ([]float64, error) {
	w.mu.Lock()
	w.contrib[rank] = vec
	w.mu.Unlock()
	if err := w.barrier(); err != nil {
		return nil, err
	}
	// One rank computes; everyone waits for it via a second barrier.
	if rank == 0 {
		sum := make([]float64, len(vec))
		for r := 0; r < w.size; r++ {
			c := w.contrib[r]
			for i := range sum {
				if i < len(c) {
					sum[i] += c[i]
				}
			}
		}
		w.mu.Lock()
		w.result = sum
		w.mu.Unlock()
	}
	if err := w.barrier(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	res := w.result
	w.mu.Unlock()
	return res, nil
}

// bcast shares root's buffer with every rank.
func (w *World) bcast(rank, root int, buf []uint64) ([]uint64, error) {
	if rank == root {
		w.mu.Lock()
		w.bcastBuf = buf
		w.mu.Unlock()
	}
	if err := w.barrier(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	res := w.bcastBuf
	w.mu.Unlock()
	if err := w.barrier(); err != nil {
		return nil, err
	}
	return res, nil
}

// Communication cost model (cycles): a latency term growing with the
// rank count plus a per-byte term. Values are synthetic but preserve the
// latency/bandwidth structure of a real interconnect.
func commCost(size, elems int) uint64 {
	if size <= 1 {
		return 10
	}
	lg := uint64(bits.Len(uint(size - 1)))
	return 800*lg + uint64(elems)*16
}

func p2pCost(elems int) uint64 { return 400 + uint64(elems)*8 }

// Syscall implements vm.Host.
func (r *Rank) Syscall(m *vm.Machine, num int64) error {
	switch num {
	case isa.SysMPIRank:
		m.GPR[isa.RAX] = uint64(r.id)
	case isa.SysMPISize:
		m.GPR[isa.RAX] = uint64(r.w.size)
	case isa.SysMPIBarrier:
		m.Cycles += commCost(r.w.size, 0)
		return r.w.barrier()
	case isa.SysMPIAllreduce:
		addr, n := m.GPR[isa.RDI], int(m.GPR[isa.RSI])
		vec, err := readVec(m, addr, n)
		if err != nil {
			return err
		}
		dec := make([]float64, n)
		for i, bits64 := range vec {
			dec[i] = replace.Value(bits64)
		}
		m.Cycles += commCost(r.w.size, n)
		sum, err := r.w.allreduce(r.id, dec)
		if err != nil {
			return err
		}
		out := make([]uint64, n)
		for i := range out {
			out[i] = math.Float64bits(sum[i])
		}
		return writeVec(m, addr, out)
	case isa.SysMPISendF64:
		addr, n, dst := m.GPR[isa.RDI], int(m.GPR[isa.RSI]), int(m.GPR[isa.RDX])
		if dst < 0 || dst >= r.w.size {
			return fmt.Errorf("mpi: send to invalid rank %d", dst)
		}
		vec, err := readVec(m, addr, n)
		if err != nil {
			return err
		}
		m.Cycles += p2pCost(n)
		select {
		case r.w.p2p[r.id][dst] <- vec:
		case <-r.w.done:
			return r.w.err()
		}
	case isa.SysMPIRecvF64:
		addr, n, src := m.GPR[isa.RDI], int(m.GPR[isa.RSI]), int(m.GPR[isa.RDX])
		if src < 0 || src >= r.w.size {
			return fmt.Errorf("mpi: recv from invalid rank %d", src)
		}
		var vec []uint64
		select {
		case vec = <-r.w.p2p[src][r.id]:
		case <-r.w.done:
			return r.w.err()
		case <-r.w.departCh[src]:
			// The sender is gone; deliver anything already mailed, else
			// fail cleanly — nothing will ever arrive.
			select {
			case vec = <-r.w.p2p[src][r.id]:
			case <-r.w.done:
				return r.w.err()
			default:
				return fmt.Errorf("mpi: recv from departed rank %d", src)
			}
		}
		if len(vec) > n {
			vec = vec[:n]
		}
		m.Cycles += p2pCost(n)
		return writeVec(m, addr, vec)
	case isa.SysMPIBcastF64:
		addr, n, root := m.GPR[isa.RDI], int(m.GPR[isa.RSI]), int(m.GPR[isa.RDX])
		if root < 0 || root >= r.w.size {
			return fmt.Errorf("mpi: bcast from invalid rank %d", root)
		}
		var buf []uint64
		if r.id == root {
			var err error
			buf, err = readVec(m, addr, n)
			if err != nil {
				return err
			}
		}
		m.Cycles += commCost(r.w.size, n)
		buf, err := r.w.bcast(r.id, root, buf)
		if err != nil {
			return err
		}
		return writeVec(m, addr, buf)
	default:
		return fmt.Errorf("mpi: unknown syscall %d", num)
	}
	return nil
}

func readVec(m *vm.Machine, addr uint64, n int) ([]uint64, error) {
	end := addr + uint64(n)*8
	if end > uint64(len(m.Mem)) || end < addr {
		return nil, fmt.Errorf("mpi: buffer [%#x,%#x) out of bounds", addr, end)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(m.Mem[addr+uint64(i)*8:])
	}
	return out, nil
}

func writeVec(m *vm.Machine, addr uint64, vec []uint64) error {
	end := addr + uint64(len(vec))*8
	if end > uint64(len(m.Mem)) || end < addr {
		return fmt.Errorf("mpi: buffer [%#x,%#x) out of bounds", addr, end)
	}
	for i, v := range vec {
		binary.LittleEndian.PutUint64(m.Mem[addr+uint64(i)*8:], v)
	}
	// Values arriving over the wire were not computed through the local
	// shadow lanes; drop any stale shadow slots so they reseed.
	m.ShadowInvalidate(addr, uint64(len(vec))*8)
	return nil
}

// RunResult is the outcome of one rank's execution.
type RunResult struct {
	Rank    int
	Machine *vm.Machine
	Err     error
}

// RunWorld executes the module on size ranks concurrently and returns the
// per-rank machines. It fails if any rank faults.
func RunWorld(mod *prog.Module, size int, maxSteps uint64) ([]*vm.Machine, error) {
	return RunWorldArmed(mod, size, maxSteps, nil)
}

// RunWorldArmed is RunWorld with a per-rank arming hook, called on each
// rank's machine after setup and before it starts executing. Fault
// injectors use it to arm deterministic mid-run traps on chosen ranks
// (faultinject.Injector.ArmWorld); a departing rank then exercises the
// communicator's failure semantics — surviving ranks observe collective
// mismatches and departed-peer errors instead of deadlocking.
func RunWorldArmed(mod *prog.Module, size int, maxSteps uint64, arm func(rank int, m *vm.Machine)) ([]*vm.Machine, error) {
	w := NewWorld(size)
	machines := make([]*vm.Machine, size)
	results := make(chan RunResult, size)
	// Link once: every rank shares the immutable compiled program and runs
	// on the compiled tier (unless the arming hook installs a per-step
	// hook, which routes that rank to the instrumented tier).
	lp, err := vm.Link(mod)
	if err != nil {
		return nil, err
	}
	for i := 0; i < size; i++ {
		m := lp.NewMachine()
		m.MaxSteps = maxSteps
		m.Host = w.Rank(i)
		if arm != nil {
			arm(i, m)
		}
		machines[i] = m
		go func(rank int, m *vm.Machine) {
			err := m.Run()
			w.Leave(rank)
			results <- RunResult{Rank: rank, Machine: m, Err: err}
		}(i, m)
	}
	var firstErr error
	for i := 0; i < size; i++ {
		r := <-results
		if r.Err != nil {
			w.Abort()
			if firstErr == nil {
				firstErr = fmt.Errorf("mpi: rank %d: %w", r.Rank, r.Err)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return machines, nil
}

// TotalCycles sums the modeled cycles across ranks — the "user CPU time"
// measure the paper's overhead ratios are computed from.
func TotalCycles(machines []*vm.Machine) uint64 {
	var total uint64
	for _, m := range machines {
		total += m.Cycles
	}
	return total
}
