package mpi

import (
	"strings"
	"testing"

	"fpmix/internal/faultinject"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// spinProgram: every rank spins through a long empty loop (plenty of steps
// for an injected trap to land in), then joins a one-element allreduce;
// rank 0 outputs the total.
func spinProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("spin", hl.ModeF64)
	buf := p.Array("buf", 1)
	rank := p.Int("rank")
	i := p.Int("i")
	f := p.Func("main")
	f.MPIRank(rank)
	f.Store(buf, hl.IConst(0), hl.FromInt(hl.IAdd(hl.ILoad(rank), hl.IConst(1))))
	f.For(i, hl.IConst(0), hl.IConst(100_000), func() {})
	f.MPIAllreduceSum(buf, hl.IConst(1))
	f.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		f.Out(hl.At(buf, hl.IConst(0)))
	}, nil)
	f.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunWorldArmedRankDeath(t *testing.T) {
	// Arm rank 1 to trap mid-loop. It departs before reaching the
	// allreduce; the surviving ranks must observe the collective failing
	// (departed peer / abort) rather than deadlocking, and the world
	// surfaces an error.
	mod := spinProgram(t)
	_, err := RunWorldArmed(mod, 4, 0, func(rank int, m *vm.Machine) {
		if rank == 1 {
			m.InjectTrapAfter(100)
		}
	})
	if err == nil {
		t.Fatal("world with a departed rank reported success")
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("error does not name a rank: %v", err)
	}
}

func TestRunWorldArmedInjector(t *testing.T) {
	// At trap rate 1 every rank is armed; all trap inside the spin loop
	// (every injected site is within the first 50k steps) and the world
	// aborts with injected-trap errors instead of hanging.
	inj := faultinject.New(11, faultinject.Rates{Trap: 1}, 0)
	mod := spinProgram(t)
	_, err := RunWorldArmed(mod, 4, 0, func(rank int, m *vm.Machine) {
		inj.ArmWorld("spin-eval", rank, m)
	})
	if err == nil {
		t.Fatal("fully armed world reported success")
	}
	if !strings.Contains(err.Error(), "injected trap") {
		t.Errorf("error does not surface the injected trap: %v", err)
	}
	if got := inj.Stats().Traps; got != 4 {
		t.Errorf("injector armed %d ranks, want 4", got)
	}
}

func TestRunWorldArmedNilHookMatchesRunWorld(t *testing.T) {
	machines, err := RunWorldArmed(sumProgram(t), 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := machines[0].Out[0].F64(); got != 10 {
		t.Errorf("sum = %v, want 10", got)
	}
}
