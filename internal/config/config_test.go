package config

import (
	"strings"
	"testing"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
)

// buildProgram creates a module with two functions and a loop, giving the
// configuration tree functions, blocks and instructions to represent.
func buildProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("demo", hl.ModeF64)
	x := p.ScalarInit("x", 1.0)
	i := p.Int("i")
	main := p.Func("main")
	main.For(i, hl.IConst(0), hl.IConst(4), func() {
		main.Set(x, hl.Add(hl.Load(x), hl.Const(0.5)))
		main.Call("scale")
	})
	main.Out(hl.Load(x))
	main.Halt()
	sc := p.Func("scale")
	sc.If(hl.Gt(hl.Load(x), hl.Const(2)), func() {
		sc.Set(x, hl.Mul(hl.Load(x), hl.Const(0.25)))
	}, nil)
	sc.Ret()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromModuleStructure(t *testing.T) {
	m := buildProgram(t)
	c, err := FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Root.Kind != KindModule || c.Root.Name != "demo" {
		t.Fatalf("bad root: %+v", c.Root)
	}
	if len(c.Root.Children) != 2 {
		t.Fatalf("functions with candidates = %d, want 2", len(c.Root.Children))
	}
	got := len(c.Candidates())
	want := len(m.Candidates())
	if got != want {
		t.Errorf("config candidates = %d, module has %d", got, want)
	}
	for _, a := range m.Candidates() {
		if c.NodeAt(a) == nil {
			t.Errorf("no node for candidate %#x", a)
		}
	}
}

func TestEffectiveDefaultsToDouble(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	for addr, p := range c.Effective() {
		if p != Double {
			t.Errorf("default precision at %#x = %v", addr, p)
		}
	}
}

func TestEffectiveOverrides(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	// Flag one instruction single.
	first := c.Candidates()[0]
	c.NodeAt(first).Flag = Single
	eff := c.Effective()
	if eff[first] != Single {
		t.Error("instruction flag ignored")
	}
	// Flag its containing function double: must override the child.
	fn := c.Root.Children[0]
	fn.Flag = Double
	eff = c.Effective()
	if eff[first] != Double {
		t.Error("aggregate flag did not override child")
	}
	// Module-level single overrides everything.
	c.Root.Flag = Single
	for _, p := range c.Effective() {
		if p != Single {
			t.Error("module flag did not override")
			break
		}
	}
}

func TestIgnoreFlag(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	first := c.Candidates()[0]
	c.NodeAt(first).Flag = Ignore
	if c.Effective()[first] != Ignore {
		t.Error("ignore flag not effective")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	cl := c.Clone()
	first := c.Candidates()[0]
	cl.NodeAt(first).Flag = Single
	if c.NodeAt(first).Flag != Unset {
		t.Error("clone shares nodes with original")
	}
	if cl.Effective()[first] != Single {
		t.Error("clone index broken")
	}
	cl.Reset()
	if cl.NodeAt(first).Flag != Unset {
		t.Error("reset failed")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	// Decorate with a mix of flags.
	c.Root.Children[1].Flag = Single // whole function
	cands := c.Candidates()
	c.NodeAt(cands[0]).Flag = Single
	c.NodeAt(cands[1]).Flag = Double
	c.Annotate(cands[1], "pruned: exact-integer sink")
	text := c.String()

	got, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, text)
	}
	if got.String() != text {
		t.Errorf("round trip mismatch:\n--- wrote\n%s--- reread\n%s", text, got.String())
	}
	// Effective maps must agree.
	a, b := c.Effective(), got.Effective()
	if len(a) != len(b) {
		t.Fatalf("effective sizes differ: %d vs %d", len(a), len(b))
	}
	for addr, p := range a {
		if b[addr] != p {
			t.Errorf("effective[%#x] = %v, want %v", addr, b[addr], p)
		}
	}
	if got.NodeAt(cands[1]).Note != "pruned: exact-integer sink" {
		t.Errorf("note lost in round trip: %q", got.NodeAt(cands[1]).Note)
	}
}

func TestFormatFigure3Shape(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	c.NodeAt(c.Candidates()[0]).Flag = Single
	text := c.String()
	if !strings.Contains(text, "MODULE01: demo") {
		t.Error("missing module header")
	}
	if !strings.Contains(text, "FUNC01: main()") {
		t.Error("missing function header")
	}
	if !strings.Contains(text, "BBLK") {
		t.Error("missing block entries")
	}
	if !strings.Contains(text, `"addsd`) && !strings.Contains(text, `"mulsd`) {
		t.Error("missing disassembly")
	}
	// Flag column: first line of a single-flagged instruction starts "s ".
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "s ") && strings.Contains(line, "INSN") {
			found = true
		}
	}
	if !found {
		t.Error("no single-flagged instruction line")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"x FUNC01: f()\n",            // bad flag
		"  BBLK01\n",                 // block outside function
		"  INSN01: 0x10 \"addsd\"\n", // insn outside block
		"  FUNC: f()\n",              // missing number
		"  INSN01: zz \"addsd\"\n",   // bad address (needs func+block first)
		"  JUNK\n",                   // unknown entry
		"",                           // empty
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
	// Bad address nested properly.
	bad := "  FUNC01: f()\n  BBLK01\n  INSN01: zz \"addsd\"\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("bad address accepted")
	}
	// Multiple modules.
	multi := "  MODULE01: a\n  MODULE02: b\n"
	if _, err := Read(strings.NewReader(multi)); err == nil {
		t.Error("multiple modules accepted")
	}
}

func TestCountSingle(t *testing.T) {
	m := buildProgram(t)
	c, _ := FromModule(m)
	if c.CountSingle() != 0 {
		t.Error("fresh config has singles")
	}
	c.SetAll(Single)
	if got := c.CountSingle(); got != len(c.Candidates()) {
		t.Errorf("CountSingle = %d, want %d", got, len(c.Candidates()))
	}
}

func TestPrecisionStrings(t *testing.T) {
	for _, tc := range []struct {
		p Precision
		s string
	}{{Unset, ""}, {Double, "d"}, {Single, "s"}, {Ignore, "i"}} {
		if tc.p.String() != tc.s {
			t.Errorf("%v.String() = %q", tc.p, tc.p.String())
		}
		back, err := ParsePrecision(tc.s)
		if err != nil || back != tc.p {
			t.Errorf("ParsePrecision(%q) = %v, %v", tc.s, back, err)
		}
	}
	if _, err := ParsePrecision("q"); err == nil {
		t.Error("bad flag accepted")
	}
	for k := KindModule; k <= KindInsn; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
