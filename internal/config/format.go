package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text exchange format follows the paper's Figure 3: one line per
// program structure, a single-character precision flag in the first
// column, indentation by nesting depth, and entries of the form
//
//	s FUNC03: split()
//	    BBLK04
//	  s INSN13: 0x6f8248 "subsd %xmm1, %xmm0"
//
// Module lines use MODULE01: name. An aggregate entry with a flag
// overrides all flags of its children. A trailing "  ; note" records a
// classification annotation (Node.Note) and is ignored semantically.

// Write renders the configuration in the exchange format.
func (c *Config) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var rec func(n *Node, depth int) error
	rec = func(n *Node, depth int) error {
		flag := n.Flag.String()
		if flag == "" {
			flag = " "
		}
		indent := strings.Repeat("  ", depth)
		var desc string
		switch n.Kind {
		case KindModule:
			desc = fmt.Sprintf("MODULE%02d: %s", n.ID, n.Name)
		case KindFunc:
			desc = fmt.Sprintf("FUNC%02d: %s()", n.ID, n.Name)
		case KindBlock:
			desc = fmt.Sprintf("BBLK%02d", n.ID)
		case KindInsn:
			desc = fmt.Sprintf("INSN%02d: %#x %q", n.ID, n.Addr, n.Name)
		}
		if n.Note != "" {
			desc += "  ; " + n.Note
		}
		if _, err := fmt.Fprintf(bw, "%s %s%s\n", flag, indent, desc); err != nil {
			return err
		}
		for _, ch := range n.Children {
			if err := rec(ch, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(c.Root, 0); err != nil {
		return err
	}
	return bw.Flush()
}

// String renders the configuration as a string.
func (c *Config) String() string {
	var sb strings.Builder
	_ = c.Write(&sb)
	return sb.String()
}

// Read parses the exchange format, reconstructing the tree. The template
// configuration (from FromModule) is not required: structure comes
// entirely from the file.
func Read(r io.Reader) (*Config, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	c := &Config{byAddr: make(map[uint64]*Node)}
	// Parent stack by kind nesting: module > func > block > insn.
	var curFunc, curBlock *Node
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if len(line) < 2 {
			return nil, fmt.Errorf("config: line %d: too short", lineno)
		}
		flag, err := ParsePrecision(strings.TrimSpace(line[:1]))
		if err != nil {
			return nil, fmt.Errorf("config: line %d: %v", lineno, err)
		}
		body := strings.TrimSpace(line[1:])
		note := ""
		if i := strings.LastIndex(body, " ; "); i >= 0 {
			note = strings.TrimSpace(body[i+3:])
			body = strings.TrimSpace(body[:i])
		}
		n := &Node{Flag: flag, Note: note}
		switch {
		case strings.HasPrefix(body, "MODULE"):
			if c.Root != nil {
				return nil, fmt.Errorf("config: line %d: multiple modules", lineno)
			}
			n.Kind = KindModule
			rest, err := parseHeader(body, "MODULE", &n.ID)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %v", lineno, err)
			}
			n.Name = rest
			c.Root = n
		case strings.HasPrefix(body, "FUNC"):
			n.Kind = KindFunc
			rest, err := parseHeader(body, "FUNC", &n.ID)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %v", lineno, err)
			}
			n.Name = strings.TrimSuffix(rest, "()")
			if c.Root == nil {
				c.Root = &Node{Kind: KindModule, ID: 1}
			}
			c.Root.Children = append(c.Root.Children, n)
			curFunc, curBlock = n, nil
		case strings.HasPrefix(body, "BBLK"):
			n.Kind = KindBlock
			if _, err := parseHeader(body, "BBLK", &n.ID); err != nil {
				return nil, fmt.Errorf("config: line %d: %v", lineno, err)
			}
			if curFunc == nil {
				return nil, fmt.Errorf("config: line %d: block outside function", lineno)
			}
			curFunc.Children = append(curFunc.Children, n)
			curBlock = n
		case strings.HasPrefix(body, "INSN"):
			n.Kind = KindInsn
			rest, err := parseHeader(body, "INSN", &n.ID)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: %v", lineno, err)
			}
			fields := strings.SplitN(rest, " ", 2)
			addr, err := strconv.ParseUint(fields[0], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("config: line %d: bad address %q", lineno, fields[0])
			}
			n.Addr = addr
			if len(fields) == 2 {
				if uq, err := strconv.Unquote(strings.TrimSpace(fields[1])); err == nil {
					n.Name = uq
				} else {
					n.Name = strings.TrimSpace(fields[1])
				}
			}
			if curBlock == nil {
				return nil, fmt.Errorf("config: line %d: instruction outside block", lineno)
			}
			curBlock.Children = append(curBlock.Children, n)
			c.byAddr[addr] = n
		default:
			return nil, fmt.Errorf("config: line %d: unrecognized entry %q", lineno, body)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.Root == nil {
		return nil, fmt.Errorf("config: empty configuration")
	}
	return c, nil
}

// parseHeader parses "KIND01: rest" or "KIND01", storing the sequence
// number and returning the rest.
func parseHeader(body, kind string, id *int) (string, error) {
	s := strings.TrimPrefix(body, kind)
	numEnd := 0
	for numEnd < len(s) && s[numEnd] >= '0' && s[numEnd] <= '9' {
		numEnd++
	}
	if numEnd == 0 {
		return "", fmt.Errorf("missing sequence number after %s", kind)
	}
	n, err := strconv.Atoi(s[:numEnd])
	if err != nil {
		return "", err
	}
	*id = n
	s = s[numEnd:]
	s = strings.TrimPrefix(s, ":")
	return strings.TrimSpace(s), nil
}
