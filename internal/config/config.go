// Package config represents mixed-precision configurations: the mapping
//
//	p -> {single, double, ignore}
//
// over all double-precision candidate instructions Pd of a program, with
// hierarchical overrides along the natural containment aggregations
// (module contains functions contain basic blocks contain instructions,
// paper §2.1). A flag on an aggregate node overrides the flags of all its
// children; an unset aggregate defers to per-child flags; an instruction
// with no flag anywhere along its path defaults to double.
package config

import (
	"fmt"
	"sort"

	"fpmix/internal/cfg"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Precision is a replacement decision.
type Precision uint8

// Precision values. Unset means "inherit" (default double).
const (
	Unset Precision = iota
	Double
	Single
	Ignore
)

// String returns the configuration-file flag for p ("d", "s", "i", or ""
// for Unset).
func (p Precision) String() string {
	switch p {
	case Double:
		return "d"
	case Single:
		return "s"
	case Ignore:
		return "i"
	default:
		return ""
	}
}

// ParsePrecision converts a flag character to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "":
		return Unset, nil
	case "d":
		return Double, nil
	case "s":
		return Single, nil
	case "i":
		return Ignore, nil
	}
	return Unset, fmt.Errorf("config: unknown precision flag %q", s)
}

// Kind classifies tree nodes.
type Kind uint8

// Node kinds.
const (
	KindModule Kind = iota
	KindFunc
	KindBlock
	KindInsn
)

func (k Kind) String() string {
	switch k {
	case KindModule:
		return "MODULE"
	case KindFunc:
		return "FUNC"
	case KindBlock:
		return "BBLK"
	case KindInsn:
		return "INSN"
	default:
		return "?"
	}
}

// Node is one entry in the configuration tree.
type Node struct {
	Kind Kind
	ID   int    // 1-based sequence number within kind (FUNC01, ...)
	Name string // function name, or disassembly for instructions
	Addr uint64 // instruction address (KindInsn), block start (KindBlock)
	Flag Precision
	// Note is a free-form classification annotation (e.g. the dataflow
	// analysis' "pruned: exact-integer sink"); it survives the exchange
	// format as a trailing "; note" comment and never affects precision
	// semantics.
	Note     string
	Children []*Node
}

// Config is a full configuration: the module tree plus an index from
// instruction address to node.
type Config struct {
	Root   *Node
	byAddr map[uint64]*Node
}

// FromModule builds the default (all-Unset) configuration tree for m by
// static analysis of its control-flow graph: one node per function, basic
// block and double-precision candidate instruction.
func FromModule(m *prog.Module) (*Config, error) {
	g, err := cfg.Build(m)
	if err != nil {
		return nil, err
	}
	root := &Node{Kind: KindModule, ID: 1, Name: m.Name}
	c := &Config{Root: root, byAddr: make(map[uint64]*Node)}
	nf, nb, ni := 0, 0, 0
	for _, fg := range g.Funcs {
		nf++
		fn := &Node{Kind: KindFunc, ID: nf, Name: fg.Func.Name, Addr: fg.Func.Addr}
		for _, b := range fg.Blocks {
			nb++
			bn := &Node{Kind: KindBlock, ID: nb, Addr: b.Addr}
			for _, in := range b.Instrs {
				if !isa.IsCandidate(in.Op) {
					continue
				}
				ni++
				n := &Node{Kind: KindInsn, ID: ni, Name: isa.Disasm(in), Addr: in.Addr}
				c.byAddr[in.Addr] = n
				bn.Children = append(bn.Children, n)
			}
			if len(bn.Children) > 0 {
				fn.Children = append(fn.Children, bn)
			}
		}
		if len(fn.Children) > 0 {
			root.Children = append(root.Children, fn)
		}
	}
	return c, nil
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := &Config{byAddr: make(map[uint64]*Node, len(c.byAddr))}
	out.Root = cloneNode(c.Root, out.byAddr)
	return out
}

func cloneNode(n *Node, idx map[uint64]*Node) *Node {
	cp := *n
	cp.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		cp.Children[i] = cloneNode(ch, idx)
	}
	if cp.Kind == KindInsn {
		idx[cp.Addr] = &cp
	}
	return &cp
}

// Reset clears every flag in the tree.
func (c *Config) Reset() {
	c.Walk(func(n *Node) { n.Flag = Unset })
}

// Walk visits every node in depth-first order.
func (c *Config) Walk(f func(*Node)) { walk(c.Root, f) }

func walk(n *Node, f func(*Node)) {
	f(n)
	for _, ch := range n.Children {
		walk(ch, f)
	}
}

// NodeAt returns the instruction node at addr, or nil.
func (c *Config) NodeAt(addr uint64) *Node { return c.byAddr[addr] }

// Annotate records a classification note on the instruction node at
// addr; it is a no-op when the address is not in the tree.
func (c *Config) Annotate(addr uint64, note string) {
	if n := c.byAddr[addr]; n != nil {
		n.Note = note
	}
}

// Candidates returns the addresses of all candidate instructions in the
// tree, sorted.
func (c *Config) Candidates() []uint64 {
	out := make([]uint64, 0, len(c.byAddr))
	for a := range c.byAddr {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Effective computes the effective precision of every candidate
// instruction after applying override semantics: the flag of the highest
// flagged ancestor wins; instructions with no flag anywhere default to
// Double.
func (c *Config) Effective() map[uint64]Precision {
	out := make(map[uint64]Precision, len(c.byAddr))
	var rec func(n *Node, inherited Precision)
	rec = func(n *Node, inherited Precision) {
		eff := inherited
		if eff == Unset && n.Flag != Unset {
			eff = n.Flag
		}
		if n.Kind == KindInsn {
			p := eff
			if p == Unset {
				p = Double
			}
			out[n.Addr] = p
			return
		}
		for _, ch := range n.Children {
			rec(ch, eff)
		}
	}
	rec(c.Root, Unset)
	return out
}

// SetAll flags every instruction-bearing subtree root at the given kind.
// It is a convenience for whole-module configurations.
func (c *Config) SetAll(p Precision) { c.Root.Flag = p }

// CountSingle returns how many candidate instructions are effectively
// single-precision under the configuration.
func (c *Config) CountSingle() int {
	n := 0
	for _, p := range c.Effective() {
		if p == Single {
			n++
		}
	}
	return n
}
