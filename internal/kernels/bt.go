package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// BT: a block-tridiagonal line solver in the NAS BT style. A coupled
// 3-component field on a 2-D grid is relaxed by alternating x-direction
// block-tridiagonal solves (3x3 blocks, fully unrolled Thomas algorithm
// with explicit 3x3 inverses — the source of BT's large static
// instruction count in the paper) with pointwise y-direction coupling.
// Verification bounds the residual-like change norm tightly.

func btSize(class Class) (nx, ny, steps int) {
	switch class {
	case ClassA:
		return 24, 12, 6
	case ClassC:
		return 32, 16, 6
	default:
		return 12, 8, 5
	}
}

// mat3 names the nine entries of a 3x3 matrix stored row-major in an FArr.
type mat3 struct {
	arr hl.FArr
}

func (m mat3) at(f *hl.FuncBuilder, r, c int) hl.Expr {
	return hl.At(m.arr, hl.IConst(int64(r*3+c)))
}

func (m mat3) set(f *hl.FuncBuilder, r, c int, e hl.Expr) {
	f.Store(m.arr, hl.IConst(int64(r*3+c)), e)
}

func btSource(class Class, mode hl.Mode) (*prog.Module, error) {
	nx, ny, steps := btSize(class)
	ncell := nx * ny

	p := hl.New("bt."+string(class), mode)

	// Field: three components per cell, component-major.
	u := p.Array("u", 3*ncell)
	f := p.Array("f", 3*ncell)
	// Per-line Thomas work arrays: E (3x3 per cell), G (3 per cell).
	ework := p.Array("ework", 9*nx)
	gwork := p.Array("gwork", 3*nx)
	// 3x3 scratch matrices.
	mwork := mat3{p.Array("mwork", 9)}
	minv := mat3{p.Array("minv", 9)}
	det := p.Scalar("det")
	chg := p.Scalar("chg")
	tmp := p.Scalar("btmp")

	i := p.Int("i")
	j := p.Int("j")
	it := p.Int("it")
	cell := p.Int("cell")

	// Constant coupling blocks: D (diagonal, dominant), and off-diagonal
	// scale ob (B = C = ob * I plus weak cross-coupling).
	dm := [3][3]float64{{4.1, 0.2, 0.1}, {0.15, 4.3, 0.2}, {0.1, 0.15, 4.2}}
	const ob = -0.9
	const cross = -0.05

	// init: deterministic smooth forcing and initial field.
	init := p.Func("init")
	init.For(cell, hl.IConst(0), hl.IConst(int64(3*ncell)), func() {
		init.Store(f, hl.ILoad(cell),
			hl.Add(hl.Const(1), hl.Mul(hl.Const(0.3), hl.Sin(hl.Mul(hl.Const(0.17), hl.FromInt(hl.ILoad(cell)))))))
		init.Store(u, hl.ILoad(cell), hl.Const(0))
	})
	init.Ret()

	// inv3: invert the 3x3 matrix in mwork into minv (explicit adjugate),
	// fully unrolled — dense straight-line FP code.
	inv3 := p.Func("inv3")
	cof := func(r, c int) hl.Expr {
		// Cofactor of entry (r, c): determinant of the 2x2 minor.
		r1, r2 := (r+1)%3, (r+2)%3
		c1, c2 := (c+1)%3, (c+2)%3
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		sign := 1.0
		if (r+c)%2 == 1 {
			sign = -1.0
		}
		minor := hl.Sub(
			hl.Mul(mwork.at(inv3, r1, c1), mwork.at(inv3, r2, c2)),
			hl.Mul(mwork.at(inv3, r1, c2), mwork.at(inv3, r2, c1)))
		return hl.Mul(hl.Const(sign), minor)
	}
	inv3.Set(det, hl.Add(
		hl.Mul(mwork.at(inv3, 0, 0), cof(0, 0)),
		hl.Add(hl.Mul(mwork.at(inv3, 0, 1), cof(0, 1)),
			hl.Mul(mwork.at(inv3, 0, 2), cof(0, 2)))))
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			// inv[r][c] = cof(c, r) / det (adjugate transpose).
			minv.set(inv3, r, c, hl.Div(cof(c, r), hl.Load(det)))
		}
	}
	inv3.Ret()

	// idx helpers: component k at cell (i, j) lives at k*ncell + j*nx + i.
	uat := func(k int, ie, je hl.IExpr) hl.IExpr {
		return hl.IAdd(hl.IConst(int64(k*ncell)), hl.IAdd(hl.IMul(je, hl.IConst(int64(nx))), ie))
	}

	// xsolve: for each y-line, solve the 3x3 block tridiagonal system
	// B X_{i-1} + D X_i + B X_{i+1} = RHS_i with the Thomas algorithm,
	// where RHS folds in the forcing and the y-neighbor coupling.
	xs := p.Func("xsolve")
	loadD := func() {
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				mwork.set(xs, r, c, hl.Const(dm[r][c]))
			}
		}
	}
	rhsExpr := func(k int) hl.Expr {
		// f - y-coupling: cross * (u_k(j-1) + u_k(j+1)).
		e := hl.At(f, uat(k, hl.ILoad(i), hl.ILoad(j)))
		prev := hl.At(u, uat(k, hl.ILoad(i), hl.ISub(hl.ILoad(j), hl.IConst(1))))
		next := hl.At(u, uat(k, hl.ILoad(i), hl.IAdd(hl.ILoad(j), hl.IConst(1))))
		return hl.Sub(e, hl.Mul(hl.Const(cross), hl.Add(prev, next)))
	}
	xs.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		// Forward sweep.
		xs.For(i, hl.IConst(0), hl.IConst(int64(nx)), func() {
			// M = D - B * E_{i-1} (B = ob*I, so M = D - ob*E_{i-1}).
			loadD()
			xs.If(hl.IGt(hl.ILoad(i), hl.IConst(0)), func() {
				for r := 0; r < 3; r++ {
					for c := 0; c < 3; c++ {
						eprev := hl.At(ework, hl.IAdd(
							hl.IMul(hl.ISub(hl.ILoad(i), hl.IConst(1)), hl.IConst(9)),
							hl.IConst(int64(r*3+c))))
						xs.Set(tmp, hl.Sub(mwork.at(xs, r, c), hl.Mul(hl.Const(ob), eprev)))
						mwork.set(xs, r, c, hl.Load(tmp))
					}
				}
			}, nil)
			xs.Call("inv3")
			// E_i = Minv * B = ob * Minv ; G_i = Minv * (rhs - B G_{i-1}).
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					xs.Store(ework, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(9)), hl.IConst(int64(r*3+c))),
						hl.Mul(hl.Const(ob), minv.at(xs, r, c)))
				}
			}
			for r := 0; r < 3; r++ {
				// rhsAdj_r = rhs_r - ob * G_{i-1, r}
				adj := rhsExpr(r)
				xs.Set(tmp, adj)
				xs.If(hl.IGt(hl.ILoad(i), hl.IConst(0)), func() {
					gprev := hl.At(gwork, hl.IAdd(
						hl.IMul(hl.ISub(hl.ILoad(i), hl.IConst(1)), hl.IConst(3)), hl.IConst(int64(r))))
					xs.Set(tmp, hl.Sub(hl.Load(tmp), hl.Mul(hl.Const(ob), gprev)))
				}, nil)
				// Stash adjusted rhs in gwork row r temporarily via f? Use
				// a scratch vector: reuse minv row storage is unsafe; use
				// gscratch below.
				xs.Store(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(int64(r))), hl.Load(tmp))
			}
			// G_i = Minv * stash (in place, needs the full stash first).
			g0 := hl.At(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(0)))
			g1 := hl.At(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(1)))
			g2 := hl.At(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(2)))
			// Compute the three products into scratch scalars first.
			gs := []hl.FVar{p.Scalar(""), p.Scalar(""), p.Scalar("")}
			for r := 0; r < 3; r++ {
				xs.Set(gs[r], hl.Add(hl.Mul(minv.at(xs, r, 0), g0),
					hl.Add(hl.Mul(minv.at(xs, r, 1), g1), hl.Mul(minv.at(xs, r, 2), g2))))
			}
			for r := 0; r < 3; r++ {
				xs.Store(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(int64(r))), hl.Load(gs[r]))
			}
		})
		// Backward substitution: X_i = G_i - E_i X_{i+1}.
		xs.SetI(i, hl.IConst(int64(nx-1)))
		xs.While(hl.IGe(hl.ILoad(i), hl.IConst(0)), func() {
			for r := 0; r < 3; r++ {
				xs.Set(tmp, hl.At(gwork, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(3)), hl.IConst(int64(r)))))
				xs.If(hl.ILt(hl.ILoad(i), hl.IConst(int64(nx-1))), func() {
					for c := 0; c < 3; c++ {
						e := hl.At(ework, hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(9)), hl.IConst(int64(r*3+c))))
						xn := hl.At(u, uat(c, hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j)))
						xs.Set(tmp, hl.Sub(hl.Load(tmp), hl.Mul(e, xn)))
					}
				}, nil)
				xs.Store(u, uat(r, hl.ILoad(i), hl.ILoad(j)), hl.Load(tmp))
			}
			xs.SetI(i, hl.ISub(hl.ILoad(i), hl.IConst(1)))
		})
	})
	xs.Ret()

	// change: norm of A u - f restricted to the interior (a convergence
	// measure across relaxation steps).
	ch := p.Func("change")
	ch.Set(chg, hl.Const(0))
	ch.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		ch.For(i, hl.IConst(1), hl.IConst(int64(nx-1)), func() {
			for k := 0; k < 3; k++ {
				// row k of D X_i + ob*(X_{i-1}+X_{i+1}) + cross*(y nbrs) - f
				acc := hl.Mul(hl.Const(dm[k][0]), hl.At(u, uat(0, hl.ILoad(i), hl.ILoad(j))))
				acc = hl.Add(acc, hl.Mul(hl.Const(dm[k][1]), hl.At(u, uat(1, hl.ILoad(i), hl.ILoad(j)))))
				acc = hl.Add(acc, hl.Mul(hl.Const(dm[k][2]), hl.At(u, uat(2, hl.ILoad(i), hl.ILoad(j)))))
				acc = hl.Add(acc, hl.Mul(hl.Const(ob),
					hl.Add(hl.At(u, uat(k, hl.ISub(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j))),
						hl.At(u, uat(k, hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j))))))
				acc = hl.Add(acc, hl.Mul(hl.Const(cross),
					hl.Add(hl.At(u, uat(k, hl.ILoad(i), hl.ISub(hl.ILoad(j), hl.IConst(1)))),
						hl.At(u, uat(k, hl.ILoad(i), hl.IAdd(hl.ILoad(j), hl.IConst(1)))))))
				d := hl.Sub(acc, hl.At(f, uat(k, hl.ILoad(i), hl.ILoad(j))))
				ch.Set(chg, hl.Add(hl.Load(chg), hl.Mul(d, d)))
			}
		})
	})
	ch.Set(chg, hl.Sqrt(hl.Load(chg)))
	ch.Ret()

	main := p.Func("main")
	main.Call("init")
	main.For(it, hl.IConst(0), hl.IConst(int64(steps)), func() {
		main.Call("xsolve")
	})
	main.Call("change")
	main.Out(hl.Load(chg))
	main.Out(hl.At(u, uat(0, hl.IConst(int64(nx/2)), hl.IConst(int64(ny/2)))))
	main.Halt()

	return p.Build("main")
}

func buildBT(class Class) (*Bench, error) {
	m, err := btSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(800_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	thr := ref[0] * 30
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		if math.IsNaN(got[0]) || got[0] < 0 || got[0] > thr {
			return false
		}
		return relErr(ref[1], got[1]) < 1e-4
	}
	return &Bench{
		Name:      "bt",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-4,
	}, nil
}
