// Package kernels implements the workload programs of the paper's
// evaluation, compiled to the fpmix ISA through the hl builder: scaled
// NAS-style kernels (EP, CG, FT, MG, BT, SP, LU) with W/A/C input
// classes, the AMG microkernel (§3.2) and a SuperLU-style direct solver
// (§3.3), plus MPI variants of EP/CG/FT/MG for the scaling experiments
// (Figure 8).
//
// The kernels are algorithmically faithful, scaled-down reproductions:
// what matters to the mixed-precision analysis is each program's
// structure (functions, blocks, instruction mix) and numerical behaviour
// (which regions tolerate single precision under the benchmark's
// verification), not the original problem sizes.
package kernels

import (
	"fmt"
	"sort"

	"fpmix/internal/config"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// Class selects the input size, mirroring NAS problem classes.
type Class string

// Input classes.
const (
	ClassW Class = "W"
	ClassA Class = "A"
	ClassC Class = "C"
)

// Bench is a ready-to-analyze workload.
type Bench struct {
	Name  string
	Class Class
	// Module is the double-precision build (the binary under analysis).
	Module *prog.Module
	// ModuleF32 is the manually converted single-precision build of the
	// same source, when the kernel is convertible (nil otherwise).
	ModuleF32 *prog.Module
	// Verify is the benchmark's verification routine over program output.
	Verify func([]vm.OutVal) bool
	// Base optionally pre-flags instructions Ignore (EP's RNG).
	Base *config.Config
	// MaxSteps bounds instrumented runs.
	MaxSteps uint64
	// Reference holds the trusted double-precision outputs.
	Reference []float64
	// SensTol is the verification tolerance the sensitivity-guided
	// search's prediction gate compares aggregated shadow error against
	// (search.Options.SensThreshold): the loosest relative tolerance in
	// the kernel's Verify, so a predicted failure means no output check
	// could accept the piece. 0 disables gating for the kernel.
	SensTol float64
}

// builder constructs a benchmark for a class.
type builder func(Class) (*Bench, error)

var registry = map[string]builder{
	"ep":      buildEP,
	"cg":      buildCG,
	"ft":      buildFT,
	"mg":      buildMG,
	"bt":      buildBT,
	"sp":      buildSP,
	"lu":      buildLU,
	"amg":     buildAMG,
	"superlu": buildSuperLU,
}

// Names returns the registered kernel names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get builds the named benchmark at the given class.
func Get(name string, class Class) (*Bench, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown benchmark %q (have %v)", name, Names())
	}
	return b(class)
}

// reference runs the double build and records its outputs.
func reference(m *prog.Module, maxSteps uint64) ([]float64, []vm.OutVal, error) {
	mach, err := vm.New(m)
	if err != nil {
		return nil, nil, err
	}
	mach.MaxSteps = maxSteps
	if err := mach.Run(); err != nil {
		return nil, nil, err
	}
	return verify.Decode(mach.Out), mach.Out, nil
}

// ignoreFuncs returns a base configuration with the named functions
// flagged Ignore (for constructs like RNGs whose bit tricks must not be
// touched, paper §2.1).
func ignoreFuncs(m *prog.Module, names ...string) (*config.Config, error) {
	c, err := config.FromModule(m)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for _, fn := range c.Root.Children {
		if want[fn.Name] {
			fn.Flag = config.Ignore
		}
	}
	return c, nil
}
