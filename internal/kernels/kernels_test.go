package kernels

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/mpi"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("kernels = %v", names)
	}
	if _, err := Get("nope", ClassW); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestAllKernelsSelfVerify builds every kernel at class W and checks the
// reference run passes its own verification.
func TestAllKernelsSelfVerify(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := Get(name, ClassW)
			if err != nil {
				t.Fatal(err)
			}
			m, err := vm.New(b.Module)
			if err != nil {
				t.Fatal(err)
			}
			m.MaxSteps = b.MaxSteps
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if !b.Verify(m.Out) {
				t.Error("reference run fails own verification")
			}
			if len(b.Module.Candidates()) == 0 {
				t.Error("no replacement candidates")
			}
		})
	}
}

// TestAllKernelsSurviveAllDoubleInstrumentation: wrapping everything in
// double snippets must not change any output bit (the Figure 8/9 base
// case) on every kernel.
func TestAllKernelsSurviveAllDoubleInstrumentation(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := Get(name, ClassW)
			if err != nil {
				t.Fatal(err)
			}
			c, err := config.FromModule(b.Module)
			if err != nil {
				t.Fatal(err)
			}
			c.SetAll(config.Double)
			inst, err := replace.Instrument(b.Module, c, replace.InstrumentOptions{})
			if err != nil {
				t.Fatal(err)
			}
			orig, err := vm.New(b.Module)
			if err != nil {
				t.Fatal(err)
			}
			if err := orig.Run(); err != nil {
				t.Fatal(err)
			}
			wrapped, err := vm.New(inst)
			if err != nil {
				t.Fatal(err)
			}
			wrapped.MaxSteps = 4_000_000_000
			if err := wrapped.Run(); err != nil {
				t.Fatal(err)
			}
			if len(orig.Out) != len(wrapped.Out) {
				t.Fatalf("output count changed: %d vs %d", len(orig.Out), len(wrapped.Out))
			}
			for i := range orig.Out {
				if orig.Out[i].Bits != wrapped.Out[i].Bits {
					t.Errorf("output %d changed: %#x vs %#x", i, orig.Out[i].Bits, wrapped.Out[i].Bits)
				}
			}
			if wrapped.Cycles <= orig.Cycles {
				t.Error("instrumentation cost no cycles")
			}
		})
	}
}

// TestAMGFullySingle: the §3.2 result — the whole AMG kernel passes its
// verification in single precision, and the manual conversion is faster.
func TestAMGFullySingle(t *testing.T) {
	b, err := Get("amg", ClassW)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := config.FromModule(b.Module)
	c.SetAll(config.Single)
	inst, err := replace.Instrument(b.Module, c, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(inst)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = b.MaxSteps
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.Verify(m.Out) {
		t.Fatal("all-single AMG fails verification")
	}
	// Manual conversion speedup.
	d, err := vm.New(b.Module)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	s, err := vm.New(b.ModuleF32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.Verify(s.Out) {
		t.Error("manual F32 AMG fails verification")
	}
	speedup := float64(d.Cycles) / float64(s.Cycles)
	if speedup < 1.4 {
		t.Errorf("manual conversion speedup = %.2fX, want >= 1.4X", speedup)
	}
}

// TestEPRandlcSensitivity: the RNG must produce garbage under whole-
// function single precision (the paper's motivating "unusual construct").
func TestEPRandlcSensitivity(t *testing.T) {
	b, err := Get("ep", ClassW)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := config.FromModule(b.Module)
	for _, fn := range c.Root.Children {
		if fn.Name == "randlc" {
			fn.Flag = config.Single
		}
	}
	inst, err := replace.Instrument(b.Module, c, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(inst)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = b.MaxSteps
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Verify(m.Out) {
		t.Error("single-precision randlc passed verification; it must not")
	}
}

// TestEPIgnoreFlagExcludesRNG: flagging randlc Ignore leaves it untouched
// by instrumentation.
func TestEPIgnoreFlagExcludesRNG(t *testing.T) {
	b, err := Get("ep", ClassW)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ignoreFuncs(b.Module, "randlc")
	if err != nil {
		t.Fatal(err)
	}
	ignored := 0
	for _, p := range base.Effective() {
		if p == config.Ignore {
			ignored++
		}
	}
	if ignored == 0 {
		t.Fatal("no instructions ignored")
	}
	inst, err := replace.Instrument(b.Module, base, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(inst)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = b.MaxSteps
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.Verify(m.Out) {
		t.Error("ignore-flagged EP fails verification")
	}
}

// TestSuperLUManualConversion reproduces §3.3's single-precision
// comparison: the F32 build reports a much larger error than the double
// build, and runs faster.
func TestSuperLUManualConversion(t *testing.T) {
	b, err := Get("superlu", ClassW)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := vm.New(b.Module)
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	s, _ := vm.New(b.ModuleF32)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	errD := d.Out[0].F64()
	errS := float64(s.Out[0].F32())
	if errS < errD*1e3 {
		t.Errorf("single error %.3g not clearly larger than double %.3g", errS, errD)
	}
	if errS > 1e-2 {
		t.Errorf("single error %.3g implausibly large", errS)
	}
	if d.Cycles <= s.Cycles {
		t.Error("single build should be faster")
	}
}

// TestMPIVariantsRunAndScale: every MPI kernel runs at 1..8 ranks with
// identical rank-0 output, and all-double instrumentation overhead does
// not grow with rank count.
func TestMPIVariantsRunAndScale(t *testing.T) {
	for _, name := range MPIKernelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mod, err := MPISource(name, ClassW)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := config.FromModule(mod)
			c.SetAll(config.Double)
			inst, err := replace.Instrument(mod, c, replace.InstrumentOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var prevOv float64
			for _, ranks := range []int{1, 2, 4, 8} {
				base, err := mpi.RunWorld(mod, ranks, 0)
				if err != nil {
					t.Fatalf("ranks=%d: %v", ranks, err)
				}
				wrapped, err := mpi.RunWorld(inst, ranks, 0)
				if err != nil {
					t.Fatalf("ranks=%d instrumented: %v", ranks, err)
				}
				if len(base[0].Out) == 0 {
					t.Fatal("rank 0 produced no output")
				}
				for i := range base[0].Out {
					if base[0].Out[i].Bits != wrapped[0].Out[i].Bits {
						t.Errorf("ranks=%d: output %d changed under all-double instrumentation", ranks, i)
					}
				}
				ov := float64(mpi.TotalCycles(wrapped)) / float64(mpi.TotalCycles(base))
				if ov <= 1 {
					t.Errorf("ranks=%d: overhead %.2fX <= 1", ranks, ov)
				}
				if prevOv != 0 && ov > prevOv*1.10 {
					t.Errorf("overhead grew with ranks: %.2fX -> %.2fX", prevOv, ov)
				}
				prevOv = ov
			}
		})
	}
}

// TestBitForBitEquivalence is the §3.1 check across convertible kernels:
// instrumented all-single execution matches the manually converted
// ModeF32 build bit for bit on every output.
func TestBitForBitEquivalence(t *testing.T) {
	for _, name := range []string{"amg", "superlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := Get(name, ClassW)
			if err != nil {
				t.Fatal(err)
			}
			if b.ModuleF32 == nil {
				t.Skip("kernel not convertible")
			}
			c, _ := config.FromModule(b.Module)
			c.SetAll(config.Single)
			inst, err := replace.Instrument(b.Module, c, replace.InstrumentOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mi, _ := vm.New(inst)
			mi.MaxSteps = 4_000_000_000
			if err := mi.Run(); err != nil {
				t.Fatal(err)
			}
			mm32, _ := vm.New(b.ModuleF32)
			mm32.MaxSteps = 4_000_000_000
			if err := mm32.Run(); err != nil {
				t.Fatal(err)
			}
			if len(mi.Out) != len(mm32.Out) {
				t.Fatalf("output counts differ: %d vs %d", len(mi.Out), len(mm32.Out))
			}
			for i := range mi.Out {
				g := mi.Out[i].Bits
				w := mm32.Out[i].Bits
				if mi.Out[i].Kind == vm.OutF64 && replace.IsReplaced(g) {
					g = uint64(uint32(g))
				}
				if uint32(g) != uint32(w) {
					t.Errorf("output %d: instrumented %#x != manual %#x", i, g, w)
				}
			}
		})
	}
}

func TestClassesScaleWork(t *testing.T) {
	for _, name := range []string{"ep", "cg", "mg"} {
		w, err := Get(name, ClassW)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Get(name, ClassA)
		if err != nil {
			t.Fatal(err)
		}
		mw, _ := vm.New(w.Module)
		_ = mw.Run()
		ma, _ := vm.New(a.Module)
		_ = ma.Run()
		if ma.Steps <= mw.Steps {
			t.Errorf("%s: class A (%d steps) not larger than W (%d)", name, ma.Steps, mw.Steps)
		}
	}
}

func TestSourceBuildersBothModes(t *testing.T) {
	builders := map[string]func(Class, hl.Mode) (modIface, error){
		"ep": func(c Class, m hl.Mode) (modIface, error) { return EPSource(c, m) },
		"cg": func(c Class, m hl.Mode) (modIface, error) { return CGSource(c, m) },
		"mg": func(c Class, m hl.Mode) (modIface, error) { return MGSource(c, m) },
		"sp": func(c Class, m hl.Mode) (modIface, error) { return SPSource(c, m) },
	}
	for name, build := range builders {
		if _, err := build(ClassW, hl.ModeF64); err != nil {
			t.Errorf("%s f64: %v", name, err)
		}
		if _, err := build(ClassW, hl.ModeF32); err != nil {
			t.Errorf("%s f32: %v", name, err)
		}
	}
}

type modIface interface{ Candidates() []uint64 }
