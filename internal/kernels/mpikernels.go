package kernels

import (
	"fmt"
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/mm"
	"fpmix/internal/prog"
)

// MPI variants of EP, CG, FT and MG for the intra-node scaling experiment
// (Figure 8): strong-scaled workloads where each rank owns 1/P of the
// work and the ranks synchronize through collectives every iteration.
// The same binary runs on every rank; decomposition is computed at run
// time from the rank id and communicator size.
//
// These variants exist to measure instrumentation overhead as a function
// of rank count, so they have no verification routines — the experiment
// instruments every floating-point instruction with double-precision
// snippets (semantics-preserving) and compares modeled cycle totals.

// MPIKernelNames lists the kernels with MPI variants.
func MPIKernelNames() []string { return []string{"ep", "cg", "ft", "mg"} }

// MPISource builds the MPI variant of the named kernel at the class size.
func MPISource(name string, class Class) (*prog.Module, error) {
	switch name {
	case "ep":
		return epMPISource(class)
	case "cg":
		return cgMPISource(class)
	case "ft":
		return ftMPISource(class)
	case "mg":
		return mgMPISource(class)
	}
	return nil, fmt.Errorf("kernels: no MPI variant of %q", name)
}

// epMPISource: each rank generates pairs/P Gaussian pairs from a
// rank-offset seed and the sums are combined with one allreduce.
func epMPISource(class Class) (*prog.Module, error) {
	pairs := epPairs(class) * 4 // MPI runs use a larger total workload
	p := hl.New("ep.mpi."+string(class), hl.ModeF64)

	r23 := p.ScalarInit("r23", math.Pow(2, -23))
	t23 := p.ScalarInit("t23", math.Pow(2, 23))
	r46 := p.ScalarInit("r46", math.Pow(2, -46))
	t46 := p.ScalarInit("t46", math.Pow(2, 46))
	seedX := p.Scalar("x")
	aConst := p.ScalarInit("a", 1220703125.0)
	rnd := p.Scalar("rnd")
	t1 := p.Scalar("t1")
	a1 := p.Scalar("a1")
	a2 := p.Scalar("a2")
	rx1 := p.Scalar("rx1")
	rx2 := p.Scalar("rx2")
	z := p.Scalar("z")
	x1 := p.Scalar("x1")
	x2 := p.Scalar("x2")
	tv := p.Scalar("t")
	w := p.Scalar("w")
	acc := p.Array("acc", 2) // sx, sy
	rank := p.Int("rank")
	size := p.Int("size")
	np := p.Int("np")
	i := p.Int("i")

	randlc := p.Func("randlc")
	randlc.Set(t1, hl.Mul(hl.Load(r23), hl.Load(aConst)))
	randlc.Set(a1, hl.FromInt(hl.ToInt(hl.Load(t1))))
	randlc.Set(a2, hl.Sub(hl.Load(aConst), hl.Mul(hl.Load(t23), hl.Load(a1))))
	randlc.Set(t1, hl.Mul(hl.Load(r23), hl.Load(seedX)))
	randlc.Set(rx1, hl.FromInt(hl.ToInt(hl.Load(t1))))
	randlc.Set(rx2, hl.Sub(hl.Load(seedX), hl.Mul(hl.Load(t23), hl.Load(rx1))))
	randlc.Set(t1, hl.Add(hl.Mul(hl.Load(a1), hl.Load(rx2)), hl.Mul(hl.Load(a2), hl.Load(rx1))))
	randlc.Set(z, hl.Sub(hl.Load(t1),
		hl.Mul(hl.Load(t23), hl.FromInt(hl.ToInt(hl.Mul(hl.Load(r23), hl.Load(t1)))))))
	randlc.Set(t1, hl.Add(hl.Mul(hl.Load(t23), hl.Load(z)), hl.Mul(hl.Load(a2), hl.Load(rx2))))
	randlc.Set(seedX, hl.Sub(hl.Load(t1),
		hl.Mul(hl.Load(t46), hl.FromInt(hl.ToInt(hl.Mul(hl.Load(r46), hl.Load(t1)))))))
	randlc.Set(rnd, hl.Mul(hl.Load(r46), hl.Load(seedX)))
	randlc.Ret()

	pair := p.Func("pair")
	pair.Call("randlc")
	pair.Set(x1, hl.Sub(hl.Mul(hl.Const(2), hl.Load(rnd)), hl.Const(1)))
	pair.Call("randlc")
	pair.Set(x2, hl.Sub(hl.Mul(hl.Const(2), hl.Load(rnd)), hl.Const(1)))
	pair.Set(tv, hl.Add(hl.Mul(hl.Load(x1), hl.Load(x1)), hl.Mul(hl.Load(x2), hl.Load(x2))))
	pair.If(hl.Le(hl.Load(tv), hl.Const(1)), func() {
		pair.If(hl.Gt(hl.Load(tv), hl.Const(0)), func() {
			pair.Set(w, hl.Sqrt(hl.Div(hl.Mul(hl.Const(-2), hl.Log(hl.Load(tv))), hl.Load(tv))))
			pair.Store(acc, hl.IConst(0),
				hl.Add(hl.At(acc, hl.IConst(0)), hl.Mul(hl.Load(x1), hl.Load(w))))
			pair.Store(acc, hl.IConst(1),
				hl.Add(hl.At(acc, hl.IConst(1)), hl.Mul(hl.Load(x2), hl.Load(w))))
		}, nil)
	}, nil)
	pair.Ret()

	main := p.Func("main")
	main.MPIRank(rank)
	main.MPISize(size)
	// Per-rank seed offset and pair share.
	main.Set(seedX, hl.Add(hl.Const(271828183),
		hl.Mul(hl.Const(104729), hl.FromInt(hl.ILoad(rank)))))
	main.SetI(np, hl.IDiv(hl.IConst(int64(pairs)), hl.ILoad(size)))
	main.For(i, hl.IConst(0), hl.ILoad(np), func() {
		main.Call("pair")
	})
	main.MPIAllreduceSum(acc, hl.IConst(2))
	main.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		main.Out(hl.At(acc, hl.IConst(0)))
		main.Out(hl.At(acc, hl.IConst(1)))
	}, nil)
	main.Halt()

	return p.Build("main")
}

// cgMPISource: replicated-matrix CG where each rank computes its block of
// rows in the matrix-vector product and partial inner products, combined
// with allreduces every iteration — the NAS CG communication pattern in
// miniature.
func cgMPISource(class Class) (*prog.Module, error) {
	n, nnzPerRow, iters := cgSize(class)
	A := mm.RandomSPD(n, nnzPerRow, 0xC6+uint64(len(class)))

	p := hl.New("cg.mpi."+string(class), hl.ModeF64)
	rowptr64 := make([]int64, len(A.RowPtr))
	for i, v := range A.RowPtr {
		rowptr64[i] = int64(v)
	}
	col64 := make([]int64, len(A.Col))
	for i, v := range A.Col {
		col64[i] = int64(v)
	}
	rowptr := p.IntArrayInit("rowptr", rowptr64)
	col := p.IntArrayInit("col", col64)
	vals := p.ArrayInit("vals", A.Val)

	x := p.Array("x", n)
	b := p.Array("b", n)
	r := p.Array("r", n)
	pv := p.Array("p", n)
	q := p.Array("q", n)
	sc := p.Array("scalars", 2) // reduction scratch

	rho := p.Scalar("rho")
	alpha := p.Scalar("alpha")
	beta := p.Scalar("beta")
	rho0 := p.Scalar("rho0")
	t := p.Scalar("t")
	lo := p.Int("lo")
	hi := p.Int("hi")
	rank := p.Int("rank")
	size := p.Int("size")
	i := p.Int("i")
	k := p.Int("k")
	it := p.Int("it")

	// matvec: q[lo:hi) = A[lo:hi) p on this rank's rows, then allreduce
	// the full q (rows outside the block contribute zero).
	mv := p.Func("matvec")
	mv.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		mv.Store(q, hl.ILoad(i), hl.Const(0))
	})
	mv.For(i, hl.ILoad(lo), hl.ILoad(hi), func() {
		mv.Set(t, hl.Const(0))
		mv.For(k, hl.IAt(rowptr, hl.ILoad(i)), hl.IAt(rowptr, hl.IAdd(hl.ILoad(i), hl.IConst(1))), func() {
			mv.Set(t, hl.Add(hl.Load(t),
				hl.Mul(hl.At(vals, hl.ILoad(k)), hl.At(pv, hl.IAt(col, hl.ILoad(k))))))
		})
		mv.Store(q, hl.ILoad(i), hl.Load(t))
	})
	mv.MPIAllreduceSum(q, hl.IConst(int64(n)))
	mv.Ret()

	main := p.Func("main")
	main.MPIRank(rank)
	main.MPISize(size)
	main.SetI(lo, hl.IMul(hl.ILoad(rank), hl.IDiv(hl.IConst(int64(n)), hl.ILoad(size))))
	main.SetI(hi, hl.IAdd(hl.ILoad(lo), hl.IDiv(hl.IConst(int64(n)), hl.ILoad(size))))
	main.If(hl.IEq(hl.ILoad(rank), hl.ISub(hl.ILoad(size), hl.IConst(1))), func() {
		main.SetI(hi, hl.IConst(int64(n)))
	}, nil)
	// b = formula; r = p = b; rho = b.b (computed redundantly by all).
	main.Set(rho, hl.Const(0))
	main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		main.Store(b, hl.ILoad(i),
			hl.Add(hl.Const(1), hl.Mul(hl.Const(0.5), hl.Sin(hl.FromInt(hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
		main.Store(x, hl.ILoad(i), hl.Const(0))
		main.Store(r, hl.ILoad(i), hl.At(b, hl.ILoad(i)))
		main.Store(pv, hl.ILoad(i), hl.At(b, hl.ILoad(i)))
		main.Set(rho, hl.Add(hl.Load(rho), hl.Mul(hl.At(b, hl.ILoad(i)), hl.At(b, hl.ILoad(i)))))
	})
	main.For(it, hl.IConst(0), hl.IConst(int64(iters)), func() {
		main.Call("matvec")
		// Partial p.q over this rank's rows, allreduced.
		main.Set(t, hl.Const(0))
		main.For(i, hl.ILoad(lo), hl.ILoad(hi), func() {
			main.Set(t, hl.Add(hl.Load(t), hl.Mul(hl.At(pv, hl.ILoad(i)), hl.At(q, hl.ILoad(i)))))
		})
		main.Store(sc, hl.IConst(0), hl.Load(t))
		main.Store(sc, hl.IConst(1), hl.Const(0))
		main.MPIAllreduceSum(sc, hl.IConst(1))
		main.Set(alpha, hl.Div(hl.Load(rho), hl.At(sc, hl.IConst(0))))
		main.Set(rho0, hl.Load(rho))
		// Partial updates and r.r over this rank's rows, allreduced.
		main.Set(t, hl.Const(0))
		main.For(i, hl.ILoad(lo), hl.ILoad(hi), func() {
			main.Store(x, hl.ILoad(i), hl.Add(hl.At(x, hl.ILoad(i)), hl.Mul(hl.Load(alpha), hl.At(pv, hl.ILoad(i)))))
			main.Store(r, hl.ILoad(i), hl.Sub(hl.At(r, hl.ILoad(i)), hl.Mul(hl.Load(alpha), hl.At(q, hl.ILoad(i)))))
			main.Set(t, hl.Add(hl.Load(t), hl.Mul(hl.At(r, hl.ILoad(i)), hl.At(r, hl.ILoad(i)))))
		})
		main.Store(sc, hl.IConst(0), hl.Load(t))
		main.MPIAllreduceSum(sc, hl.IConst(1))
		main.Set(rho, hl.At(sc, hl.IConst(0)))
		main.Set(beta, hl.Div(hl.Load(rho), hl.Load(rho0)))
		// p = r + beta p on local rows, then share the full p.
		main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			main.Store(pv, hl.ILoad(i), hl.Const(0))
		})
		main.For(i, hl.ILoad(lo), hl.ILoad(hi), func() {
			main.Store(pv, hl.ILoad(i), hl.Add(hl.At(r, hl.ILoad(i)), hl.Mul(hl.Load(beta), hl.At(pv, hl.ILoad(i))))) //nolint
		})
		main.MPIAllreduceSum(pv, hl.IConst(int64(n)))
	})
	main.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		main.Out(hl.Load(rho))
	}, nil)
	main.Halt()

	return p.Build("main")
}

// ftMPISource: each rank transforms its share of independent lines
// (batched 1-D FFTs) with a barrier per iteration and an allreduced
// checksum — the transpose-free skeleton of the NAS FT decomposition.
func ftMPISource(class Class) (*prog.Module, error) {
	n, iters := ftSize(class)
	lines := 8
	p := hl.New("ft.mpi."+string(class), hl.ModeF64)
	re := p.Array("re", n*lines)
	im := p.Array("im", n*lines)
	ck := p.Array("ck", 2)
	wre := p.Scalar("wre")
	wim := p.Scalar("wim")
	tr := p.Scalar("tr")
	ti := p.Scalar("ti")
	ang := p.Scalar("ang")
	rank := p.Int("rank")
	size := p.Int("size")
	line := p.Int("line")
	line2 := p.Int("line2")
	base := p.Int("base")
	i := p.Int("i")
	j := p.Int("j")
	k := p.Int("k")
	s := p.Int("s")
	mS := p.Int("m")
	mh := p.Int("mh")
	tmp := p.Int("tmp")
	rj := p.Int("rj")
	bb := p.Int("b")
	i1 := p.Int("i1")
	i2 := p.Int("i2")
	it := p.Int("it")
	logn := 0
	for 1<<logn < n {
		logn++
	}

	// fftline: in-place FFT of the line starting at base.
	fl := p.Func("fftline")
	fl.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		fl.SetI(rj, hl.IConst(0))
		fl.SetI(tmp, hl.ILoad(i))
		fl.For(bb, hl.IConst(0), hl.IConst(int64(logn)), func() {
			fl.SetI(rj, hl.IAdd(hl.IShl(hl.ILoad(rj), 1), hl.IAnd(hl.ILoad(tmp), hl.IConst(1))))
			fl.SetI(tmp, hl.IShr(hl.ILoad(tmp), 1))
		})
		fl.If(hl.IGt(hl.ILoad(rj), hl.ILoad(i)), func() {
			ia := hl.IAdd(hl.ILoad(base), hl.ILoad(i))
			ja := hl.IAdd(hl.ILoad(base), hl.ILoad(rj))
			fl.Set(tr, hl.At(re, ia))
			fl.Store(re, ia, hl.At(re, ja))
			fl.Store(re, ja, hl.Load(tr))
			fl.Set(ti, hl.At(im, ia))
			fl.Store(im, ia, hl.At(im, ja))
			fl.Store(im, ja, hl.Load(ti))
		}, nil)
	})
	fl.SetI(mS, hl.IConst(2))
	fl.SetI(mh, hl.IConst(1))
	fl.For(s, hl.IConst(0), hl.IConst(int64(logn)), func() {
		fl.SetI(k, hl.IConst(0))
		fl.While(hl.ILt(hl.ILoad(k), hl.IConst(int64(n))), func() {
			fl.For(j, hl.IConst(0), hl.ILoad(mh), func() {
				fl.Set(ang, hl.Div(hl.Mul(hl.Const(-2*math.Pi), hl.FromInt(hl.ILoad(j))),
					hl.FromInt(hl.ILoad(mS))))
				fl.Set(wre, hl.Cos(hl.Load(ang)))
				fl.Set(wim, hl.Sin(hl.Load(ang)))
				fl.SetI(i1, hl.IAdd(hl.ILoad(base), hl.IAdd(hl.ILoad(k), hl.ILoad(j))))
				fl.SetI(i2, hl.IAdd(hl.ILoad(i1), hl.ILoad(mh)))
				fl.Set(tr, hl.Sub(hl.Mul(hl.Load(wre), hl.At(re, hl.ILoad(i2))),
					hl.Mul(hl.Load(wim), hl.At(im, hl.ILoad(i2)))))
				fl.Set(ti, hl.Add(hl.Mul(hl.Load(wre), hl.At(im, hl.ILoad(i2))),
					hl.Mul(hl.Load(wim), hl.At(re, hl.ILoad(i2)))))
				fl.Store(re, hl.ILoad(i2), hl.Sub(hl.At(re, hl.ILoad(i1)), hl.Load(tr)))
				fl.Store(im, hl.ILoad(i2), hl.Sub(hl.At(im, hl.ILoad(i1)), hl.Load(ti)))
				fl.Store(re, hl.ILoad(i1), hl.Add(hl.At(re, hl.ILoad(i1)), hl.Load(tr)))
				fl.Store(im, hl.ILoad(i1), hl.Add(hl.At(im, hl.ILoad(i1)), hl.Load(ti)))
			})
			fl.SetI(k, hl.IAdd(hl.ILoad(k), hl.ILoad(mS)))
		})
		fl.SetI(mh, hl.ILoad(mS))
		fl.SetI(mS, hl.IMul(hl.ILoad(mS), hl.IConst(2)))
	})
	fl.Ret()

	main := p.Func("main")
	main.MPIRank(rank)
	main.MPISize(size)
	// Init all lines (cheap, replicated).
	main.For(i, hl.IConst(0), hl.IConst(int64(n*lines)), func() {
		main.Store(re, hl.ILoad(i),
			hl.Add(hl.Const(0.5), hl.Mul(hl.Const(0.5), hl.Sin(hl.FromInt(hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
		main.Store(im, hl.ILoad(i),
			hl.Mul(hl.Const(0.3), hl.Cos(hl.FromInt(hl.IMul(hl.ILoad(i), hl.IConst(3))))))
	})
	main.For(it, hl.IConst(0), hl.IConst(int64(iters)), func() {
		// Each rank transforms lines rank, rank+size, rank+2*size, ...
		main.SetI(line, hl.ILoad(rank))
		main.While(hl.ILt(hl.ILoad(line), hl.IConst(int64(lines))), func() {
			main.SetI(base, hl.IMul(hl.ILoad(line), hl.IConst(int64(n))))
			main.Call("fftline")
			main.SetI(line, hl.IAdd(hl.ILoad(line), hl.ILoad(size)))
		})
		// Exchange the full field (the FT transpose step): every rank
		// zeroes the lines it does not own, and a sum-allreduce gathers
		// the updated field everywhere.
		main.If(hl.IGt(hl.ILoad(size), hl.IConst(1)), func() {
			main.For(line2, hl.IConst(0), hl.IConst(int64(lines)), func() {
				main.SetI(tmp, hl.ILoad(line2))
				main.While(hl.IGe(hl.ILoad(tmp), hl.ILoad(size)), func() {
					main.SetI(tmp, hl.ISub(hl.ILoad(tmp), hl.ILoad(size)))
				})
				main.If(hl.INe(hl.ILoad(tmp), hl.ILoad(rank)), func() {
					main.SetI(base, hl.IMul(hl.ILoad(line2), hl.IConst(int64(n))))
					main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
						main.Store(re, hl.IAdd(hl.ILoad(base), hl.ILoad(i)), hl.Const(0))
						main.Store(im, hl.IAdd(hl.ILoad(base), hl.ILoad(i)), hl.Const(0))
					})
				}, nil)
			})
			main.MPIAllreduceSum(re, hl.IConst(int64(n*lines)))
			main.MPIAllreduceSum(im, hl.IConst(int64(n*lines)))
		}, nil)
	})
	// Checksum of this rank's lines, allreduced.
	main.Store(ck, hl.IConst(0), hl.Const(0))
	main.Store(ck, hl.IConst(1), hl.Const(0))
	main.SetI(line, hl.ILoad(rank))
	main.While(hl.ILt(hl.ILoad(line), hl.IConst(int64(lines))), func() {
		main.SetI(base, hl.IMul(hl.ILoad(line), hl.IConst(int64(n))))
		main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			main.Store(ck, hl.IConst(0),
				hl.Add(hl.At(ck, hl.IConst(0)), hl.At(re, hl.IAdd(hl.ILoad(base), hl.ILoad(i)))))
			main.Store(ck, hl.IConst(1),
				hl.Add(hl.At(ck, hl.IConst(1)), hl.At(im, hl.IAdd(hl.ILoad(base), hl.ILoad(i)))))
		})
		main.SetI(line, hl.IAdd(hl.ILoad(line), hl.ILoad(size)))
	})
	main.MPIAllreduceSum(ck, hl.IConst(2))
	main.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		main.Out(hl.At(ck, hl.IConst(0)))
		main.Out(hl.At(ck, hl.IConst(1)))
	}, nil)
	main.Halt()

	return p.Build("main")
}

// mgMPISource: block-row Jacobi relaxation with halo exchange between
// neighboring ranks and an allreduced residual norm per sweep — the NAS
// MG boundary-communication pattern on one grid level.
func mgMPISource(class Class) (*prog.Module, error) {
	n, _ := mgSize(class)
	n *= 4 // MPI overhead runs use a larger fine grid
	sweeps := 30

	p := hl.New("mg.mpi."+string(class), hl.ModeF64)
	u := p.Array("u", n+1)
	rhs := p.Array("rhs", n+1)
	halo := p.Array("halo", 1)
	nrm := p.Array("nrm", 1)
	rank := p.Int("rank")
	size := p.Int("size")
	lo := p.Int("lo")
	hi := p.Int("hi")
	i := p.Int("i")
	it := p.Int("it")
	t := p.Scalar("t")

	main := p.Func("main")
	main.MPIRank(rank)
	main.MPISize(size)
	main.SetI(lo, hl.IAdd(hl.IMul(hl.ILoad(rank), hl.IDiv(hl.IConst(int64(n)), hl.ILoad(size))), hl.IConst(1)))
	main.SetI(hi, hl.IAdd(hl.ISub(hl.ILoad(lo), hl.IConst(1)), hl.IDiv(hl.IConst(int64(n)), hl.ILoad(size))))
	main.If(hl.IEq(hl.ILoad(rank), hl.ISub(hl.ILoad(size), hl.IConst(1))), func() {
		main.SetI(hi, hl.IConst(int64(n-1)))
	}, nil)
	main.For(i, hl.IConst(0), hl.IConst(int64(n+1)), func() {
		main.Store(rhs, hl.ILoad(i),
			hl.Sin(hl.Mul(hl.Const(2*math.Pi/float64(n)), hl.FromInt(hl.ILoad(i)))))
	})
	main.For(it, hl.IConst(0), hl.IConst(int64(sweeps)), func() {
		// Halo exchange: send last owned point right, first owned left.
		main.If(hl.ILt(hl.IAdd(hl.ILoad(rank), hl.IConst(1)), hl.ILoad(size)), func() {
			main.Store(halo, hl.IConst(0), hl.At(u, hl.ILoad(hi)))
			main.MPISend(halo, hl.IConst(1), hl.IAdd(hl.ILoad(rank), hl.IConst(1)))
		}, nil)
		main.If(hl.IGt(hl.ILoad(rank), hl.IConst(0)), func() {
			main.MPIRecv(halo, hl.IConst(1), hl.ISub(hl.ILoad(rank), hl.IConst(1)))
			main.Store(u, hl.ISub(hl.ILoad(lo), hl.IConst(1)), hl.At(halo, hl.IConst(0)))
			main.Store(halo, hl.IConst(0), hl.At(u, hl.ILoad(lo)))
			main.MPISend(halo, hl.IConst(1), hl.ISub(hl.ILoad(rank), hl.IConst(1)))
		}, nil)
		main.If(hl.ILt(hl.IAdd(hl.ILoad(rank), hl.IConst(1)), hl.ILoad(size)), func() {
			main.MPIRecv(halo, hl.IConst(1), hl.IAdd(hl.ILoad(rank), hl.IConst(1)))
			main.Store(u, hl.IAdd(hl.ILoad(hi), hl.IConst(1)), hl.At(halo, hl.IConst(0)))
		}, nil)
		// Jacobi sweep over the owned block.
		main.For(i, hl.ILoad(lo), hl.IAdd(hl.ILoad(hi), hl.IConst(1)), func() {
			main.Store(u, hl.ILoad(i),
				hl.Add(hl.At(u, hl.ILoad(i)),
					hl.Mul(hl.Const(1.0/3.0),
						hl.Sub(hl.Add(hl.At(rhs, hl.ILoad(i)),
							hl.Add(hl.At(u, hl.ISub(hl.ILoad(i), hl.IConst(1))),
								hl.At(u, hl.IAdd(hl.ILoad(i), hl.IConst(1))))),
							hl.Mul(hl.Const(2), hl.At(u, hl.ILoad(i)))))))
		})
		// Residual norm contribution, allreduced.
		main.Set(t, hl.Const(0))
		main.For(i, hl.ILoad(lo), hl.IAdd(hl.ILoad(hi), hl.IConst(1)), func() {
			r := hl.Sub(hl.At(rhs, hl.ILoad(i)),
				hl.Sub(hl.Mul(hl.Const(2), hl.At(u, hl.ILoad(i))),
					hl.Add(hl.At(u, hl.ISub(hl.ILoad(i), hl.IConst(1))),
						hl.At(u, hl.IAdd(hl.ILoad(i), hl.IConst(1))))))
			main.Set(t, hl.Add(hl.Load(t), hl.Mul(r, r)))
		})
		main.Store(nrm, hl.IConst(0), hl.Load(t))
		main.MPIAllreduceSum(nrm, hl.IConst(1))
	})
	main.If(hl.IEq(hl.ILoad(rank), hl.IConst(0)), func() {
		main.Out(hl.Sqrt(hl.At(nrm, hl.IConst(0))))
	}, nil)
	main.Halt()

	return p.Build("main")
}
