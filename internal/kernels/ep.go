package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// EP: the embarrassingly-parallel kernel. Gaussian deviate pairs are
// generated with the NAS randlc linear congruential generator — double
// precision arithmetic simulating 46-bit integer math, which is exactly
// the kind of "unusual construct" (paper §2.1) that can never survive a
// downcast to single precision — and tallied into ten annuli.
//
// Program structure: main -> pair -> {randlc, gauss}, plus a cold
// statistics routine. The RNG dominates dynamic execution counts, so EP
// shows the paper's signature high-static / lower-dynamic replacement
// profile.

func epPairs(class Class) int {
	switch class {
	case ClassA:
		return 2048
	case ClassC:
		return 8192
	default:
		return 512
	}
}

// epSource builds the EP program at the given mode.
func epSource(class Class, mode hl.Mode) (*prog.Module, error) {
	p := hl.New("ep."+string(class), mode)

	// randlc state and constants.
	r23 := p.ScalarInit("r23", math.Pow(2, -23))
	t23 := p.ScalarInit("t23", math.Pow(2, 23))
	r46 := p.ScalarInit("r46", math.Pow(2, -46))
	t46 := p.ScalarInit("t46", math.Pow(2, 46))
	seedX := p.ScalarInit("x", 271828183.0)
	aConst := p.ScalarInit("a", 1220703125.0)
	rnd := p.Scalar("rnd")

	// pair state.
	x1 := p.Scalar("x1")
	x2 := p.Scalar("x2")
	tv := p.Scalar("t")
	w := p.Scalar("w")
	gx := p.Scalar("gx")
	gy := p.Scalar("gy")
	sx := p.Scalar("sx")
	sy := p.Scalar("sy")
	counts := p.Array("counts", 10)
	pop := p.Scalar("pop")
	lidx := p.Int("l")
	i := p.Int("i")
	k := p.Int("k")

	// randlc: x = (a * x) mod 2^46, rnd = x * 2^-46, all in FP arithmetic
	// emulating 46-bit integer multiplication (NAS randlc).
	t1 := p.Scalar("t1")
	a1 := p.Scalar("a1")
	a2 := p.Scalar("a2")
	rx1 := p.Scalar("rx1")
	rx2 := p.Scalar("rx2")
	z := p.Scalar("z")
	randlc := p.Func("randlc")
	randlc.Set(t1, hl.Mul(hl.Load(r23), hl.Load(aConst)))
	randlc.Set(a1, hl.FromInt(hl.ToInt(hl.Load(t1))))
	randlc.Set(a2, hl.Sub(hl.Load(aConst), hl.Mul(hl.Load(t23), hl.Load(a1))))
	randlc.Set(t1, hl.Mul(hl.Load(r23), hl.Load(seedX)))
	randlc.Set(rx1, hl.FromInt(hl.ToInt(hl.Load(t1))))
	randlc.Set(rx2, hl.Sub(hl.Load(seedX), hl.Mul(hl.Load(t23), hl.Load(rx1))))
	randlc.Set(t1, hl.Add(hl.Mul(hl.Load(a1), hl.Load(rx2)), hl.Mul(hl.Load(a2), hl.Load(rx1))))
	randlc.Set(z, hl.Sub(hl.Load(t1),
		hl.Mul(hl.Load(t23), hl.FromInt(hl.ToInt(hl.Mul(hl.Load(r23), hl.Load(t1)))))))
	randlc.Set(t1, hl.Add(hl.Mul(hl.Load(t23), hl.Load(z)), hl.Mul(hl.Load(a2), hl.Load(rx2))))
	randlc.Set(seedX, hl.Sub(hl.Load(t1),
		hl.Mul(hl.Load(t46), hl.FromInt(hl.ToInt(hl.Mul(hl.Load(r46), hl.Load(t1)))))))
	randlc.Set(rnd, hl.Mul(hl.Load(r46), hl.Load(seedX)))
	randlc.Ret()

	// gauss: Box-Muller acceptance step and annulus tally.
	gauss := p.Func("gauss")
	gauss.Set(tv, hl.Add(hl.Mul(hl.Load(x1), hl.Load(x1)), hl.Mul(hl.Load(x2), hl.Load(x2))))
	gauss.If(hl.Le(hl.Load(tv), hl.Const(1)), func() {
		gauss.If(hl.Gt(hl.Load(tv), hl.Const(0)), func() {
			gauss.Set(w, hl.Sqrt(hl.Div(hl.Mul(hl.Const(-2), hl.Log(hl.Load(tv))), hl.Load(tv))))
			gauss.Set(gx, hl.Mul(hl.Load(x1), hl.Load(w)))
			gauss.Set(gy, hl.Mul(hl.Load(x2), hl.Load(w)))
			gauss.Set(sx, hl.Add(hl.Load(sx), hl.Load(gx)))
			gauss.Set(sy, hl.Add(hl.Load(sy), hl.Load(gy)))
			gauss.SetI(lidx, hl.ToInt(hl.Max(hl.Abs(hl.Load(gx)), hl.Abs(hl.Load(gy)))))
			gauss.If(hl.ILt(hl.ILoad(lidx), hl.IConst(10)), func() {
				gauss.Store(counts, hl.ILoad(lidx),
					hl.Add(hl.At(counts, hl.ILoad(lidx)), hl.Const(1)))
			}, nil)
		}, nil)
	}, nil)
	gauss.Ret()

	// pair: two uniform deviates in (-1, 1), then the acceptance step.
	pair := p.Func("pair")
	pair.Call("randlc")
	pair.Set(x1, hl.Sub(hl.Mul(hl.Const(2), hl.Load(rnd)), hl.Const(1)))
	pair.Call("randlc")
	pair.Set(x2, hl.Sub(hl.Mul(hl.Const(2), hl.Load(rnd)), hl.Const(1)))
	pair.Call("gauss")
	pair.Ret()

	// stats: cold accounting pass over the annulus table (executed once;
	// the population count is verified only loosely, so this region is
	// single-safe — the shape behind high static replacement rates).
	stats := p.Func("stats")
	stats.Set(pop, hl.Const(0))
	stats.For(k, hl.IConst(0), hl.IConst(10), func() {
		stats.Set(pop, hl.Add(hl.Load(pop), hl.At(counts, hl.ILoad(k))))
	})
	stats.Ret()

	main := p.Func("main")
	main.For(i, hl.IConst(0), hl.IConst(int64(epPairs(class))), func() {
		main.Call("pair")
	})
	main.Call("stats")
	main.Out(hl.Load(sx))
	main.Out(hl.Load(sy))
	main.Out(hl.Load(pop))
	for kk := 0; kk < 10; kk++ {
		main.Out(hl.At(counts, hl.IConst(int64(kk))))
	}
	main.Halt()

	return p.Build("main")
}

func buildEP(class Class) (*Bench, error) {
	m, err := epSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(600_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	// Verification: Gaussian sums within a loose relative bound (single
	// precision accumulation noise is acceptable, per-annulus counts must
	// agree within one boundary flip).
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		for i := 0; i < 2; i++ {
			if relErr(ref[i], got[i]) > 2e-5 {
				return false
			}
		}
		for i := 2; i < len(ref); i++ {
			if math.Abs(got[i]-ref[i]) > 1.0 {
				return false
			}
		}
		return true
	}
	return &Bench{
		Name:      "ep",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   2e-5,
	}, nil
}

func relErr(ref, got float64) float64 {
	if math.IsNaN(got) {
		return math.Inf(1)
	}
	return math.Abs(got-ref) / math.Max(1, math.Abs(ref))
}

// EPSource exposes the EP builder for tests and the Ignore-flag example.
func EPSource(class Class, mode hl.Mode) (*prog.Module, error) { return epSource(class, mode) }
