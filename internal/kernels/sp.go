package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// SP: a scalar pentadiagonal line solver in the NAS SP style. The coupled
// equation  pent_x(u) - 0.4 (u_N + u_S) = f  is relaxed by alternating
// direction sweeps: a pentadiagonal Gaussian elimination along each x-line
// (y-coupling lagged in the right-hand side) and a tridiagonal solve along
// each y-line (x-operator lagged), both sharing the same fixpoint. NAS-
// style one-shot routines (exact_rhs, initialize, error_norms, rhs_norms)
// provide the cold setup and diagnostics regions.

func spSize(class Class) (nx, ny, steps int) {
	switch class {
	case ClassA:
		return 28, 14, 18
	case ClassC:
		return 40, 20, 20
	default:
		return 14, 10, 16
	}
}

func spSource(class Class, mode hl.Mode) (*prog.Module, error) {
	nx, ny, steps := spSize(class)
	ncell := nx * ny
	nmax := nx
	if ny > nmax {
		nmax = ny
	}

	p := hl.New("sp."+string(class), mode)
	u := p.Array("u", ncell)
	f := p.Array("f", ncell)
	da := p.Array("da", nmax) // second sub-diagonal
	db := p.Array("db", nmax) // first sub-diagonal
	dc := p.Array("dc", nmax) // main diagonal
	dd := p.Array("dd", nmax) // first super-diagonal
	de := p.Array("de", nmax) // second super-diagonal
	rr := p.Array("rr", nmax)
	fac := p.Scalar("fac")
	chg := p.Scalar("chg")
	t := p.Scalar("spt")
	enorm := p.Scalar("enorm")
	fnorm := p.Scalar("fnorm")

	i := p.Int("i")
	j := p.Int("j")
	k := p.Int("k")
	it := p.Int("it")
	lineLen := p.Int("linelen")

	idx := func(ie, je hl.IExpr) hl.IExpr {
		return hl.IAdd(hl.IMul(je, hl.IConst(int64(nx))), ie)
	}

	// Pentadiagonal stencil coefficients (diagonally dominant) and the
	// y-direction coupling strength.
	const a2, a1, a0 = -0.1, -0.8, 3.2
	const cy = 0.4

	// exact_rhs: one-shot forcing-term generation (NAS exact_rhs).
	erhs := p.Func("exact_rhs")
	erhs.For(k, hl.IConst(0), hl.IConst(int64(ncell)), func() {
		erhs.Store(f, hl.ILoad(k),
			hl.Add(hl.Const(0.5), hl.Mul(hl.Const(0.4), hl.Cos(hl.Mul(hl.Const(0.31), hl.FromInt(hl.ILoad(k)))))))
	})
	erhs.Ret()

	// initialize: one-shot initial guess (NAS initialize).
	initz := p.Func("initialize")
	initz.For(k, hl.IConst(0), hl.IConst(int64(ncell)), func() {
		initz.Store(u, hl.ILoad(k),
			hl.Mul(hl.Const(0.1), hl.Sin(hl.Mul(hl.Const(0.11), hl.FromInt(hl.ILoad(k))))))
	})
	initz.Ret()

	// pentx: pent_x(u) at (i, j), with out-of-range terms dropped exactly
	// as the line solver drops them.
	pentx := func(ie hl.IExpr) hl.Expr {
		e := hl.Mul(hl.Const(a0), hl.At(u, idx(ie, hl.ILoad(j))))
		e = hl.Add(e, hl.Mul(hl.Const(a1), hl.At(u, idx(hl.ISub(ie, hl.IConst(1)), hl.ILoad(j)))))
		e = hl.Add(e, hl.Mul(hl.Const(a1), hl.At(u, idx(hl.IAdd(ie, hl.IConst(1)), hl.ILoad(j)))))
		e = hl.Add(e, hl.Mul(hl.Const(a2), hl.At(u, idx(hl.ISub(ie, hl.IConst(2)), hl.ILoad(j)))))
		e = hl.Add(e, hl.Mul(hl.Const(a2), hl.At(u, idx(hl.IAdd(ie, hl.IConst(2)), hl.ILoad(j)))))
		return e
	}

	// pent_solve: in-place Gaussian elimination of the system in
	// da..de/rr with length lineLen, solution left in rr.
	ps := p.Func("pent_solve")
	ps.For(k, hl.IConst(0), hl.ILoad(lineLen), func() {
		ps.If(hl.ILt(hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.ILoad(lineLen)), func() {
			k1 := hl.IAdd(hl.ILoad(k), hl.IConst(1))
			ps.Set(fac, hl.Div(hl.At(db, k1), hl.At(dc, hl.ILoad(k))))
			ps.Store(dc, k1, hl.Sub(hl.At(dc, k1), hl.Mul(hl.Load(fac), hl.At(dd, hl.ILoad(k)))))
			ps.Store(dd, k1, hl.Sub(hl.At(dd, k1), hl.Mul(hl.Load(fac), hl.At(de, hl.ILoad(k)))))
			ps.Store(rr, k1, hl.Sub(hl.At(rr, k1), hl.Mul(hl.Load(fac), hl.At(rr, hl.ILoad(k)))))
		}, nil)
		ps.If(hl.ILt(hl.IAdd(hl.ILoad(k), hl.IConst(2)), hl.ILoad(lineLen)), func() {
			k2 := hl.IAdd(hl.ILoad(k), hl.IConst(2))
			ps.Set(fac, hl.Div(hl.At(da, k2), hl.At(dc, hl.ILoad(k))))
			ps.Store(db, k2, hl.Sub(hl.At(db, k2), hl.Mul(hl.Load(fac), hl.At(dd, hl.ILoad(k)))))
			ps.Store(dc, k2, hl.Sub(hl.At(dc, k2), hl.Mul(hl.Load(fac), hl.At(de, hl.ILoad(k)))))
			ps.Store(rr, k2, hl.Sub(hl.At(rr, k2), hl.Mul(hl.Load(fac), hl.At(rr, hl.ILoad(k)))))
		}, nil)
	})
	ps.SetI(k, hl.ISub(hl.ILoad(lineLen), hl.IConst(1)))
	ps.While(hl.IGe(hl.ILoad(k), hl.IConst(0)), func() {
		ps.Set(t, hl.At(rr, hl.ILoad(k)))
		ps.If(hl.ILt(hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.ILoad(lineLen)), func() {
			ps.Set(t, hl.Sub(hl.Load(t),
				hl.Mul(hl.At(dd, hl.ILoad(k)), hl.At(rr, hl.IAdd(hl.ILoad(k), hl.IConst(1))))))
		}, nil)
		ps.If(hl.ILt(hl.IAdd(hl.ILoad(k), hl.IConst(2)), hl.ILoad(lineLen)), func() {
			ps.Set(t, hl.Sub(hl.Load(t),
				hl.Mul(hl.At(de, hl.ILoad(k)), hl.At(rr, hl.IAdd(hl.ILoad(k), hl.IConst(2))))))
		}, nil)
		ps.Store(rr, hl.ILoad(k), hl.Div(hl.Load(t), hl.At(dc, hl.ILoad(k))))
		ps.SetI(k, hl.ISub(hl.ILoad(k), hl.IConst(1)))
	})
	ps.Ret()

	// xsweep: pentadiagonal solve along each row, y-coupling lagged.
	xsw := p.Func("xsweep")
	xsw.SetI(lineLen, hl.IConst(int64(nx)))
	xsw.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		xsw.For(k, hl.IConst(0), hl.IConst(int64(nx)), func() {
			xsw.Store(da, hl.ILoad(k), hl.Const(a2))
			xsw.Store(db, hl.ILoad(k), hl.Const(a1))
			xsw.Store(dc, hl.ILoad(k), hl.Const(a0))
			xsw.Store(dd, hl.ILoad(k), hl.Const(a1))
			xsw.Store(de, hl.ILoad(k), hl.Const(a2))
			xsw.Store(rr, hl.ILoad(k),
				hl.Add(hl.At(f, idx(hl.ILoad(k), hl.ILoad(j))),
					hl.Mul(hl.Const(cy),
						hl.Add(hl.At(u, idx(hl.ILoad(k), hl.ISub(hl.ILoad(j), hl.IConst(1)))),
							hl.At(u, idx(hl.ILoad(k), hl.IAdd(hl.ILoad(j), hl.IConst(1))))))))
		})
		xsw.Call("pent_solve")
		xsw.For(k, hl.IConst(0), hl.IConst(int64(nx)), func() {
			xsw.Store(u, idx(hl.ILoad(k), hl.ILoad(j)), hl.At(rr, hl.ILoad(k)))
		})
	})
	xsw.Ret()

	// ysweep: tridiagonal solve along each column with the x-operator
	// lagged, sharing the xsweep fixpoint: the y-line system is
	// -cy u_N + a0 u - cy u_S = f - (pent_x u - a0 u).
	ysw := p.Func("ysweep")
	ysw.SetI(lineLen, hl.IConst(int64(ny)))
	ysw.For(i, hl.IConst(2), hl.IConst(int64(nx-2)), func() {
		ysw.For(k, hl.IConst(0), hl.IConst(int64(ny)), func() {
			ysw.Store(da, hl.ILoad(k), hl.Const(0))
			ysw.Store(db, hl.ILoad(k), hl.Const(-cy))
			ysw.Store(dc, hl.ILoad(k), hl.Const(a0))
			ysw.Store(dd, hl.ILoad(k), hl.Const(-cy))
			ysw.Store(de, hl.ILoad(k), hl.Const(0))
		})
		ysw.For(k, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
			// rhs = f - (pent_x u - a0 u), evaluated at (i, k).
			ysw.SetI(j, hl.ILoad(k))
			ysw.Set(t, hl.Sub(pentx(hl.ILoad(i)), hl.Mul(hl.Const(a0), hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))))))
			ysw.Store(rr, hl.ILoad(k), hl.Sub(hl.At(f, idx(hl.ILoad(i), hl.ILoad(j))), hl.Load(t)))
		})
		// Boundary rows are identity rows: u stays at its current value.
		ysw.Store(dd, hl.IConst(0), hl.Const(0))
		ysw.Store(db, hl.IConst(int64(ny-1)), hl.Const(0))
		ysw.Store(rr, hl.IConst(0), hl.Mul(hl.Const(a0), hl.At(u, idx(hl.ILoad(i), hl.IConst(0)))))
		ysw.Store(rr, hl.IConst(int64(ny-1)),
			hl.Mul(hl.Const(a0), hl.At(u, idx(hl.ILoad(i), hl.IConst(int64(ny-1))))))
		ysw.Call("pent_solve")
		ysw.For(k, hl.IConst(0), hl.IConst(int64(ny)), func() {
			ysw.Store(u, idx(hl.ILoad(i), hl.ILoad(k)), hl.At(rr, hl.ILoad(k)))
		})
	})
	ysw.Ret()

	// change: residual of the coupled operator over the full-stencil
	// interior — the verified convergence quantity.
	ch := p.Func("change")
	ch.Set(chg, hl.Const(0))
	ch.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		ch.For(i, hl.IConst(2), hl.IConst(int64(nx-2)), func() {
			r := hl.Sub(hl.At(f, idx(hl.ILoad(i), hl.ILoad(j))),
				hl.Sub(pentx(hl.ILoad(i)),
					hl.Mul(hl.Const(cy),
						hl.Add(hl.At(u, idx(hl.ILoad(i), hl.ISub(hl.ILoad(j), hl.IConst(1)))),
							hl.At(u, idx(hl.ILoad(i), hl.IAdd(hl.ILoad(j), hl.IConst(1))))))))
			ch.Set(t, r)
			ch.Set(chg, hl.Add(hl.Load(chg), hl.Mul(hl.Load(t), hl.Load(t))))
		})
	})
	ch.Set(chg, hl.Sqrt(hl.Load(chg)))
	ch.Ret()

	// error_norms / rhs_norms: one-shot diagnostics (loosely verified).
	en := p.Func("error_norms")
	en.Set(enorm, hl.Const(0))
	en.For(k, hl.IConst(0), hl.IConst(int64(ncell)), func() {
		en.Set(enorm, hl.Add(hl.Load(enorm), hl.Mul(hl.At(u, hl.ILoad(k)), hl.At(u, hl.ILoad(k)))))
	})
	en.Set(enorm, hl.Sqrt(hl.Load(enorm)))
	en.Ret()

	fn := p.Func("rhs_norms")
	fn.Set(fnorm, hl.Const(0))
	fn.For(k, hl.IConst(0), hl.IConst(int64(ncell)), func() {
		fn.Set(fnorm, hl.Add(hl.Load(fnorm), hl.Abs(hl.At(f, hl.ILoad(k)))))
	})
	fn.Ret()

	main := p.Func("main")
	main.Call("exact_rhs")
	main.Call("initialize")
	main.For(it, hl.IConst(0), hl.IConst(int64(steps)), func() {
		main.Call("xsweep")
		main.Call("ysweep")
	})
	main.Call("change")
	main.Call("error_norms")
	main.Call("rhs_norms")
	main.Out(hl.Load(chg))
	main.Out(hl.Load(enorm))
	main.Out(hl.Load(fnorm))
	main.Halt()

	return p.Build("main")
}

func buildSP(class Class) (*Bench, error) {
	m, err := spSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(800_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	thr := ref[0] * 30
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		if math.IsNaN(got[0]) || got[0] < 0 || got[0] > thr {
			return false
		}
		return relErr(ref[1], got[1]) < 1e-4 && relErr(ref[2], got[2]) < 1e-4
	}
	return &Bench{
		Name:      "sp",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-4,
	}, nil
}

// SPSource exposes the SP builder for tests and examples.
func SPSource(class Class, mode hl.Mode) (*prog.Module, error) { return spSource(class, mode) }
