package kernels

import (
	"fmt"
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// MG: a geometric multigrid V-cycle solver for the 1-D Poisson operator
// [-1, 2, -1] on 2^k+1-point grids, in the NAS MG style: per-level
// smooth / residual / restrict / interpolate routines (one function per
// level, like the specialized routines NAS MG generates per grid size)
// driving the residual norm down over a fixed number of V-cycles.
// Multigrid's self-correcting iteration tolerates single precision in
// much of the hierarchy, giving MG the paper's broad-replacement profile.

func mgSize(class Class) (n, cycles int) {
	switch class {
	case ClassA:
		return 256, 7
	case ClassC:
		return 512, 7
	default:
		return 128, 6
	}
}

// mgThreshold is the verified bound on the final relative residual norm.
const mgThresholdVal = 1e-6

// vcycleParams configures the shared V-cycle program generator.
type vcycleParams struct {
	name         string
	n            int // fine grid interval count (2^k); grids have n+1 points
	cycles       int
	preSweeps    int // smoothing sweeps per level on the way down and up
	coarseSweeps int
	mixedRHS     bool // add a high-frequency component to the forcing
}

// vcycleSource generates a complete multilevel V-cycle program.
func vcycleSource(par vcycleParams, mode hl.Mode) (*prog.Module, error) {
	n := par.n
	levels := 0
	for sz := n; sz >= 8; sz >>= 1 {
		levels++
	}

	p := hl.New(par.name, mode)
	sizes := make([]int, levels) // interval counts; arrays hold sizes[l]+1 points
	for l := range sizes {
		sizes[l] = n >> l
	}
	u := make([]hl.FArr, levels)
	rhs := make([]hl.FArr, levels)
	res := make([]hl.FArr, levels)
	for l := 0; l < levels; l++ {
		u[l] = p.Array(fmt.Sprintf("u%d", l), sizes[l]+1)
		rhs[l] = p.Array(fmt.Sprintf("rhs%d", l), sizes[l]+1)
		res[l] = p.Array(fmt.Sprintf("res%d", l), sizes[l]+1)
	}
	rnorm := p.Scalar("rnorm")
	bn := p.Scalar("bn")
	i := p.Int("i")
	c := p.Int("c")
	s := p.Int("s")

	// init: forcing on the fine grid.
	init := p.Func("init")
	init.For(i, hl.IConst(0), hl.IConst(int64(n+1)), func() {
		e := hl.Sin(hl.Mul(hl.Const(2*math.Pi/float64(n)), hl.FromInt(hl.ILoad(i))))
		if par.mixedRHS {
			e = hl.Add(e, hl.Mul(hl.Const(0.5),
				hl.Sin(hl.Mul(hl.Const(34*math.Pi/float64(n)), hl.FromInt(hl.ILoad(i))))))
		}
		init.Store(rhs[0], hl.ILoad(i), e)
	})
	init.Ret()

	for l := 0; l < levels; l++ {
		l := l
		nl := sizes[l]

		// smoothL: damped Jacobi sweeps (in-place, Gauss-Seidel flavor).
		sweeps := par.preSweeps
		if l == levels-1 {
			sweeps = par.coarseSweeps
		}
		sm := p.Func(fmt.Sprintf("smooth%d", l))
		sm.For(s, hl.IConst(0), hl.IConst(int64(sweeps)), func() {
			sm.For(i, hl.IConst(1), hl.IConst(int64(nl)), func() {
				upd := hl.Mul(hl.Const(1.0/3.0),
					hl.Sub(hl.Add(hl.At(rhs[l], hl.ILoad(i)),
						hl.Add(hl.At(u[l], hl.ISub(hl.ILoad(i), hl.IConst(1))),
							hl.At(u[l], hl.IAdd(hl.ILoad(i), hl.IConst(1))))),
						hl.Mul(hl.Const(2), hl.At(u[l], hl.ILoad(i)))))
				sm.Store(u[l], hl.ILoad(i), hl.Add(hl.At(u[l], hl.ILoad(i)), upd))
			})
		})
		sm.Ret()

		// residL: res = rhs - A u over the interior.
		rs := p.Func(fmt.Sprintf("resid%d", l))
		rs.Store(res[l], hl.IConst(0), hl.Const(0))
		rs.Store(res[l], hl.IConst(int64(nl)), hl.Const(0))
		rs.For(i, hl.IConst(1), hl.IConst(int64(nl)), func() {
			rs.Store(res[l], hl.ILoad(i),
				hl.Sub(hl.At(rhs[l], hl.ILoad(i)),
					hl.Sub(hl.Mul(hl.Const(2), hl.At(u[l], hl.ILoad(i))),
						hl.Add(hl.At(u[l], hl.ISub(hl.ILoad(i), hl.IConst(1))),
							hl.At(u[l], hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
		})
		rs.Ret()

		if l+1 < levels {
			nc := sizes[l+1]
			// restrictL: coarse rhs = 4 * full-weighting of the residual
			// (the (2h)^2/h^2 factor of re-discretized difference
			// operators); zero the coarse solution.
			rp := p.Func(fmt.Sprintf("restrict%d", l))
			rp.For(i, hl.IConst(0), hl.IConst(int64(nc+1)), func() {
				rp.Store(u[l+1], hl.ILoad(i), hl.Const(0))
				rp.Store(rhs[l+1], hl.ILoad(i), hl.Const(0))
			})
			rp.For(i, hl.IConst(1), hl.IConst(int64(nc)), func() {
				twoI := hl.IMul(hl.ILoad(i), hl.IConst(2))
				rp.Store(rhs[l+1], hl.ILoad(i),
					hl.Add(hl.At(res[l], hl.ISub(twoI, hl.IConst(1))),
						hl.Add(hl.Mul(hl.Const(2), hl.At(res[l], twoI)),
							hl.At(res[l], hl.IAdd(twoI, hl.IConst(1))))))
			})
			rp.Ret()

			// interpL: linear interpolation of the coarse correction.
			ip := p.Func(fmt.Sprintf("interp%d", l))
			ip.For(i, hl.IConst(1), hl.IConst(int64(nc)), func() {
				twoI := hl.IMul(hl.ILoad(i), hl.IConst(2))
				ip.Store(u[l], twoI, hl.Add(hl.At(u[l], twoI), hl.At(u[l+1], hl.ILoad(i))))
			})
			ip.For(i, hl.IConst(0), hl.IConst(int64(nc)), func() {
				twoI1 := hl.IAdd(hl.IMul(hl.ILoad(i), hl.IConst(2)), hl.IConst(1))
				ip.Store(u[l], twoI1,
					hl.Add(hl.At(u[l], twoI1),
						hl.Mul(hl.Const(0.5),
							hl.Add(hl.At(u[l+1], hl.ILoad(i)),
								hl.At(u[l+1], hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
			})
			ip.Ret()
		}
	}

	// vcycle: one full V-cycle.
	vc := p.Func("vcycle")
	for l := 0; l < levels-1; l++ {
		vc.Call(fmt.Sprintf("smooth%d", l))
		vc.Call(fmt.Sprintf("resid%d", l))
		vc.Call(fmt.Sprintf("restrict%d", l))
	}
	vc.Call(fmt.Sprintf("smooth%d", levels-1))
	for l := levels - 2; l >= 0; l-- {
		vc.Call(fmt.Sprintf("interp%d", l))
		vc.Call(fmt.Sprintf("smooth%d", l))
	}
	vc.Ret()

	// norm: relative fine-grid residual norm.
	nm := p.Func("norm")
	nm.Call("resid0")
	nm.Set(rnorm, hl.Const(0))
	nm.Set(bn, hl.Const(0))
	nm.For(i, hl.IConst(0), hl.IConst(int64(n+1)), func() {
		nm.Set(rnorm, hl.Add(hl.Load(rnorm),
			hl.Mul(hl.At(res[0], hl.ILoad(i)), hl.At(res[0], hl.ILoad(i)))))
		nm.Set(bn, hl.Add(hl.Load(bn),
			hl.Mul(hl.At(rhs[0], hl.ILoad(i)), hl.At(rhs[0], hl.ILoad(i)))))
	})
	nm.Set(rnorm, hl.Div(hl.Sqrt(hl.Load(rnorm)), hl.Sqrt(hl.Load(bn))))
	nm.Ret()

	main := p.Func("main")
	main.Call("init")
	main.For(c, hl.IConst(0), hl.IConst(int64(par.cycles)), func() {
		main.Call("vcycle")
	})
	main.Call("norm")
	main.Out(hl.Load(rnorm))
	main.Halt()

	return p.Build("main")
}

func mgSource(class Class, mode hl.Mode) (*prog.Module, error) {
	n, cycles := mgSize(class)
	return vcycleSource(vcycleParams{
		name:         "mg." + string(class),
		n:            n,
		cycles:       cycles,
		preSweeps:    2,
		coarseSweeps: 30,
		mixedRHS:     true,
	}, mode)
}

// MGSource exposes the MG builder for tests and examples.
func MGSource(class Class, mode hl.Mode) (*prog.Module, error) { return mgSource(class, mode) }

func buildMG(class Class) (*Bench, error) {
	m, err := mgSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(600_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	if ref[0] > mgThresholdVal/4 {
		return nil, errNotConverged("mg", string(class), ref[0])
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != 1 || math.IsNaN(got[0]) || got[0] < 0 {
			return false
		}
		return got[0] <= mgThresholdVal
	}
	return &Bench{
		Name:      "mg",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-6,
	}, nil
}
