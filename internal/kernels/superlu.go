package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/mm"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// SuperLU: a direct sparse-style solver in the spirit of the paper's
// SuperLU linear-solver experiment (§3.3): LU factorization with partial
// pivoting on a memplus-like memory-circuit matrix, forward and backward
// triangular solves, and a program-reported backward-error metric. The
// threshold sweep of Figure 11 drives the automatic search with this
// reported error compared against successively tighter bounds.

func superluSize(class Class) int {
	switch class {
	case ClassA:
		return 64
	case ClassC:
		return 96
	default:
		return 40
	}
}

// SuperLUDefaultThreshold is the error bound of the standard benchmark
// verification (roughly the single-precision solve's reported error, as
// in the paper's first sweep row).
const SuperLUDefaultThreshold = 1e-12

func superluSource(class Class, mode hl.Mode) (*prog.Module, error) {
	n := superluSize(class)
	A := mm.Memplus(n, 0x5175+uint64(len(class))).Dense()

	p := hl.New("superlu."+string(class), mode)
	a := p.ArrayInit("a", A)   // factored in place
	a0 := p.ArrayInit("a0", A) // pristine copy for the error check
	b := p.Array("b", n)       // permuted with the rows
	xt := p.Array("xt", n)     // known true solution
	x := p.Array("x", n)
	y := p.Array("y", n)
	errv := p.Scalar("err")
	xnorm := p.Scalar("xnorm")
	pmax := p.Scalar("pmax")
	t := p.Scalar("slt")

	i := p.Int("i")
	j := p.Int("j")
	k := p.Int("k")
	prow := p.Int("prow")

	at := func(arr hl.FArr, ie, je hl.IExpr) hl.Expr {
		return hl.At(arr, hl.IAdd(hl.IMul(ie, hl.IConst(int64(n))), je))
	}
	stor := func(fb *hl.FuncBuilder, arr hl.FArr, ie, je hl.IExpr, e hl.Expr) {
		fb.Store(arr, hl.IAdd(hl.IMul(ie, hl.IConst(int64(n))), je), e)
	}

	// init: a known true solution with exactly representable entries
	// (multiples of 1/8, identical in single and double precision), and
	// the matching right-hand side b = A0 * xt.
	init := p.Func("init")
	init.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		// xt[i] = 1 + 0.125 * (i mod 7)
		init.SetI(j, hl.ISub(hl.ILoad(i), hl.IMul(hl.IDiv(hl.ILoad(i), hl.IConst(7)), hl.IConst(7))))
		init.Store(xt, hl.ILoad(i), hl.Add(hl.Const(1), hl.Mul(hl.Const(0.125), hl.FromInt(hl.ILoad(j)))))
	})
	init.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		init.Set(t, hl.Const(0))
		init.For(j, hl.IConst(0), hl.IConst(int64(n)), func() {
			init.Set(t, hl.Add(hl.Load(t), hl.Mul(at(a0, hl.ILoad(i), hl.ILoad(j)), hl.At(xt, hl.ILoad(j)))))
		})
		init.Store(b, hl.ILoad(i), hl.Load(t))
	})
	init.Ret()

	// factor: LU with partial pivoting, multipliers stored in place,
	// right-hand side permuted along with the rows.
	fac := p.Func("factor")
	fac.For(k, hl.IConst(0), hl.IConst(int64(n)), func() {
		// Pivot search down column k.
		fac.Set(pmax, hl.Abs(at(a, hl.ILoad(k), hl.ILoad(k))))
		fac.SetI(prow, hl.ILoad(k))
		fac.For(i, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(int64(n)), func() {
			fac.If(hl.Gt(hl.Abs(at(a, hl.ILoad(i), hl.ILoad(k))), hl.Load(pmax)), func() {
				fac.Set(pmax, hl.Abs(at(a, hl.ILoad(i), hl.ILoad(k))))
				fac.SetI(prow, hl.ILoad(i))
			}, nil)
		})
		// Swap rows k and prow (full rows, LAPACK style) and the rhs.
		fac.If(hl.INe(hl.ILoad(prow), hl.ILoad(k)), func() {
			fac.For(j, hl.IConst(0), hl.IConst(int64(n)), func() {
				fac.Set(t, at(a, hl.ILoad(k), hl.ILoad(j)))
				stor(fac, a, hl.ILoad(k), hl.ILoad(j), at(a, hl.ILoad(prow), hl.ILoad(j)))
				stor(fac, a, hl.ILoad(prow), hl.ILoad(j), hl.Load(t))
			})
			fac.Set(t, hl.At(b, hl.ILoad(k)))
			fac.Store(b, hl.ILoad(k), hl.At(b, hl.ILoad(prow)))
			fac.Store(b, hl.ILoad(prow), hl.Load(t))
		}, nil)
		// Eliminate below the pivot.
		fac.For(i, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(int64(n)), func() {
			fac.Set(t, hl.Div(at(a, hl.ILoad(i), hl.ILoad(k)), at(a, hl.ILoad(k), hl.ILoad(k))))
			stor(fac, a, hl.ILoad(i), hl.ILoad(k), hl.Load(t))
			fac.For(j, hl.IAdd(hl.ILoad(k), hl.IConst(1)), hl.IConst(int64(n)), func() {
				stor(fac, a, hl.ILoad(i), hl.ILoad(j),
					hl.Sub(at(a, hl.ILoad(i), hl.ILoad(j)),
						hl.Mul(hl.Load(t), at(a, hl.ILoad(k), hl.ILoad(j)))))
			})
		})
	})
	fac.Ret()

	// lsolve: y = L^{-1} (P b), unit lower triangular.
	ls := p.Func("lsolve")
	ls.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		ls.Set(t, hl.At(b, hl.ILoad(i)))
		ls.For(j, hl.IConst(0), hl.ILoad(i), func() {
			ls.Set(t, hl.Sub(hl.Load(t), hl.Mul(at(a, hl.ILoad(i), hl.ILoad(j)), hl.At(y, hl.ILoad(j)))))
		})
		ls.Store(y, hl.ILoad(i), hl.Load(t))
	})
	ls.Ret()

	// usolve: x = U^{-1} y.
	us := p.Func("usolve")
	us.SetI(i, hl.IConst(int64(n-1)))
	us.While(hl.IGe(hl.ILoad(i), hl.IConst(0)), func() {
		us.Set(t, hl.At(y, hl.ILoad(i)))
		us.For(j, hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.IConst(int64(n)), func() {
			us.Set(t, hl.Sub(hl.Load(t), hl.Mul(at(a, hl.ILoad(i), hl.ILoad(j)), hl.At(x, hl.ILoad(j)))))
		})
		us.Store(x, hl.ILoad(i), hl.Div(hl.Load(t), at(a, hl.ILoad(i), hl.ILoad(i))))
		us.SetI(i, hl.ISub(hl.ILoad(i), hl.IConst(1)))
	})
	us.Ret()

	// residual: reported error metric err = max_i |x - xt|_i / max|xt| —
	// the forward-error the SuperLU driver reports (FERR).
	rs := p.Func("residual")
	rs.Set(errv, hl.Const(0))
	rs.Set(xnorm, hl.Const(0))
	rs.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		rs.Set(errv, hl.Max(hl.Load(errv), hl.Abs(hl.Sub(hl.At(x, hl.ILoad(i)), hl.At(xt, hl.ILoad(i))))))
		rs.Set(xnorm, hl.Max(hl.Load(xnorm), hl.Abs(hl.At(xt, hl.ILoad(i)))))
	})
	rs.Set(errv, hl.Div(hl.Load(errv), hl.Load(xnorm)))
	rs.Ret()

	main := p.Func("main")
	main.Call("init")
	main.Call("factor")
	main.Call("lsolve")
	main.Call("usolve")
	main.Call("residual")
	main.Out(hl.Load(errv))
	main.Out(hl.Load(xnorm))
	main.Halt()

	return p.Build("main")
}

// SuperLUSource exposes the solver builder at a chosen mode (the paper
// compares against the manually recompiled single-precision solver).
func SuperLUSource(class Class, mode hl.Mode) (*prog.Module, error) {
	return superluSource(class, mode)
}

func buildSuperLU(class Class) (*Bench, error) {
	m, err := superluSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	m32, err := superluSource(class, hl.ModeF32)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(800_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		if math.IsNaN(got[0]) || got[0] < 0 || got[0] > SuperLUDefaultThreshold {
			return false
		}
		return relErr(ref[1], got[1]) < 1e-2
	}
	return &Bench{
		Name:      "superlu",
		Class:     class,
		Module:    m,
		ModuleF32: m32,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-2,
	}, nil
}
