package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// LU: an SSOR relaxation solver in the NAS LU style — symmetric
// successive over-relaxation sweeps (a lower sweep in ascending cell
// order, an upper sweep in descending order) of a 5-point operator on a
// 2-D grid, iterated a fixed number of times with the residual norm as
// the verified quantity.

func luSize(class Class) (nx, ny, cap int) {
	switch class {
	case ClassA:
		return 32, 16, 220
	case ClassC:
		return 48, 24, 240
	default:
		return 16, 10, 200
	}
}

// luTol is the in-program convergence tolerance: reachable by the
// double-precision build, forever out of reach of single-precision
// sweeps — which is what makes the solver core resist replacement.
const luTol = 1e-12

func luSource(class Class, mode hl.Mode) (*prog.Module, error) {
	nx, ny, steps := luSize(class)
	ncell := nx * ny

	p := hl.New("lu."+string(class), mode)
	u := p.Array("u", ncell)
	f := p.Array("f", ncell)
	rsd := p.Scalar("rsd")
	t := p.Scalar("lut")
	iters := p.Int("iters")
	i := p.Int("i")
	j := p.Int("j")
	it := p.Int("it")
	k := p.Int("k")

	const omega = 1.2
	const diag = 4.3

	idx := func(ie, je hl.IExpr) hl.IExpr {
		return hl.IAdd(hl.IMul(je, hl.IConst(int64(nx))), ie)
	}
	nbrs := func(fb *hl.FuncBuilder) hl.Expr {
		return hl.Add(
			hl.Add(hl.At(u, idx(hl.ISub(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j))),
				hl.At(u, idx(hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j)))),
			hl.Add(hl.At(u, idx(hl.ILoad(i), hl.ISub(hl.ILoad(j), hl.IConst(1)))),
				hl.At(u, idx(hl.ILoad(i), hl.IAdd(hl.ILoad(j), hl.IConst(1))))))
	}

	init := p.Func("init")
	init.For(k, hl.IConst(0), hl.IConst(int64(ncell)), func() {
		init.Store(f, hl.ILoad(k),
			hl.Add(hl.Const(1), hl.Mul(hl.Const(0.25), hl.Sin(hl.Mul(hl.Const(0.23), hl.FromInt(hl.ILoad(k)))))))
		init.Store(u, hl.ILoad(k), hl.Const(0))
	})
	init.Ret()

	// setbv: boundary values from a smooth formula (NAS LU setbv).
	setbv := p.Func("setbv")
	setbv.For(i, hl.IConst(0), hl.IConst(int64(nx)), func() {
		setbv.Store(u, idx(hl.ILoad(i), hl.IConst(0)),
			hl.Mul(hl.Const(0.01), hl.Cos(hl.Mul(hl.Const(0.4), hl.FromInt(hl.ILoad(i))))))
		setbv.Store(u, idx(hl.ILoad(i), hl.IConst(int64(ny-1))),
			hl.Mul(hl.Const(0.01), hl.Sin(hl.Mul(hl.Const(0.3), hl.FromInt(hl.ILoad(i))))))
	})
	setbv.For(j, hl.IConst(0), hl.IConst(int64(ny)), func() {
		setbv.Store(u, idx(hl.IConst(0), hl.ILoad(j)),
			hl.Mul(hl.Const(0.01), hl.Exp(hl.Mul(hl.Const(-0.2), hl.FromInt(hl.ILoad(j))))))
		setbv.Store(u, idx(hl.IConst(int64(nx-1)), hl.ILoad(j)),
			hl.Mul(hl.Const(0.005), hl.FromInt(hl.ILoad(j))))
	})
	setbv.Ret()

	// setiv: interior initial guess interpolated from the boundaries
	// (NAS LU setiv).
	xi := p.Scalar("xi")
	eta := p.Scalar("eta")
	setiv := p.Func("setiv")
	setiv.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		setiv.For(i, hl.IConst(1), hl.IConst(int64(nx-1)), func() {
			setiv.Set(xi, hl.Div(hl.FromInt(hl.ILoad(i)), hl.Const(float64(nx-1))))
			setiv.Set(eta, hl.Div(hl.FromInt(hl.ILoad(j)), hl.Const(float64(ny-1))))
			left := hl.At(u, idx(hl.IConst(0), hl.ILoad(j)))
			right := hl.At(u, idx(hl.IConst(int64(nx-1)), hl.ILoad(j)))
			bot := hl.At(u, idx(hl.ILoad(i), hl.IConst(0)))
			top := hl.At(u, idx(hl.ILoad(i), hl.IConst(int64(ny-1))))
			horiz := hl.Add(hl.Mul(hl.Sub(hl.Const(1), hl.Load(xi)), left), hl.Mul(hl.Load(xi), right))
			vert := hl.Add(hl.Mul(hl.Sub(hl.Const(1), hl.Load(eta)), bot), hl.Mul(hl.Load(eta), top))
			setiv.Store(u, idx(hl.ILoad(i), hl.ILoad(j)),
				hl.Mul(hl.Const(0.5), hl.Add(horiz, vert)))
		})
	})
	setiv.Ret()

	// pintgr: a surface-integral diagnostic over the final field
	// (NAS LU pintgr), reported loosely.
	psum := p.Scalar("psum")
	pintgr := p.Func("pintgr")
	pintgr.Set(psum, hl.Const(0))
	pintgr.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		pintgr.For(i, hl.IConst(1), hl.IConst(int64(nx-1)), func() {
			corner := hl.Mul(hl.Const(0.25),
				hl.Add(hl.Add(hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))),
					hl.At(u, idx(hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.ILoad(j)))),
					hl.Add(hl.At(u, idx(hl.ILoad(i), hl.IAdd(hl.ILoad(j), hl.IConst(1)))),
						hl.At(u, idx(hl.IAdd(hl.ILoad(i), hl.IConst(1)), hl.IAdd(hl.ILoad(j), hl.IConst(1)))))))
			pintgr.Set(psum, hl.Add(hl.Load(psum), hl.Mul(corner, corner)))
		})
	})
	pintgr.Set(psum, hl.Sqrt(hl.Load(psum)))
	pintgr.Ret()

	// blts: lower sweep (ascending order), SSOR update.
	blts := p.Func("blts")
	blts.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		blts.For(i, hl.IConst(1), hl.IConst(int64(nx-1)), func() {
			blts.Set(t, hl.Div(
				hl.Sub(hl.Add(hl.At(f, idx(hl.ILoad(i), hl.ILoad(j))), nbrs(blts)),
					hl.Mul(hl.Const(diag), hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))))),
				hl.Const(diag)))
			blts.Store(u, idx(hl.ILoad(i), hl.ILoad(j)),
				hl.Add(hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))), hl.Mul(hl.Const(omega), hl.Load(t))))
		})
	})
	blts.Ret()

	// buts: upper sweep (descending order).
	buts := p.Func("buts")
	buts.SetI(j, hl.IConst(int64(ny-2)))
	buts.While(hl.IGe(hl.ILoad(j), hl.IConst(1)), func() {
		buts.SetI(i, hl.IConst(int64(nx-2)))
		buts.While(hl.IGe(hl.ILoad(i), hl.IConst(1)), func() {
			buts.Set(t, hl.Div(
				hl.Sub(hl.Add(hl.At(f, idx(hl.ILoad(i), hl.ILoad(j))), nbrs(buts)),
					hl.Mul(hl.Const(diag), hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))))),
				hl.Const(diag)))
			buts.Store(u, idx(hl.ILoad(i), hl.ILoad(j)),
				hl.Add(hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))), hl.Mul(hl.Const(omega), hl.Load(t))))
			buts.SetI(i, hl.ISub(hl.ILoad(i), hl.IConst(1)))
		})
		buts.SetI(j, hl.ISub(hl.ILoad(j), hl.IConst(1)))
	})
	buts.Ret()

	// l2norm: residual f + neighbors - diag*u over the interior.
	nrm := p.Func("l2norm")
	nrm.Set(rsd, hl.Const(0))
	nrm.For(j, hl.IConst(1), hl.IConst(int64(ny-1)), func() {
		nrm.For(i, hl.IConst(1), hl.IConst(int64(nx-1)), func() {
			nrm.Set(t, hl.Sub(hl.Add(hl.At(f, idx(hl.ILoad(i), hl.ILoad(j))), nbrs(nrm)),
				hl.Mul(hl.Const(diag), hl.At(u, idx(hl.ILoad(i), hl.ILoad(j))))))
			nrm.Set(rsd, hl.Add(hl.Load(rsd), hl.Mul(hl.Load(t), hl.Load(t))))
		})
	})
	nrm.Set(rsd, hl.Sqrt(hl.Load(rsd)))
	nrm.Ret()

	// ssor: iterate sweeps until the residual converges below luTol or
	// the iteration cap is reached (NAS LU's timestep loop shape).
	main := p.Func("main")
	main.Call("init")
	main.Call("setbv")
	main.Call("setiv")
	main.Set(rsd, hl.Const(1))
	main.For(it, hl.IConst(0), hl.IConst(int64(steps)), func() {
		main.If(hl.Gt(hl.Load(rsd), hl.Const(luTol)), func() {
			main.Call("blts")
			main.Call("buts")
			main.Call("l2norm")
			main.SetI(iters, hl.IAdd(hl.ILoad(iters), hl.IConst(1)))
		}, nil)
	})
	main.Call("pintgr")
	main.Out(hl.Load(rsd))
	main.Out(hl.At(u, idx(hl.IConst(int64(nx/2)), hl.IConst(int64(ny/2)))))
	main.Out(hl.Load(psum))
	main.OutInt(hl.ILoad(iters))
	main.Halt()

	return p.Build("main")
}

func buildLU(class Class) (*Bench, error) {
	m, err := luSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(800_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	if ref[0] > luTol {
		return nil, errNotConverged("lu", string(class), ref[0])
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		// The solver must have converged below the in-program tolerance;
		// the sampled solution value is only loosely checked.
		if math.IsNaN(got[0]) || got[0] < 0 || got[0] > luTol {
			return false
		}
		return relErr(ref[1], got[1]) < 1e-4 && relErr(ref[2], got[2]) < 1e-4
	}
	return &Bench{
		Name:      "lu",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-4,
	}, nil
}
