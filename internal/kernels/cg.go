package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/mm"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// CG: conjugate gradient on a random sparse symmetric positive-definite
// matrix (the NAS CG shape). The solver must converge the residual below
// a tight threshold, which single-precision inner products and matrix-
// vector products cannot reach — so the hot loop resists replacement
// while the one-shot setup code (right-hand side generation, matrix
// scaling) tolerates it, reproducing the paper's high-static /
// low-dynamic CG profile (Figure 10).

func cgSize(class Class) (n, nnzPerRow, iters int) {
	switch class {
	case ClassA:
		return 160, 8, 30
	case ClassC:
		return 384, 10, 35
	default:
		return 64, 6, 25
	}
}

// cgThreshold is the convergence bound the verification demands of the
// relative residual.
const cgThreshold = 1e-10

func cgSource(class Class, mode hl.Mode) (*prog.Module, error) {
	n, nnzPerRow, iters := cgSize(class)
	A := mm.RandomSPD(n, nnzPerRow, 0xC6+uint64(len(class)))

	p := hl.New("cg."+string(class), mode)

	rowptr64 := make([]int64, len(A.RowPtr))
	for i, v := range A.RowPtr {
		rowptr64[i] = int64(v)
	}
	col64 := make([]int64, len(A.Col))
	for i, v := range A.Col {
		col64[i] = int64(v)
	}
	rowptr := p.IntArrayInit("rowptr", rowptr64)
	col := p.IntArrayInit("col", col64)
	vals := p.ArrayInit("vals", A.Val)

	x := p.Array("x", n)
	b := p.Array("b", n)
	r := p.Array("r", n)
	pv := p.Array("p", n)
	q := p.Array("q", n)

	rho := p.Scalar("rho")
	rho0 := p.Scalar("rho0")
	alpha := p.Scalar("alpha")
	beta := p.Scalar("beta")
	dpq := p.Scalar("dpq")
	resid := p.Scalar("resid")
	bnorm := p.Scalar("bnorm")
	xb := p.Scalar("xb")

	i := p.Int("i")
	k := p.Int("k")
	it := p.Int("it")

	// init_b: one-shot right-hand side generation. Errors here only
	// perturb the problem being solved; the double-precision solver still
	// converges on the perturbed problem, so this region is single-safe.
	initB := p.Func("init_b")
	initB.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		initB.Store(b, hl.ILoad(i),
			hl.Add(hl.Const(1), hl.Mul(hl.Const(0.5), hl.Sin(hl.FromInt(hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
	})
	initB.Ret()

	// scale_a: one-shot symmetric-preserving global scaling of the matrix
	// values — the makea-style setup region.
	scaleA := p.Func("scale_a")
	scaleA.For(k, hl.IConst(0), hl.IConst(int64(A.NNZ())), func() {
		scaleA.Store(vals, hl.ILoad(k), hl.Mul(hl.At(vals, hl.ILoad(k)), hl.Const(0.9921875)))
	})
	scaleA.Ret()

	// matvec: q = A p (CSR row loop).
	mv := p.Func("matvec")
	t := p.Scalar("mvt")
	mv.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		mv.Set(t, hl.Const(0))
		mv.For(k, hl.IAt(rowptr, hl.ILoad(i)), hl.IAt(rowptr, hl.IAdd(hl.ILoad(i), hl.IConst(1))), func() {
			mv.Set(t, hl.Add(hl.Load(t),
				hl.Mul(hl.At(vals, hl.ILoad(k)), hl.At(pv, hl.IAt(col, hl.ILoad(k))))))
		})
		mv.Store(q, hl.ILoad(i), hl.Load(t))
	})
	mv.Ret()

	// conj_grad: the CG iteration.
	cgf := p.Func("conj_grad")
	// r = b; p = b; rho = r.r ; x = 0
	cgf.Set(rho, hl.Const(0))
	cgf.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		cgf.Store(x, hl.ILoad(i), hl.Const(0))
		cgf.Store(r, hl.ILoad(i), hl.At(b, hl.ILoad(i)))
		cgf.Store(pv, hl.ILoad(i), hl.At(b, hl.ILoad(i)))
		cgf.Set(rho, hl.Add(hl.Load(rho), hl.Mul(hl.At(b, hl.ILoad(i)), hl.At(b, hl.ILoad(i)))))
	})
	cgf.For(it, hl.IConst(0), hl.IConst(int64(iters)), func() {
		cgf.Call("matvec")
		// dpq = p.q
		cgf.Set(dpq, hl.Const(0))
		cgf.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			cgf.Set(dpq, hl.Add(hl.Load(dpq), hl.Mul(hl.At(pv, hl.ILoad(i)), hl.At(q, hl.ILoad(i)))))
		})
		cgf.Set(alpha, hl.Div(hl.Load(rho), hl.Load(dpq)))
		cgf.Set(rho0, hl.Load(rho))
		cgf.Set(rho, hl.Const(0))
		cgf.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			cgf.Store(x, hl.ILoad(i), hl.Add(hl.At(x, hl.ILoad(i)), hl.Mul(hl.Load(alpha), hl.At(pv, hl.ILoad(i)))))
			cgf.Store(r, hl.ILoad(i), hl.Sub(hl.At(r, hl.ILoad(i)), hl.Mul(hl.Load(alpha), hl.At(q, hl.ILoad(i)))))
			cgf.Set(rho, hl.Add(hl.Load(rho), hl.Mul(hl.At(r, hl.ILoad(i)), hl.At(r, hl.ILoad(i)))))
		})
		cgf.Set(beta, hl.Div(hl.Load(rho), hl.Load(rho0)))
		cgf.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			cgf.Store(pv, hl.ILoad(i), hl.Add(hl.At(r, hl.ILoad(i)), hl.Mul(hl.Load(beta), hl.At(pv, hl.ILoad(i)))))
		})
	})
	cgf.Ret()

	// residual: resid = ||b - A x|| / ||b||, computed against the
	// program's own (possibly perturbed) b.
	res := p.Func("residual")
	res.Set(resid, hl.Const(0))
	res.Set(bnorm, hl.Const(0))
	// reuse p as scratch: p = x for matvec, then q = A x.
	res.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		res.Store(pv, hl.ILoad(i), hl.At(x, hl.ILoad(i)))
	})
	res.Call("matvec")
	res.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		res.Set(t, hl.Sub(hl.At(b, hl.ILoad(i)), hl.At(q, hl.ILoad(i))))
		res.Set(resid, hl.Add(hl.Load(resid), hl.Mul(hl.Load(t), hl.Load(t))))
		res.Set(bnorm, hl.Add(hl.Load(bnorm), hl.Mul(hl.At(b, hl.ILoad(i)), hl.At(b, hl.ILoad(i)))))
	})
	res.Set(resid, hl.Div(hl.Sqrt(hl.Load(resid)), hl.Sqrt(hl.Load(bnorm))))
	res.Ret()

	// report: cold diagnostic x.b (verified loosely).
	rep := p.Func("report")
	rep.Set(xb, hl.Const(0))
	rep.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		rep.Set(xb, hl.Add(hl.Load(xb), hl.Mul(hl.At(x, hl.ILoad(i)), hl.At(b, hl.ILoad(i)))))
	})
	rep.Ret()

	main := p.Func("main")
	main.Call("init_b")
	main.Call("scale_a")
	main.Call("conj_grad")
	main.Call("residual")
	main.Call("report")
	main.Out(hl.Load(resid))
	main.Out(hl.Load(xb))
	main.Halt()

	return p.Build("main")
}

func buildCG(class Class) (*Bench, error) {
	m, err := cgSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(600_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	if ref[0] > cgThreshold/4 {
		// The double build must converge comfortably below the bound.
		return nil, errNotConverged("cg", string(class), ref[0])
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		if math.IsNaN(got[0]) || got[0] < 0 || got[0] > cgThreshold {
			return false
		}
		return relErr(ref[1], got[1]) < 1e-3
	}
	return &Bench{
		Name:      "cg",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-3,
	}, nil
}

type convergenceError struct {
	bench, class string
	resid        float64
}

func (e *convergenceError) Error() string {
	return "kernels: " + e.bench + "." + e.class + " baseline did not converge"
}

func errNotConverged(bench, class string, resid float64) error {
	return &convergenceError{bench, class, resid}
}

// CGSource exposes the CG builder for tests and examples.
func CGSource(class Class, mode hl.Mode) (*prog.Module, error) { return cgSource(class, mode) }
