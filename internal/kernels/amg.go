package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// AMG: the algebraic-multigrid microkernel of §3.2 — the critical
// sections of a multigrid solver iterated far past convergence (the
// paper runs 5,000 iterations). The method is self-correcting: each
// cycle contracts the error regardless of small rounding perturbations,
// so the *entire* kernel tolerates single precision under its loose
// convergence-style verification — the paper's end-to-end conversion
// case with a ~2X speedup from the manual single-precision rebuild.

func amgSize(class Class) (n, cycles int) {
	switch class {
	case ClassA:
		return 128, 60
	case ClassC:
		return 256, 80
	default:
		return 64, 40
	}
}

// amgThreshold is the verified convergence bound (loose: the kernel's
// verification accepts single precision end to end, §3.2).
const amgThreshold = 1e-3

func amgSource(class Class, mode hl.Mode) (*prog.Module, error) {
	n, cycles := amgSize(class)
	return vcycleSource(vcycleParams{
		name:         "amg." + string(class),
		n:            n,
		cycles:       cycles,
		preSweeps:    1,
		coarseSweeps: 20,
		mixedRHS:     false,
	}, mode)
}

// AMGSource exposes the AMG builder at a chosen mode (the §3.2 manual
// conversion experiment compiles the same source at ModeF32).
func AMGSource(class Class, mode hl.Mode) (*prog.Module, error) { return amgSource(class, mode) }

func buildAMG(class Class) (*Bench, error) {
	m, err := amgSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	m32, err := amgSource(class, hl.ModeF32)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(800_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	if ref[0] > amgThreshold/10 {
		return nil, errNotConverged("amg", string(class), ref[0])
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != 1 || math.IsNaN(got[0]) || got[0] < 0 {
			return false
		}
		return got[0] <= amgThreshold
	}
	return &Bench{
		Name:      "amg",
		Class:     class,
		Module:    m,
		ModuleF32: m32,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-3,
	}, nil
}
