package kernels

import (
	"math"

	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// FT: a complex 1-D FFT kernel in the NAS FT style — initialize a complex
// field, then alternate phase-evolution steps with radix-2 forward
// transforms, and report strided checksums. The checksum is verified
// tightly, so the transform's butterflies (the overwhelming majority of
// dynamic floating-point work) resist replacement; the cold accounting
// code does not — the paper's extreme "high static, ~0% dynamic" FT
// profile (Figure 10).

func ftSize(class Class) (n, iters int) {
	switch class {
	case ClassA:
		return 256, 3
	case ClassC:
		return 512, 4
	default:
		return 64, 2
	}
}

func ftSource(class Class, mode hl.Mode) (*prog.Module, error) {
	n, iters := ftSize(class)
	logn := 0
	for 1<<logn < n {
		logn++
	}

	p := hl.New("ft."+string(class), mode)
	re := p.Array("re", n)
	im := p.Array("im", n)
	ckre := p.Scalar("ckre")
	ckim := p.Scalar("ckim")
	sumsq := p.Scalar("sumsq")

	wre := p.Scalar("wre")
	wim := p.Scalar("wim")
	tr := p.Scalar("tr")
	ti := p.Scalar("ti")
	ang := p.Scalar("ang")

	i := p.Int("i")
	j := p.Int("j")
	k := p.Int("k")
	s := p.Int("s")
	mS := p.Int("m")
	mh := p.Int("mh")
	tmp := p.Int("tmp")
	rj := p.Int("rj")
	b := p.Int("b")
	i1 := p.Int("i1")
	i2 := p.Int("i2")
	iter := p.Int("iter")

	// init: deterministic pseudo-random complex field.
	init := p.Func("init")
	init.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		init.Store(re, hl.ILoad(i),
			hl.Add(hl.Const(0.5), hl.Mul(hl.Const(0.5), hl.Sin(hl.FromInt(hl.IAdd(hl.ILoad(i), hl.IConst(1)))))))
		init.Store(im, hl.ILoad(i),
			hl.Mul(hl.Const(0.3), hl.Cos(hl.FromInt(hl.IMul(hl.ILoad(i), hl.IConst(3)))))) //nolint
	})
	init.Ret()

	// evolve: multiply each element by a phase factor exp(i * 0.001 * k).
	evolve := p.Func("evolve")
	evolve.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		evolve.Set(ang, hl.Mul(hl.Const(0.001), hl.FromInt(hl.ILoad(i))))
		evolve.Set(wre, hl.Cos(hl.Load(ang)))
		evolve.Set(wim, hl.Sin(hl.Load(ang)))
		evolve.Set(tr, hl.Sub(hl.Mul(hl.Load(wre), hl.At(re, hl.ILoad(i))),
			hl.Mul(hl.Load(wim), hl.At(im, hl.ILoad(i)))))
		evolve.Set(ti, hl.Add(hl.Mul(hl.Load(wre), hl.At(im, hl.ILoad(i))),
			hl.Mul(hl.Load(wim), hl.At(re, hl.ILoad(i)))))
		evolve.Store(re, hl.ILoad(i), hl.Load(tr))
		evolve.Store(im, hl.ILoad(i), hl.Load(ti))
	})
	evolve.Ret()

	// bitrev: permutation (pure integer work plus swaps).
	bitrev := p.Func("bitrev")
	bitrev.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		bitrev.SetI(rj, hl.IConst(0))
		bitrev.SetI(tmp, hl.ILoad(i))
		bitrev.For(b, hl.IConst(0), hl.IConst(int64(logn)), func() {
			bitrev.SetI(rj, hl.IAdd(hl.IShl(hl.ILoad(rj), 1), hl.IAnd(hl.ILoad(tmp), hl.IConst(1))))
			bitrev.SetI(tmp, hl.IShr(hl.ILoad(tmp), 1))
		})
		bitrev.If(hl.IGt(hl.ILoad(rj), hl.ILoad(i)), func() {
			bitrev.Set(tr, hl.At(re, hl.ILoad(i)))
			bitrev.Store(re, hl.ILoad(i), hl.At(re, hl.ILoad(rj)))
			bitrev.Store(re, hl.ILoad(rj), hl.Load(tr))
			bitrev.Set(ti, hl.At(im, hl.ILoad(i)))
			bitrev.Store(im, hl.ILoad(i), hl.At(im, hl.ILoad(rj)))
			bitrev.Store(im, hl.ILoad(rj), hl.Load(ti))
		}, nil)
	})
	bitrev.Ret()

	// fft: iterative radix-2 Cooley-Tukey with inline twiddles.
	fft := p.Func("fft")
	fft.Call("bitrev")
	fft.SetI(mS, hl.IConst(2))
	fft.SetI(mh, hl.IConst(1))
	fft.For(s, hl.IConst(0), hl.IConst(int64(logn)), func() {
		fft.SetI(k, hl.IConst(0))
		fft.While(hl.ILt(hl.ILoad(k), hl.IConst(int64(n))), func() {
			fft.For(j, hl.IConst(0), hl.ILoad(mh), func() {
				fft.Set(ang, hl.Div(hl.Mul(hl.Const(-2*math.Pi), hl.FromInt(hl.ILoad(j))),
					hl.FromInt(hl.ILoad(mS))))
				fft.Set(wre, hl.Cos(hl.Load(ang)))
				fft.Set(wim, hl.Sin(hl.Load(ang)))
				fft.SetI(i1, hl.IAdd(hl.ILoad(k), hl.ILoad(j)))
				fft.SetI(i2, hl.IAdd(hl.ILoad(i1), hl.ILoad(mh)))
				fft.Set(tr, hl.Sub(hl.Mul(hl.Load(wre), hl.At(re, hl.ILoad(i2))),
					hl.Mul(hl.Load(wim), hl.At(im, hl.ILoad(i2)))))
				fft.Set(ti, hl.Add(hl.Mul(hl.Load(wre), hl.At(im, hl.ILoad(i2))),
					hl.Mul(hl.Load(wim), hl.At(re, hl.ILoad(i2)))))
				fft.Store(re, hl.ILoad(i2), hl.Sub(hl.At(re, hl.ILoad(i1)), hl.Load(tr)))
				fft.Store(im, hl.ILoad(i2), hl.Sub(hl.At(im, hl.ILoad(i1)), hl.Load(ti)))
				fft.Store(re, hl.ILoad(i1), hl.Add(hl.At(re, hl.ILoad(i1)), hl.Load(tr)))
				fft.Store(im, hl.ILoad(i1), hl.Add(hl.At(im, hl.ILoad(i1)), hl.Load(ti)))
			})
			fft.SetI(k, hl.IAdd(hl.ILoad(k), hl.ILoad(mS)))
		})
		fft.SetI(mh, hl.ILoad(mS))
		fft.SetI(mS, hl.IMul(hl.ILoad(mS), hl.IConst(2)))
	})
	fft.Ret()

	// checksum: strided sums of the transformed field.
	cks := p.Func("checksum")
	cks.Set(ckre, hl.Const(0))
	cks.Set(ckim, hl.Const(0))
	cks.SetI(j, hl.IConst(0))
	cks.While(hl.ILt(hl.ILoad(j), hl.IConst(int64(n))), func() {
		cks.Set(ckre, hl.Add(hl.Load(ckre), hl.At(re, hl.ILoad(j))))
		cks.Set(ckim, hl.Add(hl.Load(ckim), hl.At(im, hl.ILoad(j))))
		cks.SetI(j, hl.IAdd(hl.ILoad(j), hl.IConst(3)))
	})
	cks.Ret()

	// accounting: cold per-run statistics that feed reporting, not the
	// verified checksum (mflops-style bookkeeping).
	acct := p.Func("accounting")
	acct.Set(sumsq, hl.Const(0))
	acct.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		acct.Set(sumsq, hl.Add(hl.Load(sumsq),
			hl.Add(hl.Mul(hl.At(re, hl.ILoad(i)), hl.At(re, hl.ILoad(i))),
				hl.Mul(hl.At(im, hl.ILoad(i)), hl.At(im, hl.ILoad(i))))))
	})
	acct.Ret()

	// timers: one-shot mflops-style accounting over the run parameters —
	// executed once, never verified (NAS print_results bookkeeping).
	mflops := p.Scalar("mflops")
	tim := p.Func("timers")
	tim.Set(mflops, hl.FromInt(hl.IConst(int64(n))))
	tim.Set(mflops, hl.Mul(hl.Load(mflops), hl.Log(hl.FromInt(hl.IConst(int64(n))))))
	tim.Set(mflops, hl.Mul(hl.Load(mflops), hl.Const(5.0*float64(iters))))
	tim.Set(mflops, hl.Div(hl.Load(mflops), hl.Add(hl.Load(sumsq), hl.Const(1))))
	tim.Ret()

	// checkerr: an error-analysis path that only runs if the checksum
	// degenerates (never, on healthy inputs) — statically present,
	// dynamically dead, like the NAS codes' failure reporting.
	errstat := p.Scalar("errstat")
	ce := p.Func("checkerr")
	ce.If(hl.Lt(hl.Abs(hl.Load(ckre)), hl.Const(1e-30)), func() {
		ce.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
			ce.Set(errstat, hl.Add(hl.Load(errstat),
				hl.Sqrt(hl.Add(hl.Mul(hl.At(re, hl.ILoad(i)), hl.At(re, hl.ILoad(i))),
					hl.Mul(hl.At(im, hl.ILoad(i)), hl.At(im, hl.ILoad(i)))))))
		})
		ce.Set(errstat, hl.Div(hl.Load(errstat), hl.FromInt(hl.IConst(int64(n)))))
		ce.Set(errstat, hl.Add(hl.Mul(hl.Load(errstat), hl.Const(0.5)),
			hl.Exp(hl.Mul(hl.Load(errstat), hl.Const(-1)))))
		ce.Set(errstat, hl.Max(hl.Load(errstat), hl.Abs(hl.Sub(hl.Load(ckre), hl.Load(ckim)))))
		ce.Set(errstat, hl.Min(hl.Load(errstat), hl.Const(1e6)))
	}, nil)
	ce.Ret()

	main := p.Func("main")
	main.Call("init")
	main.For(iter, hl.IConst(0), hl.IConst(int64(iters)), func() {
		main.Call("evolve")
		main.Call("fft")
	})
	main.Call("checksum")
	main.Call("accounting")
	main.Call("timers")
	main.Call("checkerr")
	main.Out(hl.Load(ckre))
	main.Out(hl.Load(ckim))
	main.Out(hl.Load(sumsq))
	main.Halt()

	return p.Build("main")
}

func buildFT(class Class) (*Bench, error) {
	m, err := ftSource(class, hl.ModeF64)
	if err != nil {
		return nil, err
	}
	maxSteps := uint64(600_000_000)
	ref, _, err := reference(m, maxSteps)
	if err != nil {
		return nil, err
	}
	v := func(out []vm.OutVal) bool {
		got := verify.Decode(out)
		if len(got) != len(ref) {
			return false
		}
		// Checksums verified tightly (NAS-style 1e-10); the accounting
		// value only loosely.
		if relErr(ref[0], got[0]) > 1e-10 || relErr(ref[1], got[1]) > 1e-10 {
			return false
		}
		return relErr(ref[2], got[2]) < 1e-2
	}
	return &Bench{
		Name:      "ft",
		Class:     class,
		Module:    m,
		Verify:    v,
		MaxSteps:  maxSteps,
		Reference: ref,
		SensTol:   1e-2,
	}, nil
}
