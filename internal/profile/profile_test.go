package profile

import "testing"

func TestMergeTotalWeight(t *testing.T) {
	p := P{0x10: 5, 0x20: 3}
	p.Merge(map[uint64]uint64{0x20: 2, 0x30: 7})
	if p[0x20] != 5 || p[0x30] != 7 {
		t.Errorf("merge: %v", p)
	}
	if p.Total() != 17 {
		t.Errorf("total = %d", p.Total())
	}
	if w := p.Weight([]uint64{0x10, 0x30, 0x99}); w != 12 {
		t.Errorf("weight = %d", w)
	}
}

func TestTopN(t *testing.T) {
	p := P{1: 10, 2: 30, 3: 20, 4: 30}
	top := p.TopN(3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// Ties broken by address: 2 before 4.
	if top[0].Addr != 2 || top[1].Addr != 4 || top[2].Addr != 3 {
		t.Errorf("order: %+v", top)
	}
	if got := p.TopN(100); len(got) != 4 {
		t.Errorf("TopN over-cap = %d", len(got))
	}
}
