package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCountsRoundTrip(t *testing.T) {
	p := P{0x1040: 512, 0x1048: 1, 0x2000: 99999}
	var buf bytes.Buffer
	if err := WriteCounts(&buf, "ep.W", p); err != nil {
		t.Fatal(err)
	}
	name, back, err := ReadCounts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "ep.W" {
		t.Errorf("name = %q", name)
	}
	if !reflect.DeepEqual(map[uint64]uint64(back), map[uint64]uint64(p)) {
		t.Errorf("round trip: %v != %v", back, p)
	}
}

func TestCountsWriteIsSorted(t *testing.T) {
	p := P{0x3000: 1, 0x1000: 2, 0x2000: 3}
	var buf bytes.Buffer
	if err := WriteCounts(&buf, "x", p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"fpmix-profile v1 counts x", "0x00001000 2", "0x00002000 3", "0x00003000 1"}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("lines = %q, want %q", lines, want)
	}
}

func TestHeaderValidation(t *testing.T) {
	for _, bad := range []string{
		"",
		"fpmix-profile v1 counts",
		"fpmix-profile v2 counts x",
		"other v1 counts x",
		"fpmix-profile v1 shadow x",
	} {
		if _, _, err := ReadCounts(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("header %q accepted", bad)
		}
	}
	if err := WriteHeader(&bytes.Buffer{}, "counts", "has space"); err == nil {
		t.Error("whitespace name accepted")
	}
}

func TestBodySkipsCommentsAndBlanks(t *testing.T) {
	in := "fpmix-profile v1 counts x\n\n# comment\n0x10 5\n"
	name, p, err := ReadCounts(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" || p[0x10] != 5 || len(p) != 1 {
		t.Errorf("got name=%q p=%v", name, p)
	}
}
