package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Versioned text container shared by every persisted profile kind. The
// first line identifies the file:
//
//	fpmix-profile v1 <kind> <name>
//
// followed by kind-specific body lines; blank lines and '#' comments are
// ignored. The execution-count profile is kind "counts" (one
// "<addr> <count>" pair per line); the shadow sensitivity profile
// (internal/shadow) is kind "shadow" in the same container.

// Magic is the container's leading token.
const Magic = "fpmix-profile"

// Version is the current container version.
const Version = 1

// WriteHeader writes the container header line for a profile kind.
func WriteHeader(w io.Writer, kind, name string) error {
	if strings.ContainsAny(name, " \t\n") {
		return fmt.Errorf("profile: name %q contains whitespace", name)
	}
	_, err := fmt.Fprintf(w, "%s v%d %s %s\n", Magic, Version, kind, name)
	return err
}

// ParseHeader validates a container header line against the expected
// kind and returns the profile name.
func ParseHeader(line, wantKind string) (string, error) {
	f := strings.Fields(line)
	if len(f) != 4 || f[0] != Magic {
		return "", fmt.Errorf("profile: not a %s file: %q", Magic, line)
	}
	if f[1] != fmt.Sprintf("v%d", Version) {
		return "", fmt.Errorf("profile: unsupported version %q", f[1])
	}
	if f[2] != wantKind {
		return "", fmt.Errorf("profile: kind %q, want %q", f[2], wantKind)
	}
	return f[3], nil
}

// Body scans r past the header (validated against wantKind), invoking
// line for each non-blank, non-comment body line.
func Body(r io.Reader, wantKind string, line func(string) error) (name string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return "", fmt.Errorf("profile: empty input")
	}
	name, err = ParseHeader(sc.Text(), wantKind)
	if err != nil {
		return "", err
	}
	for sc.Scan() {
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		if err := line(t); err != nil {
			return name, err
		}
	}
	return name, sc.Err()
}

// WriteCounts persists an execution-count profile (kind "counts"),
// address-sorted for stable diffs.
func WriteCounts(w io.Writer, name string, p P) error {
	if err := WriteHeader(w, "counts", name); err != nil {
		return err
	}
	addrs := make([]uint64, 0, len(p))
	for a := range p {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if _, err := fmt.Fprintf(w, "%#08x %d\n", a, p[a]); err != nil {
			return err
		}
	}
	return nil
}

// ReadCounts parses a kind "counts" profile.
func ReadCounts(r io.Reader) (string, P, error) {
	p := make(P)
	name, err := Body(r, "counts", func(t string) error {
		f := strings.Fields(t)
		if len(f) != 2 {
			return fmt.Errorf("profile: bad counts line %q", t)
		}
		addr, err := strconv.ParseUint(f[0], 0, 64)
		if err != nil {
			return fmt.Errorf("profile: bad address %q: %v", f[0], err)
		}
		n, err := strconv.ParseUint(f[1], 0, 64)
		if err != nil {
			return fmt.Errorf("profile: bad count %q: %v", f[1], err)
		}
		p[addr] = n
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	return name, p, nil
}
