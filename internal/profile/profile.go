// Package profile manipulates execution profiles: per-instruction-address
// execution counts collected by the VM. The search's prioritization
// optimization (paper §2.2) and the dynamic replacement percentages of
// Figure 10 are both computed from these.
package profile

import "sort"

// P maps instruction addresses to execution counts.
type P map[uint64]uint64

// Merge accumulates other into p.
func (p P) Merge(other map[uint64]uint64) {
	for a, n := range other {
		p[a] += n
	}
}

// Total returns the sum of all counts.
func (p P) Total() uint64 {
	var t uint64
	for _, n := range p {
		t += n
	}
	return t
}

// Weight returns the total count over the given addresses.
func (p P) Weight(addrs []uint64) uint64 {
	var t uint64
	for _, a := range addrs {
		t += p[a]
	}
	return t
}

// Entry is one (address, count) pair.
type Entry struct {
	Addr  uint64
	Count uint64
}

// TopN returns the n hottest addresses, descending by count (ties broken
// by address for determinism).
func (p P) TopN(n int) []Entry {
	es := make([]Entry, 0, len(p))
	for a, c := range p {
		es = append(es, Entry{a, c})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Addr < es[j].Addr
	})
	if n < len(es) {
		es = es[:n]
	}
	return es
}
