package report

import (
	"strings"
	"testing"

	"fpmix/internal/experiments"
)

func TestFig8Format(t *testing.T) {
	var sb strings.Builder
	Fig8(&sb, []experiments.Fig8Row{
		{Bench: "ep", Ranks: experiments.Fig8Ranks, Overhead: []float64{3.5, 3.4, 3.3, 3.2}},
	})
	out := sb.String()
	for _, want := range []string{"Figure 8", "ep", "3.5X", "3.2X"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig10Format(t *testing.T) {
	var sb strings.Builder
	Fig10(&sb, []experiments.Fig10Row{
		{Bench: "bt", Class: "W", Candidates: 221, Tested: 119,
			StaticPct: 95.5, DynamicPct: 93.4, FinalPass: false},
		{Bench: "cg", Class: "W", Candidates: 31, Tested: 23,
			StaticPct: 80.6, DynamicPct: 27.4, FinalPass: true},
	})
	out := sb.String()
	for _, want := range []string{"bt.W", "fail", "cg.W", "pass", "95.5%", "27.4%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig11Format(t *testing.T) {
	var sb strings.Builder
	Fig11(&sb, []experiments.Fig11Row{
		{Threshold: 1e-3, StaticPct: 94.4, DynamicPct: 58.3, FinalError: 8.9e-7, FinalPass: true},
	})
	out := sb.String()
	for _, want := range []string{"1.0e-03", "94.4%", "pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAMGAndBitExactFormat(t *testing.T) {
	var sb strings.Builder
	AMG(&sb, &experiments.AMGResult{
		AllSinglePass: true, AnalysisOverhead: 3.6, ManualSpeedup: 1.55,
		SearchStaticPct: 100, SearchFinalPass: true,
	})
	if !strings.Contains(sb.String(), "1.55X") || !strings.Contains(sb.String(), "100.0%") {
		t.Errorf("AMG format:\n%s", sb.String())
	}
	sb.Reset()
	BitExact(&sb, []experiments.BitExactRow{
		{Bench: "amg", Class: "W", Outputs: 1, Match: true},
		{Bench: "superlu", Class: "W", Outputs: 2, Match: false},
	})
	if !strings.Contains(sb.String(), "identical") || !strings.Contains(sb.String(), "MISMATCH") {
		t.Errorf("BitExact format:\n%s", sb.String())
	}
	sb.Reset()
	Rule(&sb)
	if len(strings.TrimSpace(sb.String())) == 0 {
		t.Error("empty rule")
	}
}
