// Package report renders experiment results as the text tables the paper
// presents.
package report

import (
	"fmt"
	"io"
	"strings"

	"fpmix/internal/experiments"
)

// Fig8 renders the MPI scaling series.
func Fig8(w io.Writer, rows []experiments.Fig8Row) {
	fmt.Fprintln(w, "Figure 8: NAS MPI scaling — all-double instrumentation overhead (X) vs ranks")
	fmt.Fprintf(w, "%-8s", "bench")
	for _, r := range experiments.Fig8Ranks {
		fmt.Fprintf(w, "%8d", r)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-8s", row.Bench)
		for _, ov := range row.Overhead {
			fmt.Fprintf(w, "%7.1fX", ov)
		}
		fmt.Fprintln(w)
	}
}

// Fig9 renders the per-class overhead table.
func Fig9(w io.Writer, rows []experiments.Fig9Row) {
	fmt.Fprintln(w, "Figure 9: benchmark overhead (8 ranks, all-double snippets)")
	fmt.Fprintf(w, "%-12s %s\n", "Benchmark", "Overhead")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %7.1fX\n", row.Bench+"."+string(row.Class), row.Overhead)
	}
}

// Fig10 renders the search-results table.
func Fig10(w io.Writer, rows []experiments.Fig10Row) {
	fmt.Fprintln(w, "Figure 10: NAS benchmark search results")
	fmt.Fprintf(w, "%-10s %10s %10s %9s %9s %8s\n",
		"Benchmark", "Candidates", "Tested", "Static", "Dynamic", "Final")
	for _, row := range rows {
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %10d %10d %8.1f%% %8.1f%% %8s\n",
			row.Bench+"."+string(row.Class), row.Candidates, row.Tested,
			row.StaticPct, row.DynamicPct, verdict)
	}
}

// Fig11 renders the SuperLU threshold sweep.
func Fig11(w io.Writer, rows []experiments.Fig11Row) {
	fmt.Fprintln(w, "Figure 11: SuperLU-style solver threshold sweep (memplus-like matrix)")
	fmt.Fprintf(w, "%-10s %9s %9s %12s %6s\n", "Threshold", "Static", "Dynamic", "Final Error", "Final")
	for _, row := range rows {
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10.1e %8.1f%% %8.1f%% %12.2e %6s\n",
			row.Threshold, row.StaticPct, row.DynamicPct, row.FinalError, verdict)
	}
}

// AMG renders the §3.2 experiment.
func AMG(w io.Writer, r *experiments.AMGResult) {
	fmt.Fprintln(w, "AMG microkernel (paper §3.2)")
	fmt.Fprintf(w, "  whole kernel verified in single precision: %v\n", r.AllSinglePass)
	fmt.Fprintf(w, "  search static replacement:                 %.1f%% (final pass: %v)\n",
		r.SearchStaticPct, r.SearchFinalPass)
	fmt.Fprintf(w, "  analysis overhead (all-single snippets):   %.2fX\n", r.AnalysisOverhead)
	fmt.Fprintf(w, "  manual conversion speedup:                 %.2fX\n", r.ManualSpeedup)
}

// BitExact renders the §3.1 equivalence check.
func BitExact(w io.Writer, rows []experiments.BitExactRow) {
	fmt.Fprintln(w, "§3.1 bit-for-bit: instrumented all-single vs manual conversion")
	for _, row := range rows {
		status := "MISMATCH"
		if row.Match {
			status = "identical"
		}
		fmt.Fprintf(w, "  %-12s %3d outputs  %s\n", row.Bench+"."+string(row.Class), row.Outputs, status)
	}
}

// Sens renders the sensitivity-guided search ablation.
func Sens(w io.Writer, rows []experiments.SensRow) {
	fmt.Fprintln(w, "Sensitivity-guided search ablation (-nosens baseline vs shadow-guided)")
	fmt.Fprintf(w, "%-10s %12s %12s %10s %10s %6s %6s\n",
		"Benchmark", "Tested-base", "Tested-sens", "Predicted", "MaxErr", "Same", "Final")
	for _, row := range rows {
		same := "DIFF"
		if row.Identical {
			same = "yes"
		}
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %12d %12d %10d %10.2g %6s %6s\n",
			row.Bench+"."+string(row.Class), row.TestedBase, row.TestedSens,
			row.Predicted, row.MaxErr, same, verdict)
	}
}

// Engine renders the execution-engine ablation.
func Engine(w io.Writer, rows []experiments.EngineRow) {
	fmt.Fprintln(w, "Execution-engine ablation (compiled direct-threaded vs -nocompile interpreter)")
	fmt.Fprintf(w, "%-10s %12s %12s %9s %7s %6s %6s\n",
		"Benchmark", "Compiled-ms", "Interp-ms", "Speedup", "Tested", "Same", "Final")
	for _, row := range rows {
		same := "DIFF"
		if row.Identical {
			same = "yes"
		}
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %8.2fx %7d %6s %6s\n",
			row.Bench+"."+string(row.Class),
			float64(row.CompiledNS)/1e6, float64(row.InterpNS)/1e6,
			row.SpeedupX, row.Tested, same, verdict)
	}
}

// Fork prints the fork-point evaluation ablation table.
func Fork(w io.Writer, rows []experiments.ForkRow) {
	fmt.Fprintln(w, "Fork-point evaluation ablation (shared-prefix snapshots vs -nofork)")
	fmt.Fprintf(w, "%-10s %12s %12s %9s %7s %7s %13s %6s %6s\n",
		"Benchmark", "NoFork-ms", "Fork-ms", "Speedup", "Tested", "Forked", "PrefixSaved", "Same", "Final")
	for _, row := range rows {
		same := "DIFF"
		if row.Identical {
			same = "yes"
		}
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %8.2fx %7d %7d %13d %6s %6s\n",
			row.Bench+"."+string(row.Class),
			float64(row.NoForkNS)/1e6, float64(row.ForkNS)/1e6,
			row.SpeedupX, row.Tested, row.Forked, row.PrefixSaved, same, verdict)
	}
}

// Bounds prints the error-bound prover ablation table.
func Bounds(w io.Writer, rows []experiments.BoundsRow) {
	fmt.Fprintln(w, "Error-bound prover ablation (static proofs vs -noprove)")
	fmt.Fprintf(w, "%-10s %12s %12s %9s %10s %8s %7s %6s %6s\n",
		"Benchmark", "NoProve-ms", "Prove-ms", "Speedup", "TestedOff", "TestedOn", "Proved", "Same", "Final")
	for _, row := range rows {
		same := "DIFF"
		if row.Identical {
			same = "yes"
		}
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %8.2fx %10d %8d %7d %6s %6s\n",
			row.Bench+"."+string(row.Class),
			float64(row.NoProveNS)/1e6, float64(row.ProveNS)/1e6,
			row.SpeedupX, row.TestedNoProve, row.TestedProve, row.Proved, same, verdict)
	}
}

// Remote prints the remote-search throughput table (batched pipelined
// fleet vs the original one-unit-per-RPC protocol).
func Remote(w io.Writer, rows []experiments.RemoteRow) {
	fmt.Fprintln(w, "Remote search throughput (batched fleet vs one-unit-per-RPC protocol)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %9s %7s %6s %6s\n",
		"Benchmark", "Serial-ms", "OneRPC-ms", "Fleet-ms", "Speedup", "Units", "Same", "Final")
	for _, row := range rows {
		same := "DIFF"
		if row.Identical {
			same = "yes"
		}
		verdict := "fail"
		if row.FinalPass {
			verdict = "pass"
		}
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %8.2fx %7d %6s %6s\n",
			row.Bench+"."+string(row.Class),
			float64(row.SerialNS)/1e6, float64(row.OneNS)/1e6, float64(row.FleetNS)/1e6,
			row.SpeedupX, row.Units, same, verdict)
	}
	if len(rows) > 1 {
		sw := experiments.SweepOf(rows)
		fmt.Fprintf(w, "%-10s %12.1f %12.1f %12.1f %8.2fx %7d\n",
			"sweep",
			float64(sw.SerialNS)/1e6, float64(sw.OneNS)/1e6, float64(sw.FleetNS)/1e6,
			sw.SpeedupX, sw.Units)
	}
}

// Rule prints a separator line.
func Rule(w io.Writer) {
	fmt.Fprintln(w, strings.Repeat("-", 72))
}
