package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"sync"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/faultinject"
	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/kernels"
	"fpmix/internal/remote"
	"fpmix/internal/search"
	"fpmix/internal/service"
	"fpmix/internal/shadow"
)

// RemoteRow is one benchmark's remote-search throughput comparison:
// the same job end-to-end on (1) the in-process serial search, (2) a
// remote-only daemon driving one worker over the one-unit-per-RPC
// protocol the service originally shipped (15ms claim polling, one
// lease at a time, one verdict per report), and (3) the batched
// pipeline — event-driven claims, two workers each evaluating two
// units in parallel with prefetched leases.
type RemoteRow struct {
	Bench string
	Class kernels.Class
	// SerialNS is the in-process search wall (sensitivity profile
	// included, mirroring what a service job spends); OneNS and FleetNS
	// are submit-to-done walls of the two remote configurations.
	SerialNS int64
	OneNS    int64
	FleetNS  int64
	// SpeedupX is OneNS / FleetNS — the end-to-end gain of batched
	// pipelined delivery over the original protocol.
	SpeedupX float64
	// Units is the number of units delivered remotely in the fleet leg.
	Units int
	// Identical reports that all three legs composed the same effective
	// final configuration (exchange format, notes stripped).
	Identical bool
	FinalPass bool
}

// RemoteSweep aggregates a multi-kernel remote sweep: summed walls and
// the end-to-end throughput ratio of the batched pipeline over the
// one-unit-per-RPC protocol across every benchmark measured.
type RemoteSweep struct {
	SerialNS int64
	OneNS    int64
	FleetNS  int64
	// SpeedupX is total OneNS over total FleetNS — the sweep-wide
	// throughput gain (wall-weighted, so long searches count for what
	// they cost).
	SpeedupX float64
	Units    int
}

// SweepOf folds per-benchmark rows into the sweep aggregate.
func SweepOf(rows []RemoteRow) RemoteSweep {
	var sw RemoteSweep
	for _, r := range rows {
		sw.SerialNS += r.SerialNS
		sw.OneNS += r.OneNS
		sw.FleetNS += r.FleetNS
		sw.Units += r.Units
	}
	if sw.FleetNS > 0 {
		sw.SpeedupX = float64(sw.OneNS) / float64(sw.FleetNS)
	}
	return sw
}

// legacyClaimPoll reproduces the original protocol's daemon-side claim
// loop: a blocked claim re-checks the queue every 15ms instead of
// waking on enqueue, so during the search's sequential descent phases
// every freshly queued unit waits most of a poll interval before any
// worker sees it.
const legacyClaimPoll = 15 * time.Millisecond

// linkDelay is the simulated one-way link latency every RPC crosses in
// both remote legs (a NetInjector with Delay rate 1 stalls each send by
// exactly this much, deterministically). Loopback HTTP costs ~50µs, so
// without a modeled link the experiment would measure filesystem and
// scheduler noise instead of the protocol; 5ms is an ordinary
// metro-area/cross-AZ hop — the distance at which running workers away
// from the daemon starts being worth a protocol's attention. Both legs
// get the identical network, so the comparison isolates the protocol,
// not the link: the one-unit-per-RPC baseline crosses it three times
// per unit (poll discovery, claim, report) where batched pipelined
// delivery amortizes claims into prefetched batches and pays one
// crossing per settled chain step.
const linkDelay = 5 * time.Millisecond

var remoteNotesRE = regexp.MustCompile(`(?m)[ \t]*;[^\n]*`)

// Remote runs the remote-search throughput experiment per benchmark.
func Remote(names []string, class kernels.Class, workers int) ([]RemoteRow, error) {
	var rows []RemoteRow
	for _, name := range names {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		// Serial leg: the in-process search with the exact options a
		// service job uses (sensitivity profile, instruction granularity,
		// fork-point evaluation).
		runtime.GC()
		start := time.Now()
		sh, err := shadow.Collect(name+"."+string(class), b.Module, b.MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: shadow: %w", name, class, err)
		}
		res, err := search.Run(search.Target{Module: b.Module, Verify: b.Verify, MaxSteps: b.MaxSteps, Base: b.Base},
			search.Options{
				Workers: workers, Granularity: config.KindInsn,
				BinarySplit: true, Prioritize: true, Engine: search.EngineFork,
				Shadow: sh, SensThreshold: b.SensTol,
			})
		if err != nil {
			return nil, fmt.Errorf("%s.%s: serial: %w", name, class, err)
		}
		serialNS := time.Since(start).Nanoseconds()
		var buf bytes.Buffer
		if err := res.Final.Write(&buf); err != nil {
			return nil, err
		}
		serialFinal := remoteNotesRE.ReplaceAllString(buf.String(), "")

		// Legacy leg: polling daemon, one worker, one unit per RPC.
		oneNS, oneFinal, _, err := remoteLeg(name, class, legacyClaimPoll, 1, 1, 1)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: one-unit leg: %w", name, class, err)
		}
		// Fleet leg: event-driven daemon, two workers × parallel 2,
		// default (2×parallel) batch.
		fleetNS, fleetFinal, units, err := remoteLeg(name, class, 0, 2, 2, 0)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: fleet leg: %w", name, class, err)
		}

		rows = append(rows, RemoteRow{
			Bench:     name,
			Class:     class,
			SerialNS:  serialNS,
			OneNS:     oneNS,
			FleetNS:   fleetNS,
			SpeedupX:  float64(oneNS) / float64(fleetNS),
			Units:     units,
			Identical: oneFinal == serialFinal && fleetFinal == serialFinal,
			FinalPass: res.FinalPass,
		})
	}
	return rows, nil
}

// remoteLeg runs one kernel end-to-end on a remote-only daemon with
// nWorkers in-process worker runtimes over a loopback HTTP API,
// returning the submit-to-done wall, the final configuration (notes
// stripped) and the number of remotely delivered units.
func remoteLeg(name string, class kernels.Class, claimPoll time.Duration, nWorkers, parallel, batch int) (ns int64, final string, units int, err error) {
	link := faultinject.NewNet(1, faultinject.NetRates{Delay: 1}, linkDelay)
	dir, err := os.MkdirTemp("", "fpbench-remote-*")
	if err != nil {
		return 0, "", 0, err
	}
	defer os.RemoveAll(dir)
	srv, err := service.New(service.Options{
		Dir: dir, Workers: -1, DrainTimeout: time.Second,
		Fleet: fleet.Options{
			Heartbeat: 50 * time.Millisecond, Expiry: 30 * time.Second,
			MaxReassign: 10, ClaimPoll: claimPoll,
		},
	})
	if err != nil {
		return 0, "", 0, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			remote.Run(wctx, remote.WorkerOptions{
				Server: ts.URL, Name: fmt.Sprintf("bench%d", i),
				Poll: 200 * time.Millisecond, Parallel: parallel, Batch: batch,
				Net: link,
			})
		}(i)
	}
	defer wg.Wait()
	defer wcancel()
	if err := awaitWorkers(srv, nWorkers); err != nil {
		return 0, "", 0, err
	}

	runtime.GC()
	start := time.Now()
	j, err := srv.Submit(jobs.Spec{Kernel: name, Class: string(class)})
	if err != nil {
		return 0, "", 0, err
	}
	deadline := time.Now().Add(10 * time.Minute)
	for {
		jj, ok := srv.Store().Get(j.ID)
		if !ok {
			return 0, "", 0, fmt.Errorf("job %s vanished", j.ID)
		}
		if jj.State.Terminal() {
			if jj.State != jobs.StateDone {
				return 0, "", 0, fmt.Errorf("job %s ended %s: %s", j.ID, jj.State, jj.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			return 0, "", 0, fmt.Errorf("job %s never finished", j.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ns = time.Since(start).Nanoseconds()

	data, err := os.ReadFile(srv.Store().ResultPath(j.ID))
	if err != nil {
		return 0, "", 0, err
	}
	for _, w := range srv.Pool().Workers() {
		if w.Remote {
			units += w.Done
		}
	}
	return ns, remoteNotesRE.ReplaceAllString(string(data), ""), units, nil
}

// awaitWorkers blocks until n live remote workers are registered.
func awaitWorkers(srv *service.Server, n int) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range srv.Pool().Workers() {
			if w.Remote && w.State != fleet.WorkerDead {
				live++
			}
		}
		if live >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("never saw %d live remote workers", n)
}
