package experiments

import (
	"math"
	"strings"
	"testing"

	"fpmix/internal/kernels"
)

// The experiment drivers are exercised at class W (the fast class) so the
// full harness stays runnable in unit-test time.

func TestFig8ShapesHold(t *testing.T) {
	rows, err := Fig8(kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kernels.MPIKernelNames()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Overhead) != len(Fig8Ranks) {
			t.Fatalf("%s: series length %d", row.Bench, len(row.Overhead))
		}
		for i, ov := range row.Overhead {
			if ov <= 1 || ov > 30 {
				t.Errorf("%s ranks=%d: overhead %.2fX out of plausible band", row.Bench, Fig8Ranks[i], ov)
			}
		}
		// Non-increasing within tolerance: the paper's headline trend.
		if last, first := row.Overhead[len(row.Overhead)-1], row.Overhead[0]; last > first*1.10 {
			t.Errorf("%s: overhead grew with ranks: %.2f -> %.2f", row.Bench, first, last)
		}
	}
}

func TestFig10RowSanity(t *testing.T) {
	rows, err := Fig10([]string{"mg"}, []kernels.Class{kernels.ClassW}, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Candidates == 0 || r.Tested == 0 {
		t.Fatal("empty search result")
	}
	if r.StaticPct < 50 {
		t.Errorf("mg.W: static %.1f%% unexpectedly low", r.StaticPct)
	}
	if !r.FinalPass {
		t.Error("mg.W final should pass")
	}
}

func TestFig11Monotone(t *testing.T) {
	rows, err := Fig11(kernels.ClassW, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig11Thresholds) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].StaticPct > rows[i-1].StaticPct+1e-9 {
			t.Errorf("static %% not monotone: %.1f -> %.1f at threshold %g",
				rows[i-1].StaticPct, rows[i].StaticPct, rows[i].Threshold)
		}
	}
	// The loosest threshold must allow most of the solver to be replaced.
	if rows[0].StaticPct < 50 {
		t.Errorf("loosest threshold replaced only %.1f%%", rows[0].StaticPct)
	}
	for _, r := range rows {
		if !math.IsNaN(r.FinalError) && r.FinalPass && r.FinalError > r.Threshold {
			t.Errorf("threshold %g: passing final error %g above bound", r.Threshold, r.FinalError)
		}
	}
}

func TestAMGExperiment(t *testing.T) {
	res, err := AMG(kernels.ClassW, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSinglePass {
		t.Error("whole kernel must verify in single precision")
	}
	if res.SearchStaticPct != 100 {
		t.Errorf("search static = %.1f%%, want 100%%", res.SearchStaticPct)
	}
	if res.ManualSpeedup < 1.3 {
		t.Errorf("manual speedup %.2fX too small", res.ManualSpeedup)
	}
	if res.AnalysisOverhead <= 1 {
		t.Errorf("analysis overhead %.2fX implausible", res.AnalysisOverhead)
	}
}

func TestBitExactRows(t *testing.T) {
	rows, err := BitExact(kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no convertible kernels")
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s.%s: instrumented all-single differs from manual conversion", r.Bench, r.Class)
		}
		if r.Outputs == 0 {
			t.Errorf("%s.%s: no outputs compared", r.Bench, r.Class)
		}
	}
}

func TestSensDifferential(t *testing.T) {
	// The gate's acceptance bar: across every serial NAS kernel the guided
	// search must compose a byte-identical final configuration while
	// testing no more — and on at least two kernels strictly fewer —
	// configurations than the baseline. workers=1 keeps both trajectories
	// deterministic.
	if testing.Short() {
		t.Skip("full-kernel differential is slow")
	}
	rows, err := Sens(Fig10Benches, kernels.ClassW, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig10Benches) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Fig10Benches))
	}
	fewer := 0
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s.%s: guided final configuration differs from baseline", r.Bench, r.Class)
		}
		if r.TestedSens > r.TestedBase {
			t.Errorf("%s.%s: guided search tested more (%d) than baseline (%d)",
				r.Bench, r.Class, r.TestedSens, r.TestedBase)
		}
		// Every predicted failure replaces exactly one evaluation; the
		// trajectories otherwise coincide.
		if r.TestedBase-r.TestedSens != r.Predicted {
			t.Errorf("%s.%s: tested %d->%d but %d predicted",
				r.Bench, r.Class, r.TestedBase, r.TestedSens, r.Predicted)
		}
		if r.TestedSens < r.TestedBase {
			fewer++
		}
	}
	if fewer < 2 {
		t.Errorf("sensitivity guidance cut tested configs on only %d kernels, want >= 2", fewer)
	}
}

func TestFig10BenchesAreKnown(t *testing.T) {
	known := strings.Join(kernels.Names(), ",")
	for _, n := range Fig10Benches {
		if !strings.Contains(known, n) {
			t.Errorf("Fig10 bench %q not registered", n)
		}
	}
}
