package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fpmix/internal/kernels"
	"fpmix/internal/search"
)

// BoundsRow is one benchmark's error-bound prover ablation: the same
// search with the prover disabled (`fpsearch -noprove`) and enabled (the
// default), comparing configurations tested and wall clock.
type BoundsRow struct {
	Bench string
	Class kernels.Class
	// NoProveNS and ProveNS are the wall-clock nanoseconds of the two
	// searches.
	NoProveNS int64
	ProveNS   int64
	// SpeedupX is NoProveNS / ProveNS.
	SpeedupX float64
	// TestedNoProve and TestedProve are the configurations each search
	// evaluated; Proved is the piece verdicts the prover settled without
	// a run. TestedProve + Proved == TestedNoProve when the prover's
	// passes mirror evaluation verdicts exactly (its soundness
	// invariant).
	TestedNoProve int
	TestedProve   int
	Proved        int
	// Identical reports whether the two searches composed the same
	// precision assignment (proved pieces carry provenance notes the
	// unproved search lacks, so equality is over effective precisions).
	Identical bool
	FinalPass bool
}

// Bounds runs the error-bound prover ablation per benchmark.
func Bounds(names []string, class kernels.Class, workers int) ([]BoundsRow, error) {
	var rows []BoundsRow
	for _, name := range names {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		tgt := search.Target{
			Module:   b.Module,
			Verify:   b.Verify,
			MaxSteps: b.MaxSteps,
			Base:     b.Base,
		}
		opts := search.Options{Workers: workers, BinarySplit: true, Prioritize: true}
		// Collect before each timed phase (as testing.B does) so a phase
		// is not charged for garbage the previous one left behind.
		opts.NoProve = true
		runtime.GC()
		start := time.Now()
		plain, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: noprove: %w", name, class, err)
		}
		noProveNS := time.Since(start).Nanoseconds()

		opts.NoProve = false
		runtime.GC()
		start = time.Now()
		proved, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: prove: %w", name, class, err)
		}
		proveNS := time.Since(start).Nanoseconds()

		rows = append(rows, BoundsRow{
			Bench:         name,
			Class:         class,
			NoProveNS:     noProveNS,
			ProveNS:       proveNS,
			SpeedupX:      float64(noProveNS) / float64(proveNS),
			TestedNoProve: plain.Tested,
			TestedProve:   proved.Tested,
			Proved:        proved.Proved,
			Identical: reflect.DeepEqual(proved.Final.Effective(), plain.Final.Effective()) &&
				proved.FinalPass == plain.FinalPass,
			FinalPass: proved.FinalPass,
		})
	}
	return rows, nil
}
