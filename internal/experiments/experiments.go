// Package experiments reproduces every table and figure of the paper's
// evaluation (§3): the NAS MPI scaling overheads (Figure 8), the per-class
// overhead table (Figure 9), the automatic-search results table
// (Figure 10), the AMG microkernel end-to-end conversion (§3.2), the
// SuperLU threshold sweep (Figure 11) and the §3.1 bit-for-bit
// equivalence check. Each experiment returns structured rows so the
// fpbench tool and the benchmark harness share one implementation.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/kernels"
	"fpmix/internal/mpi"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// Fig8Ranks are the rank counts of the scaling experiment.
var Fig8Ranks = []int{1, 2, 4, 8}

// Fig8Row is one benchmark's overhead-vs-ranks series.
type Fig8Row struct {
	Bench    string
	Ranks    []int
	Overhead []float64 // instrumented / original total cycles
}

// Fig8 measures all-double instrumentation overhead of the MPI kernels as
// the rank count scales (paper Figure 8, class A).
func Fig8(class kernels.Class) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, name := range kernels.MPIKernelNames() {
		mod, err := kernels.MPISource(name, class)
		if err != nil {
			return nil, err
		}
		inst, err := instrumentAll(mod, config.Double)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Bench: name, Ranks: Fig8Ranks}
		for _, ranks := range Fig8Ranks {
			ov, err := mpiOverhead(mod, inst, ranks)
			if err != nil {
				return nil, fmt.Errorf("%s ranks=%d: %w", name, ranks, err)
			}
			row.Overhead = append(row.Overhead, ov)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Row is one entry of the per-class overhead table.
type Fig9Row struct {
	Bench    string
	Class    kernels.Class
	Overhead float64
}

// Fig9 measures all-double instrumentation overhead for ep/cg/ft/mg at
// two input classes on 8 ranks (paper Figure 9; the paper uses classes A
// and C — pass them in).
func Fig9(classes []kernels.Class) ([]Fig9Row, error) {
	const ranks = 8
	var rows []Fig9Row
	for _, name := range kernels.MPIKernelNames() {
		for _, class := range classes {
			mod, err := kernels.MPISource(name, class)
			if err != nil {
				return nil, err
			}
			inst, err := instrumentAll(mod, config.Double)
			if err != nil {
				return nil, err
			}
			ov, err := mpiOverhead(mod, inst, ranks)
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", name, class, err)
			}
			rows = append(rows, Fig9Row{Bench: name, Class: class, Overhead: ov})
		}
	}
	return rows, nil
}

// Fig10Row is one search-result line of the NAS benchmark table.
type Fig10Row struct {
	Bench      string
	Class      kernels.Class
	Candidates int
	Tested     int
	StaticPct  float64
	DynamicPct float64
	FinalPass  bool
}

// Fig10Benches are the benchmarks of the paper's search table, in its
// row order.
var Fig10Benches = []string{"bt", "cg", "ep", "ft", "lu", "mg", "sp"}

// Fig10 runs the automatic breadth-first search on each benchmark and
// class (paper Figure 10: candidates, configurations tested, static and
// dynamic replacement percentages, final composed verification).
func Fig10(names []string, classes []kernels.Class, workers int) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, name := range names {
		for _, class := range classes {
			b, err := kernels.Get(name, class)
			if err != nil {
				return nil, err
			}
			res, err := search.Run(search.Target{
				Module:   b.Module,
				Verify:   b.Verify,
				MaxSteps: b.MaxSteps,
				Base:     b.Base,
			}, search.Options{
				Workers:     workers,
				BinarySplit: true,
				Prioritize:  true,
			})
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", name, class, err)
			}
			rows = append(rows, Fig10Row{
				Bench:      name,
				Class:      class,
				Candidates: res.Candidates,
				Tested:     res.Tested,
				StaticPct:  res.Stats.StaticPct,
				DynamicPct: res.Stats.DynamicPct,
				FinalPass:  res.FinalPass,
			})
		}
	}
	return rows, nil
}

// SensRow is one benchmark's sensitivity-guided search ablation.
type SensRow struct {
	Bench string
	Class kernels.Class
	// TestedBase is configurations tested by the counts-prioritized
	// baseline (`fpsearch -nosens`), TestedSens by the sensitivity-guided
	// search on the same shadow profile.
	TestedBase int
	TestedSens int
	// Predicted is the number of aggregates the gate failed without a
	// run; MaxErr is the profile's worst instruction error.
	Predicted int
	MaxErr    float64
	// Identical reports whether both searches composed byte-identical
	// final configurations (the gate's correctness condition).
	Identical bool
	FinalPass bool
}

// Sens runs the sensitivity ablation: one shadow-value pass per
// benchmark, then the search twice — the counts-prioritized baseline and
// the sensitivity-guided default — and compares trajectories and final
// configurations.
func Sens(names []string, class kernels.Class, workers int) ([]SensRow, error) {
	var rows []SensRow
	for _, name := range names {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		sh, err := shadow.Collect(name+"."+string(class), b.Module, b.MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: shadow: %w", name, class, err)
		}
		tgt := search.Target{
			Module:   b.Module,
			Verify:   b.Verify,
			MaxSteps: b.MaxSteps,
			Base:     b.Base,
		}
		opts := search.Options{Workers: workers, BinarySplit: true, Prioritize: true}
		base, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: baseline: %w", name, class, err)
		}
		opts.Shadow = sh
		opts.SensThreshold = b.SensTol
		res, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: sensitivity: %w", name, class, err)
		}
		maxErr := 0.0
		if r := sh.Ranked(); len(r) > 0 {
			maxErr = r[0].MaxRelErr
		}
		rows = append(rows, SensRow{
			Bench:      name,
			Class:      class,
			TestedBase: base.Tested,
			TestedSens: res.Tested,
			Predicted:  res.Predicted,
			MaxErr:     maxErr,
			Identical:  res.Final.String() == base.Final.String(),
			FinalPass:  res.FinalPass,
		})
	}
	return rows, nil
}

// EngineRow is one benchmark's compiled-vs-interpreted engine ablation.
type EngineRow struct {
	Bench string
	Class kernels.Class
	// CompiledNS and InterpNS are the wall-clock nanoseconds of the same
	// search on the compiled direct-threaded tier and on the per-step
	// interpreter (`fpsearch -nocompile`).
	CompiledNS int64
	InterpNS   int64
	// SpeedupX is InterpNS / CompiledNS.
	SpeedupX float64
	// Tested is the number of configurations both searches evaluated
	// (identical by construction; reported for scale).
	Tested int
	// Identical reports whether the two searches composed byte-identical
	// final configurations — the engine's correctness condition.
	Identical bool
	FinalPass bool
}

// Engine runs the execution-engine ablation: the identical search per
// benchmark on the compiled tier and on the per-step interpreter,
// comparing wall clock and final configurations.
func Engine(names []string, class kernels.Class, workers int) ([]EngineRow, error) {
	var rows []EngineRow
	for _, name := range names {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		tgt := search.Target{
			Module:   b.Module,
			Verify:   b.Verify,
			MaxSteps: b.MaxSteps,
			Base:     b.Base,
		}
		opts := search.Options{Workers: workers, BinarySplit: true, Prioritize: true}
		start := time.Now()
		compiled, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: compiled: %w", name, class, err)
		}
		compiledNS := time.Since(start).Nanoseconds()

		opts.NoCompile = true
		start = time.Now()
		interp, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: nocompile: %w", name, class, err)
		}
		interpNS := time.Since(start).Nanoseconds()

		rows = append(rows, EngineRow{
			Bench:      name,
			Class:      class,
			CompiledNS: compiledNS,
			InterpNS:   interpNS,
			SpeedupX:   float64(interpNS) / float64(compiledNS),
			Tested:     compiled.Tested,
			Identical:  compiled.Final.String() == interp.Final.String() && compiled.Tested == interp.Tested,
			FinalPass:  compiled.FinalPass,
		})
	}
	return rows, nil
}

// ForkRow is one benchmark's fork-point evaluation ablation.
type ForkRow struct {
	Bench string
	Class kernels.Class
	// NoForkNS and ForkNS are the wall-clock nanoseconds of the same
	// search with the cached engine evaluating every run from the entry
	// (`fpsearch -nofork`) and with fork-point evaluation (the default):
	// donor snapshots at every candidate site, incremental re-linking,
	// suffix-only runs.
	NoForkNS int64
	ForkNS   int64
	// SpeedupX is NoForkNS / ForkNS.
	SpeedupX float64
	// Tested is the number of configurations both searches evaluated.
	Tested int
	// Forked counts the verdicts the forking search reached from a
	// fork-point snapshot (or by reusing the donor verdict outright);
	// PrefixSaved totals the shared-prefix instructions those verdicts
	// skipped re-executing.
	Forked      int
	PrefixSaved uint64
	// Identical reports whether the two searches composed byte-identical
	// final configurations — fork-point evaluation's correctness
	// condition.
	Identical bool
	FinalPass bool
}

// Fork runs the fork-point evaluation ablation: the identical search per
// benchmark with and without fork-point snapshots, comparing wall clock,
// fork provenance and final configurations.
func Fork(names []string, class kernels.Class, workers int) ([]ForkRow, error) {
	var rows []ForkRow
	for _, name := range names {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		tgt := search.Target{
			Module:   b.Module,
			Verify:   b.Verify,
			MaxSteps: b.MaxSteps,
			Base:     b.Base,
		}
		opts := search.Options{Workers: workers, BinarySplit: true, Prioritize: true}
		// Collect before each timed phase (as testing.B does) so a phase
		// is not charged for garbage the previous phase or benchmark left
		// behind — the searches allocate full machine images, and carried
		// GC pressure measurably distorts the per-kernel ratios.
		runtime.GC()
		start := time.Now()
		plain, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: nofork: %w", name, class, err)
		}
		noForkNS := time.Since(start).Nanoseconds()

		opts.Engine = search.EngineFork
		runtime.GC()
		start = time.Now()
		forked, err := search.Run(tgt, opts)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: fork: %w", name, class, err)
		}
		forkNS := time.Since(start).Nanoseconds()

		rows = append(rows, ForkRow{
			Bench:       name,
			Class:       class,
			NoForkNS:    noForkNS,
			ForkNS:      forkNS,
			SpeedupX:    float64(noForkNS) / float64(forkNS),
			Tested:      forked.Tested,
			Forked:      forked.Forked,
			PrefixSaved: forked.PrefixInstrsSaved,
			Identical:   forked.Final.String() == plain.Final.String() && forked.Tested == plain.Tested,
			FinalPass:   forked.FinalPass,
		})
	}
	return rows, nil
}

// Fig11Thresholds are the error bounds of the SuperLU sweep.
var Fig11Thresholds = []float64{1e-3, 1e-4, 7.5e-5, 5e-5, 2.5e-5, 1e-5, 1e-6}

// Fig11Row is one threshold line of the SuperLU table.
type Fig11Row struct {
	Threshold  float64
	StaticPct  float64
	DynamicPct float64
	FinalError float64 // reported error of the final composed run
	FinalPass  bool
}

// Fig11 sweeps the SuperLU error threshold: the search is driven by the
// solver's own reported error metric compared against each bound (paper
// Figure 11 / §3.3).
func Fig11(class kernels.Class, workers int) ([]Fig11Row, error) {
	b, err := kernels.Get("superlu", class)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, thr := range Fig11Thresholds {
		v := verify.ErrorBelow(0, thr)
		res, err := search.Run(search.Target{
			Module:   b.Module,
			Verify:   v,
			MaxSteps: b.MaxSteps,
		}, search.Options{Workers: workers, BinarySplit: true, Prioritize: true})
		if err != nil {
			return nil, fmt.Errorf("threshold %g: %w", thr, err)
		}
		// Run the final composed configuration to report its error.
		finalErr, err := finalError(b, res.Final)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Threshold:  thr,
			StaticPct:  res.Stats.StaticPct,
			DynamicPct: res.Stats.DynamicPct,
			FinalError: finalErr,
			FinalPass:  res.FinalPass,
		})
	}
	return rows, nil
}

func finalError(b *kernels.Bench, cfgn *config.Config) (float64, error) {
	inst, err := replace.Instrument(b.Module, cfgn, replace.InstrumentOptions{})
	if err != nil {
		return 0, err
	}
	m, err := vm.New(inst)
	if err != nil {
		return 0, err
	}
	m.MaxSteps = b.MaxSteps
	if err := m.Run(); err != nil {
		return 0, err
	}
	if len(m.Out) == 0 {
		return 0, fmt.Errorf("experiments: no output from final run")
	}
	return verify.Decode(m.Out)[0], nil
}

// AMGResult captures the §3.2 end-to-end experiment.
type AMGResult struct {
	AllSinglePass    bool    // whole kernel verified in single precision
	AnalysisOverhead float64 // all-single instrumented / original cycles
	ManualSpeedup    float64 // double build / manual F32 build cycles
	SearchStaticPct  float64 // search confirms 100%
	SearchFinalPass  bool
}

// AMG reproduces §3.2: the analysis verifies the whole kernel can run in
// single precision, and a manual conversion yields the speedup.
func AMG(class kernels.Class, workers int) (*AMGResult, error) {
	b, err := kernels.Get("amg", class)
	if err != nil {
		return nil, err
	}
	inst, err := instrumentAll(b.Module, config.Single)
	if err != nil {
		return nil, err
	}
	orig, err := runMod(b.Module, b.MaxSteps)
	if err != nil {
		return nil, err
	}
	single, err := runMod(inst, b.MaxSteps)
	if err != nil {
		return nil, err
	}
	manual, err := runMod(b.ModuleF32, b.MaxSteps)
	if err != nil {
		return nil, err
	}
	res, err := search.Run(search.Target{
		Module:   b.Module,
		Verify:   b.Verify,
		MaxSteps: b.MaxSteps,
	}, search.Options{Workers: workers, BinarySplit: true, Prioritize: true})
	if err != nil {
		return nil, err
	}
	return &AMGResult{
		AllSinglePass:    b.Verify(single.Out),
		AnalysisOverhead: float64(single.Cycles) / float64(orig.Cycles),
		ManualSpeedup:    float64(orig.Cycles) / float64(manual.Cycles),
		SearchStaticPct:  res.Stats.StaticPct,
		SearchFinalPass:  res.FinalPass,
	}, nil
}

// BitExactRow is one kernel's §3.1 equivalence result.
type BitExactRow struct {
	Bench   string
	Class   kernels.Class
	Outputs int
	Match   bool
}

// BitExact verifies that instrumented all-single execution produces the
// same bits as the manually converted single-precision build for every
// convertible kernel (§3.1).
func BitExact(class kernels.Class) ([]BitExactRow, error) {
	var rows []BitExactRow
	for _, name := range kernels.Names() {
		b, err := kernels.Get(name, class)
		if err != nil {
			return nil, err
		}
		if b.ModuleF32 == nil {
			continue
		}
		inst, err := instrumentAll(b.Module, config.Single)
		if err != nil {
			return nil, err
		}
		mi, err := runMod(inst, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		mf, err := runMod(b.ModuleF32, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		row := BitExactRow{Bench: name, Class: class, Outputs: len(mi.Out), Match: len(mi.Out) == len(mf.Out)}
		for i := 0; row.Match && i < len(mi.Out); i++ {
			if uint32(mi.Out[i].Bits) != uint32(mf.Out[i].Bits) {
				row.Match = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func instrumentAll(m *prog.Module, p config.Precision) (*prog.Module, error) {
	c, err := config.FromModule(m)
	if err != nil {
		return nil, err
	}
	c.SetAll(p)
	return replace.Instrument(m, c, replace.InstrumentOptions{})
}

func runMod(m *prog.Module, maxSteps uint64) (*vm.Machine, error) {
	mach, err := vm.New(m)
	if err != nil {
		return nil, err
	}
	mach.MaxSteps = maxSteps
	if err := mach.Run(); err != nil {
		return nil, err
	}
	return mach, nil
}

func mpiOverhead(orig, inst *prog.Module, ranks int) (float64, error) {
	base, err := mpi.RunWorld(orig, ranks, 0)
	if err != nil {
		return 0, err
	}
	wrapped, err := mpi.RunWorld(inst, ranks, 0)
	if err != nil {
		return 0, err
	}
	return float64(mpi.TotalCycles(wrapped)) / float64(mpi.TotalCycles(base)), nil
}
