package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"

	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/search"
)

// JobStatus is the status-endpoint payload: the stored job record, how
// many progress events the run has emitted, and — once the job is done
// — its machine-readable search summary (the same shape fpsearch -json
// prints).
type JobStatus struct {
	Job     jobs.Job        `json:"job"`
	Events  int             `json:"events"`
	Summary *search.Summary `json:"summary,omitempty"`
}

// Handler is the fpmixd HTTP API:
//
//	POST /api/v1/jobs              submit a job (body: jobs.Spec JSON)
//	GET  /api/v1/jobs              list all jobs
//	GET  /api/v1/jobs/{id}         job status (+ summary when done)
//	POST /api/v1/jobs/{id}/cancel  cancel a job
//	GET  /api/v1/jobs/{id}/events  progress stream (ndjson, replays then follows;
//	                               ?from=N resumes from sequence number N)
//	GET  /api/v1/jobs/{id}/result  final configuration (exchange format)
//	GET  /api/v1/workers           worker registry snapshot
//	GET  /api/v1/healthz           liveness probe
//
// plus the remote-worker fleet protocol (see internal/remote):
//
//	POST /api/v1/fleet/register       join the fleet
//	POST /api/v1/fleet/claim          long-poll for an evaluation unit
//	POST /api/v1/fleet/heartbeat      refresh the lease clock
//	POST /api/v1/fleet/report         deliver a verdict (idempotent)
//	GET  /api/v1/fleet/jobs/{id}/spec job spec for worker-side builds
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/workers", s.handleWorkers)
	mux.HandleFunc("POST /api/v1/workers/{id}/kill", s.handleKillWorker)
	mux.HandleFunc("POST /api/v1/fleet/register", s.handleFleetRegister)
	mux.HandleFunc("POST /api/v1/fleet/claim", s.handleFleetClaim)
	mux.HandleFunc("POST /api/v1/fleet/heartbeat", s.handleFleetHeartbeat)
	mux.HandleFunc("POST /api/v1/fleet/report", s.handleFleetReport)
	mux.HandleFunc("GET /api/v1/fleet/jobs/{id}/spec", s.handleJobSpec)
	mux.HandleFunc("GET /api/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	var spec jobs.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	st := JobStatus{Job: j}
	s.mu.Lock()
	if stream, ok := s.streams[id]; ok {
		st.Events = stream.events()
	}
	s.mu.Unlock()
	if j.State == jobs.StateDone {
		if sum, err := s.Summary(id); err == nil {
			st.Summary = sum
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "cancel": "requested"})
}

// handleEvents streams the job's progress as newline-delimited JSON:
// one Event per line, history replayed first, then live events until
// the job ends or the client goes away. ?from=N restricts the replay
// to events with seq >= N — the reconnect path for clients (fpmixctl
// watch) resuming a dropped stream without gaps or duplicates.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.Get(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q", v))
			return
		}
		from = n
	}
	s.mu.Lock()
	stream := s.streams[id]
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if stream == nil {
		// Terminal job from a previous incarnation: no live stream.
		enc.Encode(Event{Type: "end"})
		return
	}
	replay, live := stream.subscribeFrom(from)
	for _, e := range replay {
		if enc.Encode(e) != nil {
			if live != nil {
				stream.unsubscribe(live)
			}
			return
		}
	}
	if fl != nil {
		fl.Flush()
	}
	if live == nil {
		enc.Encode(Event{Type: "end"})
		return
	}
	defer stream.unsubscribe(live)
	done := r.Context().Done()
	for {
		select {
		case e, ok := <-live:
			if !ok {
				enc.Encode(Event{Type: "end"})
				return
			}
			if enc.Encode(e) != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-done:
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	if j.State != jobs.StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, result is available when done", id, j.State))
		return
	}
	f, err := os.Open(s.store.ResultPath(id))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.cfg", id))
	io.Copy(w, f)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	ws := s.pool.Workers()
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	writeJSON(w, http.StatusOK, ws)
}

// handleKillWorker reports a worker dead (chaos testing: its lease
// breaks, its shard reassigns, its late result is discarded).
func (s *Server) handleKillWorker(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.pool.Kill(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"worker": id, "state": string(fleet.WorkerDead)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
