package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"fpmix/internal/fleet"
	"fpmix/internal/remote"
)

// The daemon side of the remote-worker wire protocol (see
// internal/remote): four idempotent JSON RPCs plus the job-spec fetch.
// Every handler maps fleet.ErrUnknownWorker to 410 Gone, the signal a
// worker recovers from by re-registering — the standard outcome of a
// daemon restart, which empties the in-memory registry while worker
// processes survive.

// maxClaimWait clamps a worker's requested long-poll window so a
// buggy client cannot pin handler goroutines indefinitely.
const maxClaimWait = 30 * time.Second

func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var req remote.RegisterRequest
	if err := readJSON(w, r, &req); err != nil {
		return
	}
	if req.Name == "" {
		req.Name = "worker"
	}
	id, hb, exp := s.pool.AddRemote(req.Name, req.Parallel)
	writeJSON(w, http.StatusOK, remote.RegisterResponse{
		ID:          id,
		HeartbeatMS: hb.Milliseconds(),
		ExpiryMS:    exp.Milliseconds(),
	})
}

func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req remote.HeartbeatRequest
	if err := readJSON(w, r, &req); err != nil {
		return
	}
	state, err := s.pool.HeartbeatLoad(req.Worker, req.InFlight)
	if err != nil {
		fleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, remote.HeartbeatResponse{State: string(state)})
}

func (s *Server) handleFleetClaim(w http.ResponseWriter, r *http.Request) {
	var req remote.ClaimRequest
	if err := readJSON(w, r, &req); err != nil {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxClaimWait {
		wait = maxClaimWait
	}
	leases, state, err := s.pool.Claim(req.Worker, wait, req.Max)
	if err != nil {
		fleetError(w, err)
		return
	}
	resp := remote.ClaimResponse{State: string(state)}
	for _, lease := range leases {
		resp.Leases = append(resp.Leases, remote.Lease{
			Job: lease.Job, Epoch: lease.Epoch, Unit: remote.ToWire(lease.Unit),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFleetReport(w http.ResponseWriter, r *http.Request) {
	var req remote.ReportRequest
	if err := readJSON(w, r, &req); err != nil {
		return
	}
	reports := make([]fleet.RemoteReport, len(req.Reports))
	for i, ur := range req.Reports {
		key, err := hex.DecodeString(ur.Key)
		if err != nil {
			// An undecodable key can never match a lease; judge the rest
			// of the batch normally and let this entry settle unaccepted
			// instead of failing its batchmates' deliveries with a 400.
			key = []byte("\x00undecodable:" + ur.Key)
		}
		reports[i] = fleet.RemoteReport{
			Job: ur.Job, Key: string(key), Epoch: ur.Epoch,
			Verdict: ur.Verdict, Err: ur.Error,
		}
	}
	accepted, err := s.pool.ReportBatch(req.Worker, reports)
	if err != nil {
		fleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, remote.ReportResponse{Accepted: accepted})
}

// handleJobSpec serves a job's spec so a remote worker can build the
// job's evaluation stack in its own address space.
func (s *Server) handleJobSpec(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	writeJSON(w, http.StatusOK, j.Spec)
}

// fleetError maps registry errors onto the wire: an unknown or retired
// worker gets 410 Gone (re-register), anything else 500.
func fleetError(w http.ResponseWriter, err error) {
	if errors.Is(err, fleet.ErrUnknownWorker) {
		httpError(w, http.StatusGone, err)
		return
	}
	httpError(w, http.StatusInternalServerError, err)
}

// readJSON decodes a bounded JSON request body, answering 400 itself
// on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return err
	}
	if err := json.Unmarshal(body, dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return err
	}
	return nil
}
