package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"testing"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/remote"
)

// The remote-worker chaos suite: fpmixd with REAL out-of-process
// workers (this test binary re-executed in worker mode), seeded
// network chaos on the wire, kill -9 mid-run, daemon restart with
// surviving workers — and the same byte-identity pin as everywhere
// else: the composed final must equal serial search.Run's exactly.

// TestMain re-executes the test binary as a worker process when the
// helper env var is set (the standard helper-process pattern), so the
// fleet tests exercise genuine process isolation and genuine SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("FPMIX_REMOTE_WORKER") == "1" {
		workerHelperMain()
		return
	}
	os.Exit(m.Run())
}

func workerHelperMain() {
	var inj *faultinject.NetInjector
	if s := os.Getenv("FPMIX_WORKER_CHAOSNET"); s != "" && s != "0" {
		seed, _ := strconv.ParseInt(s, 10, 64)
		// Short injected delays keep chaos runs quick; the fault mix is
		// the default (~24% of RPCs).
		inj = faultinject.NewNet(seed, faultinject.NetRates{}, 20*time.Millisecond)
	}
	sab, _ := strconv.Atoi(os.Getenv("FPMIX_WORKER_SABOTAGE"))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	remote.Run(ctx, remote.WorkerOptions{
		Server:   os.Getenv("FPMIX_WORKER_SERVER"),
		Name:     os.Getenv("FPMIX_WORKER_NAME"),
		Poll:     200 * time.Millisecond,
		Net:      inj,
		Sabotage: sab,
		Logf:     log.New(os.Stderr, "worker["+os.Getenv("FPMIX_WORKER_NAME")+"]: ", 0).Printf,
	})
}

// remoteFleet tunes failure detection for subprocess fleets: quick
// heartbeats, an expiry short enough that a kill -9'd worker's lease
// breaks within a few seconds, and a reassignment budget generous
// enough that an occasional false expiry under full CPU load cannot
// fail a unit.
var remoteFleet = fleet.Options{
	Heartbeat:   50 * time.Millisecond,
	Expiry:      4 * time.Second,
	MaxReassign: 10,
}

// serveOn starts the server's HTTP API on a fresh loopback port and
// returns its address.
func serveOn(t *testing.T, srv *Server) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return ln.Addr().String(), func() { hs.Close() }
}

// spawnWorker starts one out-of-process worker against the daemon at
// addr. The returned process is SIGKILLed at cleanup if still alive.
func spawnWorker(t *testing.T, addr, name string, chaosSeed int64, sabotage int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FPMIX_REMOTE_WORKER=1",
		"FPMIX_WORKER_SERVER=http://"+addr,
		"FPMIX_WORKER_NAME="+name,
		fmt.Sprintf("FPMIX_WORKER_CHAOSNET=%d", chaosSeed),
		fmt.Sprintf("FPMIX_WORKER_SABOTAGE=%d", sabotage),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitRemoteWorkers blocks until n remote workers are registered (and
// not dead) in the pool.
func waitRemoteWorkers(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range srv.Pool().Workers() {
			if w.Remote && w.State != fleet.WorkerDead {
				live++
			}
		}
		if live >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never saw %d live remote workers", n)
}

// remoteDone sums accepted deliveries over remote workers.
func remoteDone(srv *Server) int {
	done := 0
	for _, w := range srv.Pool().Workers() {
		if w.Remote {
			done += w.Done
		}
	}
	return done
}

// TestRemoteFinalByteIdentical is the remote identity pin: every
// searchable kernel at class W runs on an fpmixd with zero in-process
// workers and ≥2 real worker subprocesses under seeded network chaos
// (dropped responses → duplicate deliveries, duplicated RPCs, delays,
// resets), one worker is kill -9'd mid-run, and the composed final
// must still be byte-identical to serial search.Run. A separate
// subtest restarts the daemon mid-job with the worker processes
// surviving: they re-register through 410 Gone and the resumed job
// composes the same bytes.
func TestRemoteFinalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fleet suite is not -short")
	}
	t.Run("chaos", func(t *testing.T) {
		for i, name := range testKernels() {
			name, i := name, i
			t.Run(name, func(t *testing.T) {
				srv, err := New(Options{Dir: t.TempDir(), Workers: -1, DrainTimeout: time.Second, Fleet: remoteFleet})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				addr, shutdown := serveOn(t, srv)
				defer shutdown()
				spawnWorker(t, addr, "chaos-a", int64(1000+i), 0)
				spawnWorker(t, addr, "chaos-b", int64(2000+i), 0)
				victim := spawnWorker(t, addr, "victim", 0, 0)
				waitRemoteWorkers(t, srv, 3)
				j, err := srv.Submit(jobs.Spec{Kernel: name})
				if err != nil {
					t.Fatal(err)
				}
				// kill -9 the victim the moment it holds a lease — no
				// goodbye, no interrupt report; only lease expiry on the
				// daemon's clock can recover the unit. Small kernels may
				// finish before the victim ever claims; then there is
				// nothing to kill and the chaos workers carried the run.
				killed := false
				deadline := time.Now().Add(time.Minute)
				for !killed && time.Now().Before(deadline) {
					if jj, _ := srv.Store().Get(j.ID); jj.State.Terminal() {
						break
					}
					for _, w := range srv.Pool().Workers() {
						if w.Name == "victim" && w.State == fleet.WorkerBusy {
							if err := victim.Process.Kill(); err != nil {
								t.Fatal(err)
							}
							victim.Wait()
							killed = true
							break
						}
					}
					time.Sleep(time.Millisecond)
				}
				waitState(t, srv, j.ID, jobs.StateDone)
				got := stripNotes(resultOf(t, srv, j.ID))
				want := stripNotes(serialFinal(t, name))
				if got != want {
					t.Errorf("remote final diverged from serial for %s.W (victim killed: %v)", name, killed)
				}
				if remoteDone(srv)+srv.Pool().Fallbacks() == 0 {
					t.Error("no unit was evaluated remotely or via fallback — the fleet never worked")
				}
			})
		}
	})

	t.Run("daemon-restart", func(t *testing.T) {
		dir := t.TempDir()
		srv1, err := New(Options{Dir: dir, Workers: -1, Fleet: remoteFleet})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		hs1 := &http.Server{Handler: srv1.Handler()}
		go hs1.Serve(ln)
		spawnWorker(t, addr, "survivor-a", 31, 0)
		spawnWorker(t, addr, "survivor-b", 32, 0)
		waitRemoteWorkers(t, srv1, 2)
		j, err := srv1.Submit(jobs.Spec{Kernel: "mg"})
		if err != nil {
			t.Fatal(err)
		}
		// Let some verdicts journal, then die abruptly: no drain, no
		// state transition — the workers outlive the daemon.
		deadline := time.Now().Add(time.Minute)
		for time.Now().Before(deadline) {
			srv1.mu.Lock()
			st := srv1.streams[j.ID]
			srv1.mu.Unlock()
			if st != nil && st.events() >= 5 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		srv1.crash()
		hs1.Close()

		// Same address, fresh incarnation: the job relaunches from the
		// store; the surviving workers' identities come back 410 Gone and
		// they re-register.
		var ln2 net.Listener
		for i := 0; i < 100; i++ {
			if ln2, err = net.Listen("tcp", addr); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		srv2, err := New(Options{Dir: dir, Workers: -1, Fleet: remoteFleet})
		if err != nil {
			t.Fatal(err)
		}
		defer srv2.Close()
		hs2 := &http.Server{Handler: srv2.Handler()}
		go hs2.Serve(ln2)
		defer hs2.Close()
		waitState(t, srv2, j.ID, jobs.StateDone)
		sum, err := srv2.Summary(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Resumed == 0 && sum.CacheHits == 0 {
			t.Error("restart replayed nothing: neither journal verdicts nor cache hits")
		}
		got := stripNotes(resultOf(t, srv2, j.ID))
		want := stripNotes(serialFinal(t, "mg"))
		if got != want {
			t.Error("final diverged from serial across a daemon restart with surviving workers")
		}
		// The surviving processes must find their way back into the new
		// registry (410 → re-register), even though the job may already
		// have finished on the in-process fallback.
		waitRemoteWorkers(t, srv2, 2)
	})
}

// TestRemoteBatchedChaosIdempotent: a worker evaluating in parallel
// with batched delivery under heavy drop/dup chaos — every dropped
// report response forces a whole-batch duplicate redelivery, every dup
// delivers a batch twice — must still land each verdict exactly once:
// the daemon absorbs the duplicates as per-unit discards and the final
// stays byte-identical to serial. Runs the worker runtime in-process so
// -race covers the pipelined claim/evaluate/report interleavings.
func TestRemoteBatchedChaosIdempotent(t *testing.T) {
	fl := remoteFleet
	fl.Expiry = 30 * time.Second // in-process worker under -race: be lenient
	srv, err := New(Options{Dir: t.TempDir(), Workers: -1, Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		remote.Run(wctx, remote.WorkerOptions{
			Server: ts.URL, Name: "stormy", Poll: 100 * time.Millisecond,
			Parallel: 2, Batch: 4,
			// No resets or delays: every fault is a duplicate-delivery
			// fault, the pure idempotency workload.
			Net: faultinject.NewNet(97, faultinject.NetRates{Drop: 0.35, Dup: 0.35}, 0),
		})
	}()
	waitRemoteWorkers(t, srv, 1)
	j, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateDone)
	got := stripNotes(resultOf(t, srv, j.ID))
	want := stripNotes(serialFinal(t, "ep"))
	if got != want {
		t.Error("batched chaos final diverged from serial")
	}
	done, discarded := 0, 0
	for _, w := range srv.Pool().Workers() {
		if w.Remote {
			done += w.Done
			discarded += w.Discarded
		}
	}
	if done == 0 {
		t.Error("no unit delivered remotely")
	}
	if discarded == 0 {
		t.Error("chaos produced no duplicate deliveries — idempotency never exercised")
	}
	wcancel()
	select {
	case <-workerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("worker runtime did not exit on cancel")
	}
}

// TestRemoteQuarantineDegrades: a worker whose environment is broken
// (every evaluation errors) is quarantined after QuarantineAfter
// consecutive strikes — visible in the registry, still heartbeating —
// and the daemon degrades to in-process fallback, completing the job
// with the identical final. Runs the worker runtime in-process (same
// address space) so -race covers the client/server interleavings.
func TestRemoteQuarantineDegrades(t *testing.T) {
	fl := remoteFleet
	fl.Expiry = 30 * time.Second // in-process worker under -race: be lenient
	fl.QuarantineAfter = 2
	srv, err := New(Options{Dir: t.TempDir(), Workers: -1, Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		remote.Run(wctx, remote.WorkerOptions{
			Server: ts.URL, Name: "saboteur", Poll: 100 * time.Millisecond,
			Sabotage: 1 << 30, // every unit fails
		})
	}()
	waitRemoteWorkers(t, srv, 1)
	j, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateDone)
	got := stripNotes(resultOf(t, srv, j.ID))
	want := stripNotes(serialFinal(t, "ep"))
	if got != want {
		t.Error("final diverged from serial under quarantine degradation")
	}
	quarantined := false
	for _, w := range srv.Pool().Workers() {
		if w.Name == "saboteur" && w.State == fleet.WorkerQuarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Error("saboteur worker never quarantined")
	}
	if srv.Pool().Fallbacks() == 0 {
		t.Error("no in-process fallback despite a fully quarantined fleet")
	}
	wcancel()
	select {
	case <-workerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("worker runtime did not exit on cancel")
	}
}

// TestRemoteOnlyFallsBackInProcess: a remote-only daemon with zero
// healthy remote workers must not stall — every unit degrades to
// in-process evaluation and the final stays byte-identical.
func TestRemoteOnlyFallsBackInProcess(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: -1, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	j, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateDone)
	if srv.Pool().Fallbacks() == 0 {
		t.Error("remote-only daemon with no workers reported no fallbacks")
	}
	got := stripNotes(resultOf(t, srv, j.ID))
	want := stripNotes(serialFinal(t, "ep"))
	if got != want {
		t.Error("in-process fallback composed a different final")
	}
}

// TestEventStreamResume: the events endpoint numbers events and
// ?from=N resumes the replay exactly after the last-seen sequence
// number — the server half of fpmixctl watch's reconnect.
func TestEventStreamResume(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: 4, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	j, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateDone)

	full := fetchEvents(t, ts.URL, j.ID, 0)
	if len(full) < 3 {
		t.Fatalf("only %d events; need a few to split the stream", len(full))
	}
	for i, e := range full {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	mid := full[len(full)/2].Seq
	tail := fetchEvents(t, ts.URL, j.ID, mid+1)
	if len(tail) != len(full)-mid {
		t.Fatalf("resume from %d returned %d events, want %d", mid+1, len(tail), len(full)-mid)
	}
	for i, e := range tail {
		if e.Seq != mid+1+i {
			t.Fatalf("resumed event %d has seq %d, want %d", i, e.Seq, mid+1+i)
		}
	}
	// Far past the end: nothing to replay, just the end marker (no
	// events with a seq).
	if late := fetchEvents(t, ts.URL, j.ID, full[len(full)-1].Seq+100); len(late) != 0 {
		t.Fatalf("resume past the end replayed %d events", len(late))
	}
}

// fetchEvents drains one events stream (terminated by the "end"
// marker) and returns the seq-carrying events.
func fetchEvents(t *testing.T, base, id string, from int) []Event {
	t.Helper()
	url := fmt.Sprintf("%s/api/v1/jobs/%s/events", base, id)
	if from > 0 {
		url += fmt.Sprintf("?from=%d", from)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %s", resp.Status)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Type == "end" {
			return out
		}
		out = append(out, e)
	}
	t.Fatal("stream ended without end marker")
	return nil
}
