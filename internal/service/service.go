// Package service glues the fpmixd pieces together: the durable job
// store (internal/jobs), the sharded-evaluation fleet (internal/fleet)
// and the search coordinator (internal/search). One Server owns one
// store directory, one shared cross-job verdict cache and one worker
// pool; every submitted job runs the exact serial search trajectory —
// the coordinator stays in-process and only unit evaluation is sharded
// — so a job's final configuration is byte-identical to what a serial
// fpsearch run would compose.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
)

// Options configure a server.
type Options struct {
	// Dir roots the job store (and the shared verdict cache file).
	Dir string
	// Workers is the in-process worker count (default 4). Negative means
	// zero in-process workers — a remote-only daemon whose evaluations
	// all run in fpmixworker processes (falling back in-process only
	// when no healthy remote worker remains).
	Workers int
	// DrainTimeout bounds graceful shutdown: Close stops granting new
	// remote leases, waits up to this long for in-flight remote units to
	// deliver (their verdicts journal), then requeues whatever remains.
	// Zero skips the wait.
	DrainTimeout time.Duration
	// Fleet tunes failure detection (zero values take fleet defaults).
	// The service always enables the fleet's in-process fallback: a
	// daemon whose whole fleet dies or quarantines degrades to local
	// evaluation instead of failing jobs.
	Fleet fleet.Options
}

// Server runs search jobs against a worker fleet.
type Server struct {
	store *jobs.Store
	cache *jobs.Cache
	pool  *fleet.Pool
	opts  Options

	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	streams map[string]*stream
	closing bool
	crashed bool
	wg      sync.WaitGroup
}

// New opens (or recovers) a server over opts.Dir: jobs a previous
// incarnation left running re-queue at store open and relaunch
// immediately, resuming from their checkpoint journals.
func New(opts Options) (*Server, error) {
	switch {
	case opts.Workers == 0:
		opts.Workers = 4
	case opts.Workers < 0:
		opts.Workers = 0 // remote-only
	}
	opts.Fleet.Fallback = true
	store, err := jobs.Open(opts.Dir)
	if err != nil {
		return nil, err
	}
	cache, err := jobs.OpenCache(filepath.Join(opts.Dir, "verdicts.cache"))
	if err != nil {
		return nil, err
	}
	pool := fleet.New(opts.Fleet)
	pool.Start(opts.Workers)
	s := &Server{
		store: store, cache: cache, pool: pool, opts: opts,
		cancels: make(map[string]context.CancelFunc),
		streams: make(map[string]*stream),
	}
	// Relaunch everything a previous incarnation left unfinished: jobs
	// recovered running→queued at store open, and jobs that were queued
	// but never started.
	for _, j := range store.List() {
		if j.State == jobs.StateQueued {
			s.launch(j.ID)
		}
	}
	return s, nil
}

// Store exposes the job store (read-side: Get, List, paths).
func (s *Server) Store() *jobs.Store { return s.store }

// Pool exposes the worker registry.
func (s *Server) Pool() *fleet.Pool { return s.pool }

// CacheLen reports the shared verdict cache's size.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Submit validates, persists and launches a job.
func (s *Server) Submit(spec jobs.Spec) (jobs.Job, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return jobs.Job{}, fmt.Errorf("service: server is shutting down")
	}
	s.mu.Unlock()
	j, err := s.store.Create(spec)
	if err != nil {
		return jobs.Job{}, err
	}
	s.launch(j.ID)
	return j, nil
}

// Cancel stops a job: a running one is interrupted (its in-flight units
// settle as interrupted and the search stops), a queued one just flips
// state.
func (s *Server) Cancel(id string) error {
	j, ok := s.store.Get(id)
	if !ok {
		return fmt.Errorf("service: no job %s", id)
	}
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		return nil
	}
	if j.State == jobs.StateQueued {
		return s.store.Transition(id, jobs.StateCancelled, "")
	}
	if j.State.Terminal() {
		return fmt.Errorf("service: job %s already %s", id, j.State)
	}
	return nil
}

// Summary loads a finished job's search summary.
func (s *Server) Summary(id string) (*search.Summary, error) {
	data, err := os.ReadFile(s.store.SummaryPath(id))
	if err != nil {
		return nil, err
	}
	var sum search.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// Close shuts the server down gracefully: remote leases drain first —
// no new units ship over the wire, and in-flight remote units get up to
// Options.DrainTimeout to deliver, so their verdicts reach the journals
// — then running jobs are interrupted and re-queued (the journals keep
// every settled verdict, so the next incarnation resumes them), any
// remote lease still outstanding is broken and requeued, and the fleet
// and cache close. The release/interrupt steps run strictly after the
// job contexts are cancelled: an interrupted verdict delivered to a
// live search would silently drop its piece from the final.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.pool.DrainRemote()
	if s.opts.DrainTimeout > 0 {
		if left := s.pool.AwaitRemoteIdle(s.opts.DrainTimeout); left > 0 {
			// Timed out: the stragglers are requeued below and re-evaluated
			// by the next incarnation.
			_ = left
		}
	}
	s.mu.Lock()
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	s.pool.ReleaseRemoteLeases()
	s.pool.InterruptQueued()
	s.wg.Wait()
	s.pool.Close()
	return s.cache.Close()
}

// crash simulates the server dying mid-run: job goroutines stop without
// any state transition or requeue, leaving "running" records on disk
// exactly as a kill -9 would. The next New over the same dir must
// recover them. Test hook.
func (s *Server) crash() {
	s.mu.Lock()
	s.crashed = true
	s.closing = true
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	// Units leased to remote workers (or queued with none to take them)
	// would otherwise block their coordinators forever: break them so
	// wg.Wait terminates. Safe — the contexts above are already
	// cancelled, so the interrupted verdicts reach only dying searches.
	s.pool.ReleaseRemoteLeases()
	s.pool.InterruptQueued()
	s.wg.Wait()
	s.pool.Close()
	s.cache.Close()
}

// launch starts the job's run goroutine.
func (s *Server) launch(id string) {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancels[id] = cancel
	st := newStream()
	s.streams[id] = st
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runJob(id, ctx, cancel, st)
}

// runJob drives one job through its lifecycle.
func (s *Server) runJob(id string, ctx context.Context, cancel context.CancelFunc, st *stream) {
	defer s.wg.Done()
	defer cancel()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()
	if err := s.store.Transition(id, jobs.StateRunning, ""); err != nil {
		st.close()
		return
	}
	res, sh, err := s.execute(ctx, id, st)
	s.mu.Lock()
	crashed, closing := s.crashed, s.closing
	s.mu.Unlock()
	if crashed {
		// Simulated death: leave the on-disk state "running" for the next
		// incarnation's recovery. (A real crash never reaches here at all.)
		return
	}
	switch {
	case err != nil:
		s.store.Transition(id, jobs.StateFailed, err.Error())
	case res.Interrupted && closing:
		// Graceful shutdown: back to queued; the journal carries the work.
		s.store.Requeue(id)
	case res.Interrupted:
		s.store.Transition(id, jobs.StateCancelled, "")
	default:
		if werr := s.writeArtifacts(id, res, sh); werr != nil {
			s.store.Transition(id, jobs.StateFailed, werr.Error())
		} else {
			s.store.Transition(id, jobs.StateDone, "")
		}
	}
	st.close()
}

// execute runs the search itself: target build, sensitivity profile,
// journal open (fresh or resumed), unit runner registration with the
// fleet, then the coordinator. Options mirror fpsearch's defaults so a
// service job composes the identical final configuration.
func (s *Server) execute(ctx context.Context, id string, st *stream) (*search.Result, *shadow.Profile, error) {
	j, ok := s.store.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("service: no job %s", id)
	}
	target, err := j.Spec.Build()
	if err != nil {
		return nil, nil, err
	}
	sensTol, err := j.Spec.SensTol()
	if err != nil {
		return nil, nil, err
	}
	var sh *shadow.Profile
	if !j.Spec.NoSens {
		if sh, err = shadow.Collect(j.Name, target.Module, target.MaxSteps); err != nil {
			return nil, nil, err
		}
	}
	journal, resumed, err := s.store.OpenJournal(id, j.Fingerprint())
	if err != nil {
		return nil, nil, err
	}
	defer journal.Close()
	// Group-commit the journal: during sequential descent every settle
	// is a write-batch boundary, and an fsync per verdict serializes
	// ~ms of disk wait into the settle loop. A crash inside the window
	// re-runs at most the last window's units on resume.
	journal.SetGroupCommit(100 * time.Millisecond)
	if resumed > 0 {
		st.note(fmt.Sprintf("resuming %d settled verdicts from the journal", resumed))
	}
	mode := search.EngineFork
	if j.Spec.NoFork {
		mode = search.EngineOn
	}
	var chaos *faultinject.Injector
	if j.Spec.Chaos != 0 {
		chaos = faultinject.New(j.Spec.Chaos, faultinject.DefaultRates, 0)
	}
	runner, err := search.NewUnitRunner(target, search.Options{
		Engine:  mode,
		Context: ctx,
		Chaos:   chaos,
	})
	if err != nil {
		return nil, nil, err
	}
	handle := s.pool.Register(id, runner)
	inflight := s.opts.Workers
	if inflight <= 0 {
		// Remote-only daemon: keep enough units in flight to feed a
		// worker fleet whose size the daemon cannot know up front —
		// batched leasing hands each remote worker several units per
		// claim, so the queue must run deep enough to fill every
		// worker's prefetch buffer without starving its peers.
		inflight = 32
	}
	res, err := search.Run(target, search.Options{
		Workers:       inflight,
		Granularity:   j.Spec.Kind(),
		BinarySplit:   true,
		Prioritize:    true,
		Engine:        mode,
		NoPrune:       j.Spec.NoPrune,
		NoProve:       j.Spec.NoProve,
		Shadow:        sh,
		SensThreshold: sensTol,
		Context:       ctx,
		Checkpoint:    journal,
		Units:         handle,
		Cache:         s.cache.Scope(j.Image),
		Observe:       st.observe,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sh, nil
}

// writeArtifacts persists a finished job's final configuration (in the
// exchange format, sensitivity-annotated like fpsearch -o) and its
// machine-readable search summary.
func (s *Server) writeArtifacts(id string, res *search.Result, sh *shadow.Profile) error {
	j, _ := s.store.Get(id)
	cfg := res.Final
	if sh != nil {
		shadow.AnnotateConfig(sh, cfg)
	}
	f, err := os.Create(s.store.ResultPath(id))
	if err != nil {
		return err
	}
	if err := cfg.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sum := search.Summarize(j.Name, res)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.store.SummaryPath(id), append(data, '\n'), 0o644)
}
