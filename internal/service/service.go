// Package service glues the fpmixd pieces together: the durable job
// store (internal/jobs), the sharded-evaluation fleet (internal/fleet)
// and the search coordinator (internal/search). One Server owns one
// store directory, one shared cross-job verdict cache and one worker
// pool; every submitted job runs the exact serial search trajectory —
// the coordinator stays in-process and only unit evaluation is sharded
// — so a job's final configuration is byte-identical to what a serial
// fpsearch run would compose.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fpmix/internal/faultinject"
	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
)

// Options configure a server.
type Options struct {
	// Dir roots the job store (and the shared verdict cache file).
	Dir string
	// Workers is the in-process worker count (default 4); it also bounds
	// how many units one search keeps in flight.
	Workers int
	// Fleet tunes failure detection (zero values take fleet defaults).
	Fleet fleet.Options
}

// Server runs search jobs against a worker fleet.
type Server struct {
	store *jobs.Store
	cache *jobs.Cache
	pool  *fleet.Pool
	opts  Options

	mu      sync.Mutex
	cancels map[string]context.CancelFunc
	streams map[string]*stream
	closing bool
	crashed bool
	wg      sync.WaitGroup
}

// New opens (or recovers) a server over opts.Dir: jobs a previous
// incarnation left running re-queue at store open and relaunch
// immediately, resuming from their checkpoint journals.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	store, err := jobs.Open(opts.Dir)
	if err != nil {
		return nil, err
	}
	cache, err := jobs.OpenCache(filepath.Join(opts.Dir, "verdicts.cache"))
	if err != nil {
		return nil, err
	}
	pool := fleet.New(opts.Fleet)
	pool.Start(opts.Workers)
	s := &Server{
		store: store, cache: cache, pool: pool, opts: opts,
		cancels: make(map[string]context.CancelFunc),
		streams: make(map[string]*stream),
	}
	// Relaunch everything a previous incarnation left unfinished: jobs
	// recovered running→queued at store open, and jobs that were queued
	// but never started.
	for _, j := range store.List() {
		if j.State == jobs.StateQueued {
			s.launch(j.ID)
		}
	}
	return s, nil
}

// Store exposes the job store (read-side: Get, List, paths).
func (s *Server) Store() *jobs.Store { return s.store }

// Pool exposes the worker registry.
func (s *Server) Pool() *fleet.Pool { return s.pool }

// CacheLen reports the shared verdict cache's size.
func (s *Server) CacheLen() int { return s.cache.Len() }

// Submit validates, persists and launches a job.
func (s *Server) Submit(spec jobs.Spec) (jobs.Job, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return jobs.Job{}, fmt.Errorf("service: server is shutting down")
	}
	s.mu.Unlock()
	j, err := s.store.Create(spec)
	if err != nil {
		return jobs.Job{}, err
	}
	s.launch(j.ID)
	return j, nil
}

// Cancel stops a job: a running one is interrupted (its in-flight units
// settle as interrupted and the search stops), a queued one just flips
// state.
func (s *Server) Cancel(id string) error {
	j, ok := s.store.Get(id)
	if !ok {
		return fmt.Errorf("service: no job %s", id)
	}
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		return nil
	}
	if j.State == jobs.StateQueued {
		return s.store.Transition(id, jobs.StateCancelled, "")
	}
	if j.State.Terminal() {
		return fmt.Errorf("service: job %s already %s", id, j.State)
	}
	return nil
}

// Summary loads a finished job's search summary.
func (s *Server) Summary(id string) (*search.Summary, error) {
	data, err := os.ReadFile(s.store.SummaryPath(id))
	if err != nil {
		return nil, err
	}
	var sum search.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// Close shuts the server down gracefully: running jobs are interrupted
// and re-queued (their journals keep every settled verdict, so the next
// incarnation resumes them), then the fleet and cache close.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
	return s.cache.Close()
}

// crash simulates the server dying mid-run: job goroutines stop without
// any state transition or requeue, leaving "running" records on disk
// exactly as a kill -9 would. The next New over the same dir must
// recover them. Test hook.
func (s *Server) crash() {
	s.mu.Lock()
	s.crashed = true
	s.closing = true
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
	s.cache.Close()
}

// launch starts the job's run goroutine.
func (s *Server) launch(id string) {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancels[id] = cancel
	st := newStream()
	s.streams[id] = st
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runJob(id, ctx, cancel, st)
}

// runJob drives one job through its lifecycle.
func (s *Server) runJob(id string, ctx context.Context, cancel context.CancelFunc, st *stream) {
	defer s.wg.Done()
	defer cancel()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()
	if err := s.store.Transition(id, jobs.StateRunning, ""); err != nil {
		st.close()
		return
	}
	res, sh, err := s.execute(ctx, id, st)
	s.mu.Lock()
	crashed, closing := s.crashed, s.closing
	s.mu.Unlock()
	if crashed {
		// Simulated death: leave the on-disk state "running" for the next
		// incarnation's recovery. (A real crash never reaches here at all.)
		return
	}
	switch {
	case err != nil:
		s.store.Transition(id, jobs.StateFailed, err.Error())
	case res.Interrupted && closing:
		// Graceful shutdown: back to queued; the journal carries the work.
		s.store.Requeue(id)
	case res.Interrupted:
		s.store.Transition(id, jobs.StateCancelled, "")
	default:
		if werr := s.writeArtifacts(id, res, sh); werr != nil {
			s.store.Transition(id, jobs.StateFailed, werr.Error())
		} else {
			s.store.Transition(id, jobs.StateDone, "")
		}
	}
	st.close()
}

// execute runs the search itself: target build, sensitivity profile,
// journal open (fresh or resumed), unit runner registration with the
// fleet, then the coordinator. Options mirror fpsearch's defaults so a
// service job composes the identical final configuration.
func (s *Server) execute(ctx context.Context, id string, st *stream) (*search.Result, *shadow.Profile, error) {
	j, ok := s.store.Get(id)
	if !ok {
		return nil, nil, fmt.Errorf("service: no job %s", id)
	}
	target, err := j.Spec.Build()
	if err != nil {
		return nil, nil, err
	}
	sensTol, err := j.Spec.SensTol()
	if err != nil {
		return nil, nil, err
	}
	var sh *shadow.Profile
	if !j.Spec.NoSens {
		if sh, err = shadow.Collect(j.Name, target.Module, target.MaxSteps); err != nil {
			return nil, nil, err
		}
	}
	journal, resumed, err := s.store.OpenJournal(id, j.Fingerprint())
	if err != nil {
		return nil, nil, err
	}
	defer journal.Close()
	if resumed > 0 {
		st.note(fmt.Sprintf("resuming %d settled verdicts from the journal", resumed))
	}
	mode := search.EngineFork
	if j.Spec.NoFork {
		mode = search.EngineOn
	}
	var chaos *faultinject.Injector
	if j.Spec.Chaos != 0 {
		chaos = faultinject.New(j.Spec.Chaos, faultinject.DefaultRates, 0)
	}
	runner, err := search.NewUnitRunner(target, search.Options{
		Engine:  mode,
		Context: ctx,
		Chaos:   chaos,
	})
	if err != nil {
		return nil, nil, err
	}
	handle := s.pool.Register(id, runner)
	res, err := search.Run(target, search.Options{
		Workers:       s.opts.Workers,
		Granularity:   j.Spec.Kind(),
		BinarySplit:   true,
		Prioritize:    true,
		Engine:        mode,
		NoPrune:       j.Spec.NoPrune,
		NoProve:       j.Spec.NoProve,
		Shadow:        sh,
		SensThreshold: sensTol,
		Context:       ctx,
		Checkpoint:    journal,
		Units:         handle,
		Cache:         s.cache.Scope(j.Image),
		Observe:       st.observe,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sh, nil
}

// writeArtifacts persists a finished job's final configuration (in the
// exchange format, sensitivity-annotated like fpsearch -o) and its
// machine-readable search summary.
func (s *Server) writeArtifacts(id string, res *search.Result, sh *shadow.Profile) error {
	j, _ := s.store.Get(id)
	cfg := res.Final
	if sh != nil {
		shadow.AnnotateConfig(sh, cfg)
	}
	f, err := os.Create(s.store.ResultPath(id))
	if err != nil {
		return err
	}
	if err := cfg.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sum := search.Summarize(j.Name, res)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.store.SummaryPath(id), append(data, '\n'), 0o644)
}
