package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
)

// TestHTTPAPI exercises the whole HTTP surface against a live server:
// submit, list, status (with summary), the progress stream, the result
// download, the worker registry and the chaos kill endpoint.
func TestHTTPAPI(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: 4, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	// Submit a kernel job.
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kernel": "ep"}`))
	if err != nil {
		t.Fatal(err)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || j.ID == "" || j.Name != "ep.W" {
		t.Fatalf("submit: %s, job %+v", resp.Status, j)
	}

	// A malformed spec is rejected with a diagnostic.
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kernel": "ep", "granularity": "nibble"}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr map[string]string
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(apiErr["error"], "granularity") {
		t.Fatalf("bad spec: %s %v", resp.Status, apiErr)
	}

	// The progress stream replays history and follows to the end marker.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	evals, end := 0, false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		switch e.Type {
		case "eval":
			evals++
		case "end":
			end = true
		}
	}
	resp.Body.Close()
	if !end || evals == 0 {
		t.Fatalf("stream: %d evals, end=%v", evals, end)
	}

	// Status must now carry the summary.
	waitState(t, srv, j.ID, jobs.StateDone)
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Job.State != jobs.StateDone || st.Summary == nil || st.Summary.Tested == 0 {
		t.Fatalf("status: %+v", st)
	}

	// Result download matches the stored artifact.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || buf.Len() == 0 {
		t.Fatalf("result: %s (%d bytes)", resp.Status, buf.Len())
	}
	if got := resultOf(t, srv, j.ID); got != buf.String() {
		t.Error("downloaded result differs from the stored artifact")
	}

	// List shows the job; workers shows four; kill flips one to dead.
	var list []jobs.Job
	resp, _ = http.Get(ts.URL + "/api/v1/jobs")
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("list: %+v", list)
	}
	var ws []fleet.WorkerInfo
	resp, _ = http.Get(ts.URL + "/api/v1/workers")
	json.NewDecoder(resp.Body).Decode(&ws)
	resp.Body.Close()
	if len(ws) != 4 {
		t.Fatalf("workers: %+v", ws)
	}
	resp, err = http.Post(ts.URL+"/api/v1/workers/"+ws[0].ID+"/kill", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill: %s", resp.Status)
	}
	if srv.Pool().Alive() != 3 {
		t.Errorf("Alive() = %d after kill", srv.Pool().Alive())
	}

	// Unknown job IDs 404 everywhere.
	for _, path := range []string{"/api/v1/jobs/j9999", "/api/v1/jobs/j9999/events", "/api/v1/jobs/j9999/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %s, want 404", path, resp.Status)
		}
	}
}

// TestHTTPCancel cancels through the API.
func TestHTTPCancel(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: 2, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"kernel": "lu"}`))
	if err != nil {
		t.Fatal(err)
	}
	var j jobs.Job
	json.NewDecoder(resp.Body).Decode(&j)
	resp.Body.Close()
	resp, err = http.Post(fmt.Sprintf("%s/api/v1/jobs/%s/cancel", ts.URL, j.ID), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		jj, _ := srv.Store().Get(j.ID)
		if jj.State.Terminal() {
			if jj.State != jobs.StateCancelled {
				t.Fatalf("ended %s, want cancelled", jj.State)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cancel never landed")
}
