package service

import (
	"sync"

	"fpmix/internal/search"
)

// Event is one progress record on a job's stream: an evaluation, a
// server note, or the end-of-stream marker. Seq numbers events 1..n in
// emission order; a client that loses its connection reconnects with
// ?from=<last seen seq + 1> and resumes without gaps or duplicates
// (the end marker carries no Seq — it is a stream state, not history).
type Event struct {
	Seq  int                `json:"seq,omitempty"`
	Type string             `json:"type"` // "eval", "note", "end"
	Eval *search.EvalRecord `json:"eval,omitempty"`
	Note string             `json:"note,omitempty"`
}

// stream fans a job's Eval records out to any number of subscribers,
// replaying history to late joiners. The search's Observe hook calls
// observe from the coordinator goroutine; subscribers drain buffered
// channels, and a subscriber that falls a full buffer behind is dropped
// rather than allowed to stall the search.
type stream struct {
	mu      sync.Mutex
	history []Event
	subs    map[chan Event]struct{}
	closed  bool
}

func newStream() *stream {
	return &stream{subs: make(map[chan Event]struct{})}
}

func (st *stream) observe(ev search.Eval) {
	r := search.Record(ev)
	st.add(Event{Type: "eval", Eval: &r})
}

func (st *stream) note(msg string) {
	st.add(Event{Type: "note", Note: msg})
}

func (st *stream) add(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	e.Seq = len(st.history) + 1
	st.history = append(st.history, e)
	for ch := range st.subs {
		select {
		case ch <- e:
		default:
			delete(st.subs, ch) // subscriber too slow: drop it
			close(ch)
		}
	}
}

// subscribe returns the history so far and a live channel (closed at
// end of stream). nil channel means the stream already ended — replay
// is complete.
func (st *stream) subscribe() ([]Event, chan Event) {
	return st.subscribeFrom(0)
}

// subscribeFrom is subscribe with the replay restricted to events with
// Seq >= from — the reconnect path: a client that saw events up to seq
// n resumes with from = n+1.
func (st *stream) subscribeFrom(from int) ([]Event, chan Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	replay := st.history
	if from > 1 {
		if from > len(replay) {
			replay = nil
		} else {
			replay = replay[from-1:]
		}
	}
	replay = append([]Event(nil), replay...)
	if st.closed {
		return replay, nil
	}
	ch := make(chan Event, 1024)
	st.subs[ch] = struct{}{}
	return replay, ch
}

func (st *stream) unsubscribe(ch chan Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.subs[ch]; ok {
		delete(st.subs, ch)
		close(ch)
	}
}

func (st *stream) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	for ch := range st.subs {
		close(ch)
	}
	st.subs = nil
}

// events snapshots the history (for status endpoints).
func (st *stream) events() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.history)
}
