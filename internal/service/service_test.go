package service

import (
	"bytes"
	"os"
	"regexp"
	"sync"
	"testing"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/fleet"
	"fpmix/internal/jobs"
	"fpmix/internal/kernels"
	"fpmix/internal/search"
	"fpmix/internal/shadow"
)

// fastFleet keeps heartbeats quick but the expiry generous: service
// tests saturate every core with evaluation runs, so a tight expiry
// would let the monitor declare starved-but-healthy workers dead. The
// expiry path itself is pinned in internal/fleet with idle workers.
var fastFleet = fleet.Options{Heartbeat: 50 * time.Millisecond, Expiry: 30 * time.Second}

var notesRE = regexp.MustCompile(`(?m)[ \t]*;[^\n]*`)

// stripNotes drops exchange-format comment annotations, leaving only
// the precision flags the byte-identity pin compares.
func stripNotes(s string) string { return notesRE.ReplaceAllString(s, "") }

// serialFinal runs the serial in-process search with the exact options
// a service job uses and returns the exchange-format final.
var serialMu sync.Mutex
var serialCache = map[string]string{}

func serialFinal(t *testing.T, name string) string {
	t.Helper()
	serialMu.Lock()
	defer serialMu.Unlock()
	if s, ok := serialCache[name]; ok {
		return s
	}
	b, err := kernels.Get(name, kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shadow.Collect(name+".W", b.Module, b.MaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	tgt := search.Target{Module: b.Module, Verify: b.Verify, MaxSteps: b.MaxSteps, Base: b.Base}
	res, err := search.Run(tgt, search.Options{
		Workers: 4, Granularity: config.KindInsn,
		BinarySplit: true, Prioritize: true, Engine: search.EngineFork,
		Shadow: sh, SensThreshold: b.SensTol,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Final.Write(&buf); err != nil {
		t.Fatal(err)
	}
	serialCache[name] = buf.String()
	return serialCache[name]
}

func waitState(t *testing.T, srv *Server, id string, want jobs.State) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		j, ok := srv.Store().Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Job{}
}

func resultOf(t *testing.T, srv *Server, id string) string {
	t.Helper()
	data, err := os.ReadFile(srv.Store().ResultPath(id))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// testKernels is the identity-pin matrix: every registered kernel at
// class W (the MPI variants carry no verification routine, so they are
// not searchable targets). -short trims to a representative subset.
func testKernels() []string {
	if testing.Short() {
		return []string{"ep", "mg", "cg"}
	}
	return kernels.Names()
}

// TestServiceFinalByteIdentical is the sharded identity pin: a service
// job over ≥4 workers composes a final configuration byte-identical
// (notes stripped) to serial search.Run — in the plain case for every
// kernel, and with a worker killed mid-run and the server crashed and
// restarted mid-run (resuming from the job store) on representative
// kernels.
func TestServiceFinalByteIdentical(t *testing.T) {
	t.Run("plain", func(t *testing.T) {
		for _, name := range testKernels() {
			name := name
			t.Run(name, func(t *testing.T) {
				srv, err := New(Options{Dir: t.TempDir(), Workers: 4, Fleet: fastFleet})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				j, err := srv.Submit(jobs.Spec{Kernel: name})
				if err != nil {
					t.Fatal(err)
				}
				waitState(t, srv, j.ID, jobs.StateDone)
				got := stripNotes(resultOf(t, srv, j.ID))
				want := stripNotes(serialFinal(t, name))
				if got != want {
					t.Errorf("sharded final diverged from serial for %s.W", name)
				}
				sum, err := srv.Summary(j.ID)
				if err != nil {
					t.Fatal(err)
				}
				if sum.Tested == 0 {
					t.Error("summary reports no evaluations — units never reached the fleet")
				}
			})
		}
	})

	t.Run("worker-killed", func(t *testing.T) {
		for _, name := range []string{"ep", "mg"} {
			name := name
			t.Run(name, func(t *testing.T) {
				srv, err := New(Options{Dir: t.TempDir(), Workers: 4, Fleet: fastFleet})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				j, err := srv.Submit(jobs.Spec{Kernel: name})
				if err != nil {
					t.Fatal(err)
				}
				// Kill a busy worker mid-run: its lease must break, the shard
				// reassign, and the final must not change.
				killed := false
				deadline := time.Now().Add(time.Minute)
				for !killed && time.Now().Before(deadline) {
					if jj, _ := srv.Store().Get(j.ID); jj.State.Terminal() {
						break
					}
					for _, w := range srv.Pool().Workers() {
						if w.State == fleet.WorkerBusy {
							if err := srv.Pool().Kill(w.ID); err != nil {
								t.Fatal(err)
							}
							killed = true
							break
						}
					}
					time.Sleep(time.Millisecond)
				}
				if !killed {
					t.Fatal("no busy worker to kill before the job finished")
				}
				waitState(t, srv, j.ID, jobs.StateDone)
				if alive := srv.Pool().Alive(); alive != 3 {
					t.Errorf("Alive() = %d after killing one of four workers", alive)
				}
				got := stripNotes(resultOf(t, srv, j.ID))
				want := stripNotes(serialFinal(t, name))
				if got != want {
					t.Errorf("final diverged from serial after a worker kill for %s.W", name)
				}
			})
		}
	})

	t.Run("server-restarted", func(t *testing.T) {
		for _, name := range []string{"ep", "mg"} {
			name := name
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				srv1, err := New(Options{Dir: dir, Workers: 4, Fleet: fastFleet})
				if err != nil {
					t.Fatal(err)
				}
				j, err := srv1.Submit(jobs.Spec{Kernel: name})
				if err != nil {
					t.Fatal(err)
				}
				// Let the run settle some verdicts, then die without any state
				// transition — the on-disk record must still say "running".
				deadline := time.Now().Add(time.Minute)
				for time.Now().Before(deadline) {
					srv1.mu.Lock()
					st := srv1.streams[j.ID]
					srv1.mu.Unlock()
					if st != nil && st.events() >= 5 {
						break
					}
					time.Sleep(time.Millisecond)
				}
				srv1.crash()
				st2, err := jobs.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				rec, ok := st2.Get(j.ID)
				if !ok {
					t.Fatal("job lost across crash")
				}
				if rec.Recovered != 1 || rec.State != jobs.StateQueued {
					t.Fatalf("crash left state %s recovered %d, want queued/1 after recovery open", rec.State, rec.Recovered)
				}

				// A fresh server over the same dir relaunches the job from the
				// store, resuming its journal.
				srv2, err := New(Options{Dir: dir, Workers: 4, Fleet: fastFleet})
				if err != nil {
					t.Fatal(err)
				}
				defer srv2.Close()
				waitState(t, srv2, j.ID, jobs.StateDone)
				sum, err := srv2.Summary(j.ID)
				if err != nil {
					t.Fatal(err)
				}
				if sum.Resumed == 0 && sum.CacheHits == 0 {
					t.Error("restart replayed nothing: neither journal verdicts nor cache hits")
				}
				got := stripNotes(resultOf(t, srv2, j.ID))
				want := stripNotes(serialFinal(t, name))
				if got != want {
					t.Errorf("final diverged from serial across a server restart for %s.W", name)
				}
			})
		}
	})
}

// TestServiceCrossJobDedup: a second identical submission is a new job
// (fresh ID, fresh journal) but inherits the first job's verdicts from
// the shared cache — the summary must report cache-served provenance.
func TestServiceCrossJobDedup(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: 4, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	j1, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j1.ID, jobs.StateDone)
	j2, err := srv.Submit(jobs.Spec{Kernel: "ep"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID == j1.ID {
		t.Fatal("identical submissions collapsed into one job")
	}
	if j2.Image != j1.Image {
		t.Fatal("identical submissions got different cache scopes")
	}
	waitState(t, srv, j2.ID, jobs.StateDone)
	sum1, err := srv.Summary(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := srv.Summary(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.CacheHits < 1 {
		t.Errorf("second identical job reports %d cache hits, want ≥1", sum2.CacheHits)
	}
	if sum2.Tested >= sum1.Tested {
		t.Errorf("dedup saved nothing: %d evaluations vs %d on the first run", sum2.Tested, sum1.Tested)
	}
	if sum2.Provenance["memo"]+sum2.Provenance["proved"] < 1 {
		t.Errorf("no cache-served provenance in %v", sum2.Provenance)
	}
	if stripNotes(resultOf(t, srv, j1.ID)) != stripNotes(resultOf(t, srv, j2.ID)) {
		t.Error("cache-served job composed a different final")
	}
}

// TestServiceCancel: cancelling a running job interrupts it.
func TestServiceCancel(t *testing.T) {
	srv, err := New(Options{Dir: t.TempDir(), Workers: 2, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	j, err := srv.Submit(jobs.Spec{Kernel: "mg"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateRunning)
	if err := srv.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		jj, _ := srv.Store().Get(j.ID)
		if jj.State.Terminal() {
			if jj.State != jobs.StateCancelled {
				t.Fatalf("cancelled job ended %s", jj.State)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cancel never landed")
}

// TestServiceGracefulShutdownRequeues: Close re-queues running jobs so
// the next incarnation resumes them.
func TestServiceGracefulShutdownRequeues(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{Dir: dir, Workers: 4, Fleet: fastFleet})
	if err != nil {
		t.Fatal(err)
	}
	j, err := srv.Submit(jobs.Spec{Kernel: "mg"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, j.ID, jobs.StateRunning)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := jobs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jj, ok := st.Get(j.ID)
	if !ok {
		t.Fatal("job lost across graceful shutdown")
	}
	if jj.State != jobs.StateQueued || jj.Recovered != 1 {
		t.Errorf("graceful shutdown left state %s recovered %d, want queued/1", jj.State, jj.Recovered)
	}
}
