// Package faultinject is a deterministic, seeded fault-injection layer
// for hardening the long-running evaluation loops: it decides, as a pure
// function of (seed, evaluation key, attempt), whether an evaluation
// attempt is hit by an artificial fault and which kind — a worker panic,
// a stalled (hung) run, a flaky verification verdict, or a vm trap armed
// mid-run — and lets MPI harnesses arm deterministic rank departures.
//
// The searcher treats injected faults as transient infrastructure
// failures: the attempt is retried and, because the injector only faults
// the first attempt of any key, a bounded retry always reaches a clean
// attempt. A chaos run therefore terminates deterministically and settles
// every verdict exactly as the fault-free run would — which is the
// property the chaos differential tests pin.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"fpmix/internal/vm"
)

// Kind classifies an injected fault.
type Kind uint8

// Injected fault kinds.
const (
	// KindNone: the attempt runs clean.
	KindNone Kind = iota
	// KindPanic: the evaluation goroutine panics with an Injected value
	// mid-attempt (the recover/retry path in the worker pool).
	KindPanic
	// KindHang: the attempt stalls for Decision.StallFor before
	// producing anything — a slow or hung run, cut short by the
	// per-evaluation wall-clock bound when one is set.
	KindHang
	// KindFlaky: the run executes normally but a passing verification
	// verdict is reported as failing — a nondeterministic verifier. The
	// searcher's failing-verdict confirmation retry heals and flags it.
	KindFlaky
	// KindTrap: a vm trap (vm.FaultInjected) is armed to fire after
	// Decision.TrapAfter executed steps, simulating an FP trap at a
	// deterministic point of the run. Arming routes the machine to the
	// VM's instrumented per-step dispatch tier, so the trap fires at the
	// exact step count and instruction PC regardless of the compiled
	// engine's block batching.
	KindTrap
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindFlaky:
		return "flaky"
	case KindTrap:
		return "trap"
	default:
		return "kind?"
	}
}

// Injected is the value injected panics carry; recover handlers match it
// to classify the crash as an injected infrastructure fault (transient)
// rather than a genuine bug.
type Injected struct {
	Key     string
	Attempt int
}

func (p Injected) String() string {
	return fmt.Sprintf("faultinject: injected panic (key %q, attempt %d)", p.Key, p.Attempt)
}

// Rates are per-kind injection probabilities (each in [0,1], summed to at
// most 1): the fraction of evaluation keys whose first attempt is hit by
// that fault kind.
type Rates struct {
	Panic, Hang, Flaky, Trap float64
}

// DefaultRates fault ~5% of evaluations with each kind (~20% total).
var DefaultRates = Rates{Panic: 0.05, Hang: 0.05, Flaky: 0.05, Trap: 0.05}

// DefaultStall is the default injected-hang duration.
const DefaultStall = 250 * time.Millisecond

// Decision is the fault chosen for one evaluation attempt.
type Decision struct {
	Kind Kind
	// StallFor is how long a KindHang attempt stalls.
	StallFor time.Duration
	// TrapAfter is the executed-step count at which a KindTrap fires
	// (vm.Machine.InjectTrapAfter); runs shorter than this complete
	// clean.
	TrapAfter uint64
}

// Stats counts the injector's activity.
type Stats struct {
	// Decisions is the number of Decide calls (evaluation attempts seen).
	Decisions int
	// Panics, Hangs, Flakes and Traps count the injected faults by kind.
	Panics, Hangs, Flakes, Traps int
}

// Total is the number of injected faults across all kinds.
func (s Stats) Total() int { return s.Panics + s.Hangs + s.Flakes + s.Traps }

// Injector decides injected faults deterministically from its seed. It is
// safe for concurrent use.
type Injector struct {
	seed  int64
	rates Rates
	stall time.Duration

	mu    sync.Mutex
	stats Stats
}

// New builds an injector. Zero rates fall back to DefaultRates as a
// whole; a zero stall falls back to DefaultStall.
func New(seed int64, rates Rates, stall time.Duration) *Injector {
	if rates == (Rates{}) {
		rates = DefaultRates
	}
	if stall <= 0 {
		stall = DefaultStall
	}
	return &Injector{seed: seed, rates: rates, stall: stall}
}

// Seed returns the injector's seed.
func (inj *Injector) Seed() int64 { return inj.seed }

// Decide returns the fault injected into the given attempt of the given
// evaluation key — a pure function of (seed, key, attempt), so chaos runs
// replay identically. Only the first attempt of a key is ever faulted:
// retries are guaranteed clean, so bounded retry terminates.
func (inj *Injector) Decide(key string, attempt int) Decision {
	d := inj.decide(key, attempt)
	inj.mu.Lock()
	inj.stats.Decisions++
	switch d.Kind {
	case KindPanic:
		inj.stats.Panics++
	case KindHang:
		inj.stats.Hangs++
	case KindFlaky:
		inj.stats.Flakes++
	case KindTrap:
		inj.stats.Traps++
	}
	inj.mu.Unlock()
	return d
}

func (inj *Injector) decide(key string, attempt int) Decision {
	if attempt != 0 {
		return Decision{}
	}
	h := inj.hash(key)
	// Top 53 bits → uniform in [0,1).
	roll := float64(h>>11) / float64(1<<53)
	r := inj.rates
	switch {
	case roll < r.Panic:
		return Decision{Kind: KindPanic}
	case roll < r.Panic+r.Hang:
		return Decision{Kind: KindHang, StallFor: inj.stall}
	case roll < r.Panic+r.Hang+r.Flaky:
		return Decision{Kind: KindFlaky}
	case roll < r.Panic+r.Hang+r.Flaky+r.Trap:
		// A second, independent hash picks the trap site: early enough
		// (within the first 50k steps) that any real kernel run hits it.
		after := 1 + inj.hash(key+"\x00site")%50_000
		return Decision{Kind: KindTrap, TrapAfter: after}
	}
	return Decision{}
}

// hash is FNV-64a over the seed and key, with a splitmix64 finalizer —
// FNV's high bits are visibly biased across similar keys, and the roll
// in decide uses exactly those bits.
func (inj *Injector) hash(key string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(uint64(inj.seed) >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(key))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats returns a snapshot of the injector's activity counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// ArmWorld arms fault injection on one rank's machine of an MPI run
// (mpi.RunWorldArmed's hook): at the trap rate, deterministically per
// (seed, key, rank), the rank is armed to trap mid-run — the departing
// rank then drives the communicator's abort/rank-departure semantics
// (collective mismatches, receives from departed ranks) while the
// surviving ranks fail cleanly instead of deadlocking.
func (inj *Injector) ArmWorld(key string, rank int, m *vm.Machine) {
	d := inj.decide(fmt.Sprintf("%s\x00rank%d", key, rank), 0)
	inj.mu.Lock()
	inj.stats.Decisions++
	if d.Kind == KindTrap {
		inj.stats.Traps++
	}
	inj.mu.Unlock()
	if d.Kind == KindTrap {
		m.InjectTrapAfter(d.TrapAfter)
	}
}
