package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Network fault injection: the wire-level sibling of the evaluation
// injector. The remote-worker transport (internal/remote) consults a
// NetInjector before every RPC attempt and simulates the classic
// failure modes of a real network — a response dropped after the
// server processed the request, a duplicated delivery, a delayed
// heartbeat, a connection reset before the request ever lands. Like
// the evaluation injector, decisions are a pure function of
// (seed, op, key, attempt) and only attempt 0 of any (op, key) is
// ever faulted, so the client's bounded retry always reaches a clean
// attempt and a chaos run terminates deterministically. The server
// side needs no cooperation: its idempotent claim re-delivery and
// owner+epoch report acceptance are exactly what these faults probe.

// NetKind classifies an injected network fault.
type NetKind uint8

// Injected network fault kinds.
const (
	// NetNone: the RPC attempt runs clean.
	NetNone NetKind = iota
	// NetDrop: the request is sent and processed, but the response is
	// dropped on the way back — the client sees a transport error and
	// retries, so the server must tolerate the duplicate (idempotent
	// claim re-delivery; report accepted once by owner+epoch).
	NetDrop
	// NetDup: the request is delivered twice back-to-back (a retransmit
	// the first copy of which actually arrived). The second delivery
	// must be discarded by the server's idempotency tokens.
	NetDup
	// NetDelay: the request stalls for Decision.Delay before it is sent
	// — a delayed heartbeat or report crossing a slow link.
	NetDelay
	// NetReset: the connection resets before the request reaches the
	// server — the client sees an error, the server saw nothing, and
	// the retry is the first delivery.
	NetReset
)

func (k NetKind) String() string {
	switch k {
	case NetNone:
		return "none"
	case NetDrop:
		return "drop"
	case NetDup:
		return "dup"
	case NetDelay:
		return "delay"
	case NetReset:
		return "reset"
	default:
		return "netkind?"
	}
}

// NetRates are per-kind injection probabilities (each in [0,1], summed
// to at most 1): the fraction of (op, key) pairs whose first RPC
// attempt is hit by that fault kind.
type NetRates struct {
	Drop, Dup, Delay, Reset float64
}

// DefaultNetRates fault ~6% of RPCs with each kind (~24% total) —
// aggressive on purpose: the transport must shrug all of it off.
var DefaultNetRates = NetRates{Drop: 0.06, Dup: 0.06, Delay: 0.06, Reset: 0.06}

// DefaultNetDelay is the default injected delay.
const DefaultNetDelay = 150 * time.Millisecond

// NetDecision is the fault chosen for one RPC attempt.
type NetDecision struct {
	Kind NetKind
	// Delay is how long a NetDelay attempt stalls before sending.
	Delay time.Duration
}

// NetStats counts a network injector's activity.
type NetStats struct {
	// Decisions is the number of Decide calls (RPC attempts seen).
	Decisions int
	// Drops, Dups, Delays and Resets count the injected faults by kind.
	Drops, Dups, Delays, Resets int
}

// Total is the number of injected network faults across all kinds.
func (s NetStats) Total() int { return s.Drops + s.Dups + s.Delays + s.Resets }

// NetInjector decides injected network faults deterministically from
// its seed. Safe for concurrent use.
type NetInjector struct {
	seed  int64
	rates NetRates
	delay time.Duration

	mu    sync.Mutex
	stats NetStats
}

// NewNet builds a network injector. Zero rates fall back to
// DefaultNetRates as a whole; a zero delay falls back to
// DefaultNetDelay.
func NewNet(seed int64, rates NetRates, delay time.Duration) *NetInjector {
	if rates == (NetRates{}) {
		rates = DefaultNetRates
	}
	if delay <= 0 {
		delay = DefaultNetDelay
	}
	return &NetInjector{seed: seed, rates: rates, delay: delay}
}

// Seed returns the injector's seed.
func (n *NetInjector) Seed() int64 { return n.seed }

// Decide returns the fault injected into the given attempt of the
// given RPC — a pure function of (seed, op, key, attempt), so chaos
// runs replay identically. Only the first attempt of an (op, key) pair
// is ever faulted: retries are guaranteed clean, so bounded retry
// terminates.
func (n *NetInjector) Decide(op, key string, attempt int) NetDecision {
	d := n.decide(op, key, attempt)
	n.mu.Lock()
	n.stats.Decisions++
	switch d.Kind {
	case NetDrop:
		n.stats.Drops++
	case NetDup:
		n.stats.Dups++
	case NetDelay:
		n.stats.Delays++
	case NetReset:
		n.stats.Resets++
	}
	n.mu.Unlock()
	return d
}

func (n *NetInjector) decide(op, key string, attempt int) NetDecision {
	if attempt != 0 {
		return NetDecision{}
	}
	// Reuse the evaluation injector's seeded FNV+splitmix64 hash so both
	// chaos layers share one well-mixed roll.
	inj := Injector{seed: n.seed}
	h := inj.hash(fmt.Sprintf("net\x00%s\x00%s", op, key))
	roll := float64(h>>11) / float64(1<<53)
	r := n.rates
	switch {
	case roll < r.Drop:
		return NetDecision{Kind: NetDrop}
	case roll < r.Drop+r.Dup:
		return NetDecision{Kind: NetDup}
	case roll < r.Drop+r.Dup+r.Delay:
		return NetDecision{Kind: NetDelay, Delay: n.delay}
	case roll < r.Drop+r.Dup+r.Delay+r.Reset:
		return NetDecision{Kind: NetReset}
	}
	return NetDecision{}
}

// Stats returns a snapshot of the injector's activity counters.
func (n *NetInjector) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
