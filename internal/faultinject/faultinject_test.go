package faultinject

import (
	"fmt"
	"testing"
	"time"
)

func TestDecideDeterministic(t *testing.T) {
	a := New(42, Rates{Panic: 0.25, Hang: 0.25, Flaky: 0.25, Trap: 0.25}, time.Millisecond)
	b := New(42, Rates{Panic: 0.25, Hang: 0.25, Flaky: 0.25, Trap: 0.25}, time.Millisecond)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("piece-%d", i)
		da, db := a.Decide(key, 0), b.Decide(key, 0)
		if da != db {
			t.Fatalf("key %q: decisions differ: %+v vs %+v", key, da, db)
		}
		// Replays of the same (key, attempt) must also agree.
		if da2 := a.Decide(key, 0); da2 != da {
			t.Fatalf("key %q: replay differs: %+v vs %+v", key, da2, da)
		}
	}
}

func TestDecideOnlyFaultsFirstAttempt(t *testing.T) {
	inj := New(7, Rates{Panic: 1}, 0)
	if d := inj.Decide("k", 0); d.Kind != KindPanic {
		t.Fatalf("attempt 0 at rate 1.0 not faulted: %+v", d)
	}
	for attempt := 1; attempt < 5; attempt++ {
		if d := inj.Decide("k", attempt); d.Kind != KindNone {
			t.Errorf("attempt %d faulted: %+v — retries must run clean", attempt, d)
		}
	}
}

func TestDecideRatesRoughlyHold(t *testing.T) {
	inj := New(1234, Rates{Panic: 0.1, Hang: 0.1, Flaky: 0.1, Trap: 0.1}, 0)
	const n = 4000
	for i := 0; i < n; i++ {
		inj.Decide(fmt.Sprintf("eval-%d", i), 0)
	}
	s := inj.Stats()
	if s.Decisions != n {
		t.Fatalf("decisions = %d, want %d", s.Decisions, n)
	}
	check := func(name string, got int, rate float64) {
		want := rate * n
		if float64(got) < want*0.7 || float64(got) > want*1.3 {
			t.Errorf("%s = %d, want within 30%% of %.0f", name, got, want)
		}
	}
	check("panics", s.Panics, 0.1)
	check("hangs", s.Hangs, 0.1)
	check("flakes", s.Flakes, 0.1)
	check("traps", s.Traps, 0.1)
	if s.Total() != s.Panics+s.Hangs+s.Flakes+s.Traps {
		t.Error("Total does not sum the kinds")
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	rates := Rates{Panic: 0.5, Flaky: 0.5}
	a, b := New(1, rates, 0), New(2, rates, 0)
	differ := false
	for i := 0; i < 64 && !differ; i++ {
		key := fmt.Sprintf("k%d", i)
		differ = a.Decide(key, 0) != b.Decide(key, 0)
	}
	if !differ {
		t.Error("seeds 1 and 2 produced identical schedules over 64 keys")
	}
}

func TestTrapDecisionsCarrySite(t *testing.T) {
	inj := New(99, Rates{Trap: 1}, 0)
	d := inj.Decide("some-eval", 0)
	if d.Kind != KindTrap {
		t.Fatalf("kind = %v, want trap", d.Kind)
	}
	if d.TrapAfter == 0 || d.TrapAfter > 50_000 {
		t.Errorf("TrapAfter = %d, want in [1, 50000]", d.TrapAfter)
	}
	if d2 := inj.Decide("some-eval", 0); d2.TrapAfter != d.TrapAfter {
		t.Error("trap site not deterministic")
	}
}

func TestDefaults(t *testing.T) {
	inj := New(0, Rates{}, 0)
	if inj.rates != DefaultRates {
		t.Errorf("zero rates did not default: %+v", inj.rates)
	}
	if inj.stall != DefaultStall {
		t.Errorf("zero stall did not default: %v", inj.stall)
	}
	if inj.Seed() != 0 {
		t.Errorf("Seed() = %d", inj.Seed())
	}
	hangs := New(5, Rates{Hang: 1}, 0)
	if d := hangs.Decide("x", 0); d.Kind != KindHang || d.StallFor != DefaultStall {
		t.Errorf("hang decision = %+v, want default stall", d)
	}
}

func TestInjectedPanicValue(t *testing.T) {
	caught := func() (v any) {
		defer func() { v = recover() }()
		panic(Injected{Key: "k", Attempt: 0})
	}()
	if _, ok := caught.(Injected); !ok {
		t.Fatalf("recovered %T, want Injected", caught)
	}
}
