package faultinject

import (
	"fmt"
	"testing"
	"time"
)

// TestNetDeterministic: decisions are a pure function of
// (seed, op, key, attempt) — two injectors with the same seed agree on
// every decision, and replaying a decision returns the same fault.
func TestNetDeterministic(t *testing.T) {
	a := NewNet(42, NetRates{}, 0)
	b := NewNet(42, NetRates{}, 0)
	for i := 0; i < 500; i++ {
		op := []string{"claim", "report", "heartbeat"}[i%3]
		key := fmt.Sprintf("k%d", i)
		da, db := a.Decide(op, key, 0), b.Decide(op, key, 0)
		if da != db {
			t.Fatalf("seed 42 disagrees on (%s,%s): %v vs %v", op, key, da, db)
		}
		if again := a.Decide(op, key, 0); again != da {
			t.Fatalf("replay of (%s,%s) changed: %v vs %v", op, key, again, da)
		}
	}
}

// TestNetRetriesAlwaysClean: attempt > 0 is never faulted, so bounded
// retry always reaches a clean attempt.
func TestNetRetriesAlwaysClean(t *testing.T) {
	n := NewNet(7, NetRates{Drop: 1}, 0) // every first attempt faults
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if d := n.Decide("report", key, 0); d.Kind != NetDrop {
			t.Fatalf("rate 1.0: attempt 0 of %s not dropped (%v)", key, d)
		}
		for attempt := 1; attempt < 4; attempt++ {
			if d := n.Decide("report", key, attempt); d.Kind != NetNone {
				t.Fatalf("attempt %d of %s faulted: %v", attempt, key, d)
			}
		}
	}
}

// TestNetSeedsDiffer: different seeds produce different fault plans.
func TestNetSeedsDiffer(t *testing.T) {
	a, b := NewNet(1, NetRates{}, 0), NewNet(2, NetRates{}, 0)
	same := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Decide("claim", key, 0) == b.Decide("claim", key, 0) {
			same++
		}
	}
	if same == trials {
		t.Fatal("seeds 1 and 2 produced identical fault plans")
	}
}

// TestNetRatesRespected: over many keys the injected fraction per kind
// tracks the configured rates, and kinds partition the roll space.
func TestNetRatesRespected(t *testing.T) {
	rates := NetRates{Drop: 0.1, Dup: 0.1, Delay: 0.1, Reset: 0.1}
	n := NewNet(99, rates, 25*time.Millisecond)
	const trials = 4000
	for i := 0; i < trials; i++ {
		d := n.Decide("rpc", fmt.Sprintf("k%d", i), 0)
		if d.Kind == NetDelay && d.Delay != 25*time.Millisecond {
			t.Fatalf("delay decision carries %v, want 25ms", d.Delay)
		}
	}
	st := n.Stats()
	if st.Decisions != trials {
		t.Fatalf("Decisions = %d, want %d", st.Decisions, trials)
	}
	for kind, got := range map[string]int{
		"drop": st.Drops, "dup": st.Dups, "delay": st.Delays, "reset": st.Resets,
	} {
		frac := float64(got) / trials
		if frac < 0.05 || frac > 0.15 {
			t.Errorf("%s rate %.3f, want ≈0.10", kind, frac)
		}
	}
	if st.Total() != st.Drops+st.Dups+st.Delays+st.Resets {
		t.Error("Total() disagrees with the per-kind counters")
	}
}

// TestNetDefaults: zero rates and delay fall back to the documented
// defaults; the kind stringer covers every kind.
func TestNetDefaults(t *testing.T) {
	n := NewNet(5, NetRates{}, 0)
	if n.rates != DefaultNetRates || n.delay != DefaultNetDelay {
		t.Fatalf("defaults not applied: %+v / %v", n.rates, n.delay)
	}
	if n.Seed() != 5 {
		t.Fatalf("Seed() = %d", n.Seed())
	}
	want := map[NetKind]string{
		NetNone: "none", NetDrop: "drop", NetDup: "dup",
		NetDelay: "delay", NetReset: "reset", NetKind(200): "netkind?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("NetKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
