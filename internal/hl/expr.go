package hl

import (
	"fmt"
	"math"

	"fpmix/internal/isa"
)

// Expr is a floating-point expression tree. Expressions compile onto the
// xmm evaluation stack; the result of compiling at depth d lands in xmm[d].
type Expr struct {
	kind  exprKind
	v     float64
	fvar  FVar
	arr   FArr
	idx   *IExpr
	a, b  *Expr
	op    isa.Op // for arith/unary kinds: the double-precision opcode
	iexpr *IExpr
}

type exprKind uint8

const (
	eConst exprKind = iota
	eLoad
	eIndex
	eArith // binary: a op b
	eUnary // sqrt/sin/cos/exp/log: op(a)
	eNeg   // 0 - a
	eAbs   // fabs via mask
	eFromI // int -> float
)

// Const is a floating-point literal.
func Const(v float64) Expr { return Expr{kind: eConst, v: v} }

// Load reads a scalar variable.
func Load(v FVar) Expr { return Expr{kind: eLoad, fvar: v} }

// At reads arr[idx].
func At(arr FArr, idx IExpr) Expr { return Expr{kind: eIndex, arr: arr, idx: &idx} }

// Add returns a + b.
func Add(a, b Expr) Expr { return bin(isa.ADDSD, a, b) }

// Sub returns a - b.
func Sub(a, b Expr) Expr { return bin(isa.SUBSD, a, b) }

// Mul returns a * b.
func Mul(a, b Expr) Expr { return bin(isa.MULSD, a, b) }

// Div returns a / b.
func Div(a, b Expr) Expr { return bin(isa.DIVSD, a, b) }

// Min returns the x86-semantics minimum of a and b.
func Min(a, b Expr) Expr { return bin(isa.MINSD, a, b) }

// Max returns the x86-semantics maximum of a and b.
func Max(a, b Expr) Expr { return bin(isa.MAXSD, a, b) }

func bin(op isa.Op, a, b Expr) Expr {
	return Expr{kind: eArith, op: op, a: &a, b: &b}
}

// Sqrt returns the square root of a.
func Sqrt(a Expr) Expr { return un(isa.SQRTSD, a) }

// Sin returns sin(a).
func Sin(a Expr) Expr { return un(isa.SINSD, a) }

// Cos returns cos(a).
func Cos(a Expr) Expr { return un(isa.COSSD, a) }

// Exp returns e**a.
func Exp(a Expr) Expr { return un(isa.EXPSD, a) }

// Log returns the natural logarithm of a.
func Log(a Expr) Expr { return un(isa.LOGSD, a) }

func un(op isa.Op, a Expr) Expr { return Expr{kind: eUnary, op: op, a: &a} }

// Neg returns -a (compiled as 0 - a).
func Neg(a Expr) Expr { return Expr{kind: eNeg, a: &a} }

// Abs returns |a|, compiled as max(a, 0-a). A sign-mask ANDPD (what
// optimizing compilers emit) would operate on the raw 64-bit lane and
// miss the single-precision payload's sign bit once the value has been
// replaced in place, so the arithmetic form — which the replacement
// snippets handle like any other MAXSD — is used instead.
func Abs(a Expr) Expr { return Expr{kind: eAbs, a: &a} }

// FromInt converts an integer expression to floating point (CVTSI2SD).
func FromInt(i IExpr) Expr { return Expr{kind: eFromI, iexpr: &i} }

// IExpr is an integer expression tree evaluating on the r8..r12 stack.
type IExpr struct {
	kind ikind
	v    int64
	ivar IVar
	arr  IArr
	idx  *IExpr
	a, b *IExpr
	op   isa.Op
	fe   *Expr
}

type ikind uint8

const (
	iConst ikind = iota
	iLoad
	iIndex
	iArith
	iShift
	iToI // float -> int (truncating)
)

// IConst is an integer literal.
func IConst(v int64) IExpr { return IExpr{kind: iConst, v: v} }

// ILoad reads an integer variable.
func ILoad(v IVar) IExpr { return IExpr{kind: iLoad, ivar: v} }

// IAt reads arr[idx].
func IAt(arr IArr, idx IExpr) IExpr { return IExpr{kind: iIndex, arr: arr, idx: &idx} }

// IAdd returns a + b.
func IAdd(a, b IExpr) IExpr { return ibin(isa.ADDR, a, b) }

// ISub returns a - b.
func ISub(a, b IExpr) IExpr { return ibin(isa.SUBR, a, b) }

// IMul returns a * b.
func IMul(a, b IExpr) IExpr { return ibin(isa.IMULR, a, b) }

// IDiv returns a / b (truncating signed division; b must be nonzero).
func IDiv(a, b IExpr) IExpr { return ibin(isa.IDIVR, a, b) }

// IAnd returns a & b.
func IAnd(a, b IExpr) IExpr { return ibin(isa.ANDR, a, b) }

// IOr returns a | b.
func IOr(a, b IExpr) IExpr { return ibin(isa.ORR, a, b) }

// IXor returns a ^ b.
func IXor(a, b IExpr) IExpr { return ibin(isa.XORR, a, b) }

func ibin(op isa.Op, a, b IExpr) IExpr { return IExpr{kind: iArith, op: op, a: &a, b: &b} }

// IShl returns a << k for a constant shift.
func IShl(a IExpr, k int64) IExpr {
	return IExpr{kind: iShift, op: isa.SHLI, a: &a, v: k}
}

// IShr returns a >> k (logical) for a constant shift.
func IShr(a IExpr, k int64) IExpr {
	return IExpr{kind: iShift, op: isa.SHRI, a: &a, v: k}
}

// ToInt truncates a floating-point expression to int64 (CVTTSD2SI).
func ToInt(a Expr) IExpr { return IExpr{kind: iToI, fe: &a} }

// ssEquiv maps a double opcode to its single twin for ModeF32 compilation.
func ssEquiv(op isa.Op) isa.Op {
	if s, ok := isa.SingleEquivalent(op); ok {
		return s
	}
	panic(fmt.Sprintf("hl: no single equivalent for %s", op))
}

// compileF emits code evaluating e into xmm[d]. Integer subexpressions
// (array indices, conversions) evaluate at integer-stack depth id, so an
// enclosing integer evaluation's live registers are never clobbered.
func (fb *FuncBuilder) compileF(e *Expr, d, id int) {
	if d >= fpStackSize {
		panic(fmt.Sprintf("hl: %s: floating-point expression too deep (max %d)", fb.name, fpStackSize))
	}
	p := fb.prog
	switch e.kind {
	case eConst:
		var bits int64
		if p.mode == ModeF32 {
			bits = int64(math.Float32bits(float32(e.v)))
		} else {
			bits = int64(math.Float64bits(e.v))
		}
		fb.emit(isa.I(isa.MOVRI, isa.Gpr(scrC), isa.Imm(bits)))
		fb.emit(isa.I(isa.MOVQ, isa.Xmm(uint8(d)), isa.Gpr(scrC)))
	case eLoad:
		fb.emit(isa.I(fb.movOp(), isa.Xmm(uint8(d)), isa.Mem(regBase, e.fvar.off)))
	case eIndex:
		r := fb.compileI(e.idx, id, d)
		fb.emit(isa.I(fb.movOp(), isa.Xmm(uint8(d)),
			isa.MemIdx(regBase, r, uint8(p.fpSlot()), e.arr.off)))
	case eArith:
		fb.compileF(e.a, d, id)
		fb.compileF(e.b, d+1, id)
		op := e.op
		if p.mode == ModeF32 {
			op = ssEquiv(op)
		}
		fb.emit(isa.I(op, isa.Xmm(uint8(d)), isa.Xmm(uint8(d+1))))
	case eUnary:
		fb.compileF(e.a, d, id)
		op := e.op
		if p.mode == ModeF32 {
			op = ssEquiv(op)
		}
		fb.emit(isa.I(op, isa.Xmm(uint8(d)), isa.Xmm(uint8(d))))
	case eNeg:
		zero := Const(0)
		sub := Sub(zero, *e.a)
		fb.compileF(&sub, d, id)
	case eAbs:
		// max(a, 0 - a): exact in both precisions.
		fb.compileF(e.a, d, id)
		zero := Const(0)
		fb.compileF(&zero, d+1, id)
		op := isa.SUBSD
		mx := isa.MAXSD
		if p.mode == ModeF32 {
			op, mx = isa.SUBSS, isa.MAXSS
		}
		fb.emit(isa.I(op, isa.Xmm(uint8(d+1)), isa.Xmm(uint8(d))))
		fb.emit(isa.I(mx, isa.Xmm(uint8(d)), isa.Xmm(uint8(d+1))))
	case eFromI:
		r := fb.compileI(e.iexpr, id, d)
		op := isa.CVTSI2SD
		if p.mode == ModeF32 {
			op = isa.CVTSI2SS
		}
		fb.emit(isa.I(op, isa.Xmm(uint8(d)), isa.Gpr(r)))
	default:
		panic("hl: unknown expression kind")
	}
}

// compileI emits code evaluating e into the integer stack register at
// depth d and returns that register. fd is the number of live xmm
// evaluation registers; float subexpressions (ToInt) evaluate above it.
func (fb *FuncBuilder) compileI(e *IExpr, d, fd int) uint8 {
	if d >= intStackSz {
		panic(fmt.Sprintf("hl: %s: integer expression too deep (max %d)", fb.name, intStackSz))
	}
	r := uint8(int(intStackLo) + d)
	switch e.kind {
	case iConst:
		fb.emit(isa.I(isa.MOVRI, isa.Gpr(r), isa.Imm(e.v)))
	case iLoad:
		fb.emit(isa.I(isa.LOAD, isa.Gpr(r), isa.Mem(regBase, e.ivar.off)))
	case iIndex:
		ri := fb.compileI(e.idx, d, fd)
		fb.emit(isa.I(isa.LOAD, isa.Gpr(r), isa.MemIdx(regBase, ri, 8, e.arr.off)))
	case iArith:
		fb.compileI(e.a, d, fd)
		rb := fb.compileI(e.b, d+1, fd)
		fb.emit(isa.I(e.op, isa.Gpr(r), isa.Gpr(rb)))
	case iShift:
		fb.compileI(e.a, d, fd)
		fb.emit(isa.I(e.op, isa.Gpr(r), isa.Imm(e.v)))
	case iToI:
		// Evaluate the float just above the live xmm registers so in-flight
		// FP evaluation is not clobbered.
		fb.compileF(e.fe, fd, d)
		op := isa.CVTTSD2SI
		if fb.prog.mode == ModeF32 {
			op = isa.CVTTSS2SI
		}
		fb.emit(isa.I(op, isa.Gpr(r), isa.Xmm(uint8(fd))))
	default:
		panic("hl: unknown integer expression kind")
	}
	return r
}

// movOp is the FP load/store opcode for the current mode.
func (fb *FuncBuilder) movOp() isa.Op {
	if fb.prog.mode == ModeF32 {
		return isa.MOVSS
	}
	return isa.MOVSD
}
