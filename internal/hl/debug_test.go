package hl

import (
	"strings"
	"testing"

	"fpmix/internal/prog"
)

// TestDebugInfo: every instruction of a compiled program carries a
// "func: statement" source label, and labels survive image round trips.
func TestDebugInfo(t *testing.T) {
	p := New("dbg", ModeF64)
	x := p.ScalarInit("x", 1.0)
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, IConst(0), IConst(3), func() {
		f.Set(x, Add(Load(x), Const(1)))
	})
	f.Call("aux")
	f.Out(Load(x))
	f.Halt()
	g := p.Func("aux")
	g.Set(x, Mul(Load(x), Const(2)))
	g.Ret()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Debug == nil {
		t.Fatal("no debug info")
	}
	// Every instruction has a label.
	for _, fn := range mod.Funcs {
		for _, in := range fn.Instrs {
			lbl, ok := mod.Debug[in.Addr]
			if !ok || lbl == "" {
				t.Fatalf("%s %#x: missing label", fn.Name, in.Addr)
			}
			if !strings.HasPrefix(lbl, fn.Name+": ") {
				t.Errorf("%s %#x: label %q lacks function prefix", fn.Name, in.Addr, lbl)
			}
		}
	}
	// Expected statement labels appear.
	joined := ""
	for _, l := range mod.Debug {
		joined += l + "\n"
	}
	for _, want := range []string{"main: for i", "main: set x", "main: call aux",
		"main: out", "main: halt", "aux: set x", "aux: return", "main: prologue"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing label %q", want)
		}
	}
	// Round trip through the image format.
	img, err := prog.Save(mod)
	if err != nil {
		t.Fatal(err)
	}
	back, err := prog.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Debug) != len(mod.Debug) {
		t.Fatalf("debug entries: %d != %d", len(back.Debug), len(mod.Debug))
	}
	for a, l := range mod.Debug {
		if back.Debug[a] != l {
			t.Errorf("label at %#x changed: %q != %q", a, back.Debug[a], l)
		}
	}
}
