package hl

import (
	"math"
	"testing"

	"fpmix/internal/vm"
)

// runProg builds and executes a program, returning the machine.
func runProg(t *testing.T, p *Prog, entry string) *vm.Machine {
	t.Helper()
	mod, err := p.Build(entry)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScalarArithmetic(t *testing.T) {
	p := New("t", ModeF64)
	x := p.ScalarInit("x", 3.0)
	y := p.ScalarInit("y", 4.0)
	r := p.Scalar("r")
	f := p.Func("main")
	f.Set(r, Sqrt(Add(Mul(Load(x), Load(x)), Mul(Load(y), Load(y)))))
	f.Out(Load(r))
	f.Halt()
	m := runProg(t, p, "main")
	if got := m.Out[0].F64(); got != 5.0 {
		t.Errorf("hypot = %v, want 5", got)
	}
}

func TestForLoopSum(t *testing.T) {
	p := New("t", ModeF64)
	a := p.ArrayInit("a", []float64{1, 2, 3, 4, 5})
	sum := p.Scalar("sum")
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, IConst(0), IConst(5), func() {
		f.Set(sum, Add(Load(sum), At(a, ILoad(i))))
	})
	f.Out(Load(sum))
	f.Halt()
	m := runProg(t, p, "main")
	if got := m.Out[0].F64(); got != 15.0 {
		t.Errorf("sum = %v, want 15", got)
	}
}

func TestNestedLoopsAndStore(t *testing.T) {
	// c[i] = sum_j a[i*3+j]  for a 3x3 "matrix".
	p := New("t", ModeF64)
	a := p.ArrayInit("a", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	c := p.Array("c", 3)
	i, j := p.Int("i"), p.Int("j")
	f := p.Func("main")
	f.For(i, IConst(0), IConst(3), func() {
		f.Store(c, ILoad(i), Const(0))
		f.For(j, IConst(0), IConst(3), func() {
			f.Store(c, ILoad(i), Add(At(c, ILoad(i)),
				At(a, IAdd(IMul(ILoad(i), IConst(3)), ILoad(j)))))
		})
		f.Out(At(c, ILoad(i)))
	})
	f.Halt()
	m := runProg(t, p, "main")
	want := []float64{6, 15, 24}
	for k, w := range want {
		if got := m.Out[k].F64(); got != w {
			t.Errorf("row %d = %v, want %v", k, got, w)
		}
	}
}

func TestIfElseAndConds(t *testing.T) {
	p := New("t", ModeF64)
	x := p.ScalarInit("x", -2.5)
	r := p.Scalar("r")
	f := p.Func("main")
	f.If(Lt(Load(x), Const(0)), func() {
		f.Set(r, Neg(Load(x)))
	}, func() {
		f.Set(r, Load(x))
	})
	f.Out(Load(r))
	f.Out(Abs(Load(x)))
	f.Halt()
	m := runProg(t, p, "main")
	if got := m.Out[0].F64(); got != 2.5 {
		t.Errorf("if-else abs = %v", got)
	}
	if got := m.Out[1].F64(); got != 2.5 {
		t.Errorf("mask abs = %v", got)
	}
}

func TestWhileLoop(t *testing.T) {
	p := New("t", ModeF64)
	x := p.ScalarInit("x", 1.0)
	n := p.Int("n")
	f := p.Func("main")
	f.While(Lt(Load(x), Const(100)), func() {
		f.Set(x, Mul(Load(x), Const(2)))
		f.SetI(n, IAdd(ILoad(n), IConst(1)))
	})
	f.Out(Load(x))
	f.OutInt(ILoad(n))
	f.Halt()
	m := runProg(t, p, "main")
	if got := m.Out[0].F64(); got != 128.0 {
		t.Errorf("x = %v, want 128", got)
	}
	if got := int64(m.Out[1].Bits); got != 7 {
		t.Errorf("n = %d, want 7", got)
	}
}

func TestFunctionCalls(t *testing.T) {
	p := New("t", ModeF64)
	x := p.ScalarInit("x", 10.0)
	f := p.Func("main")
	f.Call("halve")
	f.Call("halve")
	f.Out(Load(x))
	f.Halt()
	g := p.Func("halve")
	g.Set(x, Div(Load(x), Const(2)))
	g.Ret()
	m := runProg(t, p, "main")
	if got := m.Out[0].F64(); got != 2.5 {
		t.Errorf("x = %v, want 2.5", got)
	}
}

func TestIntOpsAndConversions(t *testing.T) {
	p := New("t", ModeF64)
	v := p.Int("v")
	r := p.Scalar("r")
	f := p.Func("main")
	f.SetI(v, IShl(IConst(3), 2)) // 12
	f.SetI(v, IAdd(ILoad(v), IConst(1)))
	f.Set(r, FromInt(ILoad(v)))                // 13.0
	f.SetI(v, ToInt(Mul(Load(r), Const(2.9)))) // trunc(37.7) = 37
	f.OutInt(ILoad(v))
	f.Halt()
	m := runProg(t, p, "main")
	if got := int64(m.Out[0].Bits); got != 37 {
		t.Errorf("v = %d, want 37", got)
	}
}

func TestIntArrays(t *testing.T) {
	p := New("t", ModeF64)
	ia := p.IntArrayInit("ia", []int64{10, 20, 30})
	s := p.Int("s")
	i := p.Int("i")
	f := p.Func("main")
	f.For(i, IConst(0), IConst(3), func() {
		f.SetI(s, IAdd(ILoad(s), IAt(ia, ILoad(i))))
	})
	f.StoreI(ia, IConst(0), ILoad(s))
	f.OutInt(IAt(ia, IConst(0)))
	f.Halt()
	m := runProg(t, p, "main")
	if got := int64(m.Out[0].Bits); got != 60 {
		t.Errorf("s = %d, want 60", got)
	}
}

func TestTranscendentalExprs(t *testing.T) {
	p := New("t", ModeF64)
	f := p.Func("main")
	f.Out(Sin(Const(1.0)))
	f.Out(Cos(Const(1.0)))
	f.Out(Exp(Const(1.0)))
	f.Out(Log(Const(2.0)))
	f.Out(Min(Const(3), Const(4)))
	f.Out(Max(Const(3), Const(4)))
	f.Halt()
	m := runProg(t, p, "main")
	want := []float64{math.Sin(1), math.Cos(1), math.E, math.Log(2), 3, 4}
	for i, w := range want {
		if got := m.Out[i].F64(); got != w {
			t.Errorf("out %d = %v, want %v", i, got, w)
		}
	}
}

// TestModeF32Build compiles the same source in both modes; the F32 build
// must produce the float32-rounded result.
func TestModeF32Build(t *testing.T) {
	build := func(mode Mode) float64 {
		p := New("t", mode)
		a := p.ArrayInit("a", []float64{0.1, 0.2, 0.3})
		s := p.Scalar("s")
		i := p.Int("i")
		f := p.Func("main")
		f.For(i, IConst(0), IConst(3), func() {
			f.Set(s, Add(Load(s), At(a, ILoad(i))))
		})
		f.Out(Load(s))
		f.Halt()
		m := runProg(t, p, "main")
		if mode == ModeF32 {
			return float64(m.Out[0].F32())
		}
		return m.Out[0].F64()
	}
	d := build(ModeF64)
	s := build(ModeF32)
	wantS := float64(float32(0.1) + float32(0.2) + float32(0.3))
	if s != wantS {
		t.Errorf("f32 sum = %v, want %v", s, wantS)
	}
	if d == s {
		t.Error("f32 and f64 builds should differ on this data")
	}
}

func TestModeF32UsesNoDoubleOps(t *testing.T) {
	p := New("t", ModeF32)
	x := p.ScalarInit("x", 2.0)
	f := p.Func("main")
	f.Set(x, Sqrt(Mul(Load(x), Load(x))))
	f.If(Gt(Load(x), Const(1)), func() { f.Out(Load(x)) }, nil)
	f.Halt()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(mod.Candidates()); n != 0 {
		t.Errorf("F32 build contains %d double-precision candidates", n)
	}
}

func TestFloatCondNaNSemantics(t *testing.T) {
	// All ordering comparisons against NaN must be false.
	p := New("t", ModeF64)
	nan := p.ScalarInit("nan", math.NaN())
	r := p.Int("r")
	f := p.Func("main")
	f.If(Lt(Load(nan), Const(1)), func() { f.SetI(r, IOr(ILoad(r), IConst(1))) }, nil)
	f.If(Le(Load(nan), Const(1)), func() { f.SetI(r, IOr(ILoad(r), IConst(2))) }, nil)
	f.If(Gt(Load(nan), Const(1)), func() { f.SetI(r, IOr(ILoad(r), IConst(4))) }, nil)
	f.If(Ge(Load(nan), Const(1)), func() { f.SetI(r, IOr(ILoad(r), IConst(8))) }, nil)
	f.OutInt(ILoad(r))
	f.Halt()
	m := runProg(t, p, "main")
	if got := m.Out[0].Bits; got != 0 {
		t.Errorf("NaN comparisons set bits %#x, want 0", got)
	}
}

func TestBuildErrors(t *testing.T) {
	p := New("t", ModeF64)
	f := p.Func("main")
	f.Halt()
	if _, err := p.Build("nope"); err == nil {
		t.Error("unknown entry accepted")
	}

	p2 := New("t", ModeF64)
	f2 := p2.Func("main")
	f2.Call("missing")
	f2.Halt()
	if _, err := p2.Build("main"); err == nil {
		t.Error("undefined callee accepted")
	}

	p3 := New("t", ModeF64)
	p3.Func("main") // never terminated
	if _, err := p3.Build("main"); err == nil {
		t.Error("unterminated function accepted")
	}
}

func TestDeepExpressionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deep expression did not panic")
		}
	}()
	p := New("t", ModeF64)
	f := p.Func("main")
	e := Const(1)
	for i := 0; i < 20; i++ {
		e = Add(e, Const(1)) // right-leaning would be fine; left-leaning depth grows
	}
	// Force depth growth: nest on the right.
	deep := Const(1)
	for i := 0; i < 20; i++ {
		deep = Add(Const(1), deep)
	}
	f.Set(p.Scalar("x"), deep)
	_ = e
}

func TestEmitAfterCloseInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("emit after Halt did not panic")
		}
	}()
	p := New("t", ModeF64)
	f := p.Func("main")
	f.Halt()
	f.Out(Const(1))
}

func TestCandidateCountMatchesFPOps(t *testing.T) {
	p := New("t", ModeF64)
	x := p.ScalarInit("x", 1.0)
	f := p.Func("main")
	f.Set(x, Add(Load(x), Const(1))) // 1 addsd
	f.Set(x, Mul(Load(x), Load(x)))  // 1 mulsd
	f.Set(x, Sqrt(Load(x)))          // 1 sqrtsd
	f.Out(Load(x))
	f.Halt()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(mod.Candidates()); n != 3 {
		t.Errorf("candidates = %d, want 3", n)
	}
}
