package hl

import (
	"math"
	"math/rand"
	"testing"

	"fpmix/internal/vm"
)

// The compiler/VM pipeline must agree with direct host evaluation bit for
// bit: both perform the same IEEE-754 double operations in the same
// order. Random expression trees are generated together with a host-side
// mirror evaluator.

// genExpr returns a random expression over the variables and a mirror
// function computing its exact value from the variable values.
func genExpr(r *rand.Rand, vars []FVar, vals []float64, depth int) (Expr, func() float64) {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(2) {
		case 0:
			v := math.Trunc(r.NormFloat64()*1000) / 16 // varied but tame
			return Const(v), func() float64 { return v }
		default:
			i := r.Intn(len(vars))
			return Load(vars[i]), func() float64 { return vals[i] }
		}
	}
	a, fa := genExpr(r, vars, vals, depth-1)
	b, fb := genExpr(r, vars, vals, depth-1)
	switch r.Intn(9) {
	case 0:
		return Add(a, b), func() float64 { return fa() + fb() }
	case 1:
		return Sub(a, b), func() float64 { return fa() - fb() }
	case 2:
		return Mul(a, b), func() float64 { return fa() * fb() }
	case 3:
		return Div(a, b), func() float64 { return fa() / fb() }
	case 4:
		// x86 MINSD: returns b unless a < b.
		return Min(a, b), func() float64 {
			x, y := fa(), fb()
			if x < y {
				return x
			}
			return y
		}
	case 5:
		return Max(a, b), func() float64 {
			x, y := fa(), fb()
			if x > y {
				return x
			}
			return y
		}
	case 6:
		return Sqrt(Abs(a)), func() float64 { return math.Sqrt(absX86(fa())) }
	case 7:
		return Neg(a), func() float64 { return 0 - fa() }
	default:
		return Sin(a), func() float64 { return math.Sin(fa()) }
	}
}

// absX86 mirrors hl's Abs lowering: max(a, 0-a) with x86 MAXSD semantics.
func absX86(a float64) float64 {
	n := 0 - a
	if a > n {
		return a
	}
	return n
}

func TestRandomExpressionsMatchHost(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 60; trial++ {
		p := New("prop", ModeF64)
		nv := 1 + r.Intn(4)
		vars := make([]FVar, nv)
		vals := make([]float64, nv)
		for i := range vars {
			vals[i] = math.Trunc(r.NormFloat64()*4096) / 64
			vars[i] = p.ScalarInit("v", vals[i])
		}
		nExprs := 1 + r.Intn(4)
		mirrors := make([]func() float64, nExprs)
		f := p.Func("main")
		for k := 0; k < nExprs; k++ {
			e, mirror := genExpr(r, vars, vals, 3)
			mirrors[k] = mirror
			f.Out(e)
		}
		f.Halt()
		mod, err := p.Build("main")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, err := vm.New(mod)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(m.Out) != nExprs {
			t.Fatalf("trial %d: %d outputs, want %d", trial, len(m.Out), nExprs)
		}
		for k, o := range m.Out {
			want := mirrors[k]()
			got := o.F64()
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("trial %d expr %d: vm %v (%#x) != host %v (%#x)",
					trial, k, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// genIExpr mirrors integer expressions.
func genIExpr(r *rand.Rand, vars []IVar, vals []int64, depth int) (IExpr, func() int64) {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(2) {
		case 0:
			v := int64(r.Intn(2000) - 1000)
			return IConst(v), func() int64 { return v }
		default:
			i := r.Intn(len(vars))
			return ILoad(vars[i]), func() int64 { return vals[i] }
		}
	}
	a, fa := genIExpr(r, vars, vals, depth-1)
	b, fb := genIExpr(r, vars, vals, depth-1)
	switch r.Intn(7) {
	case 0:
		return IAdd(a, b), func() int64 { return fa() + fb() }
	case 1:
		return ISub(a, b), func() int64 { return fa() - fb() }
	case 2:
		return IMul(a, b), func() int64 { return fa() * fb() }
	case 3:
		return IAnd(a, b), func() int64 { return fa() & fb() }
	case 4:
		return IOr(a, b), func() int64 { return fa() | fb() }
	case 5:
		return IXor(a, b), func() int64 { return fa() ^ fb() }
	default:
		k := int64(r.Intn(5))
		return IShl(a, k), func() int64 { return int64(uint64(fa()) << uint(k)) }
	}
}

func TestRandomIntExpressionsMatchHost(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		p := New("iprop", ModeF64)
		nv := 1 + r.Intn(3)
		vars := make([]IVar, nv)
		vals := make([]int64, nv)
		for i := range vars {
			vals[i] = int64(r.Intn(100000) - 50000)
			vars[i] = p.IntInit("v", vals[i])
		}
		e, mirror := genIExpr(r, vars, vals, 3)
		f := p.Func("main")
		f.OutInt(e)
		f.Halt()
		mod, err := p.Build("main")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, err := vm.New(mod)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := int64(m.Out[0].Bits), mirror(); got != want {
			t.Errorf("trial %d: vm %d != host %d", trial, got, want)
		}
	}
}

// genExpr32 generates expressions with an exact float32 mirror.
func genExpr32(r *rand.Rand, vars []FVar, vals []float32, depth int) (Expr, func() float32) {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(2) {
		case 0:
			v := float32(math.Trunc(r.NormFloat64()*1000) / 16)
			return Const(float64(v)), func() float32 { return v }
		default:
			i := r.Intn(len(vars))
			return Load(vars[i]), func() float32 { return vals[i] }
		}
	}
	a, fa := genExpr32(r, vars, vals, depth-1)
	b, fb := genExpr32(r, vars, vals, depth-1)
	switch r.Intn(6) {
	case 0:
		return Add(a, b), func() float32 { return fa() + fb() }
	case 1:
		return Sub(a, b), func() float32 { return fa() - fb() }
	case 2:
		return Mul(a, b), func() float32 { return fa() * fb() }
	case 3:
		return Div(a, b), func() float32 { return fa() / fb() }
	case 4:
		return Min(a, b), func() float32 {
			x, y := fa(), fb()
			if x < y {
				return x
			}
			return y
		}
	default:
		return Sqrt(Abs(a)), func() float32 {
			x := fa()
			n := 0 - x
			if !(x > n) {
				x = n
			}
			return float32(math.Sqrt(float64(x)))
		}
	}
}

// TestRandomExpressionsF32MatchHost runs the property at ModeF32 against
// an exact float32 mirror: the manually-converted build must match host
// float32 arithmetic bit for bit.
func TestRandomExpressionsF32MatchHost(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := New("prop32", ModeF32)
		nv := 1 + r.Intn(3)
		vars := make([]FVar, nv)
		vals := make([]float32, nv)
		for i := range vars {
			vals[i] = float32(math.Trunc(r.NormFloat64()*4096) / 64)
			vars[i] = p.ScalarInit("v", float64(vals[i]))
		}
		e, mirror := genExpr32(r, vars, vals, 3)
		f := p.Func("main")
		f.Out(e)
		f.Halt()
		mod, err := p.Build("main")
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(mod)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := m.Out[0].F32()
		want := mirror()
		if math.Float32bits(got) != math.Float32bits(want) &&
			!(got != got && want != want) { // both NaN
			t.Errorf("trial %d: vm %v != host %v", trial, got, want)
		}
	}
}
