package hl

import (
	"math"
	"strings"
	"testing"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// buildProg assembles one main-only program from stmts, with rewriting
// on or off.
func buildProg(t *testing.T, rewrite bool, build func(p *Prog, main *FuncBuilder)) *prog.Module {
	t.Helper()
	p := New("rw", ModeF64)
	if rewrite {
		p.EnableRewrite()
	}
	main := p.Func("main")
	build(p, main)
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runOut(t *testing.T, m *prog.Module) []vm.OutVal {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	return mach.Out
}

func listing(m *prog.Module) string {
	var b strings.Builder
	for _, f := range m.Funcs {
		b.WriteString(f.Name + ":\n")
		for _, ins := range f.Instrs {
			b.WriteString(isa.Disasm(ins) + "\n")
		}
	}
	b.Write(m.Data)
	return b.String()
}

func TestSetDefaultRewrite(t *testing.T) {
	prev := SetDefaultRewrite(true)
	defer SetDefaultRewrite(prev)
	if !New("a", ModeF64).RewriteEnabled() {
		t.Error("default-on not inherited by New")
	}
	if was := SetDefaultRewrite(false); !was {
		t.Error("Swap did not report the prior value")
	}
	if New("b", ModeF64).RewriteEnabled() {
		t.Error("default-off not inherited by New")
	}
}

// TestRewriteDeterminism: two builds of the same source with rewriting on
// produce byte-identical modules — the variant search must not depend on
// map order or other nondeterminism.
func TestRewriteDeterminism(t *testing.T) {
	build := func() *prog.Module {
		return buildProg(t, true, func(p *Prog, main *FuncBuilder) {
			a := p.ScalarInit("a", 1.25)
			b := p.ScalarInit("b", -3)
			c := p.ScalarInit("c", 7.5)
			d := p.ScalarInit("d", 0.125)
			main.Set(a, Add(Add(Add(Load(a), Load(b)), Load(c)), Load(d)))
			main.Set(b, Mul(Mul(Load(a), Const(2)), Mul(Load(c), Const(4))))
			main.Set(c, Sub(Add(Mul(Load(a), Const(0.5)), Mul(Load(b), Const(0.5))), Load(d)))
			main.Out(Load(a))
			main.Out(Load(b))
			main.Out(Load(c))
		})
	}
	if l1, l2 := listing(build()), listing(build()); l1 != l2 {
		t.Error("two rewrite-on builds differ")
	}
}

// TestRewriteConstFold: constant folding mirrors the VM's arithmetic
// exactly, so a program whose expressions fold must still produce
// bit-identical outputs — even when the folded constant (0.1*3) is itself
// an inexact value.
func TestRewriteConstFold(t *testing.T) {
	build := func(rw bool) *prog.Module {
		return buildProg(t, rw, func(p *Prog, main *FuncBuilder) {
			x := p.ScalarInit("x", 42)
			main.Set(x, Add(Load(x), Mul(Const(0.1), Const(3))))
			main.Set(x, Mul(Load(x), Div(Const(1), Const(4))))
			main.Set(x, Add(Load(x), Min(Const(2), Const(-2))))
			main.Set(x, Sub(Load(x), Sqrt(Const(2))))
			main.Out(Load(x))
		})
	}
	off, on := build(false), build(true)
	no, yes := runOut(t, off), runOut(t, on)
	if len(no) != len(yes) {
		t.Fatal("output counts differ")
	}
	for i := range no {
		if no[i].Bits != yes[i].Bits {
			t.Errorf("output %d differs: %x vs %x", i, no[i].Bits, yes[i].Bits)
		}
	}
	count := func(m *prog.Module, op isa.Op) int {
		n := 0
		for _, f := range m.Funcs {
			for _, ins := range f.Instrs {
				if ins.Op == op {
					n++
				}
			}
		}
		return n
	}
	if count(on, isa.DIVSD) >= count(off, isa.DIVSD) {
		t.Error("folding removed no division")
	}
	if count(on, isa.SQRTSD) >= count(off, isa.SQRTSD) {
		t.Error("folding removed no square root")
	}
}

// TestRewriteNaNUnfolded: a constant expression producing NaN must stay
// unfolded — the VM's NaN propagation is the semantics of record.
func TestRewriteNaNUnfolded(t *testing.T) {
	build := func(rw bool) *prog.Module {
		return buildProg(t, rw, func(p *Prog, main *FuncBuilder) {
			x := p.ScalarInit("x", 1)
			main.Set(x, Add(Load(x), Sqrt(Const(-1))))
			main.Out(Load(x))
		})
	}
	no, yes := runOut(t, build(false)), runOut(t, build(true))
	if no[0].Bits != yes[0].Bits {
		t.Errorf("NaN output differs: %x vs %x", no[0].Bits, yes[0].Bits)
	}
	if !math.IsNaN(math.Float64frombits(yes[0].Bits)) {
		t.Error("expected NaN output")
	}
}

// TestRewriteRunsAndStaysClose: reassociation may legitimately change
// rounding, but the rewritten program must still run and agree with the
// original to fine relative tolerance on benign data.
func TestRewriteRunsAndStaysClose(t *testing.T) {
	build := func(rw bool) *prog.Module {
		return buildProg(t, rw, func(p *Prog, main *FuncBuilder) {
			a := p.ScalarInit("a", 0.3)
			b := p.ScalarInit("b", 1.7)
			c := p.ScalarInit("c", -2.9)
			d := p.ScalarInit("d", 4.1)
			i := p.Int("i")
			main.For(i, IConst(0), IConst(50), func() {
				main.Set(a, Add(Add(Add(Load(a), Load(b)), Load(c)), Load(d)))
				main.Set(b, Add(Mul(Load(b), Const(0.5)), Mul(Load(c), Const(0.5))))
				main.Set(c, Mul(Mul(Load(c), Const(2)), Mul(Load(d), Const(0.25))))
			})
			main.Out(Load(a))
			main.Out(Load(b))
			main.Out(Load(c))
		})
	}
	no, yes := runOut(t, build(false)), runOut(t, build(true))
	for i := range no {
		x, y := math.Float64frombits(no[i].Bits), math.Float64frombits(yes[i].Bits)
		scale := math.Max(1, math.Abs(x))
		if math.Abs(x-y)/scale > 1e-9 {
			t.Errorf("output %d drifted: %g vs %g", i, x, y)
		}
	}
}

// TestRewriteVariantScoring: the chosen variant never scores worse than
// the identity expression.
func TestRewriteVariantScoring(t *testing.T) {
	p := New("score", ModeF64)
	a := p.Scalar("a")
	b := p.Scalar("b")
	c := p.Scalar("c")
	d := p.Scalar("d")
	e := Add(Add(Add(Load(a), Load(b)), Load(c)), Load(d))
	got := rewriteExpr(e)
	if s, id := scoreErr(&got), scoreErr(&e); s > id {
		t.Errorf("rewrite chose a worse-scoring variant: %g > %g", s, id)
	}
	// A chain of pow2 multiplies is free; the hoisted form must not
	// introduce error.
	m := Mul(Mul(Load(a), Const(2)), Mul(Load(b), Const(4)))
	gm := rewriteExpr(m)
	if s, id := scoreErr(&gm), scoreErr(&m); s > id {
		t.Errorf("mul rewrite chose a worse-scoring variant: %g > %g", s, id)
	}
}
