package hl

import (
	"fmt"

	"fpmix/internal/isa"
)

// FuncBuilder accumulates the body of one function.
type FuncBuilder struct {
	prog   *Prog
	name   string
	instrs []isa.Instr
	labels map[int]int // label id -> instruction index
	fixups []fixup
	nlabel int
	closed bool

	// Source tracking: every emitted instruction records the statement it
	// was generated from, surfaced as debug info (prog.Module.Debug).
	srcCur string
	srcs   []string
}

type fixup struct {
	instr int    // index of the branch instruction
	label int    // label id (when fn == "")
	fn    string // callee name for CALL fixups
}

func (fb *FuncBuilder) emit(in isa.Instr) {
	if fb.closed {
		panic(fmt.Sprintf("hl: %s: statement after Ret/Halt", fb.name))
	}
	fb.instrs = append(fb.instrs, in)
	fb.srcs = append(fb.srcs, fb.srcCur)
}

// stmt marks the start of a source-level statement for debug info.
func (fb *FuncBuilder) stmt(label string) { fb.srcCur = label }

// newLabel allocates a label id.
func (fb *FuncBuilder) newLabel() int {
	fb.nlabel++
	return fb.nlabel
}

// bind attaches a label to the next emitted instruction.
func (fb *FuncBuilder) bind(label int) {
	if fb.labels == nil {
		fb.labels = make(map[int]int)
	}
	fb.labels[label] = len(fb.instrs)
}

// branch emits a branch to label, to be fixed up at build time.
func (fb *FuncBuilder) branch(op isa.Op, label int) {
	fb.fixups = append(fb.fixups, fixup{instr: len(fb.instrs), label: label})
	fb.emit(isa.I(op, isa.Imm(0)))
}

// Set assigns a floating-point expression to a scalar variable.
func (fb *FuncBuilder) Set(v FVar, e Expr) {
	fb.stmt("set " + v.name)
	if fb.prog.rewrite {
		e = rewriteExpr(e)
	}
	fb.compileF(&e, 0, 0)
	fb.emit(isa.I(fb.movOp(), isa.Mem(regBase, v.off), isa.Xmm(0)))
}

// Store assigns arr[idx] = e.
func (fb *FuncBuilder) Store(arr FArr, idx IExpr, e Expr) {
	fb.stmt("store " + arr.name)
	if fb.prog.rewrite {
		e = rewriteExpr(e)
	}
	fb.compileF(&e, 0, 0)
	r := fb.compileI(&idx, 0, 1)
	fb.emit(isa.I(fb.movOp(),
		isa.MemIdx(regBase, r, uint8(fb.prog.fpSlot()), arr.off), isa.Xmm(0)))
}

// SetI assigns an integer expression to an integer variable.
func (fb *FuncBuilder) SetI(v IVar, e IExpr) {
	fb.stmt("set " + v.name)
	r := fb.compileI(&e, 0, 0)
	fb.emit(isa.I(isa.STORE, isa.Mem(regBase, v.off), isa.Gpr(r)))
}

// StoreI assigns arr[idx] = e for integer arrays.
func (fb *FuncBuilder) StoreI(arr IArr, idx IExpr, e IExpr) {
	fb.stmt("store " + arr.name)
	re := fb.compileI(&e, 0, 0)
	ri := fb.compileI(&idx, 1, 0)
	fb.emit(isa.I(isa.STORE, isa.MemIdx(regBase, ri, 8, arr.off), isa.Gpr(re)))
}

// For emits a counted loop: for v = from; v < to; v++ { body }.
func (fb *FuncBuilder) For(v IVar, from, to IExpr, body func()) {
	loopLabel := "for " + v.name
	fb.stmt(loopLabel)
	fb.SetI(v, from)
	fb.stmt(loopLabel)
	head := fb.newLabel()
	exit := fb.newLabel()
	fb.bind(head)
	// if !(v < to) goto exit
	rv := fb.compileI(&IExpr{kind: iLoad, ivar: v}, 0, 0)
	rt := fb.compileI(&to, 1, 0)
	fb.emit(isa.I(isa.CMPR, isa.Gpr(rv), isa.Gpr(rt)))
	fb.branch(isa.JGE, exit)
	body()
	// v++
	fb.stmt(loopLabel)
	rv2 := fb.compileI(&IExpr{kind: iLoad, ivar: v}, 0, 0)
	fb.emit(isa.I(isa.ADDI, isa.Gpr(rv2), isa.Imm(1)))
	fb.emit(isa.I(isa.STORE, isa.Mem(regBase, v.off), isa.Gpr(rv2)))
	fb.branch(isa.JMP, head)
	fb.bind(exit)
}

// While emits: for cond { body }.
func (fb *FuncBuilder) While(c Cond, body func()) {
	fb.stmt("while")
	head := fb.newLabel()
	exit := fb.newLabel()
	fb.bind(head)
	c.jumpIfFalse(fb, exit)
	body()
	fb.stmt("while")
	fb.branch(isa.JMP, head)
	fb.bind(exit)
}

// If emits a conditional with an optional else branch (pass nil).
func (fb *FuncBuilder) If(c Cond, then, els func()) {
	fb.stmt("if")
	elseL := fb.newLabel()
	endL := fb.newLabel()
	c.jumpIfFalse(fb, elseL)
	then()
	if els != nil {
		fb.stmt("if")
		fb.branch(isa.JMP, endL)
	}
	fb.bind(elseL)
	if els != nil {
		els()
		fb.bind(endL)
	}
}

// Call emits a call to the named function (resolved at build time).
func (fb *FuncBuilder) Call(fn string) {
	fb.stmt("call " + fn)
	fb.fixups = append(fb.fixups, fixup{instr: len(fb.instrs), fn: fn})
	fb.emit(isa.I(isa.CALL, isa.Imm(0)))
}

// Ret terminates the function.
func (fb *FuncBuilder) Ret() {
	fb.stmt("return")
	fb.emit(isa.I(isa.RET))
	fb.closed = true
}

// Halt terminates the program (entry function only).
func (fb *FuncBuilder) Halt() {
	fb.stmt("halt")
	fb.emit(isa.I(isa.HALT))
	fb.closed = true
}

// Out emits a floating-point value to the program output stream.
func (fb *FuncBuilder) Out(e Expr) {
	fb.stmt("out")
	if fb.prog.rewrite {
		e = rewriteExpr(e)
	}
	fb.compileF(&e, 0, 0)
	if fb.prog.mode == ModeF32 {
		fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF32)))
	} else {
		fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysOutF64)))
	}
}

// OutInt emits an integer value to the program output stream.
func (fb *FuncBuilder) OutInt(e IExpr) {
	fb.stmt("out")
	r := fb.compileI(&e, 0, 0)
	fb.emit(isa.I(isa.MOVRR, isa.Gpr(isa.RAX), isa.Gpr(r)))
	fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysOutI64)))
}

// Cond is a boolean condition usable in If and While.
type Cond struct {
	fa, fb2 *Expr  // floating-point comparison
	ia, ib  *IExpr // integer comparison
	op      cmpOp
}

type cmpOp uint8

const (
	cmpLT cmpOp = iota
	cmpLE
	cmpGT
	cmpGE
	cmpEQ
	cmpNE
)

// Lt returns a < b for floating-point expressions.
func Lt(a, b Expr) Cond { return Cond{fa: &a, fb2: &b, op: cmpLT} }

// Le returns a <= b.
func Le(a, b Expr) Cond { return Cond{fa: &a, fb2: &b, op: cmpLE} }

// Gt returns a > b.
func Gt(a, b Expr) Cond { return Cond{fa: &a, fb2: &b, op: cmpGT} }

// Ge returns a >= b.
func Ge(a, b Expr) Cond { return Cond{fa: &a, fb2: &b, op: cmpGE} }

// ILt returns a < b for integer expressions.
func ILt(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpLT} }

// ILe returns a <= b.
func ILe(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpLE} }

// IGt returns a > b.
func IGt(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpGT} }

// IGe returns a >= b.
func IGe(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpGE} }

// IEq returns a == b.
func IEq(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpEQ} }

// INe returns a != b.
func INe(a, b IExpr) Cond { return Cond{ia: &a, ib: &b, op: cmpNE} }

// jumpIfFalse emits the comparison and a branch to label taken when the
// condition is false.
func (c Cond) jumpIfFalse(fb *FuncBuilder, label int) {
	if c.fa != nil {
		// Compile a<b as b>a and a<=b as b>=a so the unordered case (NaN,
		// which sets ZF and CF like x86 UCOMI) makes every ordering
		// comparison false — the operand swap real compilers emit.
		a, b, op := c.fa, c.fb2, c.op
		switch op {
		case cmpLT:
			a, b, op = b, a, cmpGT
		case cmpLE:
			a, b, op = b, a, cmpGE
		}
		fb.compileF(a, 0, 0)
		fb.compileF(b, 1, 0)
		cmp := isa.UCOMISD
		if fb.prog.mode == ModeF32 {
			cmp = isa.UCOMISS
		}
		fb.emit(isa.I(cmp, isa.Xmm(0), isa.Xmm(1)))
		// Floating-point comparisons use the unsigned branch family, as
		// real SSE code does.
		var br isa.Op
		switch op {
		case cmpGT:
			br = isa.JBE
		case cmpGE:
			br = isa.JB
		case cmpEQ:
			br = isa.JNE
		default:
			br = isa.JE
		}
		fb.branch(br, label)
		return
	}
	ra := fb.compileI(c.ia, 0, 0)
	rb := fb.compileI(c.ib, 1, 0)
	fb.emit(isa.I(isa.CMPR, isa.Gpr(ra), isa.Gpr(rb)))
	var br isa.Op
	switch c.op {
	case cmpLT:
		br = isa.JGE
	case cmpLE:
		br = isa.JG
	case cmpGT:
		br = isa.JLE
	case cmpGE:
		br = isa.JL
	case cmpEQ:
		br = isa.JNE
	default:
		br = isa.JE
	}
	fb.branch(br, label)
}

// MPIRank stores this rank's id into v.
func (fb *FuncBuilder) MPIRank(v IVar) {
	fb.stmt("mpi_rank")
	fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysMPIRank)))
	fb.emit(isa.I(isa.STORE, isa.Mem(regBase, v.off), isa.Gpr(isa.RAX)))
}

// MPISize stores the communicator size into v.
func (fb *FuncBuilder) MPISize(v IVar) {
	fb.stmt("mpi_size")
	fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysMPISize)))
	fb.emit(isa.I(isa.STORE, isa.Mem(regBase, v.off), isa.Gpr(isa.RAX)))
}

// MPIBarrier emits a barrier across all ranks.
func (fb *FuncBuilder) MPIBarrier() {
	fb.stmt("mpi_barrier")
	fb.emit(isa.I(isa.SYSCALL, isa.Imm(isa.SysMPIBarrier)))
}

// mpiVec loads RDI = &arr[0], RSI = count and issues the syscall.
func (fb *FuncBuilder) mpiVec(num int64, arr FArr, count IExpr, rank IExpr, hasRank bool) {
	fb.stmt("mpi " + arr.name)
	fb.emit(isa.I(isa.LEA, isa.Gpr(isa.RDI), isa.Mem(regBase, arr.off)))
	rc := fb.compileI(&count, 0, 0)
	fb.emit(isa.I(isa.MOVRR, isa.Gpr(isa.RSI), isa.Gpr(rc)))
	if hasRank {
		rr := fb.compileI(&rank, 0, 0)
		fb.emit(isa.I(isa.MOVRR, isa.Gpr(isa.RDX), isa.Gpr(rr)))
	}
	fb.emit(isa.I(isa.SYSCALL, isa.Imm(num)))
}

// MPIAllreduceSum sums the first count elements of arr across all ranks,
// in place on every rank.
func (fb *FuncBuilder) MPIAllreduceSum(arr FArr, count IExpr) {
	fb.mpiVec(isa.SysMPIAllreduce, arr, count, IExpr{}, false)
}

// MPISend sends the first count elements of arr to rank dest.
func (fb *FuncBuilder) MPISend(arr FArr, count, dest IExpr) {
	fb.mpiVec(isa.SysMPISendF64, arr, count, dest, true)
}

// MPIRecv receives count elements into arr from rank src.
func (fb *FuncBuilder) MPIRecv(arr FArr, count, src IExpr) {
	fb.mpiVec(isa.SysMPIRecvF64, arr, count, src, true)
}

// MPIBcast broadcasts the first count elements of arr from rank root.
func (fb *FuncBuilder) MPIBcast(arr FArr, count, root IExpr) {
	fb.mpiVec(isa.SysMPIBcastF64, arr, count, root, true)
}
