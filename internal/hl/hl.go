// Package hl is a small structured-programming builder that compiles to
// fpmix ISA code. It plays the role the Fortran compiler plays for the
// paper's NAS benchmarks: kernels are written against scalars, arrays,
// loops and function calls, and hl lowers them to double-precision SSE-like
// machine code (MOVSD/ADDSD/...) laid out as a prog.Module that the
// binary-analysis stack then parses, instruments and rewrites.
//
// The builder has two code-generation modes. ModeF64 is the normal build:
// 8-byte floating-point slots and double-precision opcodes. ModeF32 is the
// "manually converted" build the paper compares against (§3.1): the same
// source program lowered to 4-byte slots and single-precision opcodes.
//
// Code generation uses evaluation stacks: floating-point expressions
// evaluate in xmm0..xmm12, integer expressions in r8..r12. rbx always
// holds the data-segment base; r13-r15 are code-generation scratch.
package hl

import (
	"encoding/binary"
	"fmt"
	"math"

	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Mode selects the floating-point width a program is compiled at.
type Mode uint8

// Compilation modes.
const (
	ModeF64 Mode = iota // normal double-precision build
	ModeF32             // manual single-precision conversion build
)

// Register conventions for generated code.
const (
	regBase     = isa.RBX // data segment base
	fpStackSize = 13      // xmm0..xmm12 evaluation stack
	intStackLo  = isa.R8  // r8..r12 evaluation stack
	intStackSz  = 5
	scrA        = isa.R13
	scrB        = isa.R14
	scrC        = isa.R15
)

// FVar is a floating-point scalar variable (one slot in the data segment).
type FVar struct {
	name string
	off  int32
}

// FArr is a floating-point array.
type FArr struct {
	name string
	off  int32
	n    int
}

// Len returns the element count.
func (a FArr) Len() int { return a.n }

// IVar is a 64-bit integer scalar variable.
type IVar struct {
	name string
	off  int32
}

// IArr is a 64-bit integer array.
type IArr struct {
	name string
	off  int32
	n    int
}

// Len returns the element count.
func (a IArr) Len() int { return a.n }

// Prog accumulates globals and functions and builds the final module.
type Prog struct {
	name    string
	mode    Mode
	dataOff int32
	inits   []func(data []byte)
	funcs   []*FuncBuilder
	stack   uint64
	regions []prog.Region
	rewrite bool
}

// New creates a program builder.
func New(name string, mode Mode) *Prog {
	return &Prog{name: name, mode: mode, stack: 1 << 16, rewrite: defaultRewrite.Load()}
}

// Mode returns the compilation mode.
func (p *Prog) Mode() Mode { return p.mode }

// SetStackSize reserves n bytes of stack above the data segment.
func (p *Prog) SetStackSize(n uint64) { p.stack = n }

// fpSlot returns the byte width of one floating-point slot.
func (p *Prog) fpSlot() int32 {
	if p.mode == ModeF32 {
		return 4
	}
	return 8
}

func (p *Prog) alloc(n, align int32) int32 {
	if r := p.dataOff % align; r != 0 {
		p.dataOff += align - r
	}
	off := p.dataOff
	p.dataOff += n
	return off
}

// Scalar declares a floating-point scalar initialized to zero.
func (p *Prog) Scalar(name string) FVar {
	return FVar{name: name, off: p.alloc(p.fpSlot(), p.fpSlot())}
}

// ScalarInit declares a floating-point scalar with an initial value.
func (p *Prog) ScalarInit(name string, v float64) FVar {
	s := p.Scalar(name)
	off := s.off
	mode := p.mode
	p.inits = append(p.inits, func(data []byte) {
		putF(data, off, v, mode)
	})
	return s
}

// Array declares a zero-initialized floating-point array of n elements.
// Array extents are recorded in the module's region table: the compiler
// guarantees indexed accesses through an array's base displacement stay
// within its allocation, which is what lets the dataflow analyses keep
// distinct arrays in distinct memory cells.
func (p *Prog) Array(name string, n int) FArr {
	size := int32(n) * p.fpSlot()
	off := p.alloc(size, p.fpSlot())
	p.regions = append(p.regions, prog.Region{Name: name, Off: off, Size: size})
	return FArr{name: name, off: off, n: n}
}

// ArrayInit declares a floating-point array initialized from vals.
func (p *Prog) ArrayInit(name string, vals []float64) FArr {
	a := p.Array(name, len(vals))
	off, slot, mode := a.off, p.fpSlot(), p.mode
	vv := append([]float64(nil), vals...)
	p.inits = append(p.inits, func(data []byte) {
		for i, v := range vv {
			putF(data, off+int32(i)*slot, v, mode)
		}
	})
	return a
}

// Int declares an integer scalar initialized to zero.
func (p *Prog) Int(name string) IVar {
	return IVar{name: name, off: p.alloc(8, 8)}
}

// IntInit declares an integer scalar with an initial value.
func (p *Prog) IntInit(name string, v int64) IVar {
	s := p.Int(name)
	off := s.off
	p.inits = append(p.inits, func(data []byte) {
		binary.LittleEndian.PutUint64(data[off:], uint64(v))
	})
	return s
}

// IntArray declares a zero-initialized integer array of n elements.
func (p *Prog) IntArray(name string, n int) IArr {
	size := int32(n) * 8
	off := p.alloc(size, 8)
	p.regions = append(p.regions, prog.Region{Name: name, Off: off, Size: size})
	return IArr{name: name, off: off, n: n}
}

// IntArrayInit declares an integer array initialized from vals.
func (p *Prog) IntArrayInit(name string, vals []int64) IArr {
	a := p.IntArray(name, len(vals))
	off := a.off
	vv := append([]int64(nil), vals...)
	p.inits = append(p.inits, func(data []byte) {
		for i, v := range vv {
			binary.LittleEndian.PutUint64(data[off+int32(i)*8:], uint64(v))
		}
	})
	return a
}

func putF(data []byte, off int32, v float64, mode Mode) {
	if mode == ModeF32 {
		binary.LittleEndian.PutUint32(data[off:], math.Float32bits(float32(v)))
	} else {
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(v))
	}
}

// Func starts a new function body. The returned builder's statement
// methods append code; finish with Ret (or Halt for the entry function).
func (p *Prog) Func(name string) *FuncBuilder {
	fb := &FuncBuilder{prog: p, name: name}
	p.funcs = append(p.funcs, fb)
	return fb
}

// Build lays out all functions, resolves labels and calls, and returns the
// executable module. The entry function receives a prologue that loads the
// data-segment base register.
func (p *Prog) Build(entry string) (*prog.Module, error) {
	var entryFb *FuncBuilder
	for _, fb := range p.funcs {
		if fb.name == entry {
			entryFb = fb
		}
	}
	if entryFb == nil {
		return nil, fmt.Errorf("hl: entry function %q not defined", entry)
	}
	// Prologue: rbx = DataBase.
	entryFb.instrs = append([]isa.Instr{
		isa.I(isa.MOVRI, isa.Gpr(regBase), isa.Imm(int64(prog.DataBase))),
	}, entryFb.instrs...)
	entryFb.srcs = append([]string{"prologue"}, entryFb.srcs...)
	for i := range entryFb.fixups {
		entryFb.fixups[i].instr++
	}
	for k, v := range entryFb.labels {
		entryFb.labels[k] = v + 1
	}

	data := make([]byte, p.dataOff)
	for _, init := range p.inits {
		init(data)
	}
	var funcs []*prog.Func
	for _, fb := range p.funcs {
		if !fb.closed {
			return nil, fmt.Errorf("hl: function %s not terminated with Ret or Halt", fb.name)
		}
		funcs = append(funcs, &prog.Func{Name: fb.name, Instrs: fb.instrs})
	}
	memSize := prog.DataBase + uint64(len(data)) + p.stack
	memSize = (memSize + 15) &^ 15
	mod, err := prog.Build(p.name, funcs, data, memSize, entry)
	if err != nil {
		return nil, err
	}
	mod.Regions = append([]prog.Region(nil), p.regions...)
	// Resolve label and call fixups now that addresses are assigned.
	for _, fb := range p.funcs {
		f := mod.FuncByName(fb.name)
		for _, fx := range fb.fixups {
			var target uint64
			if fx.fn != "" {
				callee := mod.FuncByName(fx.fn)
				if callee == nil {
					return nil, fmt.Errorf("hl: %s calls undefined function %q", fb.name, fx.fn)
				}
				target = callee.Addr
			} else {
				idx, ok := fb.labels[fx.label]
				if !ok {
					return nil, fmt.Errorf("hl: %s: unresolved label %d", fb.name, fx.label)
				}
				target = f.Instrs[idx].Addr
			}
			f.Instrs[fx.instr].A.Imm = int64(target)
		}
	}
	// Attach debug info: instruction address -> "func: statement".
	mod.Debug = make(map[uint64]string)
	for _, fb := range p.funcs {
		f := mod.FuncByName(fb.name)
		for i, in := range f.Instrs {
			if i < len(fb.srcs) && fb.srcs[i] != "" {
				mod.Debug[in.Addr] = fb.name + ": " + fb.srcs[i]
			}
		}
	}
	if err := mod.Validate(); err != nil {
		return nil, err
	}
	return mod, nil
}
