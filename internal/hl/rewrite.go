package hl

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"fpmix/internal/errbound"
	"fpmix/internal/isa"
)

// Expression rewriting.
//
// When enabled, every statement-level floating-point expression is
// rewritten before code generation: the builder explores a small,
// deterministic neighborhood of algebraically equivalent forms
// (flattened and regrouped sums and products, exact constant folding,
// power-of-two factor hoisting, common-factor extraction) and emits the
// variant with the smallest structural round-off score — a worst-case
// rounding estimate in units of the target format's epsilon
// (errbound.Single.Eps()). Exact transformations (constant folding,
// power-of-two multiplies) cost nothing; each other rounding operation
// adds one epsilon along its accumulation path, so balanced trees beat
// linear chains and hoisted exact factors beat distributed inexact ones.
//
// Reassociation changes which double-precision roundings happen, so the
// rewritten program is a different (tighter-error) program — the pass
// defaults to off and is opt-in per program (EnableRewrite) or process
// (SetDefaultRewrite). There is no fused multiply-add in the ISA;
// "fusion" here means choosing the association that keeps each product
// adjacent to the sum that consumes it, which the scorer prefers
// naturally because it minimizes intermediate roundings.
var defaultRewrite atomic.Bool

// SetDefaultRewrite sets whether newly created programs rewrite
// expressions, returning the previous setting.
func SetDefaultRewrite(on bool) (prev bool) { return defaultRewrite.Swap(on) }

// EnableRewrite turns on expression rewriting for this program.
func (p *Prog) EnableRewrite() { p.rewrite = true }

// RewriteEnabled reports whether this program rewrites expressions.
func (p *Prog) RewriteEnabled() bool { return p.rewrite }

// maxVariants bounds the rewrite neighborhood per statement.
const maxVariants = 32

// rewriteExpr returns the best-scored equivalent of e.
func rewriteExpr(e Expr) Expr {
	c := canon(e)
	vars := []Expr{c}
	vars = appendSumVariants(vars, c)
	vars = appendMulVariants(vars, c)
	best, bestErr, bestOps := vars[0], scoreErr(&vars[0]), opCount(&vars[0])
	for _, v := range vars[1:] {
		v := v
		se, so := scoreErr(&v), opCount(&v)
		if se < bestErr || (se == bestErr && so < bestOps) {
			best, bestErr, bestOps = v, se, so
		}
	}
	return best
}

// canon recursively folds constant subexpressions. Folding is always
// bit-identical: the emitted code would compute the same correctly
// rounded double at run time, so replacing the operation with its
// result literal changes nothing.
func canon(e Expr) Expr {
	switch e.kind {
	case eArith:
		a, b := canon(*e.a), canon(*e.b)
		if a.kind == eConst && b.kind == eConst {
			if v, ok := foldVM(e.op, a.v, b.v); ok {
				return Const(v)
			}
		}
		return Expr{kind: eArith, op: e.op, a: &a, b: &b}
	case eUnary:
		a := canon(*e.a)
		if a.kind == eConst {
			if v, ok := foldUnVM(e.op, a.v); ok {
				return Const(v)
			}
		}
		return Expr{kind: eUnary, op: e.op, a: &a}
	case eNeg:
		a := canon(*e.a)
		if a.kind == eConst {
			// The emitted form is 0 - a: exactly -a for nonzero a, +0 for a=0.
			if a.v == 0 {
				return Const(0)
			}
			return Const(-a.v)
		}
		return Expr{kind: eNeg, a: &a}
	case eAbs:
		a := canon(*e.a)
		if a.kind == eConst {
			return Const(math.Abs(a.v))
		}
		return Expr{kind: eAbs, a: &a}
	default:
		return e
	}
}

// foldVM mirrors the VM's binary arithmetic; NaN results stay unfolded
// so payload/ordering subtleties never enter the literal pool.
func foldVM(op isa.Op, a, b float64) (float64, bool) {
	var v float64
	switch op {
	case isa.ADDSD:
		v = a + b
	case isa.SUBSD:
		v = a - b
	case isa.MULSD:
		v = a * b
	case isa.DIVSD:
		v = a / b
	case isa.MINSD:
		if a < b {
			v = a
		} else {
			v = b
		}
	case isa.MAXSD:
		if a > b {
			v = a
		} else {
			v = b
		}
	default:
		return 0, false
	}
	return v, !math.IsNaN(v)
}

func foldUnVM(op isa.Op, a float64) (float64, bool) {
	var v float64
	switch op {
	case isa.SQRTSD:
		v = math.Sqrt(a)
	case isa.SINSD:
		v = math.Sin(a)
	case isa.COSSD:
		v = math.Cos(a)
	case isa.EXPSD:
		v = math.Exp(a)
	case isa.LOGSD:
		v = math.Log(a)
	default:
		return 0, false
	}
	return v, !math.IsNaN(v)
}

// term is one signed addend of a flattened sum.
type term struct {
	e   Expr
	neg bool
}

// flattenSum collects the addends of a +/- chain (nil if e is not a
// sum of at least three terms, where regrouping has any freedom).
func flattenSum(e Expr) []term {
	var out []term
	var walk func(x Expr, neg bool)
	walk = func(x Expr, neg bool) {
		if x.kind == eArith && (x.op == isa.ADDSD || x.op == isa.SUBSD) {
			walk(*x.a, neg)
			walk(*x.b, neg != (x.op == isa.SUBSD))
			return
		}
		if x.kind == eNeg {
			walk(*x.a, !neg)
			return
		}
		out = append(out, term{e: x, neg: neg})
	}
	walk(e, false)
	if len(out) < 3 {
		return nil
	}
	return out
}

func appendSumVariants(vars []Expr, c Expr) []Expr {
	terms := flattenSum(c)
	if terms == nil {
		return vars
	}
	if len(vars) < maxVariants {
		vars = append(vars, buildBalanced(terms))
	}
	if len(vars) < maxVariants {
		sorted := append([]term(nil), terms...)
		sort.SliceStable(sorted, func(i, j int) bool {
			oi, oj := opCount(&sorted[i].e), opCount(&sorted[j].e)
			if oi != oj {
				return oi < oj
			}
			return key(&sorted[i].e) < key(&sorted[j].e)
		})
		vars = append(vars, buildChain(sorted))
	}
	if len(vars) < maxVariants {
		if f, ok := factorPow2(terms); ok {
			vars = append(vars, f)
		}
	}
	if len(vars) < maxVariants {
		if f, ok := factorCommon(terms); ok {
			vars = append(vars, f)
		}
	}
	return vars
}

func appendMulVariants(vars []Expr, c Expr) []Expr {
	var fs []Expr
	var walk func(x Expr)
	walk = func(x Expr) {
		if x.kind == eArith && x.op == isa.MULSD {
			walk(*x.a)
			walk(*x.b)
			return
		}
		fs = append(fs, x)
	}
	walk(c)
	if len(fs) < 3 || len(vars) >= maxVariants {
		return vars
	}
	// Hoist constants together (their product folds exactly at build
	// time) and balance the rest.
	var consts, rest []term
	for _, f := range fs {
		if f.kind == eConst {
			consts = append(consts, term{e: f})
		} else {
			rest = append(rest, term{e: f})
		}
	}
	build := func(ts []term) Expr {
		acc := ts[0].e
		for _, t := range ts[1:] {
			acc = Mul(acc, t.e)
		}
		return acc
	}
	var v Expr
	switch {
	case len(rest) == 0:
		v = canon(build(consts))
	case len(consts) == 0:
		v = buildBalancedMul(rest)
	default:
		v = Mul(buildBalancedMul(rest), canon(build(consts)))
	}
	return append(vars, v)
}

// buildChain rebuilds a left-leaning +/- chain from signed terms.
func buildChain(ts []term) Expr {
	i := 0
	for i < len(ts) && ts[i].neg {
		i++
	}
	var acc Expr
	var rest []term
	if i == len(ts) { // all negative: -(t0 + t1 + ...)
		pos := make([]term, len(ts))
		for j, t := range ts {
			pos[j] = term{e: t.e}
		}
		inner := buildChain(pos)
		return Expr{kind: eNeg, a: &inner}
	}
	acc = ts[i].e
	rest = append(append([]term(nil), ts[:i]...), ts[i+1:]...)
	for _, t := range rest {
		if t.neg {
			acc = Sub(acc, t.e)
		} else {
			acc = Add(acc, t.e)
		}
	}
	return acc
}

// buildBalanced rebuilds the sum as balanced positive and negative
// trees joined by one subtraction.
func buildBalanced(ts []term) Expr {
	var pos, neg []Expr
	for _, t := range ts {
		if t.neg {
			neg = append(neg, t.e)
		} else {
			pos = append(pos, t.e)
		}
	}
	switch {
	case len(pos) == 0:
		inner := balTree(neg, isa.ADDSD)
		return Expr{kind: eNeg, a: &inner}
	case len(neg) == 0:
		return balTree(pos, isa.ADDSD)
	default:
		return Sub(balTree(pos, isa.ADDSD), balTree(neg, isa.ADDSD))
	}
}

func buildBalancedMul(ts []term) Expr {
	es := make([]Expr, len(ts))
	for i, t := range ts {
		es[i] = t.e
	}
	return balTree(es, isa.MULSD)
}

func balTree(es []Expr, op isa.Op) Expr {
	if len(es) == 1 {
		return es[0]
	}
	mid := len(es) / 2
	return bin(op, balTree(es[:mid], op), balTree(es[mid:], op))
}

// factorPow2 hoists a power-of-two constant factor shared by at least
// two terms: x*c + y*c -> (x+y)*c. The multiply by c is exact, so the
// factored form saves one rounding per hoisted term.
func factorPow2(ts []term) (Expr, bool) {
	factorOf := func(e Expr) (float64, Expr, bool) {
		if e.kind == eArith && e.op == isa.MULSD {
			if e.b.kind == eConst && isPow2(e.b.v) {
				return e.b.v, *e.a, true
			}
			if e.a.kind == eConst && isPow2(e.a.v) {
				return e.a.v, *e.b, true
			}
		}
		return 0, e, false
	}
	// Hoist the power-of-two factor of the first term that has one.
	var c float64
	found := false
	for _, t := range ts {
		if v, _, ok := factorOf(t.e); ok {
			c, found = v, true
			break
		}
	}
	if !found {
		return Expr{}, false
	}
	var in, out []term
	for _, t := range ts {
		if v, x, ok := factorOf(t.e); ok && v == c {
			in = append(in, term{e: x, neg: t.neg})
		} else {
			out = append(out, t)
		}
	}
	if len(in) < 2 {
		return Expr{}, false
	}
	f := Mul(buildBalanced(in), Const(c))
	if len(out) == 0 {
		return f, true
	}
	return buildChain(append([]term{{e: f}}, out...)), true
}

// factorCommon extracts a structurally identical non-constant factor
// shared by every term: a*x + b*x -> (a+b)*x.
func factorCommon(ts []term) (Expr, bool) {
	split := func(e Expr) (l, r Expr, ok bool) {
		if e.kind == eArith && e.op == isa.MULSD {
			return *e.a, *e.b, true
		}
		return e, Expr{}, false
	}
	a0, b0, ok := split(ts[0].e)
	if !ok {
		return Expr{}, false
	}
	for _, cand := range []Expr{b0, a0} {
		if cand.kind == eConst {
			continue
		}
		ck := key(&cand)
		rest := make([]term, len(ts))
		good := true
		for i, t := range ts {
			l, r, ok := split(t.e)
			if !ok {
				good = false
				break
			}
			switch {
			case key(&r) == ck:
				rest[i] = term{e: l, neg: t.neg}
			case key(&l) == ck:
				rest[i] = term{e: r, neg: t.neg}
			default:
				good = false
			}
			if !good {
				break
			}
		}
		if good {
			return Mul(buildBalanced(rest), cand), true
		}
	}
	return Expr{}, false
}

func isPow2(v float64) bool {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return false
	}
	f, _ := math.Frexp(math.Abs(v))
	return f == 0.5
}

// scoreErr estimates the worst-case accumulated rounding of e in units
// of the target format's epsilon: each inexact rounding along a path
// adds one epsilon; exact operations (power-of-two multiplies, negation,
// absolute value, min/max selection) add none.
func scoreErr(e *Expr) float64 {
	eps := errbound.Single.Eps()
	var walk func(x *Expr) float64
	walk = func(x *Expr) float64 {
		switch x.kind {
		case eConst, eLoad, eIndex, eFromI:
			return 0
		case eNeg, eAbs:
			return walk(x.a)
		case eUnary:
			in := walk(x.a)
			switch x.op {
			case isa.SQRTSD:
				return in/2 + eps
			default: // transcendental: modest conditioning allowance
				return 4*in + eps
			}
		case eArith:
			a, b := walk(x.a), walk(x.b)
			switch x.op {
			case isa.ADDSD, isa.SUBSD:
				return math.Max(a, b) + eps
			case isa.MULSD:
				if (x.a.kind == eConst && isPow2(x.a.v)) ||
					(x.b.kind == eConst && isPow2(x.b.v)) {
					return a + b
				}
				return a + b + eps
			case isa.DIVSD:
				if x.b.kind == eConst && isPow2(x.b.v) {
					return a + b
				}
				return a + b + eps
			default: // MINSD/MAXSD select an input unchanged
				return math.Max(a, b)
			}
		}
		return 0
	}
	return walk(e)
}

func opCount(e *Expr) int {
	n := 0
	var walk func(x *Expr)
	walk = func(x *Expr) {
		switch x.kind {
		case eArith:
			n++
			walk(x.a)
			walk(x.b)
		case eUnary:
			n++
			walk(x.a)
		case eNeg, eAbs:
			n++
			walk(x.a)
		}
	}
	walk(e)
	return n
}

// key is a deterministic structural fingerprint used for sorting terms
// and matching common factors.
func key(e *Expr) string {
	switch e.kind {
	case eConst:
		return fmt.Sprintf("c%x", math.Float64bits(e.v))
	case eLoad:
		return fmt.Sprintf("v%d", e.fvar.off)
	case eIndex:
		return fmt.Sprintf("a%d[%s]", e.arr.off, ikey(e.idx))
	case eArith:
		return fmt.Sprintf("(%s %d %s)", key(e.a), e.op, key(e.b))
	case eUnary:
		return fmt.Sprintf("u%d(%s)", e.op, key(e.a))
	case eNeg:
		return "-(" + key(e.a) + ")"
	case eAbs:
		return "|" + key(e.a) + "|"
	case eFromI:
		return "f(" + ikey(e.iexpr) + ")"
	}
	return "?"
}

func ikey(e *IExpr) string {
	switch e.kind {
	case iConst:
		return fmt.Sprintf("%d", e.v)
	case iLoad:
		return fmt.Sprintf("i%d", e.ivar.off)
	case iIndex:
		return fmt.Sprintf("ia%d[%s]", e.arr.off, ikey(e.idx))
	case iArith:
		return fmt.Sprintf("(%s %d %s)", ikey(e.a), e.op, ikey(e.b))
	case iShift:
		return fmt.Sprintf("(%s s%d %d)", ikey(e.a), e.op, e.v)
	case iToI:
		return "t(" + key(e.fe) + ")"
	}
	return "?"
}
