package search

import (
	"math"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// mixedProgram builds a program with one single-safe function (sums values
// exactly representable in float32) and one precision-sensitive function
// (accumulates tiny increments that vanish in float32).
func mixedProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("mixed", hl.ModeF64)
	a := p.ArrayInit("a", []float64{1.5, 2.25, 3.0, 0.5, 4.75, 8.5, 1.25, 2.0})
	safeSum := p.Scalar("safeSum")
	tiny := p.Scalar("tiny")
	i := p.Int("i")

	main := p.Func("main")
	main.Call("safe")
	main.Call("sensitive")
	main.Out(hl.Load(safeSum))
	main.Out(hl.Load(tiny))
	main.Halt()

	sf := p.Func("safe")
	sf.For(i, hl.IConst(0), hl.IConst(8), func() {
		sf.Set(safeSum, hl.Add(hl.Load(safeSum), hl.At(a, hl.ILoad(i))))
	})
	sf.Ret()

	sn := p.Func("sensitive")
	sn.Set(tiny, hl.Const(1.0))
	sn.For(i, hl.IConst(0), hl.IConst(200), func() {
		sn.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
	})
	sn.Ret()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// refVerify returns a verification routine comparing against the double
// reference outputs within tol (decoding replaced outputs).
func refVerify(t *testing.T, m *prog.Module, tol float64) func([]vm.OutVal) bool {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, len(mach.Out))
	for i, o := range mach.Out {
		ref[i] = o.F64()
	}
	return func(out []vm.OutVal) bool {
		if len(out) != len(ref) {
			return false
		}
		for i, o := range out {
			got := replace.Value(o.Bits)
			if math.IsNaN(got) {
				return false
			}
			if math.Abs(got-ref[i]) > tol*math.Max(1, math.Abs(ref[i])) {
				return false
			}
		}
		return true
	}
}

func TestSearchFindsSafeFunction(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	res, err := Run(tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 {
		t.Fatal("no candidates")
	}
	// The safe function must pass as a whole (coarsest granularity).
	foundSafeFunc := false
	for _, p := range res.Passing {
		if p.Kind == config.KindFunc && p.Label == "func safe" {
			foundSafeFunc = true
		}
		if p.Label == "func sensitive" {
			t.Error("sensitive function passed whole")
		}
	}
	if !foundSafeFunc {
		labels := []string{}
		for _, p := range res.Passing {
			labels = append(labels, p.Label)
		}
		t.Errorf("safe function not found as a passing piece; passing = %v", labels)
	}
	// Some but not all instructions replaced.
	if res.Stats.StaticSingle == 0 {
		t.Error("nothing replaced")
	}
	if res.Stats.StaticSingle == res.Candidates {
		t.Error("everything replaced — sensitive part should fail")
	}
	// More configurations tested than 2 (module failed, descent happened).
	if res.Tested <= 2 {
		t.Errorf("tested = %d", res.Tested)
	}
}

func TestSearchAllSafeConvergesAtModule(t *testing.T) {
	p := hl.New("allsafe", hl.ModeF64)
	x := p.ScalarInit("x", 2.0)
	main := p.Func("main")
	main.Set(x, hl.Mul(hl.Load(x), hl.Const(3.0)))
	main.Out(hl.Load(x))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-6)}
	res, err := Run(tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The whole program is provably exact in single (2*3 = 6 on the
	// integer grid), so the error-bound prover settles the module piece
	// without a run and only the final union is evaluated.
	if res.Tested != 1 {
		t.Errorf("tested = %d, want 1", res.Tested)
	}
	if res.Proved != 1 {
		t.Errorf("proved = %d, want 1", res.Proved)
	}
	if len(res.Passing) != 1 || res.Passing[0].Kind != config.KindModule {
		t.Errorf("passing = %+v", res.Passing)
	}
	if !res.FinalPass {
		t.Error("final union failed")
	}
	if res.Stats.StaticPct != 100 {
		t.Errorf("static pct = %v", res.Stats.StaticPct)
	}
}

func TestSearchParallelMatchesSerial(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	serial, err := Run(Target{Module: m, Verify: v}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Target{Module: m, Verify: v}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tested != par.Tested {
		t.Errorf("tested differ: %d vs %d", serial.Tested, par.Tested)
	}
	if serial.Stats.StaticSingle != par.Stats.StaticSingle {
		t.Errorf("replacement differs: %d vs %d", serial.Stats.StaticSingle, par.Stats.StaticSingle)
	}
	if serial.FinalPass != par.FinalPass {
		t.Error("final verdict differs")
	}
}

func TestSearchBinarySplitReducesTests(t *testing.T) {
	// A program with one big function of many safe adds and a single
	// sensitive instruction: binary splitting should isolate the bad
	// instruction in fewer evaluations than exhaustive expansion.
	p := hl.New("bigfunc", hl.ModeF64)
	x := p.ScalarInit("x", 1.0)
	tiny := p.ScalarInit("tiny", 1.0)
	main := p.Func("main")
	// One straight-line basic block: 24 safe adds with a single
	// precision-sensitive instruction buried in the middle.
	for k := 0; k < 24; k++ {
		main.Set(x, hl.Add(hl.Load(x), hl.Const(0.5)))
		if k == 11 {
			main.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
		}
	}
	main.Out(hl.Load(x))
	main.Out(hl.Load(tiny))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	v := refVerify(t, m, 1e-10)
	// NoProve isolates the splitting dimension from the error-bound
	// prover's evaluation savings.
	plain, err := Run(Target{Module: m, Verify: v}, Options{BinarySplit: false, NoProve: true})
	if err != nil {
		t.Fatal(err)
	}
	split, err := Run(Target{Module: m, Verify: v}, Options{BinarySplit: true, SplitThreshold: 4, NoProve: true})
	if err != nil {
		t.Fatal(err)
	}
	if split.Stats.StaticSingle != plain.Stats.StaticSingle {
		t.Errorf("split changed outcome: %d vs %d", split.Stats.StaticSingle, plain.Stats.StaticSingle)
	}
	if split.Tested >= plain.Tested {
		t.Errorf("binary split did not reduce tests: %d vs %d", split.Tested, plain.Tested)
	}
}

func TestSearchGranularityBlock(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	res, err := Run(Target{Module: m, Verify: v}, Options{Granularity: config.KindBlock})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Passing {
		if p.Kind == config.KindInsn {
			t.Error("descended to instructions despite block granularity")
		}
	}
}

func TestSearchPrioritizeSameOutcome(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	a, err := Run(Target{Module: m, Verify: v}, Options{Prioritize: false})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Target{Module: m, Verify: v}, Options{Prioritize: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.StaticSingle != b.Stats.StaticSingle || a.FinalPass != b.FinalPass {
		t.Error("prioritization changed the outcome")
	}
}

func TestSearchRespectsIgnore(t *testing.T) {
	m := mixedProgram(t)
	base, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// Ignore the sensitive function entirely.
	for _, fn := range base.Root.Children {
		if fn.Name == "sensitive" {
			fn.Flag = config.Ignore
		}
	}
	v := refVerify(t, m, 1e-10)
	res, err := Run(Target{Module: m, Verify: v}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resIgn, err := Run(Target{Module: m, Verify: v, Base: base}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resIgn.Candidates >= res.Candidates {
		t.Errorf("ignore did not shrink candidates: %d vs %d", resIgn.Candidates, res.Candidates)
	}
	// With the troublemaker ignored, the whole remaining module passes.
	if !resIgn.FinalPass {
		t.Error("final should pass with sensitive ignored")
	}
}

// coldProgram extends the mixed shape with a function that is never
// called: its candidates profile to weight zero, so the pruned search
// must auto-pass them without an evaluation run.
func coldProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("coldprog", hl.ModeF64)
	safe := p.Scalar("safe")
	tiny := p.Scalar("tiny")
	unused := p.Scalar("unused")
	i := p.Int("i")

	main := p.Func("main")
	main.Call("safe")
	main.Call("sensitive")
	main.Out(hl.Load(safe))
	main.Out(hl.Load(tiny))
	main.Halt()

	sf := p.Func("safe")
	sf.For(i, hl.IConst(0), hl.IConst(8), func() {
		sf.Set(safe, hl.Add(hl.Load(safe), hl.Const(0.25)))
	})
	sf.Ret()

	sn := p.Func("sensitive")
	sn.Set(tiny, hl.Const(1.0))
	sn.For(i, hl.IConst(0), hl.IConst(200), func() {
		sn.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
	})
	sn.Ret()

	cold := p.Func("cold") // never called
	cold.Set(unused, hl.Add(hl.Load(unused), hl.Const(0.5)))
	cold.Set(unused, hl.Mul(hl.Load(unused), hl.Const(2.0)))
	cold.Ret()

	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSearchPrunesZeroWeightPieces(t *testing.T) {
	m := coldProgram(t)
	v := refVerify(t, m, 1e-10)
	// NoProve on both runs isolates the pruning dimension: the error-bound
	// prover would otherwise settle the never-executed pieces on its own
	// (unreached sites are trivially exact).
	pruned, err := Run(Target{Module: m, Verify: v}, Options{NoProve: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Target{Module: m, Verify: v}, Options{NoPrune: true, NoProve: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PrunedCandidates == 0 {
		t.Error("cold function candidates not pruned")
	}
	if full.PrunedCandidates != 0 {
		t.Errorf("NoPrune still pruned %d candidates", full.PrunedCandidates)
	}
	if pruned.Tested >= full.Tested {
		t.Errorf("pruning did not reduce evaluations: %d vs %d", pruned.Tested, full.Tested)
	}
	if pruned.Candidates != full.Candidates {
		t.Errorf("candidate count changed under pruning: %d vs %d", pruned.Candidates, full.Candidates)
	}
	// The final configurations must be identical: a never-executed piece
	// passes evaluation trivially, so auto-passing it changes nothing.
	if pruned.FinalPass != full.FinalPass {
		t.Error("final verdict differs under pruning")
	}
	effP, effF := pruned.Final.Effective(), full.Final.Effective()
	if len(effP) != len(effF) {
		t.Fatalf("effective map sizes differ: %d vs %d", len(effP), len(effF))
	}
	for a, p := range effF {
		if effP[a] != p {
			t.Errorf("final config differs at %#x: %v vs %v", a, effP[a], p)
		}
	}
}

func TestSearchExcludesUnsafeSinks(t *testing.T) {
	// Inject an analysis result that classifies one safe-function
	// candidate as an exact-integer sink; the search must keep it double,
	// report it, and leave every other decision unchanged.
	m := mixedProgram(t)
	ana, err := dataflow.Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	var victim uint64
	for a := range ana.Sites {
		if victim == 0 || a < victim {
			victim = a
		}
	}
	s := ana.Sites[victim]
	s.Unsafe = true
	ana.Sites[victim] = s

	v := refVerify(t, m, 1e-10)
	pruned, err := Run(Target{Module: m, Verify: v,
		InstOpts: replace.InstrumentOptions{Analysis: ana}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Target{Module: m, Verify: v}, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Unsafe) != 1 || pruned.Unsafe[0] != victim {
		t.Fatalf("Unsafe = %#x, want [%#x]", pruned.Unsafe, victim)
	}
	if pruned.PrunedCandidates < 1 {
		t.Error("unsafe sink not counted as pruned")
	}
	if pruned.Candidates != full.Candidates {
		t.Errorf("candidate count changed: %d vs %d", pruned.Candidates, full.Candidates)
	}
	if p := pruned.Final.Effective()[victim]; p != config.Double {
		t.Errorf("excluded sink configured %v, want Double", p)
	}
	if n := pruned.Final.NodeAt(victim); n == nil || n.Note == "" {
		t.Error("pruned sink not annotated in the final configuration")
	}
}

func TestSearchBaselineMustVerify(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: func([]vm.OutVal) bool { return false }}
	if _, err := Run(tgt, Options{}); err == nil {
		t.Error("baseline verification failure not reported")
	}
}

func TestSearchTargetValidation(t *testing.T) {
	if _, err := Run(Target{}, Options{}); err == nil {
		t.Error("empty target accepted")
	}
}

func TestSearchDynamicVsStaticDivergence(t *testing.T) {
	// A hot sensitive loop and cold safe code: static % high, dynamic %
	// low — the CG/FT shape from Figure 10.
	p := hl.New("hotcold", hl.ModeF64)
	cold := p.Scalar("cold")
	hot := p.ScalarInit("hot", 1.0)
	i := p.Int("i")
	main := p.Func("main")
	// Cold safe region: 10 static candidates, 10 dynamic executions.
	for k := 0; k < 10; k++ {
		main.Set(cold, hl.Add(hl.Load(cold), hl.Const(0.25)))
	}
	// Hot sensitive loop: 1 static candidate, 500 dynamic executions.
	main.For(i, hl.IConst(0), hl.IConst(500), func() {
		main.Set(hot, hl.Add(hl.Load(hot), hl.Const(1e-9)))
	})
	main.Out(hl.Load(cold))
	main.Out(hl.Load(hot))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Target{Module: m, Verify: refVerify(t, m, 1e-10)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StaticPct < 50 {
		t.Errorf("static pct = %.1f, want most instructions replaceable", res.Stats.StaticPct)
	}
	if res.Stats.DynamicPct > res.Stats.StaticPct {
		t.Errorf("dynamic pct (%.1f) should lag static (%.1f) here",
			res.Stats.DynamicPct, res.Stats.StaticPct)
	}
}
