package search

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/faultinject"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// Fork-point evaluation must change nothing but speed: search finals are
// byte-identical between EngineFork and EngineOn, on real kernels, on
// randomized programs, under chaos and across checkpoint resume — and a
// forked machine run is whole-machine identical to the from-scratch run
// of the same assembled program.

func TestForkSearchIdenticalOnKernels(t *testing.T) {
	names := []string{"ep", "mg"}
	if !testing.Short() {
		names = append(names, "lu")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}
			plain, err := Run(tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			fo := opts
			fo.Engine = EngineFork
			forked, err := Run(tgt, fo)
			if err != nil {
				t.Fatal(err)
			}
			if forked.Final.String() != plain.Final.String() {
				t.Error("fork engine changed the final configuration")
			}
			if forked.FinalPass != plain.FinalPass {
				t.Errorf("fork engine changed the final verdict: %v vs %v",
					forked.FinalPass, plain.FinalPass)
			}
			if forked.Tested != plain.Tested {
				t.Errorf("fork engine changed the trajectory: %d vs %d evaluations",
					forked.Tested, plain.Tested)
			}
			if forked.Forked == 0 {
				t.Error("fork engine evaluated nothing from a snapshot")
			}
			if forked.Forked > 0 && forked.PrefixInstrsSaved == 0 {
				t.Error("forked verdicts saved no prefix instructions")
			}
			t.Logf("%s: %d/%d verdicts forked, %d prefix instructions saved",
				name, forked.Forked, forked.Tested, forked.PrefixInstrsSaved)
		})
	}
}

// randProgram generates a small program whose functions are randomly
// single-safe (exactly representable arithmetic) or precision-sensitive
// (accumulation that vanishes in float32), with randomized trip counts
// and constants, so fork/no-fork differentials cover layouts and fork
// points no hand-written fixture anticipates.
func randProgram(t *testing.T, seed int64) *prog.Module {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := hl.New("rand", hl.ModeF64)
	i := p.Int("i")
	nf := 2 + rng.Intn(3)
	var outs []hl.Expr
	main := p.Func("main")
	for f := 0; f < nf; f++ {
		name := string(rune('a' + f))
		acc := p.Scalar("acc_" + name)
		main.Call(name)
		outs = append(outs, hl.Load(acc))
		fn := p.Func(name)
		trips := int64(20 + rng.Intn(150))
		if rng.Intn(2) == 0 {
			// Safe: sums of dyadic rationals, exact in float32.
			c := float64(1+rng.Intn(8)) * 0.25
			fn.For(i, hl.IConst(0), hl.IConst(trips), func() {
				fn.Set(acc, hl.Add(hl.Load(acc), hl.Const(c)))
			})
		} else {
			// Sensitive: tiny increments on a unit base vanish in single.
			c := 1e-9 * (1 + rng.Float64())
			fn.Set(acc, hl.Const(1.0))
			fn.For(i, hl.IConst(0), hl.IConst(trips), func() {
				fn.Set(acc, hl.Add(hl.Load(acc), hl.Const(c)))
			})
		}
		fn.Ret()
	}
	for _, o := range outs {
		main.Out(o)
	}
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return m
}

func TestForkSearchIdenticalOnRandomPrograms(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		m := randProgram(t, seed)
		tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
		plain, err := Run(tgt, Options{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		forked, err := Run(tgt, Options{Workers: 2, Engine: EngineFork})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if forked.Final.String() != plain.Final.String() {
			t.Errorf("seed %d: fork engine changed the final configuration", seed)
		}
		if forked.FinalPass != plain.FinalPass {
			t.Errorf("seed %d: FinalPass = %v, plain %v", seed, forked.FinalPass, plain.FinalPass)
		}
		if forked.Tested != plain.Tested {
			t.Errorf("seed %d: Tested = %d, plain %d", seed, forked.Tested, plain.Tested)
		}
	}
}

// TestForkWholeMachineIdentity pins the strongest form of the identity
// contract: for every fork point the donor records, evaluating a sibling
// configuration from its snapshot leaves the machine in exactly the state
// a from-scratch run of the same assembled program reaches — registers,
// flags-visible behavior, memory, outputs, step and cycle counts, and the
// per-address execution profile.
func TestForkWholeMachineIdentity(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	fe, err := newForkEngine(tgt, false)
	if err != nil {
		t.Fatal(err)
	}
	d := fe.ensureDonor(map[uint64]config.Precision{})
	if d == nil {
		t.Fatal("donor pass unavailable")
	}
	tested := 0
	for i := range fe.sites {
		if d.touch[i].snap == nil {
			continue
		}
		tested++
		eff := map[uint64]config.Precision{fe.sites[i].OldAddr: config.Single}
		ch, err := fe.choices(eff)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := fe.il.Assemble(ch)
		if err != nil {
			t.Fatal(err)
		}

		scratch := &vm.Machine{}
		scratch.ResetTo(lp)
		serr := scratch.Run()

		fork := &vm.Machine{}
		fork.TrackDirtyPages()
		if err := fork.RestoreTo(lp, d.touch[i].snap); err != nil {
			t.Fatal(err)
		}
		ferr := fork.Run()

		if (serr == nil) != (ferr == nil) {
			t.Fatalf("site %d: scratch err %v, forked err %v", i, serr, ferr)
		}
		if fork.GPR != scratch.GPR {
			t.Errorf("site %d: GPR state diverged", i)
		}
		if fork.XMM != scratch.XMM {
			t.Errorf("site %d: XMM state diverged", i)
		}
		if !bytes.Equal(fork.Mem, scratch.Mem) {
			t.Errorf("site %d: memory diverged", i)
		}
		if !reflect.DeepEqual(fork.Out, scratch.Out) {
			t.Errorf("site %d: outputs diverged", i)
		}
		if fork.Steps != scratch.Steps || fork.Cycles != scratch.Cycles {
			t.Errorf("site %d: accounting diverged: steps %d/%d cycles %d/%d",
				i, fork.Steps, scratch.Steps, fork.Cycles, scratch.Cycles)
		}
		if !reflect.DeepEqual(fork.Profile(), scratch.Profile()) {
			t.Errorf("site %d: execution profile diverged", i)
		}
	}
	if tested == 0 {
		t.Fatal("donor touched no candidate sites")
	}
}

// TestStableLayoutDifferential compares the fork engine's incrementally
// assembled programs against the cached engine's per-configuration
// Instrument+Link pipeline on the same effective-precision maps. The
// assemblies differ by design — slotted vs packed layout, and the fork
// engine elides double wrappers its per-configuration flag analysis
// proves unreachable — so addresses, step and cycle counts all diverge;
// the contract is bit-identical outputs and verdicts.
func TestStableLayoutDifferential(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	fe, err := newForkEngine(tgt, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	effs := []map[uint64]config.Precision{
		{}, // all double
	}
	all := map[uint64]config.Precision{}
	for i := range fe.sites {
		all[fe.sites[i].OldAddr] = config.Single
	}
	effs = append(effs, all)
	for k := 0; k < 6; k++ {
		eff := map[uint64]config.Precision{}
		for i := range fe.sites {
			if rng.Intn(2) == 0 {
				eff[fe.sites[i].OldAddr] = config.Single
			}
		}
		effs = append(effs, eff)
	}
	for k, eff := range effs {
		ch, err := fe.choices(eff)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := fe.il.Assemble(ch)
		if err != nil {
			t.Fatal(err)
		}
		slotted := &vm.Machine{}
		slotted.ResetTo(lp)
		serr := slotted.Run()

		inst, err := fe.fallback.snips.Instrument(eff)
		if err != nil {
			t.Fatal(err)
		}
		plp, err := vm.Link(inst)
		if err != nil {
			t.Fatal(err)
		}
		packed := &vm.Machine{}
		packed.ResetTo(plp)
		perr := packed.Run()

		if (serr == nil) != (perr == nil) {
			t.Fatalf("eff %d: slotted err %v, packed err %v", k, serr, perr)
		}
		if !reflect.DeepEqual(slotted.Out, packed.Out) {
			t.Errorf("eff %d: outputs diverged between layouts", k)
		}
		if serr == nil && tgt.Verify(slotted.Out) != tgt.Verify(packed.Out) {
			t.Errorf("eff %d: verdicts diverged between layouts", k)
		}
		if slotted.Steps > packed.Steps {
			t.Errorf("eff %d: elided assembly ran longer than the wrapped one: %d vs %d steps",
				k, slotted.Steps, packed.Steps)
		}
	}
}

// TestForkFinalByteIdenticalUnderChaos: a chaos-armed forking search
// settles every verdict exactly as the fault-free non-forking search does
// — injected faults force retries, retries run from scratch, and the
// final configuration is byte-identical.
func TestForkFinalByteIdenticalUnderChaos(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	clean, err := Run(tgt, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	injectedTotal := 0
	for _, seed := range []int64{1, 2, 3} {
		inj := faultinject.New(seed, chaosRates, 5*time.Millisecond)
		res, err := Run(tgt, Options{
			Workers: 4,
			Engine:  EngineFork,
			Chaos:   inj,
			Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Final.String() != clean.Final.String() {
			t.Errorf("seed %d: chaos-armed forked final differs from the fault-free run", seed)
		}
		if res.FinalPass != clean.FinalPass {
			t.Errorf("seed %d: FinalPass = %v, clean %v", seed, res.FinalPass, clean.FinalPass)
		}
		if res.Tested != clean.Tested {
			t.Errorf("seed %d: Tested = %d, clean %d", seed, res.Tested, clean.Tested)
		}
		injectedTotal += res.Injected
	}
	if injectedTotal == 0 {
		t.Error("no faults injected across three seeds at ~60% rates")
	}
}

func TestForkKernelIdenticalUnderChaos(t *testing.T) {
	names := []string{"ep"}
	if !testing.Short() {
		names = append(names, "mg")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			clean, err := Run(tgt, Options{Workers: 4, BinarySplit: true, Prioritize: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(tgt, Options{
				Workers: 4, BinarySplit: true, Prioritize: true,
				Engine:  EngineFork,
				Chaos:   faultinject.New(42, faultinject.DefaultRates, 5*time.Millisecond),
				Backoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Final.String() != clean.Final.String() {
				t.Error("chaos-armed forked run changed the final configuration")
			}
			if res.FinalPass != clean.FinalPass {
				t.Errorf("chaos-armed forked run changed the final verdict: %v vs %v",
					res.FinalPass, clean.FinalPass)
			}
			t.Logf("%s: %d injected faults, %d forked verdicts, identical finals",
				name, res.Injected, res.Forked)
		})
	}
}

// TestForkCheckpointResumeByteIdentical: a chaos-armed forking search
// journals its verdicts with fork provenance; resuming the journal
// (under fresh chaos) replays them — provenance intact — and composes a
// final byte-identical to the fault-free non-forking run's.
func TestForkCheckpointResumeByteIdentical(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	clean, err := Run(tgt, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fork.ckpt")

	jr, err := NewJournal(path, Fingerprint{Options: "mixed fork"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(tgt, Options{
		Workers:    2,
		Engine:     EngineFork,
		Chaos:      faultinject.New(11, chaosRates, 5*time.Millisecond),
		Backoff:    time.Millisecond,
		Checkpoint: jr,
	})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if full.Forked == 0 {
		t.Error("chaos-armed fork search forked no verdicts")
	}

	re, err := ResumeJournal(path, Fingerprint{Options: "mixed fork"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Prior() == 0 {
		t.Fatal("resume loaded no prior verdicts")
	}
	resumed, err := Run(tgt, Options{
		Workers:    2,
		Engine:     EngineFork,
		Chaos:      faultinject.New(12, chaosRates, 5*time.Millisecond),
		Backoff:    time.Millisecond,
		Checkpoint: re,
	})
	re.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed == 0 {
		t.Error("resumed search replayed no checkpointed verdicts")
	}
	for _, res := range []*Result{full, resumed} {
		if res.Final.String() != clean.Final.String() {
			t.Error("forked chaos+resume final differs from the fault-free non-forking run")
		}
		if res.FinalPass != clean.FinalPass {
			t.Errorf("FinalPass = %v, clean %v", res.FinalPass, clean.FinalPass)
		}
	}
	// Replayed verdicts carry the fork provenance they were journaled with.
	replayedForked := false
	for _, ev := range resumed.Evals {
		if ev.Prov == ProvCheckpoint && ev.Forked {
			replayedForked = true
			if ev.PrefixSaved == 0 {
				t.Error("replayed forked verdict lost its prefix-saved count")
			}
		}
	}
	if full.Forked > 0 && !replayedForked {
		t.Error("no replayed verdict carried fork provenance")
	}
}
