package search

import (
	"strings"
	"testing"

	"fpmix/internal/shadow"
)

func collectShadow(t *testing.T) (*Target, *shadow.Profile) {
	t.Helper()
	m := mixedProgram(t)
	tgt := &Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	sh, err := shadow.Collect("mixed", m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tgt, sh
}

func TestSensitivityOrdersSafestFirst(t *testing.T) {
	tgt, sh := collectShadow(t)
	res, err := Run(*tgt, Options{Workers: 1, Shadow: sh})
	if err != nil {
		t.Fatal(err)
	}
	// After the module fails, the safe function (zero predicted error)
	// must be tried before the sensitive one.
	var funcs []string
	for _, e := range res.Evals {
		if strings.HasPrefix(e.Label, "func ") {
			funcs = append(funcs, e.Label)
		}
	}
	if len(funcs) < 2 {
		t.Fatalf("func evals = %v, want both functions", funcs)
	}
	if funcs[0] != "func safe" {
		t.Errorf("first function tried = %q, want the safe one", funcs[0])
	}
}

func TestSensitivityGatePredictsFailures(t *testing.T) {
	tgt, sh := collectShadow(t)
	base, err := Run(*tgt, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(*tgt, Options{Workers: 1, Shadow: sh, SensThreshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == 0 {
		t.Error("gate predicted nothing; the sensitive accumulator should gate")
	}
	if res.Tested >= base.Tested {
		t.Errorf("sensitivity tested %d configurations, baseline %d — want strictly fewer", res.Tested, base.Tested)
	}
	if res.FinalPass != base.FinalPass {
		t.Errorf("FinalPass %v != baseline %v", res.FinalPass, base.FinalPass)
	}
	if got, want := res.Final.String(), base.Final.String(); got != want {
		t.Errorf("final configuration differs from baseline:\n--- sensitivity:\n%s--- baseline:\n%s", got, want)
	}
}

func TestNoSensitivityReproducesBaseline(t *testing.T) {
	tgt, sh := collectShadow(t)
	base, err := Run(*tgt, Options{Workers: 1, Prioritize: true, BinarySplit: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(*tgt, Options{
		Workers: 1, Prioritize: true, BinarySplit: true,
		Shadow: sh, SensThreshold: 1e-10, NoSensitivity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested != base.Tested || res.Predicted != 0 {
		t.Errorf("NoSensitivity tested %d (predicted %d), baseline %d — want identical trajectory",
			res.Tested, res.Predicted, base.Tested)
	}
	if len(res.Evals) != len(base.Evals) {
		t.Fatalf("eval count %d != %d", len(res.Evals), len(base.Evals))
	}
	for i := range res.Evals {
		if res.Evals[i].Label != base.Evals[i].Label || res.Evals[i].Pass != base.Evals[i].Pass ||
			res.Evals[i].Prov != base.Evals[i].Prov {
			t.Errorf("eval %d: %+v != %+v", i, res.Evals[i], base.Evals[i])
		}
	}
	if res.Final.String() != base.Final.String() {
		t.Error("final configuration differs under NoSensitivity")
	}
}

func TestEvalProvenanceAccounting(t *testing.T) {
	tgt, sh := collectShadow(t)
	res, err := Run(*tgt, Options{Workers: 1, Shadow: sh, SensThreshold: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	var evaluated, predicted int
	for _, e := range res.Evals {
		switch e.Prov {
		case ProvEvaluated:
			evaluated++
			if e.Wall <= 0 {
				t.Errorf("evaluated piece %q has no wall time", e.Label)
			}
		case ProvPredicted:
			predicted++
			if e.Pass {
				t.Errorf("predicted piece %q recorded as passing", e.Label)
			}
			if e.Wall != 0 {
				t.Errorf("predicted piece %q has wall time %v", e.Label, e.Wall)
			}
		}
	}
	if evaluated != res.Tested {
		t.Errorf("ProvEvaluated records = %d, Tested = %d", evaluated, res.Tested)
	}
	if predicted != res.Predicted {
		t.Errorf("ProvPredicted records = %d, Predicted = %d", predicted, res.Predicted)
	}
	if res.Evals[len(res.Evals)-1].Label != "final union" {
		t.Errorf("last eval = %q, want final union", res.Evals[len(res.Evals)-1].Label)
	}
}
