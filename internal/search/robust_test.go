package search

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fpmix/internal/faultinject"
	"fpmix/internal/kernels"
	"fpmix/internal/vm"
)

// chaosRates fault aggressively (~60% of first attempts) so even small
// search trees absorb injections.
var chaosRates = faultinject.Rates{Panic: 0.15, Hang: 0.15, Flaky: 0.15, Trap: 0.15}

// TestChaosFinalByteIdentical is the core robustness property: a search
// under seeded fault injection settles every verdict exactly as the
// fault-free search does, so the final configuration is byte-identical.
func TestChaosFinalByteIdentical(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	clean, err := Run(tgt, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	injectedTotal := 0
	for _, seed := range []int64{1, 2, 3} {
		inj := faultinject.New(seed, chaosRates, 5*time.Millisecond)
		res, err := Run(tgt, Options{
			Workers: 4,
			Chaos:   inj,
			Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Final.String() != clean.Final.String() {
			t.Errorf("seed %d: final configuration differs from the fault-free run", seed)
		}
		if res.FinalPass != clean.FinalPass {
			t.Errorf("seed %d: FinalPass = %v, clean %v", seed, res.FinalPass, clean.FinalPass)
		}
		if res.Tested != clean.Tested {
			t.Errorf("seed %d: Tested = %d, clean %d", seed, res.Tested, clean.Tested)
		}
		if res.Injected > 0 && res.Retried == 0 {
			t.Errorf("seed %d: %d injections healed with no retries counted", seed, res.Injected)
		}
		injectedTotal += res.Injected
	}
	if injectedTotal == 0 {
		t.Error("no faults injected across three seeds at ~60% rates")
	}
}

// panicEval panics on chosen call numbers and otherwise delegates to a
// verdict schedule, emulating a buggy evaluation pipeline.
type panicEval struct {
	mu      sync.Mutex
	n       int
	panicOn map[int]bool
	verdict func(n int) bool
}

func (s *panicEval) evaluate(evalRequest) (outcome, error) {
	s.mu.Lock()
	n := s.n
	s.n++
	s.mu.Unlock()
	if s.panicOn[n] {
		panic("evaluation pipeline bug")
	}
	return outcome{pass: s.verdict(n)}, nil
}

func TestRealPanicSettlesAsCrash(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	// Call 0 is the module root: it panics. The search must survive,
	// settle the root as crashed (a fail), and keep searching its
	// children, which all pass here.
	stub := &panicEval{panicOn: map[int]bool{0: true}, verdict: func(int) bool { return true }}
	res, err := Run(Target{Module: m, Verify: v}, Options{Workers: 2, testEval: stub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1", res.Crashed)
	}
	var crash *Eval
	for i := range res.Evals {
		if res.Evals[i].Failure == FailCrash {
			crash = &res.Evals[i]
		}
	}
	if crash == nil {
		t.Fatal("no Eval records the crash")
	}
	if crash.Pass || crash.Prov != ProvEvaluated {
		t.Error("crash recorded as something other than an evaluated fail")
	}
	if !strings.Contains(crash.Stack, "evaluation pipeline bug") ||
		!strings.Contains(crash.Stack, "goroutine") {
		t.Error("crash record carries no panic value / stack trace")
	}
	if !res.FinalPass {
		t.Error("search did not recover: final union should pass")
	}
}

// hangEval blocks until the request's context is cancelled, then reports
// the cancellation fault — the way a real machine run behaves under the
// per-evaluation timeout.
type hangEval struct {
	mu     sync.Mutex
	n      int
	hangOn map[int]bool
}

func (s *hangEval) evaluate(req evalRequest) (outcome, error) {
	s.mu.Lock()
	n := s.n
	s.n++
	s.mu.Unlock()
	if s.hangOn[n] {
		<-req.ctx.Done()
		return outcome{fault: &vm.Fault{Kind: vm.FaultCancelled}}, nil
	}
	return outcome{pass: true}, nil
}

func TestTimeoutSettlesAsFail(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	stub := &hangEval{hangOn: map[int]bool{0: true}}
	res, err := Run(Target{Module: m, Verify: v}, Options{
		Workers: 2, Timeout: 20 * time.Millisecond, testEval: stub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", res.TimedOut)
	}
	var timedOut *Eval
	for i := range res.Evals {
		if res.Evals[i].Failure == FailTimeout {
			timedOut = &res.Evals[i]
		}
	}
	if timedOut == nil {
		t.Fatal("no Eval records the timeout")
	}
	if timedOut.Fault == nil || timedOut.Fault.Kind != vm.FaultCancelled {
		t.Error("timeout record carries no cancellation fault")
	}
	if !res.FinalPass {
		t.Error("search did not recover from the hung evaluation")
	}
}

// TestVerifierNondeterminismFlagged drives a fail-then-pass disagreement
// through the confirmation retry and checks the pass wins and the piece
// is flagged.
func TestVerifierNondeterminismFlagged(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	// Call 0 (module root, attempt 0) fails; call 1 is its confirmation
	// re-run and passes: a nondeterministic verifier.
	flaky := &panicEval{panicOn: nil, verdict: func(n int) bool { return n != 0 }}
	res, err := Run(Target{Module: m, Verify: v},
		Options{Workers: 1, Retries: 2, testEval: flaky})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nondeterministic) != 1 {
		t.Fatalf("Nondeterministic = %v, want exactly the root piece", res.Nondeterministic)
	}
	// The pass won: the root settles pass, so the search never descends.
	if len(res.Passing) != 1 {
		t.Errorf("passing pieces = %d, want 1 (the root)", len(res.Passing))
	}
	if res.Retried == 0 {
		t.Error("confirmation re-run not counted as a retry")
	}
}

// cancelEval cancels the search's own context during the first
// evaluation, emulating a SIGINT landing mid-search.
type cancelEval struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	n      int
}

func (s *cancelEval) evaluate(evalRequest) (outcome, error) {
	s.mu.Lock()
	n := s.n
	s.n++
	s.mu.Unlock()
	if n == 0 {
		s.cancel()
		// The root's verdict still completes: interrupts keep finished
		// work.
		return outcome{pass: false}, nil
	}
	return outcome{pass: true}, nil
}

func TestInterruptReturnsBestSoFar(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stub := &cancelEval{cancel: cancel}
	res, err := Run(Target{Module: m, Verify: v},
		Options{Workers: 1, Context: ctx, testEval: stub})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled search not marked Interrupted")
	}
	if res.Final == nil {
		t.Fatal("interrupted search returned no best-so-far configuration")
	}
	if res.FinalPass {
		t.Error("interrupted search cannot have verified its final union")
	}
	if res.Tested != 1 {
		t.Errorf("Tested = %d, want 1 (the root, settled before the interrupt)", res.Tested)
	}
	// The last Eval must not be a final-union run.
	if n := len(res.Evals); n > 0 && res.Evals[n-1].Label == "final union" {
		t.Error("interrupted search evaluated the final union")
	}
}

func TestInterruptBeforeStart(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(Target{Module: m, Verify: v}, Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Tested != 0 {
		t.Errorf("pre-cancelled search: Interrupted=%v Tested=%d, want true/0",
			res.Interrupted, res.Tested)
	}
}

// truncateJournal rewrites path keeping the header and the first half of
// the verdict lines, plus a torn partial line, simulating a process
// killed mid-write.
func truncateJournal(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// lines: header, verdicts..., trailing "".
	verdicts := len(lines) - 2
	if verdicts < 2 {
		t.Fatalf("journal too small to truncate meaningfully (%d verdicts)", verdicts)
	}
	keep := strings.Join(lines[:1+verdicts/2], "")
	keep += "deadbeef pa" // torn final write
	if err := os.WriteFile(path, []byte(keep), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	path := filepath.Join(t.TempDir(), "search.ckpt")

	jr, err := NewJournal(path, Fingerprint{Options: "mixed gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(tgt, Options{Workers: 2, Checkpoint: jr})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if full.Resumed != 0 {
		t.Errorf("fresh journal replayed %d verdicts", full.Resumed)
	}

	truncateJournal(t, path)
	re, err := ResumeJournal(path, Fingerprint{Options: "mixed gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Prior() == 0 {
		t.Fatal("resume loaded no prior verdicts")
	}
	resumed, err := Run(tgt, Options{Workers: 2, Checkpoint: re})
	re.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed == 0 {
		t.Error("resumed search replayed no checkpointed verdicts")
	}
	if resumed.Tested >= full.Tested {
		t.Errorf("resume re-evaluated everything: Tested %d vs %d", resumed.Tested, full.Tested)
	}
	if resumed.Final.String() != full.Final.String() {
		t.Error("resumed final configuration differs from the uninterrupted run")
	}
	if resumed.FinalPass != full.FinalPass {
		t.Error("resumed final verdict differs")
	}

	// A journal from a different search must be refused.
	if _, err := ResumeJournal(path, Fingerprint{Options: "other gran=func"}); err == nil {
		t.Error("fingerprint mismatch accepted")
	}
}

// kernelTarget adapts a NAS kernel to a search target.
func kernelTarget(t *testing.T, name string) Target {
	t.Helper()
	bench, err := kernels.Get(name, kernels.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	return Target{
		Module:   bench.Module,
		Verify:   bench.Verify,
		MaxSteps: bench.MaxSteps,
		Base:     bench.Base,
	}
}

// TestChaosKernels checks the acceptance property on real kernels: with
// panics, hangs, flaky verdicts and traps injected into ≥5% of
// evaluations, the search completes with a final configuration
// byte-identical to the fault-free run's.
func TestChaosKernels(t *testing.T) {
	names := []string{"ep", "mg"}
	if !testing.Short() {
		names = append(names, "lu")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}
			clean, err := Run(tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			chaotic := opts
			chaotic.Chaos = faultinject.New(42, faultinject.DefaultRates, 5*time.Millisecond)
			chaotic.Backoff = time.Millisecond
			res, err := Run(tgt, chaotic)
			if err != nil {
				t.Fatal(err)
			}
			if res.Final.String() != clean.Final.String() {
				t.Error("chaos changed the final configuration")
			}
			if res.FinalPass != clean.FinalPass {
				t.Errorf("chaos changed the final verdict: %v vs %v", res.FinalPass, clean.FinalPass)
			}
			t.Logf("%s: %d injected faults healed by %d retries over %d evaluations",
				name, res.Injected, res.Retried, res.Tested)
		})
	}
}

// TestCheckpointKernelRoundTrip kills a kernel search "mid-run" (by
// truncating its journal) and checks resuming reaches a byte-identical
// final configuration.
func TestCheckpointKernelRoundTrip(t *testing.T) {
	tgt := kernelTarget(t, "ep")
	path := filepath.Join(t.TempDir(), "ep.ckpt")
	opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}

	jr, err := NewJournal(path, Fingerprint{Options: "ep.W gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(tgt, withJournal(opts, jr))
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()

	truncateJournal(t, path)
	re, err := ResumeJournal(path, Fingerprint{Options: "ep.W gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(tgt, withJournal(opts, re))
	re.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed == 0 {
		t.Error("kernel resume replayed nothing")
	}
	if resumed.Final.String() != full.Final.String() {
		t.Error("kernel resume changed the final configuration")
	}
	if resumed.FinalPass != full.FinalPass {
		t.Error("kernel resume changed the final verdict")
	}
}

func withJournal(opts Options, jr *Journal) Options {
	opts.Checkpoint = jr
	return opts
}
