package search

import (
	"testing"
	"time"

	"fpmix/internal/faultinject"
)

// The compiled execution engine is the default evaluation path; these
// tests pin the acceptance property that it changes nothing but speed:
// search finals on real kernels are byte-identical between compiled and
// -nocompile runs, including runs with chaos-armed injected traps (which
// route each armed evaluation to the instrumented tier mid-search).

func TestCompiledSearchIdenticalOnKernels(t *testing.T) {
	names := []string{"ep", "mg"}
	if !testing.Short() {
		names = append(names, "lu")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}
			compiled, err := Run(tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			nc := opts
			nc.NoCompile = true
			interp, err := Run(tgt, nc)
			if err != nil {
				t.Fatal(err)
			}
			if compiled.Final.String() != interp.Final.String() {
				t.Error("compiled engine changed the final configuration")
			}
			if compiled.FinalPass != interp.FinalPass {
				t.Errorf("compiled engine changed the final verdict: %v vs %v",
					compiled.FinalPass, interp.FinalPass)
			}
			if compiled.Tested != interp.Tested {
				t.Errorf("compiled engine changed the trajectory: %d vs %d evaluations",
					compiled.Tested, interp.Tested)
			}
		})
	}
}

func TestCompiledSearchIdenticalUnderChaos(t *testing.T) {
	names := []string{"ep", "mg"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			base := Options{
				Workers: 4, BinarySplit: true, Prioritize: true,
				Chaos:   faultinject.New(42, faultinject.DefaultRates, 5*time.Millisecond),
				Backoff: time.Millisecond,
			}
			compiled, err := Run(tgt, base)
			if err != nil {
				t.Fatal(err)
			}
			nc := base
			nc.Chaos = faultinject.New(42, faultinject.DefaultRates, 5*time.Millisecond)
			nc.NoCompile = true
			interp, err := Run(tgt, nc)
			if err != nil {
				t.Fatal(err)
			}
			if compiled.Final.String() != interp.Final.String() {
				t.Error("chaos-armed compiled run changed the final configuration")
			}
			if compiled.FinalPass != interp.FinalPass {
				t.Errorf("chaos-armed compiled run changed the final verdict: %v vs %v",
					compiled.FinalPass, interp.FinalPass)
			}
			t.Logf("%s: %d injected faults, identical finals", name, compiled.Injected)
		})
	}
}
