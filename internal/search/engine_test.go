package search

import (
	"errors"
	"sync"
	"testing"

	"fpmix/internal/hl"
	"fpmix/internal/kernels"
	"fpmix/internal/prog"
)

// singleFuncProgram builds a precision-sensitive program whose candidates
// all live in one function, so the module piece and the function piece
// carry identical address sets (the duplicate chain the memo table
// targets).
func singleFuncProgram(t *testing.T) *prog.Module {
	t.Helper()
	p := hl.New("onefunc", hl.ModeF64)
	tiny := p.Scalar("tiny")
	i := p.Int("i")
	main := p.Func("main")
	main.Set(tiny, hl.Const(1.0))
	main.For(i, hl.IConst(0), hl.IConst(200), func() {
		main.Set(tiny, hl.Add(hl.Load(tiny), hl.Const(1e-9)))
	})
	main.Out(hl.Load(tiny))
	main.Halt()
	m, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// passingSets summarizes a result's passing pieces as a set of address
// keys for order-independent comparison.
func passingSets(res *Result) map[string]bool {
	set := make(map[string]bool, len(res.Passing))
	for _, p := range res.Passing {
		set[addrKey(p.Addrs)] = true
	}
	return set
}

// TestEngineMatchesFallback runs the full search on real kernels with the
// cached engine and with the from-scratch fallback and requires identical
// outcomes: same candidates, same passing pieces, same final verdict and
// statistics, and an evaluation count that differs only by the memoized
// duplicates the engine replays.
func TestEngineMatchesFallback(t *testing.T) {
	for _, name := range []string{"cg", "mg"} {
		t.Run(name, func(t *testing.T) {
			bench, err := kernels.Get(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			tgt := Target{
				Module:   bench.Module,
				Verify:   bench.Verify,
				MaxSteps: bench.MaxSteps,
				Base:     bench.Base,
			}
			run := func(mode EngineMode) *Result {
				res, err := Run(tgt, Options{
					Workers:     4,
					BinarySplit: true,
					Prioritize:  true,
					Engine:      mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			on, off := run(EngineOn), run(EngineOff)

			if off.MemoHits != 0 {
				t.Errorf("fallback counted %d memo hits", off.MemoHits)
			}
			if on.Tested+on.MemoHits != off.Tested {
				t.Errorf("tested+memo mismatch: engine %d+%d, fallback %d",
					on.Tested, on.MemoHits, off.Tested)
			}
			if on.Candidates != off.Candidates {
				t.Errorf("candidates differ: %d vs %d", on.Candidates, off.Candidates)
			}
			if on.FinalPass != off.FinalPass {
				t.Errorf("final verdict differs: %v vs %v", on.FinalPass, off.FinalPass)
			}
			if on.Stats != off.Stats {
				t.Errorf("stats differ: %+v vs %+v", on.Stats, off.Stats)
			}
			onSets, offSets := passingSets(on), passingSets(off)
			if len(onSets) != len(offSets) {
				t.Fatalf("passing piece counts differ: %d vs %d",
					len(on.Passing), len(off.Passing))
			}
			for k := range offSets {
				if !onSets[k] {
					t.Error("fallback passing piece missing from engine result")
				}
			}
		})
	}
}

// TestSearchMemoHitsCounted forces the module→func duplicate chain and
// checks the engine replays it from the memo table while the fallback
// re-evaluates it, with identical search outcomes.
func TestSearchMemoHitsCounted(t *testing.T) {
	m := singleFuncProgram(t)
	v := refVerify(t, m, 1e-10)
	on, err := Run(Target{Module: m, Verify: v}, Options{Engine: EngineOn})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Target{Module: m, Verify: v}, Options{Engine: EngineOff})
	if err != nil {
		t.Fatal(err)
	}
	if on.MemoHits == 0 {
		t.Error("engine replayed no duplicates on a single-function module")
	}
	if off.MemoHits != 0 {
		t.Errorf("fallback counted %d memo hits", off.MemoHits)
	}
	if on.Tested+on.MemoHits != off.Tested {
		t.Errorf("tested+memo mismatch: engine %d+%d, fallback %d",
			on.Tested, on.MemoHits, off.Tested)
	}
	if on.FinalPass != off.FinalPass || on.Stats != off.Stats {
		t.Error("engine and fallback disagree on the search outcome")
	}
}

var errEvalBoom = errors.New("scripted evaluation failure")

// scriptedEval passes/fails/errors on a fixed schedule, independent of
// the configuration content.
type scriptedEval struct {
	mu      sync.Mutex
	n       int
	verdict []func() (bool, error)
}

func (s *scriptedEval) evaluate(evalRequest) (outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n >= len(s.verdict) {
		return outcome{}, errEvalBoom
	}
	v := s.verdict[s.n]
	s.n++
	pass, err := v()
	return outcome{pass: pass}, err
}

// TestRunPartialResultOnError drives Run into an evaluation error after a
// piece has already passed, and checks the partial result retains that
// piece and the counters while Final stays unset.
func TestRunPartialResultOnError(t *testing.T) {
	m := mixedProgram(t)
	v := refVerify(t, m, 1e-10)
	stub := &scriptedEval{verdict: []func() (bool, error){
		func() (bool, error) { return false, nil }, // module fails, expands
		func() (bool, error) { return true, nil },  // first child passes
		func() (bool, error) { return false, errEvalBoom },
	}}
	res, err := Run(Target{Module: m, Verify: v}, Options{Workers: 1, testEval: stub})
	if !errors.Is(err, errEvalBoom) {
		t.Fatalf("expected scripted error, got %v", err)
	}
	if res == nil {
		t.Fatal("error drain discarded the partial result")
	}
	if res.Tested != 2 {
		t.Errorf("partial result counted %d tested, want 2", res.Tested)
	}
	if len(res.Passing) != 1 {
		t.Fatalf("partial result retained %d passing pieces, want 1", len(res.Passing))
	}
	if res.Final != nil {
		t.Error("partial result must not carry a final configuration")
	}
}

// TestPieceQueuePopReleasesSlot checks Pop clears the vacated backing
// slot so popped pieces are not pinned by the queue's array.
func TestPieceQueuePopReleasesSlot(t *testing.T) {
	q := &pieceQueue{}
	for i := 0; i < 3; i++ {
		q.Push(&Piece{Addrs: []uint64{uint64(i)}})
	}
	if it := q.Pop(); it == nil {
		t.Fatal("Pop returned nil piece")
	}
	if got := q.items[:3][2]; got != nil {
		t.Errorf("Pop left the vacated slot populated: %v", got)
	}
}
