// Package search implements the paper's automatic breadth-first
// configuration search (§2.2): starting from whole-module replacement it
// descends through functions, basic blocks and individual instructions to
// find the coarsest granularity at which each part of the program can run
// in single precision while passing a user-supplied verification routine.
//
// Two optimizations from the paper are implemented: binary splitting of
// large failed aggregates into two intermediate partitions, and
// prioritization of candidate configurations by profiled execution count.
// Evaluations are independent full program runs, so the search evaluates
// configurations on a parallel worker pool.
package search

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/errbound"
	"fpmix/internal/faultinject"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/shadow"
	"fpmix/internal/vm"
)

// Evaluations run either through the cached evaluation engine (snippet
// precompilation, linked programs, machine reuse, configuration
// memoization — engine.go) or through the from-scratch seed pipeline kept
// as a differential-testing fallback; Options.Engine selects, default on.

// Target describes the program under search.
type Target struct {
	Module *prog.Module
	// Verify is the application-defined verification routine: it receives
	// the program output of an instrumented run and decides acceptance.
	Verify func(out []vm.OutVal) bool
	// MaxSteps bounds each evaluation run (0 = vm default). Runs that trap
	// or exhaust the budget fail verification.
	MaxSteps uint64
	// Base optionally carries pre-set Ignore flags (e.g. RNG routines);
	// ignored instructions are excluded from the search.
	Base *config.Config
	// InstOpts are passed to the instrumenter.
	InstOpts replace.InstrumentOptions
}

// Options tune the search.
type Options struct {
	// Workers is the number of parallel evaluation workers (min 1).
	Workers int
	// Granularity is the finest level the search descends to
	// (config.KindInsn by default; KindBlock or KindFunc converge faster
	// with coarser results, §2.2).
	Granularity config.Kind
	// BinarySplit enables splitting large failed aggregates into two
	// intermediate partitions instead of expanding every child at once.
	BinarySplit bool
	// SplitThreshold is the child count above which binary splitting
	// applies (default 8).
	SplitThreshold int
	// Prioritize orders the work queue by profiled execution weight.
	Prioritize bool
	// Engine selects the evaluation backend (default EngineOn: the
	// cached evaluation engine; EngineOff: the from-scratch fallback).
	Engine EngineMode
	// NoCompile keeps the cached engine but forces its pooled machines
	// onto the per-step interpreter tier instead of the compiled
	// direct-threaded engine (fpsearch -nocompile). Differential-testing
	// escape hatch: results are byte-identical either way, only slower.
	NoCompile bool
	// NoPrune disables static candidate pruning (dataflow unsafe-sink
	// exclusion and zero-weight auto-passing), evaluating every piece
	// as the paper's original search does. Kept as a
	// differential-testing fallback; pruning is the default.
	NoPrune bool
	// NoProve disables the static error-bound prover (internal/errbound):
	// every piece verdict comes from evaluation again, as in the
	// pre-prover search. Differential-testing escape hatch (fpsearch
	// -noprove); proving is the default and never changes the final
	// configuration, only how many evaluations reaching it costs.
	NoProve bool
	// Bounds optionally supplies a precomputed error-bound analysis of
	// the target module. When nil (and NoProve is unset) the search runs
	// the analysis itself, lazily, the first time a piece reaches the
	// prover.
	Bounds *errbound.Analysis

	// Shadow supplies a sensitivity profile from the shadow-value pass
	// (internal/shadow). When present (and NoSensitivity is unset) the
	// search runs sensitivity-guided: the work queue is ordered by
	// predicted single-precision safety — lowest aggregated shadow error
	// first — instead of raw execution counts, and aggregates whose
	// predicted error exceeds SensThreshold by the safety margin skip
	// their evaluation run and go straight to binary splitting.
	Shadow *shadow.Profile
	// NoSensitivity ignores Shadow entirely, reproducing the
	// counts-prioritized baseline trajectory exactly (the `-nosens`
	// differential baseline).
	NoSensitivity bool
	// SensThreshold is the verification tolerance the prediction gate
	// compares aggregated shadow error against; 0 disables gating
	// (ordering still applies).
	SensThreshold float64

	// Context, when non-nil, bounds the whole search: on cancellation
	// in-flight evaluations stop, no new ones launch, and Run returns the
	// best-so-far configuration with Result.Interrupted set (and a nil
	// error — an interrupt is an outcome, not a failure).
	Context context.Context
	// Timeout is the per-evaluation wall-clock bound (0 = none). A run
	// exceeding it settles as a deterministic FailTimeout verdict.
	Timeout time.Duration
	// Retries is the per-evaluation budget for retrying transient faults
	// (injected infrastructure failures, plus one confirmation re-run of
	// any failing verification verdict). Defaults to 3 when Chaos is
	// armed, else 0 — with 0 retries every verdict settles on its first
	// attempt, preserving baseline evaluation counts exactly.
	Retries int
	// Backoff is the initial delay between retries, doubling per retry
	// (default 25ms).
	Backoff time.Duration
	// Chaos arms deterministic fault injection on every evaluation: at
	// the injector's seeded rates, first attempts panic, hang, flip
	// passing verdicts or trap mid-run. Because only first attempts are
	// ever faulted, retries settle every verdict exactly as a fault-free
	// search would — chaos changes the road, never the destination.
	Chaos *faultinject.Injector
	// Checkpoint, when non-nil, journals every evaluated verdict as it
	// settles and replays journaled verdicts instead of re-evaluating, so
	// an interrupted search resumes where it died (fpsearch -checkpoint /
	// -resume).
	Checkpoint *Journal

	// Units, when non-nil, routes every evaluation unit — each piece and
	// the final union run — through the given evaluator instead of the
	// in-process settler. This is the sharding seam the fleet scheduler
	// (internal/fleet) drives: verdicts are deterministic per unit, so a
	// sharded search composes a final configuration byte-identical to an
	// in-process run's. Options.Workers still bounds the units in flight.
	Units UnitEvaluator
	// Cache, when non-nil, is a shared cross-search verdict cache
	// (internal/jobs): consulted after the memo table and checkpoint
	// journal, before the prover and evaluation; every evaluated or
	// proved verdict is stored back. Cache-served verdicts replay as
	// memo/proved provenance and count in Result.CacheHits.
	Cache VerdictCache
	// Observe, when non-nil, is called with every Eval record as it is
	// appended to Result.Evals, in settle order — the progress-streaming
	// hook the fpmixd status and stream endpoints consume. It is called
	// from the search's coordinating goroutine; implementations must not
	// block indefinitely.
	Observe func(Eval)

	// testEval, when set by in-package tests, overrides the evaluation
	// backend entirely.
	testEval evaluator
}

// sensGateMargin is the safety factor between the verifier tolerance and
// the predicted error at which the gate declares an aggregate hopeless.
// The gate only trusts the prediction where it cannot overestimate:
//
//   - A full-coverage piece (every candidate instruction — the search
//     root, or a chain aggregate with the same address set). Lowering it
//     is exactly the whole-program single-precision run the carried
//     shadow simulates, so its aggregated global error is an exact
//     prediction of the run the gate skips.
//
//   - Any aggregate whose LOCAL error — each instruction re-run with
//     true operands rounded to single for one step — exceeds the gate. A
//     large local error means the operation itself does not fit in 24
//     bits of mantissa (a truncation needing more, a comparison of
//     values closer than single can distinguish), no matter what
//     produced its inputs.
//
// Sub-root pieces must not be gated on the global shadow error: the
// shadow is carried globally, so downstream instructions inherit
// upstream drift, and that mispredicts pieces which merely consume
// polluted values (EP's gaussian rejection loop diverges under randlc's
// drift yet passes in isolation; MG's V-cycle self-corrects inherited
// error). Each misprediction forces every child to be evaluated
// individually, inflating the tested count past the baseline. Predicted
// failures are never final: the piece still binary-splits and its
// children are evaluated, so a wrong prediction only flips the final
// configuration if the aggregate would have passed as a whole — which
// the differential ablation (experiments.Sens) checks stays impossible
// on every serial NAS kernel.
const sensGateMargin = 64

// Piece is one tested configuration: a subtree (or binary-split range) of
// the program replaced with single precision.
type Piece struct {
	Label  string
	Kind   config.Kind
	Addrs  []uint64
	Weight uint64 // profiled executions of the piece's instructions
	// PredErr is the piece's aggregated shadow error (max over its
	// instructions; 0 without a sensitivity profile): the predicted
	// relative error of a whole-program single run at the piece's
	// instructions. Orders the queue safest-first.
	PredErr float64
	// PredLocal is the piece's aggregated local (intrinsic, drift-free)
	// error: what the prediction gate compares against the tolerance.
	PredLocal float64
	subs      []*Piece
}

// Provenance classifies how a piece's verdict was obtained.
type Provenance uint8

// Verdict provenances.
const (
	// ProvEvaluated: an instrumented run decided the verdict.
	ProvEvaluated Provenance = iota
	// ProvMemo: replayed from the engine's memo table.
	ProvMemo
	// ProvPruned: passed by construction (never-executed piece).
	ProvPruned
	// ProvPredicted: failed by the sensitivity gate without a run.
	ProvPredicted
	// ProvCheckpoint: replayed from a resumed checkpoint journal.
	ProvCheckpoint
	// ProvProved: passed by the static error-bound prover — every
	// executed candidate in the piece was proved bit-exact in the target
	// format, so the evaluation run was skipped.
	ProvProved
)

func (p Provenance) String() string {
	switch p {
	case ProvEvaluated:
		return "evaluated"
	case ProvMemo:
		return "memo"
	case ProvPruned:
		return "pruned"
	case ProvPredicted:
		return "predicted"
	case ProvCheckpoint:
		return "checkpoint"
	case ProvProved:
		return "proved"
	default:
		return "provenance?"
	}
}

// Eval records one verdict the search reached: which piece, how the
// verdict was obtained, and — for evaluated pieces — the wall time of
// the evaluation run. Ablation tables regenerate from these without
// re-instrumenting the search.
type Eval struct {
	Label string
	Kind  config.Kind
	Insns int // piece size in candidate instructions
	Pass  bool
	Prov  Provenance
	Wall  time.Duration

	// Failure classifies a failing verdict (FailNone on a pass); Fault
	// carries the vm fault — kind and PC — that decided a FailTrap or
	// FailTimeout, and Stack the recovered goroutine stack of a
	// FailCrash.
	Failure Failure
	Fault   *vm.Fault
	Stack   string
	// Attempts is how many evaluation runs the verdict took (1 when
	// nothing was injected or confirmed); Nondet flags a verifier that
	// returned disagreeing verdicts across them (the pass won).
	Attempts int
	Nondet   bool

	// Forked marks a verdict reached by fork-point evaluation — run from
	// a restored snapshot of the shared prefix (or by reusing the donor
	// verdict outright) instead of from scratch. PrefixSaved is the
	// number of shared-prefix instructions that fork skipped.
	Forked      bool
	PrefixSaved uint64
}

// Result summarizes a completed search.
type Result struct {
	// Final is the union configuration of all individually passing pieces.
	Final *config.Config
	// FinalPass reports whether the union configuration itself passed
	// verification (it may not: precision decisions are not independent).
	FinalPass bool
	// Candidates is |Pd|, the number of replaceable instructions.
	Candidates int
	// Tested is the number of configurations evaluated (including the
	// final union run).
	Tested int
	// MemoHits is the number of queued configurations whose address set
	// had already been evaluated and whose verdict was replayed from the
	// engine's memo table instead of re-running (binary-split re-splits
	// and single-child aggregate chains produce such duplicates).
	MemoHits int
	// CacheHits is the number of verdicts served by the shared
	// cross-search verdict cache (Options.Cache) instead of evaluation —
	// work inherited from prior jobs over the same image, replayed as
	// memo/proved provenance.
	CacheHits int
	// PrunedCandidates is the number of candidate instructions the
	// static analyses pre-decided: exact-integer sinks found by the
	// dataflow classification (excluded from the search tree; double in
	// every tested configuration and in Final) plus candidates the
	// profiling run never executed (pieces made up entirely of them
	// pass by construction and skip their evaluation runs).
	PrunedCandidates int
	// Unsafe lists, in address order, the candidates pruned as
	// exact-integer sinks by the dataflow classification.
	Unsafe []uint64
	// Predicted is the number of aggregates the sensitivity gate failed
	// without an evaluation run.
	Predicted int
	// Evals records every verdict in the order it was reached: verdict
	// provenance (evaluated, memo, pruned, predicted) plus per-piece
	// evaluation wall time.
	Evals []Eval
	// Passing lists the coarsest-granularity pieces that passed.
	Passing []*Piece
	// Crashed and TimedOut count evaluations settled as FailCrash /
	// FailTimeout; Retried counts retry attempts spent on transient
	// faults and verdict confirmations; Injected counts injected faults
	// absorbed under chaos.
	Crashed, TimedOut, Retried, Injected int
	// Nondeterministic lists the pieces whose verifier returned
	// disagreeing verdicts across attempts (the pass was kept).
	Nondeterministic []string
	// Resumed is the number of verdicts replayed from a checkpoint
	// journal instead of re-evaluated.
	Resumed int
	// Proved is the number of piece verdicts settled by the static
	// error-bound prover (including ones replayed from a checkpoint
	// journal's proved lines) instead of by evaluation.
	Proved int
	// Forked is the number of verdicts reached by fork-point evaluation
	// (EngineFork: runs from a restored shared-prefix snapshot plus
	// donor-verdict reuses); PrefixInstrsSaved totals the shared-prefix
	// instructions those forks skipped re-executing.
	Forked            int
	PrefixInstrsSaved uint64
	// Interrupted reports the search was cancelled through
	// Options.Context: Final is the best-so-far union of the pieces that
	// had settled (never verified as a whole, so FinalPass is false).
	Interrupted bool
	// Stats carries the static/dynamic replacement percentages of Final.
	Stats replace.Stats
	// Profile is the uninstrumented execution profile used for weighting.
	Profile map[uint64]uint64
}

// Run executes the breadth-first search.
//
// On an evaluation error Run returns the error together with a partial
// Result carrying the pieces that had already passed (and the counters
// accumulated so far), so completed work is not discarded; Final is only
// set when the search runs to completion.
func Run(t Target, opts Options) (*Result, error) {
	if t.Module == nil || t.Verify == nil {
		return nil, fmt.Errorf("search: target needs Module and Verify")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.SplitThreshold <= 1 {
		opts.SplitThreshold = 8
	}
	if opts.Granularity == config.KindModule {
		opts.Granularity = config.KindInsn
	}
	if opts.Chaos != nil && opts.Retries == 0 {
		// Chaos without a retry budget could never terminate cleanly;
		// injected faults are healed by retries (and only first attempts
		// are faulted, so 1 would do — 3 leaves slack for real flakes).
		opts.Retries = 3
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	base, ignored, err := baseIgnored(t)
	if err != nil {
		return nil, err
	}

	// Profiling run (uninstrumented) for prioritization weights and
	// dynamic statistics.
	profile, err := profileRun(t)
	if err != nil {
		return nil, fmt.Errorf("search: profiling run failed: %w", err)
	}

	// Static pruning (the paper §2.5's "static data flow analysis",
	// default on) removes two candidate classes from the search tree
	// before any evaluation:
	//
	//   - Exact-integer sinks, which the dataflow classification marks
	//     as statically expected to break under lowering (EP's randlc
	//     LCG). They stay double in every tested configuration — the
	//     automated analogue of the paper's user marking randlc
	//     "ignore", but conservative: the sites keep their double
	//     wrappers.
	//
	//   - Pieces consisting entirely of candidates the profiling run
	//     never executed skip their evaluation: such a run is
	//     bit-identical to the verified baseline (the piece's snippets
	//     never execute, no flagged value is ever produced, and double
	//     wrappers preserve double semantics exactly), so the verdict is
	//     a pass by construction. The candidates stay in the tree — the
	//     piece partitioning, and therefore every evaluated
	//     configuration, is exactly the unpruned search's.
	var unsafeAddrs, zeroAddrs []uint64
	skip := ignored
	if !opts.NoPrune {
		excluded := make(map[uint64]bool)
		if ana := pruneAnalysis(t); ana != nil {
			for _, a := range ana.UnsafeAddrs() {
				if !ignored[a] {
					excluded[a] = true
					unsafeAddrs = append(unsafeAddrs, a)
				}
			}
		}
		for addr := range base.Effective() {
			if !ignored[addr] && !excluded[addr] && profile[addr] == 0 {
				zeroAddrs = append(zeroAddrs, addr)
			}
		}
		sort.Slice(zeroAddrs, func(i, j int) bool { return zeroAddrs[i] < zeroAddrs[j] })
		if len(excluded) > 0 {
			skip = make(map[uint64]bool, len(ignored)+len(excluded))
			for a := range ignored {
				skip[a] = true
			}
			for a := range excluded {
				skip[a] = true
			}
		}
	}

	root := buildPiece(base.Root, skip, profile, opts.Granularity)
	if root == nil {
		return nil, fmt.Errorf("search: no replaceable instructions")
	}

	// Sensitivity guidance (default on when a shadow profile is
	// supplied): annotate every piece with its aggregated predicted
	// error, order the queue safest-first, and gate hopeless aggregates.
	sens := opts.Shadow != nil && !opts.NoSensitivity
	if sens {
		setPredErr(root, opts.Shadow)
	}
	gate := 0.0
	if sens && opts.SensThreshold > 0 {
		gate = opts.SensThreshold * sensGateMargin
	}

	// With an external unit evaluator (Options.Units) no local backend is
	// built: every unit — including the final union — is routed out to
	// the fleet, whose workers hold the engines.
	ev := opts.testEval
	if ev == nil && opts.Units == nil {
		ev, err = newEvaluator(t, opts.Engine, opts.NoCompile)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Profile: profile, Unsafe: unsafeAddrs}
	res.PrunedCandidates = len(unsafeAddrs) + len(zeroAddrs)
	res.Candidates = len(root.Addrs) + len(unsafeAddrs)

	// The work queue: safest-first under sensitivity guidance, else
	// optionally a priority queue by weight.
	q := &pieceQueue{prioritize: opts.Prioritize, sens: sens}
	heap.Init(q)
	heap.Push(q, root)

	// The settler wraps every evaluation with the failure model: panic
	// recovery, the per-attempt wall-clock bound, and bounded retry of
	// transient (injected) faults — see robust.go.
	st := &settler{
		ev: ev, ignored: ignored, ctx: ctx,
		timeout: opts.Timeout, retries: opts.Retries,
		backoff: opts.Backoff, chaos: opts.Chaos,
		// Fork-point evaluation replays deterministically, so a failing
		// verdict needs no confirmation re-run — unless chaos is armed,
		// where confirmation is what heals injected flaky verdicts.
		noConfirm: opts.Engine == EngineFork && opts.Chaos == nil,
	}
	interrupted := func() bool { return ctx.Err() != nil }

	// The static error-bound prover (internal/errbound) settles a piece
	// without a run when every candidate it lowers either was proved
	// bit-exact in the target format or never executes under the profile:
	// the instrumented run would be bit-identical to the verified
	// baseline, so the verdict is a pass by construction. The analysis is
	// lazy — it only runs the first time a piece survives every cheaper
	// stage (prune, gate, memo, checkpoint).
	var bounds *errbound.Analysis
	boundsReady := opts.Bounds != nil
	if boundsReady {
		bounds = opts.Bounds
	}
	var provedAddrs []uint64
	proveExact := func(p *Piece) bool {
		if opts.NoProve || len(p.Addrs) == 0 {
			return false
		}
		if !boundsReady {
			boundsReady = true
			if an, err := errbound.Analyze(t.Module, errbound.Options{}); err == nil && an.Converged {
				bounds = an
			}
		}
		if bounds == nil {
			return false
		}
		for _, a := range p.Addrs {
			if !bounds.ExactAt(a) && profile[a] != 0 {
				return false
			}
		}
		return true
	}
	// markProved collects the piece's executed candidates for the final
	// configuration's provenance notes. For a proved piece those are
	// exactly the proved sites (the never-executed rest passed without
	// needing the proof), so a journal replay can mark them without
	// re-running the analysis.
	markProved := func(p *Piece) {
		for _, a := range p.Addrs {
			if profile[a] != 0 {
				provedAddrs = append(provedAddrs, a)
			}
		}
	}

	type evalRes struct {
		p   *Piece
		key string
		s   settled
	}
	results := make(chan evalRes)
	inflight := 0

	launch := func(p *Piece, key string) {
		inflight++
		if opts.Units != nil {
			u := newEvalUnit(key, p.Label, p.Kind, p.Addrs, false)
			go func() {
				v, uerr := opts.Units.EvaluateUnit(u)
				s := settledOf(v)
				if uerr != nil {
					s = settled{err: uerr}
				}
				results <- evalRes{p: p, key: key, s: s}
			}()
			return
		}
		go func() {
			results <- evalRes{p: p, key: key, s: st.settle(effFor(p.Addrs, ignored), key)}
		}()
	}

	// emit appends one Eval record and streams it to the observer.
	emit := func(ev Eval) {
		res.Evals = append(res.Evals, ev)
		if opts.Observe != nil {
			opts.Observe(ev)
		}
	}

	record := func(p *Piece, pass bool, prov Provenance, wall time.Duration) {
		emit(Eval{
			Label: p.Label, Kind: p.Kind, Insns: len(p.Addrs),
			Pass: pass, Prov: prov, Wall: wall,
		})
	}

	// account folds a settled verdict's robustness metadata into the
	// result and appends its full Eval record.
	account := func(label string, kind config.Kind, insns int, s settled) {
		res.Retried += s.retried
		res.Injected += s.injected
		switch s.failure {
		case FailCrash:
			res.Crashed++
		case FailTimeout:
			res.TimedOut++
		}
		if s.nondet {
			res.Nondeterministic = append(res.Nondeterministic, label)
		}
		if s.forked {
			res.Forked++
			res.PrefixInstrsSaved += s.prefixSaved
		}
		emit(Eval{
			Label: label, Kind: kind, Insns: insns,
			Pass: s.pass, Prov: ProvEvaluated, Wall: s.wall,
			Failure: s.failure, Fault: s.fault, Stack: s.stack,
			Attempts: s.attempts, Nondet: s.nondet,
			Forked: s.forked, PrefixSaved: s.prefixSaved,
		})
	}

	// Verdict memoization (engine only): binary-split re-splits and
	// aggregate chains with a single child re-enqueue address sets that
	// were already decided; replay their verdicts instead of re-running.
	var memo map[string]bool
	if opts.Engine == EngineOn || opts.Engine == EngineFork {
		memo = make(map[string]bool)
	}

	// apply routes a piece's verdict: passing pieces are collected,
	// failing ones expand into the next round of candidates.
	apply := func(p *Piece, pass bool) {
		if pass {
			res.Passing = append(res.Passing, p)
			return
		}
		for _, next := range expand(p, opts) {
			heap.Push(q, next)
		}
	}

	for q.Len() > 0 || inflight > 0 {
		for q.Len() > 0 && inflight < opts.Workers && !interrupted() {
			p := heap.Pop(q).(*Piece)
			if !opts.NoPrune && p.Weight == 0 {
				// Entirely never-executed: pass by construction, no run.
				record(p, true, ProvPruned, 0)
				apply(p, true)
				continue
			}
			full := len(p.Addrs) == len(root.Addrs)
			if gate > 0 && len(p.subs) > 0 &&
				((full && p.PredErr > gate) || p.PredLocal > gate) {
				// Predicted failure — skip the run and split now. Two sound
				// cases: a full-coverage piece (lowering it IS the
				// whole-program single run the carried shadow simulates, so
				// its global error is an exact prediction, not an
				// overestimate), or any aggregate whose local error shows an
				// instruction intrinsically past hope in single regardless
				// of what upstream produced.
				res.Predicted++
				record(p, false, ProvPredicted, 0)
				apply(p, false)
				continue
			}
			key := addrKey(p.Addrs)
			if memo != nil {
				if pass, ok := memo[key]; ok {
					res.MemoHits++
					record(p, pass, ProvMemo, 0)
					apply(p, pass)
					continue
				}
			}
			if opts.Checkpoint != nil {
				// After the memo: a journal verdict replays once, its
				// in-run duplicates stay memo hits as in a fresh search.
				if jv, ok := opts.Checkpoint.lookup(key); ok {
					res.Resumed++
					prov := ProvCheckpoint
					if jv.proved {
						// Replay the proved verdict as proved: the resumed
						// search inherits the proof without re-deriving it
						// (the prover stays lazy; markProved needs only the
						// profile, so the final configuration still carries
						// the provenance annotations).
						prov = ProvProved
						res.Proved++
						markProved(p)
					}
					emit(Eval{
						Label: p.Label, Kind: p.Kind, Insns: len(p.Addrs),
						Pass: jv.pass, Prov: prov,
						Forked: jv.forked, PrefixSaved: jv.prefixSaved,
					})
					if memo != nil {
						memo[key] = jv.pass
					}
					apply(p, jv.pass)
					continue
				}
			}
			if opts.Cache != nil {
				// The shared cross-job verdict cache: work inherited from
				// prior searches over the same image. After the checkpoint
				// (the job's own prior work is accounted as Resumed, not as
				// cache service) and before the prover and evaluation.
				if cv, ok := opts.Cache.Lookup(key); ok {
					res.CacheHits++
					prov := ProvMemo
					if cv.Proved {
						prov = ProvProved
						res.Proved++
						markProved(p)
					} else {
						res.MemoHits++
					}
					emit(Eval{
						Label: p.Label, Kind: p.Kind, Insns: len(p.Addrs),
						Pass: cv.Pass, Prov: prov,
					})
					if memo != nil {
						memo[key] = cv.Pass
					}
					apply(p, cv.Pass)
					continue
				}
			}
			if proveExact(p) {
				res.Proved++
				markProved(p)
				record(p, true, ProvProved, 0)
				if memo != nil {
					memo[key] = true
				}
				if opts.Cache != nil {
					opts.Cache.Store(key, CachedVerdict{Pass: true, Proved: true})
				}
				if opts.Checkpoint != nil {
					if err := opts.Checkpoint.recordProved(key); err != nil {
						for inflight > 0 {
							<-results
							inflight--
						}
						sortPassing(res.Passing)
						return res, fmt.Errorf("search: checkpoint write: %w", err)
					}
				}
				apply(p, true)
				continue
			}
			launch(p, key)
		}
		if inflight == 0 {
			if interrupted() {
				break
			}
			continue // memo replay may have emptied or refilled the queue
		}
		r := <-results
		inflight--
		if r.s.err != nil {
			// Drain outstanding workers, then surface the error alongside
			// the partial result: pieces that already passed stay
			// available to the caller instead of being discarded.
			for inflight > 0 {
				<-results
				inflight--
			}
			sortPassing(res.Passing)
			return res, r.s.err
		}
		if r.s.interrupted {
			// Cancelled before a verdict: the piece stays unsettled (and
			// is never journaled). The launch gate is closed, so inflight
			// drains and the loop exits.
			continue
		}
		res.Tested++
		if memo != nil {
			memo[r.key] = r.s.pass
		}
		if opts.Cache != nil {
			opts.Cache.Store(r.key, CachedVerdict{Pass: r.s.pass})
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint.record(r.key, r.s); err != nil {
				for inflight > 0 {
					<-results
					inflight--
				}
				sortPassing(res.Passing)
				return res, fmt.Errorf("search: checkpoint write: %w", err)
			}
			if inflight == 0 {
				// A write-batch boundary: every launched unit has settled.
				// Durability point for the journal — fsync the batch.
				if err := opts.Checkpoint.Sync(); err != nil {
					sortPassing(res.Passing)
					return res, fmt.Errorf("search: checkpoint sync: %w", err)
				}
			}
		}
		account(r.p.Label, r.p.Kind, len(r.p.Addrs), r.s)
		apply(r.p, r.s.pass)
	}

	// Compose the final configuration: union of every passing piece.
	final := base.Clone()
	for addr := range ignored {
		if n := final.NodeAt(addr); n != nil {
			n.Flag = config.Ignore
		}
	}
	for _, p := range res.Passing {
		for _, addr := range p.Addrs {
			if n := final.NodeAt(addr); n != nil {
				n.Flag = config.Single
			}
		}
	}
	// Record the classification in the configuration itself so a written
	// file documents what the analyses decided.
	for _, a := range provedAddrs {
		final.Annotate(a, "proved: bit-exact in single")
	}
	for _, a := range zeroAddrs {
		final.Annotate(a, "never executed")
	}
	for _, a := range res.Unsafe {
		final.Annotate(a, "pruned: exact-integer sink")
	}
	res.Final = final

	eff := final.Effective()
	res.Stats = replace.ComputeStats(t.Module, eff, profile)
	sortPassing(res.Passing)

	if interrupted() {
		// Cancelled: Final is the best-so-far union of the pieces that
		// settled before the interrupt. It was never verified as a whole
		// (FinalPass stays false) — an interrupt is an outcome, not an
		// error.
		res.Interrupted = true
		return res, nil
	}

	// The final-union run goes through the settler too, so a crash or
	// injected fault there is recovered like any other evaluation. Its
	// verdict is never journaled: a resumed search re-checks composition.
	// Under an external unit evaluator it ships as a unit like any piece
	// (carrying just the single-flagged addresses — absent entries
	// instrument as double exactly like explicit ones, so the run is
	// identical to the in-process settle over the full effective map).
	var fs settled
	if opts.Units != nil {
		var singles []uint64
		for a, p := range eff {
			if p == config.Single {
				singles = append(singles, a)
			}
		}
		sort.Slice(singles, func(i, j int) bool { return singles[i] < singles[j] })
		v, uerr := opts.Units.EvaluateUnit(newEvalUnit(
			"final union", "final union", config.KindModule, singles, true))
		if uerr != nil {
			res.Final = nil
			return res, uerr
		}
		fs = settledOf(v)
	} else {
		fs = st.settle(eff, "final union")
	}
	if fs.err != nil {
		res.Final = nil
		return res, fs.err
	}
	if fs.interrupted {
		res.Interrupted = true
		return res, nil
	}
	res.Tested++
	account("final union", config.KindModule, final.CountSingle(), fs)
	res.FinalPass = fs.pass
	return res, nil
}

// baseIgnored resolves the target's base configuration and its ignored
// address set. Shared by Run and NewUnitRunner so the coordinator and
// every fleet worker derive identical effective-precision maps.
func baseIgnored(t Target) (*config.Config, map[uint64]bool, error) {
	base := t.Base
	if base == nil {
		var err error
		base, err = config.FromModule(t.Module)
		if err != nil {
			return nil, nil, err
		}
	}
	ignored := make(map[uint64]bool)
	for addr, p := range base.Effective() {
		if p == config.Ignore {
			ignored[addr] = true
		}
	}
	return base, ignored, nil
}

// pruneAnalysis resolves the dataflow result used for candidate
// pruning, mirroring the instrumenter's own resolution: an explicit
// result on the target's InstrumentOptions is reused, NoAnalysis
// disables pruning along with the per-site elisions, and an analysis
// failure falls back to no pruning (every candidate is searched).
func pruneAnalysis(t Target) *dataflow.Result {
	if t.InstOpts.NoAnalysis {
		return nil
	}
	if t.InstOpts.Analysis != nil {
		return t.InstOpts.Analysis
	}
	r, err := dataflow.Analyze(t.Module)
	if err != nil {
		return nil
	}
	return r
}

// sortPassing orders passing pieces by their first address for
// deterministic, address-ordered results.
func sortPassing(pieces []*Piece) {
	sort.Slice(pieces, func(i, j int) bool {
		return pieces[i].Addrs[0] < pieces[j].Addrs[0]
	})
}

// profileRun executes the original program and returns per-address counts.
func profileRun(t Target) (map[uint64]uint64, error) {
	m, err := vm.New(t.Module)
	if err != nil {
		return nil, err
	}
	m.MaxSteps = t.MaxSteps
	if err := m.Run(); err != nil {
		return nil, err
	}
	if !t.Verify(m.Out) {
		return nil, fmt.Errorf("search: baseline run fails its own verification")
	}
	return m.Profile(), nil
}

// buildPiece converts a configuration subtree into the piece hierarchy,
// excluding ignored instructions and stopping at the requested
// granularity.
func buildPiece(n *config.Node, ignored map[uint64]bool, profile map[uint64]uint64, gran config.Kind) *Piece {
	switch n.Kind {
	case config.KindInsn:
		if ignored[n.Addr] {
			return nil
		}
		return &Piece{
			Label:  fmt.Sprintf("insn %#x %s", n.Addr, n.Name),
			Kind:   config.KindInsn,
			Addrs:  []uint64{n.Addr},
			Weight: profile[n.Addr],
		}
	default:
		p := &Piece{Kind: n.Kind}
		switch n.Kind {
		case config.KindModule:
			p.Label = "module " + n.Name
		case config.KindFunc:
			p.Label = "func " + n.Name
		case config.KindBlock:
			p.Label = fmt.Sprintf("block %#x", n.Addr)
		}
		for _, ch := range n.Children {
			cp := buildPiece(ch, ignored, profile, gran)
			if cp == nil {
				continue
			}
			p.Addrs = append(p.Addrs, cp.Addrs...)
			p.Weight += cp.Weight
			if n.Kind != gran {
				p.subs = append(p.subs, cp)
			}
		}
		if len(p.Addrs) == 0 {
			return nil
		}
		if n.Kind == gran {
			p.subs = nil
		}
		return p
	}
}

// expand produces the next round of pieces after p failed: either a binary
// split of its children or the children themselves (paper §2.2).
func expand(p *Piece, opts Options) []*Piece {
	if len(p.subs) == 0 {
		return nil // unreplaceable at the finest granularity
	}
	if opts.BinarySplit && len(p.subs) > opts.SplitThreshold {
		mid := len(p.subs) / 2
		lo := mergePieces(p.Label+"/lo", p.Kind, p.subs[:mid])
		hi := mergePieces(p.Label+"/hi", p.Kind, p.subs[mid:])
		return []*Piece{lo, hi}
	}
	return p.subs
}

func mergePieces(label string, kind config.Kind, subs []*Piece) *Piece {
	p := &Piece{Label: label, Kind: kind, subs: subs}
	for _, s := range subs {
		p.Addrs = append(p.Addrs, s.Addrs...)
		p.Weight += s.Weight
		if s.PredErr > p.PredErr {
			p.PredErr = s.PredErr
		}
		if s.PredLocal > p.PredLocal {
			p.PredLocal = s.PredLocal
		}
	}
	return p
}

// setPredErr annotates the piece tree with aggregated shadow errors.
func setPredErr(p *Piece, sh *shadow.Profile) {
	p.PredErr = sh.AggErr(p.Addrs)
	p.PredLocal = sh.AggLocalErr(p.Addrs)
	for _, s := range p.subs {
		setPredErr(s, sh)
	}
}

// pieceQueue is a heap: under sensitivity guidance it orders by
// predicted single-precision safety (ascending shadow error, so the
// pieces most likely to pass whole are tried first); otherwise by
// descending weight when prioritize is set; FIFO ties and fallback
// (implemented as ascending sequence numbers).
type pieceQueue struct {
	items      []*Piece
	seqs       []int
	nextSeq    int
	prioritize bool
	sens       bool
}

func (q *pieceQueue) Len() int { return len(q.items) }

func (q *pieceQueue) Less(i, j int) bool {
	if q.sens && q.items[i].PredErr != q.items[j].PredErr {
		return q.items[i].PredErr < q.items[j].PredErr
	}
	if q.prioritize && q.items[i].Weight != q.items[j].Weight {
		return q.items[i].Weight > q.items[j].Weight
	}
	return q.seqs[i] < q.seqs[j]
}

func (q *pieceQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.seqs[i], q.seqs[j] = q.seqs[j], q.seqs[i]
}

func (q *pieceQueue) Push(x any) {
	q.items = append(q.items, x.(*Piece))
	q.seqs = append(q.seqs, q.nextSeq)
	q.nextSeq++
}

func (q *pieceQueue) Pop() any {
	n := len(q.items)
	it := q.items[n-1]
	q.items[n-1] = nil // release the slot so the backing array can't pin it
	q.items = q.items[:n-1]
	q.seqs = q.seqs[:n-1]
	return it
}
