package search

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// Fork-point evaluation.
//
// Every piece the search settles is the base configuration plus that
// piece's sites lowered to single precision, so all evaluations of one
// search share an enormous execution prefix: everything before the first
// dynamic execution of the first differing site is the donor (all-double)
// run verbatim. The fork engine exploits this once per search: it runs the
// donor configuration a single time with a breakpoint at every candidate
// slot, snapshots the machine at each site's first touch (copy-on-write,
// so sibling snapshots share unchanged pages), and then evaluates each
// candidate configuration by assembling it incrementally (cached
// fragments, only changed sites re-spliced), restoring the snapshot taken
// at its fork point, and running just the suffix.
//
// Correctness leans on the stable slotted layout: every configuration of
// the search places shared instructions at identical addresses, so the
// snapshot's program counter and instruction counts translate one-to-one
// onto the sibling program, and the restored run is step-for-step the run
// a from-scratch evaluation would have produced from that point
// (TestForkWholeMachineIdentity pins whole-machine equality).
//
// On top of the snapshots, the engine streamlines each assembly with a
// per-configuration flag-reachability analysis (dataflow.FlagAnalysis):
// only the evaluated piece's sites can stamp the replacement sentinel,
// so double sites the flow from those sites provably cannot reach keep
// their bare original instruction — no wrapper — and the run shrinks
// toward the uninstrumented program's length. A skipped wrapper is a
// checked no-op for that configuration (its flag checks could never
// fire), so outputs and verdicts are bit-identical to the fully wrapped
// evaluation the non-forking engine performs; only step and cycle counts
// differ. The donor is assembled the same way under the empty source
// set, and a sibling's fork point is the donor's first execution of a
// site the sibling lowers to single. Wrapper flips between the two
// assemblies — full, narrowed or elided — never constrain the fork
// point: every wrapper variant is architecturally the bare instruction
// until a flagged operand reaches it, and flags originate only at
// single sites, none of which have executed inside the prefix. The
// donor's bare prefix is therefore byte-for-byte the memory, register
// and output state the sibling's own assembly would reach (its step and
// cycle counts differ, as they already do between the two engines).
//
// Fault rule: an evaluation with an armed injected trap, and any retry
// attempt after an injected fault, runs from scratch through the cached
// engine — never from a snapshot — so chaos testing exercises the same
// recovery paths as the non-forking search and a fault can never leak
// state into a replay. Snapshots themselves are immutable, but retrying
// from scratch keeps the fault model's replay story trivially airtight.
type forkEngine struct {
	t         Target
	fallback  *engine // scratch path: chaos-armed runs, retries, donor failure
	il        *vm.IncrementalLinker
	sites     []replace.StableSite
	siteIdx   map[uint64]int // candidate OldAddr -> site index
	addrIdx   map[uint64]int // stable slot address -> site index
	noCompile bool

	// fa drives the per-configuration wrapper elision; nil (analysis
	// failed to build) falls back to wrappers at every double site,
	// matching the non-forking engine's assemblies exactly.
	fa *dataflow.FlagAnalysis

	// pool holds the forked evaluation machines, dirty-page tracked:
	// a forked run never snapshots, but tracking keeps every restore
	// differential — cheaper than re-copying the full page vector per
	// evaluation, since a run leaves the read-mostly pages clean.
	pool sync.Pool // *vm.Machine, dirty-page tracked

	mu         sync.Mutex
	donorTried bool
	donor      *donorState // nil after donorTried: forking unavailable

	// Provenance counters, surfaced through Stats().
	forked      atomic.Int64
	reused      atomic.Int64
	prefixSaved atomic.Uint64
}

// donorState is the completed donor pass: the base configuration's
// verdict, its per-site variant vector (what every sibling is diffed
// against to find its fork point) and, per site, the step count and
// snapshot at its first dynamic execution (snap nil when the donor never
// executed the site).
type donorState struct {
	pass  bool
	steps uint64
	ch    []int
	touch []donorTouch
}

type donorTouch struct {
	steps uint64
	snap  *vm.Snapshot
}

func newForkEngine(t Target, noCompile bool) (*forkEngine, error) {
	fb, err := newEngine(t, noCompile)
	if err != nil {
		return nil, err
	}
	sp, err := fb.snips.Stable()
	if err != nil {
		return nil, err
	}
	vsites := make([]vm.IncrementalSite, len(sp.Sites))
	siteIdx := make(map[uint64]int, len(sp.Sites))
	addrIdx := make(map[uint64]int, len(sp.Sites))
	for i, s := range sp.Sites {
		vsites[i] = vm.IncrementalSite{Addr: s.Addr, Variants: s.Variants}
		siteIdx[s.OldAddr] = i
		addrIdx[s.Addr] = i
	}
	il, err := vm.NewIncrementalLinker(sp.Skeleton, vsites)
	if err != nil {
		return nil, err
	}
	fa, err := dataflow.NewFlagAnalysis(t.Module)
	if err != nil {
		fa = nil // no elision: every double site keeps its wrapper
	}
	e := &forkEngine{
		t: t, fallback: fb, il: il,
		sites: sp.Sites, siteIdx: siteIdx, addrIdx: addrIdx,
		noCompile: noCompile, fa: fa,
	}
	e.pool.New = func() any { return &vm.Machine{} }
	return e, nil
}

// choices maps an effective-precision map to the per-site variant vector,
// surfacing per-site snippet-generation errors exactly when the
// configuration selects the failing variant (matching InstrumentMap).
// Double sites that the flag analysis proves clean under this
// configuration's single set take the bare variant instead of the
// wrapper — bit-identical outputs, roughly half the instructions — and
// sites with exactly one proven-clean operand take the narrowed wrapper
// checking only the other one, when the site has a shorter one.
func (e *forkEngine) choices(eff map[uint64]config.Precision) ([]int, error) {
	var oc map[uint64]dataflow.OperandClean
	if e.fa != nil {
		singles := make(map[uint64]bool)
		for a, p := range eff {
			if p == config.Single {
				singles[a] = true
			}
		}
		oc = e.fa.CleanOperandsUnder(singles)
	}
	ch := make([]int, len(e.sites))
	for i := range e.sites {
		s := &e.sites[i]
		p, ok := eff[s.OldAddr]
		if !ok {
			p = config.Double
		}
		v := replace.VariantFor(p)
		switch {
		case v == replace.VariantSingle && s.SingleErr != nil:
			return nil, fmt.Errorf("replace: %w", s.SingleErr)
		case v == replace.VariantDouble && s.DoubleErr != nil:
			return nil, fmt.Errorf("replace: %w", s.DoubleErr)
		}
		if v == replace.VariantDouble && oc != nil {
			switch c := oc[s.OldAddr]; {
			case c.Src && c.Dst:
				v = replace.VariantBare
			case c.Dst && s.Variants[replace.VariantDoubleSrcOnly] != nil:
				v = replace.VariantDoubleSrcOnly
			case c.Src && s.Variants[replace.VariantDoubleDstOnly] != nil:
				v = replace.VariantDoubleDstOnly
			}
		}
		ch[i] = v
	}
	return ch, nil
}

// ensureDonor runs the donor pass once: the base configuration (eff with
// its Single sites at Double — identical for every request of one search)
// under dirty-page tracking, stopping at every candidate slot to snapshot
// the shared prefix. Any donor irregularity — assembly failure, a faulting
// base run — disables forking for the whole search rather than erroring:
// the fallback engine then evaluates everything from scratch, preserving
// the non-forking search's behavior exactly.
func (e *forkEngine) ensureDonor(eff map[uint64]config.Precision) *donorState {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.donorTried {
		return e.donor
	}
	e.donorTried = true

	// The donor's configuration is the request's with its Singles
	// stripped — the search's base configuration, identical for every
	// request of one search.
	donorEff := make(map[uint64]config.Precision)
	stops := make([]int, 0, len(e.sites))
	for i := range e.sites {
		if eff[e.sites[i].OldAddr] == config.Ignore {
			donorEff[e.sites[i].OldAddr] = config.Ignore
			continue // an ignored site is never lowered: never a fork point
		}
		stops = append(stops, i)
	}
	ch, err := e.choices(donorEff)
	if err != nil {
		return nil
	}
	lp, err := e.il.Assemble(ch)
	if err != nil {
		return nil
	}
	m := &vm.Machine{}
	m.ResetTo(lp)
	m.TrackDirtyPages()
	m.MaxSteps = e.t.MaxSteps
	m.NoCompile = e.noCompile
	for _, i := range stops {
		m.StopAt(e.sites[i].Addr)
	}
	touch := make([]donorTouch, len(e.sites))
	for {
		err := m.Run()
		if err == nil {
			break
		}
		var st *vm.Stopped
		if !errors.As(err, &st) {
			return nil // the base configuration faults: nothing to fork from
		}
		i, ok := e.addrIdx[st.PC]
		if !ok {
			return nil
		}
		snap, serr := m.Snapshot()
		if serr != nil {
			return nil
		}
		touch[i] = donorTouch{steps: st.Steps, snap: snap}
		m.ClearStop(st.PC)
	}
	e.donor = &donorState{pass: e.t.Verify(m.Out), steps: m.Steps, ch: ch, touch: touch}
	return e.donor
}

func (e *forkEngine) evaluate(req evalRequest) (outcome, error) {
	if req.trapAfter > 0 || req.attempt > 0 {
		// Chaos-armed runs and post-fault retries evaluate from scratch,
		// never from a snapshot.
		return e.fallback.evaluate(req)
	}
	d := e.ensureDonor(req.eff)
	if d == nil {
		return e.fallback.evaluate(req)
	}

	ch, err := e.choices(req.eff)
	if err != nil {
		return outcome{}, err
	}
	// The fork point: the donor's first execution of a site this
	// configuration lowers to single. Wrapper flips never constrain it —
	// a wrapper is architecturally bare until a flagged operand arrives,
	// and flags originate only at single sites, so the bare donor prefix
	// is state-identical to the one this assembly would compute itself.
	fork := -1
	for i := range ch {
		if ch[i] != replace.VariantSingle || d.touch[i].snap == nil {
			continue
		}
		if fork == -1 || d.touch[i].steps < d.touch[fork].steps {
			fork = i
		}
	}
	if fork == -1 {
		// No single site ever executes: the candidate's run computes the
		// donor run's states verbatim, so its verdict is the donor's.
		e.reused.Add(1)
		e.prefixSaved.Add(d.steps)
		return outcome{pass: d.pass, forked: true, prefixSaved: d.steps}, nil
	}

	lp, err := e.il.Assemble(ch)
	if err != nil {
		return outcome{}, err
	}
	snap := d.touch[fork].snap
	m := e.pool.Get().(*vm.Machine)
	defer e.pool.Put(m)
	m.TrackDirtyPages()
	if err := m.RestoreTo(lp, snap); err != nil {
		return outcome{}, err
	}
	m.MaxSteps = e.t.MaxSteps
	m.NoCompile = e.noCompile
	e.forked.Add(1)
	e.prefixSaved.Add(snap.Steps())
	out, err := finish(e.t, m, runMachine(m, req))
	out.forked, out.prefixSaved = true, snap.Steps()
	return out, err
}

// forkStats reports the engine's provenance counters: forked evaluations,
// donor-verdict reuses, and total prefix instructions saved.
func (e *forkEngine) forkStats() (forked, reused int64, prefixSaved uint64) {
	return e.forked.Load(), e.reused.Load(), e.prefixSaved.Load()
}
