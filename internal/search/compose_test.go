package search

import (
	"math"
	"testing"

	"fpmix/internal/hl"
	"fpmix/internal/replace"
	"fpmix/internal/verify"
	"fpmix/internal/vm"
)

// interactingProgram builds a program where two regions pass verification
// individually but their combination fails: each region adds an error of
// just under the tolerance, so together they exceed it.
func interactingProgram(t *testing.T) (Target, float64) {
	t.Helper()
	p := hl.New("interact", hl.ModeF64)
	a := p.ScalarInit("a", 1.0)
	b := p.ScalarInit("b", 1.0)
	i := p.Int("i")
	main := p.Func("main")
	main.Call("parta")
	main.Call("partb")
	main.Out(hl.Add(hl.Load(a), hl.Load(b)))
	main.Halt()
	// Each part accumulates increments that single precision rounds away,
	// shifting the output by ~6e-7 each.
	fa := p.Func("parta")
	fa.For(i, hl.IConst(0), hl.IConst(20), func() {
		fa.Set(a, hl.Add(hl.Load(a), hl.Const(3.1e-8)))
	})
	fa.Ret()
	fb := p.Func("partb")
	fb.For(i, hl.IConst(0), hl.IConst(60), func() {
		fb.Set(b, hl.Add(hl.Load(b), hl.Const(3.1e-8)))
	})
	fb.Ret()
	mod, err := p.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := vm.New(mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Out[0].F64()
	tol := 2.0e-6 // each part alone drifts ~0.6e-6/1.9e-6; together ~2.5e-6
	tgt := Target{
		Module: mod,
		Verify: func(out []vm.OutVal) bool {
			got := verify.Decode(out)
			return len(got) == 1 && math.Abs(got[0]-want) < tol
		},
	}
	return tgt, want
}

func TestComposeRecoversPassingSubset(t *testing.T) {
	tgt, _ := interactingProgram(t)
	res, err := Run(tgt, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPass {
		t.Skip("union passed; interaction did not materialize at this tolerance")
	}
	if len(res.Passing) < 2 {
		t.Fatalf("expected both parts to pass individually, got %d pieces", len(res.Passing))
	}
	cr, err := Compose(tgt, res)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Pass {
		t.Fatal("second phase found no passing composition")
	}
	if len(cr.Dropped) == 0 || cr.Tested == 0 {
		t.Error("compose should have dropped pieces and tested configurations")
	}
	if cr.Stats.StaticSingle == 0 {
		t.Error("composed configuration replaced nothing")
	}
	if cr.Stats.StaticSingle >= res.Stats.StaticSingle {
		t.Error("composition should replace strictly less than the failing union")
	}
	// The composed configuration really passes (checked via the fallback
	// pipeline, independently of the engine Compose used).
	out, err := legacyEvaluator{t: tgt}.evaluate(evalRequest{eff: cr.Config.Effective()})
	if err != nil {
		t.Fatal(err)
	}
	if !out.pass {
		t.Error("composed configuration does not verify")
	}
}

func TestComposeNoopWhenUnionPasses(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}
	res, err := Run(tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalPass {
		t.Skip("union failed unexpectedly")
	}
	cr, err := Compose(tgt, res)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Pass || cr.Tested != 0 || len(cr.Dropped) != 0 {
		t.Errorf("compose on passing union: pass=%v tested=%d dropped=%d",
			cr.Pass, cr.Tested, len(cr.Dropped))
	}
	if cr.Stats != res.Stats {
		t.Error("stats should be unchanged")
	}
}

// TestComposeDropsCheapestFirst checks the greedy order: the piece with
// the smaller profile weight goes first.
func TestComposeDropsCheapestFirst(t *testing.T) {
	tgt, _ := interactingProgram(t)
	res, err := Run(tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPass {
		t.Skip("union passed")
	}
	cr, err := Compose(tgt, res)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cr.Dropped); i++ {
		if cr.Dropped[i-1].Weight > cr.Dropped[i].Weight {
			t.Error("pieces not dropped in ascending weight order")
		}
	}
	_ = replace.Flag // keep import for documentation symmetry
}

// TestBTFinalUnionNonIndependence pins the root cause of bt.W's
// "final verification: fail" in the benchmark table (BENCH_*.json
// FinalPass: false): per-piece verdicts are not independent. Every piece
// the search accepts passes verification in isolation, but the union of
// all of them fails — each lowered region contributes rounding error
// under the tolerance, and only their sum crosses it. That is exactly
// the interaction §3.1 anticipates, and the second search phase recovers
// a passing composed configuration by dropping pieces (fpsearch
// -compose). Not a search bug: the regression this test guards against
// is the union failing while some piece also fails alone, or Compose
// failing to recover.
func TestBTFinalUnionNonIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("bt.W search in -short mode")
	}
	tgt := kernelTarget(t, "bt")
	res, err := Run(tgt, Options{Workers: 4, BinarySplit: true, Prioritize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPass {
		t.Fatal("bt.W final union passes now — the documented non-independence is gone; update BENCH notes and this test")
	}
	ev, err := newEngine(tgt, false)
	if err != nil {
		t.Fatal(err)
	}
	ignored := make(map[uint64]bool, len(res.Unsafe))
	for _, u := range res.Unsafe {
		ignored[u] = true
	}
	for _, p := range res.Passing {
		out, err := ev.evaluate(evalRequest{eff: effFor(p.Addrs, ignored)})
		if err != nil {
			t.Fatal(err)
		}
		if !out.pass {
			t.Errorf("piece %s fails in isolation: the union failure is not pure non-independence", p.Label)
		}
	}
	cr, err := Compose(tgt, res)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Pass {
		t.Error("second phase failed to recover a passing configuration")
	}
	if cr.Pass && cr.Stats.StaticPct <= 0 {
		t.Error("recovered configuration replaces nothing")
	}
	t.Logf("bt.W: %d passing pieces, union fails, compose drops %d and passes at %.1f%% static",
		len(res.Passing), len(cr.Dropped), cr.Stats.StaticPct)
}
