package search

import "time"

// Summary is the machine-readable image of a Result: verdict-provenance
// counts, robustness counters, replacement statistics, and the per-piece
// evaluation records with wall times. It is the one encoding shared by
// `fpsearch -json` and the fpmixd status endpoint, so tooling parses the
// same shape whether the search ran as a CLI batch or as a service job.
type Summary struct {
	Benchmark string `json:"benchmark,omitempty"`

	Candidates       int    `json:"candidates"`
	Tested           int    `json:"tested"`
	MemoHits         int    `json:"memo_hits"`
	CacheHits        int    `json:"cache_hits"`
	PrunedCandidates int    `json:"pruned_candidates"`
	UnsafeSinks      int    `json:"unsafe_sinks"`
	Predicted        int    `json:"predicted"`
	Proved           int    `json:"proved"`
	Resumed          int    `json:"resumed"`
	Forked           int    `json:"forked"`
	PrefixSaved      uint64 `json:"prefix_instrs_saved"`

	Crashed  int `json:"crashed"`
	TimedOut int `json:"timed_out"`
	Retried  int `json:"retried"`
	Injected int `json:"injected"`

	FinalPass   bool    `json:"final_pass"`
	Interrupted bool    `json:"interrupted"`
	StaticPct   float64 `json:"static_pct"`
	DynamicPct  float64 `json:"dynamic_pct"`

	// Provenance counts Eval records by verdict provenance
	// (evaluated / memo / pruned / predicted / checkpoint / proved).
	Provenance map[string]int `json:"provenance"`

	Evals []EvalRecord `json:"evals,omitempty"`
}

// EvalRecord is one Eval in the summary encoding.
type EvalRecord struct {
	Label    string `json:"label"`
	Kind     string `json:"kind"`
	Insns    int    `json:"insns"`
	Pass     bool   `json:"pass"`
	Prov     string `json:"prov"`
	WallNS   int64  `json:"wall_ns,omitempty"`
	Failure  string `json:"failure,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Forked   bool   `json:"forked,omitempty"`
}

// Summarize flattens a Result (possibly mid-search: the service builds
// live summaries from partial results) into its JSON encoding. benchmark
// labels the summary ("ep.W"); pass "" when not applicable.
func Summarize(benchmark string, res *Result) *Summary {
	s := &Summary{
		Benchmark:        benchmark,
		Candidates:       res.Candidates,
		Tested:           res.Tested,
		MemoHits:         res.MemoHits,
		CacheHits:        res.CacheHits,
		PrunedCandidates: res.PrunedCandidates,
		UnsafeSinks:      len(res.Unsafe),
		Predicted:        res.Predicted,
		Proved:           res.Proved,
		Resumed:          res.Resumed,
		Forked:           res.Forked,
		PrefixSaved:      res.PrefixInstrsSaved,
		Crashed:          res.Crashed,
		TimedOut:         res.TimedOut,
		Retried:          res.Retried,
		Injected:         res.Injected,
		FinalPass:        res.FinalPass,
		Interrupted:      res.Interrupted,
		StaticPct:        res.Stats.StaticPct,
		DynamicPct:       res.Stats.DynamicPct,
		Provenance:       make(map[string]int),
	}
	for _, ev := range res.Evals {
		s.Provenance[ev.Prov.String()]++
		s.Evals = append(s.Evals, evalRecord(ev))
	}
	return s
}

// evalRecord encodes one Eval (also used for streaming single records).
func evalRecord(ev Eval) EvalRecord {
	r := EvalRecord{
		Label:    ev.Label,
		Kind:     ev.Kind.String(),
		Insns:    ev.Insns,
		Pass:     ev.Pass,
		Prov:     ev.Prov.String(),
		WallNS:   int64(ev.Wall / time.Nanosecond),
		Attempts: ev.Attempts,
		Forked:   ev.Forked,
	}
	if ev.Failure != FailNone {
		r.Failure = ev.Failure.String()
	}
	return r
}

// Record is the exported form of evalRecord for streaming endpoints.
func Record(ev Eval) EvalRecord { return evalRecord(ev) }
