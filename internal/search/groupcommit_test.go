package search

import (
	"path/filepath"
	"testing"
	"time"
)

// TestJournalGroupCommit: under SetGroupCommit a Sync landing inside
// the commit window leaves its appends buffered, a zero window restores
// sync-every-call, and Close always makes everything durable.
func TestJournalGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	fp := Fingerprint{Options: "gc-test"}
	j, err := NewJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	pending := func() int {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.pending
	}

	// Prime lastSync so the next Sync lands inside the window.
	if err := j.record("k0", settled{pass: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.SetGroupCommit(time.Hour)
	if err := j.record("k1", settled{pass: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if pending() == 0 {
		t.Fatal("Sync inside the group-commit window fsynced eagerly")
	}
	// A zero window restores sync-every-call.
	j.SetGroupCommit(0)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := pending(); got != 0 {
		t.Fatalf("pending = %d after Sync with group commit off, want 0", got)
	}
	// Close syncs regardless of the window: every verdict must be
	// durable for a resuming search.
	j.SetGroupCommit(time.Hour)
	if err := j.record("k2", settled{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ResumeJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Prior() != 3 {
		t.Fatalf("resumed %d verdicts, want 3", r.Prior())
	}
}
