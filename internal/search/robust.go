package search

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/faultinject"
	"fpmix/internal/vm"
)

// Failure classifies why an evaluated piece failed (FailNone on a pass).
type Failure uint8

// Failure classes.
const (
	// FailNone: the piece passed.
	FailNone Failure = iota
	// FailVerify: the run completed and the verification routine
	// rejected its output.
	FailVerify
	// FailTrap: the run trapped (NaN-driven divergence, out-of-bounds
	// access, step-budget exhaustion); the vm.Fault is attached.
	FailTrap
	// FailTimeout: the run exceeded the per-evaluation wall-clock bound
	// (or an injected hang exhausted the retry budget).
	FailTimeout
	// FailCrash: the evaluation goroutine panicked; the search recovered,
	// recorded the stack, and kept going.
	FailCrash
)

func (f Failure) String() string {
	switch f {
	case FailNone:
		return "none"
	case FailVerify:
		return "verify"
	case FailTrap:
		return "trap"
	case FailTimeout:
		return "timeout"
	case FailCrash:
		return "crash"
	default:
		return "failure?"
	}
}

// defaultBackoff spaces retries of transient failures.
const defaultBackoff = 25 * time.Millisecond

// settled is the final verdict a settler reached for one evaluation,
// after retries, confirmation and crash recovery.
type settled struct {
	pass    bool
	failure Failure
	fault   *vm.Fault // the trap that decided a FailTrap/FailTimeout verdict
	stack   string    // recovered stack of a FailCrash

	attempts int  // evaluation attempts consumed (≥1)
	retried  int  // attempts beyond the first (transient retries + confirmations)
	injected int  // injected faults absorbed along the way
	nondet   bool // the verifier returned disagreeing verdicts; pass wins

	// forked/prefixSaved carry the deciding attempt's fork provenance:
	// whether it ran from a fork-point snapshot and how many
	// shared-prefix instructions that skipped.
	forked      bool
	prefixSaved uint64

	wall time.Duration // total across attempts, including backoff

	// interrupted: the surrounding context was cancelled before a verdict
	// was reached; the piece is unsettled and must not be recorded.
	interrupted bool
	// err is an infrastructure error (instrumentation or linking broke);
	// it aborts the search as a whole.
	err error
}

// settler hardens evaluations: it classifies each attempt's outcome as a
// verdict, a deterministic failure, or a transient fault worth retrying,
// and drives the bounded retry-with-backoff loop. One settler serves all
// workers (it is stateless apart from its configuration).
type settler struct {
	ev      evaluator
	ignored map[uint64]bool
	ctx     context.Context // never nil; Background when no bound is set
	timeout time.Duration   // per-attempt wall-clock bound (0 = none)
	retries int             // transient-retry budget per evaluation
	backoff time.Duration
	chaos   *faultinject.Injector
	// noConfirm skips the confirmation re-run of failing verification
	// verdicts. Only set when the evaluator's replay is exact (fork
	// engine, no chaos): re-running a deterministic evaluation cannot
	// change the verdict, so the confirmation is pure cost. With chaos
	// armed, confirmation stays on — it is what heals injected flaky
	// verdicts.
	noConfirm bool
}

// attemptOut is one attempt's classified outcome.
type attemptOut struct {
	out      outcome
	injected faultinject.Kind // != KindNone: an injected fault was absorbed
	crash    string           // non-empty: a real panic, with stack
	err      error
}

// runAttempt executes one evaluation attempt, applying the chaos decision
// for (key, n) and recovering panics.
func (s *settler) runAttempt(eff map[uint64]config.Precision, key string, n int) (ao attemptOut) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(faultinject.Injected); ok {
				ao = attemptOut{injected: faultinject.KindPanic}
				return
			}
			ao = attemptOut{crash: fmt.Sprintf("%v\n%s", r, debug.Stack())}
		}
	}()
	var d faultinject.Decision
	if s.chaos != nil {
		d = s.chaos.Decide(key, n)
	}
	switch d.Kind {
	case faultinject.KindPanic:
		panic(faultinject.Injected{Key: key, Attempt: n})
	case faultinject.KindHang:
		// A hung run: stall, then report the attempt as lost. The stall
		// honours cancellation so interrupts are not delayed by chaos.
		t := time.NewTimer(d.StallFor)
		select {
		case <-t.C:
		case <-s.ctx.Done():
			t.Stop()
		}
		return attemptOut{injected: faultinject.KindHang}
	}
	actx := s.ctx
	if s.timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(actx, s.timeout)
		defer cancel()
	}
	if actx == context.Background() {
		actx = nil // plain Run: no watcher goroutine, no per-step flag poll
	}
	out, err := s.ev.evaluate(evalRequest{eff: eff, ctx: actx, trapAfter: d.TrapAfter, attempt: n})
	if err != nil {
		return attemptOut{err: err}
	}
	if out.fault != nil && out.fault.Kind == vm.FaultInjected {
		return attemptOut{out: out, injected: faultinject.KindTrap}
	}
	if d.Kind == faultinject.KindFlaky && out.fault == nil && out.pass {
		// The flaky verdict: a passing run misreported as failing, as a
		// nondeterministic verifier would. The settler's failing-verdict
		// confirmation re-run heals it (and flags the disagreement).
		out.pass = false
	}
	return attemptOut{out: out}
}

// settle drives one evaluation to a verdict. Classification:
//
//   - injected faults (panic, hang, armed trap) are transient: retry with
//     backoff while budget remains — the injector never faults a retry,
//     so the budget always suffices to reach a clean attempt;
//   - a real panic is a deterministic pipeline bug: settle FailCrash
//     immediately, stack attached, and let the pool keep going;
//   - a real trap is a deterministic property of the configuration:
//     settle FailTrap immediately;
//   - a cancelled run is an interrupt (parent context ended — the piece
//     stays unsettled) or a timeout (per-attempt bound hit — settle
//     FailTimeout, no retry: the bound is deterministic);
//   - a failing verification verdict is confirmed by one re-run when
//     retries are enabled; fail-then-pass disagreement flags the verifier
//     as nondeterministic and the pass wins.
func (s *settler) settle(eff map[uint64]config.Precision, key string) (st settled) {
	start := time.Now()
	defer func() { st.wall = time.Since(start) }()
	delay := s.backoff
	if delay <= 0 {
		delay = defaultBackoff
	}
	budget := s.retries
	confirming := false
	for n := 0; ; n++ {
		if s.ctx.Err() != nil {
			st.interrupted = true
			return st
		}
		st.attempts = n + 1
		ao := s.runAttempt(eff, key, n)
		if ao.err != nil {
			st.err = ao.err
			return st
		}
		if ao.crash != "" {
			st.pass, st.failure, st.stack = false, FailCrash, ao.crash
			return st
		}
		if ao.injected != faultinject.KindNone {
			st.injected++
			if budget > 0 {
				budget--
				st.retried++
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-s.ctx.Done():
					timer.Stop()
				}
				delay *= 2
				continue
			}
			// Budget exhausted on an injected fault: settle it under the
			// failure class the real fault would have had.
			st.pass = false
			switch ao.injected {
			case faultinject.KindPanic:
				st.failure = FailCrash
			case faultinject.KindHang:
				st.failure = FailTimeout
			default:
				st.failure, st.fault = FailTrap, ao.out.fault
			}
			return st
		}
		st.forked, st.prefixSaved = ao.out.forked, ao.out.prefixSaved
		if f := ao.out.fault; f != nil {
			if f.Kind == vm.FaultCancelled {
				if s.ctx.Err() != nil {
					st.interrupted = true
					return st
				}
				st.pass, st.failure, st.fault = false, FailTimeout, f
				return st
			}
			st.pass, st.failure, st.fault = false, FailTrap, f
			return st
		}
		if ao.out.pass {
			if confirming {
				// The confirmation run disagrees with the failing verdict:
				// the verifier is nondeterministic. Accept the pass — a
				// spurious fail would shrink the final configuration.
				st.nondet = true
			}
			st.pass, st.failure = true, FailNone
			return st
		}
		if budget > 0 && !confirming && !s.noConfirm {
			// Failing verdict: spend one retry confirming it before
			// settling, healing injected flaky verdicts and surfacing
			// genuinely nondeterministic verifiers.
			budget--
			st.retried++
			confirming = true
			continue
		}
		st.pass, st.failure = false, FailVerify
		return st
	}
}
