package search

import (
	"sort"

	"fpmix/internal/config"
	"fpmix/internal/replace"
)

// The paper observes that the union of individually-passing replacements
// may fail verification because precision decisions are not independent,
// and suggests "a second search phase ... to determine the largest subset
// of individually-passing instruction replacements that may be composed
// to create a passing final configuration" (§3.1). Compose implements
// that phase as a greedy backoff: passing pieces are dropped from the
// union in ascending profile-weight order (sacrificing the least dynamic
// replacement benefit first) until the composition verifies.

// ComposeResult describes the outcome of the second search phase.
type ComposeResult struct {
	// Config is the passing composed configuration (nil if even the empty
	// replacement set failed, which indicates a broken verifier).
	Config *config.Config
	// Pass reports whether a passing composition was found.
	Pass bool
	// Dropped lists the pieces removed from the union, in drop order.
	Dropped []*Piece
	// Tested is the number of additional configurations evaluated.
	Tested int
	// Stats describes the composed configuration.
	Stats replace.Stats
}

// Compose runs the second search phase on a completed Result. If the
// final union already passed it returns immediately with zero additional
// evaluations.
func Compose(t Target, res *Result) (*ComposeResult, error) {
	base := res.Final
	if res.FinalPass {
		return &ComposeResult{Config: base, Pass: true, Stats: res.Stats}, nil
	}
	// Ascending weight: drop the pieces whose loss costs the least dynamic
	// replacement first.
	pieces := append([]*Piece(nil), res.Passing...)
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].Weight != pieces[j].Weight {
			return pieces[i].Weight < pieces[j].Weight
		}
		return pieces[i].Addrs[0] < pieces[j].Addrs[0]
	})

	ev, err := newEvaluator(t, EngineOn, false)
	if err != nil {
		return nil, err
	}

	cr := &ComposeResult{}
	cfg := base.Clone()
	for _, p := range pieces {
		// Remove this piece from the composition.
		for _, addr := range p.Addrs {
			if n := cfg.NodeAt(addr); n != nil && n.Flag == config.Single {
				n.Flag = config.Unset
			}
		}
		cr.Dropped = append(cr.Dropped, p)
		eff := cfg.Effective()
		out, err := ev.evaluate(evalRequest{eff: eff})
		if err != nil {
			return nil, err
		}
		cr.Tested++
		if out.pass {
			cr.Config = cfg
			cr.Pass = true
			cr.Stats = replace.ComputeStats(t.Module, eff, res.Profile)
			return cr, nil
		}
	}
	return cr, nil
}
