package search

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fpmix/internal/faultinject"
)

// TestProveVsNoProveKernels is the search-level soundness differential:
// the prover must never change the destination, only how many evaluation
// runs reaching it costs. Every piece verdict it settles statically must
// be one the evaluator would have passed, so Tested+Proved with the
// prover equals Tested without it, and the effective precision
// assignments agree exactly (proved pieces additionally carry provenance
// notes, so identity is over Effective(), not the annotated rendering).
func TestProveVsNoProveKernels(t *testing.T) {
	names := []string{"ep", "ft"}
	provedSomewhere := false
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			tgt := kernelTarget(t, name)
			opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}

			opts.NoProve = true
			off, err := Run(tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			if off.Proved != 0 {
				t.Errorf("-noprove run reported %d proved verdicts", off.Proved)
			}

			opts.NoProve = false
			on, err := Run(tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			if on.Tested+on.Proved != off.Tested {
				t.Errorf("prover invariant broken: tested %d + proved %d != baseline tested %d",
					on.Tested, on.Proved, off.Tested)
			}
			if !reflect.DeepEqual(on.Final.Effective(), off.Final.Effective()) {
				t.Error("prover changed the effective final configuration")
			}
			if on.FinalPass != off.FinalPass {
				t.Errorf("prover changed the final verdict: %v vs %v", on.FinalPass, off.FinalPass)
			}
			if on.Proved > 0 {
				provedSomewhere = true
			}
		})
	}
	if !provedSomewhere {
		t.Error("prover settled no verdict on any kernel — integration inert")
	}
}

// TestProvedAnnotations: pieces the prover settled surface as `proved`
// provenance notes on the final configuration (rendered by fpdump -conf).
func TestProvedAnnotations(t *testing.T) {
	tgt := kernelTarget(t, "ep")
	res, err := Run(tgt, Options{Workers: 4, BinarySplit: true, Prioritize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proved == 0 {
		t.Fatal("ep search proved nothing — annotation test has no subject")
	}
	sawProv := false
	for _, ev := range res.Evals {
		if ev.Prov == ProvProved {
			sawProv = true
			if !ev.Pass {
				t.Error("proved verdict recorded as failing")
			}
		}
	}
	if !sawProv {
		t.Error("no Eval carries ProvProved provenance")
	}
	notes := 0
	for _, a := range res.Final.Candidates() {
		if n := res.Final.NodeAt(a); n != nil && strings.Contains(n.Note, "proved: bit-exact in single") {
			notes++
		}
	}
	if notes == 0 {
		t.Error("no final-config node carries the proved annotation")
	}
}

// TestProveUnderChaos: fault injection must not perturb the prover's
// verdicts or the invariant — proofs are static, so chaos only touches
// the evaluated remainder.
func TestProveUnderChaos(t *testing.T) {
	tgt := kernelTarget(t, "ep")
	opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}
	clean, err := Run(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = faultinject.New(7, faultinject.Rates{}, 50*time.Millisecond)
	chaos, err := Run(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Proved != clean.Proved {
		t.Errorf("chaos changed proved count: %d vs %d", chaos.Proved, clean.Proved)
	}
	if !reflect.DeepEqual(chaos.Final.Effective(), clean.Final.Effective()) {
		t.Error("chaos + prover changed the effective final configuration")
	}
	if chaos.FinalPass != clean.FinalPass {
		t.Error("chaos + prover changed the final verdict")
	}
}

// TestProveCheckpointReplay: proved verdicts journal with a `proved`
// token and replay with ProvProved provenance on resume — no re-analysis,
// no re-evaluation.
func TestProveCheckpointReplay(t *testing.T) {
	tgt := kernelTarget(t, "ep")
	path := filepath.Join(t.TempDir(), "ep.ckpt")
	opts := Options{Workers: 4, BinarySplit: true, Prioritize: true}

	jr, err := NewJournal(path, Fingerprint{Options: "ep.W gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(tgt, withJournal(opts, jr))
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if full.Proved == 0 {
		t.Fatal("ep search proved nothing — replay test has no subject")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), " proved\n") {
		t.Error("journal carries no proved-token verdict line")
	}

	// A full journal replays everything, proved verdicts included.
	re, err := ResumeJournal(path, Fingerprint{Options: "ep.W gran=insn"})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(tgt, withJournal(opts, re))
	re.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Proved != full.Proved {
		t.Errorf("resume replayed %d proved verdicts, want %d", resumed.Proved, full.Proved)
	}
	replayedProved := 0
	for _, ev := range resumed.Evals {
		if ev.Prov == ProvProved {
			replayedProved++
		}
	}
	if replayedProved != full.Proved {
		t.Errorf("%d Evals carry ProvProved after resume, want %d", replayedProved, full.Proved)
	}
	if resumed.Final.String() != full.Final.String() {
		t.Error("resume changed the final configuration (annotations included)")
	}
	if resumed.FinalPass != full.FinalPass {
		t.Error("resume changed the final verdict")
	}
}
