package search

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"
)

// journalMagic heads every checkpoint file, followed by the caller's
// fingerprint of the search being journaled (benchmark, class,
// granularity…). Resume refuses a journal whose fingerprint does not
// match: verdicts are only replayable into the same search.
const journalMagic = "fpmix-checkpoint v1"

// Journal is an append-only checkpoint of settled evaluation verdicts.
// Each evaluated piece appends one line — the hex image of its address
// set key and its verdict — flushed as it settles, so a search killed at
// any point leaves a journal of everything it decided. Resuming replays
// those verdicts (Provenance ProvCheckpoint) instead of re-evaluating:
// the queue trajectory is deterministic given the verdicts, so the
// resumed search reaches a final configuration byte-identical to an
// uninterrupted run's.
//
// Only evaluated settles are journaled. Pruned, predicted and memo
// verdicts are recomputed on resume (they are deterministic and free),
// and the final-union evaluation is re-run so a resumed search re-checks
// composition.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	prior map[string]bool
}

// NewJournal creates (or truncates) a checkpoint at path for a search
// with the given fingerprint.
func NewJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(f, "%s %s\n", journalMagic, fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: make(map[string]bool)}, nil
}

// ResumeJournal opens an existing checkpoint, validates its fingerprint,
// loads every complete verdict line, and truncates a partial trailing
// line (the write the dying process did not finish). The journal is then
// ready for both replay and further appends.
func ResumeJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s: unreadable header: %w", path, err)
	}
	want := fmt.Sprintf("%s %s", journalMagic, fingerprint)
	if strings.TrimSuffix(header, "\n") != want {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s is for %q, not %q",
			path, strings.TrimSuffix(header, "\n"), want)
	}
	prior := make(map[string]bool)
	good := int64(len(header)) // offset past the last complete, valid line
	for {
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasSuffix(line, "\n") {
			break // EOF or a torn final write: truncate it away
		}
		hexKey, verdict, ok := strings.Cut(strings.TrimSuffix(line, "\n"), " ")
		if !ok || (verdict != "pass" && verdict != "fail") {
			break
		}
		key, err := hex.DecodeString(hexKey)
		if err != nil {
			break
		}
		prior[string(key)] = verdict == "pass"
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: prior}, nil
}

// Prior is the number of verdicts loaded from an existing checkpoint.
func (j *Journal) Prior() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.prior)
}

// Close releases the journal file. The search closes the journal it was
// handed; callers only Close on paths where Run was never reached.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup replays a verdict journaled by a prior process (loaded at
// ResumeJournal). Verdicts recorded in the current run are deliberately
// not consulted: in-run duplicates are the memo table's job, so Resumed
// counts exactly the work inherited from the interrupted search.
func (j *Journal) lookup(key string) (pass, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	pass, ok = j.prior[key]
	return pass, ok
}

// record appends one settled verdict, flushed to the file immediately.
func (j *Journal) record(key string, pass bool) error {
	verdict := "fail"
	if pass {
		verdict = "pass"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := fmt.Fprintf(j.f, "%s %s\n", hex.EncodeToString([]byte(key)), verdict)
	return err
}
