package search

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"
)

// journalMagic heads every checkpoint file, followed by the caller's
// fingerprint of the search being journaled (benchmark, class,
// granularity…). Resume refuses a journal whose fingerprint does not
// match: verdicts are only replayable into the same search.
const journalMagic = "fpmix-checkpoint v1"

// Journal is an append-only checkpoint of settled evaluation verdicts.
// Each evaluated piece appends one line — the hex image of its address
// set key and its verdict — flushed as it settles, so a search killed at
// any point leaves a journal of everything it decided. Resuming replays
// those verdicts (Provenance ProvCheckpoint) instead of re-evaluating:
// the queue trajectory is deterministic given the verdicts, so the
// resumed search reaches a final configuration byte-identical to an
// uninterrupted run's.
//
// Only evaluated settles are journaled. Pruned, predicted and memo
// verdicts are recomputed on resume (they are deterministic and free),
// and the final-union evaluation is re-run so a resumed search re-checks
// composition.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	prior map[string]journalVerdict
}

// journalVerdict is one replayable journal line: the verdict plus its
// fork provenance (how the interrupted search obtained it).
type journalVerdict struct {
	pass        bool
	forked      bool
	prefixSaved uint64
	// proved marks a verdict settled by the static error-bound prover;
	// a resumed search replays it as ProvProved instead of re-deriving
	// the proof.
	proved bool
}

// NewJournal creates (or truncates) a checkpoint at path for a search
// with the given fingerprint.
func NewJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(f, "%s %s\n", journalMagic, fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: make(map[string]journalVerdict)}, nil
}

// ResumeJournal opens an existing checkpoint, validates its fingerprint,
// loads every complete verdict line, and truncates a partial trailing
// line (the write the dying process did not finish). The journal is then
// ready for both replay and further appends.
func ResumeJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s: unreadable header: %w", path, err)
	}
	want := fmt.Sprintf("%s %s", journalMagic, fingerprint)
	if strings.TrimSuffix(header, "\n") != want {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s is for %q, not %q",
			path, strings.TrimSuffix(header, "\n"), want)
	}
	prior := make(map[string]journalVerdict)
	good := int64(len(header)) // offset past the last complete, valid line
	for {
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasSuffix(line, "\n") {
			break // EOF or a torn final write: truncate it away
		}
		fields := strings.Fields(strings.TrimSuffix(line, "\n"))
		if len(fields) < 2 || (fields[1] != "pass" && fields[1] != "fail") {
			break
		}
		key, err := hex.DecodeString(fields[0])
		if err != nil {
			break
		}
		jv := journalVerdict{pass: fields[1] == "pass"}
		// Optional provenance written by fork-point searches: lines from
		// older journals simply lack it.
		bad := false
		for _, f := range fields[2:] {
			if f == "proved" {
				jv.proved = true
				continue
			}
			n, cerr := fmt.Sscanf(f, "forked=%d", &jv.prefixSaved)
			if cerr != nil || n != 1 {
				bad = true
				break
			}
			jv.forked = true
		}
		if bad {
			break
		}
		prior[string(key)] = jv
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: prior}, nil
}

// Prior is the number of verdicts loaded from an existing checkpoint.
func (j *Journal) Prior() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.prior)
}

// Close releases the journal file. The search closes the journal it was
// handed; callers only Close on paths where Run was never reached.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup replays a verdict journaled by a prior process (loaded at
// ResumeJournal). Verdicts recorded in the current run are deliberately
// not consulted: in-run duplicates are the memo table's job, so Resumed
// counts exactly the work inherited from the interrupted search.
func (j *Journal) lookup(key string) (jv journalVerdict, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jv, ok = j.prior[key]
	return jv, ok
}

// record appends one settled verdict, flushed to the file immediately.
// Fork-point verdicts append their provenance ("forked=<prefix steps
// saved>") so a resumed search reports the inherited work faithfully;
// readers that predate the field treat such lines as torn and stop there.
func (j *Journal) record(key string, s settled) error {
	verdict := "fail"
	if s.pass {
		verdict = "pass"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if s.forked {
		_, err = fmt.Fprintf(j.f, "%s %s forked=%d\n", hex.EncodeToString([]byte(key)), verdict, s.prefixSaved)
	} else {
		_, err = fmt.Fprintf(j.f, "%s %s\n", hex.EncodeToString([]byte(key)), verdict)
	}
	return err
}

// recordProved appends a verdict settled by the static error-bound
// prover ("pass proved"), so a resumed search replays the proof instead
// of re-deriving it. Readers that predate the token treat such lines as
// torn and stop there, as with fork provenance.
func (j *Journal) recordProved(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := fmt.Fprintf(j.f, "%s pass proved\n", hex.EncodeToString([]byte(key)))
	return err
}
