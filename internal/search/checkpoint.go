package search

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"fpmix/internal/prog"
)

// journalMagic heads every checkpoint file, followed by the structured
// fingerprint of the search being journaled. Resume refuses a journal
// whose fingerprint does not match — verdicts are only replayable into
// the same search — and reports which field diverged.
const journalMagic = "fpmix-checkpoint v2"

// Fingerprint ties a journal (and, via its Image field, a shared
// verdict-cache scope) to the exact search it belongs to.
type Fingerprint struct {
	// Image identifies the program under search: the hex digest of its
	// serialized module image (ModuleFingerprint). Empty is permitted
	// for callers that cannot serialize the module; it is recorded as
	// "-" and still must match on resume.
	Image string
	// Options identifies the search shape — benchmark, class,
	// granularity, anything that changes the queue trajectory.
	Options string
}

// String renders the fingerprint as it appears in the journal header.
func (fp Fingerprint) String() string {
	img := fp.Image
	if img == "" {
		img = "-"
	}
	return fmt.Sprintf("image=%s opts=%s", img, fp.Options)
}

// ModuleFingerprint digests a module's serialized image — the Image
// field of a journal fingerprint and the scope key of the shared
// cross-job verdict cache (internal/jobs).
func ModuleFingerprint(m *prog.Module) (string, error) {
	img, err := prog.Save(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(img)
	return hex.EncodeToString(sum[:]), nil
}

// Journal is an append-only checkpoint of settled evaluation verdicts.
// Each evaluated piece appends one line — the hex image of its address
// set key and its verdict — as it settles, so a search killed at any
// point leaves a journal of everything it decided. Resuming replays
// those verdicts (Provenance ProvCheckpoint) instead of re-evaluating:
// the queue trajectory is deterministic given the verdicts, so the
// resumed search reaches a final configuration byte-identical to an
// uninterrupted run's.
//
// Durability: the file is opened O_APPEND (each line is one atomic
// append, even with concurrent writers) and fsynced at write-batch
// boundaries — the search calls Sync whenever every launched evaluation
// has settled, and Close syncs a final time. Between syncs a crash can
// lose at most the current batch (and possibly tear its final line,
// which resume truncates away); it can never corrupt earlier batches.
//
// Only evaluated settles are journaled. Pruned, predicted and memo
// verdicts are recomputed on resume (they are deterministic and free),
// and the final-union evaluation is re-run so a resumed search re-checks
// composition.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	prior   map[string]journalVerdict
	pending int // appends since the last fsync

	// groupCommit, when positive, rate-limits Sync to one fsync per
	// window; lastSync is when the file was last made durable.
	groupCommit time.Duration
	lastSync    time.Time
}

// journalVerdict is one replayable journal line: the verdict plus its
// fork provenance (how the interrupted search obtained it).
type journalVerdict struct {
	pass        bool
	forked      bool
	prefixSaved uint64
	// proved marks a verdict settled by the static error-bound prover;
	// a resumed search replays it as ProvProved instead of re-deriving
	// the proof.
	proved bool
}

// NewJournal creates (or truncates) a checkpoint at path for a search
// with the given fingerprint.
func NewJournal(path string, fp Fingerprint) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(f, "%s %s\n", journalMagic, fp); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		// The header must be durable before any verdict is: a journal
		// whose header was lost is indistinguishable from garbage.
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: make(map[string]journalVerdict)}, nil
}

// ResumeJournal opens an existing checkpoint, validates its fingerprint
// field by field, loads every complete verdict line, and truncates a
// partial trailing line (the write the dying process did not finish).
// The journal is then ready for both replay and further appends.
func ResumeJournal(path string, fp Fingerprint) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("search: checkpoint %s: unreadable header: %w", path, err)
	}
	if err := matchFingerprint(path, strings.TrimSuffix(header, "\n"), fp); err != nil {
		f.Close()
		return nil, err
	}
	prior := make(map[string]journalVerdict)
	good := int64(len(header)) // offset past the last complete, valid line
	for {
		line, err := br.ReadString('\n')
		if err != nil || !strings.HasSuffix(line, "\n") {
			break // EOF or a torn final write: truncate it away
		}
		fields := strings.Fields(strings.TrimSuffix(line, "\n"))
		if len(fields) < 2 || (fields[1] != "pass" && fields[1] != "fail") {
			break
		}
		key, err := hex.DecodeString(fields[0])
		if err != nil {
			break
		}
		jv := journalVerdict{pass: fields[1] == "pass"}
		// Optional provenance written by fork-point searches: lines from
		// older journals simply lack it.
		bad := false
		for _, f := range fields[2:] {
			if f == "proved" {
				jv.proved = true
				continue
			}
			n, cerr := fmt.Sscanf(f, "forked=%d", &jv.prefixSaved)
			if cerr != nil || n != 1 {
				bad = true
				break
			}
			jv.forked = true
		}
		if bad {
			break
		}
		prior[string(key)] = jv
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, prior: prior}, nil
}

// matchFingerprint validates a journal header against the resuming
// search's fingerprint and, on mismatch, reports which field diverged —
// the image hash (a different program) or the option set (a different
// search shape over the same program).
func matchFingerprint(path, header string, fp Fingerprint) error {
	rest, ok := strings.CutPrefix(header, journalMagic+" ")
	if !ok {
		return fmt.Errorf("search: checkpoint %s: header %q is not a %q journal",
			path, header, journalMagic)
	}
	rest, ok = strings.CutPrefix(rest, "image=")
	if !ok {
		return fmt.Errorf("search: checkpoint %s: malformed header %q", path, header)
	}
	img, opts, ok := strings.Cut(rest, " opts=")
	if !ok {
		return fmt.Errorf("search: checkpoint %s: malformed header %q", path, header)
	}
	wantImg := fp.Image
	if wantImg == "" {
		wantImg = "-"
	}
	if img != wantImg {
		return fmt.Errorf("search: checkpoint %s: image fingerprint diverged: journal was written for image %s, this search analyzes image %s (the program under search changed)",
			path, img, wantImg)
	}
	if opts != fp.Options {
		return fmt.Errorf("search: checkpoint %s: option set diverged: journal was written with %q, this search runs with %q (same program, different search shape)",
			path, opts, fp.Options)
	}
	return nil
}

// Prior is the number of verdicts loaded from an existing checkpoint.
func (j *Journal) Prior() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.prior)
}

// Sync fsyncs any verdicts appended since the last sync. The search
// calls it at write-batch boundaries (whenever every launched
// evaluation has settled); callers holding a journal the search never
// reached need not bother — Close syncs too. Under SetGroupCommit a
// call landing inside the commit window returns immediately with the
// appends still buffered.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.groupCommit > 0 && j.pending > 0 && time.Since(j.lastSync) < j.groupCommit {
		return nil
	}
	return j.syncLocked()
}

// SetGroupCommit rate-limits Sync to one fsync per window d (zero
// restores sync-every-call). During a search's sequential descent every
// settled verdict is a write-batch boundary, so an eager journal
// serializes an fsync into every unit; the journal is a cache of
// deterministic verdicts, so a crash inside the window only re-runs the
// last window's units on resume. Daemons trade that bounded
// recomputation for not stalling the settle loop. Close still always
// syncs.
func (j *Journal) SetGroupCommit(d time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.groupCommit = d
}

func (j *Journal) syncLocked() error {
	if j.f == nil || j.pending == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	j.lastSync = time.Now()
	return nil
}

// Close syncs and releases the journal file. The search never closes
// the journal it was handed; the submitting caller does.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.syncLocked()
	err := j.f.Close()
	j.f = nil
	if err == nil {
		err = serr
	}
	return err
}

// lookup replays a verdict journaled by a prior process (loaded at
// ResumeJournal). Verdicts recorded in the current run are deliberately
// not consulted: in-run duplicates are the memo table's job, so Resumed
// counts exactly the work inherited from the interrupted search.
func (j *Journal) lookup(key string) (jv journalVerdict, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jv, ok = j.prior[key]
	return jv, ok
}

// record appends one settled verdict (one atomic O_APPEND write; the
// fsync waits for the batch boundary). Fork-point verdicts append their
// provenance ("forked=<prefix steps saved>") so a resumed search
// reports the inherited work faithfully; readers that predate the field
// treat such lines as torn and stop there.
func (j *Journal) record(key string, s settled) error {
	verdict := "fail"
	if s.pass {
		verdict = "pass"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if s.forked {
		_, err = fmt.Fprintf(j.f, "%s %s forked=%d\n", hex.EncodeToString([]byte(key)), verdict, s.prefixSaved)
	} else {
		_, err = fmt.Fprintf(j.f, "%s %s\n", hex.EncodeToString([]byte(key)), verdict)
	}
	if err == nil {
		j.pending++
	}
	return err
}

// recordProved appends a verdict settled by the static error-bound
// prover ("pass proved"), so a resumed search replays the proof instead
// of re-deriving it. Readers that predate the token treat such lines as
// torn and stop there, as with fork provenance.
func (j *Journal) recordProved(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := fmt.Fprintf(j.f, "%s pass proved\n", hex.EncodeToString([]byte(key)))
	if err == nil {
		j.pending++
	}
	return err
}
