package search

import (
	"context"
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"fpmix/internal/config"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// EngineMode selects the evaluation backend of a search.
type EngineMode uint8

// Engine modes. The zero value enables the cached engine, so searches are
// incremental by default.
const (
	// EngineOn evaluates configurations with the cached evaluation
	// engine: snippets are compiled once per candidate instruction and
	// spliced per configuration, assembled modules are linked (branch
	// targets and cycle costs pre-resolved), machines are pooled and
	// reset instead of reallocated, and duplicate address sets are
	// memoized.
	EngineOn EngineMode = iota
	// EngineOff evaluates every configuration from scratch through the
	// seed pipeline (replace.InstrumentMap + vm.New). It exists as the
	// differential-testing fallback and as the baseline the engine is
	// benchmarked against.
	EngineOff
	// EngineFork is the cached engine plus fork-point evaluation: one
	// donor run of the base configuration is snapshotted at every
	// candidate site's first execution, each sibling configuration is
	// assembled incrementally over a stable slotted layout and evaluated
	// from its fork-point snapshot, and deterministic failing verdicts
	// skip the confirmation re-run (replay would be exact). Verdicts and
	// the final configuration are byte-identical to EngineOn's; see
	// forkengine.go.
	EngineFork
)

// evalRequest is one evaluation of a configuration.
type evalRequest struct {
	// eff is the full effective-precision map to instrument with.
	eff map[uint64]config.Precision
	// ctx, when non-nil, bounds the run: cancellation stops the machine
	// with a vm.FaultCancelled reported in the outcome.
	ctx context.Context
	// trapAfter, when >0, arms an injected vm trap at that executed-step
	// count (fault injection drives this; runs shorter than the site
	// complete clean).
	trapAfter uint64
	// attempt is the settler's attempt ordinal (0 for the first try).
	// The fork engine evaluates retries — attempts after an injected
	// fault — from scratch, never from a snapshot.
	attempt int
}

// outcome is an evaluation's verdict. A faulted run (NaN-driven
// divergence, runaway loop, cancellation, injected trap) is a failing
// verdict with the fault attached, not a search error.
type outcome struct {
	pass  bool
	fault *vm.Fault
	// forked marks a verdict reached from a fork-point snapshot (or by
	// reusing the donor verdict outright); prefixSaved is the number of
	// shared-prefix instructions the fork skipped re-executing.
	forked      bool
	prefixSaved uint64
}

// evaluator runs one configuration and reports whether it passes the
// target's verification routine. Implementations must be safe for
// concurrent use by the worker pool.
type evaluator interface {
	evaluate(req evalRequest) (outcome, error)
}

// finish maps a completed machine run to an outcome: faults become
// failing verdicts carrying the fault, clean runs are verified.
func finish(t Target, m *vm.Machine, err error) (outcome, error) {
	if err != nil {
		var f *vm.Fault
		if errors.As(err, &f) {
			return outcome{fault: f}, nil
		}
		return outcome{}, err
	}
	return outcome{pass: t.Verify(m.Out)}, nil
}

// runMachine runs m under the request's cancellation bound, if any.
func runMachine(m *vm.Machine, req evalRequest) error {
	if req.ctx != nil {
		return m.RunContext(req.ctx)
	}
	return m.Run()
}

// newEvaluator builds the backend selected by mode. noCompile forces the
// cached engine's machines onto the per-step interpreter tier (the legacy
// backend never compiles, so the flag is meaningful only with EngineOn).
func newEvaluator(t Target, mode EngineMode, noCompile bool) (evaluator, error) {
	switch mode {
	case EngineOff:
		return legacyEvaluator{t: t}, nil
	case EngineFork:
		return newForkEngine(t, noCompile)
	default:
		return newEngine(t, noCompile)
	}
}

// legacyEvaluator is the unmodified seed path: full snippet regeneration,
// layout and a fresh machine per evaluation.
type legacyEvaluator struct{ t Target }

func (e legacyEvaluator) evaluate(req evalRequest) (outcome, error) {
	inst, err := replace.InstrumentMap(e.t.Module, req.eff, e.t.InstOpts)
	if err != nil {
		return outcome{}, err
	}
	m, err := vm.New(inst)
	if err != nil {
		return outcome{}, err
	}
	m.MaxSteps = e.t.MaxSteps
	if req.trapAfter > 0 {
		m.InjectTrapAfter(req.trapAfter)
	}
	return finish(e.t, m, runMachine(m, req))
}

// engine is the cached evaluation backend. It holds the per-instruction
// compiled snippet table (built once at search start) and a pool of
// reusable machines, one per active worker.
type engine struct {
	t     Target
	snips *replace.CompiledSnippets
	pool  sync.Pool
	// noCompile pins pooled machines to the per-step interpreter tier
	// (Options.NoCompile, fpsearch -nocompile).
	noCompile bool
}

func newEngine(t Target, noCompile bool) (*engine, error) {
	snips, err := replace.Precompile(t.Module, t.InstOpts)
	if err != nil {
		return nil, err
	}
	e := &engine{t: t, snips: snips, noCompile: noCompile}
	e.pool.New = func() any { return &vm.Machine{} }
	return e, nil
}

func (e *engine) evaluate(req evalRequest) (outcome, error) {
	inst, err := e.snips.Instrument(req.eff)
	if err != nil {
		return outcome{}, err
	}
	lp, err := vm.Link(inst)
	if err != nil {
		return outcome{}, err
	}
	m := e.pool.Get().(*vm.Machine)
	defer e.pool.Put(m)
	m.ResetTo(lp)
	m.MaxSteps = e.t.MaxSteps
	m.NoCompile = e.noCompile
	if req.trapAfter > 0 {
		// After ResetTo: the reset disarms any previously armed trap.
		m.InjectTrapAfter(req.trapAfter)
	}
	return finish(e.t, m, runMachine(m, req))
}

// effFor expands a piece's address set into the full effective-precision
// map an evaluator consumes.
func effFor(addrs []uint64, ignored map[uint64]bool) map[uint64]config.Precision {
	eff := make(map[uint64]config.Precision, len(addrs)+len(ignored))
	for _, a := range addrs {
		eff[a] = config.Single
	}
	for a := range ignored {
		eff[a] = config.Ignore
	}
	return eff
}

// addrKey builds the memoization key for an address set: the byte image
// of the sorted addresses. Piece address sets come out of the
// configuration tree in ascending order, so the sort is normally a no-op
// verification pass.
func addrKey(addrs []uint64) string {
	sorted := addrs
	if !sort.SliceIsSorted(addrs, func(i, j int) bool { return addrs[i] < addrs[j] }) {
		sorted = append([]uint64(nil), addrs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	b := make([]byte, 8*len(sorted))
	for i, a := range sorted {
		binary.LittleEndian.PutUint64(b[i*8:], a)
	}
	return string(b)
}
