package search

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestJournalConcurrentWriters checks the journal under concurrent
// recorders and readers (run with -race): every line written by any
// goroutine must survive intact — O_APPEND makes each line one atomic
// append — and a resume must load all of them.
func TestJournalConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.ckpt")
	fp := Fingerprint{Image: "cafe", Options: "conc gran=insn"}
	j, err := NewJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%02d-%03d", w, i)
				var err error
				switch i % 3 {
				case 0:
					err = j.record(key, settled{pass: true})
				case 1:
					err = j.record(key, settled{pass: false, forked: true, prefixSaved: uint64(i)})
				default:
					err = j.recordProved(key)
				}
				if err != nil {
					t.Errorf("record %s: %v", key, err)
				}
				if i%16 == 0 {
					if err := j.Sync(); err != nil {
						t.Errorf("sync: %v", err)
					}
				}
			}
		}(w)
	}
	// Concurrent readers: lookup and Prior must be safe while writers run.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.lookup(fmt.Sprintf("w%02d-%03d", i%writers, i%perWriter))
				j.Prior()
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := ResumeJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.Prior(), writers*perWriter; got != want {
		t.Errorf("resume loaded %d verdicts, want %d", got, want)
	}
	// Spot-check each record class survived with its provenance.
	if jv, ok := re.lookup("w00-000"); !ok || !jv.pass || jv.forked || jv.proved {
		t.Errorf("plain pass verdict corrupted: %+v ok=%v", jv, ok)
	}
	if jv, ok := re.lookup("w00-001"); !ok || jv.pass || !jv.forked || jv.prefixSaved != 1 {
		t.Errorf("forked fail verdict corrupted: %+v ok=%v", jv, ok)
	}
	if jv, ok := re.lookup("w00-002"); !ok || !jv.pass || !jv.proved {
		t.Errorf("proved verdict corrupted: %+v ok=%v", jv, ok)
	}
}

// TestJournalTornLineConcurrent writes concurrently, tears the final
// line as a crashing process would, and checks resume truncates exactly
// the torn tail: every complete line replays, the torn one is gone, and
// appending after resume keeps working.
func TestJournalTornLineConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	fp := Fingerprint{Image: "beef", Options: "torn"}
	j, err := NewJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 4, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := j.record(fmt.Sprintf("t%02d-%03d", w, i), settled{pass: i%2 == 0}); err != nil {
					t.Errorf("record: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a partial line with no newline, as a crash mid-write
	// leaves behind.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef pa"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := ResumeJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Prior(), writers*perWriter; got != want {
		t.Errorf("resume after tear loaded %d verdicts, want %d", got, want)
	}
	if err := re.record("post-resume", settled{pass: true}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "deadbeef") {
		t.Error("torn line survived the resume truncation")
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("journal does not end on a line boundary after post-resume append")
	}
	// The post-resume append must itself be a valid, replayable line.
	re2, err := ResumeJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got, want := re2.Prior(), writers*perWriter+1; got != want {
		t.Errorf("second resume loaded %d verdicts, want %d", got, want)
	}
}

// TestJournalFingerprintFieldDiagnosis checks a resume mismatch names
// the diverging field: the image digest when the program changed, the
// option set when the search shape did.
func TestJournalFingerprintFieldDiagnosis(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ckpt")
	fp := Fingerprint{Image: "aaaa", Options: "ep.W gran=insn"}
	j, err := NewJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record("k", settled{pass: true}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, err = ResumeJournal(path, Fingerprint{Image: "bbbb", Options: "ep.W gran=insn"})
	if err == nil || !strings.Contains(err.Error(), "image fingerprint diverged") {
		t.Errorf("image mismatch not diagnosed: %v", err)
	}
	_, err = ResumeJournal(path, Fingerprint{Image: "aaaa", Options: "ep.W gran=block"})
	if err == nil || !strings.Contains(err.Error(), "option set diverged") {
		t.Errorf("option-set mismatch not diagnosed: %v", err)
	}
	if re, err := ResumeJournal(path, fp); err != nil {
		t.Errorf("matching fingerprint refused: %v", err)
	} else {
		re.Close()
	}

	// An empty image field is recorded as "-" and must round-trip.
	path2 := filepath.Join(t.TempDir(), "noimg.ckpt")
	j2, err := NewJournal(path2, Fingerprint{Options: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if re, err := ResumeJournal(path2, Fingerprint{Options: "bare"}); err != nil {
		t.Errorf("empty-image fingerprint does not round-trip: %v", err)
	} else {
		re.Close()
	}
}
