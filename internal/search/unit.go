package search

import (
	"context"
	"time"

	"fpmix/internal/config"
	"fpmix/internal/vm"
)

// The evaluation-unit seam: search.Run's trajectory (queue, expansion,
// memo, checkpoint, prover, final composition) is deterministic given
// the per-piece verdicts, and each verdict is a deterministic function
// of the piece's address set alone. A unit is therefore the natural
// sharding granularity — any executor that returns faithful verdicts
// composes a final configuration byte-identical to an in-process run.
// The fleet scheduler (internal/fleet) plugs in here: Options.Units
// routes every evaluation unit to it instead of the in-process settler,
// and UnitRunner is the execution side a worker wraps.

// EvalUnit is one evaluation unit: an independently evaluable
// configuration of the search (a piece, or the final union run).
type EvalUnit struct {
	// Key is the unit's canonical identity — the byte image of its
	// sorted address set (addrKey), or the literal "final union" for the
	// final composition run. It keys memoization, checkpoint journals,
	// the cross-job verdict cache and chaos decisions, so an external
	// executor must pass it through unchanged.
	Key string
	// Label and Kind describe the piece for Eval records.
	Label string
	Kind  config.Kind
	// Addrs is the set of candidate addresses the unit lowers to single
	// precision (the target's ignored set rides along implicitly:
	// UnitRunner re-derives it from the same Target).
	Addrs []uint64
	// Final marks the final-union verification run.
	Final bool
	// ForkSite is the unit's first single site (its lowest candidate
	// address). Under fork-point evaluation every unit resumes from the
	// donor snapshot taken at that site, so schedulers can use it as an
	// affinity key: units sharing a ForkSite restore from the same
	// snapshot, and routing them to the worker that already holds it
	// amortizes the donor run remotely the way it does in-process. Zero
	// when the unit lowers nothing.
	ForkSite uint64
	// Weight is a relative cost hint — the number of sites the unit
	// lowers. The final-union run carries every surviving single and is
	// usually the heaviest unit of its search, so schedulers avoid
	// packing it into a batch behind lighter units.
	Weight int
}

// newEvalUnit builds a unit for an address set, deriving the ForkSite
// and Weight scheduling hints from the set itself.
func newEvalUnit(key, label string, kind config.Kind, addrs []uint64, final bool) EvalUnit {
	u := EvalUnit{Key: key, Label: label, Kind: kind, Addrs: addrs, Final: final, Weight: len(addrs)}
	for _, a := range addrs {
		if u.ForkSite == 0 || a < u.ForkSite {
			u.ForkSite = a
		}
	}
	return u
}

// Verdict is the settled outcome of an evaluation unit — the exported
// image of the settler's verdict, carrying everything Eval records and
// robustness counters need.
type Verdict struct {
	Pass    bool
	Failure Failure
	Fault   *vm.Fault
	Stack   string

	Attempts int
	Retried  int
	Injected int
	Nondet   bool

	Forked      bool
	PrefixSaved uint64

	Wall time.Duration

	// Interrupted reports the unit was cancelled before a verdict; the
	// piece stays unsettled and must not be recorded.
	Interrupted bool
}

// UnitEvaluator evaluates units somewhere — in process, or sharded
// across a worker fleet. Implementations must be safe for concurrent
// use: the search keeps Options.Workers units in flight.
type UnitEvaluator interface {
	EvaluateUnit(u EvalUnit) (Verdict, error)
}

// VerdictCache is a shared cross-search verdict cache, keyed by the
// unit key within a scope the caller derives from the image fingerprint
// (internal/jobs ties the scope to module image + base configuration +
// verifier + step budget, so a cached verdict is only ever replayed
// into a search it is valid for). The search consults it after its own
// memo table and checkpoint journal and stores every evaluated or
// proved verdict back.
type VerdictCache interface {
	Lookup(key string) (CachedVerdict, bool)
	Store(key string, v CachedVerdict)
}

// CachedVerdict is one cache entry: the verdict, and whether it was
// settled by the static error-bound prover (replayed as ProvProved so
// provenance annotations survive the cache).
type CachedVerdict struct {
	Pass   bool
	Proved bool
}

// UnitRunner executes evaluation units locally: the engine + settler
// stack search.Run itself uses, exposed so fleet workers evaluate a
// job's units exactly as the serial search would. Safe for concurrent
// use.
type UnitRunner struct {
	st      *settler
	ignored map[uint64]bool
}

// NewUnitRunner builds a unit runner for the target with the same
// evaluation options (engine mode, timeout, retry budget, chaos
// injector, cancellation context) a search.Run with those Options would
// use, so unit verdicts match the serial search's exactly.
func NewUnitRunner(t Target, opts Options) (*UnitRunner, error) {
	_, ignored, err := baseIgnored(t)
	if err != nil {
		return nil, err
	}
	if opts.Chaos != nil && opts.Retries == 0 {
		opts.Retries = 3
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ev, err := newEvaluator(t, opts.Engine, opts.NoCompile)
	if err != nil {
		return nil, err
	}
	st := &settler{
		ev: ev, ignored: ignored, ctx: ctx,
		timeout: opts.Timeout, retries: opts.Retries,
		backoff: opts.Backoff, chaos: opts.Chaos,
		noConfirm: opts.Engine == EngineFork && opts.Chaos == nil,
	}
	return &UnitRunner{st: st, ignored: ignored}, nil
}

// Evaluate runs one unit to a settled verdict. An error is
// infrastructural (instrumentation or linking broke) and aborts the
// search the unit belongs to.
func (r *UnitRunner) Evaluate(u EvalUnit) (Verdict, error) {
	s := r.st.settle(effFor(u.Addrs, r.ignored), u.Key)
	if s.err != nil {
		return Verdict{}, s.err
	}
	return verdictOf(s), nil
}

// verdictOf exports a settled verdict.
func verdictOf(s settled) Verdict {
	return Verdict{
		Pass: s.pass, Failure: s.failure, Fault: s.fault, Stack: s.stack,
		Attempts: s.attempts, Retried: s.retried, Injected: s.injected,
		Nondet: s.nondet, Forked: s.forked, PrefixSaved: s.prefixSaved,
		Wall: s.wall, Interrupted: s.interrupted,
	}
}

// settledOf imports an external verdict into the settler's
// representation, so the search accounts it exactly like a local one.
func settledOf(v Verdict) settled {
	return settled{
		pass: v.Pass, failure: v.Failure, fault: v.Fault, stack: v.Stack,
		attempts: v.Attempts, retried: v.Retried, injected: v.Injected,
		nondet: v.Nondet, forked: v.Forked, prefixSaved: v.PrefixSaved,
		wall: v.Wall, interrupted: v.Interrupted,
	}
}
