package search

import (
	"fmt"
	"sync"
	"testing"
)

// recordingUnits forwards every unit to a shared UnitRunner (the exact
// wiring a fleet worker uses) and records the (unit, verdict) pairs.
type recordingUnits struct {
	r  *UnitRunner
	mu sync.Mutex

	units    []EvalUnit
	verdicts []Verdict
}

func (e *recordingUnits) EvaluateUnit(u EvalUnit) (Verdict, error) {
	v, err := e.r.Evaluate(u)
	if err != nil {
		return v, err
	}
	e.mu.Lock()
	e.units = append(e.units, u)
	e.verdicts = append(e.verdicts, v)
	e.mu.Unlock()
	return v, nil
}

// TestUnitRunnerParallelEvaluate pins the concurrency contract fleet
// workers with -parallel depend on: one shared UnitRunner under
// fork-point evaluation must settle units from many goroutines at once
// — donor runs, snapshot restores and the final-union composition
// included — with verdicts identical to what the serial search saw.
// Run under -race this covers the fork/snapshot paths' locking.
func TestUnitRunnerParallelEvaluate(t *testing.T) {
	m := mixedProgram(t)
	tgt := Target{Module: m, Verify: refVerify(t, m, 1e-10)}

	// Record every unit a real (binary-split, prioritized) search
	// evaluates, with its verdict, through a shared runner — already a
	// concurrent workload at Workers: 4.
	runner, err := NewUnitRunner(tgt, Options{Engine: EngineFork})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingUnits{r: runner}
	if _, err := Run(tgt, Options{
		Engine: EngineFork, BinarySplit: true, Prioritize: true,
		Workers: 4, Units: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.units) < 3 {
		t.Fatalf("only %d units recorded; need a few to exercise concurrency", len(rec.units))
	}
	hasFinal := false
	for _, u := range rec.units {
		if u.Final {
			hasFinal = true
		}
	}
	if !hasFinal {
		t.Fatal("no final-union unit recorded — snapshot-restore coverage lost")
	}

	// Re-evaluate every recorded unit from many goroutines over one
	// fresh shared runner, each lane in a different order, so donor runs
	// and snapshot restores collide. Every verdict must match the
	// search's.
	fresh, err := NewUnitRunner(tgt, Options{Engine: EngineFork})
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 8
	errs := make(chan error, lanes)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			n := len(rec.units)
			for i := 0; i < n; i++ {
				idx := (i*(l+1) + l) % n // lane-specific evaluation order
				v, err := fresh.Evaluate(rec.units[idx])
				if err != nil {
					errs <- fmt.Errorf("lane %d unit %q: %v", l, rec.units[idx].Label, err)
					return
				}
				if v.Pass != rec.verdicts[idx].Pass {
					errs <- fmt.Errorf("lane %d unit %q: pass=%v, search saw %v",
						l, rec.units[idx].Label, v.Pass, rec.verdicts[idx].Pass)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
