package isa

import (
	"fmt"
	"strings"
)

// Disasm renders in in AT&T-style syntax (source before destination), the
// style used in the paper's configuration files, e.g.
// "addsd %xmm1, %xmm0".
func Disasm(in Instr) string {
	ops := in.operands()
	switch len(ops) {
	case 0:
		return in.Op.String()
	case 1:
		return fmt.Sprintf("%s %s", in.Op, formatOperand(in.Op, ops[0]))
	default:
		// AT&T order: src, dst.
		return fmt.Sprintf("%s %s, %s", in.Op,
			formatOperand(in.Op, ops[1]), formatOperand(in.Op, ops[0]))
	}
}

func formatOperand(op Op, o Operand) string {
	switch o.Kind {
	case KindGPR:
		return "%" + GPRName(o.Reg)
	case KindXMM:
		return fmt.Sprintf("%%xmm%d", o.Reg)
	case KindImm:
		if op.IsBranch() {
			return fmt.Sprintf("%#x", uint64(o.Imm))
		}
		return fmt.Sprintf("$%#x", uint64(o.Imm))
	case KindMem:
		m := o.Mem
		var b strings.Builder
		if m.Disp != 0 {
			fmt.Fprintf(&b, "%#x", m.Disp)
		}
		b.WriteByte('(')
		b.WriteString("%" + GPRName(m.Base))
		if m.HasIndex {
			fmt.Fprintf(&b, ",%%%s,%d", GPRName(m.Index), m.Scale)
		}
		b.WriteByte(')')
		return b.String()
	default:
		return "?"
	}
}

// DisasmAddr renders in with its address prefix, matching the
// configuration-file style: 0x6f45ce "addsd %xmm1, %xmm0".
func DisasmAddr(in Instr) string {
	return fmt.Sprintf("%#x %q", in.Addr, Disasm(in))
}
