package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding of an instruction:
//
//	[0:2]  opcode, little-endian uint16
//	[2]    operand count (0..2)
//	then each operand:
//	  kind byte (OperandKind)
//	  KindGPR / KindXMM: 1 register byte
//	  KindImm:           8 bytes little-endian
//	  KindMem:           base byte, flags byte (bit0 = has index),
//	                     index byte, scale byte, 4 bytes disp (int32 LE)
//
// The encoding is variable length, like real machine code, so rewriting a
// program changes instruction addresses and branch targets must be fixed
// up — exactly the problem the paper's binary rewriter deals with.

// Encoding errors.
var (
	ErrTruncated      = errors.New("isa: truncated instruction")
	ErrBadOpcode      = errors.New("isa: invalid opcode")
	ErrBadOperand     = errors.New("isa: invalid operand encoding")
	ErrOperandCount   = errors.New("isa: operand count mismatch")
	errBadOperandKind = errors.New("isa: unknown operand kind")
)

// EncodedSize returns the number of bytes in's encoding occupies.
func EncodedSize(in Instr) int {
	n := 3
	for _, o := range in.operands() {
		n += operandSize(o)
	}
	return n
}

func (in Instr) operands() []Operand {
	switch in.Op.OperandCount() {
	case 0:
		return nil
	case 1:
		return []Operand{in.A}
	default:
		return []Operand{in.A, in.B}
	}
}

func operandSize(o Operand) int {
	switch o.Kind {
	case KindGPR, KindXMM:
		return 2
	case KindImm:
		return 9
	case KindMem:
		return 9
	default:
		return 1
	}
}

// Encode appends the encoding of in to dst and returns the extended slice.
// It returns an error if the instruction is malformed.
func Encode(dst []byte, in Instr) ([]byte, error) {
	if !in.Op.Valid() {
		return dst, fmt.Errorf("%w: %d", ErrBadOpcode, in.Op)
	}
	ops := in.operands()
	for i, o := range ops {
		if o.Kind == KindNone {
			return dst, fmt.Errorf("%w: %s operand %d missing", ErrOperandCount, in.Op, i)
		}
	}
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], uint16(in.Op))
	dst = append(dst, buf[0], buf[1], byte(len(ops)))
	for _, o := range ops {
		var err error
		dst, err = encodeOperand(dst, o)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func encodeOperand(dst []byte, o Operand) ([]byte, error) {
	dst = append(dst, byte(o.Kind))
	switch o.Kind {
	case KindGPR, KindXMM:
		if o.Reg >= NumGPR {
			return dst, fmt.Errorf("%w: register %d", ErrBadOperand, o.Reg)
		}
		dst = append(dst, o.Reg)
	case KindImm:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(o.Imm))
		dst = append(dst, b[:]...)
	case KindMem:
		m := o.Mem
		if m.Base >= NumGPR || (m.HasIndex && m.Index >= NumGPR) {
			return dst, fmt.Errorf("%w: mem register out of range", ErrBadOperand)
		}
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return dst, fmt.Errorf("%w: mem scale %d", ErrBadOperand, m.Scale)
		}
		var flags byte
		if m.HasIndex {
			flags |= 1
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(m.Disp))
		dst = append(dst, m.Base, flags, m.Index, m.Scale)
		dst = append(dst, b[:]...)
	default:
		return dst, errBadOperandKind
	}
	return dst, nil
}

// Decode decodes one instruction from buf, assigning it address addr.
// It returns the instruction and the number of bytes consumed.
func Decode(buf []byte, addr uint64) (Instr, int, error) {
	if len(buf) < 3 {
		return Instr{}, 0, ErrTruncated
	}
	op := Op(binary.LittleEndian.Uint16(buf))
	if !op.Valid() {
		return Instr{}, 0, fmt.Errorf("%w: %d at %#x", ErrBadOpcode, op, addr)
	}
	n := int(buf[2])
	if n != op.OperandCount() {
		return Instr{}, 0, fmt.Errorf("%w: %s has %d operands, encoded %d at %#x",
			ErrOperandCount, op, op.OperandCount(), n, addr)
	}
	in := Instr{Addr: addr, Op: op}
	pos := 3
	for i := 0; i < n; i++ {
		o, sz, err := decodeOperand(buf[pos:])
		if err != nil {
			return Instr{}, 0, fmt.Errorf("%s at %#x: %w", op, addr, err)
		}
		pos += sz
		if i == 0 {
			in.A = o
		} else {
			in.B = o
		}
	}
	return in, pos, nil
}

func decodeOperand(buf []byte) (Operand, int, error) {
	if len(buf) < 1 {
		return Operand{}, 0, ErrTruncated
	}
	kind := OperandKind(buf[0])
	switch kind {
	case KindGPR, KindXMM:
		if len(buf) < 2 {
			return Operand{}, 0, ErrTruncated
		}
		r := buf[1]
		if r >= NumGPR {
			return Operand{}, 0, fmt.Errorf("%w: register %d", ErrBadOperand, r)
		}
		return Operand{Kind: kind, Reg: r}, 2, nil
	case KindImm:
		if len(buf) < 9 {
			return Operand{}, 0, ErrTruncated
		}
		v := int64(binary.LittleEndian.Uint64(buf[1:9]))
		return Operand{Kind: KindImm, Imm: v}, 9, nil
	case KindMem:
		if len(buf) < 9 {
			return Operand{}, 0, ErrTruncated
		}
		m := MemRef{
			Base:     buf[1],
			HasIndex: buf[2]&1 != 0,
			Index:    buf[3],
			Scale:    buf[4],
			Disp:     int32(binary.LittleEndian.Uint32(buf[5:9])),
		}
		if m.Base >= NumGPR || (m.HasIndex && m.Index >= NumGPR) {
			return Operand{}, 0, fmt.Errorf("%w: mem register out of range", ErrBadOperand)
		}
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return Operand{}, 0, fmt.Errorf("%w: mem scale %d", ErrBadOperand, m.Scale)
		}
		return Operand{Kind: KindMem, Mem: m}, 9, nil
	default:
		return Operand{}, 0, fmt.Errorf("%w: kind %d", errBadOperandKind, kind)
	}
}

// DecodeAll decodes a full code segment starting at base, returning the
// instruction sequence. Decoding stops at the end of buf; any trailing
// partial instruction is an error.
func DecodeAll(buf []byte, base uint64) ([]Instr, error) {
	var out []Instr
	addr := base
	for off := 0; off < len(buf); {
		in, n, err := Decode(buf[off:], addr)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		off += n
		addr += uint64(n)
	}
	return out, nil
}

// EncodeAll encodes instrs contiguously, assigning addresses starting at
// base and patching the Addr field of each instruction in place.
func EncodeAll(instrs []Instr, base uint64) ([]byte, error) {
	var buf []byte
	addr := base
	for i := range instrs {
		instrs[i].Addr = addr
		var err error
		buf, err = Encode(buf, instrs[i])
		if err != nil {
			return nil, fmt.Errorf("instruction %d (%s): %w", i, instrs[i].Op, err)
		}
		addr = base + uint64(len(buf))
	}
	return buf, nil
}
