package isa

import (
	"strings"
	"testing"
)

func TestCandidatesHaveSingleEquivalents(t *testing.T) {
	for _, op := range Candidates() {
		s, ok := SingleEquivalent(op)
		if !ok {
			t.Errorf("%s: candidate without single equivalent", op)
			continue
		}
		if s == op {
			t.Errorf("%s: single equivalent is itself", op)
		}
		if IsCandidate(s) {
			t.Errorf("%s -> %s: single equivalent must not itself be a candidate", op, s)
		}
	}
}

func TestSingleEquivalentNaming(t *testing.T) {
	// The naming convention mirrors x86: xxxSD -> xxxSS, xxxPD -> xxxPS.
	for _, op := range Candidates() {
		s, _ := SingleEquivalent(op)
		dn, sn := op.String(), s.String()
		switch {
		case strings.HasSuffix(dn, "sd"):
			want := strings.TrimSuffix(dn, "sd") + "ss"
			if sn != want && dn != "cvtsi2sd" && dn != "cvttsd2si" {
				t.Errorf("%s -> %s, want %s", dn, sn, want)
			}
		case strings.HasSuffix(dn, "pd"):
			if want := strings.TrimSuffix(dn, "pd") + "ps"; sn != want {
				t.Errorf("%s -> %s, want %s", dn, sn, want)
			}
		}
	}
}

func TestConversionCandidates(t *testing.T) {
	if s, ok := SingleEquivalent(CVTSI2SD); !ok || s != CVTSI2SS {
		t.Errorf("cvtsi2sd -> %v, %v", s, ok)
	}
	if s, ok := SingleEquivalent(CVTTSD2SI); !ok || s != CVTTSS2SI {
		t.Errorf("cvttsd2si -> %v, %v", s, ok)
	}
	if !IsProducer(CVTSI2SD) {
		t.Error("cvtsi2sd should be a producer")
	}
	if IsProducer(CVTTSD2SI) {
		t.Error("cvttsd2si should not be a producer")
	}
}

func TestMovesAreNotCandidates(t *testing.T) {
	for _, op := range []Op{MOVSD, MOVSS, MOVAPD, MOVQ, MOVHQ, LOAD, STORE, ANDPD, ORPD, XORPD} {
		if IsCandidate(op) {
			t.Errorf("%s must not be a candidate (pure bit movement / masking)", op)
		}
	}
}

func TestPackedClassification(t *testing.T) {
	for _, op := range []Op{ADDPD, SUBPD, MULPD, DIVPD, SQRTPD} {
		if !IsPacked(op) {
			t.Errorf("%s should be packed", op)
		}
	}
	for _, op := range []Op{ADDSD, SQRTSD, UCOMISD} {
		if IsPacked(op) {
			t.Errorf("%s should not be packed", op)
		}
	}
}

func TestDstIsSource(t *testing.T) {
	if !DstIsSource(ADDSD) || !DstIsSource(UCOMISD) {
		t.Error("two-operand ALU forms read their destination")
	}
	if DstIsSource(SQRTSD) || DstIsSource(SINSD) || DstIsSource(CVTSI2SD) {
		t.Error("sqrt/transcendental/convert forms do not read their destination")
	}
}

func TestWritesDst(t *testing.T) {
	if WritesDst(UCOMISD) {
		t.Error("ucomisd only sets flags")
	}
	if !WritesDst(ADDSD) || !WritesDst(SQRTSD) || !WritesDst(CVTTSD2SI) {
		t.Error("arithmetic forms write their destination")
	}
}

func TestBranchPredicates(t *testing.T) {
	for _, op := range []Op{JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE, CALL} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	if RET.IsBranch() {
		t.Error("ret is not an Imm-target branch")
	}
	if JMP.IsCondBranch() || CALL.IsCondBranch() {
		t.Error("jmp/call are not conditional")
	}
	if !JE.IsCondBranch() {
		t.Error("je is conditional")
	}
	for _, op := range []Op{JMP, RET, HALT, JNE} {
		if !op.EndsBlock() {
			t.Errorf("%s ends a basic block", op)
		}
	}
	if CALL.EndsBlock() {
		t.Error("call falls through and does not end a block")
	}
}

func TestDisasmATTOrder(t *testing.T) {
	got := Disasm(I(ADDSD, Xmm(0), Xmm(1)))
	if got != "addsd %xmm1, %xmm0" {
		t.Errorf("Disasm = %q, want %q", got, "addsd %xmm1, %xmm0")
	}
	got = Disasm(I(MULSD, Xmm(2), Mem(RAX, 16)))
	if got != "mulsd 0x10(%rax), %xmm2" {
		t.Errorf("Disasm = %q", got)
	}
	got = Disasm(I(JMP, Imm(0x1000)))
	if got != "jmp 0x1000" {
		t.Errorf("Disasm = %q", got)
	}
	got = Disasm(I(MOVRI, Gpr(RAX), Imm(5)))
	if got != "movri $0x5, %rax" {
		t.Errorf("Disasm = %q", got)
	}
	in := I(SUBSD, Xmm(0), Xmm(1))
	in.Addr = 0x6f45da
	if got := DisasmAddr(in); got != `0x6f45da "subsd %xmm1, %xmm0"` {
		t.Errorf("DisasmAddr = %q", got)
	}
}

func TestOpStringTotal(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op?") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}
