package isa

// This file classifies floating-point instructions for the mixed-precision
// analysis. A "candidate" is a double-precision instruction whose precision
// can be lowered — the set Pd in the paper's configuration mapping
// p -> {single, double, ignore}. Pure bit-movement instructions (MOVSD,
// MOVAPD, MOVQ, ...) are not candidates: they copy the 64-bit payload
// including any replacement flag verbatim and perform no rounding.

// fpClass describes the floating-point role of an opcode.
type fpClass struct {
	candidate bool // double-precision op whose precision is configurable
	single    Op   // single-precision equivalent (valid if candidate)
	packed    bool // operates on both 64-bit lanes
	dstIsSrc  bool // destination is also an input (e.g. ADDSD)
	writes    bool // writes the destination operand
	producer  bool // produces a fresh FP value without consuming one (CVTSI2SD)
}

var fpTable = map[Op]fpClass{
	ADDSD:   {candidate: true, single: ADDSS, dstIsSrc: true, writes: true},
	SUBSD:   {candidate: true, single: SUBSS, dstIsSrc: true, writes: true},
	MULSD:   {candidate: true, single: MULSS, dstIsSrc: true, writes: true},
	DIVSD:   {candidate: true, single: DIVSS, dstIsSrc: true, writes: true},
	MINSD:   {candidate: true, single: MINSS, dstIsSrc: true, writes: true},
	MAXSD:   {candidate: true, single: MAXSS, dstIsSrc: true, writes: true},
	SQRTSD:  {candidate: true, single: SQRTSS, writes: true},
	UCOMISD: {candidate: true, single: UCOMISS, dstIsSrc: true},
	SINSD:   {candidate: true, single: SINSS, writes: true},
	COSSD:   {candidate: true, single: COSSS, writes: true},
	EXPSD:   {candidate: true, single: EXPSS, writes: true},
	LOGSD:   {candidate: true, single: LOGSS, writes: true},

	CVTSI2SD:  {candidate: true, single: CVTSI2SS, writes: true, producer: true},
	CVTTSD2SI: {candidate: true, single: CVTTSS2SI, writes: true},

	ADDPD:  {candidate: true, single: ADDPS, packed: true, dstIsSrc: true, writes: true},
	SUBPD:  {candidate: true, single: SUBPS, packed: true, dstIsSrc: true, writes: true},
	MULPD:  {candidate: true, single: MULPS, packed: true, dstIsSrc: true, writes: true},
	DIVPD:  {candidate: true, single: DIVPS, packed: true, dstIsSrc: true, writes: true},
	SQRTPD: {candidate: true, single: SQRTPS, packed: true, writes: true},
}

// IsCandidate reports whether op is a double-precision instruction whose
// precision the framework can configure (the set Pd in the paper).
func IsCandidate(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.candidate
}

// SingleEquivalent returns the single-precision opcode corresponding to the
// double-precision candidate op. It returns (0, false) if op is not a
// candidate.
func SingleEquivalent(op Op) (Op, bool) {
	c, ok := fpTable[op]
	if !ok || !c.candidate {
		return 0, false
	}
	return c.single, true
}

// IsPacked reports whether op operates on both 64-bit lanes of its XMM
// operands.
func IsPacked(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.packed
}

// DstIsSource reports whether op's destination operand is also an input
// (two-operand ALU form such as ADDSD dst, src).
func DstIsSource(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.dstIsSrc
}

// WritesDst reports whether op writes its destination operand.
func WritesDst(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.writes
}

// IsProducer reports whether op produces a floating-point value without
// consuming one (integer-to-float conversion).
func IsProducer(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.producer
}

// ConsumesFP reports whether op reads floating-point input operands that
// may carry a replacement flag and therefore need checking in a snippet.
func ConsumesFP(op Op) bool {
	c, ok := fpTable[op]
	return ok && c.candidate && !c.producer
}

// Candidates returns every candidate opcode, for exhaustive tests.
func Candidates() []Op {
	var ops []Op
	for op := Op(0); op < opCount; op++ {
		if IsCandidate(op) {
			ops = append(ops, op)
		}
	}
	return ops
}
