// Package isa defines the synthetic SSE-like instruction set that fpmix
// programs are compiled to and that the binary-modification framework
// rewrites.
//
// The ISA is deliberately modeled on the subset of x86-64 + SSE2 that the
// paper's instrumentation framework manipulates: 16 general-purpose 64-bit
// registers, 16 XMM registers of 128 bits (two 64-bit lanes), scalar and
// packed floating-point arithmetic in both double (SD/PD) and single
// (SS/PS) precision, and the usual integer, branch, call/return and stack
// operations needed to express replacement "snippets" (Figure 6 of the
// paper). Instructions carry at most two operands in AT&T-style
// source/destination order and encode to a variable-length byte format so
// that program images can be serialized, re-parsed and rewritten like real
// binaries.
package isa

import "fmt"

// Op identifies an instruction opcode.
type Op uint16

// Opcode space. The groups are laid out contiguously so classification
// predicates can use ranges where convenient, but all classification goes
// through explicit tables to stay robust against renumbering.
const (
	// Control / miscellaneous.
	NOP Op = iota
	HALT
	SYSCALL // SYSCALL imm: host services (output, MPI, ...)

	// Integer register/immediate moves and memory.
	MOVRI // MOVRI dst, imm64
	MOVRR // MOVRR dst, src
	LOAD  // LOAD dst, mem (64-bit)
	STORE // STORE mem, src (64-bit)
	LEA   // LEA dst, mem (effective address)

	// Integer ALU (dst = dst OP src/imm).
	ADDR
	ADDI
	SUBR
	SUBI
	IMULR
	IMULI
	ANDR
	ANDI
	ORR
	ORI
	XORR
	XORI
	SHLI
	SHRI
	IDIVR // dst = int64(dst) / int64(src); division by zero faults

	// Comparison and test (set flags).
	CMPR
	CMPI
	TESTR
	TESTI

	// Branches (absolute target in Imm operand).
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JAE
	JA
	JBE
	CALL
	RET

	// Stack.
	PUSH  // PUSH src (gpr)
	POP   // POP dst (gpr)
	PUSHX // PUSHX src (xmm, 16 bytes)
	POPX  // POPX dst (xmm, 16 bytes)

	// Data movement between XMM, GPR and memory.
	MOVSD  // 64-bit move: xmm lane0 <-> xmm/mem
	MOVSS  // 32-bit move: xmm lane0 low half <-> xmm/mem
	MOVAPD // 128-bit move: xmm <-> xmm/mem
	MOVQ   // 64-bit move: xmm lane0 <-> gpr
	MOVHQ  // 64-bit move: xmm lane1 <-> gpr

	// Scalar double-precision arithmetic (lane 0).
	ADDSD
	SUBSD
	MULSD
	DIVSD
	SQRTSD
	MINSD
	MAXSD
	UCOMISD // compare, set flags
	ANDPD   // 128-bit bitwise (used for fabs masks)
	ORPD
	XORPD

	// Scalar double transcendentals (dst = f(src), lane 0).
	SINSD
	COSSD
	EXPSD
	LOGSD

	// Conversions.
	CVTSD2SS // dst lane0 low32 = float32(src lane0 f64); upper bits of dst lane0 preserved
	CVTSS2SD // dst lane0 f64 = float64(src lane0 low32 f32)
	CVTSI2SD // dst lane0 f64 = float64(int64 gpr src)
	CVTTSD2SI
	CVTSI2SS // dst lane0 low32 = float32(int64 gpr src); upper bits preserved
	CVTTSS2SI

	// Scalar single-precision arithmetic (low 32 bits of lane 0; all other
	// bits of dst preserved, as on x86).
	ADDSS
	SUBSS
	MULSS
	DIVSS
	SQRTSS
	MINSS
	MAXSS
	UCOMISS
	SINSS
	COSSS
	EXPSS
	LOGSS

	// Packed double-precision arithmetic (both 64-bit lanes).
	ADDPD
	SUBPD
	MULPD
	DIVPD
	SQRTPD

	// Packed single-precision arithmetic (four 32-bit lanes).
	ADDPS
	SUBPS
	MULPS
	DIVPS
	SQRTPS

	opCount // number of opcodes; keep last
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// General-purpose register numbers (x86-64 naming).
const (
	RAX uint8 = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// NumGPR and NumXMM are the register file sizes.
const (
	NumGPR = 16
	NumXMM = 16
)

// ReplacedFlag is the bit pattern stored in the high 32 bits of a 64-bit
// floating-point location to mark an in-place replaced (downcast) value.
// 0x7FF4 encodes a NaN so unhandled replaced values never silently
// propagate; 0xDEAD is easy to spot in a hex dump (paper §2.3).
const ReplacedFlag uint32 = 0x7FF4DEAD

// Syscall numbers for the SYSCALL instruction's immediate operand.
const (
	SysOutF64       int64 = iota + 1 // append xmm0 lane0 (float64 bits) to output
	SysOutF32                        // append xmm0 lane0 low 32 bits (float32) to output
	SysOutI64                        // append RAX to output
	SysMPIRank                       // RAX = rank
	SysMPISize                       // RAX = communicator size
	SysMPIBarrier                    // barrier
	SysMPISendF64                    // send RSI float64s at [RDI] to rank RDX
	SysMPIRecvF64                    // recv RSI float64s into [RDI] from rank RDX
	SysMPIAllreduce                  // sum-allreduce RSI float64s in place at [RDI]
	SysMPIBcastF64                   // broadcast RSI float64s at [RDI] from rank RDX
)

var gprNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// GPRName returns the conventional name of general-purpose register r.
func GPRName(r uint8) string {
	if int(r) < len(gprNames) {
		return gprNames[r]
	}
	return fmt.Sprintf("r?%d", r)
}

// OperandKind distinguishes the forms an operand can take.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindGPR              // general-purpose register
	KindXMM              // 128-bit floating-point register
	KindImm              // 64-bit immediate
	KindMem              // memory reference
)

// MemRef is a memory operand: base + index*scale + disp.
type MemRef struct {
	Base     uint8 // GPR number
	Index    uint8 // GPR number, valid if HasIndex
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int32
	HasIndex bool
}

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  uint8 // register number for KindGPR / KindXMM
	Imm  int64 // immediate for KindImm
	Mem  MemRef
}

// Gpr returns a general-purpose register operand.
func Gpr(r uint8) Operand { return Operand{Kind: KindGPR, Reg: r} }

// Xmm returns an XMM register operand.
func Xmm(r uint8) Operand { return Operand{Kind: KindXMM, Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// Mem returns a base+displacement memory operand.
func Mem(base uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Mem: MemRef{Base: base, Disp: disp, Scale: 1}}
}

// MemIdx returns a base+index*scale+displacement memory operand.
func MemIdx(base, index, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp, HasIndex: true}}
}

// Instr is a decoded instruction. A is the destination (and, for
// two-operand ALU forms, also the first source); B is the source.
type Instr struct {
	Addr uint64 // address within the code segment (0 if not yet laid out)
	Op   Op
	A    Operand
	B    Operand
}

// I constructs an instruction with up to two operands.
func I(op Op, operands ...Operand) Instr {
	in := Instr{Op: op}
	switch len(operands) {
	case 0:
	case 1:
		in.A = operands[0]
	case 2:
		in.A, in.B = operands[0], operands[1]
	default:
		panic("isa: too many operands")
	}
	return in
}

// opInfo captures per-opcode metadata.
type opInfo struct {
	name     string
	operands int // expected operand count
}

var opTable = [opCount]opInfo{
	NOP:       {"nop", 0},
	HALT:      {"halt", 0},
	SYSCALL:   {"syscall", 1},
	MOVRI:     {"movri", 2},
	MOVRR:     {"movrr", 2},
	LOAD:      {"load", 2},
	STORE:     {"store", 2},
	LEA:       {"lea", 2},
	ADDR:      {"add", 2},
	ADDI:      {"addi", 2},
	SUBR:      {"sub", 2},
	SUBI:      {"subi", 2},
	IMULR:     {"imul", 2},
	IMULI:     {"imuli", 2},
	ANDR:      {"and", 2},
	ANDI:      {"andi", 2},
	ORR:       {"or", 2},
	ORI:       {"ori", 2},
	XORR:      {"xor", 2},
	XORI:      {"xori", 2},
	SHLI:      {"shl", 2},
	SHRI:      {"shr", 2},
	IDIVR:     {"idiv", 2},
	CMPR:      {"cmp", 2},
	CMPI:      {"cmpi", 2},
	TESTR:     {"test", 2},
	TESTI:     {"testi", 2},
	JMP:       {"jmp", 1},
	JE:        {"je", 1},
	JNE:       {"jne", 1},
	JL:        {"jl", 1},
	JLE:       {"jle", 1},
	JG:        {"jg", 1},
	JGE:       {"jge", 1},
	JB:        {"jb", 1},
	JAE:       {"jae", 1},
	JA:        {"ja", 1},
	JBE:       {"jbe", 1},
	CALL:      {"call", 1},
	RET:       {"ret", 0},
	PUSH:      {"push", 1},
	POP:       {"pop", 1},
	PUSHX:     {"pushx", 1},
	POPX:      {"popx", 1},
	MOVSD:     {"movsd", 2},
	MOVSS:     {"movss", 2},
	MOVAPD:    {"movapd", 2},
	MOVQ:      {"movq", 2},
	MOVHQ:     {"movhq", 2},
	ADDSD:     {"addsd", 2},
	SUBSD:     {"subsd", 2},
	MULSD:     {"mulsd", 2},
	DIVSD:     {"divsd", 2},
	SQRTSD:    {"sqrtsd", 2},
	MINSD:     {"minsd", 2},
	MAXSD:     {"maxsd", 2},
	UCOMISD:   {"ucomisd", 2},
	ANDPD:     {"andpd", 2},
	ORPD:      {"orpd", 2},
	XORPD:     {"xorpd", 2},
	SINSD:     {"sinsd", 2},
	COSSD:     {"cossd", 2},
	EXPSD:     {"expsd", 2},
	LOGSD:     {"logsd", 2},
	CVTSD2SS:  {"cvtsd2ss", 2},
	CVTSS2SD:  {"cvtss2sd", 2},
	CVTSI2SD:  {"cvtsi2sd", 2},
	CVTTSD2SI: {"cvttsd2si", 2},
	CVTSI2SS:  {"cvtsi2ss", 2},
	CVTTSS2SI: {"cvttss2si", 2},
	ADDSS:     {"addss", 2},
	SUBSS:     {"subss", 2},
	MULSS:     {"mulss", 2},
	DIVSS:     {"divss", 2},
	SQRTSS:    {"sqrtss", 2},
	MINSS:     {"minss", 2},
	MAXSS:     {"maxss", 2},
	UCOMISS:   {"ucomiss", 2},
	SINSS:     {"sinss", 2},
	COSSS:     {"cosss", 2},
	EXPSS:     {"expss", 2},
	LOGSS:     {"logss", 2},
	ADDPD:     {"addpd", 2},
	SUBPD:     {"subpd", 2},
	MULPD:     {"mulpd", 2},
	DIVPD:     {"divpd", 2},
	SQRTPD:    {"sqrtpd", 2},
	ADDPS:     {"addps", 2},
	SUBPS:     {"subps", 2},
	MULPS:     {"mulps", 2},
	DIVPS:     {"divps", 2},
	SQRTPS:    {"sqrtps", 2},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

// String returns the mnemonic of op.
func (op Op) String() string {
	if op < opCount {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint16(op))
}

// OperandCount returns the number of operands op expects.
func (op Op) OperandCount() int {
	if op < opCount {
		return opTable[op].operands
	}
	return 0
}

// IsBranch reports whether op transfers control via its Imm target
// (conditional or unconditional jumps and calls; not RET).
func (op Op) IsBranch() bool {
	switch op {
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE, CALL:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		return true
	}
	return false
}

// EndsBlock reports whether op terminates a basic block.
func (op Op) EndsBlock() bool {
	switch op {
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE, RET, HALT:
		return true
	}
	return false
}
