package isa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		I(NOP),
		I(HALT),
		I(RET),
		I(SYSCALL, Imm(SysOutF64)),
		I(MOVRI, Gpr(RAX), Imm(-1)),
		I(MOVRR, Gpr(R15), Gpr(RSP)),
		I(LOAD, Gpr(RBX), Mem(RBP, -16)),
		I(STORE, MemIdx(RAX, RCX, 8, 1024), Gpr(RDX)),
		I(LEA, Gpr(RDI), MemIdx(RSI, RDX, 4, -8)),
		I(ADDI, Gpr(RSP), Imm(32)),
		I(CMPI, Gpr(R8), Imm(0x7FF4DEAD)),
		I(JMP, Imm(0x1234)),
		I(JE, Imm(0xfffffff)),
		I(CALL, Imm(0x4000)),
		I(PUSH, Gpr(RAX)),
		I(POPX, Xmm(14)),
		I(MOVSD, Xmm(0), Mem(RAX, 0)),
		I(MOVSD, Mem(RAX, 8), Xmm(1)),
		I(MOVSS, Xmm(3), Xmm(4)),
		I(MOVAPD, Xmm(2), Xmm(9)),
		I(MOVQ, Gpr(R14), Xmm(7)),
		I(MOVHQ, Xmm(7), Gpr(R14)),
		I(ADDSD, Xmm(0), Xmm(1)),
		I(MULSD, Xmm(2), Mem(R9, 64)),
		I(SQRTSD, Xmm(5), Xmm(5)),
		I(UCOMISD, Xmm(0), Xmm(1)),
		I(CVTSD2SS, Xmm(0), Xmm(0)),
		I(CVTSI2SD, Xmm(1), Gpr(RAX)),
		I(CVTTSD2SI, Gpr(RAX), Xmm(1)),
		I(ADDPD, Xmm(0), Xmm(1)),
		I(ADDPS, Xmm(0), Xmm(1)),
		I(SINSD, Xmm(1), Xmm(2)),
	}
	for _, want := range cases {
		buf, err := Encode(nil, want)
		if err != nil {
			t.Fatalf("Encode(%v): %v", Disasm(want), err)
		}
		if len(buf) != EncodedSize(want) {
			t.Errorf("%s: EncodedSize=%d, actual %d", Disasm(want), EncodedSize(want), len(buf))
		}
		got, n, err := Decode(buf, 0)
		if err != nil {
			t.Fatalf("Decode(%s): %v", Disasm(want), err)
		}
		if n != len(buf) {
			t.Errorf("%s: decoded %d of %d bytes", Disasm(want), n, len(buf))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// randomInstr generates a random well-formed instruction.
func randomInstr(r *rand.Rand) Instr {
	for {
		op := Op(r.Intn(NumOps))
		in := Instr{Op: op}
		kinds := []OperandKind{KindGPR, KindXMM, KindImm, KindMem}
		mk := func() Operand {
			switch kinds[r.Intn(len(kinds))] {
			case KindGPR:
				return Gpr(uint8(r.Intn(NumGPR)))
			case KindXMM:
				return Xmm(uint8(r.Intn(NumXMM)))
			case KindImm:
				return Imm(r.Int63() - r.Int63())
			default:
				scales := []uint8{1, 2, 4, 8}
				m := MemRef{
					Base:  uint8(r.Intn(NumGPR)),
					Scale: scales[r.Intn(4)],
					Disp:  int32(r.Int31() - r.Int31()/2),
				}
				if r.Intn(2) == 0 {
					m.HasIndex = true
					m.Index = uint8(r.Intn(NumGPR))
				}
				return Operand{Kind: KindMem, Mem: m}
			}
		}
		switch op.OperandCount() {
		case 1:
			in.A = mk()
		case 2:
			in.A, in.B = mk(), mk()
		}
		return in
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r.Seed(seed)
		want := randomInstr(r)
		buf, err := Encode(nil, want)
		if err != nil {
			return false
		}
		got, n, err := Decode(buf, 0)
		return err == nil && n == len(buf) && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeAllStream(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var want []Instr
	var buf []byte
	addr := uint64(0x1000)
	for i := 0; i < 500; i++ {
		in := randomInstr(r)
		in.Addr = addr
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		addr += uint64(len(b))
		want = append(want, in)
	}
	got, err := DecodeAll(buf, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DecodeAll mismatch")
	}
}

func TestEncodeAllAssignsAddresses(t *testing.T) {
	instrs := []Instr{
		I(MOVRI, Gpr(RAX), Imm(7)),
		I(ADDSD, Xmm(0), Xmm(1)),
		I(RET),
	}
	buf, err := EncodeAll(instrs, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if instrs[0].Addr != 0x2000 {
		t.Errorf("first addr = %#x", instrs[0].Addr)
	}
	want := instrs[0].Addr + uint64(EncodedSize(instrs[0]))
	if instrs[1].Addr != want {
		t.Errorf("second addr = %#x, want %#x", instrs[1].Addr, want)
	}
	dec, err := DecodeAll(buf, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, instrs) {
		t.Error("decode of EncodeAll output mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil, 0); err == nil {
		t.Error("empty buffer: want error")
	}
	// Invalid opcode.
	if _, _, err := Decode([]byte{0xff, 0xff, 0}, 0); err == nil {
		t.Error("bad opcode: want error")
	}
	// Operand count mismatch.
	buf, _ := Encode(nil, I(ADDSD, Xmm(0), Xmm(1)))
	buf[2] = 1
	if _, _, err := Decode(buf, 0); err == nil {
		t.Error("operand count mismatch: want error")
	}
	// Truncated operand payload.
	buf2, _ := Encode(nil, I(MOVRI, Gpr(RAX), Imm(1)))
	if _, _, err := Decode(buf2[:len(buf2)-3], 0); err == nil {
		t.Error("truncated: want error")
	}
	// Bad register.
	buf3, _ := Encode(nil, I(MOVRR, Gpr(RAX), Gpr(RBX)))
	buf3[len(buf3)-1] = 99
	if _, _, err := Decode(buf3, 0); err == nil {
		t.Error("bad register: want error")
	}
	// Bad scale.
	buf4, _ := Encode(nil, I(LOAD, Gpr(RAX), Mem(RBX, 0)))
	buf4[len(buf4)-5] = 3 // scale byte
	if _, _, err := Decode(buf4, 0); err == nil {
		t.Error("bad scale: want error")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(nil, Instr{Op: Op(60000)}); err == nil {
		t.Error("invalid opcode: want error")
	}
	if _, err := Encode(nil, I(ADDSD, Xmm(0))); err == nil {
		t.Error("missing operand: want error")
	}
	bad := I(MOVRR, Gpr(RAX), Gpr(RBX))
	bad.B.Reg = 200
	if _, err := Encode(nil, bad); err == nil {
		t.Error("bad register: want error")
	}
	badMem := I(LOAD, Gpr(RAX), Mem(RBX, 0))
	badMem.B.Mem.Scale = 5
	if _, err := Encode(nil, badMem); err == nil {
		t.Error("bad scale: want error")
	}
}

func TestDecodeAllRejectsTrailingGarbage(t *testing.T) {
	buf, _ := Encode(nil, I(NOP))
	buf = append(buf, 0x01)
	if _, err := DecodeAll(buf, 0); err == nil {
		t.Error("trailing garbage: want error")
	}
}

func TestEncodedBytesDiffer(t *testing.T) {
	a, _ := Encode(nil, I(ADDSD, Xmm(0), Xmm(1)))
	b, _ := Encode(nil, I(ADDSS, Xmm(0), Xmm(1)))
	if bytes.Equal(a, b) {
		t.Error("distinct opcodes encoded identically")
	}
}
