package replace

import (
	"fmt"

	"fpmix/internal/cfg"
	"fpmix/internal/isa"
)

// The snippet mini-compiler. For each replaced floating-point instruction
// it emits the template of Figure 6:
//
//	push scratch registers
//	<for each input operand>
//	    extract high word, compare against the flag
//	    skip if already in the target representation
//	    otherwise downcast (single mode) or upcast (double mode) in place
//	<run the operation at the configured precision, registers only>
//	<fix flags in any outputs the operation does not stamp itself>
//	pop scratch registers
//
// Register budget: r14/r15 are integer scratch; xmm15 is the conversion
// scratch for packed lanes; xmm14 holds promoted memory operands. All are
// saved and restored around the snippet, so snippets compose with any
// surrounding register state.

const (
	sr1   = isa.R15 // value scratch
	sr2   = isa.R14 // mask/compare scratch
	sx    = 15      // xmm conversion scratch
	sxMem = 14      // xmm memory-operand scratch
)

// Options tune snippet generation; the zero value is the paper's
// configuration.
type Options struct {
	// UncheckedDowncast drops the flag-test fast path on single-precision
	// inputs: every input is normalized to double (upcast if flagged) and
	// then unconditionally downcast. Semantically equivalent but slower —
	// the ablation quantifying the value of the flag check.
	UncheckedDowncast bool
	// NoMemPromotion refuses memory operands instead of promoting them to
	// a scratch register (debugging aid).
	NoMemPromotion bool
	// LivenessElision omits the save/restore of the snippet's scratch
	// registers (r14, r15, xmm14, xmm15) at every site, unconditionally.
	// This is the whole-program ablation form of the paper's §2.5
	// "streamline the machine code" optimization; it is only sound for
	// binaries whose ABI keeps those registers dead across FP
	// instructions. The proven per-site form is ScratchDead below.
	LivenessElision bool

	// ScratchDead elides the scratch save/restore at this one site,
	// justified by the dataflow liveness analysis having proven the
	// scratch registers dead across the instruction (the same argument
	// Dyninst makes with binary register-liveness analysis, here per
	// site instead of by ABI fiat). Set by instrumentation from
	// dataflow.Site.ScratchDead.
	ScratchDead bool

	// CleanInputs elides the flag-check prologues: the flag-reachability
	// analysis proved no input of this site can carry the replacement
	// sentinel under any configuration, so single snippets downcast
	// unconditionally and double snippets need no wrapper at all. Set by
	// instrumentation from dataflow.Site.CleanInputs.
	CleanInputs bool

	// CleanSrcInput and CleanDstInput narrow a double wrapper to one
	// operand: the per-configuration flag analysis
	// (dataflow.FlagAnalysis.CleanOperandsUnder) proved the source (B)
	// respectively destination-read-as-source (A) operand unflagged, so
	// its check — and, for a clean memory source, the scratch promotion —
	// is a guaranteed no-op and is omitted. Setting both is CleanInputs
	// for double snippets. Only DoubleSnippet consults these; they back
	// the stable layout's narrowed wrapper variants and are never sound
	// as whole-search options.
	CleanSrcInput bool
	CleanDstInput bool
}

// elideSaves reports whether scratch save/restore is omitted.
func (o Options) elideSaves() bool { return o.LivenessElision || o.ScratchDead }

// snip accumulates a snippet with local branch targets.
type snip struct {
	instrs []isa.Instr
}

func (s *snip) emit(in isa.Instr) { s.instrs = append(s.instrs, in) }

// testFlag emits the flag test on the 64-bit value in sr1 and a branch
// (JE when the flag is present if onFlag, JNE otherwise); bind later.
func (s *snip) testFlag(onFlag bool) int {
	s.emit(isa.I(isa.MOVRR, isa.Gpr(sr2), isa.Gpr(sr1)))
	s.emit(isa.I(isa.SHRI, isa.Gpr(sr2), isa.Imm(32)))
	s.emit(isa.I(isa.CMPI, isa.Gpr(sr2), isa.Imm(int64(Flag))))
	idx := len(s.instrs)
	if onFlag {
		s.emit(isa.I(isa.JE, isa.Imm(0)))
	} else {
		s.emit(isa.I(isa.JNE, isa.Imm(0)))
	}
	return idx
}

// bind points the branch at patch index to the next emitted instruction.
func (s *snip) bind(idx int) {
	s.instrs[idx].A.Imm = cfg.Label(len(s.instrs))
}

// stampFlag overwrites the high word of the 64-bit value in sr1 with the
// replacement flag (mask low, or flag).
func (s *snip) stampFlag() {
	s.emit(isa.I(isa.MOVRI, isa.Gpr(sr2), isa.Imm(0xFFFFFFFF)))
	s.emit(isa.I(isa.ANDR, isa.Gpr(sr1), isa.Gpr(sr2)))
	s.emit(isa.I(isa.MOVRI, isa.Gpr(sr2), isa.Imm(int64(flagHi))))
	s.emit(isa.I(isa.ORR, isa.Gpr(sr1), isa.Gpr(sr2)))
}

// laneToScratch / scratchToLane move between an xmm lane (0 or 1) and sr1.
func (s *snip) laneToScratch(reg uint8, lane int) {
	op := isa.MOVQ
	if lane == 1 {
		op = isa.MOVHQ
	}
	s.emit(isa.I(op, isa.Gpr(sr1), isa.Xmm(reg)))
}

func (s *snip) scratchToLane(reg uint8, lane int) {
	op := isa.MOVQ
	if lane == 1 {
		op = isa.MOVHQ
	}
	s.emit(isa.I(op, isa.Xmm(reg), isa.Gpr(sr1)))
}

// cvtLane applies op (CVTSD2SS or CVTSS2SD) to one lane of reg. Lane 0
// converts in place; lane 1 routes through the conversion scratch.
func (s *snip) cvtLane(op isa.Op, reg uint8, lane int) {
	if lane == 0 {
		s.emit(isa.I(op, isa.Xmm(reg), isa.Xmm(reg)))
		return
	}
	s.laneToScratch(reg, 1)
	s.emit(isa.I(isa.MOVQ, isa.Xmm(sx), isa.Gpr(sr1)))
	s.emit(isa.I(op, isa.Xmm(sx), isa.Xmm(sx)))
	s.emit(isa.I(isa.MOVQ, isa.Gpr(sr1), isa.Xmm(sx)))
	s.scratchToLane(reg, 1)
}

// downcastLane converts one 64-bit lane of reg to replaced form unless it
// already carries the flag.
func (s *snip) downcastLane(reg uint8, lane int, opts Options) {
	if opts.CleanInputs {
		// The value is proven to be a plain double: convert and stamp
		// with no flag test.
		s.cvtLane(isa.CVTSD2SS, reg, lane)
		s.laneToScratch(reg, lane)
		s.stampFlag()
		s.scratchToLane(reg, lane)
		return
	}
	if opts.UncheckedDowncast {
		// Slow path: normalize to double first, then always downcast.
		s.upcastLane(reg, lane)
	}
	s.laneToScratch(reg, lane)
	skip := -1
	if !opts.UncheckedDowncast {
		skip = s.testFlag(true)
	}
	s.cvtLane(isa.CVTSD2SS, reg, lane)
	s.laneToScratch(reg, lane)
	s.stampFlag()
	s.scratchToLane(reg, lane)
	if skip >= 0 {
		s.bind(skip)
	}
}

// upcastLane converts one replaced lane of reg back to a plain double when
// it carries the flag.
func (s *snip) upcastLane(reg uint8, lane int) {
	s.laneToScratch(reg, lane)
	skip := s.testFlag(false)
	s.cvtLane(isa.CVTSS2SD, reg, lane)
	s.bind(skip)
}

// stampLane re-stamps the flag on one lane of reg (packed single outputs,
// Figure 6's "fix flags in any packed outputs").
func (s *snip) stampLane(reg uint8, lane int) {
	s.laneToScratch(reg, lane)
	s.stampFlag()
	s.scratchToLane(reg, lane)
}

// checkMemOperand rejects memory operands the snippet cannot promote
// safely: RSP-relative addresses shift under the snippet's own pushes, and
// scratch-register bases would read clobbered values.
func checkMemOperand(in isa.Instr) error {
	if in.B.Kind != isa.KindMem {
		return nil
	}
	m := in.B.Mem
	bad := func(r uint8) bool { return r == isa.RSP }
	if bad(m.Base) || (m.HasIndex && bad(m.Index)) {
		return fmt.Errorf("replace: %s at %#x: RSP-relative FP operand cannot be promoted", in.Op, in.Addr)
	}
	return nil
}

// SingleSnippet builds the replacement snippet executing in at single
// precision. The returned sequence uses cfg.Label for internal branches.
func SingleSnippet(in isa.Instr, opts Options) ([]isa.Instr, error) {
	sOp, ok := isa.SingleEquivalent(in.Op)
	if !ok {
		return nil, fmt.Errorf("replace: %s is not a candidate", in.Op)
	}
	if err := checkMemOperand(in); err != nil {
		return nil, err
	}
	packed := isa.IsPacked(in.Op)
	s := &snip{}
	if !opts.elideSaves() {
		s.emit(isa.I(isa.PUSH, isa.Gpr(sr1)))
		s.emit(isa.I(isa.PUSH, isa.Gpr(sr2)))
		if packed {
			s.emit(isa.I(isa.PUSHX, isa.Xmm(sx)))
		}
	}

	op := in // working copy, rewritten to the single opcode
	op.Op = sOp
	op.Addr = 0

	// Promote a memory source operand into the scratch register so the
	// conversion runs on registers only and never writes back to (possibly
	// unwritable or shared) memory — paper §2.3.
	usedMem := false
	if in.B.Kind == isa.KindMem && !isa.IsProducer(in.Op) {
		if opts.NoMemPromotion {
			return nil, fmt.Errorf("replace: memory operand on %s with promotion disabled", in.Op)
		}
		usedMem = true
		if !opts.elideSaves() {
			s.emit(isa.I(isa.PUSHX, isa.Xmm(sxMem)))
		}
		if packed {
			s.emit(isa.I(isa.MOVAPD, isa.Xmm(sxMem), in.B))
		} else {
			s.emit(isa.I(isa.MOVSD, isa.Xmm(sxMem), in.B))
		}
		op.B = isa.Xmm(sxMem)
	}

	// Check-and-downcast every floating-point input.
	if isa.ConsumesFP(in.Op) {
		if op.B.Kind == isa.KindXMM {
			s.downcastLane(op.B.Reg, 0, opts)
			if packed {
				s.downcastLane(op.B.Reg, 1, opts)
			}
		}
		if isa.DstIsSource(in.Op) && op.A.Kind == isa.KindXMM && !(op.B.Kind == isa.KindXMM && op.B.Reg == op.A.Reg) {
			s.downcastLane(op.A.Reg, 0, opts)
			if packed {
				s.downcastLane(op.A.Reg, 1, opts)
			}
		}
	}

	// The operation itself, at single precision.
	s.emit(op)

	// Fix flags on outputs the operation does not stamp itself:
	//   - packed ops corrupt the flag words (they are data lanes to ADDPS);
	//   - non-dst-is-src scalar ops (sqrt, transcendentals, cvtsi2ss) write
	//     a fresh low word under an arbitrary high word.
	if isa.WritesDst(in.Op) && op.A.Kind == isa.KindXMM {
		if packed {
			s.stampLane(op.A.Reg, 0)
			s.stampLane(op.A.Reg, 1)
		} else if !isa.DstIsSource(in.Op) {
			s.stampLane(op.A.Reg, 0)
		}
	}

	if !opts.elideSaves() {
		if usedMem {
			s.emit(isa.I(isa.POPX, isa.Xmm(sxMem)))
		}
		if packed {
			s.emit(isa.I(isa.POPX, isa.Xmm(sx)))
		}
		s.emit(isa.I(isa.POP, isa.Gpr(sr2)))
		s.emit(isa.I(isa.POP, isa.Gpr(sr1)))
	}
	return s.instrs, nil
}

// DoubleSnippet builds the snippet executing in at double precision while
// upcasting any replaced inputs. This must wrap every FP instruction in an
// instrumented binary — even the ones kept in double precision — because
// an earlier single-precision operation may have replaced the incoming
// operands (paper §2.3). It returns (nil, nil) for instructions that need
// no wrapping (producers with no FP inputs).
func DoubleSnippet(in isa.Instr, opts Options) ([]isa.Instr, error) {
	if !isa.IsCandidate(in.Op) {
		return nil, fmt.Errorf("replace: %s is not a candidate", in.Op)
	}
	if isa.IsProducer(in.Op) {
		// Integer-to-double has no FP inputs to check; the original
		// instruction is already correct.
		return nil, nil
	}
	if opts.CleanInputs || (opts.CleanSrcInput && opts.CleanDstInput) {
		// The flag-reachability analysis proved no replaced value can
		// reach this site's inputs, so the original double-precision
		// instruction runs correctly with no wrapper at all — the sound
		// per-site form of SkipDoubleSnippets.
		return nil, nil
	}
	if err := checkMemOperand(in); err != nil {
		return nil, err
	}
	packed := isa.IsPacked(in.Op)
	s := &snip{}
	if !opts.elideSaves() {
		s.emit(isa.I(isa.PUSH, isa.Gpr(sr1)))
		s.emit(isa.I(isa.PUSH, isa.Gpr(sr2)))
		if packed {
			s.emit(isa.I(isa.PUSHX, isa.Xmm(sx)))
		}
	}

	op := in
	op.Addr = 0

	usedMem := false
	// A proven-clean memory source needs no promotion: the original
	// operand already reads a plain double.
	if in.B.Kind == isa.KindMem && !opts.CleanSrcInput {
		if opts.NoMemPromotion {
			return nil, fmt.Errorf("replace: memory operand on %s with promotion disabled", in.Op)
		}
		usedMem = true
		if !opts.elideSaves() {
			s.emit(isa.I(isa.PUSHX, isa.Xmm(sxMem)))
		}
		if packed {
			s.emit(isa.I(isa.MOVAPD, isa.Xmm(sxMem), in.B))
		} else {
			s.emit(isa.I(isa.MOVSD, isa.Xmm(sxMem), in.B))
		}
		op.B = isa.Xmm(sxMem)
	}

	if op.B.Kind == isa.KindXMM && !opts.CleanSrcInput {
		s.upcastLane(op.B.Reg, 0)
		if packed {
			s.upcastLane(op.B.Reg, 1)
		}
	}
	if isa.DstIsSource(in.Op) && op.A.Kind == isa.KindXMM && !opts.CleanDstInput &&
		!(op.B.Kind == isa.KindXMM && op.B.Reg == op.A.Reg) {
		s.upcastLane(op.A.Reg, 0)
		if packed {
			s.upcastLane(op.A.Reg, 1)
		}
	}

	s.emit(op)

	if !opts.elideSaves() {
		if usedMem {
			s.emit(isa.I(isa.POPX, isa.Xmm(sxMem)))
		}
		if packed {
			s.emit(isa.I(isa.POPX, isa.Xmm(sx)))
		}
		s.emit(isa.I(isa.POP, isa.Gpr(sr2)))
		s.emit(isa.I(isa.POP, isa.Gpr(sr1)))
	}
	return s.instrs, nil
}
