package replace

import (
	"math"
	"math/rand"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// The generalized §3.1 property: for ANY program, executing the
// double-precision binary under all-single instrumentation produces
// bit-for-bit the same values as compiling the same source at ModeF32.
// This fuzzes the entire snippet pipeline — flag checks, in-place
// downcasts, output stamping, comparisons and control flow — against the
// independent "manual conversion" semantics.

// buildRandomProgram compiles a random straight-line+branchy program at
// the given mode. The same seed always yields the same source structure.
func buildRandomProgram(seed int64, mode hl.Mode) (*prog.Module, error) {
	r := rand.New(rand.NewSource(seed))
	p := hl.New("fuzz", mode)

	nv := 2 + r.Intn(4)
	vars := make([]hl.FVar, nv)
	for i := range vars {
		vars[i] = p.ScalarInit("v", math.Trunc(r.NormFloat64()*512)/32)
	}
	arr := p.Array("arr", 8)
	idx := p.Int("i")

	var gen func(depth int) hl.Expr
	gen = func(depth int) hl.Expr {
		if depth <= 0 || r.Intn(4) == 0 {
			switch r.Intn(3) {
			case 0:
				return hl.Const(math.Trunc(r.NormFloat64()*256) / 16)
			case 1:
				return hl.Load(vars[r.Intn(nv)])
			default:
				return hl.At(arr, hl.IConst(int64(r.Intn(8))))
			}
		}
		a, b := gen(depth-1), gen(depth-1)
		switch r.Intn(7) {
		case 0:
			return hl.Add(a, b)
		case 1:
			return hl.Sub(a, b)
		case 2:
			return hl.Mul(a, b)
		case 3:
			return hl.Div(a, hl.Add(hl.Abs(b), hl.Const(0.5)))
		case 4:
			return hl.Min(a, b)
		case 5:
			return hl.Max(a, b)
		default:
			return hl.Sqrt(hl.Abs(a))
		}
	}

	f := p.Func("main")
	// Fill the array from expressions.
	for k := 0; k < 8; k++ {
		f.Store(arr, hl.IConst(int64(k)), gen(2))
	}
	// A loop mutating state.
	f.For(idx, hl.IConst(0), hl.IConst(int64(2+r.Intn(6))), func() {
		v := vars[r.Intn(nv)]
		f.Set(v, hl.Add(hl.Load(v), hl.At(arr, hl.IAnd(hl.ILoad(idx), hl.IConst(7)))))
	})
	// Branches on FP comparisons.
	for k := 0; k < 2; k++ {
		v := vars[r.Intn(nv)]
		f.If(hl.Gt(hl.Load(v), gen(1)), func() {
			f.Set(v, hl.Mul(hl.Load(v), hl.Const(0.5)))
		}, func() {
			f.Set(v, gen(2))
		})
	}
	for i := range vars {
		f.Out(hl.Load(vars[i]))
	}
	for k := 0; k < 8; k++ {
		f.Out(hl.At(arr, hl.IConst(int64(k))))
	}
	f.Halt()
	return p.Build("main")
}

func TestFuzzAllSingleMatchesManualConversion(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		m64, err := buildRandomProgram(seed, hl.ModeF64)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m32, err := buildRandomProgram(seed, hl.ModeF32)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := config.FromModule(m64)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(config.Single)
		inst, err := Instrument(m64, c, InstrumentOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mi := mustRun(t, inst, seed)
		mf := mustRun(t, m32, seed)
		if len(mi.Out) != len(mf.Out) {
			t.Fatalf("seed %d: output counts differ", seed)
		}
		for i := range mi.Out {
			// A value that never passed through a floating-point operation
			// (a stored constant) legitimately remains an unreplaced double
			// in the instrumented run; decode both sides to values. All
			// generated constants are float32-exact, so value equality is
			// still an exact (bit-level) criterion.
			gv := Value(mi.Out[i].Bits)
			wv := float64(math.Float32frombits(uint32(mf.Out[i].Bits)))
			if math.Float64bits(gv) != math.Float64bits(wv) &&
				!(math.IsNaN(gv) && math.IsNaN(wv)) {
				t.Errorf("seed %d out %d: instrumented %v != manual %v", seed, i, gv, wv)
			}
		}
	}
}

// TestFuzzAllDoubleTransparent: wrapping random programs entirely in
// double snippets must reproduce the original outputs bit for bit.
func TestFuzzAllDoubleTransparent(t *testing.T) {
	for seed := int64(100); seed <= 140; seed++ {
		m, err := buildRandomProgram(seed, hl.ModeF64)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(config.Double)
		inst, err := Instrument(m, c, InstrumentOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := mustRun(t, m, seed)
		b := mustRun(t, inst, seed)
		for i := range a.Out {
			if a.Out[i].Bits != b.Out[i].Bits {
				t.Errorf("seed %d out %d: %#x != %#x", seed, i, a.Out[i].Bits, b.Out[i].Bits)
			}
		}
	}
}

// TestFuzzRandomMixedConfigs: arbitrary per-instruction configurations
// must never crash, and outputs must stay close to the reference (every
// value passed through at most float32 rounding at each step).
func TestFuzzRandomMixedConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for seed := int64(200); seed <= 230; seed++ {
		m, err := buildRandomProgram(seed, hl.ModeF64)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := mustRun(t, m, seed)
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, addr := range c.Candidates() {
			if r.Intn(2) == 0 {
				c.NodeAt(addr).Flag = config.Single
			}
		}
		inst, err := Instrument(m, c, InstrumentOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := mustRun(t, inst, seed)
		if len(got.Out) != len(ref.Out) {
			t.Fatalf("seed %d: output counts differ", seed)
		}
		for i := range got.Out {
			gv := Value(got.Out[i].Bits)
			rv := ref.Out[i].F64()
			if math.IsNaN(rv) {
				continue
			}
			if math.IsNaN(gv) {
				t.Errorf("seed %d out %d: NaN from mixed config", seed, i)
				continue
			}
			// Loose plausibility bound: mixed precision may drift, but
			// not explode (values here are O(1)-O(100)).
			if math.Abs(gv-rv) > 1e-2*(1+math.Abs(rv)) {
				t.Errorf("seed %d out %d: %v vs %v drifted implausibly", seed, i, gv, rv)
			}
		}
	}
}

func mustRun(t *testing.T, m *prog.Module, seed int64) *vm.Machine {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	mach.MaxSteps = 50_000_000
	if err := mach.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return mach
}
