package replace

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
)

// TestDebugSurvivesInstrumentation: snippet instructions inherit the
// source label of the instruction they replaced (the paper's GUI resolves
// instrumented code back to source locations).
func TestDebugSurvivesInstrumentation(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Debug == nil {
		t.Fatal("compiler attached no debug info")
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Debug == nil {
		t.Fatal("instrumentation dropped debug info")
	}
	// Instrumentation expands candidates into many instructions, all
	// carrying labels, so the table must grow.
	if len(inst.Debug) <= len(m.Debug) {
		t.Errorf("debug entries: %d -> %d, expected growth", len(m.Debug), len(inst.Debug))
	}
	for _, f := range inst.Funcs {
		for _, in := range f.Instrs {
			if _, ok := inst.Debug[in.Addr]; !ok {
				t.Fatalf("instruction %#x (%s) lost its label", in.Addr, in.Op)
			}
		}
	}
}
