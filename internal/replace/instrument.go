package replace

import (
	"fmt"

	"fpmix/internal/cfg"
	"fpmix/internal/config"
	"fpmix/internal/dataflow"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// InstrumentOptions configure whole-image instrumentation.
type InstrumentOptions struct {
	Snippet Options
	// SkipDoubleSnippets omits the double-precision wrapper snippets for
	// instructions kept in double precision, unconditionally. This is the
	// whole-program unchecked form of the §2.5 optimization, kept as an
	// ablation knob; the sound per-site version is the analysis-gated
	// CleanInputs elision, which is on by default.
	SkipDoubleSnippets bool
	// Analysis supplies the per-site dataflow results that gate snippet
	// streamlining (scratch save/restore elision, flag-check elision,
	// double-wrapper skipping). When nil, Instrument/InstrumentMap/
	// Precompile compute it from the module unless NoAnalysis is set; if
	// the analysis itself fails, instrumentation falls back to fully
	// checked snippets (always sound, just slower).
	Analysis *dataflow.Result
	// NoAnalysis disables analysis-gated streamlining: every snippet is
	// generated fully checked. Kept for differential testing against the
	// gated path.
	NoAnalysis bool
}

// analysis resolves the dataflow results for m per the options.
func (o InstrumentOptions) analysis(m *prog.Module) *dataflow.Result {
	if o.NoAnalysis {
		return nil
	}
	if o.Analysis != nil {
		return o.Analysis
	}
	r, err := dataflow.Analyze(m)
	if err != nil {
		return nil // fall back to fully checked snippets
	}
	return r
}

// siteOptions specializes the snippet options with the proven per-site
// elisions for the candidate at addr.
func (o InstrumentOptions) siteOptions(r *dataflow.Result, addr uint64) Options {
	so := o.Snippet
	if r == nil {
		return so
	}
	s := r.Site(addr)
	if s.ScratchDead {
		so.ScratchDead = true
	}
	if s.CleanInputs {
		so.CleanInputs = true
	}
	return so
}

// Instrument rewrites m according to cfgn: every double-precision
// candidate instruction is expanded into a single- or double-precision
// snippet per its effective precision (Ignore leaves the instruction
// untouched). The result is a new, runnable module; m is not modified.
func Instrument(m *prog.Module, cfgn *config.Config, opts InstrumentOptions) (*prog.Module, error) {
	eff := cfgn.Effective()
	return InstrumentMap(m, eff, opts)
}

// InstrumentMap is Instrument with a precomputed effective-precision map
// (address -> precision). Addresses absent from the map default to Double.
// The first snippet generation failure aborts the rewrite immediately and
// is returned with its instruction address attached.
func InstrumentMap(m *prog.Module, eff map[uint64]config.Precision, opts InstrumentOptions) (*prog.Module, error) {
	ana := opts.analysis(m)
	out, err := cfg.Rewrite(m, func(in isa.Instr) ([]isa.Instr, error) {
		if !isa.IsCandidate(in.Op) {
			return nil, nil
		}
		p, ok := eff[in.Addr]
		if !ok {
			p = config.Double
		}
		switch p {
		case config.Ignore:
			return nil, nil
		case config.Single:
			return SingleSnippet(in, opts.siteOptions(ana, in.Addr))
		default:
			if opts.SkipDoubleSnippets {
				return nil, nil
			}
			return DoubleSnippet(in, opts.siteOptions(ana, in.Addr))
		}
	})
	if err != nil {
		return nil, fmt.Errorf("replace: %w", err)
	}
	return out, nil
}

// Stats summarizes a configuration against a module and an execution
// profile: the static and dynamic replacement percentages reported in the
// paper's Figure 10.
type Stats struct {
	Candidates    int     // |Pd|
	StaticSingle  int     // candidates configured single
	StaticPct     float64 // StaticSingle / Candidates * 100
	DynamicSingle uint64  // executed candidate instances configured single
	DynamicTotal  uint64  // executed candidate instances
	DynamicPct    float64
}

// ComputeStats derives replacement statistics for eff given a profile of
// per-address execution counts from an uninstrumented run.
func ComputeStats(m *prog.Module, eff map[uint64]config.Precision, profile map[uint64]uint64) Stats {
	var st Stats
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if !isa.IsCandidate(in.Op) {
				continue
			}
			st.Candidates++
			n := profile[in.Addr]
			st.DynamicTotal += n
			if eff[in.Addr] == config.Single {
				st.StaticSingle++
				st.DynamicSingle += n
			}
		}
	}
	if st.Candidates > 0 {
		st.StaticPct = 100 * float64(st.StaticSingle) / float64(st.Candidates)
	}
	if st.DynamicTotal > 0 {
		st.DynamicPct = 100 * float64(st.DynamicSingle) / float64(st.DynamicTotal)
	}
	return st
}
