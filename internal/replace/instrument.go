package replace

import (
	"fmt"

	"fpmix/internal/cfg"
	"fpmix/internal/config"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// InstrumentOptions configure whole-image instrumentation.
type InstrumentOptions struct {
	Snippet Options
	// SkipDoubleSnippets omits the double-precision wrapper snippets for
	// instructions kept in double precision. This is the paper's §2.5
	// "static data flow analysis" future optimization in its most
	// aggressive (whole-program, unchecked) form: it is only sound when no
	// replaced value can flow into an unwrapped instruction, so it is an
	// ablation knob, not a default.
	SkipDoubleSnippets bool
}

// Instrument rewrites m according to cfgn: every double-precision
// candidate instruction is expanded into a single- or double-precision
// snippet per its effective precision (Ignore leaves the instruction
// untouched). The result is a new, runnable module; m is not modified.
func Instrument(m *prog.Module, cfgn *config.Config, opts InstrumentOptions) (*prog.Module, error) {
	eff := cfgn.Effective()
	return InstrumentMap(m, eff, opts)
}

// InstrumentMap is Instrument with a precomputed effective-precision map
// (address -> precision). Addresses absent from the map default to Double.
func InstrumentMap(m *prog.Module, eff map[uint64]config.Precision, opts InstrumentOptions) (*prog.Module, error) {
	var expandErr error
	out, err := cfg.Rewrite(m, func(in isa.Instr) []isa.Instr {
		if expandErr != nil || !isa.IsCandidate(in.Op) {
			return nil
		}
		p, ok := eff[in.Addr]
		if !ok {
			p = config.Double
		}
		switch p {
		case config.Ignore:
			return nil
		case config.Single:
			seq, err := SingleSnippet(in, opts.Snippet)
			if err != nil {
				expandErr = err
				return nil
			}
			return seq
		default:
			if opts.SkipDoubleSnippets {
				return nil
			}
			seq, err := DoubleSnippet(in, opts.Snippet)
			if err != nil {
				expandErr = err
				return nil
			}
			return seq
		}
	})
	if expandErr != nil {
		return nil, expandErr
	}
	if err != nil {
		return nil, fmt.Errorf("replace: %w", err)
	}
	return out, nil
}

// Stats summarizes a configuration against a module and an execution
// profile: the static and dynamic replacement percentages reported in the
// paper's Figure 10.
type Stats struct {
	Candidates    int     // |Pd|
	StaticSingle  int     // candidates configured single
	StaticPct     float64 // StaticSingle / Candidates * 100
	DynamicSingle uint64  // executed candidate instances configured single
	DynamicTotal  uint64  // executed candidate instances
	DynamicPct    float64
}

// ComputeStats derives replacement statistics for eff given a profile of
// per-address execution counts from an uninstrumented run.
func ComputeStats(m *prog.Module, eff map[uint64]config.Precision, profile map[uint64]uint64) Stats {
	var st Stats
	for _, f := range m.Funcs {
		for _, in := range f.Instrs {
			if !isa.IsCandidate(in.Op) {
				continue
			}
			st.Candidates++
			n := profile[in.Addr]
			st.DynamicTotal += n
			if eff[in.Addr] == config.Single {
				st.StaticSingle++
				st.DynamicSingle += n
			}
		}
	}
	if st.Candidates > 0 {
		st.StaticPct = 100 * float64(st.StaticSingle) / float64(st.Candidates)
	}
	if st.DynamicTotal > 0 {
		st.DynamicPct = 100 * float64(st.DynamicSingle) / float64(st.DynamicTotal)
	}
	return st
}
