package replace

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// TestLivenessElisionPreservesResults: the §2.5 streamlining optimization
// must not change a single output bit on ABI-conforming (hl-compiled)
// programs, while strictly reducing cycles.
func TestLivenessElisionPreservesResults(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []config.Precision{config.Single, config.Double} {
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(prec)
		full, err := Instrument(m, c, InstrumentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lean, err := Instrument(m, c, InstrumentOptions{
			Snippet: Options{LivenessElision: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		mf := runModule(t, full)
		ml := runModule(t, lean)
		for i := range mf.Out {
			if mf.Out[i].Bits != ml.Out[i].Bits {
				t.Errorf("%v: output %d differs under elision", prec, i)
			}
		}
		if ml.Cycles >= mf.Cycles {
			t.Errorf("%v: elision did not reduce cycles: %d vs %d", prec, ml.Cycles, mf.Cycles)
		}
		if ml.Steps >= mf.Steps {
			t.Errorf("%v: elision did not shrink snippets", prec)
		}
	}
}

// TestInstrumentedImageRoundTrip: an instrumented module survives
// serialization and re-parsing, and the reloaded binary runs identically
// — the full binary-rewriter path of the paper (§2.4).
func TestInstrumentedImageRoundTrip(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := prog.Save(inst)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := prog.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	a := runModule(t, inst)
	b := runModule(t, reloaded)
	if len(a.Out) != len(b.Out) {
		t.Fatal("output count changed across image round trip")
	}
	for i := range a.Out {
		if a.Out[i].Bits != b.Out[i].Bits {
			t.Errorf("output %d changed across image round trip", i)
		}
	}
	if a.Cycles != b.Cycles {
		t.Error("cycles changed across image round trip")
	}
}

// TestDoubleInstrumentTwice: instrumenting an already-instrumented image
// must still run correctly (snippet code contains no candidates in double
// mode... but single-mode snippets do contain single-precision opcodes,
// which are not candidates). The composition is the identity over
// semantics for all-double wrapping.
func TestDoubleInstrumentTwice(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Double)
	once, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := config.FromModule(once)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetAll(config.Double)
	twice, err := Instrument(once, c2, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := runModule(t, m)
	got, err := vm.New(twice)
	if err != nil {
		t.Fatal(err)
	}
	got.MaxSteps = 4_000_000_000
	if err := got.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Out {
		if ref.Out[i].Bits != got.Out[i].Bits {
			t.Errorf("output %d changed under double instrumentation", i)
		}
	}
}
