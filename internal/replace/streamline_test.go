package replace

import (
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/prog"
	"fpmix/internal/vm"
)

// TestStreamliningPreservesResults: the §2.5 streamlining optimization
// must not change a single output bit. Three builds of every
// configuration are compared: fully checked (analysis off), the default
// analysis-gated build (per-site elisions proven by dataflow), and the
// unchecked whole-program ablation (LivenessElision). Outputs must be
// bit-identical across all three, and the gated build must cost no more
// cycles than the ablation, which in turn must beat fully checked —
// proving the analysis recovers at least the ablation's entire win,
// soundly.
func TestStreamliningPreservesResults(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []config.Precision{config.Single, config.Double} {
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(prec)
		full, err := Instrument(m, c, InstrumentOptions{NoAnalysis: true})
		if err != nil {
			t.Fatal(err)
		}
		gated, err := Instrument(m, c, InstrumentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lean, err := Instrument(m, c, InstrumentOptions{
			NoAnalysis: true,
			Snippet:    Options{LivenessElision: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		mf := runModule(t, full)
		mg := runModule(t, gated)
		ml := runModule(t, lean)
		for i := range mf.Out {
			if mf.Out[i].Bits != mg.Out[i].Bits {
				t.Errorf("%v: output %d differs under analysis gating", prec, i)
			}
			if mf.Out[i].Bits != ml.Out[i].Bits {
				t.Errorf("%v: output %d differs under elision", prec, i)
			}
		}
		if ml.Cycles >= mf.Cycles {
			t.Errorf("%v: elision did not reduce cycles: %d vs %d", prec, ml.Cycles, mf.Cycles)
		}
		if mg.Cycles > ml.Cycles {
			t.Errorf("%v: gated build (%d cycles) costs more than the unchecked ablation (%d)",
				prec, mg.Cycles, ml.Cycles)
		}
	}
}

// TestInstrumentedImageRoundTrip: an instrumented module survives
// serialization and re-parsing, and the reloaded binary runs identically
// — the full binary-rewriter path of the paper (§2.4).
func TestInstrumentedImageRoundTrip(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Single)
	inst, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := prog.Save(inst)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := prog.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	a := runModule(t, inst)
	b := runModule(t, reloaded)
	if len(a.Out) != len(b.Out) {
		t.Fatal("output count changed across image round trip")
	}
	for i := range a.Out {
		if a.Out[i].Bits != b.Out[i].Bits {
			t.Errorf("output %d changed across image round trip", i)
		}
	}
	if a.Cycles != b.Cycles {
		t.Error("cycles changed across image round trip")
	}
}

// TestDoubleInstrumentTwice: instrumenting an already-instrumented image
// must still run correctly (snippet code contains no candidates in double
// mode... but single-mode snippets do contain single-precision opcodes,
// which are not candidates). The composition is the identity over
// semantics for all-double wrapping.
func TestDoubleInstrumentTwice(t *testing.T) {
	m, err := buildKernel(hl.ModeF64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAll(config.Double)
	once, err := Instrument(m, c, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := config.FromModule(once)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetAll(config.Double)
	twice, err := Instrument(once, c2, InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := runModule(t, m)
	got, err := vm.New(twice)
	if err != nil {
		t.Fatal(err)
	}
	got.MaxSteps = 4_000_000_000
	if err := got.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Out {
		if ref.Out[i].Bits != got.Out[i].Bits {
			t.Errorf("output %d changed under double instrumentation", i)
		}
	}
}
