package replace

import (
	"fmt"

	"fpmix/internal/cfg"
	"fpmix/internal/config"
	"fpmix/internal/isa"
	"fpmix/internal/prog"
)

// Stable-layout instrumentation: one address map for every configuration.
//
// The per-configuration pipeline (Instrument / CompiledSnippets.Instrument)
// lays each module out at the exact encoded size of the chosen sequences,
// so configurations place shared code at diverging addresses. Stable builds
// the slotted alternative: every candidate site occupies a fixed-size slot
// large enough for any of its variants, so the double, single and bare
// (ignored) forms of a site are interchangeable without moving a single
// shared instruction. The fork-point search requires this — a machine
// snapshot taken under the all-double donor configuration restores under
// any sibling configuration because the program counter and instruction
// counts translate one-to-one by address.

// Variant indices of a stable site, used with StableSite.Variants and
// vm-level incremental assembly.
const (
	// VariantDouble is the double-precision wrapper (or the bare
	// instruction when no wrapper is needed); the skeleton's content.
	VariantDouble = 0
	// VariantSingle is the single-precision replacement sequence.
	VariantSingle = 1
	// VariantBare is the original instruction, untouched (config.Ignore).
	VariantBare = 2
	// VariantDoubleSrcOnly is the narrowed double wrapper checking only
	// the source (B) operand, selectable when a per-configuration flag
	// analysis proves the destination operand clean. Nil when the full
	// wrapper checks no other operand anyway.
	VariantDoubleSrcOnly = 3
	// VariantDoubleDstOnly is the narrowed double wrapper checking only
	// the destination-read-as-source (A) operand, selectable when the
	// source operand is proven clean. Nil when it would not be shorter
	// than the full wrapper.
	VariantDoubleDstOnly = 4
	// NumVariants is the variant count of every stable site.
	NumVariants = 5
)

// VariantFor maps an effective precision to its stable variant index.
func VariantFor(p config.Precision) int {
	switch p {
	case config.Single:
		return VariantSingle
	case config.Ignore:
		return VariantBare
	default:
		return VariantDouble
	}
}

// StableSite is one candidate site of a stable layout.
type StableSite struct {
	OldAddr uint64 // candidate instruction address in the source module
	Addr    uint64 // slot base address in the stable layout
	Size    uint64 // slot byte size
	// Variants holds the relocated sequences, indexed by VariantDouble /
	// VariantSingle / VariantBare. VariantSingle is nil when snippet
	// generation failed for the site; requesting it surfaces SingleErr.
	Variants [][]isa.Instr
	// SingleErr / DoubleErr record per-site snippet-generation failures,
	// surfaced only when a configuration selects the failing variant —
	// matching InstrumentMap, which generates sequences on demand.
	SingleErr error
	DoubleErr error
}

// StableProgram is the slotted form of a module: the skeleton (every slot
// holding its double variant — the search's base configuration) plus the
// site table. The skeleton deliberately fails prog.Validate when any slot
// has a tail gap; it must only be consumed by layout-aware code
// (vm.NewIncrementalLinker), never serialized.
type StableProgram struct {
	Skeleton *prog.Module
	Sites    []StableSite
}

// Stable builds the stable slotted layout from the precompiled snippet
// table. The skeleton materializes every site's double variant, so running
// it is the base configuration of the search.
func (cs *CompiledSnippets) Stable() (*StableProgram, error) {
	if cs.opts.SkipDoubleSnippets {
		return nil, fmt.Errorf("replace: stable layout requires double snippets (SkipDoubleSnippets set)")
	}
	skeleton, slotted, err := cfg.RewriteSlotted(cs.module, func(in isa.Instr) (*cfg.Slot, error) {
		if !isa.IsCandidate(in.Op) {
			return nil, nil
		}
		bare := cfg.NewExpansion([]isa.Instr{in})
		slot := &cfg.Slot{Variants: make([]*cfg.Expansion, NumVariants)}
		slot.Variants[VariantBare] = bare
		if e := cs.double[in.Addr]; e != nil {
			slot.Variants[VariantDouble] = e
		} else if cs.doubleErr[in.Addr] == nil {
			// No wrapper needed at double precision: the bare instruction
			// is the double variant.
			slot.Variants[VariantDouble] = bare
		} else {
			// Double generation failed. The skeleton needs variant 0, and
			// the base configuration would fail identically through the
			// per-configuration pipeline, so surface it now.
			return nil, cs.doubleErr[in.Addr]
		}
		if e := cs.single[in.Addr]; e != nil {
			slot.Variants[VariantSingle] = e
		} else if cs.singleErr[in.Addr] == nil {
			slot.Variants[VariantSingle] = bare
		}
		// Narrowed wrappers stay nil when Precompile found them no
		// shorter than the full wrapper; selection falls back to
		// VariantDouble, which is always equivalent.
		slot.Variants[VariantDoubleSrcOnly] = cs.doubleSrcOnly[in.Addr]
		slot.Variants[VariantDoubleDstOnly] = cs.doubleDstOnly[in.Addr]
		return slot, nil
	})
	if err != nil {
		return nil, fmt.Errorf("replace: %w", err)
	}
	sp := &StableProgram{Skeleton: skeleton, Sites: make([]StableSite, len(slotted))}
	for i, s := range slotted {
		sp.Sites[i] = StableSite{
			OldAddr:   s.OldAddr,
			Addr:      s.Addr,
			Size:      s.Size,
			Variants:  s.Variants,
			SingleErr: cs.singleErr[s.OldAddr],
			DoubleErr: cs.doubleErr[s.OldAddr],
		}
	}
	return sp, nil
}
