package replace_test

// Property tests for the analysis-gated snippet streamlining: over
// randomly generated programs and over the real serial and MPI kernels,
// the default gated build (per-site elisions proven by the dataflow
// analyses) must be bit-identical to the fully checked build for every
// configuration. This is the testing/quick-style complement to the
// directed cases in streamline_test.go: instead of one hand-built
// kernel, it throws arbitrary control flow, memory shapes, and
// precision mixes at the instrumenter and requires the analysis never
// to elide a check that mattered.

import (
	"fmt"
	"math/rand"
	"testing"

	"fpmix/internal/config"
	"fpmix/internal/hl"
	"fpmix/internal/kernels"
	"fpmix/internal/mpi"
	"fpmix/internal/prog"
	"fpmix/internal/replace"
	"fpmix/internal/vm"
)

// genState carries the declared variables of a program under
// construction so statement and expression generators can reference
// them.
type genState struct {
	r       *rand.Rand
	scalars []hl.FVar
	arrs    []hl.FArr
	arrLens []int
}

// expr builds a random float expression over the declared variables.
// Every operation is drawn from the candidate set the instrumenter
// rewrites, so deep trees stress chains of snippet-to-snippet value
// flow; NaN and Inf results are acceptable — both builds must still
// agree bit for bit.
func (g *genState) expr(depth int) hl.Expr {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return hl.Const(float64(g.r.Intn(9)) - 4 + g.r.Float64())
		case 1:
			return hl.Load(g.scalars[g.r.Intn(len(g.scalars))])
		default:
			k := g.r.Intn(len(g.arrs))
			return hl.At(g.arrs[k], hl.IConst(int64(g.r.Intn(g.arrLens[k]))))
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return hl.Add(g.expr(depth-1), g.expr(depth-1))
	case 1:
		return hl.Sub(g.expr(depth-1), g.expr(depth-1))
	case 2:
		return hl.Mul(g.expr(depth-1), g.expr(depth-1))
	case 3:
		return hl.Div(g.expr(depth-1), g.expr(depth-1))
	case 4:
		return hl.Min(g.expr(depth-1), g.expr(depth-1))
	case 5:
		return hl.Max(g.expr(depth-1), g.expr(depth-1))
	case 6:
		return hl.Sqrt(hl.Abs(g.expr(depth - 1)))
	default:
		return hl.Sin(g.expr(depth - 1))
	}
}

// stmts emits n random statements into fb. Control flow is limited to
// constant-bound loops and value-dependent branches so every generated
// program terminates.
func (g *genState) stmts(p *hl.Prog, fb *hl.FuncBuilder, n int, loopVars *int) {
	for s := 0; s < n; s++ {
		switch g.r.Intn(5) {
		case 0, 1:
			fb.Set(g.scalars[g.r.Intn(len(g.scalars))], g.expr(3))
		case 2:
			k := g.r.Intn(len(g.arrs))
			fb.Store(g.arrs[k], hl.IConst(int64(g.r.Intn(g.arrLens[k]))), g.expr(2))
		case 3:
			*loopVars++
			i := p.Int(fmt.Sprintf("i%d", *loopVars))
			k := g.r.Intn(len(g.arrs))
			arr, ln := g.arrs[k], g.arrLens[k]
			acc := g.scalars[g.r.Intn(len(g.scalars))]
			fb.For(i, hl.IConst(0), hl.IConst(int64(ln)), func() {
				fb.Set(acc, hl.Add(hl.Load(acc), hl.At(arr, hl.ILoad(i))))
				if g.r.Intn(2) == 0 {
					fb.Store(arr, hl.ILoad(i), hl.Mul(hl.At(arr, hl.ILoad(i)), g.expr(1)))
				}
			})
		default:
			a := g.scalars[g.r.Intn(len(g.scalars))]
			b := g.scalars[g.r.Intn(len(g.scalars))]
			fb.If(hl.Gt(hl.Load(a), g.expr(1)), func() {
				fb.Set(b, g.expr(2))
			}, func() {
				fb.Set(b, hl.Neg(hl.Load(b)))
			})
		}
	}
}

// genProgram builds a random terminating module: a few scalars and
// arrays, random straight-line code, loops, branches, and (sometimes) a
// helper function called from main, ending with every scalar and array
// cell written to the output buffer.
func genProgram(r *rand.Rand, trial int) (*prog.Module, error) {
	p := hl.New(fmt.Sprintf("prop%d", trial), hl.ModeF64)
	g := &genState{r: r}
	for i := 0; i < 2+r.Intn(3); i++ {
		g.scalars = append(g.scalars, p.ScalarInit(fmt.Sprintf("v%d", i), float64(r.Intn(7))-3+r.Float64()))
	}
	for i := 0; i < 1+r.Intn(2); i++ {
		n := 3 + r.Intn(5)
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = float64(r.Intn(5)) - 2 + r.Float64()
		}
		g.arrs = append(g.arrs, p.ArrayInit(fmt.Sprintf("a%d", i), vals))
		g.arrLens = append(g.arrLens, n)
	}
	loopVars := 0

	hasHelper := r.Intn(2) == 0
	main := p.Func("main")
	g.stmts(p, main, 2+r.Intn(4), &loopVars)
	if hasHelper {
		main.Call("helper")
		g.stmts(p, main, 1+r.Intn(3), &loopVars)
	}
	for _, v := range g.scalars {
		main.Out(hl.Load(v))
	}
	for k, arr := range g.arrs {
		for j := 0; j < g.arrLens[k]; j++ {
			main.Out(hl.At(arr, hl.IConst(int64(j))))
		}
	}
	main.Halt()

	if hasHelper {
		h := p.Func("helper")
		g.stmts(p, h, 1+r.Intn(3), &loopVars)
		h.Ret()
	}
	return p.Build("main")
}

// genMPIProgram builds a random module that mixes local floating-point
// work with collective communication: every rank perturbs a shared
// array by its rank id, the array is summed across ranks and broadcast,
// and each rank reports the result — so replaced values travel through
// the MPI substrate in both builds.
func genMPIProgram(r *rand.Rand, trial int) (*prog.Module, error) {
	p := hl.New(fmt.Sprintf("propmpi%d", trial), hl.ModeF64)
	n := 3 + r.Intn(4)
	vals := make([]float64, n)
	for j := range vals {
		vals[j] = float64(r.Intn(5)) - 2 + r.Float64()
	}
	arr := p.ArrayInit("a", vals)
	acc := p.ScalarInit("acc", r.Float64())
	rank := p.Int("rank")
	i := p.Int("i")

	g := &genState{r: r, scalars: []hl.FVar{acc}, arrs: []hl.FArr{arr}, arrLens: []int{n}}
	main := p.Func("main")
	main.MPIRank(rank)
	main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		main.Store(arr, hl.ILoad(i),
			hl.Add(hl.At(arr, hl.ILoad(i)),
				hl.Mul(hl.FromInt(hl.ILoad(rank)), g.expr(2))))
	})
	main.MPIAllreduceSum(arr, hl.IConst(int64(n)))
	if r.Intn(2) == 0 {
		main.MPIBcast(arr, hl.IConst(int64(n)), hl.IConst(0))
	}
	main.For(i, hl.IConst(0), hl.IConst(int64(n)), func() {
		main.Set(acc, hl.Add(hl.Load(acc), hl.At(arr, hl.ILoad(i))))
		main.Out(hl.At(arr, hl.ILoad(i)))
	})
	main.Out(hl.Load(acc))
	main.Halt()
	return p.Build("main")
}

// runOut executes the module and returns its output buffer.
func runOut(t *testing.T, m *prog.Module) []vm.OutVal {
	t.Helper()
	mach, err := vm.New(m)
	if err != nil {
		t.Fatal(err)
	}
	mach.MaxSteps = 50_000_000
	if err := mach.Run(); err != nil {
		t.Fatal(err)
	}
	return mach.Out
}

// trialConfigs returns the configurations each trial is checked under:
// all-single, all-double, and one uniformly random per-site mix.
func trialConfigs(t *testing.T, m *prog.Module, r *rand.Rand) []*config.Config {
	t.Helper()
	var cs []*config.Config
	for _, prec := range []config.Precision{config.Single, config.Double} {
		c, err := config.FromModule(m)
		if err != nil {
			t.Fatal(err)
		}
		c.SetAll(prec)
		cs = append(cs, c)
	}
	mixed, err := config.FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range mixed.Candidates() {
		if r.Intn(2) == 0 {
			mixed.NodeAt(a).Flag = config.Single
		} else {
			mixed.NodeAt(a).Flag = config.Double
		}
	}
	cs = append(cs, mixed)
	return cs
}

// instrumentBoth builds the fully checked and the analysis-gated
// variants of (m, c).
func instrumentBoth(t *testing.T, m *prog.Module, c *config.Config) (full, gated *prog.Module) {
	t.Helper()
	full, err := replace.Instrument(m, c, replace.InstrumentOptions{NoAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	gated, err = replace.Instrument(m, c, replace.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return full, gated
}

// TestPropertyGatedMatchesCheckedRandomPrograms: for random serial
// programs and random configurations, the analysis-gated build is
// bit-identical to the fully checked build.
func TestPropertyGatedMatchesCheckedRandomPrograms(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		m, err := genProgram(r, trial)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		if len(m.Candidates()) == 0 {
			continue
		}
		for ci, c := range trialConfigs(t, m, r) {
			full, gated := instrumentBoth(t, m, c)
			fo := runOut(t, full)
			gout := runOut(t, gated)
			if len(fo) != len(gout) {
				t.Fatalf("trial %d config %d: output lengths differ: %d vs %d", trial, ci, len(fo), len(gout))
			}
			for i := range fo {
				if fo[i].Bits != gout[i].Bits {
					t.Errorf("trial %d config %d: output %d differs: %#x vs %#x",
						trial, ci, i, fo[i].Bits, gout[i].Bits)
				}
			}
		}
	}
}

// TestPropertyGatedMatchesCheckedMPIPrograms: the same property over
// random programs whose values cross rank boundaries through reductions
// and broadcasts, compared on every rank.
func TestPropertyGatedMatchesCheckedMPIPrograms(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(7000 + trial)))
		m, err := genMPIProgram(r, trial)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		for ci, c := range trialConfigs(t, m, r) {
			full, gated := instrumentBoth(t, m, c)
			for _, ranks := range []int{1, 3} {
				fw, err := mpi.RunWorld(full, ranks, 50_000_000)
				if err != nil {
					t.Fatalf("trial %d config %d ranks %d: checked: %v", trial, ci, ranks, err)
				}
				gw, err := mpi.RunWorld(gated, ranks, 50_000_000)
				if err != nil {
					t.Fatalf("trial %d config %d ranks %d: gated: %v", trial, ci, ranks, err)
				}
				for rk := 0; rk < ranks; rk++ {
					fo, gout := fw[rk].Out, gw[rk].Out
					if len(fo) != len(gout) {
						t.Fatalf("trial %d config %d ranks %d rank %d: output lengths differ",
							trial, ci, ranks, rk)
					}
					for i := range fo {
						if fo[i].Bits != gout[i].Bits {
							t.Errorf("trial %d config %d ranks %d rank %d: output %d differs",
								trial, ci, ranks, rk, i)
						}
					}
				}
			}
		}
	}
}

// TestGatedMatchesCheckedSerialKernels: the gated/checked bit-identity
// holds on every real serial kernel for both uniform configurations.
func TestGatedMatchesCheckedSerialKernels(t *testing.T) {
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := kernels.Get(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			for _, prec := range []config.Precision{config.Single, config.Double} {
				c, err := config.FromModule(b.Module)
				if err != nil {
					t.Fatal(err)
				}
				c.SetAll(prec)
				full, gated := instrumentBoth(t, b.Module, c)
				fo := runOut(t, full)
				gout := runOut(t, gated)
				if len(fo) == 0 || len(fo) != len(gout) {
					t.Fatalf("%v: bad output buffers: %d vs %d", prec, len(fo), len(gout))
				}
				for i := range fo {
					if fo[i].Bits != gout[i].Bits {
						t.Errorf("%v: output %d differs between checked and gated builds", prec, i)
					}
				}
			}
		})
	}
}

// TestGatedMatchesCheckedMPIKernels: the same identity on the MPI
// kernel variants, compared across every rank of a 4-rank world.
func TestGatedMatchesCheckedMPIKernels(t *testing.T) {
	for _, name := range kernels.MPIKernelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := kernels.MPISource(name, kernels.ClassW)
			if err != nil {
				t.Fatal(err)
			}
			for _, prec := range []config.Precision{config.Single, config.Double} {
				c, err := config.FromModule(m)
				if err != nil {
					t.Fatal(err)
				}
				c.SetAll(prec)
				full, gated := instrumentBoth(t, m, c)
				const ranks = 4
				fw, err := mpi.RunWorld(full, ranks, 0)
				if err != nil {
					t.Fatalf("%v: checked: %v", prec, err)
				}
				gw, err := mpi.RunWorld(gated, ranks, 0)
				if err != nil {
					t.Fatalf("%v: gated: %v", prec, err)
				}
				for rk := 0; rk < ranks; rk++ {
					fo, gout := fw[rk].Out, gw[rk].Out
					if len(fo) != len(gout) {
						t.Fatalf("%v rank %d: output lengths differ", prec, rk)
					}
					for i := range fo {
						if fo[i].Bits != gout[i].Bits {
							t.Errorf("%v rank %d: output %d differs between checked and gated builds",
								prec, rk, i)
						}
					}
				}
			}
		})
	}
}
